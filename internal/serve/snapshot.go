package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"impatience/internal/demand"
	"impatience/internal/numeric"
)

// snapshotVersion guards the on-disk format; bump on incompatible change.
const snapshotVersion = 1

// snapConfig is the subset of Config a snapshot must match to be
// restorable: state folded under one operating point must not silently
// seed a daemon solving a different one. The utility is stored by
// canonical name so spec aliases ("exp:0.5" vs "exponential:0.5") match.
type snapConfig struct {
	Items    int     `json:"items"`
	Servers  int     `json:"servers"`
	Rho      int     `json:"rho"`
	Mu       float64 `json:"mu"`
	Utility  string  `json:"utility"`
	HalfLife float64 `json:"half_life_sec"`
}

// snapshotFile is the serialized daemon state. Go's encoding/json writes
// float64 values with the shortest round-trippable representation, so a
// save/restore cycle reproduces every rate, allocation entry, and the
// dual level bit for bit.
type snapshotFile struct {
	Version     int        `json:"version"`
	Config      snapConfig `json:"config"`
	Rates       []float64  `json:"rates"`
	Observed    uint64     `json:"observed"`
	Alloc       []float64  `json:"alloc"`
	Lambda      float64    `json:"lambda"`
	SolvedRates []float64  `json:"solved_rates,omitempty"`
}

func (s *Server) snapConfig() snapConfig {
	return snapConfig{
		Items:    s.cfg.Items,
		Servers:  s.cfg.Servers,
		Rho:      s.cfg.Rho,
		Mu:       s.cfg.Mu,
		Utility:  s.f.Name(),
		HalfLife: s.est.halfLife,
	}
}

// Snapshot atomically persists the estimator and allocation state to the
// configured snapshot path (write to a temp file in the same directory,
// fsync, rename) and returns the number of bytes written.
func (s *Server) Snapshot() (int, error) {
	if s.cfg.SnapshotPath == "" {
		return 0, fmt.Errorf("serve: no snapshot path configured")
	}
	s.mtx.RLock()
	snap := snapshotFile{
		Version:     snapshotVersion,
		Config:      s.snapConfig(),
		Rates:       append([]float64(nil), s.est.rates...),
		Observed:    s.est.observed,
		Alloc:       append([]float64(nil), s.alloc...),
		Lambda:      s.lambda,
		SolvedRates: append([]float64(nil), s.solvedPop.Rates...),
	}
	s.mtx.RUnlock()

	data, err := json.Marshal(snap)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".aged-snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Restore loads a snapshot from the configured path and installs it:
// estimator rates and observation counter, allocation, dual level, and
// the solver's warm-start state. The snapshot's operating point must
// match the server's config exactly; a mismatch is an error and leaves
// the server untouched.
func (s *Server) Restore() error {
	if s.cfg.SnapshotPath == "" {
		return fmt.Errorf("serve: no snapshot path configured")
	}
	data, err := os.ReadFile(s.cfg.SnapshotPath)
	if err != nil {
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("serve: corrupt snapshot %s: %v", s.cfg.SnapshotPath, err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("serve: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if got, want := snap.Config, s.snapConfig(); got != want {
		return fmt.Errorf("serve: snapshot config %+v does not match server %+v", got, want)
	}
	if len(snap.Alloc) != s.cfg.Items {
		return fmt.Errorf("serve: snapshot allocation has %d items, want %d", len(snap.Alloc), s.cfg.Items)
	}

	s.mtx.Lock()
	defer s.mtx.Unlock()
	if err := s.est.restore(snap.Rates, snap.Observed); err != nil {
		return err
	}
	s.alloc = append([]float64(nil), snap.Alloc...)
	s.lambda = snap.Lambda
	if len(snap.SolvedRates) == s.cfg.Items {
		s.solvedPop = demand.Popularity{Rates: append([]float64(nil), snap.SolvedRates...)}
	}
	if snap.Lambda > 0 {
		s.solver.SetWarmState(&numeric.WarmState{
			Lambda: snap.Lambda,
			X:      append([]float64(nil), snap.Alloc...),
		})
	} else {
		s.solver.SetWarmState(nil)
	}
	return nil
}
