package welfare

import (
	"math"
	"testing"

	"impatience/internal/demand"
	"impatience/internal/utility"
)

func TestMeanBurstLinearReaction(t *testing.T) {
	// For power α=0 the unscaled reaction is linear: ψ(y) = y/(µS), so
	// E[ψ(Y)] = E[Y]/(µS) with E[Y] = S/x exactly (geometric mean 1/p).
	const (
		mu = 0.05
		S  = 50
	)
	f := utility.Power{Alpha: 0}
	for _, x := range []float64{2, 5, 10, 25} {
		got := MeanBurst(f, mu, S, x)
		want := (float64(S) / x) / (mu * float64(S))
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("x=%g: MeanBurst=%g, want %g", x, got, want)
		}
	}
}

func TestMeanBurstConvexityGap(t *testing.T) {
	// For the convex reaction of α=-1 (ψ ∝ y²), E[ψ(Y)] must exceed
	// ψ(E[Y]) — the variance effect ReactionScale exists to absorb.
	const (
		mu = 0.05
		S  = 50.0
	)
	f := utility.Power{Alpha: -1}
	x := 5.0
	burst := MeanBurst(f, mu, int(S), x)
	atMean := utility.Psi(f, mu, S, S/x)
	if burst <= atMean {
		t.Errorf("E[ψ(Y)]=%g not above ψ(E[Y])=%g for convex ψ", burst, atMean)
	}
	// Geometric: E[Y²] = (2-p)/p² ⇒ ratio ≈ 2-p for ψ ∝ y².
	p := x / S
	wantRatio := 2 - p
	if math.Abs(burst/atMean-wantRatio) > 0.02*wantRatio {
		t.Errorf("ratio %g, want %g", burst/atMean, wantRatio)
	}
}

func TestMeanBurstEdges(t *testing.T) {
	f := utility.Step{Tau: 10}
	if v := MeanBurst(f, 0.05, 50, 0); !math.IsNaN(v) {
		t.Errorf("x=0: %g, want NaN", v)
	}
	if v := MeanBurst(f, 0.05, 50, 51); !math.IsNaN(v) {
		t.Errorf("x>S: %g, want NaN", v)
	}
	if v := MeanBurst(f, 0.05, 50, 50); math.IsNaN(v) || v < 0 {
		t.Errorf("x=S: %g", v)
	}
}

func TestReactionScaleNormalizesBurst(t *testing.T) {
	const kappa = 0.1
	for _, f := range []utility.Function{
		utility.Step{Tau: 10},
		utility.Exponential{Nu: 0.1},
		utility.Power{Alpha: 0},
		utility.Power{Alpha: -1},
	} {
		h := Homogeneous{
			Utility: f, Pop: demand.Pareto(20, 1, 2), Mu: 0.05,
			Servers: 50, Clients: 50,
		}
		scale, err := h.ReactionScale(5, kappa)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if scale <= 0 {
			t.Fatalf("%s: scale %g", f.Name(), scale)
		}
		// Recompute the demand-weighted burst with that scale: must be κ.
		x, err := h.RelaxedOptimal(5)
		if err != nil {
			t.Fatal(err)
		}
		var num, den float64
		for i, d := range h.Pop.Rates {
			num += d * scale * MeanBurst(f, h.Mu, h.Servers, x[i])
			den += d
		}
		if got := num / den; math.Abs(got-kappa) > 1e-6*kappa {
			t.Errorf("%s: normalized burst %g, want %g", f.Name(), got, kappa)
		}
	}
}

func TestReactionScaleOrdersAcrossFamilies(t *testing.T) {
	// Steeper waiting costs need much smaller scales.
	mk := func(alpha float64) float64 {
		h := Homogeneous{
			Utility: utility.Power{Alpha: alpha}, Pop: demand.Pareto(50, 1, 2),
			Mu: 0.05, Servers: 50, Clients: 50,
		}
		s, err := h.ReactionScale(5, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1, s2 := mk(0), mk(-1), mk(-2)
	if !(s0 > s1 && s1 > s2) {
		t.Errorf("scales not decreasing with steepness: %g, %g, %g", s0, s1, s2)
	}
}

func TestReactionScaleRejectsBadKappa(t *testing.T) {
	h := Homogeneous{
		Utility: utility.Step{Tau: 1}, Pop: demand.Pareto(5, 1, 1),
		Mu: 0.05, Servers: 10, Clients: 10,
	}
	if _, err := h.ReactionScale(2, 0); err == nil {
		t.Error("κ=0 accepted")
	}
	if _, err := h.ReactionScale(2, -1); err == nil {
		t.Error("κ<0 accepted")
	}
}
