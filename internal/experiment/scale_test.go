package experiment

import (
	"math"
	"testing"

	"impatience/internal/trace"
	"impatience/internal/utility"
)

// TestStreamingScaleSmoke runs the N = 5000 fused streaming demo end to
// end (shrunk under -race): the run must complete, produce the expected
// contact volume, and — at full size — hold its sampled peak heap below
// the floor a materialized contact list alone would cost. This is the
// CI smoke for the scale headline and deliberately runs under -short.
func TestStreamingScaleSmoke(t *testing.T) {
	sc := ScaleScenario()
	rep, err := sc.StreamingScale(utility.Step{Tau: 60}, 0)
	if err != nil {
		t.Fatalf("StreamingScale: %v", err)
	}
	want := float64(trace.NumPairs(sc.Nodes)) * sc.Mu * sc.Duration
	if got := float64(rep.Contacts); math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Errorf("streamed %g contacts, want ≈%g", got, want)
	}
	if rep.Meetings != rep.Contacts {
		t.Errorf("meetings %d != contacts %d (no faults configured)", rep.Meetings, rep.Contacts)
	}
	if rep.Fulfillments == 0 {
		t.Error("no fulfillments in the scale run")
	}
	if rep.PeakHeapBytes == 0 {
		t.Error("peak heap not sampled")
	}
	if !raceScaleDown {
		// The memory headline: the fused pipeline's whole live heap
		// stays below what the materialized contact slice alone would
		// occupy. Only meaningful at full scale — the shrunk -race demo
		// has too few contacts for the slice to dominate.
		if rep.PeakHeapBytes >= rep.MaterializedBytes {
			t.Errorf("peak heap %d B not below materialized floor %d B (%d contacts)",
				rep.PeakHeapBytes, rep.MaterializedBytes, rep.Contacts)
		}
	}
}

// TestHomogeneousSourceDeterministic: a SourceGen trial is a pure
// function of its seed, the streaming analogue of the TraceGen contract.
func TestHomogeneousSourceDeterministic(t *testing.T) {
	sc := Default()
	sc.Nodes = 10
	sc.Duration = 300
	gen := sc.HomogeneousSource()
	drain := func() []trace.Contact {
		src, err := gen(42)
		if err != nil {
			t.Fatalf("SourceGen: %v", err)
		}
		var out []trace.Contact
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			out = append(out, c)
		}
		return out
	}
	a, b := drain(), drain()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}
