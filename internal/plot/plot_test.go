package plot

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "demo", XLabel: "t", X: []float64{0, 1, 2, 3}}
	t.AddColumn("a", []float64{0, 1, 4, 9})
	t.AddColumn("b", []float64{9, 4, 1, 0})
	return t
}

func TestAddColumnLengthMismatch(t *testing.T) {
	tb := &Table{X: []float64{1, 2}}
	if err := tb.AddColumn("bad", []float64{1}); err == nil {
		t.Error("mismatched column accepted")
	}
}

func TestAddColumnCopies(t *testing.T) {
	tb := &Table{X: []float64{1}}
	src := []float64{5}
	tb.AddColumn("a", src)
	src[0] = 99
	if tb.Columns[0].Y[0] != 5 {
		t.Error("column shares caller storage")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), sb.String())
	}
	if lines[0] != "t,a,b" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "0,0,9" || lines[4] != "3,9,0" {
		t.Errorf("rows wrong: %v", lines)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{XLabel: `x,with"comma`, X: []float64{1}}
	tb.AddColumn("plain", []float64{2})
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), `"x,with""comma",plain`) {
		t.Errorf("escaping wrong: %q", sb.String())
	}
}

func TestCSVNaNBlank(t *testing.T) {
	tb := &Table{XLabel: "x", X: []float64{1}}
	tb.AddColumn("v", []float64{math.NaN()})
	var sb strings.Builder
	tb.WriteCSV(&sb)
	if !strings.Contains(sb.String(), "1,\n") {
		t.Errorf("NaN not blanked: %q", sb.String())
	}
}

func TestSaveCSVCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a", "b", "out.csv")
	if err := sampleTable().SaveCSV(path); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("file missing: %v", err)
	}
}

func TestASCIIRenders(t *testing.T) {
	out := sampleTable().ASCII(60, 12)
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series markers missing")
	}
	if !strings.Contains(out, "legend: *=a  +=b") {
		t.Errorf("legend missing: %q", out)
	}
}

func TestASCIIEmpty(t *testing.T) {
	tb := &Table{Title: "empty", XLabel: "x"}
	if out := tb.ASCII(40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty table rendering: %q", out)
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	tb := &Table{XLabel: "x", X: []float64{0, 1}}
	tb.AddColumn("c", []float64{5, 5})
	out := tb.ASCII(40, 8)
	if !strings.Contains(out, "*") {
		t.Error("constant series not plotted")
	}
}
