package welfare

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"impatience/internal/alloc"
	"impatience/internal/demand"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed|1)) }

func homog(f utility.Function, items, servers int, pure bool) Homogeneous {
	return Homogeneous{
		Utility: f,
		Pop:     demand.Pareto(items, 1, 1),
		Mu:      0.05,
		Servers: servers,
		Clients: servers,
		PureP2P: pure,
	}
}

func TestValidate(t *testing.T) {
	h := homog(utility.Step{Tau: 10}, 5, 10, false)
	if err := h.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	h.Mu = 0
	if err := h.Validate(); err == nil {
		t.Error("µ=0 accepted")
	}
	h = homog(utility.NegLog{}, 5, 10, true)
	if err := h.Validate(); err == nil {
		t.Error("unbounded utility accepted for pure P2P")
	}
	h = homog(utility.Step{Tau: 1}, 5, 10, true)
	h.Clients = 7
	if err := h.Validate(); err == nil {
		t.Error("pure P2P with |C|≠|S| accepted")
	}
}

// Eq. (3): dedicated-node welfare equals the direct sum Σ d_i E[h(Exp(µx_i))].
func TestWelfareDedicatedClosedForm(t *testing.T) {
	h := homog(utility.Exponential{Nu: 0.2}, 4, 10, false)
	x := []float64{3, 1, 0.5, 7}
	var want float64
	for i, d := range h.Pop.Rates {
		want += d * h.Utility.ExpectedGain(h.Mu*x[i])
	}
	if got := h.Welfare(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("got %g, want %g", got, want)
	}
}

// Eq. (5): the pure-P2P correction weights h(0+) by x_i/N.
func TestWelfarePureP2PImmediateTerm(t *testing.T) {
	h := homog(utility.Step{Tau: 5}, 2, 10, true)
	x := []float64{10, 0}
	// Item 0 on all nodes: every request for it is immediate → gain 1.
	// Item 1 nowhere: gain 0.
	want := h.Pop.Rates[0] * 1
	if got := h.Welfare(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestWelfareZeroDemandItemIgnored(t *testing.T) {
	h := homog(utility.Power{Alpha: 0}, 3, 10, false)
	h.Pop.Rates[2] = 0
	x := []float64{5, 5, 0} // item 2 has no replicas and no demand
	if got := h.Welfare(x); math.IsInf(got, -1) || math.IsNaN(got) {
		t.Errorf("zero-demand item poisoned welfare: %g", got)
	}
}

// Theorem 2 (concavity): welfare along the replica count of any single
// item has non-increasing increments.
func TestWelfareConcaveIncrements(t *testing.T) {
	for _, f := range []utility.Function{
		utility.Step{Tau: 10}, utility.Exponential{Nu: 0.1}, utility.Power{Alpha: 0.5}, utility.Power{Alpha: -1},
	} {
		for _, pure := range []bool{false, true} {
			h := homog(f, 1, 50, pure)
			prev := math.Inf(1)
			for k := 0; k < 49; k++ {
				inc := h.itemGain(0, float64(k+1)) - h.itemGain(0, float64(k))
				if inc > prev+1e-9 {
					t.Errorf("%s pure=%v: increment grew at k=%d (%g > %g)", f.Name(), pure, k, inc, prev)
				}
				prev = inc
			}
		}
	}
}

// Greedy equals brute force on instances small enough to enumerate.
func TestGreedyOptimalMatchesBruteForce(t *testing.T) {
	for _, f := range []utility.Function{
		utility.Step{Tau: 8}, utility.Exponential{Nu: 0.3}, utility.Power{Alpha: 0.5},
	} {
		h := Homogeneous{
			Utility: f,
			Pop:     demand.Pareto(3, 1, 1),
			Mu:      0.1,
			Servers: 4,
			Clients: 4,
		}
		const rho = 1 // budget 4 over 3 items
		got, err := h.GreedyOptimal(rho)
		if err != nil {
			t.Fatalf("%s: GreedyOptimal: %v", f.Name(), err)
		}
		var best float64 = math.Inf(-1)
		var bestAlloc alloc.Counts
		for a := 0; a <= 4; a++ {
			for b := 0; a+b <= 4; b++ {
				c := 4 - a - b
				cand := alloc.Counts{a, b, c}
				if u := h.WelfareCounts(cand); u > best {
					best = u
					bestAlloc = cand
				}
			}
		}
		if gu := h.WelfareCounts(got); math.Abs(gu-best) > 1e-9*math.Max(1, math.Abs(best)) {
			t.Errorf("%s: greedy %v (U=%g) vs brute %v (U=%g)", f.Name(), got, gu, bestAlloc, best)
		}
	}
}

func TestGreedyOptimalExhaustsBudget(t *testing.T) {
	h := homog(utility.Step{Tau: 10}, 50, 50, true)
	c, err := h.GreedyOptimal(5)
	if err != nil {
		t.Fatalf("GreedyOptimal: %v", err)
	}
	if c.Total() != 250 {
		t.Errorf("total %d, want 250", c.Total())
	}
	if err := c.Validate(50, 5); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestGreedyOptimalCostUtilityCoversAllItems(t *testing.T) {
	// With a cost-type utility every demanded item must get at least one
	// replica (the first copy has unbounded marginal value).
	h := homog(utility.Power{Alpha: 0}, 50, 50, true)
	c, err := h.GreedyOptimal(5)
	if err != nil {
		t.Fatalf("GreedyOptimal: %v", err)
	}
	for i, v := range c {
		if v == 0 {
			t.Errorf("item %d got no replicas under waiting-cost utility", i)
		}
	}
}

// Property 1 balance: the relaxed optimum satisfies d_i·ϕ(x_i) = const on
// interior coordinates, and for power utilities follows d^{1/(2-α)}.
func TestRelaxedOptimalBalance(t *testing.T) {
	h := homog(utility.Exponential{Nu: 0.15}, 20, 50, false)
	x, err := h.RelaxedOptimal(5)
	if err != nil {
		t.Fatalf("RelaxedOptimal: %v", err)
	}
	var total float64
	for _, v := range x {
		total += v
	}
	if math.Abs(total-250) > 1e-6 {
		t.Errorf("budget %g, want 250", total)
	}
	var lambda float64
	seen := false
	for i, v := range x {
		if v > 1e-6 && v < 50-1e-6 {
			m := h.Pop.Rates[i] * h.Utility.Phi(h.Mu, v)
			if !seen {
				lambda, seen = m, true
			} else if math.Abs(m-lambda) > 1e-4*lambda {
				t.Errorf("balance violated at %d: %g vs %g", i, m, lambda)
			}
		}
	}
	if !seen {
		t.Error("no interior coordinates")
	}
}

func TestRelaxedOptimalPowerLaw(t *testing.T) {
	// Figure 2: for power utility the interior optimum follows
	// x_i ∝ d_i^{1/(2-α)}.
	for _, alpha := range []float64{-1, 0, 0.5} {
		h := homog(utility.Power{Alpha: alpha}, 25, 200, false)
		x, err := h.RelaxedOptimal(2) // budget 400, caps loose
		if err != nil {
			t.Fatalf("α=%g: %v", alpha, err)
		}
		exp := 1 / (2 - alpha)
		ref := x[0] / math.Pow(h.Pop.Rates[0], exp)
		for i := 1; i < len(x); i++ {
			if x[i] >= 200-1e-6 || x[i] <= 1e-9 {
				continue
			}
			want := ref * math.Pow(h.Pop.Rates[i], exp)
			if math.Abs(x[i]-want) > 1e-3*want {
				t.Errorf("α=%g item %d: x=%g, want %g", alpha, i, x[i], want)
			}
		}
	}
}

// The integer greedy optimum should closely track the relaxed optimum.
func TestGreedyNearRelaxed(t *testing.T) {
	h := homog(utility.Step{Tau: 20}, 50, 50, false)
	gi, err := h.GreedyOptimal(5)
	if err != nil {
		t.Fatal(err)
	}
	xr, err := h.RelaxedOptimal(5)
	if err != nil {
		t.Fatal(err)
	}
	ui := h.WelfareCounts(gi)
	ur := h.Welfare(xr)
	if ui > ur+1e-9 {
		t.Errorf("integer optimum %g exceeds relaxed %g", ui, ur)
	}
	if ui < ur-0.02*math.Abs(ur) {
		t.Errorf("integer optimum %g too far below relaxed %g", ui, ur)
	}
}

// Discrete-time welfare approaches the continuous one as δ → 0 (§3.4).
func TestDiscreteWelfareConverges(t *testing.T) {
	h := homog(utility.Exponential{Nu: 0.5}, 10, 20, false)
	c, err := h.GreedyOptimal(2)
	if err != nil {
		t.Fatal(err)
	}
	want := h.WelfareCounts(c)
	prevGap := math.Inf(1)
	for _, delta := range []float64{1, 0.25, 0.05} {
		got := h.WelfareDiscrete(c, delta)
		gap := math.Abs(got - want)
		if gap > prevGap*1.2+1e-12 {
			t.Errorf("δ=%g: gap %g did not shrink (prev %g)", delta, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.02*math.Abs(want) {
		t.Errorf("residual gap %g too large (U=%g)", prevGap, want)
	}
}

// ---------------------------------------------------------------------------
// Heterogeneous (Lemma 1) tests.

func heteroUniform(f utility.Function, items, nodes int, mu float64) Hetero {
	ids := make([]int, nodes)
	for i := range ids {
		ids[i] = i
	}
	return Hetero{
		Utility: f,
		Pop:     demand.Pareto(items, 1, 1),
		Profile: demand.UniformProfile(items, nodes),
		Rates:   trace.UniformRates(nodes, mu),
		Clients: ids,
		Servers: ids,
	}
}

// With uniform rates, Lemma 1 must reduce exactly to the homogeneous
// pure-P2P closed form (Eq. 5).
func TestHeteroReducesToHomogeneous(t *testing.T) {
	const (
		items = 6
		nodes = 8
		mu    = 0.07
		rho   = 2
	)
	f := utility.Step{Tau: 6}
	s := heteroUniform(f, items, nodes, mu)
	h := Homogeneous{Utility: f, Pop: s.Pop, Mu: mu, Servers: nodes, Clients: nodes, PureP2P: true}
	counts := alloc.Counts{2, 3, 1, 0, 4, 6}
	p, err := alloc.Place(counts, nodes, rho)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	got := s.Welfare(p)
	want := h.WelfareCounts(counts)
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("hetero=%g homog=%g", got, want)
	}
}

// Theorem 1 (submodularity): for random systems, random placements A ⊆ B
// and a random extra copy, the marginal at A is ≥ the marginal at B.
func TestSubmodularityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := newRNG(seed)
		nodes := 4 + rng.IntN(4)
		items := 1 + rng.IntN(3)
		rho := items // plenty of room so Set never fails
		fams := []utility.Function{
			utility.Step{Tau: 1 + rng.Float64()*20},
			utility.Exponential{Nu: 0.05 + rng.Float64()},
			utility.Power{Alpha: rng.Float64()},
		}
		f := fams[rng.IntN(len(fams))]
		s := heteroUniform(f, items, nodes, 0.05)
		// Random heterogeneous rates.
		for a := 0; a < nodes; a++ {
			for b := a + 1; b < nodes; b++ {
				s.Rates.Set(a, b, rng.Float64()*0.2)
			}
		}
		// Build nested placements A ⊆ B.
		pA := alloc.NewPlacement(items, nodes, rho)
		pB := alloc.NewPlacement(items, nodes, rho)
		for i := 0; i < items; i++ {
			for m := 0; m < nodes; m++ {
				r := rng.Float64()
				if r < 0.25 {
					pA.Set(i, m, true)
					pB.Set(i, m, true)
				} else if r < 0.5 {
					pB.Set(i, m, true)
				}
			}
		}
		// Random candidate copy not in B.
		var ci, cm int
		found := false
		for tries := 0; tries < 50; tries++ {
			ci, cm = rng.IntN(items), rng.IntN(nodes)
			if !pB.Has(ci, cm) {
				found = true
				break
			}
		}
		if !found {
			return true
		}
		uA := s.Welfare(pA)
		uB := s.Welfare(pB)
		pA.Set(ci, cm, true)
		pB.Set(ci, cm, true)
		dA := s.Welfare(pA) - uA
		dB := s.Welfare(pB) - uB
		if math.IsInf(uA, -1) || math.IsInf(uB, -1) {
			return true // degenerate; cost utility with uncovered demand
		}
		return dA >= dB-1e-9*math.Max(1, math.Abs(dB))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Monotonicity: adding a replica never decreases welfare.
func TestMonotonicityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := newRNG(seed)
		nodes := 3 + rng.IntN(5)
		items := 1 + rng.IntN(4)
		s := heteroUniform(utility.Exponential{Nu: 0.2}, items, nodes, 0.03+rng.Float64()*0.1)
		p := alloc.NewPlacement(items, nodes, items)
		var u float64 = s.Welfare(p)
		for step := 0; step < 6; step++ {
			i, m := rng.IntN(items), rng.IntN(nodes)
			if p.Has(i, m) {
				continue
			}
			p.Set(i, m, true)
			u2 := s.Welfare(p)
			if u2 < u-1e-12 {
				return false
			}
			u = u2
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The lazy submodular greedy must match the plain greedy (recompute all
// marginals each step) on small instances.
func TestGreedySubmodularMatchesPlainGreedy(t *testing.T) {
	rng := newRNG(17)
	const (
		items = 4
		nodes = 5
		rho   = 2
	)
	s := heteroUniform(utility.Step{Tau: 10}, items, nodes, 0.05)
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			s.Rates.Set(a, b, 0.01+rng.Float64()*0.1)
		}
	}
	lazy, err := s.GreedySubmodular(rho)
	if err != nil {
		t.Fatalf("GreedySubmodular: %v", err)
	}
	// Plain greedy reference.
	plain := alloc.NewPlacement(items, nodes, rho)
	for placed := 0; placed < nodes*rho; placed++ {
		bestGain := math.Inf(-1)
		bi, bm := -1, -1
		base := s.Welfare(plain)
		for i := 0; i < items; i++ {
			for m := 0; m < nodes; m++ {
				if plain.Has(i, m) || plain.Load(m) >= rho {
					continue
				}
				plain.Set(i, m, true)
				g := s.Welfare(plain) - base
				plain.Set(i, m, false)
				if g > bestGain {
					bestGain, bi, bm = g, i, m
				}
			}
		}
		if bi < 0 {
			break
		}
		plain.Set(bi, bm, true)
	}
	ul, up := s.Welfare(lazy), s.Welfare(plain)
	if math.Abs(ul-up) > 1e-9*math.Max(1, math.Abs(up)) {
		t.Errorf("lazy greedy U=%g, plain greedy U=%g", ul, up)
	}
}

func TestGreedySubmodularNearBruteForceOptimum(t *testing.T) {
	// (1−1/e) guarantee; on tiny instances greedy is usually optimal.
	rng := newRNG(23)
	const (
		items = 3
		nodes = 3
		rho   = 1
	)
	s := heteroUniform(utility.Exponential{Nu: 0.4}, items, nodes, 0.05)
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			s.Rates.Set(a, b, 0.02+rng.Float64()*0.2)
		}
	}
	g, err := s.GreedySubmodular(rho)
	if err != nil {
		t.Fatal(err)
	}
	ug := s.Welfare(g)
	// Brute force over all assignments of one item per server.
	var best float64 = math.Inf(-1)
	var rec func(m int, p *alloc.Placement)
	p := alloc.NewPlacement(items, nodes, rho)
	rec = func(m int, p *alloc.Placement) {
		if m == nodes {
			if u := s.Welfare(p); u > best {
				best = u
			}
			return
		}
		for i := 0; i < items; i++ {
			p.Set(i, m, true)
			rec(m+1, p)
			p.Set(i, m, false)
		}
	}
	rec(0, p)
	if ug < (1-1/math.E)*best-1e-9 {
		t.Errorf("greedy U=%g below guarantee of optimum %g", ug, best)
	}
	if ug < best-0.05*math.Abs(best) {
		t.Logf("note: greedy U=%g vs optimum %g (within guarantee)", ug, best)
	}
}

func TestHeteroValidate(t *testing.T) {
	s := heteroUniform(utility.Step{Tau: 1}, 3, 4, 0.05)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid rejected: %v", err)
	}
	bad := s
	bad.Clients = []int{9}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range client accepted")
	}
	bad = s
	bad.Profile = demand.UniformProfile(3, 2)
	if err := bad.Validate(); err == nil {
		t.Error("profile width mismatch accepted")
	}
}
