package oracle

// QCR replica-balance check: Query Counting Replication must steer the
// cache toward the relaxed optimum x̃ of Property 1 — and steer it
// *more tightly* as the population grows, since the stochastic
// fluctuation of a per-item count x_i scales like √x_i while x_i itself
// scales with N.

import (
	"fmt"
	"math"

	"impatience/internal/experiment"
	"impatience/internal/parallel"
	"impatience/internal/trace"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// The check runs under the α=0 power utility (waiting cost −t): its
// sharply curved per-item welfare (ϕ ∝ x⁻²) gives the replication
// dynamics a strong restoring force toward x̃, so the steady-state
// counts are informative. (A near-flat utility like a short-deadline
// step realizes ≈97% of the optimal welfare with counts wandering far
// from x̃ — the landscape is flat there, and the count distance would
// test nothing.)
const (
	qcrErrMax       = 0.20 // normalized L1 distance to x̃ at the top rung
	qcrShrink       = 1.0  // err(top) ≤ err(bottom): no divergence with N
	qcrWelfareFloor = 0.90 // cost ratio vs the static optimum's closed form
	qcrWelfareCeil  = 1.60 // (ratio > 1 = QCR pays more waiting cost than OPT)
)

// checkQCRBalance runs the adaptive scheme at a ladder of population
// sizes, time-averages the post-warmup replica counts, and gates the
// normalized L1 distance Σ|x̄_i − x̃_i| / Σx̃_i against the water-filling
// optimum — plus a sanity corridor on the realized welfare.
func (s *session) checkQCRBalance() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	u := utility.Function(utility.Power{Alpha: 0})
	// With Config.Hardened the same gates run against the hardened
	// reaction: its rate-limiter and clamp must be inert for honest
	// reports, so the fixed point — and therefore the distance and
	// welfare gates — must hold exactly as for vanilla QCR.
	scheme := experiment.SchemeQCR
	if s.cfg.Hardened {
		scheme = experiment.SchemeQCRH
	}
	errs := make([]float64, 0, len(s.p.qcrN))
	for _, n := range s.p.qcrN {
		sc := s.p.qcrScenario(n, s.cfg)
		// The dedicated transform ϕ is what the Property-2 reaction is
		// tuned with, so x̃ from the dedicated system is the theoretical
		// fixed point of the replication dynamics.
		ded := welfare.Homogeneous{
			Utility: u, Pop: sc.Pop(), Mu: sc.Mu,
			Servers: sc.Nodes, Clients: sc.Nodes,
		}
		xt, err := ded.RelaxedOptimal(sc.Rho)
		if err != nil {
			return infraFail(res, fmt.Errorf("N=%d: relaxed optimal: %w", n, err))
		}
		gen := sc.HomogeneousTraces()
		type out struct {
			avg  []float64
			rate float64
		}
		outs, err := parallel.RunTrials(sc.Trials, s.cfg.Workers, sc.Seed, func(trial int, seed uint64) (out, error) {
			tr, err := gen(seed)
			if err != nil {
				return out{}, err
			}
			rates := trace.EmpiricalRates(tr)
			mu := rates.Mean()
			if mu <= 0 {
				return out{}, fmt.Errorf("empty trace")
			}
			res, err := sc.RunScheme(scheme, u, tr, rates, mu, uint64(trial), true)
			if err != nil {
				return out{}, err
			}
			o := out{avg: make([]float64, sc.Items), rate: res.AvgUtilityRate}
			bins := 0
			for _, b := range res.Bins {
				if b.T1 < res.MeasureStart || b.Counts == nil {
					continue
				}
				for i, c := range b.Counts {
					o.avg[i] += float64(c)
				}
				bins++
			}
			if bins == 0 {
				return out{}, fmt.Errorf("no post-warmup bins")
			}
			for i := range o.avg {
				o.avg[i] /= float64(bins)
			}
			return o, nil
		})
		if err != nil {
			return infraFail(res, fmt.Errorf("N=%d: %w", n, err))
		}
		xbar := make([]float64, sc.Items)
		var rateSum float64
		for _, o := range outs {
			rateSum += o.rate
			for i, v := range o.avg {
				xbar[i] += v
			}
		}
		for i := range xbar {
			xbar[i] /= float64(len(outs))
		}
		meanRate := rateSum / float64(len(outs))
		var l1, tot float64
		for i := range xbar {
			l1 += math.Abs(xbar[i] - xt[i])
			tot += xt[i]
		}
		errN := l1 / tot
		errs = append(errs, errN)
		res.Details = append(res.Details, fmt.Sprintf(
			"      N=%-4d replica TV distance to x̃: %.4f (%d trials, mean rate %.4f)", n, errN, len(outs), meanRate))

		if n == s.p.qcrN[len(s.p.qcrN)-1] {
			ok, line := assertLine(errN <= qcrErrMax,
				"N=%-4d steady-state distance %.4f ≤ %g (Property 1 balance)", n, errN, qcrErrMax)
			res.Details = append(res.Details, line)
			res.Pass = res.Pass && ok
			res.Effect = maxf(res.Effect, errN/qcrErrMax)

			// Welfare corridor: the adaptive scheme should pay close to the
			// static optimum's closed-form waiting cost (both negative, so
			// ratio > 1 = QCR pays more) and cannot genuinely beat it.
			p2p := sc.Homogeneous(u)
			opt, err := p2p.GreedyOptimal(sc.Rho)
			if err != nil {
				return infraFail(res, fmt.Errorf("N=%d: greedy: %w", n, err))
			}
			uopt := p2p.WelfareCounts(opt)
			ratio := meanRate / uopt
			ok, line = assertLine(ratio >= qcrWelfareFloor && ratio <= qcrWelfareCeil,
				"N=%-4d QCR cost rate %.4f = %.2f·U(OPT) within [%g, %g]", n, meanRate, ratio, qcrWelfareFloor, qcrWelfareCeil)
			res.Details = append(res.Details, line)
			res.Pass = res.Pass && ok
			if ratio < qcrWelfareFloor || ratio > qcrWelfareCeil {
				res.Effect = maxf(res.Effect, maxf(qcrWelfareFloor/ratio, ratio/qcrWelfareCeil))
			}
		}
	}
	first, last := errs[0], errs[len(errs)-1]
	ok, line := assertLine(last <= qcrShrink*first,
		"concentration: distance %.4f → %.4f (×%.2f, must not exceed ×%g) along N=%v",
		first, last, last/first, qcrShrink, s.p.qcrN)
	res.Details = append(res.Details, line)
	res.Pass = res.Pass && ok
	res.Effect = maxf(res.Effect, (last/first)/qcrShrink)
	return res
}
