package rates

import (
	"fmt"
	"math/rand/v2"

	"impatience/internal/numeric"
	"impatience/internal/trace"
)

// Source streams the model's contact process with two-level alias
// sampling: the superposed Poisson clock ticks at TotalRate, the block
// pair of each event comes from one draw of the top table (over the
// positive-rate block pairs), and the endpoints come from the member
// tables of the two communities. Same-community events redraw the pair
// until the endpoints differ; the rejection is what makes the
// within-block distribution exactly weight-bilinear, and it
// terminates with probability one because zero-aggregate blocks (fewer
// than two positive-weight members) are never in the top table. State is
// O(N + C²) and each contact is O(1) expected work.
//
// Source implements trace.Source and trace.Reopenable. It is the serial
// reference sampler; ShardedSource generates the same process as
// independent block-group sub-streams for parallel generation.
type Source struct {
	m        *Model
	duration float64
	seed     uint64
	rng      *rand.Rand
	top      *numeric.Alias
	member   []*numeric.Alias
	t        float64
	done     bool
}

// NewSource builds the streaming sampler. The contact sequence is a pure
// function of (model, duration, seed).
func NewSource(m *Model, duration float64, seed uint64) (*Source, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("rates: duration %g not positive", duration)
	}
	top, err := numeric.NewAlias(m.pairW)
	if err != nil {
		return nil, fmt.Errorf("rates: block-pair table: %w", err)
	}
	member, err := m.memberAliases()
	if err != nil {
		return nil, err
	}
	return &Source{
		m:        m,
		duration: duration,
		seed:     seed,
		rng:      rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		top:      top,
		member:   member,
	}, nil
}

// Model returns the rate model the source samples from.
func (s *Source) Model() *Model { return s.m }

// Nodes implements trace.Source.
func (s *Source) Nodes() int { return s.m.nodes }

// Duration implements trace.Source.
func (s *Source) Duration() float64 { return s.duration }

// Next implements trace.Source: one exponential clock step, one top
// draw, two member draws (plus rejections within a community). Zero
// allocations.
func (s *Source) Next() (trace.Contact, bool) {
	if s.done {
		return trace.Contact{}, false
	}
	s.t += s.rng.ExpFloat64() / s.m.total
	if s.t > s.duration {
		s.done = true
		return trace.Contact{}, false
	}
	cd := s.m.pairC[s.top.Sample(s.rng)]
	a, b := samplePair(s.m, s.member, int(cd[0]), int(cd[1]), s.rng)
	return trace.Contact{T: s.t, A: a, B: b}, true
}

// Reopen implements trace.Reopenable: the fresh source re-derives its
// RNG from the recorded seed and shares the alias tables (they are
// immutable after construction), so reopening is O(1) however large the
// model.
func (s *Source) Reopen() (trace.Source, error) {
	return &Source{
		m:        s.m,
		duration: s.duration,
		seed:     s.seed,
		rng:      rand.New(rand.NewPCG(s.seed, s.seed^0x9e3779b97f4a7c15)),
		top:      s.top,
		member:   s.member,
	}, nil
}

// samplePair draws the endpoints of one contact in block pair (c, d),
// returned with A < B per the digest-stable ordering convention.
func samplePair(m *Model, member []*numeric.Alias, c, d int, rng *rand.Rand) (int, int) {
	var a, b int
	if c == d {
		// Reject and redraw the WHOLE pair on a == b: redrawing only the
		// second endpoint would distribute pairs as q_a·q_b/(1−q_a),
		// which is weight-bilinear only for uniform weights. Redrawing
		// both gives P{a,b} = 2·q_a·q_b / (1 − Σ q_i²) ∝ w_a·w_b — the
		// exact within-block distribution the aggregate (CW²−CSq)/2
		// assumes (pinned to 1e-12 by the property test).
		mem := m.members[c]
		for {
			a = int(mem[member[c].Sample(rng)])
			b = int(mem[member[c].Sample(rng)])
			if a != b {
				break
			}
		}
	} else {
		a = int(m.members[c][member[c].Sample(rng)])
		b = int(m.members[d][member[d].Sample(rng)])
	}
	if a > b {
		a, b = b, a
	}
	return a, b
}
