package rates

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSpec is wrapped by every spec-syntax failure in ParseRates (unknown
// kind, unknown or duplicate key, malformed number). Model-semantic
// failures (negative rates, empty communities, …) surface as ErrModel
// from the constructors instead, so callers can tell "you typed it
// wrong" from "that model is invalid".
var ErrSpec = errors.New("rates: invalid spec")

// Parse-level resource caps. Model construction is O(N + C²), so a spec
// that smuggles in a huge population or community grid would allocate
// gigabytes before any semantic check could reject it; the parser bounds
// both at generous multiples of the million-node target instead. Direct
// constructor callers are not capped — the limits are a CLI guard, not a
// model property.
const (
	maxSpecNodes = 16 << 20 // 16·2²⁰ ≈ 16.8M nodes
	maxSpecComms = 4096     // C² block entries ≤ 16.8M
)

// ParseRates builds a structured rate model from a one-line spec of the
// form kind:key=value,key=value,…:
//
//	community:n=1000,c=8,in=0.5,out=0.01
//	hubspoke:n=1000,hubs=10,hh=0.5,hs=0.1,ss=0.001
//	distance:n=1000,cells=8x8,mu0=0.1,lambda=500,w=4000,h=4000,seed=1
//
// n is required; every other key has the default shown by DefaultSpecs.
// This is the CLI surface of the package (agesim -rates, agetrace,
// agebench), so it is fuzzed: no input may panic, and every rejection
// wraps ErrSpec or ErrModel.
func ParseRates(spec string) (*Model, error) {
	kind, rest, found := strings.Cut(spec, ":")
	if !found {
		return nil, fmt.Errorf("%w: %q has no kind: prefix", ErrSpec, spec)
	}
	kv, err := parseKV(rest)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "community":
		cfg := CommunityConfig{Communities: 8, In: 0.5, Out: 0.01}
		err := takeKeys(kv, map[string]func(string) error{
			"n":   intKey(&cfg.Nodes),
			"c":   intKey(&cfg.Communities),
			"in":  floatKey(&cfg.In),
			"out": floatKey(&cfg.Out),
		})
		if err != nil {
			return nil, err
		}
		if err := specCap("n", cfg.Nodes, maxSpecNodes); err != nil {
			return nil, err
		}
		if err := specCap("c", cfg.Communities, maxSpecComms); err != nil {
			return nil, err
		}
		return NewCommunity(cfg)
	case "hubspoke":
		cfg := HubSpokeConfig{Hubs: 10, HubHub: 0.5, HubSpoke: 0.1, SpokeSpoke: 0.001}
		err := takeKeys(kv, map[string]func(string) error{
			"n":    intKey(&cfg.Nodes),
			"hubs": intKey(&cfg.Hubs),
			"hh":   floatKey(&cfg.HubHub),
			"hs":   floatKey(&cfg.HubSpoke),
			"ss":   floatKey(&cfg.SpokeSpoke),
		})
		if err != nil {
			return nil, err
		}
		if err := specCap("n", cfg.Nodes, maxSpecNodes); err != nil {
			return nil, err
		}
		return NewHubSpoke(cfg)
	case "distance":
		cfg := DistanceConfig{CellsX: 8, CellsY: 8, Width: 4000, Height: 4000, Mu0: 0.1, Lambda: 500, Seed: 1}
		err := takeKeys(kv, map[string]func(string) error{
			"n":      intKey(&cfg.Nodes),
			"cells":  cellsKey(&cfg.CellsX, &cfg.CellsY),
			"mu0":    floatKey(&cfg.Mu0),
			"lambda": floatKey(&cfg.Lambda),
			"w":      floatKey(&cfg.Width),
			"h":      floatKey(&cfg.Height),
			"seed":   seedKey(&cfg.Seed),
		})
		if err != nil {
			return nil, err
		}
		if err := specCap("n", cfg.Nodes, maxSpecNodes); err != nil {
			return nil, err
		}
		// Cap each grid dimension before multiplying so the product cannot
		// overflow, then cap the realized community count C = GX·GY.
		if err := specCap("cells", cfg.CellsX, maxSpecComms); err != nil {
			return nil, err
		}
		if err := specCap("cells", cfg.CellsY, maxSpecComms); err != nil {
			return nil, err
		}
		if cfg.CellsX > 0 && cfg.CellsY > 0 {
			if err := specCap("cells", cfg.CellsX*cfg.CellsY, maxSpecComms); err != nil {
				return nil, err
			}
		}
		return NewDistanceKernel(cfg)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q (want community, hubspoke, or distance)", ErrSpec, kind)
	}
}

// DefaultSpecs documents one valid spec per model kind, with defaults
// filled in; the CLIs print it in usage text.
func DefaultSpecs() []string {
	return []string{
		"community:n=<N>,c=8,in=0.5,out=0.01",
		"hubspoke:n=<N>,hubs=10,hh=0.5,hs=0.1,ss=0.001",
		"distance:n=<N>,cells=8x8,mu0=0.1,lambda=500,w=4000,h=4000,seed=1",
	}
}

// parseKV splits "k=v,k=v" into an ordered key/value list, rejecting
// empty clauses, missing '=', and duplicate keys.
func parseKV(rest string) ([][2]string, error) {
	var kv [][2]string
	seen := map[string]bool{}
	for _, clause := range strings.Split(rest, ",") {
		k, v, found := strings.Cut(clause, "=")
		if !found || k == "" {
			return nil, fmt.Errorf("%w: clause %q is not key=value", ErrSpec, clause)
		}
		if seen[k] {
			return nil, fmt.Errorf("%w: duplicate key %q", ErrSpec, k)
		}
		seen[k] = true
		kv = append(kv, [2]string{k, v})
	}
	return kv, nil
}

// takeKeys applies each clause's setter, rejecting unknown keys and
// requiring n.
func takeKeys(kv [][2]string, setters map[string]func(string) error) error {
	sawN := false
	for _, pair := range kv {
		set, ok := setters[pair[0]]
		if !ok {
			return fmt.Errorf("%w: unknown key %q", ErrSpec, pair[0])
		}
		if err := set(pair[1]); err != nil {
			return fmt.Errorf("%w: key %q: %v", ErrSpec, pair[0], err)
		}
		if pair[0] == "n" {
			sawN = true
		}
	}
	if !sawN {
		return fmt.Errorf("%w: missing required key n", ErrSpec)
	}
	return nil
}

// specCap rejects a spec value past its parse-level resource cap.
func specCap(key string, v, max int) error {
	if v > max {
		return fmt.Errorf("%w: %s=%d exceeds the spec cap %d", ErrSpec, key, v, max)
	}
	return nil
}

func intKey(dst *int) func(string) error {
	return func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		*dst = n
		return nil
	}
}

func floatKey(dst *float64) func(string) error {
	return func(v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		*dst = f
		return nil
	}
}

func seedKey(dst *uint64) func(string) error {
	return func(v string) error {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return err
		}
		*dst = u
		return nil
	}
}

func cellsKey(dx, dy *int) func(string) error {
	return func(v string) error {
		xs, ys, found := strings.Cut(v, "x")
		if !found {
			return fmt.Errorf("want GXxGY, got %q", v)
		}
		x, err := strconv.Atoi(xs)
		if err != nil {
			return err
		}
		y, err := strconv.Atoi(ys)
		if err != nil {
			return err
		}
		*dx, *dy = x, y
		return nil
	}
}
