package experiment

import (
	"fmt"

	"impatience/internal/adversary"
	"impatience/internal/parallel"
	"impatience/internal/plot"
	"impatience/internal/stats"
	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// Robustness figure family: the paper derives QCR under honest nodes and
// stationary demand; these sweeps quantify what each violation costs and
// how much of it the hardened reaction (SchemeQCRH) wins back. The
// comparison oracle is the true-demand OPT — a static optimum computed
// from the real popularity, which adversaries cannot game because it has
// no reaction to feed.

// adversarySweep runs the scheme set at each misbehavior intensity x,
// with build(x) describing the adversarial workload, and returns the mean
// AvgUtilityRate per scheme plus 5%/95% bands for the QCR variants.
// Every scheme within a trial faces the identical adversary: role
// assignment depends only on the adversary config, which is shared.
func (sc Scenario) adversarySweep(u utility.Function, xs []float64, build func(x float64) adversary.Config, schemes []string, title, xlabel string) (*plot.Table, error) {
	gen := sc.HomogeneousSources()
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([][]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return nil, err
		}
		// One rates pass, then one lockstep batch pass per intensity over
		// a reopened view of the same contact sequence.
		ro, err := asReopenable(src)
		if err != nil {
			return nil, err
		}
		rates, err := trace.EmpiricalRatesFrom(ro)
		if err != nil {
			return nil, err
		}
		mu := rates.Mean()
		rows := make([][]float64, len(schemes)) // scheme → per-x sample
		for si := range rows {
			rows[si] = make([]float64, len(xs))
		}
		for xi, x := range xs {
			ac := build(x)
			ac.Seed = sc.Seed*50021 + uint64(trial)*127 + uint64(xi)
			plan := &FaultPlan{Adversary: &ac}
			pass, err := ro.Reopen()
			if err != nil {
				return nil, err
			}
			results, err := sc.runBatchOn(schemes, u, rates, mu, uint64(trial), false, plan, pass)
			if err != nil {
				return nil, fmt.Errorf("experiment: at %s=%g: %w", xlabel, x, err)
			}
			for si := range schemes {
				rows[si][xi] = results[si].AvgUtilityRate
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	per := make(map[string][][]float64, len(schemes)) // scheme → per-x trial samples
	for _, s := range schemes {
		per[s] = make([][]float64, len(xs))
	}
	for _, rows := range outs {
		for si, s := range schemes {
			for xi := range xs {
				per[s][xi] = append(per[s][xi], rows[si][xi])
			}
		}
	}
	table := &plot.Table{Title: title, XLabel: xlabel}
	table.X = append(table.X, xs...)
	for _, s := range schemes {
		mean := make([]float64, len(xs))
		for xi := range xs {
			mean[xi] = stats.Summarize(per[s][xi]).Mean
		}
		if err := table.AddColumn(s, mean); err != nil {
			return nil, err
		}
	}
	for _, s := range []string{SchemeQCR, SchemeQCRH} {
		if _, ok := per[s]; !ok {
			continue
		}
		lo := make([]float64, len(xs))
		hi := make([]float64, len(xs))
		for xi := range xs {
			sum := stats.Summarize(per[s][xi])
			lo[xi], hi[xi] = sum.P5, sum.P95
		}
		table.AddColumn(s+" p5", lo)
		table.AddColumn(s+" p95", hi)
	}
	return table, nil
}

// RobustnessDishonest is the headline degradation curve: a growing
// fraction of nodes inflates its query counters by mult. Vanilla QCR
// mints replicas of whatever the liars request, evicting honestly demanded
// content; the hardened reaction caps, rate-limits and clamps the same
// reports. OPT, with no reaction to game, bounds what any defense could
// recover.
func RobustnessDishonest(sc Scenario, u utility.Function, fracs []float64, mult float64) (*plot.Table, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}
	}
	if mult <= 0 {
		mult = 25
	}
	return sc.adversarySweep(u, fracs,
		func(f float64) adversary.Config { return adversary.Config{DishonestFrac: f, Mult: mult} },
		[]string{SchemeQCR, SchemeQCRH, SchemeOPT},
		fmt.Sprintf("Robustness: utility rate vs dishonest-node fraction (×%g counters)", mult),
		"dishonest fraction")
}

// RobustnessInflation fixes the dishonest fraction and sweeps the
// counter multiplier (the MULT knob): how big a lie does it take to
// collapse vanilla QCR, and where does the hardened reaction saturate
// the attack.
func RobustnessInflation(sc Scenario, u utility.Function, mults []float64, frac float64) (*plot.Table, error) {
	if len(mults) == 0 {
		mults = []float64{1, 2, 5, 10, 25, 50, 100}
	}
	if frac <= 0 || frac > 1 {
		frac = 0.2
	}
	return sc.adversarySweep(u, mults,
		func(m float64) adversary.Config { return adversary.Config{DishonestFrac: frac, Mult: m} },
		[]string{SchemeQCR, SchemeQCRH, SchemeOPT},
		fmt.Sprintf("Robustness: utility rate vs counter multiplier (%.0f%% dishonest)", frac*100),
		"counter multiplier")
}

// RobustnessFreeRiders sweeps the fraction of nodes that consume content
// but never serve, store, or carry mandates. Free-riding shrinks the
// effective server population for every scheme; QCR additionally loses
// the refused cache writes its mandates would have performed.
func RobustnessFreeRiders(sc Scenario, u utility.Function, fracs []float64) (*plot.Table, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	return sc.adversarySweep(u, fracs,
		func(f float64) adversary.Config { return adversary.Config{FreeRiderFrac: f} },
		[]string{SchemeQCR, SchemeQCRH, SchemeOPT},
		"Robustness: utility rate vs free-rider fraction",
		"free-rider fraction")
}

// RobustnessFlashCrowd sweeps demand nonstationarity: the popularity
// ranking rotates by one position every period minutes (synth.FlashCrowd),
// so yesterday's cold item is today's flash crowd. The static allocations
// are tuned to the time-averaged base demand and cannot follow; QCR
// re-converges after every shift, faster for shorter catalogs than for
// short periods.
func RobustnessFlashCrowd(sc Scenario, u utility.Function, periods []float64) (*plot.Table, error) {
	if len(periods) == 0 {
		periods = []float64{0, 2000, 1000, 500, 250}
	}
	pop := sc.Pop()
	return sc.adversarySweep(u, periods,
		func(p float64) adversary.Config {
			if p <= 0 {
				return adversary.Config{} // stationary baseline
			}
			s, err := synth.FlashCrowd(pop, p, sc.Duration, 1)
			if err != nil {
				// Surfaced by Config.Validate inside the run.
				return adversary.Config{Schedule: nil}
			}
			return adversary.Config{Schedule: s}
		},
		[]string{SchemeQCR, SchemeQCRH, SchemeUNI, SchemeOPT},
		"Robustness: utility rate vs popularity-churn period",
		"rotation period (min)")
}

// DiurnalSources wraps the scenario's homogeneous contact stream with a
// day/night activity profile (adversary.Modulate): contacts compress into
// the [dayStart, dayEnd) minute-of-day window, with nightFactor scaling
// the remaining night activity. Pairwise empirical rates over the full
// horizon are untouched, so allocations tuned from them stay comparable.
func (sc Scenario) DiurnalSources(dayStart, dayEnd, nightFactor float64) SourceGen {
	base := sc.HomogeneousSources()
	return func(seed uint64) (trace.Source, error) {
		src, err := base(seed)
		if err != nil {
			return nil, err
		}
		return adversary.DayNight(src, dayStart, dayEnd, nightFactor)
	}
}

// RobustnessDiurnal sweeps contact nonstationarity: the same contacts are
// time-changed through ever harsher day/night profiles (12h day window,
// night activity scaled by each factor; factor 1 is the memoryless
// baseline). The meeting-rate estimate µ feeding ψ is a whole-horizon
// average, so QCR's reaction is mistuned at night and overshoots by day —
// the sweep measures how much that costs against the static allocations,
// which only care about total meeting counts.
func RobustnessDiurnal(sc Scenario, u utility.Function, nightFactors []float64) (*plot.Table, error) {
	if len(nightFactors) == 0 {
		nightFactors = []float64{1, 0.5, 0.25, 0.1, 0.05}
	}
	schemes := []string{SchemeQCR, SchemeQCRH, SchemeUNI, SchemeOPT}
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([][]float64, error) {
		base := sc.HomogeneousSources()
		src, err := base(seed)
		if err != nil {
			return nil, err
		}
		ro, err := asReopenable(src)
		if err != nil {
			return nil, err
		}
		// The time change preserves whole-horizon empirical rates, so one
		// rates pass over the unmodulated stream serves every profile.
		rates, err := trace.EmpiricalRatesFrom(ro)
		if err != nil {
			return nil, err
		}
		mu := rates.Mean()
		rows := make([][]float64, len(schemes))
		for si := range rows {
			rows[si] = make([]float64, len(nightFactors))
		}
		for xi, nf := range nightFactors {
			pass, err := ro.Reopen()
			if err != nil {
				return nil, err
			}
			if nf < 1 {
				if pass, err = adversary.DayNight(pass, 480, 1200, nf); err != nil {
					return nil, err
				}
			}
			results, err := sc.runBatchOn(schemes, u, rates, mu, uint64(trial), false, nil, pass)
			if err != nil {
				return nil, fmt.Errorf("experiment: at night factor %g: %w", nf, err)
			}
			for si := range schemes {
				rows[si][xi] = results[si].AvgUtilityRate
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	table := &plot.Table{
		Title:  "Robustness: utility rate vs day/night contact nonstationarity",
		XLabel: "night activity factor",
	}
	table.X = append(table.X, nightFactors...)
	for si, s := range schemes {
		mean := make([]float64, len(nightFactors))
		for xi := range nightFactors {
			var sum float64
			for _, rows := range outs {
				sum += rows[si][xi]
			}
			mean[xi] = sum / float64(len(outs))
		}
		if err := table.AddColumn(s, mean); err != nil {
			return nil, err
		}
	}
	return table, nil
}
