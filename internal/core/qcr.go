// Package core implements the paper's primary contribution: Query
// Counting Replication (QCR) with Mandate Routing (Section 5).
//
// QCR is a reactive, fully local replication protocol. Each outstanding
// request keeps a query counter incremented at every meeting; when the
// request is finally fulfilled the counter value y — whose expectation is
// |S|/x_i, a free local estimate of the item's replica scarcity — is fed
// to a reaction function ψ and ⌈ψ(y)⌉-ish replicas of the item are
// scheduled for creation. Because replicas cannot be minted on the spot
// in an opportunistic network, the schedule takes the form of replication
// mandates that execute (copy the item onto a node lacking it, evicting a
// random cache slot) when meetings allow, and that are routed toward
// nodes holding the item so they do not starve (Section 5.3). With ψ
// tuned per Property 2 to the population's delay-utility, the protocol's
// steady state is the optimal cache allocation.
package core

import (
	"math"
	"math/rand/v2"
	"sort"

	"impatience/internal/utility"
)

// Cache is the view of the global distributed cache a replication policy
// acts through. It is implemented by the simulator's state.
type Cache interface {
	// Nodes and Items return the population and catalog sizes.
	Nodes() int
	Items() int
	// Has reports whether node's cache holds item.
	Has(node, item int) bool
	// Write inserts item into node's cache, evicting a uniformly random
	// non-sticky slot. It reports false when the write is impossible
	// (node already holds the item, or all its slots are pinned).
	Write(node, item int) bool
	// StickyNode returns the node holding item's pinned replica, or -1.
	StickyNode(item int) int
}

// Policy decides replication. The simulator invokes OnFulfill once per
// fulfilled request and OnMeeting once per meeting (after fulfillments).
type Policy interface {
	Name() string
	// Init is called once before the simulation starts.
	Init(c Cache)
	// OnFulfill reports that node's request for item, whose query counter
	// reached queries, was fulfilled by peer at time now after waiting
	// age time units (0 for immediate local fulfillment).
	OnFulfill(c Cache, node, peer, item, queries int, age, now float64)
	// OnMeeting is invoked for every meeting of a and b at time now.
	OnMeeting(c Cache, a, b int, now float64)
}

// Static is the no-op policy used for the fixed-allocation competitors
// (OPT, UNI, SQRT, PROP, DOM): the cache is set up once by an oracle with
// a perfect control channel and never changes.
type Static struct{ Label string }

// Name implements Policy.
func (s Static) Name() string {
	if s.Label == "" {
		return "static"
	}
	return s.Label
}

// Init implements Policy.
func (Static) Init(Cache) {}

// OnFulfill implements Policy.
func (Static) OnFulfill(Cache, int, int, int, int, float64, float64) {}

// OnMeeting implements Policy.
func (Static) OnMeeting(Cache, int, int, float64) {}

// ReactionFunc maps a final query-counter value to the (real-valued)
// number of replicas to create for the fulfilled item.
type ReactionFunc func(queries int) float64

// TunedReaction builds the Property-2 reaction function for delay-utility
// f under contact rate mu and server count servers: ψ(y) ∝ (S/y)·ϕ(S/y).
// scale sets the proportionality constant (1 is a reasonable default; it
// affects convergence speed and replication traffic, not the fixed
// point). The counter value 0 (immediate fulfillment) maps to 0.
func TunedReaction(f utility.Function, mu float64, servers int, scale float64) ReactionFunc {
	if scale <= 0 {
		scale = 1
	}
	S := float64(servers)
	return func(queries int) float64 {
		if queries <= 0 {
			return 0
		}
		return scale * utility.Psi(f, mu, S, float64(queries))
	}
}

// TunedReactions builds the per-item Property-2 reaction for a catalog
// whose items follow different delay-utilities; nil entries fall back to
// fallback (which may itself be nil when every entry is set).
func TunedReactions(fs []utility.Function, fallback utility.Function, mu float64, servers int, scale float64) func(item, queries int) float64 {
	if scale <= 0 {
		scale = 1
	}
	S := float64(servers)
	return func(item, queries int) float64 {
		if queries <= 0 {
			return 0
		}
		f := fallback
		if item < len(fs) && fs[item] != nil {
			f = fs[item]
		}
		if f == nil {
			return 0
		}
		return scale * utility.Psi(f, mu, S, float64(queries))
	}
}

// PathReplication is the classical ψ(y) = scale·y reaction of Cohen &
// Shenker, whose equilibrium is the square-root allocation; provided as a
// baseline reaction.
func PathReplication(scale float64) ReactionFunc {
	if scale <= 0 {
		scale = 1
	}
	return func(queries int) float64 {
		if queries <= 0 {
			return 0
		}
		return scale * float64(queries)
	}
}

// ConstantReaction is ψ(y) = c, the passive replication that converges to
// the proportional allocation (optimal only for neg-log impatience).
func ConstantReaction(c float64) ReactionFunc {
	return func(queries int) float64 {
		if queries <= 0 {
			return 0
		}
		return c
	}
}

// QCR is the Query Counting Replication policy.
type QCR struct {
	// Reaction maps query-counter values to replica budgets. Required
	// unless PerItemReaction is set.
	Reaction ReactionFunc
	// PerItemReaction, when non-nil, overrides Reaction with a per-item
	// reaction function — the tuning for catalogs whose items follow
	// different delay-utilities (Section 3.2). See TunedReactions.
	PerItemReaction func(item, queries int) float64
	// MandateRouting moves mandates toward nodes holding the item
	// (Section 5.3). Disabling it reproduces the divergence pathology of
	// Figure 3 ("QCRWOM").
	MandateRouting bool
	// Rewriting consumes a mandate when both meeting nodes already hold
	// the item (Section 5.1, "replication with rewriting"). The paper's
	// evaluation keeps this off.
	Rewriting bool
	// StrictSource requires the mandate-holding node itself to possess
	// the item for a mandate to execute (Section 5.1's "transmit them
	// proactively": the replicator sources the copy). This is what makes
	// mandate routing essential — without routing, mandates stranded on
	// nodes that lost (or never had) the item stall indefinitely and the
	// allocation diverges (the Figure 3 pathology). With StrictSource
	// off, a mandate may also execute by pulling the copy from the peer
	// onto its own node, a more forgiving variant.
	StrictSource bool
	// MaxMandates caps the mandates created per fulfillment (0 = no cap).
	// Steep reaction functions (power utilities with α ≪ 1 have
	// ψ(y) ∝ y^{1-α}) occasionally meet a very large query counter and
	// emit replica bursts comparable to the whole global cache; the
	// resulting allocation variance hurts the concave welfare far more
	// than the clipped tail helps the equilibrium. A cap of about half
	// the server count preserves the fixed point in the common-counter
	// regime while taming the tail.
	MaxMandates int
	// Seed makes the policy's randomized rounding and odd-mandate splits
	// deterministic.
	Seed uint64

	rng      *rand.Rand
	mandates []map[int]int // per node: item → pending mandate count
	moved    int           // mandates that changed nodes (routing traffic)
}

// Name implements Policy.
func (q *QCR) Name() string {
	if q.MandateRouting {
		return "qcr"
	}
	return "qcr-no-routing"
}

// Init implements Policy.
func (q *QCR) Init(c Cache) {
	q.rng = rand.New(rand.NewPCG(q.Seed, q.Seed^0x51ce5ca1ab1e))
	q.mandates = make([]map[int]int, c.Nodes())
	for i := range q.mandates {
		q.mandates[i] = make(map[int]int)
	}
}

// TotalMandates returns the number of pending mandates across all nodes,
// the divergence indicator of Figure 3.
func (q *QCR) TotalMandates() int {
	var sum int
	for _, m := range q.mandates {
		for _, v := range m {
			sum += v
		}
	}
	return sum
}

// MandatesMoved returns the cumulative number of mandates transferred
// between nodes by mandate routing — the protocol's control overhead
// beyond content transfers (mandates are tiny, but we account for them).
func (q *QCR) MandatesMoved() int { return q.moved }

// MandatesFor returns pending mandates for one item across all nodes.
func (q *QCR) MandatesFor(item int) int {
	var sum int
	for _, m := range q.mandates {
		sum += m[item]
	}
	return sum
}

// OnFulfill implements Policy: convert the query count into mandates via
// the reaction function with randomized rounding (preserving E[replicas]
// = ψ(y), which the steady-state analysis of Section 5.2 relies on).
func (q *QCR) OnFulfill(c Cache, node, peer, item, queries int, age, now float64) {
	var r float64
	if q.PerItemReaction != nil {
		r = q.PerItemReaction(item, queries)
	} else {
		r = q.Reaction(queries)
	}
	if r <= 0 || math.IsNaN(r) {
		return
	}
	if q.MaxMandates > 0 && r > float64(q.MaxMandates) {
		r = float64(q.MaxMandates)
	}
	k := int(math.Floor(r))
	if q.rng.Float64() < r-math.Floor(r) {
		k++
	}
	if k > 0 {
		q.mandates[node][item] += k
	}
}

// OnMeeting implements Policy: execute at most one mandate per item
// (creating a replica on whichever of the two nodes lacks the item), then
// route the remainder.
func (q *QCR) OnMeeting(c Cache, a, b int, now float64) {
	ma, mb := q.mandates[a], q.mandates[b]
	if len(ma) == 0 && len(mb) == 0 {
		return
	}
	// Collect the union of items with pending mandates on either side, in
	// sorted order: map iteration order is randomized and would make runs
	// irreproducible.
	items := make([]int, 0, len(ma)+len(mb))
	for i := range ma {
		items = append(items, i)
	}
	for i := range mb {
		if _, dup := ma[i]; !dup {
			items = append(items, i)
		}
	}
	sort.Ints(items)
	for _, item := range items {
		na, nb := ma[item], mb[item] // working per-side counts
		if na+nb == 0 {
			continue
		}
		hasA, hasB := c.Has(a, item), c.Has(b, item)
		switch {
		case hasA && hasB:
			if q.Rewriting {
				// A (vacuous) replication consumes one mandate.
				if na >= nb && na > 0 {
					na--
				} else if nb > 0 {
					nb--
				}
			}
		case hasA && !hasB:
			// The copy flows a → b. Under StrictSource only a's own
			// mandates can drive it; otherwise either side's can (the
			// holder's pile is consumed first when available).
			if q.StrictSource {
				if na > 0 && c.Write(b, item) {
					na--
					hasB = true
				}
			} else if c.Write(b, item) {
				if na > 0 {
					na--
				} else {
					nb--
				}
				hasB = true
			}
		case !hasA && hasB:
			if q.StrictSource {
				if nb > 0 && c.Write(a, item) {
					nb--
					hasA = true
				}
			} else if c.Write(a, item) {
				if nb > 0 {
					nb--
				} else {
					na--
				}
				hasA = true
			}
		}
		if q.MandateRouting {
			na, nb = q.route(c, a, b, item, na+nb, hasA, hasB)
		}
		// Any increase relative to the pre-meeting pile crossed over.
		if gain := na - ma[item]; gain > 0 {
			q.moved += gain
		}
		if gain := nb - mb[item]; gain > 0 {
			q.moved += gain
		}
		setOrDelete(ma, item, na)
		setOrDelete(mb, item, nb)
	}
}

// route redistributes an item's surviving mandates between the two
// meeting nodes (Section 6.1): all to a sole holder, ceil(2/3) to the
// item's sticky node when both hold it, an even split otherwise.
func (q *QCR) route(c Cache, a, b, item, total int, hasA, hasB bool) (na, nb int) {
	if total == 0 {
		return 0, 0
	}
	sticky := c.StickyNode(item)
	switch {
	case hasA && !hasB:
		return total, 0
	case hasB && !hasA:
		return 0, total
	case sticky == a && hasA && hasB:
		na = (2*total + 2) / 3 // ceil(2/3·total)
		return na, total - na
	case sticky == b && hasA && hasB:
		nb = (2*total + 2) / 3
		return total - nb, nb
	default:
		// Both or neither hold the item: split evenly, odd one at random.
		na = total / 2
		nb = total - na
		if na != nb && q.rng.IntN(2) == 0 {
			na, nb = nb, na
		}
		return na, nb
	}
}

func setOrDelete(m map[int]int, item, v int) {
	if v <= 0 {
		delete(m, item)
	} else {
		m[item] = v
	}
}
