package faults

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseTimeline(t *testing.T) {
	in := `# scripted outage
30 2 down
10 0 down
10 0 up
45.5 1 down
10 1 up
`
	evs, err := ParseTimeline(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{T: 10, Node: 0, Down: true}, // crashes sort before rejoins at the same instant
		{T: 10, Node: 0, Down: false},
		{T: 10, Node: 1, Down: false},
		{T: 30, Node: 2, Down: true},
		{T: 45.5, Node: 1, Down: true},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("got %+v, want %+v", evs, want)
	}
}

func TestParseTimelineRejects(t *testing.T) {
	for _, in := range []string{
		"10 0\n",             // missing state
		"10 0 down extra\n",  // trailing field
		"x 0 down\n",         // bad time
		"-1 0 down\n",        // negative time
		"NaN 0 down\n",       // NaN time
		"Inf 0 down\n",       // infinite time
		"10 -2 down\n",       // negative node
		"10 x down\n",        // bad node
		"10 0 sideways\n",    // bad state
		"10 0.5 down\n",      // fractional node
		"good\n10 0 maybe\n", // error on a later line
	} {
		if evs, err := ParseTimeline(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted: %+v", in, evs)
		}
	}
}

func TestTimelineRoundTrip(t *testing.T) {
	evs := []Event{
		{T: 0, Node: 3, Down: true},
		{T: 12.25, Node: 0, Down: false},
		{T: 100, Node: 7, Down: true},
	}
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTimeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip rejected:\n%s\nerror: %v", buf.String(), err)
	}
	if !reflect.DeepEqual(back, evs) {
		t.Fatalf("round trip changed the timeline:\nin:  %+v\nout: %+v", evs, back)
	}
}

// TestScriptedTimelineInjection verifies scripted events are merged into
// the injector's timeline, filtered to the run's node count and duration,
// and ordered like generated churn.
func TestScriptedTimelineInjection(t *testing.T) {
	cfg := Config{Script: []Event{
		{T: 50, Node: 1, Down: true},
		{T: 80, Node: 1, Down: false},
		{T: 20, Node: 9, Down: true},  // beyond node count: dropped
		{T: 500, Node: 0, Down: true}, // beyond duration: dropped
	}}
	if !cfg.Enabled() {
		t.Fatal("script alone should enable fault injection")
	}
	in, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("injector disabled despite script")
	}
	got := in.Timeline(5, 400)
	want := []Event{
		{T: 50, Node: 1, Down: true},
		{T: 80, Node: 1, Down: false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("timeline %+v, want %+v", got, want)
	}
}

func TestScriptValidation(t *testing.T) {
	for _, ev := range []Event{
		{T: -1, Node: 0},
		{T: math.NaN(), Node: 0},
		{T: math.Inf(1), Node: 0},
		{T: 1, Node: -1},
	} {
		cfg := Config{Script: []Event{ev}}
		if err := cfg.Validate(); err == nil {
			t.Errorf("script event %+v passed validation", ev)
		}
	}
}

// FuzzParseTimeline holds the parser to the same contract as the trace
// reader: arbitrary input yields a sorted timeline or an error — no
// panics, no partial results — and accepted timelines survive a
// WriteTimeline/ParseTimeline round trip.
func FuzzParseTimeline(f *testing.F) {
	f.Add("# t node state\n10 0 down\n20 0 up\n")
	f.Add("")
	f.Add("10 0 down\n10 0 up\n10 1 down\n")
	f.Add("1e9 100000 down\n")
	f.Add("nan 0 down\n")
	f.Add("10 0 banana\n")
	f.Add("10\n")
	f.Add("-5 1 up\n")
	f.Fuzz(func(t *testing.T, input string) {
		evs, err := ParseTimeline(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, ev := range evs {
			if ev.T < 0 || math.IsNaN(ev.T) || math.IsInf(ev.T, 0) || ev.Node < 0 {
				t.Fatalf("accepted invalid event %d: %+v", i, ev)
			}
		}
		var buf bytes.Buffer
		if err := WriteTimeline(&buf, evs); err != nil {
			t.Fatal(err)
		}
		back, err := ParseTimeline(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected:\n%s\nerror: %v", buf.String(), err)
		}
		if !reflect.DeepEqual(back, evs) {
			t.Fatalf("round trip changed the timeline:\nin:  %+v\nout: %+v", evs, back)
		}
	})
}
