package numeric

import (
	"errors"
	"math"
	"testing"
)

// The solvers must refuse to certify a root when the function (or the
// bracket itself) evaluates to NaN: every float comparison against NaN is
// false, so without explicit checks the sign logic silently "succeeds".

func TestBisectNaNFunction(t *testing.T) {
	f := func(x float64) float64 {
		if x > 0.5 {
			return math.NaN()
		}
		return x - 0.75
	}
	if _, err := Bisect(f, 0, 1, 1e-10); !errors.Is(err, ErrNaN) {
		t.Fatalf("Bisect over NaN region: err = %v, want ErrNaN", err)
	}
}

func TestBisectNaNEndpoint(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := Bisect(f, math.NaN(), 1, 1e-10); !errors.Is(err, ErrNaN) {
		t.Fatalf("Bisect with NaN endpoint: err = %v, want ErrNaN", err)
	}
}

func TestInvertDecreasingNaN(t *testing.T) {
	f := func(x float64) float64 { return math.NaN() }
	if _, err := InvertDecreasing(f, 1, 1); !errors.Is(err, ErrNaN) {
		t.Fatalf("InvertDecreasing of NaN function: err = %v, want ErrNaN", err)
	}
	if _, err := InvertDecreasing(func(x float64) float64 { return 1 / x }, math.NaN(), 1); !errors.Is(err, ErrNaN) {
		t.Fatalf("InvertDecreasing with NaN target: err = %v, want ErrNaN", err)
	}
}

func TestInvertDecreasingNoBracket(t *testing.T) {
	// f ≡ 1 never reaches target 2 no matter how far lo expands.
	if _, err := InvertDecreasing(func(x float64) float64 { return 1 }, 2, 1); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("constant below target: err = %v, want ErrNoBracket", err)
	}
}

func TestWaterFillNaNDerivative(t *testing.T) {
	p := WaterFillProblem{
		Weights: []float64{1, 1},
		Caps:    []float64{10, 10},
		Budget:  5,
		Deriv:   func(x float64) float64 { return math.NaN() },
	}
	if _, err := WaterFill(p); err == nil {
		t.Fatal("WaterFill with NaN derivative returned no error")
	}
}

func TestWaterFillPartialNaNDerivative(t *testing.T) {
	// Coordinate 1's derivative goes NaN only on the interior, which the
	// old code silently zeroed; the error must surface instead.
	p := WaterFillProblem{
		Weights: []float64{1, 1},
		Caps:    []float64{10, 10},
		Budget:  12,
		DerivFor: func(i int, x float64) float64 {
			if i == 1 && x > 1e-6 && x < 9 {
				return math.NaN()
			}
			return 1 / (1 + x)
		},
	}
	if _, err := WaterFill(p); err == nil {
		t.Fatal("WaterFill with partially-NaN derivative returned no error")
	}
}

func TestWaterFillStillSolvesHonestProblems(t *testing.T) {
	// Regression guard: the new error paths must not reject a well-posed
	// problem. Exponential-decay derivative, all interior.
	p := WaterFillProblem{
		Weights: []float64{3, 2, 1},
		Caps:    []float64{50, 50, 50},
		Budget:  9,
		Deriv:   func(x float64) float64 { return math.Exp(-x) },
	}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("WaterFill: %v", err)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-9) > 1e-6 {
		t.Fatalf("Σx = %g, want 9", sum)
	}
	// Balance condition: w_i·e^{-x_i} equal across coordinates.
	l0 := 3 * math.Exp(-x[0])
	for i := 1; i < 3; i++ {
		li := p.Weights[i] * math.Exp(-x[i])
		if math.Abs(li-l0) > 1e-6*l0 {
			t.Errorf("coordinate %d: multiplier %g != %g", i, li, l0)
		}
	}
}
