package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTrialSeedDistinct checks that derived seeds do not collide across a
// realistic trial range and differ across base seeds.
func TestTrialSeedDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for base := uint64(0); base < 4; base++ {
		for trial := 0; trial < 10_000; trial++ {
			s := TrialSeed(base, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: base=%d trial=%d repeats entry %d", base, trial, prev)
			}
			seen[s] = trial
		}
	}
}

// TestTrialSeedPure checks the derivation is a pure function of (base,
// trial) — the worker-invariance cornerstone.
func TestTrialSeedPure(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		if TrialSeed(42, trial) != TrialSeed(42, trial) {
			t.Fatal("TrialSeed not deterministic")
		}
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Error("different bases produced the same trial-0 seed")
	}
}

// trialValue simulates a seeded trial: a few RNG draws whose sum depends
// only on the seed.
func trialValue(trial int, seed uint64) (float64, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x1234))
	var sum float64
	for k := 0; k < 100; k++ {
		sum += rng.Float64()
	}
	return sum + float64(trial), nil
}

// TestRunTrialsWorkerInvariance is the engine-level determinism
// guarantee: identical results for any worker count.
func TestRunTrialsWorkerInvariance(t *testing.T) {
	const n = 64
	ref, err := RunTrials(n, 1, 7, trialValue)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, runtime.NumCPU(), 0} {
		got, err := RunTrials(n, workers, 7, trialValue)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d trial %d: %v != %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestRunTrialsOrder checks results land at their trial index even when
// completion order is scrambled.
func TestRunTrialsOrder(t *testing.T) {
	out, err := RunTrials(32, 8, 0, func(trial int, seed uint64) (int, error) {
		if trial%3 == 0 {
			time.Sleep(time.Millisecond)
		}
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("trial %d: got %d", i, v)
		}
	}
}

// TestRunTrialsFirstError checks error propagation: the lowest failing
// trial index wins and its error is wrapped with the trial number.
func TestRunTrialsFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := RunTrials(16, workers, 0, func(trial int, seed uint64) (int, error) {
			if trial >= 5 {
				return 0, boom
			}
			return trial, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error %v does not wrap cause", workers, err)
		}
		if !strings.Contains(err.Error(), "trial 5") {
			t.Errorf("workers=%d: error %q does not name the first failing trial", workers, err)
		}
	}
}

// TestRunTrialsCancellation checks an error stops dispatching further
// trials rather than running all n to completion.
func TestRunTrialsCancellation(t *testing.T) {
	var ran atomic.Int64
	_, err := RunTrials(1000, 4, 0, func(trial int, seed uint64) (int, error) {
		ran.Add(1)
		if trial == 0 {
			return 0, fmt.Errorf("early failure")
		}
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n > 900 {
		t.Errorf("cancellation ineffective: %d/1000 trials ran", n)
	}
}

// TestRunTrialsContextCancel checks external cancellation surfaces as the
// context error.
func TestRunTrialsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunTrialsContext(ctx, 8, 4, 0, trialValue)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestRunTrialsEdgeCases covers n=0 and negative n.
func TestRunTrialsEdgeCases(t *testing.T) {
	out, err := RunTrials(0, 4, 0, trialValue)
	if err != nil || len(out) != 0 {
		t.Errorf("n=0: %v, %d results", err, len(out))
	}
	if _, err := RunTrials(-1, 4, 0, trialValue); err == nil {
		t.Error("negative n accepted")
	}
}

// TestWorkersDefault pins the GOMAXPROCS fallback.
func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(6); got != 6 {
		t.Errorf("Workers(6) = %d", got)
	}
}
