package numeric

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ErrBadWeights is returned when an alias table is built from weights that
// are not a usable discrete distribution: a negative or infinite entry, or
// a total weight of zero. NaN entries return ErrNaN, consistent with the
// root finders: every comparison against NaN is false, so a NaN weight
// would otherwise slip through the small/large partition and corrupt the
// table silently.
var ErrBadWeights = errors.New("numeric: invalid sampling weights")

// Alias is a Walker/Vose alias table: O(n) construction, O(1) sampling
// from a fixed discrete distribution. It replaces per-draw binary search
// over a cumulative distribution (O(log n) with cache-hostile access) in
// the contact generators, where n is the number of node pairs — O(N²) in
// the population size — and one draw happens per generated contact.
//
// The table stores, per column i, the probability prob[i] of keeping i
// and the alias to sample otherwise. Columns with zero weight get
// prob 0 and an alias to a positive-weight column, so they are never
// returned. Memory is 12 bytes per weight (float64 + int32).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds the table. Weights must be non-negative and finite with
// a positive total; they need not be normalized. len(weights) must fit in
// an int32 (the alias column index), which holds for any population the
// rate matrices can represent.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty weight vector", ErrBadWeights)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d weights exceed int32 columns", ErrBadWeights, n)
	}
	var total float64
	for i, w := range weights {
		if math.IsNaN(w) {
			return nil, fmt.Errorf("%w: weight %d is NaN", ErrNaN, i)
		}
		if w < 0 || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight %d is %g", ErrBadWeights, i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: total weight is zero", ErrBadWeights)
	}

	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	// Scale so the average column is exactly 1, then pair each deficient
	// ("small") column with a surplus ("large") one.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers hold 1 up to float residue; they keep themselves.
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a, nil
}

// Len returns the number of columns.
func (a *Alias) Len() int { return len(a.prob) }

// Probabilities reconstructs the exact sampling distribution the table
// implements: out[i] is the probability Sample returns i, assembled from
// the per-column keep probabilities and the aliased residues. It is the
// verification hook of the two-level samplers in internal/rates — their
// equivalence suite checks that the hierarchical tables reproduce the
// normalized flat rates to 1e-12, which requires reading the realized
// distribution back out of the table rather than trusting the builder.
// O(n); allocates the result slice.
func (a *Alias) Probabilities() []float64 {
	n := len(a.prob)
	out := make([]float64, n)
	inv := 1 / float64(n)
	for i, p := range a.prob {
		out[i] += p * inv
		if p < 1 {
			out[a.alias[i]] += (1 - p) * inv
		}
	}
	return out
}

// Sample draws one index with probability proportional to its weight,
// using a single uniform: the integer part picks the column, the
// fractional part decides between the column and its alias. No
// allocation, two array reads.
func (a *Alias) Sample(rng *rand.Rand) int {
	u := rng.Float64() * float64(len(a.prob))
	i := int(u)
	if i >= len(a.prob) { // guards float rounding at the top end
		i = len(a.prob) - 1
	}
	if u-float64(i) < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
