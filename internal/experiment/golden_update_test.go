package experiment

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"impatience/internal/parallel"
)

// -update regenerates the pinned digests under testdata/ instead of
// comparing against them. Use after an INTENDED behavior change:
//
//	go test ./internal/experiment -run TestGoldenDigestsPinned -update
//
// and commit the refreshed testdata/golden_digests.json alongside the
// change that moved the digests, with the reason in the commit message.
var update = flag.Bool("update", false, "rewrite testdata golden digests instead of comparing")

const goldenPath = "testdata/golden_digests.json"

// TestGoldenDigestsPinned is the cross-release behavior pin: the combined
// per-family simulation digests must equal the committed values, so ANY
// change to simulator behavior, RNG consumption order, scheme
// construction or trace synthesis is caught — not just worker-count
// dependence (which TestGoldenDigestsWorkerInvariance covers).
func TestGoldenDigestsPinned(t *testing.T) {
	sc := goldenScenario()
	got := make(map[string]string)
	for _, fam := range goldenFamilies() {
		out, err := parallel.RunTrials(sc.Trials, 1, sc.Seed, fam.run)
		if err != nil {
			t.Fatalf("%s: %v", fam.name, err)
		}
		var acc uint64
		for _, d := range out {
			acc = mixDigest(acc, d)
		}
		got[fam.name] = fmt.Sprintf("%#016x", acc)
	}
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", goldenPath, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("%s pins %d families, test produces %d (stale file? rerun with -update)", goldenPath, len(want), len(got))
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no pinned digest for %q (new family? rerun with -update)", goldenPath, name)
			continue
		}
		if g != w {
			t.Errorf("%s: digest %s, pinned %s — simulation behavior changed; if intended, rerun with -update and commit", name, g, w)
		}
	}
}
