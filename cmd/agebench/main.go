// Command agebench measures the parallel trial engine, the contact
// pipeline, and the batch executor, recording each as a machine-readable
// regression artifact.
//
// The trial-engine benchmark runs the scheme-comparison pipeline (trace
// generation, QCR/OPT/UNI simulation, trial-order aggregation) at a
// ladder of worker counts via testing.Benchmark and writes
// BENCH_trials.json with ns/op, allocs/op and the speedup relative to
// the serial (1-worker) run.
//
// The contact-pipeline benchmark compares materialized trace generation
// (searchCDF pair sampling) with the streaming alias-method generator at
// N ∈ {100, 1000, 5000}, runs the fused N = 5000 scale demo through the
// simulator, and writes BENCH_contacts.json with ns/contact,
// bytes/contact and the demo's peak heap versus the materialized floor.
//
// The batch benchmark (BatchVsSequential) runs the identical comparison
// workload through both executors — the legacy sequential path that
// materializes each trial's trace and simulates the schemes one at a
// time, and the stream-fused batch path that steps every scheme in
// lockstep over a single shared contact stream — verifies their outputs
// are bit-identical, and writes BENCH_batch.json with the per-worker
// ns/op, bytes/op and allocs/op ratios.
//
// The adversary benchmark measures the per-contact cost of the
// misbehavior layer and the hardened QCR reaction: vanilla and hardened
// QCR each run with adversaries off and under the headline attack
// (dishonest counter inflation plus free-riders), and BENCH_adversary.json
// records ns/contact with each cell's overhead relative to the vanilla
// adversaries-off baseline.
//
// The scale benchmark (-scale-only) climbs the structured-rates ladder —
// community models at N = 10⁴, 10⁵ and (full mode) 10⁶ through the
// hierarchical sampler and the sharded lockstep executor at shard counts
// {1, 2, 4, NumCPU} — and writes BENCH_scale.json with per-rung wall
// time, contacts/sec, speedup versus one shard, a digest-invariance
// verdict per cell, and the setup bytes-per-node that pins the O(N + C²)
// state bound.
//
// The kernel benchmark (-kernel-only) measures the devirtualized contact
// kernel before/after on the same binary: each rung of a community
// ladder at N ∈ {10³, 10⁴, 10⁵} runs with Config.ReferenceKernel (the
// pre-optimization path: Next-per-contact streaming, interface utility
// dispatch, hooks always invoked) and on the fast path (batched
// streaming, monomorphic utility kernels, dispatch-free meeting loop),
// verifies the two produce bit-identical Result digests, and writes
// BENCH_kernel.json with ns/contact for both modes. In full mode the
// Static event-path rows are gated at a minimum speedup.
//
// CI uploads all of these files so regressions — in throughput, scaling,
// or memory — are visible across commits.
//
// Every report carries the emitting commit (git rev-parse HEAD) and the
// scenario parameters, so artifacts from different commits or workloads
// are never compared blind.
//
// Determinism note: every worker count computes bit-identical results
// (see internal/parallel), so the ladders measure scheduling overhead
// and parallel speedup only, never different work.
//
// Usage:
//
//	agebench                 # full-scale measurement
//	agebench -short          # reduced scale for CI smoke runs
//	agebench -workers 4      # measure a single worker count on every ladder
//	agebench -out bench.json # choose the trial-engine output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"impatience/internal/experiment"
	"impatience/internal/utility"
)

// workerLadder is the set of pool sizes measured, smallest first; the
// first entry must be 1 because it is the speedup baseline.
var workerLadder = []int{1, 2, 4, 8}

// provenance stamps a report with the commit and runtime that produced
// it.
type provenance struct {
	GitCommit  string `json:"git_commit"`
	UnixTime   int64  `json:"unix_time"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Short      bool   `json:"short"`
}

// scenarioParams records the workload a report measured.
type scenarioParams struct {
	Trials   int      `json:"trials"`
	Nodes    int      `json:"nodes"`
	Items    int      `json:"items"`
	Rho      int      `json:"rho"`
	Mu       float64  `json:"mu"`
	Duration float64  `json:"duration_min"`
	Seed     uint64   `json:"seed"`
	Schemes  []string `json:"schemes,omitempty"`
}

// gitCommit returns the HEAD commit hash, or "unknown" outside a git
// checkout (e.g. an extracted release tarball).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func stamp(short bool) provenance {
	return provenance{
		GitCommit:  gitCommit(),
		UnixTime:   time.Now().Unix(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      short,
	}
}

func paramsOf(sc experiment.Scenario, schemes []string) scenarioParams {
	return scenarioParams{
		Trials:   sc.Trials,
		Nodes:    sc.Nodes,
		Items:    sc.Items,
		Rho:      sc.Rho,
		Mu:       sc.Mu,
		Duration: sc.Duration,
		Seed:     sc.Seed,
		Schemes:  schemes,
	}
}

// ladder returns the worker counts to measure: the full ladder, or the
// single count selected with -workers.
func ladder(workers int) []int {
	if workers > 0 {
		return []int{workers}
	}
	return workerLadder
}

// writeJSON writes a report with stable indentation.
func writeJSON(out string, report any) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

type benchResult struct {
	Workers         int     `json:"workers"`
	Iterations      int     `json:"iterations"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

type benchReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	scenarioParams
	Results []benchResult `json:"results"`
}

func main() {
	short := flag.Bool("short", false, "reduced scale (CI smoke run)")
	workers := flag.Int("workers", 0, "measure only this worker count on every ladder (0 = full ladder)")
	out := flag.String("out", "BENCH_trials.json", "output path for the trial-engine JSON report")
	contactsOut := flag.String("contacts-out", "BENCH_contacts.json", "output path for the contact-pipeline JSON report (empty = skip)")
	batchOut := flag.String("batch-out", "BENCH_batch.json", "output path for the batch-vs-sequential JSON report (empty = skip)")
	adversaryOut := flag.String("adversary-out", "BENCH_adversary.json", "output path for the hardened-vs-vanilla QCR JSON report (empty = skip)")
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "output path for the million-node scale-ladder JSON report (empty = skip)")
	hybridOut := flag.String("hybrid-out", "BENCH_hybrid.json", "output path for the hybrid-vs-event-sim JSON report (empty = skip)")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output path for the serving-stack JSON report (empty = skip)")
	kernelOut := flag.String("kernel-out", "BENCH_kernel.json", "output path for the devirtualized-kernel JSON report (empty = skip)")
	trialsOnly := flag.Bool("trials-only", false, "run only the trial-engine benchmark")
	contactsOnly := flag.Bool("contacts-only", false, "run only the contact-pipeline benchmark")
	batchOnly := flag.Bool("batch-only", false, "run only the batch-vs-sequential benchmark")
	adversaryOnly := flag.Bool("adversary-only", false, "run only the adversary-overhead benchmark")
	scaleOnly := flag.Bool("scale-only", false, "run only the structured-rates scale ladder")
	hybridOnly := flag.Bool("hybrid-only", false, "run only the hybrid-vs-event-sim benchmark")
	serveOnly := flag.Bool("serve-only", false, "run only the serving-stack benchmark")
	kernelOnly := flag.Bool("kernel-only", false, "run only the devirtualized-kernel before/after ladder")
	flag.Parse()

	only := *trialsOnly || *contactsOnly || *batchOnly || *adversaryOnly || *scaleOnly || *hybridOnly || *serveOnly || *kernelOnly
	if !only || *trialsOnly {
		if err := run(*short, *workers, *out); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if (!only || *contactsOnly) && *contactsOut != "" {
		if err := runContacts(*short, *contactsOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if (!only || *batchOnly) && *batchOut != "" {
		if err := runBatch(*short, *workers, *batchOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if (!only || *adversaryOnly) && *adversaryOut != "" {
		if err := runAdversary(*short, *adversaryOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if (!only || *scaleOnly) && *scaleOut != "" {
		if err := runScale(*short, *scaleOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if (!only || *hybridOnly) && *hybridOut != "" {
		if err := runHybrid(*short, *hybridOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if (!only || *serveOnly) && *serveOut != "" {
		if err := runServe(*short, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if (!only || *kernelOnly) && *kernelOut != "" {
		if err := runKernel(*short, *kernelOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
}

// scenario returns the measured workload: the paper's population shape
// with few trials and a shortened run, mirroring the repo's
// BenchmarkTrialEngine*Workers benchmarks.
func scenario(short bool) experiment.Scenario {
	sc := experiment.Default()
	sc.Trials = 8
	sc.Duration = 1000
	if short {
		sc.Trials = 4
		sc.Duration = 400
	}
	return sc
}

func run(short bool, workers int, out string) error {
	sc := scenario(short)
	schemes := []string{experiment.SchemeQCR, experiment.SchemeOPT, experiment.SchemeUNI}
	report := benchReport{
		Benchmark:      "TrialEngine/RunComparison",
		provenance:     stamp(short),
		scenarioParams: paramsOf(sc, schemes),
	}

	var serialNs int64
	for _, w := range ladder(workers) {
		scw := sc
		scw.Workers = w
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scw.RunComparison(utility.Step{Tau: 10}, scw.HomogeneousSources(), schemes); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return benchErr
		}
		if r.N == 0 {
			return fmt.Errorf("benchmark at %d workers did not run", w)
		}
		ns := r.NsPerOp()
		if w == 1 {
			serialNs = ns
		}
		res := benchResult{
			Workers:     w,
			Iterations:  r.N,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if serialNs > 0 && ns > 0 {
			res.SpeedupVsSerial = float64(serialNs) / float64(ns)
		}
		report.Results = append(report.Results, res)
		fmt.Printf("workers=%d  %12d ns/op  %10d allocs/op  speedup %.2fx\n",
			w, ns, res.AllocsPerOp, res.SpeedupVsSerial)
	}

	return writeJSON(out, report)
}
