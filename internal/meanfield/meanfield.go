// Package meanfield integrates the replica-dynamics ODE of Section 5.2
// (Eq. 7), the fluid limit of Query Counting Replication:
//
//	dx_i/dt = d_i·ψ(S/x_i) − x_i/(ρS) · Σ_j d_j·ψ(S/x_j)
//
// Creation (each fulfilled request for item i spawns ψ(counter) replicas,
// with E[counter] = S/x_i) balances deletion (random cache replacement
// erases item i proportionally to its share of the global cache). Its
// stable fixed point satisfies the balance condition of Property 1 when ψ
// is the Property-2 reaction function — this package exists to verify
// that claim numerically and to support the convergence ablation.
package meanfield

import (
	"errors"
	"fmt"
	"math"

	"impatience/internal/demand"
	"impatience/internal/numeric"
	"impatience/internal/utility"
)

// ErrSystem wraps every validation error of this package, in the style
// of rates.ErrModel: errors.Is(err, meanfield.ErrSystem) identifies a
// construction-time rejection.
var ErrSystem = errors.New("meanfield: invalid system")

// System describes the fluid-limit dynamics.
type System struct {
	Utility utility.Function
	Pop     demand.Popularity
	Mu      float64 // contact rate used to tune ψ
	Servers int     // |S|
	Rho     int     // per-server cache slots
	// PsiScale multiplies the reaction function; it rescales time but not
	// the fixed point. 1 by default.
	PsiScale float64
}

// Validate reports structural errors, including non-finite or negative
// rates and demand — inputs the ODE would otherwise silently integrate
// into NaN trajectories.
func (s System) Validate() error {
	switch {
	case s.Utility == nil:
		return fmt.Errorf("%w: nil utility", ErrSystem)
	case s.Mu <= 0 || math.IsNaN(s.Mu) || math.IsInf(s.Mu, 0):
		return fmt.Errorf("%w: µ=%g", ErrSystem, s.Mu)
	case s.Servers <= 0 || s.Rho <= 0:
		return fmt.Errorf("%w: servers=%d rho=%d", ErrSystem, s.Servers, s.Rho)
	case s.Pop.Items() == 0:
		return fmt.Errorf("%w: empty catalog", ErrSystem)
	case math.IsNaN(s.PsiScale) || math.IsInf(s.PsiScale, 0) || s.PsiScale < 0:
		return fmt.Errorf("%w: psi scale %g", ErrSystem, s.PsiScale)
	}
	if err := s.Pop.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrSystem, err)
	}
	return nil
}

// validateState rejects a state vector whose length or entries the
// dynamics cannot accept.
func (s System) validateState(x0 []float64) error {
	if len(x0) != s.Pop.Items() {
		return fmt.Errorf("%w: state has %d items, demand %d", ErrSystem, len(x0), s.Pop.Items())
	}
	for i, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: x0[%d]=%g", ErrSystem, i, v)
		}
	}
	return nil
}

func (s System) psiScale() float64 {
	if s.PsiScale > 0 {
		return s.PsiScale
	}
	return 1
}

// Derivs evaluates the right-hand side of Eq. 7. Replica counts are
// clamped below at a small floor (the sticky replica of the simulator)
// to keep ψ(S/x) finite.
func (s System) Derivs(_ float64, x, dst []float64) {
	S := float64(s.Servers)
	cap := float64(s.Servers * s.Rho)
	scale := s.psiScale()
	var churn float64 // Σ_j d_j ψ(S/x_j)
	creation := make([]float64, len(x))
	for j, d := range s.Pop.Rates {
		xj := math.Max(x[j], minReplicas)
		c := d * scale * utility.Psi(s.Utility, s.Mu, S, S/xj)
		creation[j] = c
		churn += c
	}
	for i := range x {
		xi := math.Max(x[i], minReplicas)
		dst[i] = creation[i] - xi/cap*churn
	}
}

// minReplicas is the sticky-replica floor of the fluid model.
const minReplicas = 1e-3

// solverOpts are the adaptive-integration tolerances of this package:
// tight enough that the solver, not the tolerance, limits fidelity at
// the sticky-replica floor, loose enough that steady-state tails take
// large steps. step seeds the controller (callers' historical fixed
// step is a good starting guess); the controller grows or shrinks it
// from there.
func solverOpts(step float64, clamp bool) numeric.RKOpts {
	o := numeric.RKOpts{RTol: 1e-7, ATol: 1e-9 * minReplicas, InitStep: step}
	if clamp {
		o.Clamp = clampFloor
	}
	return o
}

// clampFloor applies the sticky-replica floor: the fluid limit keeps
// x_i > 0 exactly, but a finite step can overshoot, and a negative
// replica count is meaningless (and poisons downstream welfare
// evaluation).
func clampFloor(x []float64) {
	for i := range x {
		if x[i] < minReplicas {
			x[i] = minReplicas
		}
	}
}

// Run integrates the dynamics from x0 for horizon time units with the
// adaptive Dormand–Prince solver, returning the final state. step seeds
// the step-size controller (0 picks automatically); the historical
// fixed-step signature is kept so call sites read unchanged. The state
// is clamped to the sticky-replica floor after every accepted step.
func (s System) Run(x0 []float64, horizon, step float64) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.validateState(x0); err != nil {
		return nil, err
	}
	if step <= 0 || step > horizon {
		step = 0
	}
	x, _, err := numeric.RK45(s.Derivs, x0, 0, horizon, solverOpts(step, true))
	return x, err
}

// RunToSteadyState integrates adaptively until the relative derivative
// norm falls below tol or the horizon is exhausted; it returns the state
// and whether convergence was reached. The adaptive controller makes the
// long convergence tail cheap: as the dynamics flatten the accepted step
// grows, where the former fixed-step integrator paid the same cost per
// unit time throughout.
func (s System) RunToSteadyState(x0 []float64, horizon, step, tol float64) ([]float64, bool, error) {
	if err := s.Validate(); err != nil {
		return nil, false, err
	}
	if err := s.validateState(x0); err != nil {
		return nil, false, err
	}
	stepper := numeric.NewStepper(s.Derivs, x0, 0, solverOpts(step, false))
	dst := make([]float64, len(x0))
	// Check the convergence criterion on a geometric grid of sync points:
	// between checks the stepper advances freely, so the check cost stays
	// logarithmic in the horizon instead of per-step.
	checkAt := math.Max(step, horizon/1e5)
	if checkAt <= 0 {
		checkAt = horizon / 1e5
	}
	for t := checkAt; ; t *= 1.5 {
		if t > horizon {
			t = horizon
		}
		if err := stepper.AdvanceTo(t); err != nil {
			return nil, false, err
		}
		x := stepper.State()
		s.Derivs(t, x, dst)
		var dn, xn float64
		for i := range dst {
			dn += dst[i] * dst[i]
			xn += x[i] * x[i]
		}
		if dn <= tol*tol*math.Max(xn, 1) {
			return append([]float64(nil), x...), true, nil
		}
		if t >= horizon {
			return append([]float64(nil), x...), false, nil
		}
	}
}

// UniformStart returns the natural initial condition: the global cache
// split evenly across the catalog.
func (s System) UniformStart() []float64 {
	x := make([]float64, s.Pop.Items())
	per := float64(s.Servers*s.Rho) / float64(len(x))
	for i := range x {
		x[i] = per
	}
	return x
}
