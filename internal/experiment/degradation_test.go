package experiment

import (
	"testing"

	"impatience/internal/faults"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// degradeScenario is a cheap scenario for the fault experiments: small
// population, short runs, one trial.
func degradeScenario() Scenario {
	sc := Default()
	sc.Nodes = 25
	sc.Items = 25
	sc.Trials = 1
	sc.Duration = 1200
	return sc
}

func TestRunSchemeFaultsNilPlanMatchesRunScheme(t *testing.T) {
	sc := degradeScenario()
	u := utility.Step{Tau: 10}
	tr, err := sc.HomogeneousTraces()(sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rates := trace.EmpiricalRates(tr)
	mu := rates.Mean()
	a, err := sc.RunScheme(SchemeQCR, u, tr, rates, mu, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.RunSchemeFaults(SchemeQCR, u, tr, rates, mu, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgUtilityRate != b.AvgUtilityRate || a.Fulfillments != b.Fulfillments {
		t.Errorf("nil-plan RunSchemeFaults diverged from RunScheme: %g/%d vs %g/%d",
			a.AvgUtilityRate, a.Fulfillments, b.AvgUtilityRate, b.Fulfillments)
	}
}

func TestDegradationLossContinuous(t *testing.T) {
	sc := degradeScenario()
	table, err := DegradationLoss(sc, utility.Step{Tau: 10}, []float64{0, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	qcr := table.Columns[0]
	if qcr.Name != SchemeQCR {
		t.Fatalf("first column %q, want QCR", qcr.Name)
	}
	// Graceful degradation: worse with more loss, but no collapse — at
	// p_loss = 0.5 QCR keeps a substantial fraction of its clean utility.
	if !(qcr.Y[0] > qcr.Y[2]) {
		t.Errorf("QCR utility did not degrade: %v", qcr.Y)
	}
	if qcr.Y[2] < 0.5*qcr.Y[0] {
		t.Errorf("QCR collapsed under p_loss=0.5: %g vs clean %g", qcr.Y[2], qcr.Y[0])
	}
}

func TestDegradationChurnQCRBeatsStatic(t *testing.T) {
	sc := degradeScenario()
	table, err := DegradationChurn(sc, utility.Step{Tau: 10}, []float64{0.002})
	if err != nil {
		t.Fatal(err)
	}
	var qcr, opt, uni float64
	for _, col := range table.Columns {
		switch col.Name {
		case SchemeQCR:
			qcr = col.Y[0]
		case SchemeOPT:
			opt = col.Y[0]
		case SchemeUNI:
			uni = col.Y[0]
		}
	}
	// Crashes wipe replicas; only QCR rebuilds them, so it must beat both
	// static allocations under churn.
	if qcr <= opt || qcr <= uni {
		t.Errorf("QCR (%g) should dominate static OPT (%g) and UNI (%g) under churn", qcr, opt, uni)
	}
}

func TestMassFailureRecoveryHeadline(t *testing.T) {
	sc := degradeScenario()
	table, err := MassFailureRecovery(sc, utility.Step{Tau: 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.X) != 100 {
		t.Fatalf("time series has %d bins, want 100", len(table.X))
	}
	window := func(col int, lo, hi float64) float64 {
		var sum float64
		var n int
		for k, x := range table.X {
			if x >= lo && x < hi {
				sum += table.Columns[col].Y[k]
				n++
			}
		}
		return sum / float64(n)
	}
	crash := 0.4 * sc.Duration
	// Measure well clear of the crash bin and the rejoin transient.
	for c, name := range map[int]string{0: SchemeQCR, 1: SchemeOPT} {
		if table.Columns[c].Name != name {
			t.Fatalf("column %d is %q, want %q", c, table.Columns[c].Name, name)
		}
	}
	preQCR := window(0, 0.3*sc.Duration, crash-50)
	lateQCR := window(0, 0.8*sc.Duration, sc.Duration)
	preOPT := window(1, 0.3*sc.Duration, crash-50)
	lateOPT := window(1, 0.8*sc.Duration, sc.Duration)
	// The headline: QCR re-converges toward its pre-crash welfare, static
	// OPT does not (its wiped replicas are never rewritten).
	if lateQCR/preQCR <= lateOPT/preOPT {
		t.Errorf("QCR recovery ratio %.3f not better than OPT's %.3f",
			lateQCR/preQCR, lateOPT/preOPT)
	}
	if lateQCR < 0.8*preQCR {
		t.Errorf("QCR failed to re-converge: late %.3f vs pre %.3f", lateQCR, preQCR)
	}
}

func TestMassFailureRecoveryValidation(t *testing.T) {
	sc := degradeScenario()
	if _, err := MassFailureRecovery(sc, utility.Step{Tau: 10}, 0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := MassFailureRecovery(sc, utility.Step{Tau: 10}, 1.5); err == nil {
		t.Error("fraction 1.5 accepted")
	}
	// Invalid fault config surfaces from the simulator's validation.
	u := utility.Step{Tau: 10}
	tr, err := sc.HomogeneousTraces()(sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rates := trace.EmpiricalRates(tr)
	bad := &FaultPlan{Faults: &faults.Config{PLoss: 2}}
	if _, err := sc.RunSchemeFaults(SchemeQCR, u, tr, rates, rates.Mean(), 0, false, bad); err == nil {
		t.Error("p_loss=2 accepted")
	}
}
