package rates

import (
	"math/rand/v2"
	"testing"

	"impatience/internal/trace"
)

// TestShardedNextBatchMatchesNext: the bulk seam over the group-merged
// structured source must reproduce the scalar Next sequence exactly —
// same lazy construction, same heap pops, same contacts — for random
// community shapes, group counts and batch sizes, including interleaved
// scalar draws mid-stream.
func TestShardedNextBatchMatchesNext(t *testing.T) {
	meta := rand.New(rand.NewPCG(0x5a4d, 0xbeef))
	for trial := 0; trial < 40; trial++ {
		comms := 2 + meta.IntN(5)
		nodes := comms * (2 + meta.IntN(6))
		m, err := NewCommunity(CommunityConfig{
			Nodes:       nodes,
			Communities: comms,
			In:          0.05 + meta.Float64()*0.2,
			Out:         0.005 + meta.Float64()*0.02,
		})
		if err != nil {
			t.Fatalf("trial %d: NewCommunity: %v", trial, err)
		}
		duration := 10 + meta.Float64()*40
		seed := meta.Uint64()
		groups := meta.IntN(8) // 0 selects DefaultGroups
		batch := 1 + meta.IntN(300)

		ref, err := NewSharded(m, duration, seed, groups)
		if err != nil {
			t.Fatalf("trial %d: NewSharded ref: %v", trial, err)
		}
		bulk, err := NewSharded(m, duration, seed, groups)
		if err != nil {
			t.Fatalf("trial %d: NewSharded bulk: %v", trial, err)
		}
		var want []trace.Contact
		for {
			c, ok := ref.Next()
			if !ok {
				break
			}
			want = append(want, c)
		}
		var got []trace.Contact
		buf := make([]trace.Contact, batch)
		for i := 0; ; i++ {
			if i%3 == 2 { // interleave: bulk and scalar share one cursor
				c, ok := bulk.Next()
				if !ok {
					break
				}
				got = append(got, c)
				continue
			}
			n := bulk.NextBatch(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (nodes=%d groups=%d batch=%d): %d contacts via bulk, %d via Next",
				trial, nodes, groups, batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (nodes=%d groups=%d batch=%d): contact %d = %+v via bulk, %+v via Next",
					trial, nodes, groups, batch, i, got[i], want[i])
			}
		}
	}
}

// TestShardedNextBatchAfterPartition pins the drained-receiver contract:
// once Partition hands the groups out, the receiver's bulk path — like
// its scalar path — reports exhaustion rather than replaying.
func TestShardedNextBatchAfterPartition(t *testing.T) {
	m, err := NewCommunity(CommunityConfig{Nodes: 12, Communities: 3, In: 0.1, Out: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(m, 50, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Partition(4); !ok {
		t.Fatal("Partition refused on a fresh source")
	}
	buf := make([]trace.Contact, 16)
	if n := s.NextBatch(buf); n != 0 {
		t.Fatalf("NextBatch on a partitioned-away source filled %d contacts, want 0", n)
	}
}
