package sim

import (
	"testing"

	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

func TestQCRScaleDiagnostics(t *testing.T) {
	const (
		nodes = 50
		items = 50
		mu    = 0.05
		rho   = 5
	)
	f := utility.Power{Alpha: 0}
	pop := demand.Pareto(items, 1, 2)
	h := welfare.Homogeneous{Utility: f, Pop: pop, Mu: mu, Servers: nodes, Clients: nodes, PureP2P: true}
	opt, _ := h.GreedyOptimal(rho)
	tr, _ := contact.GenerateHomogeneous(nodes, mu, 5000, newRNG(1))
	t.Logf("OPT counts[:10]=%v U_opt=%.3f", opt[:10], h.WelfareCounts(opt))
	for _, scale := range []float64{1, 0.3, 0.1, 0.03} {
		q := &core.QCR{Reaction: core.TunedReaction(f, mu, nodes, scale), MandateRouting: true, Seed: 2}
		cfg := Config{
			Rho: rho, Utility: f, Pop: pop, Trace: tr, Policy: q, Seed: 3,
			BinWidth: 250, RecordCounts: true, WarmupFrac: 0.3,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("scale=%4.2f avg rate=%.3f, replicas made=%d", scale, res.AvgUtilityRate, res.ReplicasMade)
		b := res.Bins[len(res.Bins)-1]
		t.Logf("  final counts[:10]=%v U(x)=%.3f mandates=%d", b.Counts[:10], h.WelfareCounts(b.Counts), b.Mandates)
	}
	// Static OPT for comparison.
	cfgO := Config{
		Rho: rho, Utility: f, Pop: pop, Trace: tr, Seed: 3, WarmupFrac: 0.3,
		Policy: core.Static{Label: "opt"}, Initial: opt, NoSticky: true,
	}
	resO, err := Run(cfgO)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("OPT observed rate=%.3f fulfillments=%d outstanding=%d", resO.AvgUtilityRate, resO.Fulfillments, resO.Outstanding)
}
