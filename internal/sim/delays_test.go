package sim

import (
	"math"
	"testing"

	"impatience/internal/core"
)

// TestRecordDelaysDigestStability pins that the per-item conformance
// instrumentation (Config.RecordDelays → ItemDelays/ItemGains/
// ItemFulfillments) is observer-only: the run with recording on is
// digest-identical to the run with it off, for both a static allocation
// and QCR. Any future change that lets the instrumentation touch RNG
// order, fulfillment accounting or the digest field list fails here.
func TestRecordDelaysDigestStability(t *testing.T) {
	tr := smallTrace(t, 12, 0.05, 800, 9)
	for _, tc := range []struct {
		name string
		pol  func() core.Policy
	}{
		{"static", func() core.Policy { return core.Static{Label: "uni"} }},
		{"qcr", func() core.Policy {
			return &core.QCR{
				Reaction:       core.PathReplication(1),
				MandateRouting: true,
				Seed:           7,
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := baseConfig(t, tr, tc.pol())
			plain.BinWidth = 80
			want, err := Run(plain)
			if err != nil {
				t.Fatalf("plain Run: %v", err)
			}
			rec := baseConfig(t, tr, tc.pol())
			rec.BinWidth = 80
			rec.RecordDelays = true
			got, err := Run(rec)
			if err != nil {
				t.Fatalf("recording Run: %v", err)
			}
			if got.Digest() != want.Digest() {
				t.Errorf("RecordDelays changed the digest: %#x != %#x", got.Digest(), want.Digest())
			}
			if want.ItemDelays != nil || want.ItemGains != nil || want.ItemFulfillments != nil {
				t.Error("instrumentation populated without RecordDelays")
			}
			checkInstrumentation(t, got)
		})
	}
}

// checkInstrumentation validates the internal consistency of the
// per-item fields against the aggregate counters.
func checkInstrumentation(t *testing.T, res *Result) {
	t.Helper()
	if res.ItemDelays == nil || res.ItemGains == nil || res.ItemFulfillments == nil {
		t.Fatal("RecordDelays set but instrumentation nil")
	}
	totalF, totalG, immediate := 0, 0.0, 0
	for i := range res.ItemDelays {
		if len(res.ItemDelays[i]) != res.ItemFulfillments[i] {
			t.Errorf("item %d: %d delay samples, %d fulfillments", i, len(res.ItemDelays[i]), res.ItemFulfillments[i])
		}
		totalF += res.ItemFulfillments[i]
		totalG += res.ItemGains[i]
		for _, d := range res.ItemDelays[i] {
			if d < 0 {
				t.Errorf("item %d: negative delay %g", i, d)
			}
			if d == 0 {
				immediate++
			}
		}
	}
	if totalF != res.Fulfillments {
		t.Errorf("Σ ItemFulfillments = %d, Result.Fulfillments = %d", totalF, res.Fulfillments)
	}
	// TotalGain = fulfillment gains + the (negative) outstanding charge,
	// so the per-item gains must sum to the difference exactly (same
	// additions, same order within an item; across items the order can
	// differ, hence the tiny float tolerance).
	if diff := math.Abs(totalG - (res.TotalGain - res.OutstandingCost)); diff > 1e-9*math.Max(1, math.Abs(res.TotalGain)) {
		t.Errorf("Σ ItemGains = %g, TotalGain−OutstandingCost = %g", totalG, res.TotalGain-res.OutstandingCost)
	}
	// Every zero delay is an immediate fulfillment; ages of met-in-the-
	// field fulfillments are strictly positive with probability 1.
	if immediate != res.Immediate {
		t.Errorf("%d zero delays, %d immediate fulfillments", immediate, res.Immediate)
	}
}
