// Package synth generates the synthetic stand-ins for the measured
// mobility traces of the paper's evaluation (Section 6.3):
//
//   - Conference: an Infocom'06-like Bluetooth-sighting trace with
//     heterogeneous node sociability, strong day/night alternation and
//     bursty (heavy-tailed) inter-contact gaps;
//   - Vehicular: a Cabspotting-like taxi trace obtained by moving a
//     random-waypoint fleet across a metropolitan-scale area and emitting
//     a contact whenever two cabs come within a proximity radius;
//   - Memoryless: the "synthesized" counterpart of any trace (Figure 5c),
//     with identical pairwise contact rates but Poisson contact times.
//
// The real data sets are not redistributable; these generators reproduce
// the statistical properties the paper's conclusions rest on (rate
// heterogeneity, diurnal cycles, burstiness), as documented in DESIGN.md.
package synth

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"impatience/internal/contact"
	"impatience/internal/mobility"
	"impatience/internal/trace"
)

// ConferenceConfig parameterizes the conference-trace generator. Times
// are minutes. The zero value is not valid; use DefaultConference.
type ConferenceConfig struct {
	Nodes       int
	Days        int
	DayStart    float64 // minute-of-day when activity rises (e.g. 8h = 480)
	DayEnd      float64 // minute-of-day when activity falls (e.g. 20h = 1200)
	NightFactor float64 // activity multiplier outside [DayStart, DayEnd), in (0,1]
	MeanRate    float64 // average pairwise contact rate during daytime (contacts/min)
	Sociability float64 // lognormal σ of per-node sociability (0 = homogeneous)
	ParetoShape float64 // inter-contact Pareto shape k > 1 (smaller = burstier)
}

// DefaultConference mirrors the scale of the paper's Infocom'06 subset:
// 50 well-covered participants over three days.
func DefaultConference() ConferenceConfig {
	return ConferenceConfig{
		Nodes:       50,
		Days:        3,
		DayStart:    8 * 60,
		DayEnd:      20 * 60,
		NightFactor: 0.04,
		MeanRate:    0.02,
		Sociability: 0.8,
		ParetoShape: 1.6,
	}
}

// Validate reports configuration errors.
func (c ConferenceConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("synth: %d nodes", c.Nodes)
	case c.Days <= 0:
		return fmt.Errorf("synth: %d days", c.Days)
	case c.DayStart < 0 || c.DayEnd <= c.DayStart || c.DayEnd > 1440:
		return fmt.Errorf("synth: day window [%g,%g)", c.DayStart, c.DayEnd)
	case c.NightFactor <= 0 || c.NightFactor > 1:
		return fmt.Errorf("synth: night factor %g", c.NightFactor)
	case c.MeanRate <= 0:
		return fmt.Errorf("synth: mean rate %g", c.MeanRate)
	case c.Sociability < 0:
		return fmt.Errorf("synth: sociability %g", c.Sociability)
	case c.ParetoShape <= 1:
		return fmt.Errorf("synth: Pareto shape %g must exceed 1 (finite mean)", c.ParetoShape)
	}
	return nil
}

// Conference generates the synthetic conference trace. Each pair (a,b)
// runs an independent renewal process whose gaps are Pareto with shape
// cfg.ParetoShape and whose mean matches the pair's rate s_a·s_b·base in
// "operational time"; real time is obtained by inverse time-change
// through the diurnal activity profile, so contacts cluster in daytime.
func Conference(cfg ConferenceConfig, rng *rand.Rand) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	duration := float64(cfg.Days) * 1440
	prof := NewDiurnal(cfg.DayStart, cfg.DayEnd, cfg.NightFactor, duration)

	// Per-node sociability: lognormal, normalized to mean 1 so MeanRate is
	// the daytime average pair rate.
	soc := make([]float64, cfg.Nodes)
	var socSum float64
	for i := range soc {
		soc[i] = math.Exp(rng.NormFloat64() * cfg.Sociability)
		socSum += soc[i]
	}
	for i := range soc {
		soc[i] *= float64(cfg.Nodes) / socSum
	}

	tr := &trace.Trace{Nodes: cfg.Nodes, Duration: duration}
	opTotal := prof.Cumulative(duration)
	for a := 0; a < cfg.Nodes; a++ {
		for b := a + 1; b < cfg.Nodes; b++ {
			rate := cfg.MeanRate * soc[a] * soc[b]
			if rate <= 0 {
				continue
			}
			// Pareto(xm, k) has mean xm·k/(k-1); match mean gap 1/rate.
			k := cfg.ParetoShape
			xm := (k - 1) / (k * rate)
			s := 0.0
			// Random start phase to avoid synchronizing all pairs at 0.
			s += xm * (math.Pow(rng.Float64(), -1/k) - 1) * rng.Float64()
			for {
				gap := xm * math.Pow(1-rng.Float64(), -1/k)
				s += gap
				if s >= opTotal {
					break
				}
				tr.Contacts = append(tr.Contacts, trace.Contact{T: prof.Invert(s), A: a, B: b})
			}
		}
	}
	tr.Normalize()
	return tr, tr.Validate()
}

// Diurnal is a piecewise-constant activity profile over [0, duration]
// repeating daily, with fast cumulative/inverse evaluation. The
// conference generator uses it to cluster contacts in daytime; the
// adversary layer's nonstationary contact wrapper reuses it to impose
// the same day/night cycle on any streamed contact source through the
// time-change t ↦ Λ⁻¹(t·Λ(D)/D).
type Diurnal struct {
	breaks []float64 // ascending real-time breakpoints
	levels []float64 // activity level on [breaks[i], breaks[i+1])
	cum    []float64 // cumulative activity at each breakpoint
}

// NewDiurnal builds the daily profile: activity 1 inside the
// [dayStart, dayEnd) minute-of-day window and nightFactor outside it,
// repeated over [0, duration].
func NewDiurnal(dayStart, dayEnd, nightFactor, duration float64) *Diurnal {
	d := &Diurnal{}
	t := 0.0
	day := 0
	for t < duration {
		dayBase := float64(day) * 1440
		edges := []struct {
			at    float64
			level float64
		}{
			{dayBase, nightFactor},
			{dayBase + dayStart, 1},
			{dayBase + dayEnd, nightFactor},
		}
		for _, e := range edges {
			if e.at >= duration {
				break
			}
			if e.at >= t {
				d.breaks = append(d.breaks, e.at)
				d.levels = append(d.levels, e.level)
				t = e.at
			}
		}
		day++
		t = float64(day) * 1440
	}
	d.breaks = append(d.breaks, duration)
	d.cum = make([]float64, len(d.breaks))
	for i := 1; i < len(d.breaks); i++ {
		d.cum[i] = d.cum[i-1] + d.levels[i-1]*(d.breaks[i]-d.breaks[i-1])
	}
	return d
}

// Cumulative returns Λ(t) = ∫_0^t activity.
func (d *Diurnal) Cumulative(t float64) float64 {
	i := sort.SearchFloat64s(d.breaks, t)
	if i > 0 && (i == len(d.breaks) || d.breaks[i] != t) {
		i--
	}
	if i >= len(d.levels) {
		return d.cum[len(d.cum)-1]
	}
	return d.cum[i] + d.levels[i]*(t-d.breaks[i])
}

// Invert returns Λ^{-1}(s): the real time at which cumulative activity
// reaches s.
func (d *Diurnal) Invert(s float64) float64 {
	i := sort.SearchFloat64s(d.cum, s)
	if i > 0 && (i == len(d.cum) || d.cum[i] != s) {
		i--
	}
	if i >= len(d.levels) {
		return d.breaks[len(d.breaks)-1]
	}
	return d.breaks[i] + (s-d.cum[i])/d.levels[i]
}

// VehicularConfig parameterizes the taxi-trace generator.
type VehicularConfig struct {
	Cabs           int
	Width          float64 // area width, meters
	Height         float64 // area height, meters
	MinSpeed       float64 // m/min
	MaxSpeed       float64 // m/min
	MaxPause       float64 // minutes
	DurationMin    float64 // trace length, minutes
	Radius         float64 // contact radius, meters (paper: 200)
	SampleInterval float64 // position sampling step, minutes
}

// DefaultVehicular mirrors the paper's Cabspotting subset: 50 cabs over
// one day with a 200 m contact radius, in a 10 km × 10 km area at urban
// taxi speeds (≈18–57 km/h).
func DefaultVehicular() VehicularConfig {
	return VehicularConfig{
		Cabs:           50,
		Width:          10000,
		Height:         10000,
		MinSpeed:       300,
		MaxSpeed:       950,
		MaxPause:       8,
		DurationMin:    1440,
		Radius:         200,
		SampleInterval: 0.25,
	}
}

// Vehicular generates the synthetic taxi trace via random-waypoint
// mobility and proximity extraction.
func Vehicular(cfg VehicularConfig, rng *rand.Rand) (*trace.Trace, error) {
	r, err := mobility.NewRWP(mobility.RWPConfig{
		Nodes:    cfg.Cabs,
		Width:    cfg.Width,
		Height:   cfg.Height,
		MinSpeed: cfg.MinSpeed,
		MaxSpeed: cfg.MaxSpeed,
		MaxPause: cfg.MaxPause,
	}, rng)
	if err != nil {
		return nil, err
	}
	return mobility.ExtractContacts(r, cfg.DurationMin, cfg.SampleInterval, cfg.Radius)
}

// Memoryless builds the synthesized counterpart of tr used in Figure 5c:
// identical empirical pairwise contact rates, but contact times redrawn
// as independent Poisson processes. Heterogeneity is preserved exactly;
// time correlations (diurnal cycles, burstiness) are destroyed.
func Memoryless(tr *trace.Trace, rng *rand.Rand) (*trace.Trace, error) {
	return contact.Generate(trace.EmpiricalRates(tr), tr.Duration, rng)
}
