package meanfield

import (
	"errors"
	"math"
	"testing"

	"impatience/internal/demand"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

func sys(f utility.Function) System {
	return System{
		Utility: f,
		Pop:     demand.Pareto(20, 1, 1),
		Mu:      0.05,
		Servers: 50,
		Rho:     5,
	}
}

func TestValidate(t *testing.T) {
	s := sys(utility.Step{Tau: 10})
	if err := s.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	s.Mu = 0
	if err := s.Validate(); err == nil {
		t.Error("µ=0 accepted")
	}
	s = sys(utility.Step{Tau: 10})
	s.Rho = 0
	if err := s.Validate(); err == nil {
		t.Error("ρ=0 accepted")
	}
}

func TestMassConservation(t *testing.T) {
	// Eq. 7 conserves total replicas: Σ dx_i/dt = 0 whenever Σ x_i = ρS.
	s := sys(utility.Power{Alpha: 0})
	x := s.UniformStart()
	dst := make([]float64, len(x))
	s.Derivs(0, x, dst)
	var sum float64
	for _, v := range dst {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("Σ dx/dt = %g, want 0", sum)
	}
}

func TestRunPreservesBudget(t *testing.T) {
	s := sys(utility.Step{Tau: 10})
	x0 := s.UniformStart()
	x, err := s.Run(x0, 500, 0.5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var total float64
	for _, v := range x {
		if v < 0 {
			t.Errorf("negative replica count %g", v)
		}
		total += v
	}
	if math.Abs(total-250) > 0.5 {
		t.Errorf("total replicas %g, want ≈250", total)
	}
}

// Property 2: the steady state of the fluid dynamics matches the relaxed
// welfare optimum (Property 1 balance) for each utility family.
func TestSteadyStateIsOptimal(t *testing.T) {
	fams := []utility.Function{
		utility.Step{Tau: 10},
		utility.Exponential{Nu: 0.1},
		utility.Power{Alpha: 0},
		utility.Power{Alpha: 0.5},
		utility.Power{Alpha: -1},
	}
	for _, f := range fams {
		t.Run(f.Name(), func(t *testing.T) {
			s := sys(f)
			x, ok, err := s.RunToSteadyState(s.UniformStart(), 200000, 2, 1e-8)
			if err != nil {
				t.Fatalf("RunToSteadyState: %v", err)
			}
			if !ok {
				t.Fatal("did not converge")
			}
			h := welfare.Homogeneous{
				Utility: f, Pop: s.Pop, Mu: s.Mu, Servers: s.Servers, Clients: s.Servers,
			}
			opt, err := h.RelaxedOptimal(s.Rho)
			if err != nil {
				t.Fatalf("RelaxedOptimal: %v", err)
			}
			for i := range x {
				if opt[i] >= float64(s.Servers)-1e-6 {
					continue // boundary coordinates may differ
				}
				if math.Abs(x[i]-opt[i]) > 0.02*math.Max(1, opt[i]) {
					t.Errorf("item %d: steady state %g vs optimum %g", i, x[i], opt[i])
				}
			}
			// Welfare at the steady state ≈ optimal welfare.
			uS, uO := h.Welfare(x), h.Welfare(opt)
			if uS < uO-1e-3*math.Abs(uO) {
				t.Errorf("steady-state welfare %g below optimum %g", uS, uO)
			}
		})
	}
}

// The fixed point is independent of the ψ scale (only convergence speed
// changes).
func TestPsiScaleInvariance(t *testing.T) {
	base := sys(utility.Power{Alpha: 0.5})
	fast := base
	fast.PsiScale = 5
	x1, ok1, err1 := base.RunToSteadyState(base.UniformStart(), 200000, 2, 1e-8)
	x2, ok2, err2 := fast.RunToSteadyState(fast.UniformStart(), 200000, 2, 1e-8)
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("convergence failure: %v %v %v %v", err1, ok1, err2, ok2)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 0.01*math.Max(1, x1[i]) {
			t.Errorf("item %d: %g vs %g under scaled ψ", i, x1[i], x2[i])
		}
	}
}

func TestRunRejectsBadState(t *testing.T) {
	s := sys(utility.Step{Tau: 1})
	if _, err := s.Run([]float64{1, 2}, 10, 0.5); err == nil {
		t.Error("mismatched state length accepted")
	}
}

// TestValidateRejectsNonFinite is the construction-time input table:
// every non-finite or negative rate/demand configuration must be
// rejected with ErrSystem before the solver sees it, matching the
// validation style of internal/rates and internal/adversary.
func TestValidateRejectsNonFinite(t *testing.T) {
	base := func() System { return sys(utility.Step{Tau: 10}) }
	cases := []struct {
		name string
		mut  func(*System)
	}{
		{"nan-mu", func(s *System) { s.Mu = math.NaN() }},
		{"inf-mu", func(s *System) { s.Mu = math.Inf(1) }},
		{"negative-mu", func(s *System) { s.Mu = -0.05 }},
		{"nan-psi-scale", func(s *System) { s.PsiScale = math.NaN() }},
		{"inf-psi-scale", func(s *System) { s.PsiScale = math.Inf(1) }},
		{"negative-psi-scale", func(s *System) { s.PsiScale = -1 }},
		{"nan-demand", func(s *System) { s.Pop.Rates[3] = math.NaN() }},
		{"inf-demand", func(s *System) { s.Pop.Rates[3] = math.Inf(1) }},
		{"negative-demand", func(s *System) { s.Pop.Rates[3] = -2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			// Popularity shares its rate slice; mutate a private copy.
			s.Pop = demand.Popularity{Rates: append([]float64(nil), s.Pop.Rates...)}
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid system accepted")
			}
			if !errors.Is(err, ErrSystem) {
				t.Errorf("error %v does not wrap ErrSystem", err)
			}
			if _, rerr := s.Run(s.UniformStart(), 10, 0); rerr == nil {
				t.Error("Run accepted the invalid system")
			}
		})
	}
}

func TestRunRejectsNonFiniteState(t *testing.T) {
	s := sys(utility.Step{Tau: 10})
	x0 := s.UniformStart()
	x0[0] = math.NaN()
	if _, err := s.Run(x0, 10, 0); !errors.Is(err, ErrSystem) {
		t.Errorf("NaN state: err=%v, want ErrSystem", err)
	}
	x0[0] = -3
	if _, _, err := s.RunToSteadyState(x0, 10, 0, 1e-6); !errors.Is(err, ErrSystem) {
		t.Errorf("negative state: err=%v, want ErrSystem", err)
	}
}

// BenchmarkSteadyState measures the adaptive solver on the package's
// headline workload, the Property-2 fixed-point run of the oracle.
func BenchmarkSteadyState(b *testing.B) {
	s := sys(utility.Step{Tau: 10})
	x0 := s.UniformStart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.RunToSteadyState(x0, 200000, 2, 1e-8); err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}
