package oracle

// The welfare ladder: the simulator against the closed-form welfare of
// Section 4 at a ladder of population sizes N, under the mean-field
// scaling (µ = µ̄/N, demand ∝ N). Three checks share one set of runs:
// aggregate welfare convergence, per-item welfare, and KS tests of the
// fulfillment-delay distributions against the exponential meeting model.

import (
	"fmt"
	"math"

	"impatience/internal/alloc"
	"impatience/internal/parallel"
	"impatience/internal/stats"
	"impatience/internal/utility"
)

// Gate constants for the ladder checks. The confidence level and slack
// factors are deliberately conservative: the suite runs at fixed seeds,
// so a pass/fail flip on reseeding would mean an effect within a hair of
// the gate — the slacks keep healthy code comfortably inside and leave
// the negative control (uniform allocation asserted as optimal) far
// outside.
const (
	ladderConf     = 0.99  // CI level per rung
	ladderCISlack  = 3.0   // tolerance = slack·halfwidth + floor·|U|
	ladderAbsFloor = 0.005 // residual horizon/warmup bias allowance
	rungGrowthTol  = 1.10  // hw may exceed the previous rung by ≤ 10% (estimator noise)
	ladderShrink   = 0.60  // hw(last) must be < 0.60·hw(first)
	perItemCISlack = 3.5
	perItemFloor   = 0.02
	ksAlpha        = 0.001 // family-wise, Bonferroni-split across items
	ksSpanFactor   = 25.0  // test only items with mean delay ≤ span/25 (censoring)
)

// rungData is one rung of the welfare ladder.
type rungData struct {
	n     int
	U     float64        // closed-form welfare of the asserted allocation
	iv    stats.Interval // CI on the trial means of AvgUtilityRate
	rates []float64      // per-trial realized utility rates
}

// ladderData is the shared outcome of the ladder runs; the top rung
// additionally carries the per-item instrumentation.
type ladderData struct {
	err   error
	u     utility.Function
	rungs []rungData

	// Top rung (largest N) instrumentation.
	topN        int
	topMu       float64      // pairwise rate at the top rung
	topSpan     float64      // measured span (duration − warmup)
	topAsserted alloc.Counts // allocation whose closed form is asserted
	topDemand   []float64    // per-item demand rates
	topDelays   [][]float64  // per item: delay samples pooled over trials
	topGains    [][]float64  // per trial, per item: realized gain rate
}

// getLadder runs the welfare ladder once per session.
func (s *session) getLadder() *ladderData {
	if s.ladder != nil {
		return s.ladder
	}
	ld := &ladderData{u: utility.Step{Tau: s.p.tau}}
	s.ladder = ld
	for k, n := range s.p.ladderN {
		sc := s.p.scenario(n, s.cfg)
		hom := sc.Homogeneous(ld.u)
		opt, err := hom.GreedyOptimal(sc.Rho)
		if err != nil {
			ld.err = fmt.Errorf("rung N=%d: greedy optimal: %w", n, err)
			return ld
		}
		simAlloc := opt
		if s.cfg.BreakAllocation {
			// Negative control: simulate UNI, assert OPT's closed form.
			simAlloc = alloc.Uniform(sc.Items, sc.Nodes, sc.Rho)
		}
		top := k == len(s.p.ladderN)-1
		type out struct {
			rate  float64
			gains []float64
			dels  [][]float64
		}
		outs, err := parallel.RunTrials(sc.Trials, s.cfg.Workers, sc.Seed, func(trial int, seed uint64) (out, error) {
			res, err := sc.RunStaticStream(ld.u, simAlloc, trial, seed, top)
			if err != nil {
				return out{}, err
			}
			o := out{rate: res.AvgUtilityRate}
			if top {
				span := res.Duration - res.MeasureStart
				o.gains = make([]float64, len(res.ItemGains))
				for i, g := range res.ItemGains {
					o.gains[i] = g / span
				}
				o.dels = res.ItemDelays
			}
			return o, nil
		})
		if err != nil {
			ld.err = fmt.Errorf("rung N=%d: %w", n, err)
			return ld
		}
		rates := make([]float64, len(outs))
		for t, o := range outs {
			rates[t] = o.rate
		}
		rung := rungData{
			n:     n,
			U:     hom.WelfareCounts(opt),
			iv:    stats.MeanCI(rates, ladderConf),
			rates: rates,
		}
		ld.rungs = append(ld.rungs, rung)
		if top {
			ld.topN = n
			ld.topMu = sc.Mu
			ld.topSpan = sc.Duration * (1 - sc.WarmupFrac)
			ld.topAsserted = opt
			ld.topDemand = append([]float64(nil), sc.Pop().Rates...)
			ld.topDelays = make([][]float64, sc.Items)
			ld.topGains = make([][]float64, len(outs))
			for t, o := range outs {
				ld.topGains[t] = o.gains
				for i, d := range o.dels {
					ld.topDelays[i] = append(ld.topDelays[i], d...)
				}
			}
		}
	}
	return ld
}

// checkWelfareLadder gates the aggregate simulated welfare against the
// closed form at every rung, and requires the tolerance — the trial-mean
// confidence interval — to shrink along the ladder: the convergence
// assertion of the mean-field limit, not a fixed epsilon.
func (s *session) checkWelfareLadder() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	ld := s.getLadder()
	if ld.err != nil {
		return infraFail(res, ld.err)
	}
	// U scales linearly with N (aggregate demand ∝ N), so convergence is
	// gated on the RELATIVE tolerance hw/|U|: the per-node noise shrinks
	// like 1/√N even as the absolute welfare grows.
	relhw := func(r rungData) float64 { return r.iv.Halfwidth / math.Abs(r.U) }
	for k, r := range ld.rungs {
		tol := ladderCISlack*r.iv.Halfwidth + ladderAbsFloor*math.Abs(r.U)
		dev := math.Abs(r.iv.Center - r.U)
		ok, line := assertLine(dev <= tol,
			"N=%-4d sim %.5f vs closed form %.5f: |Δ|=%.5f ≤ tol %.5f (CI ±%.5f, %d trials)",
			r.n, r.iv.Center, r.U, dev, tol, r.iv.Halfwidth, len(r.rates))
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		res.Effect = maxf(res.Effect, dev/tol)
		if k > 0 {
			prev := relhw(ld.rungs[k-1])
			ok, line := assertLine(relhw(r) <= rungGrowthTol*prev,
				"N=%-4d relative tolerance ±%.4f vs previous rung ±%.4f (must not grow > %g×)",
				r.n, relhw(r), prev, rungGrowthTol)
			res.Details = append(res.Details, line)
			res.Pass = res.Pass && ok
		}
	}
	first, last := relhw(ld.rungs[0]), relhw(ld.rungs[len(ld.rungs)-1])
	ok, line := assertLine(last < ladderShrink*first,
		"convergence: relative tolerance shrank ±%.4f → ±%.4f (×%.2f, need < ×%g) along N=%v",
		first, last, last/first, ladderShrink, s.p.ladderN)
	res.Details = append(res.Details, line)
	res.Pass = res.Pass && ok
	res.Effect = maxf(res.Effect, (last/first)/ladderShrink)
	return res
}

// checkPerItemWelfare gates the per-item realized gain rates at the top
// rung against the closed-form per-item welfare terms
// d_i·[x_i/N·h(0⁺) + (1−x_i/N)·E h(Exp(µx_i))] — the same quantities
// internal/welfare sums into U(x), recomputed here independently from
// the utility primitives so a bug in the welfare evaluator cannot
// self-certify.
func (s *session) checkPerItemWelfare() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	ld := s.getLadder()
	if ld.err != nil {
		return infraFail(res, ld.err)
	}
	n := float64(ld.topN)
	for i := 0; i < s.p.topItems && i < len(ld.topAsserted); i++ {
		x := float64(ld.topAsserted[i])
		frac := math.Min(x/n, 1)
		want := ld.topDemand[i] * (frac*ld.u.H0() + (1-frac)*ld.u.ExpectedGain(ld.topMu*x))
		perTrial := make([]float64, len(ld.topGains))
		for t := range ld.topGains {
			perTrial[t] = ld.topGains[t][i]
		}
		iv := stats.MeanCI(perTrial, ladderConf)
		tol := perItemCISlack*iv.Halfwidth + perItemFloor*math.Abs(want)
		dev := math.Abs(iv.Center - want)
		ok, line := assertLine(dev <= tol,
			"item %-2d (x=%g, d=%.3f): sim %.5f vs closed form %.5f, |Δ|=%.5f ≤ %.5f",
			i, x, ld.topDemand[i], iv.Center, want, dev, tol)
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		res.Effect = maxf(res.Effect, dev/tol)
	}
	return res
}

// checkDelayKS tests the pooled fulfillment-delay samples of the top
// rung against the exponential meeting model: a request for an item with
// x holders is fulfilled (when not already held locally) after an
// Exp(µx) delay. Items with too few samples or a mean delay long enough
// for horizon censoring to bias the test are skipped, with the skip
// reported. The significance level is family-wise via Bonferroni.
func (s *session) checkDelayKS() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	ld := s.getLadder()
	if ld.err != nil {
		return infraFail(res, ld.err)
	}
	type cand struct {
		item int
		rate float64
		dels []float64
	}
	var cands []cand
	skipped := 0
	for i, all := range ld.topDelays {
		x := float64(ld.topAsserted[i])
		if x <= 0 {
			continue
		}
		rate := ld.topMu * x
		if 1/rate > ld.topSpan/ksSpanFactor {
			skipped++
			continue
		}
		// Immediate local fulfillments (delay 0) are the atom at zero of
		// the pure-P2P mixture; the exponential law governs the rest.
		pos := make([]float64, 0, len(all))
		for _, d := range all {
			if d > 0 {
				pos = append(pos, d)
			}
		}
		if len(pos) < s.p.minKSn {
			skipped++
			continue
		}
		cands = append(cands, cand{item: i, rate: rate, dels: pos})
	}
	if len(cands) == 0 {
		return infraFail(res, fmt.Errorf("no item has ≥ %d usable delay samples", s.p.minKSn))
	}
	alpha := ksAlpha / float64(len(cands))
	for _, c := range cands {
		d := stats.KSExponential(c.dels, c.rate)
		crit := stats.KSCritical(alpha, len(c.dels))
		ok, line := assertLine(d <= crit,
			"item %-2d: KS %.4f vs Exp(%.3f) ≤ crit %.4f (n=%d, α=%.2g)",
			c.item, d, c.rate, crit, len(c.dels), alpha)
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		res.Effect = maxf(res.Effect, d/crit)
	}
	res.Details = append(res.Details,
		fmt.Sprintf("ok    %d items tested, %d skipped (few samples or censoring-prone)", len(cands), skipped))
	return res
}
