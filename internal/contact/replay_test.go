package contact

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"impatience/internal/trace"
)

// drain collects a source's whole stream (test-scale only).
func drain(t *testing.T, src trace.Source) []trace.Contact {
	t.Helper()
	var out []trace.Contact
	for {
		c, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}

// TestReplayStreamMatchesGenerate is the bit-identity anchor of the
// batch executor's contact path: for the same PCG seeds, the replay
// stream must yield exactly the contact sequence the materialized
// generator appends — same times, same pairs, same count. Checked on
// homogeneous and heterogeneous (sparse) matrices.
func TestReplayStreamMatchesGenerate(t *testing.T) {
	het := trace.NewRateMatrix(9)
	het.Set(0, 1, 0.2)
	het.Set(2, 3, 0.05)
	het.Set(4, 8, 0.8)
	for _, tc := range []struct {
		name string
		rm   *trace.RateMatrix
	}{
		{"homogeneous", trace.UniformRates(17, 0.05)},
		{"heterogeneous", het},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const duration = 700.0
			const s1, s2 = uint64(42), uint64(42 ^ 0xabcdef)
			tr, err := Generate(tc.rm, duration, rand.New(rand.NewPCG(s1, s2)))
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			src, err := NewReplayStream(tc.rm, duration, s1, s2)
			if err != nil {
				t.Fatalf("NewReplayStream: %v", err)
			}
			if src.Nodes() != tc.rm.Nodes || src.Duration() != duration {
				t.Fatalf("dims %d/%g, want %d/%g", src.Nodes(), src.Duration(), tc.rm.Nodes, duration)
			}
			got := drain(t, src)
			if len(got) == 0 && tc.name == "homogeneous" {
				t.Fatal("empty replay stream")
			}
			if !reflect.DeepEqual(got, tr.Contacts) {
				t.Fatalf("replay stream diverges from Generate: %d streamed vs %d materialized", len(got), len(tr.Contacts))
			}
			// Drained stays drained.
			if _, ok := src.Next(); ok {
				t.Error("drained stream yielded another contact")
			}
		})
	}
}

// TestReplayStreamReopen: reopening must restart the identical sequence,
// from any drain depth, without disturbing the original.
func TestReplayStreamReopen(t *testing.T) {
	src, err := NewHomogeneousReplayStream(11, 0.05, 500, 7, 7^0xabcdef)
	if err != nil {
		t.Fatalf("NewHomogeneousReplayStream: %v", err)
	}
	first := drain(t, src)
	re, err := src.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if !reflect.DeepEqual(drain(t, re), first) {
		t.Fatal("reopened stream diverges from the original")
	}
	// Reopen mid-drain: the copy restarts from zero.
	re2, err := src.Reopen()
	if err != nil {
		t.Fatalf("second Reopen: %v", err)
	}
	c, ok := re2.Next()
	if !ok || !reflect.DeepEqual(c, first[0]) {
		t.Fatalf("reopened stream starts at %+v, want %+v", c, first[0])
	}
}

// TestReplayStreamZeroAndInvalidRates: the empty process streams nothing
// (and reopens as nothing); invalid rates are rejected like every other
// generator.
func TestReplayStreamZeroAndInvalidRates(t *testing.T) {
	empty, err := NewReplayStream(trace.NewRateMatrix(5), 100, 1, 2)
	if err != nil {
		t.Fatalf("zero-rate NewReplayStream: %v", err)
	}
	if _, ok := empty.Next(); ok {
		t.Error("zero-rate stream yielded a contact")
	}
	re, err := empty.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if _, ok := re.Next(); ok {
		t.Error("reopened zero-rate stream yielded a contact")
	}

	bad := trace.NewRateMatrix(4)
	bad.Set(0, 1, -1)
	if _, err := NewReplayStream(bad, 100, 1, 2); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewReplayStream(trace.UniformRates(4, 0.1), 0, 1, 2); err == nil {
		t.Error("zero duration accepted")
	}
}
