package experiment

import (
	"math/rand/v2"

	"impatience/internal/contact"
	"impatience/internal/trace"
)

// contactGen is a seam for the homogeneous trace generator (kept separate
// so tests can exercise Scenario wiring without pulling in the full
// contact package surface).
func contactGen(nodes int, mu, duration float64, rng *rand.Rand) (*trace.Trace, error) {
	return contact.GenerateHomogeneous(nodes, mu, duration, rng)
}
