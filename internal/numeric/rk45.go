package numeric

import (
	"fmt"
	"math"
)

// Adaptive Dormand–Prince 5(4) integration. The embedded 4th-order
// solution provides a per-step error estimate; steps are accepted when
// the weighted RMS error is ≤ 1 and the step size is rescaled by the
// standard controller h ← h·min(5, max(0.2, 0.9·err^{-1/5})). The last
// stage of an accepted step equals the first stage of the next (FSAL),
// so an accepted step costs six derivative evaluations.

// RKOpts parameterizes the adaptive integrator. The zero value selects
// the defaults noted on each field.
type RKOpts struct {
	RTol float64 // relative tolerance (default 1e-6)
	ATol float64 // absolute tolerance (default 1e-9)
	// InitStep seeds the step-size controller; ≤ 0 derives a guess from
	// the initial state and derivative norms.
	InitStep float64
	// MaxStep caps the step size; ≤ 0 means no cap beyond the remaining
	// integration span.
	MaxStep float64
	// MaxSteps bounds accepted+rejected steps per AdvanceTo call
	// (default 5e6) so a pathological system errors out instead of
	// spinning.
	MaxSteps int
	// Clamp, when non-nil, is applied to the state after every accepted
	// step (e.g. a positivity floor). Clamping invalidates the FSAL
	// derivative reuse for the next step.
	Clamp func(x []float64)
}

// RKStats reports the work an integration performed.
type RKStats struct {
	Steps    int     // accepted steps
	Rejected int     // rejected attempts
	Evals    int     // derivative evaluations
	LastStep float64 // step size after the final accepted step
}

// Dormand–Prince coefficients.
var (
	dpC = [7]float64{0, 1. / 5, 3. / 10, 4. / 5, 8. / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1. / 5},
		{3. / 40, 9. / 40},
		{44. / 45, -56. / 15, 32. / 9},
		{19372. / 6561, -25360. / 2187, 64448. / 6561, -212. / 729},
		{9017. / 3168, -355. / 33, 46732. / 5247, 49. / 176, -5103. / 18656},
		{35. / 384, 0, 500. / 1113, 125. / 192, -2187. / 6784, 11. / 84},
	}
	// dpE = b5 − b4: dotted with the stages it yields the error estimate.
	dpE = [7]float64{
		35./384 - 5179./57600,
		0,
		500./1113 - 7571./16695,
		125./192 - 393./640,
		-2187./6784 + 92097./339200,
		11./84 - 187./2100,
		-1. / 40,
	}
)

// Stepper carries the adaptive integration state across calls, so an
// event loop can interleave integration with discrete events without
// re-priming the step-size controller each time.
type Stepper struct {
	f     Derivs
	o     RKOpts
	t     float64
	x     []float64
	h     float64
	k     [7][]float64
	ytmp  []float64
	ynew  []float64
	stats RKStats
	fsal  bool // k[6] of the last accepted step is valid as k[0]
}

// NewStepper builds a stepper at (t0, x0). x0 is copied.
func NewStepper(f Derivs, x0 []float64, t0 float64, o RKOpts) *Stepper {
	if o.RTol <= 0 {
		o.RTol = 1e-6
	}
	if o.ATol <= 0 {
		o.ATol = 1e-9
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 5_000_000
	}
	s := &Stepper{f: f, o: o, t: t0, x: append([]float64(nil), x0...)}
	d := len(x0)
	for i := range s.k {
		s.k[i] = make([]float64, d)
	}
	s.ytmp = make([]float64, d)
	s.ynew = make([]float64, d)
	return s
}

// Time returns the current integration time.
func (s *Stepper) Time() float64 { return s.t }

// State returns the live state slice; callers must not modify it.
func (s *Stepper) State() []float64 { return s.x }

// Stats returns cumulative work counters.
func (s *Stepper) Stats() RKStats { return s.stats }

// initStep picks the first step size: the configured seed, or a
// conservative guess from the state/derivative norms.
func (s *Stepper) initStep(span float64) float64 {
	if s.o.InitStep > 0 {
		return s.o.InitStep
	}
	s.f(s.t, s.x, s.k[0])
	s.stats.Evals++
	s.fsal = true
	var dx, dd float64
	for i := range s.x {
		if v := math.Abs(s.x[i]); v > dx {
			dx = v
		}
		if v := math.Abs(s.k[0][i]); v > dd {
			dd = v
		}
	}
	h := span / 100
	if dd > 0 {
		if g := 0.01 * (dx + s.o.ATol) / dd; g > 0 && g < h {
			h = g
		}
	}
	if h <= 0 {
		h = 1e-6
	}
	return h
}

// AdvanceTo integrates the state forward to target, taking as many
// adaptive steps as needed. Advancing to a past or equal time is a
// no-op.
func (s *Stepper) AdvanceTo(target float64) error {
	if target <= s.t {
		return nil
	}
	if s.h <= 0 {
		s.h = s.initStep(target - s.t)
	}
	steps := 0
	for s.t < target {
		if steps++; steps > s.o.MaxSteps {
			return fmt.Errorf("numeric: RK45 exceeded %d steps at t=%g", s.o.MaxSteps, s.t)
		}
		h := s.h
		if s.o.MaxStep > 0 && h > s.o.MaxStep {
			h = s.o.MaxStep
		}
		last := false
		if s.t+h >= target {
			h = target - s.t
			last = true
		}
		err, ok := s.attempt(h)
		if !ok {
			return fmt.Errorf("numeric: RK45 produced a non-finite state at t=%g (step %g)", s.t, h)
		}
		// Step-size controller; the rescale applies whether or not the
		// step was accepted.
		fac := 5.0
		if err > 0 {
			fac = 0.9 * math.Pow(err, -0.2)
			if fac > 5 {
				fac = 5
			} else if fac < 0.2 {
				fac = 0.2
			}
		}
		if err <= 1 { // accept
			s.t += h
			copy(s.x, s.ynew)
			// FSAL: the last stage is the derivative at the new state.
			s.k[0], s.k[6] = s.k[6], s.k[0]
			s.fsal = true
			if s.o.Clamp != nil {
				s.o.Clamp(s.x)
				s.fsal = false // the clamp may have moved the state
			}
			s.stats.Steps++
			if !last {
				s.h = h * fac
			} else if s.h < h {
				s.h = h
			}
			s.stats.LastStep = s.h
		} else {
			s.stats.Rejected++
			s.h = h * fac
		}
	}
	return nil
}

// attempt takes one trial step of size h from (s.t, s.x) into s.ynew and
// returns the weighted RMS error estimate. ok is false when the step
// produced non-finite values.
func (s *Stepper) attempt(h float64) (errNorm float64, ok bool) {
	if !s.fsal {
		s.f(s.t, s.x, s.k[0])
		s.stats.Evals++
		s.fsal = true
	}
	for stage := 1; stage < 7; stage++ {
		a := dpA[stage]
		for i := range s.ytmp {
			sum := 0.0
			for j := 0; j < stage; j++ {
				if a[j] != 0 {
					sum += a[j] * s.k[j][i]
				}
			}
			s.ytmp[i] = s.x[i] + h*sum
		}
		s.f(s.t+dpC[stage]*h, s.ytmp, s.k[stage])
		s.stats.Evals++
	}
	// Stage 7 used the 5th-order weights, so ytmp is the new state and
	// k[6] is its derivative (FSAL).
	copy(s.ynew, s.ytmp)
	var sum float64
	for i := range s.ynew {
		if math.IsNaN(s.ynew[i]) || math.IsInf(s.ynew[i], 0) {
			return 0, false
		}
		e := 0.0
		for j := 0; j < 7; j++ {
			if dpE[j] != 0 {
				e += dpE[j] * s.k[j][i]
			}
		}
		e *= h
		sc := s.o.ATol + s.o.RTol*math.Max(math.Abs(s.x[i]), math.Abs(s.ynew[i]))
		w := e / sc
		sum += w * w
	}
	errNorm = math.Sqrt(sum / float64(len(s.ynew)))
	if math.IsNaN(errNorm) {
		return 0, false
	}
	return errNorm, true
}

// RK45 integrates dx/dt = f(t, x) from t0 to t1 with the adaptive
// Dormand–Prince 5(4) pair, returning the final state (a fresh slice;
// x0 is not modified) and the work statistics.
func RK45(f Derivs, x0 []float64, t0, t1 float64, o RKOpts) ([]float64, RKStats, error) {
	s := NewStepper(f, x0, t0, o)
	if err := s.AdvanceTo(t1); err != nil {
		return nil, s.stats, err
	}
	return append([]float64(nil), s.x...), s.stats, nil
}
