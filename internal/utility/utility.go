// Package utility implements the delay-utility theory at the heart of
// "The Age of Impatience" (Reich & Chaintreau, CoNEXT 2009).
//
// A delay-utility function h(t) maps the fulfillment delay of a request to
// the gain it produces for the network; it is monotonically non-increasing
// (waiting longer never makes a user happier). The paper's analysis rests
// on three derived objects, all provided here in closed form for the five
// families of Table 1 (step, exponential decay, inverse power, negative
// power and negative logarithm) and numerically for arbitrary functions:
//
//   - the differential delay-utility c, with c(t) = -h'(t) (a density plus
//     possibly atoms where h jumps, e.g. the step function's Dirac at τ);
//   - the expected gain E[h(Y)] of a request whose fulfillment delay Y is
//     exponential with a given rate — the building block of the social
//     welfare U(x) (Eqs. 2–5 and Lemma 1);
//   - the transform ϕ(x) = ∫ µ t e^{-µtx} c(t) dt of Property 1, whose
//     balance condition d_i·ϕ(x_i) = const characterizes the optimal cache
//     allocation, and the associated reaction function ψ of Property 2,
//     ψ(y) ∝ (S/y)·ϕ(S/y), which tunes Query Counting Replication.
package utility

import (
	"fmt"
	"math"

	"impatience/internal/numeric"
)

// EulerGamma is the Euler–Mascheroni constant, which appears in the
// expected gain of the negative-logarithm utility: E[-ln Y] = γ + ln λ for
// Y ~ Exp(λ).
const EulerGamma = 0.57721566490153286060651209008240243104215933593992

// Atom is a point mass of the differential delay-utility measure c. The
// step function h(t) = 1{t ≤ τ} has a single atom of mass 1 at t = τ (its
// derivative in the distributional sense is a negative Dirac there).
type Atom struct {
	T    float64 // location of the jump of h
	Mass float64 // size of the downward jump, h(T⁻) − h(T⁺) > 0
}

// Function is a delay-utility function together with the closed-form
// quantities the theory derives from it. Implementations must satisfy:
// H is non-increasing, Density(t) ≥ 0, and H, Density and Atoms are
// mutually consistent (h(t) = h(s) − ∫_s^t c for s < t).
type Function interface {
	// Name identifies the family and its parameters, e.g. "step(τ=10)".
	Name() string

	// H evaluates h(t) for t > 0.
	H(t float64) float64

	// H0 is h(0⁺); math.Inf(1) for utilities with unbounded reward at
	// zero delay (inverse power with α > 1, negative logarithm), which
	// the paper restricts to the dedicated-node case.
	H0() float64

	// ExpectedGain is E[h(Y)] for a fulfillment delay Y exponentially
	// distributed with the given rate ≥ 0. rate = 0 means the request is
	// never fulfilled and yields lim_{t→∞} h(t) (which may be -Inf for
	// cost-type utilities).
	ExpectedGain(rate float64) float64

	// Phi is the Property-1 transform ϕ(x) = ∫_0^∞ µ t e^{-µtx} c(t) dt
	// for pairwise contact rate µ and (real-valued) replica count x > 0.
	// Phi is positive and strictly decreasing in x.
	Phi(mu, x float64) float64

	// Density is the absolutely continuous part of c(t) = -h'(t).
	Density(t float64) float64

	// Atoms lists the point masses of c (empty for differentiable h).
	Atoms() []Atom
}

// Psi is the reaction function of Property 2: the number of replicas QCR
// should create for a fulfilled request whose query counter reads y, given
// contact rate mu and |S| = servers. Up to the caller's choice of scale,
// ψ(y) = (servers/y)·ϕ(servers/y); this package fixes the proportionality
// constant to exactly that product, matching Table 1 with its leading
// constants kept.
func Psi(f Function, mu float64, servers float64, y float64) float64 {
	if y <= 0 || servers <= 0 {
		return 0
	}
	x := servers / y
	return x * f.Phi(mu, x)
}

// SupportsPureP2P reports whether f may be used in the pure peer-to-peer
// setting, which requires a finite h(0⁺) (Section 3.2).
func SupportsPureP2P(f Function) bool {
	return !math.IsInf(f.H0(), 1)
}

// ---------------------------------------------------------------------------
// Step function: h(t) = 1{t ≤ τ}.

// Step is the step delay-utility h(t) = 1 for t ≤ τ and 0 afterwards: all
// users abandon the content after waiting exactly τ (advertising-revenue
// model with a hard deadline).
type Step struct {
	Tau float64 // abandonment deadline, > 0
}

// Name implements Function.
func (s Step) Name() string { return fmt.Sprintf("step(τ=%g)", s.Tau) }

// H implements Function.
func (s Step) H(t float64) float64 {
	if t <= s.Tau {
		return 1
	}
	return 0
}

// H0 implements Function.
func (s Step) H0() float64 { return 1 }

// ExpectedGain implements Function: P(Y ≤ τ) = 1 − e^{−λτ}.
func (s Step) ExpectedGain(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return -math.Expm1(-rate * s.Tau)
}

// Phi implements Function: ϕ(x) = µτ·e^{−µτx} (Table 1).
func (s Step) Phi(mu, x float64) float64 {
	return mu * s.Tau * math.Exp(-mu*s.Tau*x)
}

// Density implements Function: the continuous part of c is zero.
func (s Step) Density(t float64) float64 { return 0 }

// Atoms implements Function: a unit Dirac at τ.
func (s Step) Atoms() []Atom { return []Atom{{T: s.Tau, Mass: 1}} }

// ---------------------------------------------------------------------------
// Exponential decay: h(t) = e^{-νt}.

// Exponential is the exponential-decay delay-utility h(t) = e^{−νt}: at
// any time a constant fraction of still-waiting users loses interest
// (advertising-revenue model with a mixed population).
type Exponential struct {
	Nu float64 // decay rate, > 0
}

// Name implements Function.
func (e Exponential) Name() string { return fmt.Sprintf("exp(ν=%g)", e.Nu) }

// H implements Function.
func (e Exponential) H(t float64) float64 { return math.Exp(-e.Nu * t) }

// H0 implements Function.
func (e Exponential) H0() float64 { return 1 }

// ExpectedGain implements Function: E[e^{−νY}] = λ/(λ+ν), the Laplace
// transform of Exp(λ) at ν. Table 1 writes it as 1 − 1/(1 + (µ/ν)x).
func (e Exponential) ExpectedGain(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return rate / (rate + e.Nu)
}

// Phi implements Function: ϕ(x) = µν/(µx+ν)², i.e. Table 1's
// (µ/ν)(1+(µ/ν)x)^{−2}.
func (e Exponential) Phi(mu, x float64) float64 {
	d := mu*x + e.Nu
	return mu * e.Nu / (d * d)
}

// Density implements Function: c(t) = ν e^{−νt}.
func (e Exponential) Density(t float64) float64 { return e.Nu * math.Exp(-e.Nu*t) }

// Atoms implements Function.
func (e Exponential) Atoms() []Atom { return nil }

// ---------------------------------------------------------------------------
// Power family: h(t) = t^{1-α}/(α-1), α < 2, α ≠ 1.

// Power is the power-law delay-utility h(t) = t^{1−α}/(α−1). For
// 1 < α < 2 it is the paper's "inverse power" (time-critical information:
// huge reward for prompt delivery, h(0⁺) = ∞, dedicated-node case only).
// For α < 1 it is the "negative power" (waiting cost growing without
// bound, h(0⁺) = 0). α = 1 is excluded; use NegLog, its limit.
type Power struct {
	Alpha float64 // exponent, α < 2 and α ≠ 1
}

// Name implements Function.
func (p Power) Name() string { return fmt.Sprintf("power(α=%g)", p.Alpha) }

// Validate reports whether the exponent is in the admissible range.
func (p Power) Validate() error {
	if p.Alpha >= 2 || p.Alpha == 1 {
		return fmt.Errorf("utility: power exponent α=%g outside (−∞,1)∪(1,2)", p.Alpha)
	}
	return nil
}

// H implements Function.
func (p Power) H(t float64) float64 {
	return math.Pow(t, 1-p.Alpha) / (p.Alpha - 1)
}

// H0 implements Function.
func (p Power) H0() float64 {
	if p.Alpha > 1 {
		return math.Inf(1)
	}
	return 0
}

// ExpectedGain implements Function: Γ(2−α)/(α−1)·λ^{α−1} (Table 1).
func (p Power) ExpectedGain(rate float64) float64 {
	if rate <= 0 {
		if p.Alpha > 1 {
			return 0 // h(t) → 0 as t → ∞
		}
		return math.Inf(-1) // unbounded waiting cost
	}
	return math.Gamma(2-p.Alpha) / (p.Alpha - 1) * math.Pow(rate, p.Alpha-1)
}

// Phi implements Function: ϕ(x) = µ^{α−1}·Γ(2−α)·x^{α−2} (Table 1).
func (p Power) Phi(mu, x float64) float64 {
	return math.Pow(mu, p.Alpha-1) * math.Gamma(2-p.Alpha) * math.Pow(x, p.Alpha-2)
}

// Density implements Function: c(t) = t^{−α}.
func (p Power) Density(t float64) float64 { return math.Pow(t, -p.Alpha) }

// Atoms implements Function.
func (p Power) Atoms() []Atom { return nil }

// OptimalExponent is the exponent of the relaxed optimal allocation for
// the power family: x̃_i ∝ d_i^{1/(2−α)} (Figure 2). It is exported so the
// Figure-2 harness and the allocation tests share a single definition.
func (p Power) OptimalExponent() float64 { return 1 / (2 - p.Alpha) }

// ---------------------------------------------------------------------------
// Negative logarithm: h(t) = -ln t (the α → 1 limit of the power family).

// NegLog is the negative-logarithm delay-utility h(t) = −ln t: large
// reward for fast fulfillment and unbounded cost for slow fulfillment.
// h(0⁺) = ∞, so it is restricted to the dedicated-node case. Its optimal
// allocation is exactly proportional to demand and its reaction function
// is constant (path replication's fixed-point regime).
type NegLog struct{}

// Name implements Function.
func (NegLog) Name() string { return "neglog" }

// H implements Function.
func (NegLog) H(t float64) float64 { return -math.Log(t) }

// H0 implements Function.
func (NegLog) H0() float64 { return math.Inf(1) }

// ExpectedGain implements Function: E[−ln Y] = γ + ln λ for Y ~ Exp(λ).
func (NegLog) ExpectedGain(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(-1)
	}
	return EulerGamma + math.Log(rate)
}

// Phi implements Function: ϕ(x) = 1/x, independent of µ (Table 1).
func (NegLog) Phi(mu, x float64) float64 { return 1 / x }

// Density implements Function: c(t) = 1/t.
func (NegLog) Density(t float64) float64 { return 1 / t }

// Atoms implements Function.
func (NegLog) Atoms() []Atom { return nil }

// ---------------------------------------------------------------------------
// Numeric reference implementations (used by tests and by user-supplied h).

// NumericExpectedGain computes E[h(Y)], Y ~ Exp(rate), from the density
// and atoms of c via the integration-by-parts identity of Lemma 1:
//
//	E[h(Y)] = h(0⁺) − ∫_0^∞ e^{-rate·t} c(t) dt.
//
// It is the reference against which the closed-form ExpectedGain methods
// are validated, and the fallback for Generic functions.
func NumericExpectedGain(f Function, rate float64) (float64, error) {
	if rate <= 0 {
		return f.ExpectedGain(0), nil
	}
	loss, err := numeric.IntegrateSingular(func(t float64) float64 {
		return math.Exp(-rate*t) * f.Density(t)
	}, 1/rate, 1e-12)
	if err != nil && err != numeric.ErrMaxDepth {
		return 0, err
	}
	for _, a := range f.Atoms() {
		loss += a.Mass * math.Exp(-rate*a.T)
	}
	return f.H0() - loss, nil
}

// NumericPhi computes ϕ(x) = ∫ µ t e^{-µtx} c(t) dt by direct quadrature
// over the density plus the atom contributions. Reference for Phi.
func NumericPhi(f Function, mu, x float64) (float64, error) {
	v, err := numeric.IntegrateSingular(func(t float64) float64 {
		return mu * t * math.Exp(-mu*t*x) * f.Density(t)
	}, 1/(mu*x), 1e-12)
	if err != nil && err != numeric.ErrMaxDepth {
		return 0, err
	}
	for _, a := range f.Atoms() {
		v += a.Mass * mu * a.T * math.Exp(-mu*a.T*x)
	}
	return v, nil
}

// Generic adapts an arbitrary monotone non-increasing h with a known
// density c into a Function using numeric quadrature for the derived
// quantities. H0 must be finite for meaningful pure-P2P use; CDensity may
// be nil, in which case it is approximated by a symmetric finite
// difference of HFunc.
type Generic struct {
	Label    string
	HFunc    func(t float64) float64
	CDensity func(t float64) float64
	H0Value  float64
	AtomList []Atom
}

// Name implements Function.
func (g Generic) Name() string { return g.Label }

// H implements Function.
func (g Generic) H(t float64) float64 { return g.HFunc(t) }

// H0 implements Function.
func (g Generic) H0() float64 { return g.H0Value }

// Density implements Function.
func (g Generic) Density(t float64) float64 {
	if g.CDensity != nil {
		return g.CDensity(t)
	}
	eps := 1e-6 * math.Max(t, 1)
	lo := t - eps
	if lo <= 0 {
		lo = t / 2
	}
	return -(g.HFunc(t+eps) - g.HFunc(lo)) / (t + eps - lo)
}

// Atoms implements Function.
func (g Generic) Atoms() []Atom { return g.AtomList }

// ExpectedGain implements Function by quadrature.
func (g Generic) ExpectedGain(rate float64) float64 {
	v, err := NumericExpectedGain(g, rate)
	if err != nil {
		return math.NaN()
	}
	return v
}

// Phi implements Function by quadrature.
func (g Generic) Phi(mu, x float64) float64 {
	v, err := NumericPhi(g, mu, x)
	if err != nil {
		return math.NaN()
	}
	return v
}
