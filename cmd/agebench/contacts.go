package main

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"time"

	"impatience/internal/contact"
	"impatience/internal/experiment"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// contactLadder is the population sizes the contact pipeline is measured
// at: the paper's evaluation scale, a mid-size population, and the
// production-scale case the streaming pipeline exists for.
var contactLadder = []int{100, 1000, 5000}

// pathStats measures one generation path at one population size.
type pathStats struct {
	Contacts        int     `json:"contacts"`
	NsPerContact    float64 `json:"ns_per_contact"`
	ContactsPerSec  float64 `json:"contacts_per_sec"`
	BytesPerContact float64 `json:"bytes_per_contact"`
}

// contactsEntry compares materialized generation (searchCDF sampling,
// whole trace in memory) against the streaming generator (alias
// sampling, contacts drawn one at a time) for the same workload.
type contactsEntry struct {
	Nodes    int     `json:"nodes"`
	Mu       float64 `json:"mu"`
	Duration float64 `json:"duration_min"`
	// Materialized is contact.GenerateHomogeneous; Streaming drains
	// contact.NewHomogeneousStream. Both include their setup (CDF and
	// alias construction respectively), so the comparison is end to end.
	Materialized pathStats `json:"materialized"`
	Streaming    pathStats `json:"streaming"`
	// Speedup is materialized ns/contact over streaming ns/contact;
	// BytesRatio is materialized bytes/contact over streaming.
	Speedup    float64 `json:"streaming_speedup"`
	BytesRatio float64 `json:"bytes_ratio"`
}

// scaleSection is the headline demo: a fused N = 5000 run whose contact
// list would dwarf the streaming pipeline's whole heap, plus the
// projection to the paper's full evaluation duration, where the
// materialized path stops being feasible at all.
type scaleSection struct {
	experiment.ScaleReport
	WallSeconds    float64 `json:"wall_seconds"`
	ContactsPerSec float64 `json:"contacts_per_sec"`
	// Projected*: the same population at the paper's default µ = 0.05 and
	// 5000-minute duration. The streaming pipeline's footprint does not
	// grow with duration; the materialized contact list does.
	ProjectedContacts          float64 `json:"projected_contacts_full_duration"`
	ProjectedMaterializedBytes float64 `json:"projected_materialized_bytes"`
}

type contactsReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	Ladder []contactsEntry `json:"ladder"`
	Scale  *scaleSection   `json:"scale"`
}

// measureMaterialized times one full materialized generation.
func measureMaterialized(nodes int, mu, duration float64, seed uint64) (pathStats, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	tr, err := contact.GenerateHomogeneous(nodes, mu, duration, rng)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return pathStats{}, err
	}
	return newPathStats(len(tr.Contacts), elapsed, m1.TotalAlloc-m0.TotalAlloc), nil
}

// measureStreaming times construction plus a full drain of the streaming
// generator over the identical workload.
func measureStreaming(nodes int, mu, duration float64, seed uint64) (pathStats, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	src, err := contact.NewHomogeneousStream(nodes, mu, duration, rng)
	if err != nil {
		return pathStats{}, err
	}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return newPathStats(n, elapsed, m1.TotalAlloc-m0.TotalAlloc), nil
}

func newPathStats(contacts int, elapsed time.Duration, allocated uint64) pathStats {
	s := pathStats{Contacts: contacts}
	if contacts > 0 {
		s.NsPerContact = float64(elapsed.Nanoseconds()) / float64(contacts)
		s.BytesPerContact = float64(allocated) / float64(contacts)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.ContactsPerSec = float64(contacts) / sec
	}
	return s
}

// runContacts benchmarks the contact pipeline across the population
// ladder, runs the fused scale demo, and writes BENCH_contacts.json.
func runContacts(short bool, out string) error {
	target := 2e6 // contacts per measurement
	if short {
		target = 5e5
	}
	report := contactsReport{
		Benchmark:  "ContactPipeline/MaterializedVsStreaming",
		provenance: stamp(short),
	}
	const mu = 0.05
	for _, nodes := range contactLadder {
		duration := target / (float64(trace.NumPairs(nodes)) * mu)
		mat, err := measureMaterialized(nodes, mu, duration, 11)
		if err != nil {
			return err
		}
		str, err := measureStreaming(nodes, mu, duration, 11)
		if err != nil {
			return err
		}
		e := contactsEntry{
			Nodes: nodes, Mu: mu, Duration: duration,
			Materialized: mat, Streaming: str,
		}
		if str.NsPerContact > 0 {
			e.Speedup = mat.NsPerContact / str.NsPerContact
		}
		if str.BytesPerContact > 0 {
			e.BytesRatio = mat.BytesPerContact / str.BytesPerContact
		}
		report.Ladder = append(report.Ladder, e)
		fmt.Printf("contacts N=%-5d  materialized %7.1f ns/contact %7.1f B/contact  streaming %7.1f ns/contact %7.1f B/contact  (%.1fx faster, %.1fx leaner)\n",
			nodes, mat.NsPerContact, mat.BytesPerContact, str.NsPerContact, str.BytesPerContact, e.Speedup, e.BytesRatio)
	}

	// The fused scale demo: N = 5000 end to end through the simulator.
	sc := experiment.ScaleScenario()
	start := time.Now()
	rep, err := sc.StreamingScale(utility.Step{Tau: 60}, 0)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	full := experiment.Default()
	scale := &scaleSection{
		ScaleReport:       *rep,
		WallSeconds:       wall,
		ProjectedContacts: float64(trace.NumPairs(sc.Nodes)) * full.Mu * full.Duration,
	}
	if wall > 0 {
		scale.ContactsPerSec = float64(rep.Contacts) / wall
	}
	scale.ProjectedMaterializedBytes = scale.ProjectedContacts * 24
	report.Scale = scale
	fmt.Printf("scale  N=%d: %d contacts fused in %.1fs, peak heap %.0f MB (materialized list alone: %.0f MB; full-duration projection: %.0f GB)\n",
		rep.Nodes, rep.Contacts, wall, float64(rep.PeakHeapBytes)/1e6,
		float64(rep.MaterializedBytes)/1e6, scale.ProjectedMaterializedBytes/1e9)

	return writeJSON(out, report)
}
