package welfare

import (
	"math"
	"testing"

	"impatience/internal/alloc"
	"impatience/internal/demand"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// mixedSystem: half the catalog is deadline content (step), half is
// waiting-cost content (negative power).
func mixedSystem(items, servers int) Homogeneous {
	us := make([]utility.Function, items)
	for i := range us {
		if i%2 == 0 {
			us[i] = utility.Step{Tau: 10}
		} else {
			us[i] = utility.Power{Alpha: 0}
		}
	}
	return Homogeneous{
		Utilities: us,
		Pop:       demand.Pareto(items, 1, 1),
		Mu:        0.05,
		Servers:   servers,
		Clients:   servers,
		PureP2P:   true,
	}
}

func TestMixedWelfareMatchesManualSum(t *testing.T) {
	h := mixedSystem(4, 20)
	x := []float64{5, 3, 2, 7}
	var want float64
	for i, d := range h.Pop.Rates {
		f := h.Utilities[i]
		frac := x[i] / 20
		want += d * (frac*f.H0() + (1-frac)*f.ExpectedGain(0.05*x[i]))
	}
	if got := h.Welfare(x); math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestMixedFallbackToSharedUtility(t *testing.T) {
	h := mixedSystem(3, 10)
	h.Utilities[1] = nil
	h.Utility = utility.Exponential{Nu: 0.5}
	x := []float64{2, 2, 2}
	got := h.Welfare(x)
	// Item 1 must use the exponential fallback.
	f := utility.Exponential{Nu: 0.5}
	frac := 2.0 / 10
	wantItem1 := h.Pop.Rates[1] * (frac*f.H0() + (1-frac)*f.ExpectedGain(0.1))
	h2 := h
	h2.Pop = demand.Popularity{Rates: []float64{0, h.Pop.Rates[1], 0}}
	if one := h2.Welfare(x); math.Abs(one-wantItem1) > 1e-12 {
		t.Errorf("fallback item welfare %g, want %g", one, wantItem1)
	}
	_ = got
}

func TestMixedValidate(t *testing.T) {
	h := mixedSystem(4, 10)
	if err := h.Validate(); err != nil {
		t.Fatalf("valid mixed system rejected: %v", err)
	}
	h.Utilities = h.Utilities[:2] // wrong length
	if err := h.Validate(); err == nil {
		t.Error("mismatched utilities length accepted")
	}
	h = mixedSystem(4, 10)
	h.Utilities[0] = utility.NegLog{} // unbounded in pure P2P
	if err := h.Validate(); err == nil {
		t.Error("unbounded per-item utility accepted in pure P2P")
	}
}

// The mixed greedy spends cache where the marginal is highest: deadline
// items saturate quickly, cost items keep absorbing replicas (their
// marginal decays polynomially, not exponentially).
func TestMixedGreedySpendsByMarginal(t *testing.T) {
	const (
		items   = 6
		servers = 30
		rho     = 3
	)
	us := make([]utility.Function, items)
	for i := range us {
		if i < 3 {
			us[i] = utility.Step{Tau: 2} // tight deadline: marginal dies fast
		} else {
			us[i] = utility.Power{Alpha: 0} // waiting cost: heavy tail
		}
	}
	h := Homogeneous{
		Utilities: us,
		Pop:       demand.Uniform(items, 1), // equal demand isolates the utility effect
		Mu:        0.05,
		Servers:   servers,
		Clients:   servers,
		PureP2P:   true,
	}
	c, err := h.GreedyOptimal(rho)
	if err != nil {
		t.Fatalf("GreedyOptimal: %v", err)
	}
	if c.Total() != servers*rho {
		t.Fatalf("budget not exhausted: %v", c)
	}
	// With equal demand, the waiting-cost items should receive more
	// replicas than the tight-deadline items (whose gain saturates at 1).
	stepShare := c[0] + c[1] + c[2]
	costShare := c[3] + c[4] + c[5]
	if costShare <= stepShare {
		t.Errorf("waiting-cost items got %d ≤ deadline items %d: %v", costShare, stepShare, c)
	}
	// Sanity: greedy beats the uniform split.
	uni := alloc.Uniform(items, servers, rho)
	if h.WelfareCounts(c) < h.WelfareCounts(uni) {
		t.Errorf("greedy %g below uniform %g", h.WelfareCounts(c), h.WelfareCounts(uni))
	}
}

// Per-item relaxed optimum satisfies the per-item balance condition
// d_i·ϕ_i(x_i) = λ.
func TestMixedRelaxedBalance(t *testing.T) {
	h := mixedSystem(6, 40)
	x, err := h.RelaxedOptimal(3)
	if err != nil {
		t.Fatalf("RelaxedOptimal: %v", err)
	}
	var total float64
	var lambda float64
	seen := false
	for i, v := range x {
		total += v
		if v > 1e-6 && v < 40-1e-6 {
			m := h.Pop.Rates[i] * h.Utilities[i].Phi(h.Mu, v)
			if !seen {
				lambda, seen = m, true
			} else if math.Abs(m-lambda) > 1e-3*lambda {
				t.Errorf("balance violated at item %d: %g vs %g", i, m, lambda)
			}
		}
	}
	if math.Abs(total-120) > 1e-6 {
		t.Errorf("budget %g, want 120", total)
	}
	if !seen {
		t.Error("no interior coordinate")
	}
}

// Hetero evaluator with per-item utilities must agree with Homogeneous on
// uniform rates.
func TestMixedHeteroReducesToHomogeneous(t *testing.T) {
	const (
		items = 4
		nodes = 8
		rho   = 2
	)
	us := []utility.Function{
		utility.Step{Tau: 5}, utility.Exponential{Nu: 0.2},
		utility.Power{Alpha: 0.5}, utility.Step{Tau: 50},
	}
	ids := make([]int, nodes)
	for i := range ids {
		ids[i] = i
	}
	het := Hetero{
		Utilities: us,
		Pop:       demand.Pareto(items, 1, 1),
		Profile:   demand.UniformProfile(items, nodes),
		Rates:     trace.UniformRates(nodes, 0.07),
		Clients:   ids,
		Servers:   ids,
	}
	hom := Homogeneous{
		Utilities: us, Pop: het.Pop, Mu: 0.07,
		Servers: nodes, Clients: nodes, PureP2P: true,
	}
	counts := alloc.Counts{3, 1, 2, 5}
	p, err := alloc.Place(counts, nodes, rho)
	if err != nil {
		t.Fatal(err)
	}
	got, want := het.Welfare(p), hom.WelfareCounts(counts)
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("hetero %g vs homogeneous %g", got, want)
	}
}
