// The hybrid-fidelity engine: large homogeneous sub-populations evolve
// by the block fluid limit (internal/meanfield, integrated with the
// adaptive Dormand–Prince stepper) while only a small boundary set of
// tagged measurement probes is event-simulated. The coupling runs both
// ways — probes see the fluid replica fractions as contact-success
// probabilities, and probe arrivals feed per-window demand estimates
// back into the ODE drift — and an error controller compares the
// probes' realized per-node gain rate against the fluid prediction each
// post-warmup window, demoting the whole run to full event simulation
// when the fluid stops tracking reality.
//
// Probes are cacheless virtual requesters: all cache mass lives in the
// fluid, and a probe's own cache is modeled probabilistically (an
// arrival is immediately fulfilled with probability x_ki/N_k, the
// chance a typical community-k node holds item i). A probe meets peers
// at the community meeting rate M_k; at a meeting the partner community
// is drawn ∝ β_kl·N_l and each open request is fulfilled with
// probability min(x_li/N_l, 1). Holding probabilities are evaluated
// against the fluid state synced at checkpoint times (≈ Window/16), so
// the event path never forces a mid-step ODE interpolation. Per-item
// success draws are independent Bernoulli — the mean-field
// approximation of the partner's ρ-slot cache.
//
// The engine refuses configurations whose dynamics the fluid cannot
// represent (faults, adversaries, dedicated servers, per-item
// utilities, pinned placements, non-uniform node weights, policies
// other than QCR/Static) by falling back to the full event simulation
// up front; the controller demotes mid-run divergence the same way,
// re-running the whole horizon at full fidelity so the returned result
// is never a splice of two regimes.

package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"impatience/internal/alloc"
	"impatience/internal/core"
	"impatience/internal/meanfield"
	"impatience/internal/numeric"
	"impatience/internal/rates"
	"impatience/internal/stats"
	"impatience/internal/utility"
)

// minWindowArrivals is the fewest probe request arrivals a window must
// see before the error controller checks it; below this the probe CI
// is too degenerate to distinguish "fluid is wrong" from "nothing
// happened yet".
const minWindowArrivals = 8

// HybridOptions tunes the hybrid engine. The zero value of every field
// except Enabled picks a sensible default, resolved against the run
// duration by withDefaults.
type HybridOptions struct {
	// Enabled marks the options as active; RunHybrid itself ignores it
	// (calling RunHybrid is the opt-in), but the experiment wiring uses
	// it to choose between the hybrid and full-fidelity paths.
	Enabled bool
	// BoundaryPerComm is the number of measurement probes per community
	// (default 8). 0 after defaulting disables the probe set entirely —
	// pure fluid, no error controller.
	BoundaryPerComm int
	// SmallComm fully probes communities of at most this size: tiny
	// communities are poorly served by a fluid limit, so every node
	// becomes a probe (default 0 = off).
	SmallComm int
	// MaxBoundary caps the total probe count (default 512): the event
	// cost scales with it, and the fluid speedup is the point.
	MaxBoundary int
	// Window is the error-controller accounting window (default
	// duration/16). Fluid state syncs at Window/16.
	Window float64
	// Conf is the confidence level of the per-window probe gain-rate CI
	// (default 0.95).
	Conf float64
	// Slack and Floor set the per-window tolerance
	// |probe mean − fluid prediction| ≤ Slack·halfwidth + Floor·|prediction|
	// (defaults 3 and 0.05). Floor keeps narrow CIs from tripping the
	// controller on an error the welfare summaries cannot resolve.
	Slack float64
	Floor float64
	// Breach is the number of consecutive violating windows that demote
	// the run to full event simulation (default 2).
	Breach int
	// FeedbackAlpha is the EWMA weight of the per-window demand estimate
	// fed back into the fluid drift (default 0.2; negative disables
	// feedback — the fluid then never learns a demand switch, which is
	// how the demotion tests force a fallback).
	FeedbackAlpha float64
	// ContactSeed seeds the probe event streams, and the sharded contact
	// source when the run falls back to full simulation.
	ContactSeed uint64
	// ReactionScale is the tuned QCR reaction scale (the simulator's
	// burst normalization); it becomes the fluid PsiScale so fluid and
	// event transients run on the same clock. 0 means 1.
	ReactionScale float64
}

// withDefaults resolves zero-valued knobs.
func (hy HybridOptions) withDefaults(duration float64) HybridOptions {
	if hy.BoundaryPerComm == 0 {
		hy.BoundaryPerComm = 8
	} else if hy.BoundaryPerComm < 0 {
		hy.BoundaryPerComm = 0
	}
	if hy.MaxBoundary <= 0 {
		hy.MaxBoundary = 512
	}
	if hy.Window <= 0 || hy.Window > duration {
		hy.Window = duration / 16
	}
	if hy.Conf == 0 {
		hy.Conf = 0.95
	}
	if hy.Slack == 0 {
		hy.Slack = 3
	}
	if hy.Floor == 0 {
		hy.Floor = 0.05
	}
	if hy.Breach <= 0 {
		hy.Breach = 2
	}
	if hy.FeedbackAlpha == 0 {
		hy.FeedbackAlpha = 0.2
	}
	return hy
}

// HybridTally reports what the hybrid engine did; Result.Hybrid is nil
// for runs that never went through RunHybrid, keeping their digests
// byte-identical to builds without the engine.
type HybridTally struct {
	FluidNodes    int     // nodes evolved by the fluid limit
	BoundaryNodes int     // event-simulated measurement probes
	Windows       int     // completed post-warmup controller windows
	Violations    int     // windows outside tolerance
	Demotions     int     // mid-run fidelity demotions (0 or 1)
	MaxErr        float64 // max relative |probe − fluid| over windows
	FluidFraction float64 // realized fluid node fraction (0 after fallback)
	FellBack      bool    // the result came from the full event path
	// Reason describes why the run fell back ("" when it did not). Like
	// the delay instrumentation, it is excluded from Result.Digest.
	Reason string
}

// ErrHybrid wraps every hybrid-engine configuration rejection.
var ErrHybrid = errors.New("sim: hybrid")

// hybridIneligible returns a human-readable reason the configuration
// must run at full fidelity, or "" when the fluid path applies.
func hybridIneligible(cfg *Config, m *rates.Model) string {
	switch {
	case cfg.Faults != nil && cfg.Faults.Enabled():
		return "fault injection enabled"
	case cfg.Adversary != nil && cfg.Adversary.Enabled():
		return "adversary layer enabled"
	case cfg.ServerCount != 0:
		return "dedicated-server population"
	case cfg.Utilities != nil:
		return "per-item delay-utilities"
	case cfg.InitialPlacement != nil:
		return "pinned item placement"
	case cfg.RecordDelays:
		return "per-item delay instrumentation"
	case !m.UniformWeights():
		return "non-uniform node weights"
	}
	switch cfg.Policy.(type) {
	case *core.QCR, core.Static:
		return ""
	default:
		return fmt.Sprintf("policy %q has no fluid limit here", cfg.Policy.Name())
	}
}

// hybridFallback runs the full event simulation over the model's
// sharded contact process and stamps the tally explaining why.
func hybridFallback(cfg Config, m *rates.Model, duration float64, hy HybridOptions, tally *HybridTally) (*Result, error) {
	src, err := rates.NewSharded(m, duration, hy.ContactSeed, 0)
	if err != nil {
		return nil, err
	}
	cfg.Trace = nil
	cfg.Contacts = src
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	tally.FellBack = true
	tally.FluidFraction = 0
	res.Hybrid = tally
	return res, nil
}

// RunHybrid simulates cfg over the structured rate model m for the
// given duration on the hybrid engine. The configuration must leave
// Trace and Contacts nil — the engine builds its own contact process
// (and, on fallback, the model's sharded source seeded by
// hy.ContactSeed). The returned Result always carries a non-nil Hybrid
// tally.
func RunHybrid(cfg Config, m *rates.Model, duration float64, hy HybridOptions) (*Result, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil rate model", ErrHybrid)
	}
	if duration <= 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		return nil, fmt.Errorf("%w: duration %g", ErrHybrid, duration)
	}
	if cfg.Trace != nil || cfg.Contacts != nil {
		return nil, fmt.Errorf("%w: the engine builds its own contact process; leave Trace and Contacts nil", ErrHybrid)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrHybrid)
	}
	if cfg.Utility == nil {
		return nil, fmt.Errorf("%w: nil utility", ErrHybrid)
	}
	if cfg.Pop.Items() == 0 {
		return nil, fmt.Errorf("%w: empty catalog", ErrHybrid)
	}
	if cfg.Rho <= 0 {
		return nil, fmt.Errorf("%w: rho=%d", ErrHybrid, cfg.Rho)
	}
	if !utility.SupportsPureP2P(cfg.Utility) {
		return nil, fmt.Errorf("%w: utility %s has unbounded h(0⁺) (pure P2P)", ErrHybrid, cfg.Utility.Name())
	}
	hy = hy.withDefaults(duration)
	if reason := hybridIneligible(&cfg, m); reason != "" {
		return hybridFallback(cfg, m, duration, hy, &HybridTally{Reason: reason})
	}
	return runHybridFluid(cfg, m, duration, hy)
}

// hybridRun is the live state of one fluid-path run.
type hybridRun struct {
	cfg      *Config
	m        *rates.Model
	hy       HybridOptions
	duration float64

	b       meanfield.BlockSystem
	stepper *numeric.Stepper // nil for static policies
	xs      []float64        // fluid state at the last checkpoint
	belief  []float64        // fluid demand belief (global d_i)

	nodes, items, comms int
	sizes               []int
	meet                []float64   // M_k per community
	partnerCDF          [][]float64 // per community: cumulative β_kl·peers_l

	probes    int
	probeComm []int32     // probe → community
	probeCDF  []float64   // cumulative probe meeting rate, by probe
	open      [][]openReq // per probe: outstanding requests

	rng      *rand.Rand
	popRates []float64 // current true popularity (switch applies here)
	popCDF   []float64
	popTotal float64
	uk       utilKernel // monomorphic delay-utility for the probe loop

	measureStart float64
	res          *Result
	tally        *HybridTally

	// Accumulators between checkpoints.
	uPrev     float64 // welfare at the previous checkpoint
	totalInt  float64 // ∫ U dt, post-warmup
	winInt    float64 // ∫ U dt over the current window
	binInt    float64 // ∫ U dt over the current bin
	winGain   []float64
	winArr    []float64 // per item: probe arrivals this window
	binGain   float64
	binFuls   int
	binIdx    int
	consec    int
	demoted   bool
	boundGain float64 // post-warmup probe gain
}

type openReq struct {
	item int32
	t0   float64
}

func runHybridFluid(cfg Config, m *rates.Model, duration float64, hy HybridOptions) (*Result, error) {
	rawWarmup := cfg.WarmupFrac
	switch {
	case cfg.WarmupFrac == 0:
		cfg.WarmupFrac = 0.2
	case cfg.WarmupFrac < 0:
		cfg.WarmupFrac = 0
	case cfg.WarmupFrac >= 1:
		return nil, fmt.Errorf("%w: warmup fraction %g", ErrHybrid, cfg.WarmupFrac)
	}

	h, err := newHybridRun(&cfg, m, duration, hy)
	if err != nil {
		return nil, err
	}
	if err := h.drive(); err != nil {
		return nil, err
	}
	if h.demoted {
		cfg.WarmupFrac = rawWarmup
		h.tally.Demotions = 1
		return hybridFallback(cfg, m, duration, hy, h.tally)
	}
	h.finish()
	return h.res, nil
}

func newHybridRun(cfg *Config, m *rates.Model, duration float64, hy HybridOptions) (*hybridRun, error) {
	nodes := m.Nodes()
	items := cfg.Pop.Items()
	comms := m.Communities()
	sizes := make([]int, comms)
	for k := range sizes {
		sizes[k] = m.CommunitySize(k)
	}

	// Effective block rates including the (uniform) node weight: read
	// off a representative member pair so weighted-but-uniform models
	// come out right.
	block := make([][]float64, comms)
	for k := range block {
		block[k] = make([]float64, comms)
		for l := range block[k] {
			switch {
			case k != l:
				block[k][l] = m.RateAt(m.Member(k, 0), m.Member(l, 0))
			case sizes[k] > 1:
				block[k][l] = m.RateAt(m.Member(k, 0), m.Member(k, 1))
			}
		}
	}

	belief := append([]float64(nil), cfg.Pop.Rates...)
	dem := make([][]float64, comms)
	for k := range dem {
		dem[k] = make([]float64, items)
	}
	b := meanfield.BlockSystem{
		Utility:  cfg.Utility,
		Sizes:    sizes,
		Block:    block,
		Demand:   dem,
		Rho:      cfg.Rho,
		PsiScale: hy.ReactionScale,
	}

	x0, err := hybridStart(cfg, m, items)
	if err != nil {
		return nil, err
	}

	h := &hybridRun{
		cfg: cfg, m: m, hy: hy, duration: duration,
		b: b, xs: append([]float64(nil), x0...), belief: belief,
		nodes: nodes, items: items, comms: comms, sizes: sizes,
		measureStart: cfg.WarmupFrac * duration,
		winArr:       make([]float64, items),
		uk:           kernelFor(cfg.Utility, cfg.ReferenceKernel),
		tally:        &HybridTally{},
	}
	h.pushBelief()

	if _, ok := cfg.Policy.(*core.QCR); ok {
		st, err := b.Stepper(x0, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHybrid, err)
		}
		h.stepper = st
	} else if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHybrid, err)
	}

	// Community meeting rates and partner CDFs.
	h.meet = make([]float64, comms)
	h.partnerCDF = make([][]float64, comms)
	for k := 0; k < comms; k++ {
		cdf := make([]float64, comms)
		var acc float64
		for l := 0; l < comms; l++ {
			peers := float64(sizes[l])
			if l == k {
				peers--
			}
			acc += block[k][l] * peers
			cdf[l] = acc
		}
		h.meet[k] = acc
		h.partnerCDF[k] = cdf
	}

	// Probe set: BoundaryPerComm per community, whole community when at
	// most SmallComm nodes, capped at MaxBoundary by shaving the largest
	// allocations first (deterministic).
	per := make([]int, comms)
	total := 0
	for k, n := range sizes {
		bk := hy.BoundaryPerComm
		if n <= hy.SmallComm {
			bk = n
		}
		if bk > n {
			bk = n
		}
		per[k] = bk
		total += bk
	}
	for total > hy.MaxBoundary {
		best := -1
		for k := range per {
			if per[k] > 0 && (best < 0 || per[k] > per[best]) {
				best = k
			}
		}
		per[best]--
		total--
	}
	h.probes = total
	h.probeComm = make([]int32, 0, total)
	h.probeCDF = make([]float64, 0, total)
	var acc float64
	for k, bk := range per {
		for j := 0; j < bk; j++ {
			h.probeComm = append(h.probeComm, int32(k))
			acc += h.meet[k]
			h.probeCDF = append(h.probeCDF, acc)
		}
	}
	h.open = make([][]openReq, total)
	h.winGain = make([]float64, total)

	h.rng = rand.New(rand.NewPCG(cfg.Seed, hy.ContactSeed^0x9e3779b97f4a7c15))
	h.setPop(cfg.Pop.Rates)

	h.res = &Result{
		Duration:     duration,
		MeasureStart: h.measureStart,
	}
	h.tally.BoundaryNodes = total
	h.tally.FluidNodes = nodes - total
	h.tally.FluidFraction = float64(nodes-total) / float64(nodes)
	h.uPrev = h.b.Welfare(h.xs)
	return h, nil
}

// hybridStart replays the event engine's initial cache layout — sticky
// seeding (QCR without NoSticky) followed by the spreadInitial greedy —
// against per-community accumulators, so the fluid starts from exactly
// the allocation the full simulation would place. A proportional split
// would misstate the per-community hold rates badly: the greedy packs
// copies into the lowest-index free nodes, which are whole communities
// at a time under the consecutive-range constructors.
func hybridStart(cfg *Config, m *rates.Model, items int) ([]float64, error) {
	nodes := m.Nodes()
	comms := m.Communities()
	want := cfg.Initial
	if want == nil {
		want = alloc.Uniform(items, nodes, cfg.Rho)
	}
	if len(want) != items {
		return nil, fmt.Errorf("%w: %d initial counts for %d items", ErrHybrid, len(want), items)
	}
	if err := want.Validate(nodes, cfg.Rho); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHybrid, err)
	}
	x0 := make([]float64, comms*items)
	free := make([]int, nodes)
	for n := range free {
		free[n] = cfg.Rho
	}
	counts := make([]int, items)
	stickyN := make([]int, items) // sticky holder per item, -1 when none
	for i := range stickyN {
		stickyN[i] = -1
	}
	_, qcr := cfg.Policy.(*core.QCR)
	if qcr && !cfg.NoSticky {
		for i := 0; i < items; i++ {
			n := i % nodes
			if free[n] == 0 {
				return nil, fmt.Errorf("%w: node %d cannot hold sticky replica of item %d (ρ too small)", ErrHybrid, n, i)
			}
			free[n]--
			stickyN[i] = n
			counts[i]++
			x0[m.Community(n)*items+i]++
		}
	}
	err := spreadInitial(items, nodes, cfg.Rho, want,
		func(n int) int { return free[n] },
		func(i int) int { return counts[i] },
		func(n, i int) bool { return stickyN[i] == n },
		func(n, i int) error {
			free[n]--
			counts[i]++
			x0[m.Community(n)*items+i]++
			return nil
		})
	if err != nil {
		return nil, err
	}
	return x0, nil
}

// pushBelief writes the global demand belief into the per-community
// fluid demand rows (uniform profile: community share N_k/N). The rows
// are the same slices the stepper's drift closure reads, so the update
// is visible without rebuilding the system.
func (h *hybridRun) pushBelief() {
	nodes := float64(h.nodes)
	for k, n := range h.b.Sizes {
		share := float64(n) / nodes
		row := h.b.Demand[k]
		for i, d := range h.belief {
			row[i] = d * share
		}
	}
}

// setPop installs the true popularity driving probe arrivals.
func (h *hybridRun) setPop(rates []float64) {
	h.popRates = rates
	if cap(h.popCDF) < len(rates) {
		h.popCDF = make([]float64, len(rates))
	}
	h.popCDF = h.popCDF[:len(rates)]
	var acc float64
	for i, d := range rates {
		acc += d
		h.popCDF[i] = acc
	}
	h.popTotal = acc
}

// arrivalRate is the total probe request rate: per-node demand d/N per
// probe under the uniform profile.
func (h *hybridRun) arrivalRate() float64 {
	return h.popTotal / float64(h.nodes) * float64(h.probes)
}

// meetingRate is the total probe meeting rate.
func (h *hybridRun) meetingRate() float64 {
	if h.probes == 0 {
		return 0
	}
	return h.probeCDF[h.probes-1]
}

// frac returns the probability a community-k node holds item i under
// the synced fluid state.
func (h *hybridRun) frac(k, i int) float64 {
	f := h.xs[k*h.items+i] / float64(h.sizes[k])
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// drive runs the checkpointed event loop. On return h.demoted reports
// whether the controller tripped.
func (h *hybridRun) drive() error {
	hy := h.hy
	syncDt := hy.Window / 16
	nextSync := syncDt
	nextWin := hy.Window
	nextBin := math.Inf(1)
	if h.cfg.BinWidth > 0 {
		nextBin = h.cfg.BinWidth
	}
	tSwitch := math.Inf(1)
	if h.cfg.DemandSwitch != nil && h.cfg.DemandSwitchTime > 0 && h.cfg.DemandSwitchTime < h.duration {
		tSwitch = h.cfg.DemandSwitchTime
	}
	warmupAt := h.measureStart

	t := 0.0
	for t < h.duration {
		tEnd := math.Min(h.duration, nextSync)
		tEnd = math.Min(tEnd, nextWin)
		tEnd = math.Min(tEnd, nextBin)
		tEnd = math.Min(tEnd, tSwitch)
		if warmupAt > t {
			tEnd = math.Min(tEnd, warmupAt)
		}

		// Probe events in (t, tEnd].
		arr := h.arrivalRate()
		meet := h.meetingRate()
		rate := arr + meet
		et := t
		for rate > 0 {
			et += h.rng.ExpFloat64() / rate
			if et > tEnd {
				break
			}
			if h.rng.Float64()*rate < arr {
				h.arrival(et)
			} else {
				h.meeting(et)
			}
		}
		if err := h.checkpoint(t, tEnd); err != nil {
			return err
		}
		t = tEnd

		if t >= nextSync {
			nextSync += syncDt
		}
		if t >= nextBin {
			h.flushBin(t)
			nextBin += h.cfg.BinWidth
		}
		if t >= nextWin {
			h.window(t-hy.Window, t)
			if h.demoted {
				return nil
			}
			nextWin += hy.Window
		}
		if t >= tSwitch {
			h.setPop(h.cfg.DemandSwitch.Rates)
			tSwitch = math.Inf(1)
		}
		if t >= warmupAt {
			warmupAt = math.Inf(1)
		}
	}
	return nil
}

// checkpoint advances the fluid to t1 and accrues the welfare
// integrals by the trapezoid rule over [t0, t1].
func (h *hybridRun) checkpoint(t0, t1 float64) error {
	if t1 <= t0 {
		return nil
	}
	if h.stepper != nil {
		if err := h.stepper.AdvanceTo(t1); err != nil {
			// An integration failure is a fidelity problem, not a user
			// error: demote to the full event path.
			h.demoted = true
			h.tally.Reason = fmt.Sprintf("fluid integration failed: %v", err)
			return nil
		}
		copy(h.xs, h.stepper.State())
	}
	u := h.b.Welfare(h.xs)
	area := (h.uPrev + u) / 2 * (t1 - t0)
	if t0 >= h.measureStart {
		h.totalInt += area
	}
	h.winInt += area
	h.binInt += area
	h.uPrev = u
	return nil
}

// arrival books one probe request at time t.
func (h *hybridRun) arrival(t float64) {
	p := h.rng.IntN(h.probes)
	i := sort.SearchFloat64s(h.popCDF, h.rng.Float64()*h.popTotal)
	if i >= h.items {
		i = h.items - 1
	}
	h.winArr[i]++
	k := int(h.probeComm[p])
	if h.rng.Float64() < h.frac(k, i) {
		h.record(p, t, h.uk.H0(), true)
		return
	}
	h.open[p] = append(h.open[p], openReq{item: int32(i), t0: t})
}

// meeting books one probe meeting at time t: draw the probe, the
// partner community, and resolve each open request independently.
func (h *hybridRun) meeting(t float64) {
	h.res.Meetings++
	p := sort.SearchFloat64s(h.probeCDF, h.rng.Float64()*h.meetingRate())
	if p >= h.probes {
		p = h.probes - 1
	}
	if len(h.open[p]) == 0 {
		return
	}
	k := int(h.probeComm[p])
	cdf := h.partnerCDF[k]
	l := sort.SearchFloat64s(cdf, h.rng.Float64()*cdf[len(cdf)-1])
	if l >= h.comms {
		l = h.comms - 1
	}
	reqs := h.open[p][:0]
	for _, rq := range h.open[p] {
		if h.rng.Float64() < h.frac(l, int(rq.item)) {
			h.record(p, t, h.uk.H(t-rq.t0), false)
		} else {
			reqs = append(reqs, rq)
		}
	}
	h.open[p] = reqs
}

// record books one probe fulfillment: the window sample feeding the
// error controller (immediate H0 atoms included — the fluid prediction
// carries the frac·h(0⁺) term too), the bin series, and the post-warmup
// totals.
func (h *hybridRun) record(p int, t, gain float64, immediate bool) {
	h.winGain[p] += gain
	if h.cfg.BinWidth > 0 {
		h.binGain += gain
		h.binFuls++
	}
	if t >= h.measureStart {
		h.boundGain += gain
		h.res.Fulfillments++
		if immediate {
			h.res.Immediate++
		}
	}
}

// flushBin closes the bin ending at t1: the fluid gain estimate for the
// non-probe population plus the probes' realized gains.
func (h *hybridRun) flushBin(t1 float64) {
	bw := h.cfg.BinWidth
	bin := Bin{
		T0:           float64(h.binIdx) * bw,
		T1:           t1,
		Gain:         h.binInt*h.tally.FluidFraction + h.binGain,
		Fulfillments: h.binFuls,
	}
	if h.cfg.RecordCounts {
		bin.Counts = h.roundedCounts()
	}
	h.res.Bins = append(h.res.Bins, bin)
	h.binIdx++
	h.binInt, h.binGain, h.binFuls = 0, 0, 0
}

// window closes the accounting window [t0, t1]: demand feedback first,
// then the error controller on post-warmup windows.
func (h *hybridRun) window(t0, t1 float64) {
	winLen := t1 - t0
	alpha := h.hy.FeedbackAlpha
	if alpha > 0 && h.probes > 0 {
		// Feed probe arrivals back into the drift only when they are
		// inconsistent with the current belief: a Poisson dispersion
		// test over the per-item window counts. Blindly EWMA-ing every
		// window would inject the probes' sampling noise into the drift
		// (and the welfare prediction) even when the belief is exact —
		// with a few dozen probes that noise dominates tail items and
		// measurably biases the QCR fluid. Under drift (a demand
		// switch) the statistic explodes and the belief chases the
		// observation until they are statistically indistinguishable.
		probeShare := float64(h.probes) / float64(h.nodes) * winLen
		var x2 float64
		for i, d := range h.belief {
			e := d * probeShare
			z := h.winArr[i] - e
			x2 += z * z / math.Max(e, 1)
		}
		items := float64(len(h.belief))
		if x2 > items+5*math.Sqrt(2*items) {
			scale := float64(h.nodes) / float64(h.probes) / winLen
			for i := range h.belief {
				obs := h.winArr[i] * scale
				h.belief[i] = (1-alpha)*h.belief[i] + alpha*obs
			}
			h.pushBelief()
			h.uPrev = h.b.Welfare(h.xs) // belief moved: restart the trapezoid
		}
	}
	var arrivals float64
	for i := range h.winArr {
		arrivals += h.winArr[i]
		h.winArr[i] = 0
	}

	// The welfare check needs enough probe requests for the CI to mean
	// something. In a starved window (sparse demand or a tiny boundary
	// share) every probe's gain is zero, MeanCI degenerates to 0 ± 0,
	// and any positive fluid prediction would count as a "violation" —
	// even though observing nothing is exactly what the prediction
	// implies at that arrival rate. Such windows are skipped, not
	// counted: the controller stays silent where it has no power.
	if t0 >= h.measureStart && h.probes >= 2 && arrivals >= minWindowArrivals {
		samples := make([]float64, h.probes)
		for p := range samples {
			samples[p] = h.winGain[p] / winLen
		}
		iv := stats.MeanCI(samples, h.hy.Conf)
		pred := h.winInt / winLen / float64(h.nodes)
		diff := math.Abs(iv.Center - pred)
		tol := h.hy.Slack*iv.Halfwidth + h.hy.Floor*math.Abs(pred)
		rel := diff / math.Max(math.Abs(pred), 1e-12)
		h.tally.Windows++
		if rel > h.tally.MaxErr {
			h.tally.MaxErr = rel
		}
		if diff > tol {
			h.tally.Violations++
			h.consec++
			if h.consec >= h.hy.Breach {
				h.demoted = true
				h.tally.Reason = fmt.Sprintf(
					"window [%g, %g]: probe gain rate %s vs fluid %g exceeds tolerance %g",
					t0, t1, iv, pred, tol)
			}
		} else {
			h.consec = 0
		}
	}
	for p := range h.winGain {
		h.winGain[p] = 0
	}
	h.winInt = 0
}

// roundedCounts collapses the fluid state to integer per-item replica
// counts.
func (h *hybridRun) roundedCounts() alloc.Counts {
	counts := make(alloc.Counts, h.items)
	for i := 0; i < h.items; i++ {
		var x float64
		for k := 0; k < h.comms; k++ {
			x += h.xs[k*h.items+i]
		}
		counts[i] = int(math.Round(x))
	}
	return counts
}

// finish assembles the Result after a completed fluid run.
func (h *hybridRun) finish() {
	res := h.res
	res.TotalGain = h.totalInt*h.tally.FluidFraction + h.boundGain
	// Horizon accounting, mirroring the event engine: open requests born
	// after warmup charge their accrued waiting cost.
	for _, reqs := range h.open {
		res.Outstanding += len(reqs)
		for _, rq := range reqs {
			if g := h.uk.H(h.duration - rq.t0); g < 0 && rq.t0 >= h.measureStart {
				res.TotalGain += g
				res.OutstandingCost += g
			}
		}
	}
	if span := h.duration - h.measureStart; span > 0 {
		res.AvgUtilityRate = res.TotalGain / span
	}
	res.FinalCounts = h.roundedCounts()
	res.Hybrid = h.tally
}
