package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"impatience/internal/experiment"
	"impatience/internal/rates"
	"impatience/internal/utility"
)

// The scale benchmark is the million-node ladder: structured community
// rate models at N = 10⁴, 10⁵ and (full mode) 10⁶ driven through the
// group-decomposed sampler and the sharded lockstep executor at shard
// counts {1, 2, 4, NumCPU}. Each rung records wall time, contact
// throughput, the speedup versus the one-shard run, and — because every
// shard count must be bit-identical — a digest-invariance verdict per
// cell. Setup allocation is metered separately so the O(N + C²) state
// bound shows up as a near-constant bytes-per-node figure across three
// decades of N.
//
// Honesty note: the speedup column measures this machine. On a
// single-core runner (GOMAXPROCS=1) the worker fan-out cannot beat the
// serial path and the ladder will say so; the digest-invariance column
// is the portable claim, the throughput columns are provenance-stamped
// measurements.

// scaleSchemes is the measured scheme set. OPT is structurally excluded:
// it needs the dense O(N²) rate matrix the scale path exists to avoid.
var scaleSchemes = []string{experiment.SchemeQCR, experiment.SchemeUNI}

// perNodeRate is the target contact intensity per node, matching the
// paper-default homogeneous scenario (µ=0.05, N=50 ⇒ 0.05·49 = 2.45
// contacts per node-minute). Holding it fixed while N grows keeps each
// node's experience at paper defaults and total contact volume linear in
// N — the regime where the hierarchical sampler's O(1) draws matter.
const perNodeRate = 2.45

// scaleRungSpec fixes one ladder rung's workload.
type scaleRungSpec struct {
	nodes       int
	communities int
	duration    float64 // simulated minutes, sized for ~10⁵–10⁶ contacts
}

func scaleLadder(short bool) []scaleRungSpec {
	if short {
		return []scaleRungSpec{
			{nodes: 10_000, communities: 32, duration: 4},
			{nodes: 100_000, communities: 32, duration: 0.8},
		}
	}
	return []scaleRungSpec{
		{nodes: 10_000, communities: 32, duration: 16},
		{nodes: 100_000, communities: 32, duration: 2},
		{nodes: 1_000_000, communities: 32, duration: 0.4},
	}
}

// shardLadder is {1, 2, 4, NumCPU}, deduplicated and sorted; the first
// entry must be 1 because it is both the speedup baseline and the
// digest reference.
func shardLadder() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var out []int
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

type scaleCell struct {
	Shards          int     `json:"shards"`
	WallNs          int64   `json:"wall_ns"`
	ContactsPerSec  float64 `json:"contacts_per_sec"`
	SpeedupVs1Shard float64 `json:"speedup_vs_1_shard"`
	DigestFamily    string  `json:"digest_family"`
	DigestInvariant bool    `json:"digest_invariant"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
}

type scaleRungReport struct {
	Nodes             int         `json:"nodes"`
	Communities       int         `json:"communities"`
	Items             int         `json:"items"`
	Rho               int         `json:"rho"`
	Duration          float64     `json:"duration_min"`
	MeanPairRate      float64     `json:"mean_pair_rate"`
	PerNodeRate       float64     `json:"per_node_rate"`
	Groups            int         `json:"groups"`
	Contacts          int         `json:"contacts"`
	SetupAllocBytes   uint64      `json:"setup_alloc_bytes"`
	SetupBytesPerNode float64     `json:"setup_bytes_per_node"`
	Cells             []scaleCell `json:"cells"`
}

type scaleReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	SingleCore bool              `json:"single_core"`
	Note       string            `json:"note"`
	Schemes    []string          `json:"schemes"`
	Rungs      []scaleRungReport `json:"rungs"`
}

// scaleModel builds the rung's community model with the per-node
// contact budget split 70% intra-community / 30% cross-community.
func scaleModel(spec scaleRungSpec) (*rates.Model, error) {
	perComm := spec.nodes / spec.communities
	return rates.NewCommunity(rates.CommunityConfig{
		Nodes:       spec.nodes,
		Communities: spec.communities,
		In:          0.7 * perNodeRate / float64(perComm-1),
		Out:         0.3 * perNodeRate / float64(spec.nodes-perComm),
	})
}

// meterSetup measures the allocation of one model + sampler
// construction, discarding the result. Single-threaded TotalAlloc
// deltas are exact.
func meterSetup(spec scaleRungSpec) (uint64, error) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := scaleModel(spec)
	if err != nil {
		return 0, err
	}
	src, err := rates.NewSharded(m, spec.duration, 1, 0)
	if err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	_ = src
	return after.TotalAlloc - before.TotalAlloc, nil
}

func runScale(short bool, out string) error {
	report := scaleReport{
		Benchmark:  "Scale/StructuredSharded",
		provenance: stamp(short),
		SingleCore: runtime.GOMAXPROCS(0) == 1,
		Schemes:    scaleSchemes,
	}
	if report.SingleCore {
		report.Note = "GOMAXPROCS=1: shard fan-out cannot exceed 1x on this machine; " +
			"digest_invariant is the portable claim, speedups need a multi-core runner"
	}
	for _, spec := range scaleLadder(short) {
		rung, err := runScaleRung(spec)
		if err != nil {
			return fmt.Errorf("N=%d: %w", spec.nodes, err)
		}
		report.Rungs = append(report.Rungs, *rung)
	}
	return writeJSON(out, report)
}

func runScaleRung(spec scaleRungSpec) (*scaleRungReport, error) {
	setupBytes, err := meterSetup(spec)
	if err != nil {
		return nil, err
	}
	m, err := scaleModel(spec)
	if err != nil {
		return nil, err
	}
	sc := experiment.Default()
	sc.Nodes = spec.nodes
	sc.Items = 4
	sc.Rho = 2
	sc.Duration = spec.duration
	rung := &scaleRungReport{
		Nodes:             spec.nodes,
		Communities:       spec.communities,
		Items:             sc.Items,
		Rho:               sc.Rho,
		Duration:          spec.duration,
		MeanPairRate:      m.MeanPairRate(),
		PerNodeRate:       perNodeRate,
		Groups:            rates.DefaultGroups,
		SetupAllocBytes:   setupBytes,
		SetupBytesPerNode: float64(setupBytes) / float64(spec.nodes),
	}
	// Untimed warm-up: the first run at a new N pays the OS page-fault
	// bill for growing the heap (at N=10⁶ that is seconds of sys time),
	// which would otherwise be booked against whichever shard count runs
	// first and fake a large "speedup" for the rest.
	sc.Shards = 1
	if _, err := sc.StructuredScale(utility.Step{Tau: 10}, m, scaleSchemes, 0); err != nil {
		return nil, fmt.Errorf("warm-up: %w", err)
	}
	var baseNs int64
	var baseDigest uint64
	for i, shards := range shardLadder() {
		sc.Shards = shards
		start := time.Now()
		rep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, scaleSchemes, 0)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", shards, err)
		}
		wall := time.Since(start).Nanoseconds()
		if i == 0 {
			baseNs = wall
			baseDigest = rep.DigestFamily
			rung.Contacts = rep.Contacts
		}
		cell := scaleCell{
			Shards:          shards,
			WallNs:          wall,
			ContactsPerSec:  float64(rep.Contacts) / (float64(wall) / 1e9),
			SpeedupVs1Shard: float64(baseNs) / float64(wall),
			DigestFamily:    fmt.Sprintf("%#016x", rep.DigestFamily),
			DigestInvariant: rep.DigestFamily == baseDigest,
			PeakHeapBytes:   rep.PeakHeapBytes,
		}
		rung.Cells = append(rung.Cells, cell)
		fmt.Printf("N=%-8d shards=%-3d %8.2fs  %10.0f contacts/s  speedup %.2fx  invariant=%v\n",
			spec.nodes, shards, float64(wall)/1e9, cell.ContactsPerSec,
			cell.SpeedupVs1Shard, cell.DigestInvariant)
		if !cell.DigestInvariant {
			return nil, fmt.Errorf("shards=%d: digest family %#x diverged from 1-shard %#x",
				shards, rep.DigestFamily, baseDigest)
		}
	}
	fmt.Printf("N=%-8d setup %.1f B/node (%d contacts over %.3g min)\n",
		spec.nodes, rung.SetupBytesPerNode, rung.Contacts, spec.duration)
	return rung, nil
}
