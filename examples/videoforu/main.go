// VideoForU: the paper's motivating scenario (Section 1), scaled to run
// in seconds.
//
// A startup distributes 15-minute video episodes with embedded ads to
// subscribers' phones over opportunistic contacts. Each phone dedicates a
// 3-episode cache. Revenue accrues every time a commercial is watched; a
// user who has waited too long no longer watches, so the delay-utility is
// the advertising-revenue step function h(t) = 1{t ≤ τ}.
//
// The program compares the ad revenue per hour achieved by:
//   - passive proportional replication (one replica per fulfillment),
//   - the square-root allocation (classical path replication target),
//   - QCR tuned to the subscribers' measured impatience (Property 2),
//   - the clairvoyant optimal allocation.
//
// Run with: go run ./examples/videoforu
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"impatience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "videoforu:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		subscribers = 60   // phones in this neighborhood
		episodes    = 40   // current catalog
		cacheSlots  = 3    // per-phone cache dedicated to VideoForU
		mu          = 0.03 // pairwise meetings per minute
		tau         = 45.0 // minutes until a requester gives up watching
		days        = 5
	)
	u := impatience.Step{Tau: tau}
	// Episode popularity is heavily skewed (fresh releases dominate).
	pop := impatience.ParetoPopularity(episodes, 1.2, 3)

	hom := impatience.Homogeneous{
		Utility: u, Pop: pop, Mu: mu,
		Servers: subscribers, Clients: subscribers, PureP2P: true,
	}
	opt, err := hom.GreedyOptimal(cacheSlots)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewPCG(2024, 12))
	tr, err := impatience.GenerateHomogeneousTrace(subscribers, mu, days*1440, rng)
	if err != nil {
		return err
	}

	play := func(policy impatience.ReplicationPolicy, initial impatience.AllocationCounts) (float64, error) {
		cfg := impatience.SimConfig{
			Rho: cacheSlots, Utility: u, Pop: pop, Trace: tr,
			Policy: policy, Seed: 99,
		}
		if initial != nil {
			cfg.Initial = initial
			cfg.NoSticky = true
		}
		res, err := impatience.Simulate(cfg)
		if err != nil {
			return 0, err
		}
		return res.AvgUtilityRate * 60, nil // per hour
	}

	revOPT, err := play(impatience.StaticPolicy{Label: "opt"}, opt)
	if err != nil {
		return err
	}
	revSQRT, err := play(impatience.StaticPolicy{Label: "sqrt"},
		impatience.SqrtAllocation(pop.Rates, subscribers, cacheSlots))
	if err != nil {
		return err
	}

	// Passive replication: one replica per fulfillment → proportional.
	passive := &impatience.QCR{Reaction: impatience.ConstantReaction(0.1), MandateRouting: true, StrictSource: true, MaxMandates: 5, Seed: 5}
	revPassive, err := play(passive, nil)
	if err != nil {
		return err
	}

	// QCR tuned to the measured impatience.
	qcr := &impatience.QCR{
		Reaction:       impatience.TunedReaction(u, mu, subscribers, 0.1),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5,
		Seed:           6,
	}
	revQCR, err := play(qcr, nil)
	if err != nil {
		return err
	}

	fmt.Printf("VideoForU: %d subscribers, %d episodes, %d-slot caches, viewers give up after %.0f min\n\n",
		subscribers, episodes, cacheSlots, tau)
	fmt.Printf("%-34s %14s\n", "replication strategy", "ads watched/h")
	fmt.Printf("%-34s %14.2f\n", "passive (1 replica/fulfillment)", revPassive)
	fmt.Printf("%-34s %14.2f\n", "fixed square-root allocation", revSQRT)
	fmt.Printf("%-34s %14.2f\n", "QCR tuned to impatience (local!)", revQCR)
	fmt.Printf("%-34s %14.2f\n", "clairvoyant optimal allocation", revOPT)
	fmt.Printf("\nQCR reaches %.1f%% of the optimum using only local query counts.\n",
		100*revQCR/revOPT)
	return nil
}
