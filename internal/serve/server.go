package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"

	"impatience/internal/demand"
	"impatience/internal/utility"
)

// MaxCatalog is the hard ceiling on the catalog size a daemon will serve;
// an allocation response for a larger catalog would no longer be a cheap
// query, and a typo'd -items should fail loudly at boot, not OOM later.
const MaxCatalog = 1 << 20

// Config parameterizes a Server: the homogeneous system it solves
// (catalog, |S|, ρ, µ, delay-utility) and the serving-loop knobs.
type Config struct {
	Items    int     // catalog size
	Servers  int     // |S|
	Rho      int     // per-server cache slots
	Mu       float64 // pairwise contact rate
	Utility  string  // delay-utility spec, e.g. "step:10"
	HalfLife float64 // estimator EWMA half-life, seconds
	// Drift is the demand.DriftL1 threshold between the estimate at the
	// last solve and the current one past which an observe triggers a
	// re-solve. 0 re-solves on every window.
	Drift float64
	// MaxBody caps request bodies in bytes (default 1 MiB).
	MaxBody int64
	// TableMax bounds the ϕ/ψ table cache (default 32 entries).
	TableMax int
	// SnapshotPath, when non-empty, is where POST /v1/snapshot persists
	// state and where Restore reads it from.
	SnapshotPath string
}

func (c *Config) normalize() {
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.TableMax <= 0 {
		c.TableMax = 32
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Items <= 0:
		return fmt.Errorf("serve: catalog size %d, want > 0", c.Items)
	case c.Items > MaxCatalog:
		return fmt.Errorf("serve: catalog size %d exceeds ceiling %d", c.Items, MaxCatalog)
	case c.Servers <= 0:
		return fmt.Errorf("serve: %d servers, want > 0", c.Servers)
	case c.Rho <= 0:
		return fmt.Errorf("serve: ρ=%d, want > 0", c.Rho)
	case !(c.Mu > 0) || math.IsInf(c.Mu, 1):
		return fmt.Errorf("serve: µ=%g, want finite > 0", c.Mu)
	case !(c.HalfLife > 0) || math.IsInf(c.HalfLife, 1):
		return fmt.Errorf("serve: half-life %g, want finite > 0", c.HalfLife)
	case c.Drift < 0 || c.Drift >= 1 || math.IsNaN(c.Drift):
		return fmt.Errorf("serve: drift threshold %g, want [0, 1)", c.Drift)
	}
	if _, err := utility.Parse(c.Utility); err != nil {
		return err
	}
	return nil
}

// Server is the aged daemon's core: estimator, incremental solver, table
// cache, and current allocation behind one RWMutex. Queries take the read
// lock; observation windows (and the re-solves they trigger) take the
// write lock, so a slow solve never returns a torn allocation.
type Server struct {
	cfg Config
	f   utility.Function

	mtx          sync.RWMutex
	est          *Estimator
	solver       *Solver
	alloc        []float64
	lambda       float64
	lastWarm     bool
	solvedPop    demand.Popularity // estimate at the last solve; drift baseline
	observeCalls uint64
	resolves     uint64

	tables *TableCache
}

// New builds a Server from a validated config. The initial allocation is
// all-zeros: before any demand is observed there is nothing to replicate.
func New(cfg Config) (*Server, error) {
	cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := utility.Parse(cfg.Utility)
	if err != nil {
		return nil, err
	}
	est, err := NewEstimator(cfg.Items, cfg.HalfLife)
	if err != nil {
		return nil, err
	}
	solver, err := NewSolver(f, cfg.Mu, cfg.Servers, cfg.Rho)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		f:      f,
		est:    est,
		solver: solver,
		alloc:  make([]float64, cfg.Items),
		tables: NewTableCache(cfg.TableMax),
	}, nil
}

// Config returns the server's normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/allocation", s.handleAllocation)
	mux.HandleFunc("GET /v1/psi", s.handlePsi)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/observe", s.handleObserve)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeBody(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// AllocationResponse is the wire form of GET /v1/allocation. It carries
// only snapshot-persisted state — allocation, dual level, observation
// counter — so a snapshot → restart → restore cycle reproduces the body
// bit for bit; process-local solve counters live on /v1/stats.
type AllocationResponse struct {
	Allocation []float64 `json:"allocation"`
	Lambda     float64   `json:"lambda"`
	Observed   uint64    `json:"observed"`
}

func (s *Server) handleAllocation(w http.ResponseWriter, r *http.Request) {
	s.mtx.RLock()
	resp := AllocationResponse{
		Allocation: append([]float64(nil), s.alloc...),
		Lambda:     s.lambda,
		Observed:   s.est.Observed(),
	}
	s.mtx.RUnlock()
	writeBody(w, resp)
}

// ObserveResponse is the wire form of POST /v1/observe.
type ObserveResponse struct {
	Folded   float64 `json:"folded"`
	Drift    float64 `json:"drift"`
	Resolved bool    `json:"resolved"`
	Warm     bool    `json:"warm"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBody)
		return
	}
	// Decode and validate everything before taking the write lock: a bad
	// window must leave the estimator untouched.
	window, counts, err := ParseObserve(body, s.cfg.Items)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var folded float64
	for _, c := range counts {
		folded += c
	}

	s.mtx.Lock()
	defer s.mtx.Unlock()
	if err := s.est.Fold(counts, window); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.observeCalls++
	cur := s.est.Snapshot()
	resp := ObserveResponse{Folded: folded, Warm: s.lastWarm}
	resp.Drift = demand.DriftL1(s.solvedPop, cur)
	needSolve := cur.Total() > 0 && (s.solvedPop.Items() == 0 || resp.Drift >= s.cfg.Drift)
	if needSolve {
		if err := s.resolveLocked(cur); err != nil {
			httpError(w, http.StatusInternalServerError, "re-solve: %v", err)
			return
		}
		resp.Resolved = true
		resp.Warm = s.lastWarm
	}
	writeBody(w, resp)
}

// resolveLocked re-solves the allocation for the demand estimate cur.
// Callers hold the write lock.
func (s *Server) resolveLocked(cur demand.Popularity) error {
	x, lambda, warm, err := s.solver.Solve(cur)
	if err != nil {
		return err
	}
	s.alloc = x
	s.lambda = lambda
	s.lastWarm = warm
	s.solvedPop = cur
	s.resolves++
	return nil
}

// PsiResponse is the wire form of GET /v1/psi.
type PsiResponse struct {
	Utility string  `json:"utility"`
	Y       int     `json:"y"`
	Psi     float64 `json:"psi"`
	Phi     float64 `json:"phi"`
}

func (s *Server) handlePsi(w http.ResponseWriter, r *http.Request) {
	spec := r.URL.Query().Get("utility")
	if spec == "" {
		spec = s.cfg.Utility
	}
	y, err := strconv.Atoi(r.URL.Query().Get("y"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "serve: query parameter y must be an integer: %v", err)
		return
	}
	if y < 1 || y > s.cfg.Servers {
		httpError(w, http.StatusBadRequest, "serve: y=%d outside [1, %d]", y, s.cfg.Servers)
		return
	}
	t, err := s.tables.Get(spec, s.cfg.Mu, s.cfg.Servers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeBody(w, PsiResponse{Utility: t.Utility, Y: y, Psi: t.Psi(y), Phi: t.Phi(y)})
}

// StatsResponse is the wire form of GET /v1/stats.
type StatsResponse struct {
	Items        int        `json:"items"`
	Servers      int        `json:"servers"`
	Rho          int        `json:"rho"`
	Utility      string     `json:"utility"`
	Observed     uint64     `json:"observed"`
	ObserveCalls uint64     `json:"observe_calls"`
	Resolves     uint64     `json:"resolves"`
	Solves       SolveStats `json:"solves"`
	LastWarm     bool       `json:"last_warm"`
	TablesCached int        `json:"tables_cached"`
	Lambda       float64    `json:"lambda"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mtx.RLock()
	resp := StatsResponse{
		Items:        s.cfg.Items,
		Servers:      s.cfg.Servers,
		Rho:          s.cfg.Rho,
		Utility:      s.f.Name(),
		Observed:     s.est.Observed(),
		ObserveCalls: s.observeCalls,
		Resolves:     s.resolves,
		Solves:       s.solver.Stats(),
		LastWarm:     s.lastWarm,
		Lambda:       s.lambda,
	}
	s.mtx.RUnlock()
	resp.TablesCached = s.tables.Len()
	writeBody(w, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		httpError(w, http.StatusBadRequest, "serve: no snapshot path configured")
		return
	}
	n, err := s.Snapshot()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeBody(w, map[string]any{"path": s.cfg.SnapshotPath, "bytes": n})
}
