package oracle

// Analytic differentials: checks that run in milliseconds and compare
// independent computations of the same theoretical object — the
// mean-field fixed point vs water-filling on Property 1, the
// greedy/relaxed welfare sandwich of Theorem 2, and the streaming vs
// materialized contact pipelines.

import (
	"fmt"
	"math"
	"math/rand/v2"

	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/meanfield"
	"impatience/internal/numeric"
	"impatience/internal/sim"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

const (
	// Mean-field gates.
	mfBudgetTol  = 1e-3 // |Σx − ρS| / ρS after integration
	mfBalanceTol = 5e-3 // spread of d_i·ϕ(x_i) across interior items
	mfMatchTol   = 0.02 // L∞ relative distance to the water-filling optimum

	// Sandwich gates: the bounds are exact theorems, so only float
	// roundoff is tolerated; the integrality gap is reported and softly
	// bounded.
	sandwichRelTol = 1e-9
	sandwichGapMax = 0.10
)

// capsAt builds a flat cap vector (the budget itself: no binding cap).
func capsAt(items int, cap float64) []float64 {
	caps := make([]float64, items)
	for i := range caps {
		caps[i] = cap
	}
	return caps
}

// anaUtilities spans the four families of Table 1 (bounded, deadline,
// inverse-power reward and the two unbounded cost types).
func anaUtilities() []utility.Function {
	return []utility.Function{
		utility.Step{Tau: 5},
		utility.Step{Tau: 20},
		utility.Exponential{Nu: 0.1},
		utility.Power{Alpha: 1.5},
		utility.Power{Alpha: 0},
		utility.NegLog{},
	}
}

// anaSystem builds the dedicated-node closed-form system the analytic
// checks share. The dedicated transform ϕ is what both RelaxedOptimal
// water-fills on and the Property-2 reaction ψ is tuned with, so this —
// not the pure-P2P correction — is the objective the fixed point and the
// sandwich are exact for.
func (s *session) anaSystem(u utility.Function) welfare.Homogeneous {
	return welfare.Homogeneous{
		Utility: u,
		Pop:     demand.Pareto(s.p.anaItems, 1, 2),
		Mu:      0.05,
		Servers: s.p.anaNodes,
		Clients: s.p.anaNodes,
	}
}

// checkMeanFieldFixedPoint integrates the QCR fluid limit (Eq. 7) to its
// steady state for each utility family and asserts the Property-1
// picture: the budget invariant Σx = ρS holds, the balance terms
// d_i·ϕ(x_i) are constant across interior items, and the fixed point
// coincides with the water-filling optimum computed by an entirely
// different algorithm (internal/numeric bisection vs RK4 integration).
func (s *session) checkMeanFieldFixedPoint() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	for _, u := range anaUtilities() {
		hom := s.anaSystem(u)
		sys := meanfield.System{
			Utility: u,
			Pop:     hom.Pop,
			Mu:      hom.Mu,
			Servers: hom.Servers,
			Rho:     s.p.rho,
		}
		x, converged, err := sys.RunToSteadyState(sys.UniformStart(), 200000, 2, 1e-8)
		if err != nil {
			return infraFail(res, fmt.Errorf("%s: %w", u.Name(), err))
		}
		if !converged {
			res.Pass = false
			res.Details = append(res.Details, fmt.Sprintf("FAIL %s: ODE did not reach steady state", u.Name()))
			res.Effect = math.Inf(1)
			continue
		}
		budget := float64(sys.Servers * sys.Rho)
		var sum float64
		for _, xi := range x {
			sum += xi
		}
		budgetErr := math.Abs(sum-budget) / budget
		ok, line := assertLine(budgetErr <= mfBudgetTol,
			"%s: budget Σx=%.4f vs ρS=%g (rel err %.2g ≤ %g)", u.Name(), sum, budget, budgetErr, mfBudgetTol)
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		res.Effect = maxf(res.Effect, budgetErr/mfBudgetTol)

		// Balance spread over interior items (away from the sticky floor,
		// where the fluid dynamics clamp and the multiplier detaches).
		lo, hi := math.Inf(1), math.Inf(-1)
		interior := 0
		for i, xi := range x {
			if xi < 0.01 || hom.Pop.Rates[i] <= 0 {
				continue
			}
			b := hom.Pop.Rates[i] * u.Phi(hom.Mu, xi)
			lo, hi = math.Min(lo, b), math.Max(hi, b)
			interior++
		}
		if interior < 2 {
			return infraFail(res, fmt.Errorf("%s: only %d interior items", u.Name(), interior))
		}
		spread := (hi - lo) / math.Max(lo, math.SmallestNonzeroFloat64)
		ok, line = assertLine(spread <= mfBalanceTol,
			"%s: balance d·ϕ(x) spread %.2g over %d interior items ≤ %g", u.Name(), spread, interior, mfBalanceTol)
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		res.Effect = maxf(res.Effect, spread/mfBalanceTol)

		// The fluid limit has no per-item cap x_i ≤ |S| (unlike
		// RelaxedOptimal, whose caps model one copy per server), so the
		// honest comparison is UNCAPPED water-filling on the same balance
		// condition — computed by bisection, a wholly different algorithm
		// than the RK4 integration it must agree with.
		xt, err := numeric.WaterFill(numeric.WaterFillProblem{
			Weights: hom.Pop.Rates,
			Caps:    capsAt(len(x), budget),
			Budget:  budget,
			Deriv:   func(xv float64) float64 { return u.Phi(hom.Mu, xv) },
		})
		if err != nil {
			return infraFail(res, fmt.Errorf("%s: water-fill: %w", u.Name(), err))
		}
		var worst float64
		for i := range x {
			worst = maxf(worst, math.Abs(x[i]-xt[i])/math.Max(xt[i], 1))
		}
		ok, line = assertLine(worst <= mfMatchTol,
			"%s: fixed point vs water-filling L∞ rel err %.2g ≤ %g", u.Name(), worst, mfMatchTol)
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		res.Effect = maxf(res.Effect, worst/mfMatchTol)
	}
	return res
}

// checkGreedyRelaxedSandwich asserts Theorem 2's exact integrality
// sandwich U(⌊x̃⌋) ≤ U(greedy) ≤ U(x̃) for every utility family, with
// only float roundoff tolerated, and softly bounds the relative
// greedy/relaxed gap (the paper's large-system argument says it is
// small at these capacities).
func (s *session) checkGreedyRelaxedSandwich() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	for _, u := range anaUtilities() {
		hom := s.anaSystem(u)
		xt, err := hom.RelaxedOptimal(s.p.rho)
		if err != nil {
			return infraFail(res, fmt.Errorf("%s: relaxed: %w", u.Name(), err))
		}
		urel := hom.Welfare(xt)
		greedy, err := hom.GreedyOptimal(s.p.rho)
		if err != nil {
			return infraFail(res, fmt.Errorf("%s: greedy: %w", u.Name(), err))
		}
		ug := hom.WelfareCounts(greedy)

		// Floor of the relaxed solution: a feasible integer allocation, so
		// its welfare lower-bounds the integer optimum. Cost-type utilities
		// have U = −∞ at zero replicas; bumping floored-to-zero items to 1
		// keeps feasibility whenever the budget allows (Σ⌊x̃⌋ ≤ Σx̃) and
		// keeps the bound informative.
		floor := make([]float64, len(xt))
		var used float64
		for i, v := range xt {
			floor[i] = math.Floor(v)
			used += floor[i]
		}
		budget := float64(hom.Servers * s.p.rho)
		for i := range floor {
			if floor[i] == 0 && hom.Pop.Rates[i] > 0 && used+1 <= budget {
				floor[i] = 1
				used++
			}
		}
		ufloor := hom.Welfare(floor)

		scale := math.Max(math.Abs(urel), 1)
		okHi, lineHi := assertLine(ug <= urel+sandwichRelTol*scale,
			"%s: U(greedy)=%.6f ≤ U(x̃)=%.6f", u.Name(), ug, urel)
		okLo, lineLo := assertLine(ufloor <= ug+sandwichRelTol*scale,
			"%s: U(⌊x̃⌋)=%.6f ≤ U(greedy)=%.6f", u.Name(), ufloor, ug)
		gap := (urel - ug) / scale
		okGap, lineGap := assertLine(gap <= sandwichGapMax,
			"%s: relative integrality gap %.4f ≤ %g", u.Name(), gap, sandwichGapMax)
		res.Details = append(res.Details, lineHi, lineLo, lineGap)
		res.Pass = res.Pass && okHi && okLo && okGap
		res.Effect = maxf(res.Effect, maxf((ug-urel)/(sandwichRelTol*scale), gap/sandwichGapMax))
	}
	return res
}

// checkStreamVsMaterialized runs the identical contact sequence through
// the two simulator front ends — a materialized trace (Config.Trace) and
// its streaming Source — under both a static policy and QCR, and
// requires bit-identical digests: the streaming pipeline must be a pure
// refactoring of the materialized one.
func (s *session) checkStreamVsMaterialized() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	const nodes, mu, dur = 40, 0.05, 1500.0
	seed := rungSeed(s.cfg.Seed^0x57e4, nodes)
	tr, err := contact.GenerateHomogeneous(nodes, mu, dur, rand.New(rand.NewPCG(seed, seed^0xabcdef)))
	if err != nil {
		return infraFail(res, err)
	}
	pop := demand.Pareto(24, 1, 1.5)
	hom := welfare.Homogeneous{
		Utility: utility.Step{Tau: 8}, Pop: pop, Mu: mu,
		Servers: nodes, Clients: nodes, PureP2P: true,
	}
	opt, err := hom.GreedyOptimal(3)
	if err != nil {
		return infraFail(res, err)
	}
	policies := []struct {
		name string
		mk   func() (core.Policy, bool) // policy, noSticky
	}{
		{"static", func() (core.Policy, bool) { return core.Static{Label: "opt"}, true }},
		{"qcr", func() (core.Policy, bool) {
			return &core.QCR{
				Reaction:       core.TunedReaction(utility.Step{Tau: 8}, mu, nodes, 0.1),
				MandateRouting: true,
				Seed:           seed ^ 0x11,
			}, false
		}},
	}
	for _, pc := range policies {
		run := func(streaming bool) (*sim.Result, error) {
			pol, noSticky := pc.mk()
			cfg := sim.Config{
				Rho:        3,
				Utility:    utility.Step{Tau: 8},
				Pop:        pop,
				Policy:     pol,
				NoSticky:   noSticky,
				Seed:       seed ^ 0x77,
				WarmupFrac: 0.2,
			}
			if noSticky {
				cfg.Initial = opt
			}
			if streaming {
				cfg.Contacts = tr.Source()
			} else {
				cfg.Trace = tr
			}
			return sim.Run(cfg)
		}
		mat, err := run(false)
		if err != nil {
			return infraFail(res, fmt.Errorf("%s materialized: %w", pc.name, err))
		}
		str, err := run(true)
		if err != nil {
			return infraFail(res, fmt.Errorf("%s streaming: %w", pc.name, err))
		}
		ok, line := assertLine(mat.Digest() == str.Digest(),
			"%s: stream digest %#x == materialized %#x (%d meetings)",
			pc.name, str.Digest(), mat.Digest(), mat.Meetings)
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		if !ok {
			res.Effect = math.Inf(1)
		}
	}
	return res
}
