package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"impatience/internal/experiment"
	"impatience/internal/rates"
	"impatience/internal/stats"
	"impatience/internal/utility"
)

// The hybrid benchmark measures the mean-field fast path against the
// full event simulator and refuses to publish a fast number that is
// wrong. It has two halves:
//
//   - Fidelity rungs (N ≤ 1000): both engines run the same trials
//     (same seeds, same demand, same initial placement) and the hybrid
//     welfare mean is checked against the full simulation's 95%
//     confidence interval for every scheme. A miss is a hard error —
//     the benchmark exits non-zero rather than emit the report. Static
//     schemes must land strictly inside the CI. QCR gets the oracle
//     ladder's slack (3 halfwidths plus a 0.5% floor): the fluid drift
//     is the paper's mean-field QCR, whose equilibrium the finite-N
//     event scheme undershoots by ~2% at N ≤ 1000 — reaction bursts
//     fire ψ at random query counters and the allocation jitter costs
//     welfare under a concave objective. That gap is the scheme's
//     finite-size behaviour, not engine error (the static schemes
//     agree to a few tenths of a percent on identical machinery), so
//     the gate bounds it instead of pretending it is sampling noise.
//   - Speedup rung (N = 10⁵ full mode): one Figure-3-style trial per
//     engine, timed. Full mode additionally gates on the ≥20× speedup
//     the hybrid engine exists to deliver; -short only records.
//
// Every hybrid row stamps the fluid fraction and the demotion count, so
// a run that quietly fell back to event simulation (fluid fraction 0)
// can never masquerade as a mean-field measurement — it fails the
// FluidFraction gate instead.

const (
	hybridConf       = 0.95  // fidelity gate: full-sim CI level
	hybridMinSpeedup = 20.0  // full-mode gate on the N=10⁵ rung
	hybridCISlack    = 3.0   // QCR gate: halfwidth multiplier (oracle ladder convention)
	hybridAbsFloor   = 0.005 // QCR gate: relative floor against near-zero halfwidths
)

type hybridRungSpec struct {
	nodes       int
	communities int
	trials      int
	duration    float64
}

func hybridFidelityLadder(short bool) []hybridRungSpec {
	if short {
		return []hybridRungSpec{
			{nodes: 500, communities: 4, trials: 6, duration: 400},
		}
	}
	return []hybridRungSpec{
		{nodes: 500, communities: 4, trials: 12, duration: 600},
		{nodes: 1000, communities: 8, trials: 12, duration: 600},
	}
}

func hybridSpeedupSpec(short bool) hybridRungSpec {
	if short {
		return hybridRungSpec{nodes: 20_000, communities: 16, trials: 1, duration: 20}
	}
	return hybridRungSpec{nodes: 100_000, communities: 32, trials: 1, duration: 180}
}

// hybridModel builds the rung's community model with the same 70/30
// intra/cross contact split as the scale ladder, so the two benchmarks
// measure the same physics.
func hybridModel(spec hybridRungSpec) (*rates.Model, error) {
	perComm := spec.nodes / spec.communities
	return rates.NewCommunity(rates.CommunityConfig{
		Nodes:       spec.nodes,
		Communities: spec.communities,
		In:          0.7 * perNodeRate / float64(perComm-1),
		Out:         0.3 * perNodeRate / float64(spec.nodes-perComm),
	})
}

// hybridScenario is the rung workload: the scale ladder's population
// shape with demand scaled to the population so the welfare signal does
// not starve as N grows.
func hybridScenario(spec hybridRungSpec) experiment.Scenario {
	sc := experiment.Default()
	sc.Nodes = spec.nodes
	sc.Items = 16
	sc.Rho = 3
	sc.DemandRate = 0.01 * float64(spec.nodes)
	sc.Duration = spec.duration
	sc.Trials = spec.trials
	return sc
}

type hybridSchemeCheck struct {
	Scheme        string  `json:"scheme"`
	Gate          string  `json:"gate"` // "strict-ci" or "slack-ci"
	FullMean      float64 `json:"full_mean"`
	FullHalfwidth float64 `json:"full_halfwidth"`
	HybridMean    float64 `json:"hybrid_mean"`
	RelErr        float64 `json:"rel_err"`
	Tolerance     float64 `json:"tolerance"`
	InsideCI      bool    `json:"inside_ci"`
	Pass          bool    `json:"pass"`
}

type hybridFidelityRung struct {
	Nodes         int                 `json:"nodes"`
	Communities   int                 `json:"communities"`
	Items         int                 `json:"items"`
	Rho           int                 `json:"rho"`
	Trials        int                 `json:"trials"`
	Duration      float64             `json:"duration_min"`
	FluidFraction float64             `json:"fluid_fraction"`
	Demotions     int                 `json:"demotions"`
	FullWallNs    int64               `json:"full_wall_ns"`
	HybridWallNs  int64               `json:"hybrid_wall_ns"`
	Speedup       float64             `json:"speedup"`
	Checks        []hybridSchemeCheck `json:"checks"`
}

type hybridSpeedupRung struct {
	Nodes         int     `json:"nodes"`
	Communities   int     `json:"communities"`
	Items         int     `json:"items"`
	Rho           int     `json:"rho"`
	Duration      float64 `json:"duration_min"`
	Contacts      int     `json:"full_contacts"`
	FullWallNs    int64   `json:"full_wall_ns"`
	HybridWallNs  int64   `json:"hybrid_wall_ns"`
	Speedup       float64 `json:"speedup"`
	FluidFraction float64 `json:"fluid_fraction"`
	Demotions     int     `json:"demotions"`
	Gated         bool    `json:"speedup_gated"`
}

type hybridReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	SingleCore bool                 `json:"single_core"`
	Note       string               `json:"note"`
	Schemes    []string             `json:"schemes"`
	Conf       float64              `json:"fidelity_conf"`
	MinSpeedup float64              `json:"min_speedup_gate"`
	Fidelity   []hybridFidelityRung `json:"fidelity_rungs"`
	Speedup    hybridSpeedupRung    `json:"speedup_rung"`
}

// runHybridTrials runs the rung's trials on one engine and returns the
// per-trial per-scheme welfare samples plus wall time and the hybrid
// provenance (zero on the event path). Trials are sequential on
// purpose: both engines get the identical single-stream wall clock, so
// the speedup column measures the algorithm, not the worker pool.
func runHybridTrials(sc experiment.Scenario, m *rates.Model, hybrid bool) (samples [][]float64, wallNs int64, fluid float64, demotions int, err error) {
	sc.Hybrid.Enabled = hybrid
	samples = make([][]float64, len(scaleSchemes))
	start := time.Now()
	for trial := 0; trial < sc.Trials; trial++ {
		rep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, scaleSchemes, uint64(trial))
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("trial %d: %w", trial, err)
		}
		if hybrid {
			if !rep.Hybrid || rep.FluidFraction <= 0 {
				return nil, 0, 0, 0, fmt.Errorf("trial %d: hybrid run fell back to full event simulation (fluid fraction %g)", trial, rep.FluidFraction)
			}
			fluid += rep.FluidFraction / float64(sc.Trials)
			demotions += rep.Demotions
		}
		for k := range scaleSchemes {
			samples[k] = append(samples[k], rep.AvgUtility[k])
		}
	}
	return samples, time.Since(start).Nanoseconds(), fluid, demotions, nil
}

func runHybridFidelityRung(spec hybridRungSpec) (*hybridFidelityRung, error) {
	m, err := hybridModel(spec)
	if err != nil {
		return nil, err
	}
	sc := hybridScenario(spec)
	full, fullNs, _, _, err := runHybridTrials(sc, m, false)
	if err != nil {
		return nil, fmt.Errorf("full path: %w", err)
	}
	hy, hyNs, fluid, demotions, err := runHybridTrials(sc, m, true)
	if err != nil {
		return nil, fmt.Errorf("hybrid path: %w", err)
	}
	rung := &hybridFidelityRung{
		Nodes:         spec.nodes,
		Communities:   spec.communities,
		Items:         sc.Items,
		Rho:           sc.Rho,
		Trials:        sc.Trials,
		Duration:      spec.duration,
		FluidFraction: fluid,
		Demotions:     demotions,
		FullWallNs:    fullNs,
		HybridWallNs:  hyNs,
		Speedup:       float64(fullNs) / float64(hyNs),
	}
	for k, scheme := range scaleSchemes {
		iv := stats.MeanCI(full[k], hybridConf)
		hyMean := stats.Summarize(hy[k]).Mean
		dev := math.Abs(hyMean - iv.Center)
		check := hybridSchemeCheck{
			Scheme:        scheme,
			Gate:          "strict-ci",
			FullMean:      iv.Center,
			FullHalfwidth: iv.Halfwidth,
			HybridMean:    hyMean,
			Tolerance:     iv.Halfwidth,
			InsideCI:      iv.Contains(hyMean),
		}
		if scheme == experiment.SchemeQCR {
			check.Gate = "slack-ci"
			check.Tolerance = hybridCISlack*iv.Halfwidth + hybridAbsFloor*math.Abs(iv.Center)
		}
		check.Pass = dev <= check.Tolerance
		if iv.Center != 0 {
			check.RelErr = dev / math.Abs(iv.Center)
		}
		rung.Checks = append(rung.Checks, check)
		fmt.Printf("N=%-6d %-4s full %.6g ± %.3g  hybrid %.6g  relerr %.2g%%  |Δ| %.3g ≤ %.3g (%s) pass=%v\n",
			spec.nodes, scheme, iv.Center, iv.Halfwidth, hyMean, 100*check.RelErr,
			dev, check.Tolerance, check.Gate, check.Pass)
		if !check.Pass {
			return nil, fmt.Errorf("N=%d %s: hybrid welfare %.6g deviates %.3g from the full-sim %.0f%% CI center %.6g (gate %s, tolerance %.3g)",
				spec.nodes, scheme, hyMean, dev, 100*hybridConf, iv.Center, check.Gate, check.Tolerance)
		}
	}
	fmt.Printf("N=%-6d fluid %.1f%%  demotions %d  full %.2fs  hybrid %.2fs  speedup %.1fx\n",
		spec.nodes, 100*fluid, demotions, float64(fullNs)/1e9, float64(hyNs)/1e9, rung.Speedup)
	return rung, nil
}

// runHybridSpeedupRung times one Figure-3-style trial (32 items, ρ=3,
// demand ∝ N) on each engine at a population the event path can still
// regenerate, barely — which is the point of the comparison.
func runHybridSpeedupRung(spec hybridRungSpec, gate bool) (*hybridSpeedupRung, error) {
	m, err := hybridModel(spec)
	if err != nil {
		return nil, err
	}
	sc := hybridScenario(spec)
	sc.Items = 32
	sc.Rho = 3
	sc.DemandRate = 0.04 * float64(spec.nodes)

	// Collect between the timed sections: the full run leaves tens of
	// millions of contact events' worth of garbage behind, and without a
	// barrier the successor pays its GC bill on the clock.
	sc.Hybrid.Enabled = false
	runtime.GC()
	start := time.Now()
	fullRep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, scaleSchemes, 0)
	if err != nil {
		return nil, fmt.Errorf("full path: %w", err)
	}
	fullNs := time.Since(start).Nanoseconds()

	sc.Hybrid.Enabled = true
	runtime.GC()
	start = time.Now()
	hyRep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, scaleSchemes, 0)
	if err != nil {
		return nil, fmt.Errorf("hybrid path: %w", err)
	}
	hyNs := time.Since(start).Nanoseconds()
	if !hyRep.Hybrid || hyRep.FluidFraction <= 0 {
		return nil, fmt.Errorf("speedup rung: hybrid run fell back to full event simulation (fluid fraction %g)", hyRep.FluidFraction)
	}

	rung := &hybridSpeedupRung{
		Nodes:         spec.nodes,
		Communities:   spec.communities,
		Items:         sc.Items,
		Rho:           sc.Rho,
		Duration:      spec.duration,
		Contacts:      fullRep.Contacts,
		FullWallNs:    fullNs,
		HybridWallNs:  hyNs,
		Speedup:       float64(fullNs) / float64(hyNs),
		FluidFraction: hyRep.FluidFraction,
		Demotions:     hyRep.Demotions,
		Gated:         gate,
	}
	fmt.Printf("N=%-8d full %.2fs (%d contacts)  hybrid %.3fs  speedup %.1fx  fluid %.1f%%  demotions %d\n",
		spec.nodes, float64(fullNs)/1e9, fullRep.Contacts, float64(hyNs)/1e9,
		rung.Speedup, 100*rung.FluidFraction, rung.Demotions)
	if gate && rung.Speedup < hybridMinSpeedup {
		return nil, fmt.Errorf("N=%d: hybrid speedup %.1fx below the %.0fx gate", spec.nodes, rung.Speedup, hybridMinSpeedup)
	}
	return rung, nil
}

func runHybrid(short bool, out string) error {
	report := hybridReport{
		Benchmark:  "Hybrid/MeanFieldVsEventSim",
		provenance: stamp(short),
		SingleCore: runtime.GOMAXPROCS(0) == 1,
		Schemes:    scaleSchemes,
		Conf:       hybridConf,
		MinSpeedup: hybridMinSpeedup,
	}
	report.Note = "speedup is algorithmic (fluid ODE vs event replay), not parallel fan-out; " +
		"fidelity rungs hard-fail unless hybrid welfare lands inside the full-sim CI"
	for _, spec := range hybridFidelityLadder(short) {
		rung, err := runHybridFidelityRung(spec)
		if err != nil {
			return fmt.Errorf("fidelity N=%d: %w", spec.nodes, err)
		}
		report.Fidelity = append(report.Fidelity, *rung)
	}
	spec := hybridSpeedupSpec(short)
	rung, err := runHybridSpeedupRung(spec, !short)
	if err != nil {
		return err
	}
	report.Speedup = *rung
	return writeJSON(out, report)
}
