package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesProfiles covers the happy path: both profiles requested,
// both files non-empty after stop.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1_000_00; i++ {
		x += float64(i) * 1.0000001
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartNoop: both paths empty is a supported no-op.
func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop: %v", err)
	}
}

// TestStartUnwritableCPUPath: an unwritable CPU path must surface as an
// error from Start itself, before any profiling begins.
func TestStartUnwritableCPUPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")
	if _, err := Start(bad, ""); err == nil {
		t.Fatal("Start succeeded with unwritable CPU path")
	}
}

// TestStopUnwritableMemPath: an unwritable heap path is only touched at
// stop time, so Start succeeds and stop reports the error.
func TestStopUnwritableMemPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out")
	stop, err := Start("", bad)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop succeeded with unwritable heap path")
	}
}

// TestStopIdempotent: calling stop twice must not double-close the CPU
// profile file or rewrite the heap profile.
func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	size := fi.Size()
	if err := stop(); err != nil {
		t.Errorf("second stop: %v", err)
	}
	fi, err = os.Stat(mem)
	if err != nil {
		t.Fatalf("heap profile after second stop: %v", err)
	}
	if fi.Size() != size {
		t.Errorf("second stop rewrote the heap profile (%d → %d bytes)", size, fi.Size())
	}
}
