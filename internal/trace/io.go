package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text format is line-oriented:
//
//	# comments and blank lines are ignored
//	nodes <N>
//	duration <T>
//	<t> <a> <b>        (one contact per line, any order; normalized on read)
//
// It is deliberately trivial so real trace sets (Infocom, Cabspotting
// contact exports) can be converted with a one-line awk script.

// Write serializes tr to w in the text format.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# impatience contact trace\n")
	fmt.Fprintf(bw, "nodes %d\n", tr.Nodes)
	fmt.Fprintf(bw, "duration %g\n", tr.Duration)
	for _, c := range tr.Contacts {
		fmt.Fprintf(bw, "%g %d %d\n", c.T, c.A, c.B)
	}
	return bw.Flush()
}

// Read parses a trace in the text format, normalizes and validates it.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	tr := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "nodes" && len(fields) == 2:
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad node count: %v", lineNo, err)
			}
			tr.Nodes = n
		case fields[0] == "duration" && len(fields) == 2:
			d, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad duration: %v", lineNo, err)
			}
			tr.Duration = d
		case len(fields) == 3:
			t, err1 := strconv.ParseFloat(fields[0], 64)
			a, err2 := strconv.Atoi(fields[1])
			b, err3 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("trace: line %d: bad contact %q", lineNo, line)
			}
			tr.Contacts = append(tr.Contacts, Contact{T: t, A: a, B: b})
		default:
			return nil, fmt.Errorf("trace: line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Load reads a trace file from disk.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Save writes a trace file to disk.
func Save(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
