package trace

import (
	"fmt"
	"math"
)

// Source streams a contact trace in time order without requiring it to be
// materialized: Next returns the next contact until the source is
// exhausted. It is the simulator's input seam — a materialized Trace, a
// lazily drawn synthetic contact process, and a trace file on disk all
// satisfy it, so experiments scale past the point where the full
// ~N²·µ·T contact list fits in memory.
//
// Contract: Nodes and Duration are fixed for the life of the source;
// contacts come with non-decreasing T in [0, Duration], endpoints in
// [0, Nodes) with A ≠ B. Sources that can fail mid-stream (I/O, parse
// errors) additionally implement ErrSource; consumers check Err after
// Next returns false. A Source is single-use: once drained it stays
// drained.
type Source interface {
	Nodes() int
	Duration() float64
	Next() (Contact, bool)
}

// ErrSource is implemented by sources whose stream can fail underway
// (file-backed sources). Err returns nil after a clean end of stream.
type ErrSource interface {
	Source
	Err() error
}

// BulkSource is a Source that can fill a caller-provided buffer with the
// next run of contacts in one call: NextBatch writes up to len(buf)
// contacts into buf and returns how many it wrote; 0 means the source is
// exhausted (matching Next returning false). The contacts — values and
// order — are exactly what repeated Next calls would have produced: a
// bulk fill is buffering, never reordering, so RNG draw order and the
// resulting digests are byte-identical on both paths. The seam exists for
// the simulator's batched contact kernel, which amortizes the
// per-contact interface dispatch (and the callee's per-call state loads)
// over a few thousand contacts at a time.
//
// Implementations must tolerate an empty buf (return 0 without drawing)
// and must support interleaving NextBatch with Next on the same source.
type BulkSource interface {
	Source
	NextBatch(buf []Contact) int
}

// FillBatch fills buf from src, using the bulk seam when src implements
// BulkSource and falling back to repeated Next calls otherwise. Both
// paths yield identical contact sequences; the return value is the number
// of contacts written, 0 at end of stream.
func FillBatch(src Source, buf []Contact) int {
	if bs, ok := src.(BulkSource); ok {
		return bs.NextBatch(buf)
	}
	n := 0
	for n < len(buf) {
		c, ok := src.Next()
		if !ok {
			break
		}
		buf[n] = c
		n++
	}
	return n
}

// Reopenable is a Source that can hand out a fresh, rewound copy of
// itself: Reopen returns a new Source that streams the identical contact
// sequence from the start, regardless of how far the receiver has been
// drained. The batch harness relies on it to stream one trial's contacts
// twice — once to accumulate the empirical rate matrix the static
// allocations need, once to drive the lockstep multi-scheme simulation —
// without ever materializing the O(N²·µ·T) contact list. Synthetic
// sources reopen by re-deriving their RNG from the recorded seed; the
// slice adapter reopens by re-pointing at the shared trace.
type Reopenable interface {
	Source
	Reopen() (Source, error)
}

// Partitionable is a Source whose contact process decomposes into
// independent, individually ordered sub-processes: Partition(max)
// returns up to max sources whose time-ordered merge (ties broken
// lexicographically by (T, A, B), under which equal contacts are
// interchangeable) reproduces the receiver's contact sequence exactly.
// The sharded batch executor (sim.RunBatchSharded) uses it to generate
// the shared contact stream on several cores at once; the structured
// rate models (internal/rates) implement it by splitting their
// community-pair blocks into fixed per-block RNG sub-streams, so the
// merged sequence is the same for every partition width — including 1.
// Partition reports false when the source cannot split (for example
// because it has already been partially drained); callers must then fall
// back to draining the receiver serially.
type Partitionable interface {
	Source
	Partition(max int) ([]Source, bool)
}

// SliceSource adapts a materialized Trace to the Source interface. It
// yields the contact slice in order, so a simulation driven through the
// adapter is bit-identical to one iterating the slice directly.
type SliceSource struct {
	tr *Trace
	i  int
}

// Source returns a fresh streaming view over the trace.
func (tr *Trace) Source() *SliceSource { return &SliceSource{tr: tr} }

// Nodes implements Source.
func (s *SliceSource) Nodes() int { return s.tr.Nodes }

// Duration implements Source.
func (s *SliceSource) Duration() float64 { return s.tr.Duration }

// Next implements Source.
func (s *SliceSource) Next() (Contact, bool) {
	if s.i >= len(s.tr.Contacts) {
		return Contact{}, false
	}
	c := s.tr.Contacts[s.i]
	s.i++
	return c, true
}

// NextBatch implements BulkSource: one bulk copy out of the materialized
// slice instead of a per-contact cursor walk.
func (s *SliceSource) NextBatch(buf []Contact) int {
	n := copy(buf, s.tr.Contacts[s.i:])
	s.i += n
	return n
}

// Reopen implements Reopenable: the fresh view shares the underlying
// trace, so reopening costs one small allocation however large the
// contact list is.
func (s *SliceSource) Reopen() (Source, error) { return &SliceSource{tr: s.tr}, nil }

// EmpiricalRatesFrom is EmpiricalRates over a streamed trace: it drains
// the source, applying the same per-contact accumulation in the same
// order, so for a source streaming a materialized trace's contacts the
// returned matrix is bit-identical to EmpiricalRates of that trace.
// Contacts are contract-checked as they are consumed (a stream cannot be
// validated up front) and a mid-stream source error is propagated.
func EmpiricalRatesFrom(src Source) (*RateMatrix, error) {
	nodes, duration := src.Nodes(), src.Duration()
	rm := NewRateMatrix(nodes)
	if duration <= 0 {
		return rm, nil
	}
	prevT := 0.0
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		if err := CheckStreamContact(c, prevT, nodes, duration); err != nil {
			return nil, err
		}
		prevT = c.T
		rm.rates[PairIndex(nodes, c.A, c.B)] += 1 / duration
	}
	if es, ok := src.(ErrSource); ok {
		if err := es.Err(); err != nil {
			return nil, err
		}
	}
	return rm, nil
}

// Collect drains a source into a materialized, validated Trace. It is the
// inverse of Trace.Source, meant for tests and for feeding streamed
// contacts to consumers that need random access (empirical statistics).
// Collecting reintroduces the O(#contacts) memory the streaming pipeline
// avoids — do not use it on production-scale sources.
func Collect(src Source) (*Trace, error) {
	tr := &Trace{Nodes: src.Nodes(), Duration: src.Duration()}
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		tr.Contacts = append(tr.Contacts, c)
	}
	if es, ok := src.(ErrSource); ok {
		if err := es.Err(); err != nil {
			return nil, err
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// pairRowStart returns the dense index of pair (a, a+1): the first entry
// of row a in the PairIndex layout.
func pairRowStart(nodes, a int) int { return a * (2*nodes - a - 1) / 2 }

// PairFromIndex inverts PairIndex in O(1): it recovers the unordered pair
// (a, b), a < b, from its dense index. The streaming generators use it to
// avoid materializing the idx → (a, b) lookup tables, which at production
// scale cost O(N²) memory on their own (200 MB at N = 5000).
//
// The float estimate of the row comes from the stable (subtraction-free
// under the radical) branch of the quadratic formula, but at million-node
// scale the radicand m²−8·idx is a difference of ~4N² magnitudes: past
// N ≈ 5·10⁷ the operands leave float64's exact-integer range, the
// cancellation can wander by whole rows — or go negative, turning the
// estimate into int(NaN), which Go clamps to the most negative int. The
// estimate is therefore clamped into the valid row range and corrected
// with exact integer comparisons that walk any remaining error off, so
// the result is exact for every index an int-indexed rate matrix can
// hold (boundary-regressed at N ∈ {10⁵, 10⁶, 2·10⁶} for the first and
// last index of every row).
func PairFromIndex(nodes, idx int) (int, int) {
	// Row a is the largest a with rowStart(a) ≤ idx.
	m := float64(2*nodes - 1)
	rad := m*m - 8*float64(idx)
	if rad < 0 {
		rad = 0 // float cancellation only; the exact radicand is ≥ 9
	}
	a := int((m - math.Sqrt(rad)) / 2)
	// Clamp the estimate into the valid row range before the exact
	// correction: int(NaN) and large-N rounding can land arbitrarily far
	// outside [0, nodes-2].
	if a < 0 {
		a = 0
	}
	if a > nodes-2 {
		a = nodes - 2
	}
	// Exact integer correction (pure int arithmetic, loops as many steps
	// as the float error requires — at most one for exactly representable
	// radicands).
	for a > 0 && pairRowStart(nodes, a) > idx {
		a--
	}
	for a < nodes-2 && pairRowStart(nodes, a+1) <= idx {
		a++
	}
	b := idx - pairRowStart(nodes, a) + a + 1
	return a, b
}

// CheckStreamContact is the per-contact counterpart of Trace.Validate
// for streamed contacts, shared by the file-backed source and the
// simulator's streaming path (a stream cannot be validated up front).
func CheckStreamContact(c Contact, prevT float64, nodes int, duration float64) error {
	if c.T < prevT {
		return fmt.Errorf("%w: contact at t=%g after t=%g (stream out of order)", ErrInvalid, c.T, prevT)
	}
	if c.T < 0 || c.T > duration {
		return fmt.Errorf("%w: contact at t=%g outside [0,%g]", ErrInvalid, c.T, duration)
	}
	if c.A < 0 || c.A >= nodes || c.B < 0 || c.B >= nodes || c.A == c.B {
		return fmt.Errorf("%w: contact has bad endpoints (%d,%d)", ErrInvalid, c.A, c.B)
	}
	return nil
}
