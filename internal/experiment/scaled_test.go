package experiment

import "testing"

// Scaled used to truncate the trial count toward zero, so quick runs of
// scenarios with different Trials shrank asymmetrically: 15 trials at
// 0.2 became 3, but 14 became 2 — a 33% difference in statistical
// weight from a 7% difference in input. The rounding is half-up now;
// these cases pin it.
func TestScaledRoundsTrialsHalfUp(t *testing.T) {
	cases := []struct {
		trials int
		frac   float64
		want   int
	}{
		{15, 0.2, 3},
		{14, 0.2, 3},  // 2.8 rounds up (was 2 under truncation)
		{13, 0.2, 3},  // 2.6 rounds up
		{12, 0.2, 2},  // 2.4 rounds down
		{15, 0.1, 2},  // 1.5 rounds half up
		{15, 0.5, 8},  // 7.5 rounds half up
		{3, 0.1, 1},   // floor of 1 trial
		{1, 0.01, 1},  // never zero trials
		{15, 1.0, 15}, // identity
	}
	for _, tc := range cases {
		sc := Default()
		sc.Trials = tc.trials
		got := sc.Scaled(tc.frac, 1).Trials
		if got != tc.want {
			t.Errorf("Scaled(%g) of %d trials = %d, want %d", tc.frac, tc.trials, got, tc.want)
		}
	}
	sc := Default()
	if d := sc.Scaled(1, 0.4).Duration; d != sc.Duration*0.4 {
		t.Errorf("duration scaled to %g, want %g", d, sc.Duration*0.4)
	}
}
