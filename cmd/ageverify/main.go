// Command ageverify runs the theory-vs-simulation conformance harness
// (internal/oracle): analytic oracles, differential checks and
// statistical gates that cross-validate the closed-form welfare, the
// mean-field ODE and the discrete-event simulator against each other.
//
// Usage:
//
//	ageverify -quick              # CI suite, ~1-2 minutes on one core
//	ageverify -full               # nightly ladder up to N=1000
//	ageverify -quick -break       # negative control: must FAIL
//	ageverify -quick -hybrid      # include the hybrid-vs-sim ladder
//	ageverify -out VERIFY.json    # where the structured report goes
//
// The exit status is 0 iff every check passed (with -break: iff the
// harness correctly failed).
package main

import (
	"flag"
	"fmt"
	"os"

	"impatience/internal/oracle"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run the CI-sized suite (default if neither -quick nor -full)")
		full     = flag.Bool("full", false, "run the nightly ladder (N up to 1000, more trials)")
		brk      = flag.Bool("break", false, "negative control: simulate the uniform allocation while asserting the optimum; the suite must fail")
		hardened = flag.Bool("hardened", false, "run the QCR balance check with the adversary-hardened reaction; under zero adversaries it must pass the same gates")
		hybrid   = flag.Bool("hybrid", false, "append the hybrid-vs-sim ladder: the mean-field fast path must land inside the full simulation's CI at every rung")
		seed     = flag.Uint64("seed", 1, "base seed; all trial seeds derive from it")
		workers  = flag.Int("workers", 0, "trial worker pool (0 = GOMAXPROCS; results are worker-count invariant)")
		out      = flag.String("out", "VERIFY.json", "path for the structured report (empty = skip)")
	)
	flag.Parse()
	if *quick && *full {
		fmt.Fprintln(os.Stderr, "ageverify: -quick and -full are mutually exclusive")
		os.Exit(2)
	}
	cfg := oracle.Config{
		Full:            *full,
		Seed:            *seed,
		Workers:         *workers,
		BreakAllocation: *brk,
		Hardened:        *hardened,
		Hybrid:          *hybrid,
		Progress:        func(line string) { fmt.Println(line) },
	}
	rep, err := oracle.Check(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ageverify: %v\n", err)
		os.Exit(2)
	}
	fmt.Println()
	fmt.Print(rep.Summary())
	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "ageverify: write %s: %v\n", *out, err)
			os.Exit(2)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *brk {
		// Negative control: the gates must have the power to catch a
		// deliberately wrong allocation.
		if rep.Pass {
			fmt.Fprintln(os.Stderr, "ageverify: NEGATIVE CONTROL PASSED THE GATES — the harness has no power")
			os.Exit(1)
		}
		fmt.Println("negative control correctly rejected")
		return
	}
	if !rep.Pass {
		os.Exit(1)
	}
}
