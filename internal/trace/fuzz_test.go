package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzRead drives the trace parser with arbitrary byte streams. The
// contract under fuzzing is narrow but absolute: Read returns either a
// validated trace or an error — it never panics, whatever the input, and
// any trace it does accept survives a Write/Read round trip unchanged
// (Read normalizes, so a re-read of a written trace is a fixed point).
func FuzzRead(f *testing.F) {
	f.Add("# impatience contact trace\nnodes 3\nduration 10\n1 0 1\n2.5 1 2\n")
	f.Add("nodes 2\nduration 5\n")
	f.Add("nodes 2\nduration 5\n1 0 1\n1 0 1\n4.2 1 0\n") // duplicates, unordered pair
	f.Add("")
	f.Add("nodes x\n")
	f.Add("duration NaN\n1 0 1\n")
	f.Add("nodes 2\nduration 5\n1 0 5\n")  // node out of range
	f.Add("nodes 2\nduration 5\n-1 0 1\n") // negative time
	f.Add("nodes 2\nduration 5\n9 0 1\n")  // contact after duration
	f.Add("nodes -3\nduration 5\n")
	f.Add("garbage line\n")
	f.Add("1 2\n")
	f.Add("nodes 2 2\n")
	f.Add(strings.Repeat("nodes 1\n", 3))
	f.Add("nodes 1000000000000000000000\n")
	f.Add("nodes 2\nduration 1e308\n1e307 0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write failed on accepted trace: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected:\n%s\nerror: %v", buf.String(), err)
		}
		if tr.Nodes != back.Nodes || tr.Duration != back.Duration || !reflect.DeepEqual(tr.Contacts, back.Contacts) {
			t.Fatalf("round trip changed the trace:\nin:  %+v\nout: %+v", tr, back)
		}
	})
}
