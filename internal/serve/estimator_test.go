package serve

import (
	"math"
	"testing"

	"impatience/internal/demand"
)

func TestEstimatorConvergesToConstantRate(t *testing.T) {
	e, err := NewEstimator(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 300 s of a constant firehose (30 half-lives: the initial zero state
	// retains weight 2⁻³⁰): item 0 at 100 req/s, item 2 at 25.
	for k := 0; k < 300; k++ {
		if err := e.Fold([]float64{100, 0, 25}, 1); err != nil {
			t.Fatal(err)
		}
	}
	pop := e.Snapshot()
	if math.Abs(pop.Rates[0]-100) > 1e-3 || math.Abs(pop.Rates[2]-25) > 1e-3 {
		t.Fatalf("estimates %v, want ≈ [100 0 25]", pop.Rates)
	}
	if e.Observed() != 300*125 {
		t.Fatalf("observed %d, want %d", e.Observed(), 300*125)
	}
}

func TestEstimatorHalfLifeDecay(t *testing.T) {
	e, err := NewEstimator(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 400; k++ {
		e.Fold([]float64{50}, 1)
	}
	before := e.Snapshot().Rates[0]
	// One silent half-life in a single window halves the estimate.
	if err := e.Fold([]float64{0}, 30); err != nil {
		t.Fatal(err)
	}
	after := e.Snapshot().Rates[0]
	if rel := math.Abs(after-before/2) / before; rel > 1e-9 {
		t.Fatalf("after one silent half-life: %g, want %g", after, before/2)
	}
}

func TestEstimatorRejectsBadInput(t *testing.T) {
	if _, err := NewEstimator(0, 10); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := NewEstimator(5, 0); err == nil {
		t.Error("zero half-life accepted")
	}
	if _, err := NewEstimator(5, math.Inf(1)); err == nil {
		t.Error("infinite half-life accepted")
	}
	e, err := NewEstimator(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	e.Fold([]float64{4, 6}, 1)
	want := e.Snapshot()
	for name, tc := range map[string]struct {
		counts []float64
		window float64
	}{
		"wrong-len":   {[]float64{1}, 1},
		"neg-count":   {[]float64{-1, 0}, 1},
		"nan-count":   {[]float64{math.NaN(), 0}, 1},
		"inf-count":   {[]float64{math.Inf(1), 0}, 1},
		"zero-window": {[]float64{1, 1}, 0},
		"neg-window":  {[]float64{1, 1}, -3},
		"nan-window":  {[]float64{1, 1}, math.NaN()},
		"inf-window":  {[]float64{1, 1}, math.Inf(1)},
	} {
		if err := e.Fold(tc.counts, tc.window); err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		got := e.Snapshot()
		for i := range got.Rates {
			if got.Rates[i] != want.Rates[i] {
				t.Errorf("%s: estimator mutated on error: %v != %v", name, got.Rates, want.Rates)
				break
			}
		}
	}
}

func TestDriftL1ScaleInvariantShapeSensitive(t *testing.T) {
	a := demand.Popularity{Rates: []float64{8, 4, 2, 1}}
	scaled := demand.Popularity{Rates: []float64{80, 40, 20, 10}}
	if d := demand.DriftL1(a, scaled); d != 0 {
		t.Errorf("pure rescale drifted %g, want 0", d)
	}
	disjoint := demand.Popularity{Rates: []float64{0, 0, 0, 1}}
	flipped := demand.Popularity{Rates: []float64{1, 0, 0, 0}}
	if d := demand.DriftL1(disjoint, flipped); math.Abs(d-1) > 1e-15 {
		t.Errorf("disjoint support drifted %g, want 1", d)
	}
	if d := demand.DriftL1(a, demand.Popularity{Rates: []float64{1, 2}}); d != 1 {
		t.Errorf("length mismatch drifted %g, want 1", d)
	}
	if d := demand.DriftL1(demand.Popularity{Rates: []float64{0, 0}}, demand.Popularity{Rates: []float64{0, 0}}); d != 0 {
		t.Errorf("both-empty drifted %g, want 0", d)
	}
}
