// Package examples_test smoke-tests every runnable example: each must
// build, exit 0 and print something. The examples double as the
// library's user-facing documentation, so a broken one is a broken API
// promise even when the internal tests are green.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example binaries in -short mode")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(gobin, "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", name, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Errorf("example %s printed nothing", name)
			}
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no example directories found")
	}
}
