// Package adversary is the misbehavior-and-drift layer of the simulator.
// The paper derives QCR under honest nodes and stationary Zipf demand;
// this package supplies the violations the robustness experiments
// quantify and the hardened reaction (core.Hardening) defends against:
//
//  1. Dishonest nodes — a fraction of nodes inflates the query counter
//     reported at each of their fulfillments by a per-node multiplier
//     (the MULT knob), gaming ψ into minting replicas of whatever they
//     request. The counter fed to the reaction saturates at
//     core.MaxQueryCount, so no multiplier can overflow the arithmetic.
//  2. Free-riders — a fraction of nodes consumes content but never
//     serves: they refuse to answer queries for items they hold, refuse
//     policy cache writes, decline to carry replication mandates, and do
//     not run the replication reaction for their own fulfillments.
//  3. Demand drift — a schedule of popularity shifts (demand.Schedule)
//     replayed through the demand process: flash crowds, rank churn.
//  4. Contact nonstationarity — a day/night activity profile imposed on
//     any streamed contact source by deterministic time change (see
//     Modulate).
//
// A Config is a pure description; an Injector is the per-run instance.
// Role assignment draws from a private RNG stream at construction and
// nothing afterwards, so a run with the layer disabled — or a config
// whose Enabled() is false — is byte-identical to a run built before
// this package existed. The layer composes with fault injection
// (internal/faults): both can be active in one run, in both sim.Run and
// sim.RunBatch.
package adversary

import (
	"fmt"
	"math"
	"math/rand/v2"

	"impatience/internal/core"
	"impatience/internal/demand"
)

// Config parameterizes the adversarial workload for one run. The zero
// value disables every misbehavior class.
type Config struct {
	// DishonestFrac is the fraction of nodes that inflate their reported
	// query counters, in [0,1].
	DishonestFrac float64
	// Mult is the counter multiplier dishonest nodes apply (the MULT
	// knob): a fulfilled request's counter y is reported as min(⌊M·y⌋,
	// core.MaxQueryCount). 1 (or 0, the zero value) means honest
	// reporting even when DishonestFrac > 0.
	Mult float64
	// FreeRiderFrac is the fraction of nodes that consume content but
	// never serve or carry mandates, in [0,1]. Dishonest and free-riding
	// roles are assigned to disjoint node sets, so the two fractions may
	// sum to at most 1.
	FreeRiderFrac float64
	// Schedule is the popularity-churn timeline applied through the
	// demand process (strictly ascending times; see demand.Schedule).
	Schedule demand.Schedule
	// Seed drives the role-assignment RNG stream. Two injectors built
	// from identical configs pick identical dishonest/free-rider sets.
	Seed uint64
}

// Enabled reports whether any misbehavior class is active.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return (c.DishonestFrac > 0 && c.Mult > 0 && c.Mult != 1) ||
		c.FreeRiderFrac > 0 || len(c.Schedule) > 0
}

// Validate checks the configuration's ranges against a catalog size.
// Rejecting bad configurations at construction is deliberate: a negative
// multiplier or an unsorted schedule would otherwise misbehave silently
// deep inside a long run.
func (c *Config) Validate(items int) error {
	switch {
	case c == nil:
		return nil
	case c.DishonestFrac < 0 || c.DishonestFrac > 1 || math.IsNaN(c.DishonestFrac):
		return fmt.Errorf("adversary: dishonest fraction %g outside [0,1]", c.DishonestFrac)
	case c.FreeRiderFrac < 0 || c.FreeRiderFrac > 1 || math.IsNaN(c.FreeRiderFrac):
		return fmt.Errorf("adversary: free-rider fraction %g outside [0,1]", c.FreeRiderFrac)
	case c.DishonestFrac+c.FreeRiderFrac > 1:
		return fmt.Errorf("adversary: dishonest %g + free-rider %g fractions exceed 1", c.DishonestFrac, c.FreeRiderFrac)
	case c.Mult < 0 || math.IsNaN(c.Mult) || math.IsInf(c.Mult, 0):
		return fmt.Errorf("adversary: counter multiplier %g", c.Mult)
	}
	if err := c.Schedule.Validate(items); err != nil {
		return err
	}
	return nil
}

// Tally counts the misbehavior injected into one run and the hardened
// reaction's interventions. It lands in the simulator's Result.
type Tally struct {
	// Assigned roles.
	DishonestNodes int
	FreeRiders     int

	// Injected misbehavior.
	InflatedReports     int // fulfillments whose reported counter was inflated
	RefusedServes       int // fulfillments suppressed by a free-riding holder
	RefusedWrites       int // policy cache writes refused by free-riders
	SuppressedReactions int // free-rider fulfillments that skipped the reaction
	DemandShifts        int // popularity shifts applied from the schedule

	// Hardened-reaction interventions (filled from the policy).
	CountersCapped   int // reports saturated by Hardening.CounterCap
	ReactionsClamped int // mandates withheld by Hardening.ReplicaClamp
}

// Injector is the per-run adversary instance: fixed node roles plus the
// counter-inflation rule. All randomness is spent at construction (role
// assignment from a private stream); the per-event methods are pure, so
// the layer never perturbs the simulator's or the policy's RNG streams.
type Injector struct {
	cfg       Config
	dishonest []bool
	freeRider []bool
}

// New builds the injector for one run over a population of nodes.
// Returns nil when the config disables every misbehavior class, which
// callers use as the "off" signal; items sizes the schedule validation.
func New(cfg *Config, nodes, items int) (*Injector, error) {
	if err := cfg.Validate(items); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	in := &Injector{
		cfg:       *cfg,
		dishonest: make([]bool, nodes),
		freeRider: make([]bool, nodes),
	}
	kD := int(math.Round(cfg.DishonestFrac * float64(nodes)))
	if cfg.Mult <= 0 || cfg.Mult == 1 {
		kD = 0
	}
	kF := int(math.Round(cfg.FreeRiderFrac * float64(nodes)))
	if kD+kF > nodes {
		kF = nodes - kD
	}
	// Pick the kD+kF misbehaving nodes as a uniformly random subset
	// (partial Fisher-Yates over the node ids), dishonest first, then
	// free-riders — disjoint by construction.
	rng := rand.New(rand.NewPCG(cfg.Seed^0xadbad5eed, cfg.Seed*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
	ids := make([]int, nodes)
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < kD+kF; i++ {
		j := i + rng.IntN(nodes-i)
		ids[i], ids[j] = ids[j], ids[i]
		if i < kD {
			in.dishonest[ids[i]] = true
		} else {
			in.freeRider[ids[i]] = true
		}
	}
	return in, nil
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Dishonest reports whether node inflates its query counters.
func (in *Injector) Dishonest(node int) bool { return in.dishonest[node] }

// FreeRider implements core.Misbehavior: whether node consumes without
// serving.
func (in *Injector) FreeRider(node int) bool { return in.freeRider[node] }

// Roles returns the number of dishonest and free-riding nodes.
func (in *Injector) Roles() (dishonest, freeRiders int) {
	for _, d := range in.dishonest {
		if d {
			dishonest++
		}
	}
	for _, f := range in.freeRider {
		if f {
			freeRiders++
		}
	}
	return dishonest, freeRiders
}

// Schedule returns the popularity-churn timeline.
func (in *Injector) Schedule() demand.Schedule { return in.cfg.Schedule }

// Inflate applies the counter multiplier to a reported query count,
// saturating at core.MaxQueryCount so an arbitrary multiplier sustained
// over an arbitrary horizon can never overflow the counter arithmetic.
func (in *Injector) Inflate(queries int) int {
	if queries <= 0 {
		return queries
	}
	v := in.cfg.Mult * float64(queries)
	if v >= float64(core.MaxQueryCount) {
		return core.MaxQueryCount
	}
	return int(v)
}
