package rates

import (
	"fmt"
	"math/rand/v2"

	"impatience/internal/numeric"
	"impatience/internal/parallel"
	"impatience/internal/trace"
)

// DefaultGroups is the number of independent block-group sub-streams a
// ShardedSource decomposes into. The group count — not the shard count —
// defines the canonical contact sequence, so it must stay fixed while
// shards vary; 32 groups keep the serial merge heap shallow (5
// comparisons per contact) while leaving enough parallel slack for any
// realistic core count.
const DefaultGroups = 32

// groupSource streams the sub-process of the block pairs assigned to one
// group (block pair k belongs to group k mod groups): a Poisson clock at
// the group's aggregate rate plus the same two-level endpoint draw as
// Source, with an RNG derived from the parent seed by the group's fixed
// SplitMix64 sub-stream. Distinct groups are independent by
// construction, so any time-ordered merge of all groups reproduces one
// well-defined contact process regardless of how the groups are batched
// onto shards.
type groupSource struct {
	m        *Model
	member   []*numeric.Alias
	duration float64
	total    float64 // this group's aggregate rate
	top      *numeric.Alias
	idx      []int32 // indices into m.pairC
	rng      *rand.Rand
	t        float64
	done     bool
}

func (g *groupSource) Nodes() int        { return g.m.nodes }
func (g *groupSource) Duration() float64 { return g.duration }

func (g *groupSource) Next() (trace.Contact, bool) {
	if g.done {
		return trace.Contact{}, false
	}
	g.t += g.rng.ExpFloat64() / g.total
	if g.t > g.duration {
		g.done = true
		return trace.Contact{}, false
	}
	cd := g.m.pairC[g.idx[g.top.Sample(g.rng)]]
	a, b := samplePair(g.m, g.member, int(cd[0]), int(cd[1]), g.rng)
	return trace.Contact{T: g.t, A: a, B: b}, true
}

// contactLess is the canonical merge order: time, then endpoints
// lexicographically. A contact is exactly its key, so two contacts that
// compare equal are interchangeable — which is why the merged sequence
// is invariant to how the group sources are partitioned.
func contactLess(x, y trace.Contact) bool {
	if x.T != y.T {
		return x.T < y.T
	}
	if x.A != y.A {
		return x.A < y.A
	}
	return x.B < y.B
}

// merged is a k-way merge of independent, individually ordered contact
// sources, ordered by contactLess. It implements trace.Source; each Next
// is one heap pop plus one refill (O(log k)).
type merged struct {
	nodes    int
	duration float64
	srcs     []trace.Source
	heads    []trace.Contact // binary min-heap, parallel to srcs
}

// newMerged primes the heap with each source's first contact; exhausted
// sources drop out immediately.
func newMerged(nodes int, duration float64, srcs []trace.Source) *merged {
	mg := &merged{nodes: nodes, duration: duration}
	for _, s := range srcs {
		if c, ok := s.Next(); ok {
			mg.srcs = append(mg.srcs, s)
			mg.heads = append(mg.heads, c)
		}
	}
	for i := len(mg.heads)/2 - 1; i >= 0; i-- {
		mg.siftDown(i)
	}
	return mg
}

func (mg *merged) Nodes() int        { return mg.nodes }
func (mg *merged) Duration() float64 { return mg.duration }

func (mg *merged) Next() (trace.Contact, bool) {
	if len(mg.heads) == 0 {
		return trace.Contact{}, false
	}
	c := mg.heads[0]
	if nc, ok := mg.srcs[0].Next(); ok {
		mg.heads[0] = nc
	} else {
		last := len(mg.heads) - 1
		mg.heads[0], mg.srcs[0] = mg.heads[last], mg.srcs[last]
		mg.heads, mg.srcs = mg.heads[:last], mg.srcs[:last]
	}
	if len(mg.heads) > 0 {
		mg.siftDown(0)
	}
	return c, true
}

// NextBatch implements trace.BulkSource by repeated concrete Next calls:
// the heap pops happen in the identical order, so the merged sequence is
// unchanged — the bulk seam only removes the per-contact interface
// dispatch between the executor and the merge.
func (mg *merged) NextBatch(buf []trace.Contact) int {
	n := 0
	for n < len(buf) {
		c, ok := mg.Next()
		if !ok {
			break
		}
		buf[n] = c
		n++
	}
	return n
}

func (mg *merged) siftDown(i int) {
	n := len(mg.heads)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && contactLess(mg.heads[l], mg.heads[min]) {
			min = l
		}
		if r < n && contactLess(mg.heads[r], mg.heads[min]) {
			min = r
		}
		if min == i {
			return
		}
		mg.heads[i], mg.heads[min] = mg.heads[min], mg.heads[i]
		mg.srcs[i], mg.srcs[min] = mg.srcs[min], mg.srcs[i]
		i = min
	}
}

// ShardedSource streams the same structured contact process as a merge
// of `groups` independent block-group sub-streams, each with its own
// SplitMix64-derived RNG. Because the groups — not the shards — carry
// the randomness, the sequence is bit-identical however the groups are
// batched: drained serially through Next, or split across workers with
// Partition and re-merged by (T, A, B). It implements trace.Source,
// trace.Reopenable, and trace.Partitionable.
type ShardedSource struct {
	m        *Model
	duration float64
	seed     uint64
	groups   int
	member   []*numeric.Alias
	mg       *merged
	started  bool
}

// NewSharded builds the group-decomposed sampler. groups ≤ 0 selects
// DefaultGroups; the effective count is capped at the number of
// positive-rate block pairs (a group cannot own less than one block
// pair). The contact sequence is a pure function of (model, duration,
// seed, groups) — vary groups and the sequence changes, so hold it fixed
// across runs that must compare digests.
func NewSharded(m *Model, duration float64, seed uint64, groups int) (*ShardedSource, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("rates: duration %g not positive", duration)
	}
	if groups <= 0 {
		groups = DefaultGroups
	}
	if groups > len(m.pairC) {
		groups = len(m.pairC)
	}
	member, err := m.memberAliases()
	if err != nil {
		return nil, err
	}
	return &ShardedSource{m: m, duration: duration, seed: seed, groups: groups, member: member}, nil
}

// Groups returns the effective group count.
func (s *ShardedSource) Groups() int { return s.groups }

// Model returns the rate model the source samples from.
func (s *ShardedSource) Model() *Model { return s.m }

// Nodes implements trace.Source.
func (s *ShardedSource) Nodes() int { return s.m.nodes }

// Duration implements trace.Source.
func (s *ShardedSource) Duration() float64 { return s.duration }

// group builds group g's sub-stream from scratch (alias over its block
// pairs, RNG from the fixed per-group sub-seed).
func (s *ShardedSource) group(g int) (*groupSource, error) {
	gs := &groupSource{m: s.m, member: s.member, duration: s.duration}
	for k := g; k < len(s.m.pairC); k += s.groups {
		gs.idx = append(gs.idx, int32(k))
		gs.total += s.m.pairW[k]
	}
	w := make([]float64, len(gs.idx))
	for i, k := range gs.idx {
		w[i] = s.m.pairW[k]
	}
	top, err := numeric.NewAlias(w)
	if err != nil {
		return nil, fmt.Errorf("rates: group %d table: %w", g, err)
	}
	gs.top = top
	sub := parallel.TrialSeed(s.seed, g)
	gs.rng = rand.New(rand.NewPCG(sub, sub^0x9e3779b97f4a7c15))
	return gs, nil
}

// buildAll constructs every group sub-stream.
func (s *ShardedSource) buildAll() ([]trace.Source, error) {
	out := make([]trace.Source, s.groups)
	for g := 0; g < s.groups; g++ {
		gs, err := s.group(g)
		if err != nil {
			return nil, err
		}
		out[g] = gs
	}
	return out, nil
}

// Next implements trace.Source by lazily merging all groups in-process.
func (s *ShardedSource) Next() (trace.Contact, bool) {
	if s.mg == nil {
		if s.started {
			return trace.Contact{}, false // partitioned away: receiver is drained
		}
		srcs, err := s.buildAll()
		if err != nil {
			// Construction validated everything that can fail here; treat
			// an impossible failure as an empty stream rather than panic.
			s.started = true
			return trace.Contact{}, false
		}
		s.mg = newMerged(s.m.nodes, s.duration, srcs)
		s.started = true
	}
	return s.mg.Next()
}

// NextBatch implements trace.BulkSource: it lazily builds the in-process
// merge exactly like Next, then bulk-fills from it. The group draws and
// the (T, A, B) merge order are identical to the per-contact path —
// NextBatch(buf) followed by Next() resumes mid-stream seamlessly.
func (s *ShardedSource) NextBatch(buf []trace.Contact) int {
	if s.mg == nil {
		if s.started {
			return 0 // partitioned away: receiver is drained
		}
		srcs, err := s.buildAll()
		if err != nil {
			// Same impossible-failure stance as Next: an empty stream.
			s.started = true
			return 0
		}
		s.mg = newMerged(s.m.nodes, s.duration, srcs)
		s.started = true
	}
	return s.mg.NextBatch(buf)
}

// Reopen implements trace.Reopenable.
func (s *ShardedSource) Reopen() (trace.Source, error) {
	return NewSharded(s.m, s.duration, s.seed, s.groups)
}

// Partition implements trace.Partitionable: it deals the group
// sub-streams round-robin into at most max individually ordered sources
// (each itself a merge of its groups) and reports false once the
// receiver has started streaming — a partially drained source cannot
// split without replaying. After a successful Partition the receiver is
// drained; the handed-out sources own the process.
func (s *ShardedSource) Partition(max int) ([]trace.Source, bool) {
	if s.started || max < 1 {
		return nil, false
	}
	if max > s.groups {
		max = s.groups
	}
	all, err := s.buildAll()
	if err != nil {
		return nil, false
	}
	buckets := make([][]trace.Source, max)
	for g, src := range all {
		buckets[g%max] = append(buckets[g%max], src)
	}
	out := make([]trace.Source, max)
	for i, b := range buckets {
		out[i] = newMerged(s.m.nodes, s.duration, b)
	}
	s.started = true
	return out, true
}
