// The block (per-community) fluid limit: Eq. 7 lifted to the structured
// contact models of internal/rates. State is one replica count per
// (community, item); a requester in community k encounters holders of
// item i at rate λ_ki = Σ_l β_kl·x_il, and the Property-2 reaction is
// applied through the homogeneous-equivalent replica count x̂ = λ/µ_eff
// with µ_eff,k = M_k/N (M_k = total meeting rate of a k-node, N = total
// population): both the expected query counter N/x̂ and the fulfillment
// rate µ_eff·x̂ = λ then match the homogeneous model the reaction was
// tuned for. Replicas minted for a k-request land on the nodes k meets
// — community l in proportion β_kl·N_l/M_k — and random-replacement
// deletion keeps each community's cache budget ρN_l exactly conserved.
//
// With one community the dynamics reduce to System (Eq. 7) up to the
// (N−1)/N self-meeting correction.

package meanfield

import (
	"fmt"
	"math"

	"impatience/internal/numeric"
	"impatience/internal/utility"
)

// BlockSystem is the per-community fluid dynamics over a block contact
// model.
type BlockSystem struct {
	Utility utility.Function
	Sizes   []int       // community sizes N_k
	Block   [][]float64 // β_kl: pairwise contact rate between a k-node and an l-node
	Demand  [][]float64 // [community][item] aggregate request rate
	Rho     int         // cache slots per node
	// PsiScale multiplies the reaction, exactly as in System; it should
	// carry the simulator's tuned reaction scale so fluid and event
	// transients run on the same clock. 1 by default.
	PsiScale float64
}

// Communities returns the number of communities.
func (b BlockSystem) Communities() int { return len(b.Sizes) }

// Items returns the catalog size.
func (b BlockSystem) Items() int {
	if len(b.Demand) == 0 {
		return 0
	}
	return len(b.Demand[0])
}

// Nodes returns the total population.
func (b BlockSystem) Nodes() int {
	n := 0
	for _, s := range b.Sizes {
		n += s
	}
	return n
}

// Validate reports structural errors, rejecting non-finite or negative
// rates and demand in the style of rates.ErrModel.
func (b BlockSystem) Validate() error {
	c := len(b.Sizes)
	switch {
	case b.Utility == nil:
		return fmt.Errorf("%w: nil utility", ErrSystem)
	case c == 0:
		return fmt.Errorf("%w: no communities", ErrSystem)
	case b.Rho <= 0:
		return fmt.Errorf("%w: rho=%d", ErrSystem, b.Rho)
	case b.Items() == 0:
		return fmt.Errorf("%w: empty catalog", ErrSystem)
	case math.IsNaN(b.PsiScale) || math.IsInf(b.PsiScale, 0) || b.PsiScale < 0:
		return fmt.Errorf("%w: psi scale %g", ErrSystem, b.PsiScale)
	}
	for k, n := range b.Sizes {
		if n <= 0 {
			return fmt.Errorf("%w: community %d has %d nodes", ErrSystem, k, n)
		}
	}
	if len(b.Block) != c {
		return fmt.Errorf("%w: block matrix has %d rows, %d communities", ErrSystem, len(b.Block), c)
	}
	for k, row := range b.Block {
		if len(row) != c {
			return fmt.Errorf("%w: block row %d has %d entries, want %d", ErrSystem, k, len(row), c)
		}
		for l, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%w: block rate β[%d][%d]=%g", ErrSystem, k, l, v)
			}
		}
	}
	if len(b.Demand) != c {
		return fmt.Errorf("%w: demand has %d rows, %d communities", ErrSystem, len(b.Demand), c)
	}
	items := b.Items()
	for k, row := range b.Demand {
		if len(row) != items {
			return fmt.Errorf("%w: demand row %d has %d items, want %d", ErrSystem, k, len(row), items)
		}
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%w: demand d[%d][%d]=%g", ErrSystem, k, i, v)
			}
		}
	}
	return nil
}

func (b BlockSystem) psiScale() float64 {
	if b.PsiScale > 0 {
		return b.PsiScale
	}
	return 1
}

// meetRate returns M_k, the total meeting rate of one community-k node.
func (b BlockSystem) meetRate(k int) float64 {
	var m float64
	for l, n := range b.Sizes {
		peers := float64(n)
		if l == k {
			peers--
		}
		m += b.Block[k][l] * peers
	}
	return m
}

// At indexes the flat state vector: replica count of item i in
// community k.
func (b BlockSystem) At(x []float64, k, i int) float64 { return x[k*b.Items()+i] }

// HoldRate returns λ_ki: the rate at which one community-k node meets
// holders of item i under state x.
func (b BlockSystem) HoldRate(x []float64, k, i int) float64 {
	var lam float64
	items := b.Items()
	for l := range b.Sizes {
		lam += b.Block[k][l] * math.Max(x[l*items+i], minReplicas)
	}
	return lam
}

// Derivs evaluates the block dynamics; the state layout is
// x[k*Items()+i].
func (b BlockSystem) Derivs(t float64, x, dst []float64) {
	b.derivsInto(t, x, dst, make([]float64, len(dst)), make([]float64, len(dst)))
}

// derivs returns a Derivs closure with reusable flux and holder
// buffers, so the solver's six evaluations per step do not allocate.
func (b BlockSystem) derivs() numeric.Derivs {
	var buf, holders []float64
	return func(t float64, x, dst []float64) {
		if len(buf) != len(dst) {
			buf = make([]float64, len(dst))
			holders = make([]float64, len(dst))
		} else {
			for i := range buf {
				buf[i] = 0
			}
		}
		b.derivsInto(t, x, dst, buf, holders)
	}
}

// derivsInto evaluates the drift. holders is scratch of len(x); it is
// filled with the item-major transpose of max(x, minReplicas) so the
// O(C) hold-rate sum in the hot (k, i) loop reads one contiguous run
// instead of striding by Items() and re-clamping per term. The sum
// order over l is unchanged, so the result is bit-identical to going
// through HoldRate.
func (b BlockSystem) derivsInto(_ float64, x, dst, writesInto, holders []float64) {
	c := len(b.Sizes)
	items := b.Items()
	nTot := float64(b.Nodes())
	scale := b.psiScale()
	for l := 0; l < c; l++ {
		for i := 0; i < items; i++ {
			holders[i*c+l] = math.Max(x[l*items+i], minReplicas)
		}
	}
	// writesInto[l*items+i]: replica-creation flux landing in community l.
	for k := 0; k < c; k++ {
		mk := b.meetRate(k)
		if mk <= 0 {
			continue
		}
		muEff := mk / nTot
		row := b.Block[k]
		for i := 0; i < items; i++ {
			d := b.Demand[k][i]
			if d == 0 {
				continue
			}
			var lam float64
			for l, h := range holders[i*c : i*c+c] {
				lam += row[l] * h
			}
			xhat := lam / muEff
			burst := d * scale * utility.Psi(b.Utility, muEff, nTot, nTot/math.Max(xhat, minReplicas))
			if burst <= 0 {
				continue
			}
			// Replicas land where k's meetings land.
			for l := 0; l < c; l++ {
				peers := float64(b.Sizes[l])
				if l == k {
					peers--
				}
				w := b.Block[k][l] * peers / mk
				if w > 0 {
					writesInto[l*items+i] += burst * w
				}
			}
		}
	}
	for l := 0; l < c; l++ {
		capL := float64(b.Rho * b.Sizes[l])
		var total float64
		for i := 0; i < items; i++ {
			total += writesInto[l*items+i]
		}
		for i := 0; i < items; i++ {
			xi := math.Max(x[l*items+i], minReplicas)
			dst[l*items+i] = writesInto[l*items+i] - xi/capL*total
		}
	}
}

// WelfareOf evaluates community k's welfare rate under state x: the
// pure-P2P closed form with the block-model hold rate,
// Σ_i d_ki·[x_ki/N_k·h(0⁺) + (1−x_ki/N_k)·E h(Exp(λ_ki))].
func (b BlockSystem) WelfareOf(x []float64, k int) float64 {
	items := b.Items()
	nk := float64(b.Sizes[k])
	var u float64
	for i := 0; i < items; i++ {
		d := b.Demand[k][i]
		if d == 0 {
			continue
		}
		frac := math.Min(math.Max(x[k*items+i], 0)/nk, 1)
		g := b.Utility.ExpectedGain(b.HoldRate(x, k, i))
		u += d * (frac*b.Utility.H0() + (1-frac)*g)
	}
	return u
}

// Welfare evaluates the aggregate welfare rate Σ_k U_k(x).
func (b BlockSystem) Welfare(x []float64) float64 {
	var u float64
	for k := range b.Sizes {
		u += b.WelfareOf(x, k)
	}
	return u
}

// UniformStart splits each community's cache budget evenly across the
// catalog.
func (b BlockSystem) UniformStart() []float64 {
	items := b.Items()
	x := make([]float64, len(b.Sizes)*items)
	for k, n := range b.Sizes {
		per := float64(b.Rho*n) / float64(items)
		for i := 0; i < items; i++ {
			x[k*items+i] = per
		}
	}
	return x
}

// Run integrates the block dynamics adaptively from x0 for horizon time
// units; step seeds the controller (0 picks automatically).
func (b BlockSystem) Run(x0 []float64, horizon, step float64) ([]float64, error) {
	stepper, err := b.Stepper(x0, 0, step)
	if err != nil {
		return nil, err
	}
	if err := stepper.AdvanceTo(horizon); err != nil {
		return nil, err
	}
	return append([]float64(nil), stepper.State()...), nil
}

// Stepper validates the system and returns a persistent adaptive
// integrator positioned at (t0, x0), for callers that interleave
// integration with discrete events (the hybrid engine).
func (b BlockSystem) Stepper(x0 []float64, t0, step float64) (*numeric.Stepper, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != len(b.Sizes)*b.Items() {
		return nil, fmt.Errorf("%w: state has %d entries, want %d communities × %d items",
			ErrSystem, len(x0), len(b.Sizes), b.Items())
	}
	for i, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("%w: x0[%d]=%g", ErrSystem, i, v)
		}
	}
	return numeric.NewStepper(b.derivs(), x0, t0, solverOpts(step, true)), nil
}
