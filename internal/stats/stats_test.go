package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev %g", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("median %g", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.P5 != 7 || s.P95 != 7 {
		t.Errorf("single summary %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-1, 10}, {2, 40},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("p=%g: got %g, want %g", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile not NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestMergeTrials(t *testing.T) {
	tt := []float64{0, 10, 20}
	trials := [][]float64{
		{1, 2, 3},
		{3, 4, 5},
	}
	s, err := MergeTrials(tt, trials)
	if err != nil {
		t.Fatalf("MergeTrials: %v", err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if s.Mean[i] != want[i] {
			t.Errorf("mean[%d]=%g, want %g", i, s.Mean[i], want[i])
		}
		if s.P5[i] > s.Mean[i] || s.P95[i] < s.Mean[i] {
			t.Errorf("band inverted at %d", i)
		}
	}
}

func TestMergeTrialsRagged(t *testing.T) {
	if _, err := MergeTrials([]float64{0, 1}, [][]float64{{1}}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestNormalizedLoss(t *testing.T) {
	if got := NormalizedLoss(-6, -5); math.Abs(got-(-20)) > 1e-9 {
		t.Errorf("got %g, want -20", got)
	}
	if got := NormalizedLoss(0.9, 1.0); math.Abs(got-(-10)) > 1e-9 {
		t.Errorf("got %g, want -10", got)
	}
	if got := NormalizedLoss(1.0, 1.0); got != 0 {
		t.Errorf("got %g, want 0", got)
	}
	if !math.IsNaN(NormalizedLoss(1, 0)) {
		t.Error("U_opt=0 should be NaN")
	}
}

// Property: mean lies within [min,max], percentiles ordered.
func TestSummaryInvariantsProperty(t *testing.T) {
	prop := func(raw [9]float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.P5 <= s.P50+1e-9 && s.P50 <= s.P95+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Percentile(p) is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw [7]float64) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Mod(v, 1000)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		// And p=1 equals the max.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Percentile(xs, 1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
