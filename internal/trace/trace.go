// Package trace represents opportunistic contact traces: timestamped
// meetings between pairs of nodes. It provides the in-memory trace type
// used by the simulator, a text serialization format, transforms
// (windowing, node filtering, relabeling), and the empirical statistics
// (pairwise contact rates, inter-contact distributions) that the
// heterogeneous experiments and the memoryless-trace synthesis rely on.
//
// Meetings are instantaneous, matching the paper's simulation premise that
// "meetings are sufficiently long for nodes to complete the protocol
// exchange" (Section 6.1); durations, if present in a source trace, are
// collapsed to the meeting start.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Contact is one meeting: nodes A and B see each other at time T. The
// relation is symmetric; by convention A < B in normalized traces.
type Contact struct {
	T    float64
	A, B int
}

// Trace is a time-ordered sequence of contacts over a fixed node set
// {0, …, Nodes-1} observed during [0, Duration].
type Trace struct {
	Nodes    int
	Duration float64
	Contacts []Contact
}

// ErrInvalid is wrapped by Validate for malformed traces.
var ErrInvalid = errors.New("trace: invalid")

// Validate checks ordering, node ranges and time bounds.
func (tr *Trace) Validate() error {
	if tr.Nodes <= 0 {
		return fmt.Errorf("%w: %d nodes", ErrInvalid, tr.Nodes)
	}
	if tr.Duration <= 0 || math.IsNaN(tr.Duration) {
		return fmt.Errorf("%w: duration %g", ErrInvalid, tr.Duration)
	}
	prev := math.Inf(-1)
	for i, c := range tr.Contacts {
		if c.T < prev {
			return fmt.Errorf("%w: contact %d out of order (%g after %g)", ErrInvalid, i, c.T, prev)
		}
		if c.T < 0 || c.T > tr.Duration {
			return fmt.Errorf("%w: contact %d at t=%g outside [0,%g]", ErrInvalid, i, c.T, tr.Duration)
		}
		if c.A < 0 || c.A >= tr.Nodes || c.B < 0 || c.B >= tr.Nodes || c.A == c.B {
			return fmt.Errorf("%w: contact %d has bad endpoints (%d,%d)", ErrInvalid, i, c.A, c.B)
		}
		prev = c.T
	}
	return nil
}

// Normalize sorts contacts by time and orients each pair so A < B. It
// returns the receiver for chaining.
func (tr *Trace) Normalize() *Trace {
	for i := range tr.Contacts {
		if tr.Contacts[i].A > tr.Contacts[i].B {
			tr.Contacts[i].A, tr.Contacts[i].B = tr.Contacts[i].B, tr.Contacts[i].A
		}
	}
	sort.SliceStable(tr.Contacts, func(i, j int) bool { return tr.Contacts[i].T < tr.Contacts[j].T })
	return tr
}

// Clone returns a deep copy.
func (tr *Trace) Clone() *Trace {
	return &Trace{
		Nodes:    tr.Nodes,
		Duration: tr.Duration,
		Contacts: append([]Contact(nil), tr.Contacts...),
	}
}

// Window returns the sub-trace on [from, to), re-based so time starts at 0.
func (tr *Trace) Window(from, to float64) *Trace {
	out := &Trace{Nodes: tr.Nodes, Duration: to - from}
	for _, c := range tr.Contacts {
		if c.T >= from && c.T < to {
			out.Contacts = append(out.Contacts, Contact{T: c.T - from, A: c.A, B: c.B})
		}
	}
	return out
}

// FilterNodes keeps only contacts between nodes in keep, relabeling them
// 0..len(keep)-1 in the order given. This mirrors the paper's selection of
// the 50 best-covered Infocom participants.
func (tr *Trace) FilterNodes(keep []int) (*Trace, error) {
	relabel := make(map[int]int, len(keep))
	for newID, oldID := range keep {
		if oldID < 0 || oldID >= tr.Nodes {
			return nil, fmt.Errorf("trace: node %d out of range", oldID)
		}
		if _, dup := relabel[oldID]; dup {
			return nil, fmt.Errorf("trace: node %d listed twice", oldID)
		}
		relabel[oldID] = newID
	}
	out := &Trace{Nodes: len(keep), Duration: tr.Duration}
	for _, c := range tr.Contacts {
		a, okA := relabel[c.A]
		b, okB := relabel[c.B]
		if okA && okB {
			out.Contacts = append(out.Contacts, Contact{T: c.T, A: a, B: b})
		}
	}
	return out.Normalize(), nil
}

// PairIndex maps an unordered node pair to a dense index in
// [0, Nodes·(Nodes-1)/2), used by rate matrices and statistics.
func PairIndex(nodes, a, b int) int {
	if a > b {
		a, b = b, a
	}
	// Index of (a,b), a < b, in lexicographic order of pairs.
	return a*(2*nodes-a-1)/2 + (b - a - 1)
}

// NumPairs returns the number of unordered node pairs.
func NumPairs(nodes int) int { return nodes * (nodes - 1) / 2 }

// RateMatrix holds symmetric pairwise contact intensities µ_{m,n}
// (contacts per unit time), stored densely over unordered pairs.
type RateMatrix struct {
	Nodes int
	rates []float64
}

// NewRateMatrix creates a zero rate matrix for the given node count.
func NewRateMatrix(nodes int) *RateMatrix {
	return &RateMatrix{Nodes: nodes, rates: make([]float64, NumPairs(nodes))}
}

// UniformRates builds the homogeneous case µ_{m,n} = mu for all pairs.
func UniformRates(nodes int, mu float64) *RateMatrix {
	rm := NewRateMatrix(nodes)
	for i := range rm.rates {
		rm.rates[i] = mu
	}
	return rm
}

// At returns µ_{a,b}; the diagonal is zero by definition.
func (rm *RateMatrix) At(a, b int) float64 {
	if a == b {
		return 0
	}
	return rm.rates[PairIndex(rm.Nodes, a, b)]
}

// Set assigns µ_{a,b} (symmetric).
func (rm *RateMatrix) Set(a, b int, mu float64) {
	if a == b {
		return
	}
	rm.rates[PairIndex(rm.Nodes, a, b)] = mu
}

// Mean returns the average pairwise rate, the natural plug-in for the µ
// parameter of the reaction function on heterogeneous traces.
func (rm *RateMatrix) Mean() float64 {
	if len(rm.rates) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rm.rates {
		sum += r
	}
	return sum / float64(len(rm.rates))
}

// TotalRate returns Σ over unordered pairs of µ_{a,b}: the aggregate
// meeting rate of the whole system.
func (rm *RateMatrix) TotalRate() float64 {
	var sum float64
	for _, r := range rm.rates {
		sum += r
	}
	return sum
}

// Rates exposes the dense pair-indexed storage (read-only by convention).
func (rm *RateMatrix) Rates() []float64 { return rm.rates }

// EmpiricalRates estimates the pairwise rate matrix of a trace:
// µ̂_{a,b} = (#contacts between a and b)/Duration. This is the memoryless
// approximation the paper computes OPT under for real traces, and the
// input for memoryless trace synthesis (Figure 5c).
func EmpiricalRates(tr *Trace) *RateMatrix {
	rm := NewRateMatrix(tr.Nodes)
	if tr.Duration <= 0 {
		return rm
	}
	for _, c := range tr.Contacts {
		rm.rates[PairIndex(tr.Nodes, c.A, c.B)] += 1 / tr.Duration
	}
	return rm
}

// InterContactTimes returns the gaps between successive meetings of each
// pair, pooled over all pairs that met at least twice. Used to verify the
// burstiness of synthetic traces (a memoryless trace has exponential
// gaps; conference/vehicular traces have heavy-tailed ones).
func InterContactTimes(tr *Trace) []float64 {
	last := make(map[[2]int]float64)
	var gaps []float64
	for _, c := range tr.Contacts {
		a, b := c.A, c.B
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if t0, ok := last[key]; ok {
			gaps = append(gaps, c.T-t0)
		}
		last[key] = c.T
	}
	return gaps
}

// ContactCounts returns the number of contacts per node, a coverage
// measure used to select well-observed nodes.
func ContactCounts(tr *Trace) []int {
	counts := make([]int, tr.Nodes)
	for _, c := range tr.Contacts {
		counts[c.A]++
		counts[c.B]++
	}
	return counts
}

// TopNodes returns the ids of the k nodes with the most contacts,
// breaking ties by lower id, in decreasing-coverage order.
func TopNodes(tr *Trace, k int) []int {
	counts := ContactCounts(tr)
	ids := make([]int, tr.Nodes)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// CoefficientOfVariation returns the CV (stddev/mean) of the pooled
// inter-contact gaps; 1 indicates memoryless, > 1 bursty.
func CoefficientOfVariation(gaps []float64) float64 {
	if len(gaps) < 2 {
		return math.NaN()
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if mean == 0 {
		return math.NaN()
	}
	var ss float64
	for _, g := range gaps {
		d := g - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(gaps)-1)) / mean
}
