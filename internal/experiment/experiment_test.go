package experiment

import (
	"math"
	"strings"
	"testing"

	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// tiny returns a scenario small enough for unit tests.
func tiny() Scenario {
	sc := Default()
	sc.Nodes = 15
	sc.Items = 10
	sc.Rho = 2
	sc.Duration = 1200
	sc.Trials = 2
	return sc
}

func TestScaled(t *testing.T) {
	sc := Default().Scaled(0.2, 0.5)
	if sc.Trials != 3 {
		t.Errorf("trials %d, want 3", sc.Trials)
	}
	if sc.Duration != 2500 {
		t.Errorf("duration %g, want 2500", sc.Duration)
	}
	if Default().Scaled(0.001, 1).Trials != 1 {
		t.Error("trials floor broken")
	}
}

func TestHomogeneousTracesDeterministic(t *testing.T) {
	sc := tiny()
	gen := sc.HomogeneousTraces()
	a, err := gen(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Error("trace generation nondeterministic")
	}
	c, err := gen(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) == len(c.Contacts) && len(a.Contacts) > 0 && a.Contacts[0] == c.Contacts[0] {
		t.Error("different seeds produced identical traces")
	}
}

func TestBuildStaticAllSchemes(t *testing.T) {
	sc := tiny()
	pop := sc.Pop()
	gen := sc.HomogeneousTraces()
	tr, err := gen(1)
	if err != nil {
		t.Fatal(err)
	}
	rates := trace.EmpiricalRates(tr)
	for _, scheme := range AllCompetitors {
		counts, placement, err := buildStatic(sc, scheme, utility.Step{Tau: 10}, pop, rates)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if err := counts.Validate(sc.Nodes, sc.Rho); err != nil {
			t.Errorf("%s infeasible: %v", scheme, err)
		}
		if scheme == SchemeOPT && placement == nil {
			t.Error("OPT should return a concrete placement")
		}
	}
	if _, _, err := buildStatic(sc, "bogus", utility.Step{Tau: 1}, pop, rates); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunComparisonHomogeneous(t *testing.T) {
	sc := tiny()
	cmp, err := sc.RunComparison(utility.Step{Tau: 10}, sc.HomogeneousSources(),
		[]string{SchemeQCR, SchemeOPT, SchemeUNI})
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	if cmp.Utility[SchemeOPT].N != sc.Trials {
		t.Errorf("OPT trials %d", cmp.Utility[SchemeOPT].N)
	}
	if got := cmp.Loss[SchemeOPT].Mean; got != 0 {
		t.Errorf("OPT loss vs itself %g, want 0", got)
	}
	// All utilities positive for the step function.
	for _, s := range cmp.Schemes {
		if cmp.Utility[s].Mean <= 0 {
			t.Errorf("%s mean utility %g", s, cmp.Utility[s].Mean)
		}
	}
}

func TestFigure1Shapes(t *testing.T) {
	tables := Figure1()
	if len(tables) != 3 {
		t.Fatalf("got %d panels", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Columns) != 3 {
			t.Errorf("%s: %d curves", tb.Title, len(tb.Columns))
		}
		for _, c := range tb.Columns {
			// All delay-utilities are non-increasing.
			for i := 1; i < len(c.Y); i++ {
				if c.Y[i] > c.Y[i-1]+1e-12 {
					t.Errorf("%s/%s increases at %d", tb.Title, c.Name, i)
					break
				}
			}
		}
	}
}

func TestFigure2ExponentAgreement(t *testing.T) {
	sc := tiny()
	tb, err := Figure2(sc)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(tb.Columns) != 2 {
		t.Fatalf("columns %d", len(tb.Columns))
	}
	closed, fitted := tb.Columns[0].Y, tb.Columns[1].Y
	for i := range tb.X {
		if tb.X[i] > 1.2 {
			continue // near α→2 caps bind; the fit is noisier
		}
		if math.Abs(closed[i]-fitted[i]) > 0.05*math.Max(0.3, closed[i]) {
			t.Errorf("α=%g: closed %g vs fitted %g", tb.X[i], closed[i], fitted[i])
		}
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1(0.05, 50)
	for _, want := range []string{"Step", "Exponential", "Inverse power", "Negative log"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Errorf("Table 1 has %d lines", len(lines))
	}
}

func TestSweepSmall(t *testing.T) {
	sc := tiny()
	sc.Trials = 1
	tb, err := sc.Sweep("test sweep", "tau", []float64{5, 50},
		func(tau float64) utility.Function { return utility.Step{Tau: tau} },
		sc.HomogeneousSources(),
		[]string{SchemeQCR, SchemeOPT, SchemeUNI})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(tb.X) != 2 {
		t.Errorf("x has %d points", len(tb.X))
	}
	// OPT column dropped (identically zero), QCR and UNI present.
	if len(tb.Columns) != 2 {
		t.Errorf("got %d columns", len(tb.Columns))
	}
	for _, c := range tb.Columns {
		for i, v := range c.Y {
			if math.IsNaN(v) {
				t.Errorf("%s[%d] is NaN", c.Name, i)
			}
		}
	}
}

func TestMeanFieldConvergenceTable(t *testing.T) {
	sc := tiny()
	tb, err := MeanFieldConvergence(sc, utility.Power{Alpha: 0}, 5000, 10)
	if err != nil {
		t.Fatalf("MeanFieldConvergence: %v", err)
	}
	fluid := tb.Columns[0].Y
	opt := tb.Columns[1].Y
	// Fluid welfare approaches the optimum from below.
	last := len(fluid) - 1
	if fluid[last] > opt[last]+1e-9 {
		t.Errorf("fluid %g above optimum %g", fluid[last], opt[last])
	}
	if math.Abs(fluid[last]-opt[last]) > 0.02*math.Abs(opt[last]) {
		t.Errorf("fluid did not converge: %g vs %g", fluid[last], opt[last])
	}
	if fluid[0] > fluid[last] {
		t.Error("welfare did not improve from uniform start")
	}
}

func TestDiscreteVsContinuousTable(t *testing.T) {
	sc := tiny()
	tb, err := DiscreteVsContinuous(sc, utility.Exponential{Nu: 0.2}, nil)
	if err != nil {
		t.Fatalf("DiscreteVsContinuous: %v", err)
	}
	disc := tb.Columns[0].Y
	cont := tb.Columns[1].Y
	// Gap shrinks monotonically along decreasing δ.
	for i := 1; i < len(disc); i++ {
		g0 := math.Abs(disc[i-1] - cont[i-1])
		g1 := math.Abs(disc[i] - cont[i])
		if g1 > g0+1e-9 {
			t.Errorf("gap grew from δ=%g to δ=%g", tb.X[i-1], tb.X[i])
		}
	}
}

func TestConferenceTracesWiring(t *testing.T) {
	cfg := synth.DefaultConference()
	cfg.Nodes = 12
	cfg.Days = 1
	gen := ConferenceTraces(cfg)
	tr, err := gen(3)
	if err != nil {
		t.Fatalf("ConferenceTraces: %v", err)
	}
	if tr.Nodes != 12 {
		t.Errorf("nodes %d", tr.Nodes)
	}
	ml := MemorylessOf(gen)
	tr2, err := ml(3)
	if err != nil {
		t.Fatalf("MemorylessOf: %v", err)
	}
	if tr2.Nodes != 12 || tr2.Duration != tr.Duration {
		t.Error("memoryless header mismatch")
	}
}
