package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomCache builds a fakeCache with arbitrary holdings.
func randomCache(rng *rand.Rand, nodes, items int) *fakeCache {
	c := newFakeCache(nodes, items)
	for n := 0; n < nodes; n++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.3 {
				c.has[[2]int{n, i}] = true
			}
		}
	}
	for i := 0; i < items; i++ {
		if rng.Float64() < 0.5 {
			c.sticky[i] = rng.IntN(nodes)
		}
	}
	return c
}

// Property: a meeting never *creates* mandates; it consumes at most one
// per item (execution or rewriting) and only moves the rest between the
// two nodes involved.
func TestMeetingMandateConservationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		const (
			nodes = 6
			items = 4
		)
		c := randomCache(rng, nodes, items)
		q := &QCR{
			Reaction:       PathReplication(1),
			MandateRouting: rng.IntN(2) == 0,
			Rewriting:      rng.IntN(2) == 0,
			Seed:           seed,
		}
		q.Init(c)
		// Seed random mandates.
		for n := 0; n < nodes; n++ {
			for i := 0; i < items; i++ {
				if rng.Float64() < 0.4 {
					q.addMandates(n, i, rng.IntN(5)+1, 0)
				}
			}
		}
		before := make([]int, items)
		for i := 0; i < items; i++ {
			before[i] = q.MandatesFor(i)
		}
		othersBefore := make(map[[2]int]int)
		a, b := rng.IntN(nodes), (rng.IntN(nodes-1)+1+rng.IntN(nodes))%nodes
		if a == b {
			b = (a + 1) % nodes
		}
		for n := 0; n < nodes; n++ {
			if n == a || n == b {
				continue
			}
			for i := 0; i < items; i++ {
				othersBefore[[2]int{n, i}] = q.count(n, i)
			}
		}
		writesBefore := len(c.writes)
		q.OnMeeting(c, a, b, 1.0)
		for i := 0; i < items; i++ {
			after := q.MandatesFor(i)
			if after > before[i] {
				return false // mandates created from nothing
			}
			if before[i]-after > 1 {
				return false // more than one consumed per item per meeting
			}
		}
		// Consumption must be backed by a write (or rewriting).
		executed := len(c.writes) - writesBefore
		var consumed int
		for i := 0; i < items; i++ {
			consumed += before[i] - q.MandatesFor(i)
		}
		if !q.Rewriting && consumed != executed {
			return false
		}
		if consumed < executed {
			return false
		}
		// Third parties' mandates are untouched.
		for n := 0; n < nodes; n++ {
			if n == a || n == b {
				continue
			}
			for i := 0; i < items; i++ {
				if q.count(n, i) != othersBefore[[2]int{n, i}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: without routing, mandates never move between nodes — each
// node's count per item can only stay or decrease by the executed one.
func TestNoRoutingNeverMovesProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		c := randomCache(rng, 4, 3)
		q := &QCR{Reaction: PathReplication(1), MandateRouting: false, Seed: seed}
		q.Init(c)
		for n := 0; n < 4; n++ {
			for i := 0; i < 3; i++ {
				q.addMandates(n, i, rng.IntN(4), 0)
			}
		}
		beforeA := make(map[int]int)
		beforeB := make(map[int]int)
		for i := 0; i < 3; i++ {
			beforeA[i] = q.count(0, i)
			beforeB[i] = q.count(1, i)
		}
		q.OnMeeting(c, 0, 1, 1)
		for i := 0; i < 3; i++ {
			da := beforeA[i] - q.count(0, i)
			db := beforeB[i] - q.count(1, i)
			if da < 0 || db < 0 {
				return false // gained mandates without routing
			}
			if da+db > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Determinism: identical seeds and meeting sequences produce identical
// mandate states.
func TestQCRDeterministicSequence(t *testing.T) {
	runOnce := func() map[int]int {
		rng := rand.New(rand.NewPCG(9, 9))
		c := randomCache(rng, 5, 4)
		q := &QCR{Reaction: PathReplication(1.5), MandateRouting: true, Seed: 42}
		q.Init(c)
		for step := 0; step < 200; step++ {
			q.OnFulfill(c, step%5, (step+1)%5, step%4, step%7+1, 1, float64(step))
			q.OnMeeting(c, step%5, (step+2)%5, float64(step))
		}
		out := make(map[int]int)
		for i := 0; i < 4; i++ {
			out[i] = q.MandatesFor(i)
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d: %d vs %d mandates", i, a[i], b[i])
		}
	}
}
