package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Digest returns a stable 64-bit FNV-1a hash over every field of the
// Result, including time series and fault tallies. Two runs with the
// same configuration and seed produce the same digest; any behavioral
// drift — an extra fulfillment, a float summed in a different order, a
// reordered bin — changes it. The golden determinism tests in
// internal/experiment use digests to pin the worker-count invariance of
// the parallel trial engine, and to certify that hot-path optimizations
// in this package are behavior-identical.
func (r *Result) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wf(r.Duration)
	wf(r.MeasureStart)
	wf(r.TotalGain)
	wf(r.AvgUtilityRate)
	wi(r.Fulfillments)
	wi(r.Immediate)
	wi(r.Meetings)
	wi(r.ReplicasMade)
	wi(r.Outstanding)
	wf(r.OutstandingCost)
	wi(len(r.FinalCounts))
	for _, c := range r.FinalCounts {
		wi(c)
	}
	wi(len(r.Bins))
	for _, b := range r.Bins {
		wf(b.T0)
		wf(b.T1)
		wf(b.Gain)
		wi(b.Fulfillments)
		wi(b.Mandates)
		wi(len(b.Counts))
		for _, c := range b.Counts {
			wi(c)
		}
	}
	wi(r.Overhead.MetadataMsgs)
	wi(r.Overhead.ContentTransfers)
	wi(r.Overhead.MandateTransfers)
	if t := r.Faults; t != nil {
		wi(t.Crashes)
		wi(t.Rejoins)
		wi(t.TruncatedMeetings)
		wi(t.SkippedContacts)
		wi(t.DroppedArrivals)
		wi(t.ReplicasLost)
		wi(t.StickyLost)
		wi(t.RequestsLost)
		wi(t.MandatesCrashed)
		wi(t.MandatesDropped)
		wi(t.MandatesExpired)
		wi(t.MandatesAbandoned)
		wi(t.StickyReseeded)
	}
	// Gated on non-nil exactly like the fault tally, so an adversaries-off
	// run digests identically to one built before the adversary layer.
	if t := r.Adversary; t != nil {
		wi(t.DishonestNodes)
		wi(t.FreeRiders)
		wi(t.InflatedReports)
		wi(t.RefusedServes)
		wi(t.RefusedWrites)
		wi(t.SuppressedReactions)
		wi(t.DemandShifts)
		wi(t.CountersCapped)
		wi(t.ReactionsClamped)
	}
	// Same nil-gating as the fault and adversary tallies: a run that
	// never touched the hybrid engine digests identically to one built
	// before it existed. Reason is descriptive text and stays out, like
	// the delay instrumentation.
	if t := r.Hybrid; t != nil {
		wi(t.FluidNodes)
		wi(t.BoundaryNodes)
		wi(t.Windows)
		wi(t.Violations)
		wi(t.Demotions)
		wf(t.MaxErr)
		wf(t.FluidFraction)
		b := 0
		if t.FellBack {
			b = 1
		}
		wi(b)
	}
	return h.Sum64()
}
