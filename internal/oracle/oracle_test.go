package oracle

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickSuitePasses runs the CI-sized conformance suite at the default
// seed and requires every check to pass — this is the tier-1 guarantee
// that theory and simulation agree on this machine, not just that
// behavior is unchanged.
func TestQuickSuitePasses(t *testing.T) {
	var lines []string
	rep, err := Check(Config{Progress: func(s string) { lines = append(lines, s) }})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !rep.Pass {
		t.Errorf("quick suite failed:\n%s", rep.Summary())
	}
	if rep.Mode != "quick" {
		t.Errorf("mode = %q, want quick", rep.Mode)
	}
	if rep.Seed != 1 {
		t.Errorf("default seed = %d, want 1", rep.Seed)
	}
	want := []string{
		"meanfield-fixed-point", "greedy-relaxed-sandwich", "stream-vs-materialized",
		"welfare-ladder", "per-item-welfare", "delay-distribution-ks", "qcr-replica-balance",
	}
	if len(rep.Checks) != len(want) {
		t.Fatalf("%d checks, want %d", len(rep.Checks), len(want))
	}
	for i, name := range want {
		c := rep.Checks[i]
		if c.Name != name {
			t.Errorf("check %d = %q, want %q", i, c.Name, name)
		}
		if c.Pass && (c.Effect < 0 || c.Effect > 1) {
			t.Errorf("%s: passing check has out-of-range effect %g", c.Name, c.Effect)
		}
		if len(c.Details) == 0 {
			t.Errorf("%s: no detail lines", c.Name)
		}
		if c.Seed == 0 {
			t.Errorf("%s: no reproduction seed recorded", c.Name)
		}
	}
	if len(lines) != len(want) {
		t.Errorf("%d progress lines, want %d", len(lines), len(want))
	}

	// Round-trip the report through VERIFY.json.
	path := filepath.Join(t.TempDir(), "VERIFY.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if back.Mode != rep.Mode || back.Pass != rep.Pass || len(back.Checks) != len(rep.Checks) {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if !strings.Contains(rep.Summary(), "conformance PASS") {
		t.Errorf("summary misses verdict:\n%s", rep.Summary())
	}
}

// TestNegativeControl proves the gates have statistical power: simulating
// the uniform allocation while asserting the optimal allocation's closed
// form MUST fail the welfare ladder (and its per-item refinement). A
// harness that passes this configuration would pass anything.
func TestNegativeControl(t *testing.T) {
	rep, err := Check(Config{BreakAllocation: true})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Pass {
		t.Fatalf("broken allocation passed the gates — the harness has no power:\n%s", rep.Summary())
	}
	if !rep.Broken {
		t.Error("report does not flag the negative-control mode")
	}
	failed := map[string]bool{}
	for _, c := range rep.Checks {
		if !c.Pass {
			failed[c.Name] = true
			if c.Effect <= 1 {
				t.Errorf("%s failed with effect %g ≤ 1", c.Name, c.Effect)
			}
		}
	}
	for _, name := range []string{"welfare-ladder", "per-item-welfare"} {
		if !failed[name] {
			t.Errorf("%s did not catch the broken allocation", name)
		}
	}
	// The analytic differentials don't involve the simulated allocation
	// and must keep passing — the control breaks one layer, not the world.
	for _, c := range rep.Checks {
		switch c.Name {
		case "meanfield-fixed-point", "greedy-relaxed-sandwich", "stream-vs-materialized", "qcr-replica-balance":
			if !c.Pass {
				t.Errorf("%s failed under the negative control; it should be unaffected", c.Name)
			}
		}
	}
}
