package experiment

import (
	"testing"

	"impatience/internal/faults"
	"impatience/internal/parallel"
	"impatience/internal/synth"
	"impatience/internal/utility"
)

// digestSchemesBatch mirrors digestSchemes but plays the trial through the
// batch executor: one shared contact stream, every scheme in lockstep.
// Comparing the two runners' digests is the equivalence certificate the
// batch conversion rests on — per-scheme results must be bit-identical,
// not statistically close.
func digestSchemesBatch(sc Scenario, gen SourceGen, u utility.Function, schemes []string, series bool, plan func(trial int) *FaultPlan) func(trial int, seed uint64) (uint64, error) {
	return func(trial int, seed uint64) (uint64, error) {
		src, err := gen(seed)
		if err != nil {
			return 0, err
		}
		var p *FaultPlan
		if plan != nil {
			p = plan(trial)
		}
		// mu = 0 selects the empirical mean rate, exactly as
		// digestSchemes computes it from the materialized trace.
		results, err := sc.RunSchemesBatch(schemes, u, src, 0, uint64(trial), series, p)
		if err != nil {
			return 0, err
		}
		var acc uint64
		for _, res := range results {
			acc = mixDigest(acc, res.Digest())
		}
		return acc, nil
	}
}

// TestBatchMatchesSequentialDigests pins the batch executor to the
// sequential per-scheme path at the experiment layer: same trial seeds,
// same fault timelines, same digests, at 1 and 4 workers. The conference
// case exercises meetings truncated at the trace end; the fault case
// exercises churn, loss and mandate expiry (mirroring degradationSweep's
// per-trial fault seeding). CI runs this under -race.
func TestBatchMatchesSequentialDigests(t *testing.T) {
	sc := goldenScenario()

	conf := synth.DefaultConference()
	conf.Nodes = sc.Nodes
	conf.Days = 1
	scConf := sc
	scConf.Duration = float64(conf.Days) * 1440

	faultPlan := func(trial int) *FaultPlan {
		fc := faults.Config{PLoss: 0.3, ChurnRate: 0.001, MeanDowntime: sc.Duration / 100}
		fc.Seed = sc.Seed*69069 + uint64(trial)*127
		return sc.Hardening(&fc)
	}

	cases := []struct {
		name    string
		sc      Scenario
		traces  TraceGen
		sources SourceGen
		u       utility.Function
		schemes []string
		series  bool
		plan    func(trial int) *FaultPlan
	}{
		{"homogeneous", sc, sc.HomogeneousTraces(), sc.HomogeneousSources(),
			utility.Step{Tau: 10}, []string{SchemeQCR, SchemeOPT, SchemeUNI}, false, nil},
		{"conference-truncated-meetings", scConf, ConferenceTraces(conf), ConferenceTraces(conf).Sourced(),
			utility.Step{Tau: 60}, []string{SchemeQCR, SchemeOPT}, false, nil},
		{"fault-timeline", sc, sc.HomogeneousTraces(), sc.HomogeneousSources(),
			utility.Step{Tau: 10}, []string{SchemeQCR, SchemeOPT}, true, faultPlan},
		{"adversary", sc, sc.HomogeneousTraces(), sc.HomogeneousSources(),
			utility.Power{Alpha: 0}, []string{SchemeQCR, SchemeQCRH, SchemeOPT}, true, adversaryPlan(sc)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seq := digestSchemes(tc.sc, tc.traces, tc.u, tc.schemes, tc.series, tc.plan)
			bat := digestSchemesBatch(tc.sc, tc.sources, tc.u, tc.schemes, tc.series, tc.plan)
			ref, err := parallel.RunTrials(tc.sc.Trials, 1, tc.sc.Seed, seq)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 4} {
				got, err := parallel.RunTrials(tc.sc.Trials, w, tc.sc.Seed, bat)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("workers=%d trial %d: batch digest %#x != sequential %#x", w, i, got[i], ref[i])
					}
				}
			}
		})
	}
}
