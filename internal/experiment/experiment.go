// Package experiment contains the evaluation harness: one runner per
// table and figure of the paper, shared by the cmd/agefigures CLI and the
// repository's benchmarks. Each runner plays the relevant simulations (or
// analytic computations) and returns plot.Tables whose rows/series mirror
// what the paper reports.
package experiment

import (
	"fmt"
	"math"
	"math/rand/v2"

	"impatience/internal/alloc"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/parallel"
	"impatience/internal/sim"
	"impatience/internal/stats"
	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// Scenario bundles the simulation parameters shared by the evaluation
// (Section 6.1-6.2 defaults: 50 nodes, 50 items, ρ=5, Pareto ω=1 demand,
// µ=0.05, ≥15 trials with 5%/95% bands).
type Scenario struct {
	Nodes      int
	Items      int
	Rho        int
	Mu         float64 // homogeneous contact rate; also the ψ-tuning plug-in
	Omega      float64 // Pareto popularity exponent
	DemandRate float64 // aggregate requests per minute
	Duration   float64 // minutes
	Trials     int
	Seed       uint64
	// Workers bounds the trial worker pool (0 or less = GOMAXPROCS).
	// Results are bit-identical for every worker count: per-trial seeds
	// are pure functions of (Seed, trial) — see internal/parallel.
	Workers int
	// Shards partitions each trial's lockstep batch across a worker set
	// (sim.RunBatchSharded): the shared contact stream is produced once
	// and every worker steps the scheme runners it owns. ≤ 1 runs the
	// serial executor. Results are bit-identical at every shard count,
	// so Shards is purely a throughput knob — unlike Workers it
	// parallelizes within a trial, which is what the million-node runs
	// (one trial, many schemes) need.
	Shards int
	// QCRScale is the fallback reaction-function proportionality constant,
	// used when burst normalization cannot be computed.
	QCRScale float64
	// QCRBurst is the target mean replicas per fulfillment at the optimal
	// allocation; the reaction scale is normalized per utility so this
	// holds (welfare.ReactionScale). The QCR fixed point is scale-free;
	// this only controls the convergence-speed/variance trade-off.
	QCRBurst   float64
	WarmupFrac float64
	// Hybrid selects the mean-field fast path for the structured-rates
	// runners (RunStructuredComparison, StructuredScale) when
	// Hybrid.Enabled is set: large communities evolve by the fluid limit,
	// only a probe boundary is event-simulated, and the error controller
	// demotes the run to full fidelity when the probes disagree with the
	// fluid prediction (see sim.RunHybrid). ContactSeed and ReactionScale
	// are overwritten per trial by the wiring; the remaining knobs pass
	// through.
	Hybrid sim.HybridOptions
}

// Default returns the paper's evaluation scenario.
func Default() Scenario {
	return Scenario{
		Nodes:      50,
		Items:      50,
		Rho:        5,
		Mu:         0.05,
		Omega:      1,
		DemandRate: 2,
		Duration:   5000,
		Trials:     15,
		Seed:       1,
		QCRScale:   0.1,
		QCRBurst:   0.05,
		WarmupFrac: 0.3,
	}
}

// Scaled returns a cheaper copy for benchmarks and smoke tests: trials
// and duration shrink by the given factors (minimum 1 trial). The trial
// count rounds half-up so scenarios with different Trials shrink
// symmetrically instead of truncating toward zero.
func (sc Scenario) Scaled(trialFrac, durFrac float64) Scenario {
	out := sc
	out.Trials = int(math.Floor(float64(sc.Trials)*trialFrac + 0.5))
	if out.Trials < 1 {
		out.Trials = 1
	}
	out.Duration = sc.Duration * durFrac
	return out
}

// Pop returns the scenario's popularity distribution.
func (sc Scenario) Pop() demand.Popularity {
	return demand.Pareto(sc.Items, sc.Omega, sc.DemandRate)
}

// TraceGen produces the contact trace for one trial. Implementations must
// be deterministic in the seed.
type TraceGen func(seed uint64) (*trace.Trace, error)

// HomogeneousTraces generates memoryless homogeneous contacts (§6.2).
func (sc Scenario) HomogeneousTraces() TraceGen {
	return func(seed uint64) (*trace.Trace, error) {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		return contactGen(sc.Nodes, sc.Mu, sc.Duration, rng)
	}
}

// ConferenceTraces generates Infocom'06-like traces (§6.3). The scenario
// duration is overridden by the trace's three days.
func ConferenceTraces(cfg synth.ConferenceConfig) TraceGen {
	return func(seed uint64) (*trace.Trace, error) {
		return synth.Conference(cfg, rand.New(rand.NewPCG(seed, seed*31+7)))
	}
}

// VehicularTraces generates Cabspotting-like traces (§6.3).
func VehicularTraces(cfg synth.VehicularConfig) TraceGen {
	return func(seed uint64) (*trace.Trace, error) {
		return synth.Vehicular(cfg, rand.New(rand.NewPCG(seed, seed*17+3)))
	}
}

// MemorylessOf wraps a generator, replacing each trace by its memoryless
// counterpart (same pairwise rates, Poisson times — Figure 5c).
func MemorylessOf(gen TraceGen) TraceGen {
	return func(seed uint64) (*trace.Trace, error) {
		tr, err := gen(seed)
		if err != nil {
			return nil, err
		}
		return synth.Memoryless(tr, rand.New(rand.NewPCG(seed^0x5151, seed+13)))
	}
}

// Scheme names, in the paper's order.
const (
	SchemeQCR    = "QCR"
	SchemeQCRWOM = "QCRWOM" // QCR without mandate routing
	SchemeQCRH   = "QCRH"   // QCR with the adversary-hardened reaction
	SchemeOPT    = "OPT"
	SchemeUNI    = "UNI"
	SchemeSQRT   = "SQRT"
	SchemePROP   = "PROP"
	SchemeDOM    = "DOM"
)

// AllCompetitors is the fixed-allocation competitor set of Section 6.1.
var AllCompetitors = []string{SchemeOPT, SchemeUNI, SchemeSQRT, SchemePROP, SchemeDOM}

// buildStatic computes the fixed allocation for a named competitor given
// the empirical rate matrix of the trial's trace. OPT uses the
// heterogeneous submodular greedy under the memoryless approximation
// (exact greedy in the homogeneous case); the others depend only on
// demand.
func buildStatic(sc Scenario, scheme string, u utility.Function, pop demand.Popularity, rates *trace.RateMatrix) (alloc.Counts, *alloc.Placement, error) {
	switch scheme {
	case SchemeUNI:
		return alloc.Uniform(sc.Items, sc.Nodes, sc.Rho), nil, nil
	case SchemeSQRT:
		return alloc.Sqrt(pop.Rates, sc.Nodes, sc.Rho), nil, nil
	case SchemePROP:
		return alloc.Prop(pop.Rates, sc.Nodes, sc.Rho), nil, nil
	case SchemeDOM:
		return alloc.Dom(pop.Rates, sc.Nodes, sc.Rho), nil, nil
	case SchemeOPT:
		ids := make([]int, sc.Nodes)
		for i := range ids {
			ids[i] = i
		}
		het := welfare.Hetero{
			Utility: u,
			Pop:     pop,
			Profile: demand.UniformProfile(sc.Items, sc.Nodes),
			Rates:   rates,
			Clients: ids,
			Servers: ids,
		}
		p, err := het.GreedySubmodular(sc.Rho)
		if err != nil {
			return nil, nil, err
		}
		return p.Counts(), p, nil
	default:
		return nil, nil, fmt.Errorf("experiment: unknown scheme %q", scheme)
	}
}

// reactionScale resolves the burst-normalized reaction proportionality
// constant (falling back to the raw QCRScale knob when normalization is
// unavailable). The QCR policy and the hybrid engine's fluid PsiScale
// both consume it, so fluid and event transients share a clock.
func (sc Scenario) reactionScale(u utility.Function, mu float64) float64 {
	scale := sc.QCRScale
	if sc.QCRBurst > 0 {
		h := welfare.Homogeneous{
			Utility: u, Pop: sc.Pop(), Mu: mu,
			Servers: sc.Nodes, Clients: sc.Nodes,
		}
		if s, err := h.ReactionScale(sc.Rho, sc.QCRBurst); err == nil && s > 0 {
			scale = s
		}
	}
	return scale
}

// qcrPolicy builds the tuned QCR policy for a trial: the Property-2
// reaction with its scale normalized so the mean burst at the optimum is
// sc.QCRBurst replicas per fulfillment, and a per-fulfillment mandate cap
// of |S|/5 against heavy-tailed counter bursts.
func (sc Scenario) qcrPolicy(u utility.Function, mu float64, routing bool, seed uint64) *core.QCR {
	scale := sc.reactionScale(u, mu)
	cap := sc.Nodes / 10
	if cap < 3 {
		cap = 3
	}
	return &core.QCR{
		Reaction:       core.TunedReaction(u, mu, sc.Nodes, scale),
		MandateRouting: routing,
		StrictSource:   true,
		MaxMandates:    cap,
		Seed:           seed,
	}
}

// hardenProfile derives the scenario's default hardened-reaction knobs
// (SchemeQCRH). The counter cap sits at three populations' worth of
// meetings — the honest expectation is E[y] = |S|/x_i ≤ |S|, so the cap
// never binds on honest reports while flattening large forged counters.
// The replica clamp comes from the water-filling optimum: no honest
// trajectory needs an item's supply beyond ~1.5× the largest relaxed
// allocation x̃, so minting past it only ever serves an attacker. α=0.25
// means a forged counter earns at most a quarter of its rise over the
// item's running mean.
func (sc Scenario) hardenProfile(u utility.Function, mu float64) *core.Hardening {
	h := &core.Hardening{
		CounterCap:   3 * sc.Nodes,
		SmoothAlpha:  0.25,
		ReplicaClamp: sc.Nodes,
	}
	w := welfare.Homogeneous{
		Utility: u, Pop: sc.Pop(), Mu: mu,
		Servers: sc.Nodes, Clients: sc.Nodes,
	}
	if xt, err := w.RelaxedOptimal(sc.Rho); err == nil {
		var xmax float64
		for _, x := range xt {
			if x > xmax {
				xmax = x
			}
		}
		if clamp := int(math.Ceil(1.5 * xmax)); clamp >= 1 && clamp < sc.Nodes {
			h.ReplicaClamp = clamp
		}
	}
	return h
}

// RunScheme runs one scheme for one trial on a given trace and returns
// the simulation result. mu is the ψ plug-in rate (mean empirical rate
// for heterogeneous traces).
func (sc Scenario) RunScheme(scheme string, u utility.Function, tr *trace.Trace, rates *trace.RateMatrix, mu float64, trial uint64, series bool) (*sim.Result, error) {
	return sc.runScheme(scheme, u, tr, rates, mu, trial, series, nil)
}

func (sc Scenario) runScheme(scheme string, u utility.Function, tr *trace.Trace, rates *trace.RateMatrix, mu float64, trial uint64, series bool, plan *FaultPlan) (*sim.Result, error) {
	cfg, err := sc.schemeConfig(scheme, u, rates, mu, trial, series, plan)
	if err != nil {
		return nil, err
	}
	cfg.Trace = tr
	return sim.Run(cfg)
}

// schemeConfig builds one scheme's simulation config for one trial,
// leaving the contact input (Trace or Contacts) for the caller to wire:
// runScheme replays a materialized trace, the batch executor streams one
// shared source through every scheme's config. Both paths run the exact
// same config — seeds included — so they are bit-identical.
func (sc Scenario) schemeConfig(scheme string, u utility.Function, rates *trace.RateMatrix, mu float64, trial uint64, series bool, plan *FaultPlan) (sim.Config, error) {
	pop := sc.Pop()
	cfg := sim.Config{
		Rho:        sc.Rho,
		Utility:    u,
		Pop:        pop,
		Seed:       sc.Seed*1_000_003 + trial*101,
		WarmupFrac: sc.WarmupFrac,
	}
	if series {
		cfg.BinWidth = sc.Duration / 100
		cfg.RecordCounts = true
	}
	if plan != nil {
		cfg.Faults = plan.Faults
		cfg.Adversary = plan.Adversary
	}
	switch scheme {
	case SchemeQCR, SchemeQCRWOM, SchemeQCRH:
		pol := sc.qcrPolicy(u, mu, scheme != SchemeQCRWOM, sc.Seed*7919+trial)
		if plan != nil {
			pol.MandateTTL = plan.MandateTTL
			pol.MaxAttempts = plan.MaxAttempts
		}
		if scheme == SchemeQCRH {
			pol.Hardening = sc.hardenProfile(u, mu)
		}
		cfg.Policy = pol
	default:
		counts, placement, err := buildStatic(sc, scheme, u, pop, rates)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Policy = core.Static{Label: scheme}
		cfg.NoSticky = true
		if placement != nil {
			cfg.InitialPlacement = placement
		} else {
			cfg.Initial = counts
		}
	}
	return cfg, nil
}

// Comparison is the outcome of running a scheme set over common trials.
type Comparison struct {
	Schemes []string
	// Utility[s] aggregates the per-trial average utility rates.
	Utility map[string]stats.Summary
	// Loss[s] aggregates the per-trial normalized loss vs OPT in percent
	// (Figures 4–6's y-axis). OPT's own loss is identically 0.
	Loss map[string]stats.Summary
}

// RunComparison runs every scheme on the same per-trial contact streams
// and aggregates utilities and losses vs OPT. Each trial is one shared
// pass of the batch executor (sim.RunBatch): the source is streamed once
// for the empirical rates and once, in lockstep, for every scheme — no
// materialized contact list, bit-identical to the sequential path
// (RunComparisonSequential). Trials execute on the parallel trial engine
// (sc.Workers workers); aggregation happens in trial order, so results
// do not depend on scheduling.
func (sc Scenario) RunComparison(u utility.Function, gen SourceGen, schemes []string) (*Comparison, error) {
	hasOPT := false
	for _, s := range schemes {
		if s == SchemeOPT {
			hasOPT = true
		}
	}
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) (cmpTrial, error) {
		src, err := gen(seed)
		if err != nil {
			return cmpTrial{}, err
		}
		results, err := sc.RunSchemesBatch(schemes, u, src, 0, uint64(trial), false, nil)
		if err != nil {
			return cmpTrial{}, err
		}
		out := cmpTrial{utility: make([]float64, len(schemes))}
		for k, scheme := range schemes {
			out.utility[k] = results[k].AvgUtilityRate
			if scheme == SchemeOPT {
				out.uOpt = results[k].AvgUtilityRate
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return aggregateComparison(schemes, hasOPT, outs), nil
}

// RunComparisonSequential is the legacy comparison path: each trial
// materializes its trace and replays the full contact slice once per
// scheme. It is kept as the A/B baseline for the batch executor — the
// digest-equality tests and cmd/agebench's BenchmarkBatchVsSequential
// ladder measure RunComparison against it; their outputs are
// bit-identical by construction.
func (sc Scenario) RunComparisonSequential(u utility.Function, gen TraceGen, schemes []string) (*Comparison, error) {
	hasOPT := false
	for _, s := range schemes {
		if s == SchemeOPT {
			hasOPT = true
		}
	}
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) (cmpTrial, error) {
		tr, err := gen(seed)
		if err != nil {
			return cmpTrial{}, err
		}
		if tr.Nodes != sc.Nodes {
			return cmpTrial{}, fmt.Errorf("experiment: trace has %d nodes, scenario %d", tr.Nodes, sc.Nodes)
		}
		rates := trace.EmpiricalRates(tr)
		mu := rates.Mean()
		if mu <= 0 {
			return cmpTrial{}, fmt.Errorf("experiment: empty trace")
		}
		out := cmpTrial{utility: make([]float64, len(schemes))}
		for k, scheme := range schemes {
			res, err := sc.RunScheme(scheme, u, tr, rates, mu, uint64(trial), false)
			if err != nil {
				return cmpTrial{}, fmt.Errorf("experiment: %s: %w", scheme, err)
			}
			out.utility[k] = res.AvgUtilityRate
			if scheme == SchemeOPT {
				out.uOpt = res.AvgUtilityRate
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return aggregateComparison(schemes, hasOPT, outs), nil
}

// cmpTrial is one trial's per-scheme utilities (indexed like the schemes
// slice) plus OPT's own, shared by the batch and sequential comparisons.
type cmpTrial struct {
	utility []float64
	uOpt    float64
}

// aggregateComparison folds per-trial utilities into the summary the
// comparison returns; trial order is fixed by the caller, so the float
// reductions are worker-count invariant.
func aggregateComparison(schemes []string, hasOPT bool, outs []cmpTrial) *Comparison {
	perScheme := make(map[string][]float64, len(schemes))
	perLoss := make(map[string][]float64, len(schemes))
	for _, out := range outs {
		for k, scheme := range schemes {
			v := out.utility[k]
			perScheme[scheme] = append(perScheme[scheme], v)
			if hasOPT {
				perLoss[scheme] = append(perLoss[scheme], stats.NormalizedLoss(v, out.uOpt))
			}
		}
	}
	cmp := &Comparison{
		Schemes: append([]string(nil), schemes...),
		Utility: make(map[string]stats.Summary, len(schemes)),
		Loss:    make(map[string]stats.Summary, len(schemes)),
	}
	for _, s := range schemes {
		cmp.Utility[s] = stats.Summarize(perScheme[s])
		if hasOPT {
			cmp.Loss[s] = stats.Summarize(perLoss[s])
		}
	}
	return cmp
}
