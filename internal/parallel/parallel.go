// Package parallel is the deterministic trial engine of the evaluation
// harness. Every artifact of the paper's evaluation (Figures 3-9, the
// ablations and the robustness experiments) averages independent trials,
// and trials are embarrassingly parallel — provided each trial's RNG
// streams depend only on the trial index, never on scheduling. This
// package enforces exactly that discipline:
//
//   - Per-trial seeds are derived from the scenario's base seed with
//     SplitMix64 (TrialSeed), so trial i's seed is a pure function of
//     (base, i). Two trials never share RNG state.
//   - RunTrials executes the trial function over a bounded worker pool
//     and returns results indexed by trial, so any reduction performed
//     by the caller happens in deterministic trial order.
//
// Together these guarantee the worker-count invariance the golden tests
// in internal/experiment pin down: results are bit-identical at
// workers=1, workers=4 and workers=NumCPU.
//
// The unit of parallelism is one whole trial, not one (trial, scheme)
// pair: inside a trial the schemes share a single contact stream and
// run in lockstep on the batch executor (sim.RunBatch), so splitting
// them across workers would force the stream to be either replayed per
// scheme or materialized — the two costs the batch executor exists to
// avoid. Workers therefore scale across trials while each trial stays
// single-pass.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// golden is the SplitMix64 increment (the odd integer closest to
// 2^64/φ); distinct trial indices map to well-separated stream seeds.
const golden = 0x9e3779b97f4a7c15

// SplitMix64 applies the SplitMix64 finalizer to x: an invertible,
// well-mixing permutation of uint64 (Steele, Lea & Flood, OOPSLA'14).
// It is the seed-derivation primitive behind TrialSeed.
func SplitMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TrialSeed derives the RNG seed of one trial from the base (scenario)
// seed: the trial-th output of a SplitMix64 generator started at base.
// The derivation depends only on (base, trial), which is what makes
// trial results independent of worker count and scheduling order.
func TrialSeed(base uint64, trial int) uint64 {
	return SplitMix64(base + uint64(trial+1)*golden)
}

// Workers resolves a requested worker count: values ≤ 0 mean "one worker
// per available CPU" (GOMAXPROCS).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// RunTrials runs fn for trials 0..n-1 over a pool of workers (≤ 0 =
// GOMAXPROCS) and returns the per-trial results in trial order. Each
// invocation receives its trial index and the TrialSeed-derived seed for
// that trial. The first error cancels the remaining trials; among trials
// that errored before cancellation took effect, the lowest trial index
// wins, so a deterministic fn yields a deterministic error regardless of
// scheduling.
func RunTrials[T any](n, workers int, baseSeed uint64, fn func(trial int, seed uint64) (T, error)) ([]T, error) {
	return RunTrialsContext(context.Background(), n, workers, baseSeed, fn)
}

// RunTrialsContext is RunTrials with external cancellation: ctx
// cancellation stops dispatching new trials and is reported as the
// context's error unless a trial failed first.
func RunTrialsContext[T any](ctx context.Context, n, workers int, baseSeed uint64, fn func(trial int, seed uint64) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: %d trials", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for trial := 0; trial < n; trial++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(trial, TrialSeed(baseSeed, trial))
			if err != nil {
				return nil, fmt.Errorf("parallel: trial %d: %w", trial, err)
			}
			out[trial] = v
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next       atomic.Int64 // next trial to claim
		mu         sync.Mutex
		firstErr   error
		firstTrial = -1
		wg         sync.WaitGroup
	)
	fail := func(trial int, err error) {
		mu.Lock()
		if firstTrial < 0 || trial < firstTrial {
			firstTrial, firstErr = trial, err
		}
		mu.Unlock()
		cancel()
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				trial := int(next.Add(1)) - 1
				if trial >= n || cctx.Err() != nil {
					return
				}
				v, err := fn(trial, TrialSeed(baseSeed, trial))
				if err != nil {
					fail(trial, err)
					return
				}
				out[trial] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("parallel: trial %d: %w", firstTrial, firstErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
