package experiment

import (
	"math/rand/v2"
	"runtime"

	"impatience/internal/sim"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// contactBytes is the in-memory cost of one materialized trace.Contact
// (T float64 + two int endpoints): the per-contact floor a materialized
// run pays just to hold the contact list, before any append-doubling
// slack.
const contactBytes = 24

// SourceGen produces the streaming contact source for one trial — the
// lazy counterpart of TraceGen. Implementations must be deterministic in
// the seed.
type SourceGen func(seed uint64) (trace.Source, error)

// HomogeneousSource streams memoryless homogeneous contacts: same model
// as HomogeneousTraces, fused with the simulator instead of materialized.
// The streaming generator has its own RNG stream (see internal/contact),
// so trials are seed-deterministic but deliberately not contact-identical
// to the materialized generator.
func (sc Scenario) HomogeneousSource() SourceGen {
	return func(seed uint64) (trace.Source, error) {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		return contactSource(sc.Nodes, sc.Mu, sc.Duration, rng)
	}
}

// ScaleReport summarizes one fused streaming run at production scale:
// how many contacts flowed through the pipeline, the sampled peak heap
// while it ran, and the floor a materialized contact list alone would
// have cost. PeakHeapBytes < MaterializedBytes is the memory headline
// of the streaming pipeline (EXPERIMENTS.md, "memory footprint").
type ScaleReport struct {
	Nodes    int     `json:"nodes"`
	Duration float64 `json:"duration"`
	Contacts int     `json:"contacts"`
	// PeakHeapBytes is the maximum live heap observed while contacts
	// streamed (sampled every 64k contacts), i.e. the steady-state
	// footprint of the fused run.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// MaterializedBytes is len(contacts)·sizeof(Contact): what the same
	// run would need just to hold the trace before simulating.
	MaterializedBytes uint64  `json:"materialized_bytes"`
	Meetings          int     `json:"meetings"`
	Fulfillments      int     `json:"fulfillments"`
	AvgUtilityRate    float64 `json:"avg_utility_rate"`
}

// meteredSource wraps a Source, counting contacts and sampling the live
// heap as they flow. Sampling runs every sampleEvery contacts so the
// ReadMemStats stop-the-world cost stays invisible next to the
// simulation work between samples.
type meteredSource struct {
	src      trace.Source
	every    int
	produced int
	peak     uint64
}

const sampleEvery = 1 << 16

func newMeteredSource(src trace.Source) *meteredSource {
	m := &meteredSource{src: src, every: sampleEvery}
	// Collect the source's construction garbage (the rate matrix and the
	// alias builder's temporaries are dead once the source exists) so the
	// baseline sample — and the GC pacing of the in-run samples — reflect
	// the live footprint of the fused run, not build-time churn.
	runtime.GC()
	m.sample()
	return m
}

func (m *meteredSource) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > m.peak {
		m.peak = ms.HeapAlloc
	}
}

// sampleHeap reads the current live heap once — the footprint stamp for
// runs with no contact stream to hang per-contact samples on (the hybrid
// scale path).
func sampleHeap() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Nodes implements trace.Source.
func (m *meteredSource) Nodes() int { return m.src.Nodes() }

// Duration implements trace.Source.
func (m *meteredSource) Duration() float64 { return m.src.Duration() }

// Err implements trace.ErrSource by forwarding to the wrapped source.
func (m *meteredSource) Err() error {
	if es, ok := m.src.(trace.ErrSource); ok {
		return es.Err()
	}
	return nil
}

// Next implements trace.Source.
func (m *meteredSource) Next() (trace.Contact, bool) {
	c, ok := m.src.Next()
	if ok {
		m.produced++
		if m.produced%m.every == 0 {
			m.sample()
		}
	}
	return c, ok
}

// StreamingScale runs one fused generate+simulate trial under the tuned
// QCR policy and meters it. This is the scale demonstration behind
// cmd/agebench's headline: at N = 5000 and production durations the
// contact list alone (~N²·µ·T·24 bytes) dwarfs the streaming pipeline's
// O(N²) rate state, so runs that are infeasible materialized complete
// streaming with a flat heap.
func (sc Scenario) StreamingScale(u utility.Function, trial uint64) (*ScaleReport, error) {
	src, err := sc.HomogeneousSource()(sc.Seed + trial)
	if err != nil {
		return nil, err
	}
	m := newMeteredSource(src)
	cfg := sim.Config{
		Rho:        sc.Rho,
		Utility:    u,
		Pop:        sc.Pop(),
		Contacts:   m,
		Policy:     sc.qcrPolicy(u, sc.Mu, true, sc.Seed*7919+trial),
		Seed:       sc.Seed*1_000_003 + trial*101,
		WarmupFrac: sc.WarmupFrac,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	m.sample()
	return &ScaleReport{
		Nodes:             sc.Nodes,
		Duration:          sc.Duration,
		Contacts:          m.produced,
		PeakHeapBytes:     m.peak,
		MaterializedBytes: uint64(m.produced) * contactBytes,
		Meetings:          res.Meetings,
		Fulfillments:      res.Fulfillments,
		AvgUtilityRate:    res.AvgUtilityRate,
	}, nil
}

// ScaleScenario is the N = 5000 streaming demonstration configuration:
// ~15M contacts, whose materialized trace (≈360 MB for the slice alone,
// more during append growth) would dominate a small machine, while the
// fused pipeline holds only the O(N²) alias state. Under the race
// detector the demo shrinks (raceScaleDown) to stay cheap in
// instrumented CI runs.
func ScaleScenario() Scenario {
	sc := Default()
	sc.Nodes = 5000
	sc.Mu = 1e-4
	sc.Duration = 12000
	sc.Trials = 1
	if raceScaleDown {
		sc.Nodes = 800
		sc.Mu = 1e-4
		sc.Duration = 2000
	}
	return sc
}
