// Package adaptive implements the paper's closing open problem (Section
// 7): estimating the delay-utility function implicitly from user
// feedback instead of assuming it known, and re-tuning QCR's reaction
// function online.
//
// The feedback model follows the advertising-revenue interpretation of
// Section 3.2: when a request is fulfilled after waiting `age`, the user
// consumes the content (watches the video, and its ads) with probability
// h(age) — for the exponential family h(t) = e^{-νt}, each fulfillment is
// a Bernoulli(e^{-ν·age}) observation of the unknown ν. The estimator
// matches the empirical consumption count to its expectation,
//
//	Σ_k consumed_k  =  Σ_k e^{-ν̂·age_k},
//
// whose right side is strictly decreasing in ν̂ — a one-dimensional
// moment-matching problem solved by bisection. It is consistent (both
// sides concentrate on Σ e^{-ν·age_k}) and needs no knowledge of the
// fulfillment-delay distribution, which depends on the evolving cache
// allocation.
package adaptive

import (
	"fmt"
	"math"

	"impatience/internal/core"
	"impatience/internal/numeric"
	"impatience/internal/utility"
)

// NuEstimator estimates the decay rate ν of an exponential delay-utility
// from (age, consumed) observations.
type NuEstimator struct {
	ages     []float64
	consumed int
}

// Observe records one fulfillment outcome.
func (e *NuEstimator) Observe(age float64, consumed bool) {
	if age < 0 || math.IsNaN(age) {
		return
	}
	e.ages = append(e.ages, age)
	if consumed {
		e.consumed++
	}
}

// N returns the number of observations.
func (e *NuEstimator) N() int { return len(e.ages) }

// Estimate returns ν̂ and whether enough informative data has been seen.
// It needs at least MinObservations and a consumption count strictly
// between 0 and n (all-consumed or none-consumed pins ν̂ at a boundary).
func (e *NuEstimator) Estimate() (float64, bool) {
	n := len(e.ages)
	if n < MinObservations || e.consumed == 0 || e.consumed == n {
		return 0, false
	}
	target := float64(e.consumed)
	f := func(nu float64) float64 {
		var sum float64
		for _, a := range e.ages {
			sum += math.Exp(-nu * a)
		}
		return sum
	}
	nu, err := numeric.InvertDecreasing(f, target, 0.1)
	if err != nil || nu <= 0 || math.IsNaN(nu) {
		return 0, false
	}
	return nu, true
}

// MinObservations is the minimum sample size before Estimate reports a
// value; below it the moment estimate is too noisy to act on.
const MinObservations = 30

// Policy is a QCR variant that does not know the population's impatience
// a priori: it observes consumption feedback on every fulfillment,
// estimates the exponential decay rate ν, and re-tunes the Property-2
// reaction function as the estimate firms up. Until the first estimate it
// replicates with a neutral constant reaction.
type Policy struct {
	// Feedback reports whether the user consumed content for item
	// delivered after age. In simulation this is Bernoulli(h_true(age)).
	Feedback func(item int, age float64) bool
	// Mu, Servers and Scale tune the reaction exactly as for plain QCR.
	Mu      float64
	Servers int
	Scale   float64
	// RetuneEvery re-estimates after this many new observations (default
	// 50).
	RetuneEvery int
	// Inner carries the QCR mechanics (routing flags, cap, seed). Its
	// Reaction is overwritten by the estimator. Required.
	Inner *core.QCR

	est       NuEstimator
	sinceTune int
	lastNu    float64
	haveNu    bool
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "adaptive-qcr" }

// Init implements core.Policy.
func (p *Policy) Init(c core.Cache) {
	if p.RetuneEvery <= 0 {
		p.RetuneEvery = 50
	}
	if p.Inner.Reaction == nil {
		// Neutral prior: modest constant replication until ν̂ exists.
		p.Inner.Reaction = core.ConstantReaction(math.Max(p.Scale, 0.05))
	}
	p.Inner.Init(c)
}

// LastEstimate returns the most recent ν̂ and whether one exists.
func (p *Policy) LastEstimate() (float64, bool) { return p.lastNu, p.haveNu }

// Observations returns the number of feedback samples consumed.
func (p *Policy) Observations() int { return p.est.N() }

// TotalMandates exposes the inner QCR's pending-mandate count.
func (p *Policy) TotalMandates() int { return p.Inner.TotalMandates() }

// MandatesMoved exposes the inner QCR's routing traffic.
func (p *Policy) MandatesMoved() int { return p.Inner.MandatesMoved() }

// OnFulfill implements core.Policy: records feedback, periodically
// re-tunes, and delegates mandate creation to the inner QCR.
func (p *Policy) OnFulfill(c core.Cache, node, peer, item, queries int, age, now float64) {
	if p.Feedback != nil {
		p.est.Observe(age, p.Feedback(item, age))
		p.sinceTune++
		if p.sinceTune >= p.RetuneEvery {
			p.sinceTune = 0
			if nu, ok := p.est.Estimate(); ok {
				p.lastNu = nu
				p.haveNu = true
				p.Inner.Reaction = core.TunedReaction(
					utility.Exponential{Nu: nu}, p.Mu, p.Servers, p.Scale)
			}
		}
	}
	p.Inner.OnFulfill(c, node, peer, item, queries, age, now)
}

// OnMeeting implements core.Policy.
func (p *Policy) OnMeeting(c Cache, a, b int, now float64) {
	p.Inner.OnMeeting(c, a, b, now)
}

// Cache aliases core.Cache so callers need not import both packages.
type Cache = core.Cache

// Validate reports configuration errors.
func (p *Policy) Validate() error {
	if p.Inner == nil {
		return fmt.Errorf("adaptive: nil inner QCR")
	}
	if p.Mu <= 0 || p.Servers <= 0 {
		return fmt.Errorf("adaptive: µ=%g servers=%d", p.Mu, p.Servers)
	}
	return nil
}
