// Package serve is the online allocation service behind cmd/aged: it
// folds a request firehose into per-item demand estimates, re-solves the
// relaxed welfare optimum (Property 1 water-filling) incrementally when
// demand drifts, caches the per-utility ϕ/ψ tables the QCR reaction
// queries, and snapshots estimator+allocation state for crash recovery.
//
// The serving loop is: Estimator.Fold on every observation window →
// demand.DriftL1 against the demand at the last solve → past the
// threshold, Solver.Solve warm-starts numeric.WaterFillWarm from the
// previous allocation and dual level, falling back to the cold
// numeric.WaterFill whenever the warm result cannot be certified.
package serve

import (
	"fmt"
	"math"

	"impatience/internal/demand"
)

// Estimator folds windowed request counts into per-item EWMA rate
// estimates d̂_i (requests per second). The decay is parameterized by a
// half-life H: after H seconds without requests an item's estimated rate
// has halved, so w = 2^{−Δt/H} per window of length Δt. The struct is not
// goroutine-safe; Server serializes access.
type Estimator struct {
	rates    []float64 // d̂_i, req/s
	halfLife float64   // seconds
	observed uint64    // total requests folded since construction/restore
}

// NewEstimator builds an estimator over a catalog of items with the given
// half-life in seconds.
func NewEstimator(items int, halfLife float64) (*Estimator, error) {
	if items <= 0 {
		return nil, fmt.Errorf("serve: estimator needs a positive catalog size (got %d)", items)
	}
	if !(halfLife > 0) || math.IsInf(halfLife, 1) {
		return nil, fmt.Errorf("serve: estimator half-life %g, want finite > 0", halfLife)
	}
	return &Estimator{rates: make([]float64, items), halfLife: halfLife}, nil
}

// Items returns the catalog size.
func (e *Estimator) Items() int { return len(e.rates) }

// Observed returns the total number of requests folded so far.
func (e *Estimator) Observed() uint64 { return e.observed }

// Fold incorporates one observation window: counts[i] requests for item i
// over window seconds. Every estimate decays by 2^{−window/halfLife} and
// the window's empirical rate counts[i]/window contributes the
// complementary weight, so a constant firehose converges to its true rate
// and an item that goes silent halves every half-life. Counts must be
// non-negative and finite; the estimator is untouched on error.
func (e *Estimator) Fold(counts []float64, window float64) error {
	if len(counts) != len(e.rates) {
		return fmt.Errorf("serve: fold of %d counts into a %d-item estimator", len(counts), len(e.rates))
	}
	if !(window > 0) || math.IsInf(window, 1) {
		return fmt.Errorf("serve: fold window %g sec, want finite > 0", window)
	}
	var total float64
	for i, c := range counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("serve: item %d count %g, want finite ≥ 0", i, c)
		}
		total += c
	}
	w := math.Exp2(-window / e.halfLife)
	for i, c := range counts {
		e.rates[i] = w*e.rates[i] + (1-w)*(c/window)
	}
	e.observed += uint64(total)
	return nil
}

// Snapshot returns the current rate estimates as a demand.Popularity,
// ready to weight a water-filling problem. The slice is a copy.
func (e *Estimator) Snapshot() demand.Popularity {
	return demand.Popularity{Rates: append([]float64(nil), e.rates...)}
}

// restore overwrites the estimator state from a snapshot; used by
// Server.Restore after validating the snapshot's config.
func (e *Estimator) restore(rates []float64, observed uint64) error {
	if len(rates) != len(e.rates) {
		return fmt.Errorf("serve: snapshot has %d rates for a %d-item estimator", len(rates), len(e.rates))
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("serve: snapshot rate[%d]=%g invalid", i, r)
		}
	}
	copy(e.rates, rates)
	e.observed = observed
	return nil
}
