package synth

import (
	"fmt"

	"impatience/internal/demand"
)

// FlashCrowd builds the periodic popularity-churn schedule of the
// robustness experiments: every period minutes the item ranks rotate by
// stride positions, so a formerly cold item inherits the head of the
// Zipf curve — the synthetic stand-in for a breaking-news flash crowd.
// The rotation is cumulative (after items/stride periods the catalog has
// fully cycled) and the schedule is deterministic, so two runs of the
// same configuration replay the identical drift.
func FlashCrowd(base demand.Popularity, period, duration float64, stride int) (demand.Schedule, error) {
	switch {
	case base.Items() == 0:
		return nil, fmt.Errorf("synth: flash crowd on empty catalog")
	case !(period > 0):
		return nil, fmt.Errorf("synth: flash-crowd period %g", period)
	case !(duration > 0):
		return nil, fmt.Errorf("synth: flash-crowd duration %g", duration)
	case stride == 0:
		return nil, fmt.Errorf("synth: flash-crowd stride 0 (no churn)")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	n := base.Items()
	cur := base.Clone()
	var out demand.Schedule
	for t := period; t < duration; t += period {
		next := demand.Popularity{Rates: make([]float64, n)}
		k := ((stride % n) + n) % n
		for i, d := range cur.Rates {
			next.Rates[(i+k)%n] = d
		}
		cur = next
		out = append(out, demand.Shift{T: t, Pop: cur.Clone()})
	}
	if err := out.Validate(n); err != nil {
		return nil, err
	}
	return out, nil
}
