package rates

import (
	"math/rand/v2"
	"sort"
	"testing"

	"impatience/internal/contact"
	"impatience/internal/stats"
	"impatience/internal/trace"
)

// The statistical-equivalence suite: the hierarchical two-level samplers
// (Source and ShardedSource) must be indistinguishable from the dense
// alias sampler (contact.NewStream over DenseRates) on the same rate
// matrix. Gates are deliberately loose (α = 0.001 with fixed seeds) so
// they only fire on real distributional defects, not sampling noise.

// equivModels returns the small-N models the suite checks: one per
// structured kind, all within the dense sampler's comfortable range.
func equivModels(t *testing.T) map[string]*Model {
	t.Helper()
	community, err := NewCommunity(CommunityConfig{Nodes: 60, Communities: 4, In: 0.5, Out: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHubSpoke(HubSpokeConfig{Nodes: 60, Hubs: 6, HubHub: 0.4, HubSpoke: 0.15, SpokeSpoke: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := NewDistanceKernel(DistanceConfig{
		Nodes: 60, CellsX: 3, CellsY: 3, Width: 3000, Height: 3000, Mu0: 0.3, Lambda: 800, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A weighted block model so the heterogeneous member tables (and the
	// same-community pair rejection) are exercised, not just uniform ones.
	weights := make([]float64, 48)
	wrng := rand.New(rand.NewPCG(3, 9))
	for i := range weights {
		weights[i] = 0.2 + wrng.Float64()*2
	}
	weighted, err := New([]int{20, 16, 12}, [][]float64{
		{0.6, 0.05, 0.01},
		{0.05, 0.8, 0.02},
		{0.01, 0.02, 0.4},
	}, weights)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Model{
		"community": community,
		"hubspoke":  hub,
		"distance":  dist,
		"weighted":  weighted,
	}
}

// pairCounts drains a source and histograms contacts by dense pair index.
func pairCounts(t *testing.T, src trace.Source, nodes int) []float64 {
	t.Helper()
	counts := make([]float64, trace.NumPairs(nodes))
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		counts[trace.PairIndex(nodes, c.A, c.B)]++
	}
	return counts
}

// TestPairMarginalChiSquare runs both chi-square gates per model: each
// hierarchical sampler against the analytic pair distribution (GOF), and
// hierarchical vs dense head-to-head (two-sample homogeneity). The
// dense sampler also passes its own GOF gate, pinning that the reference
// itself is sound.
func TestPairMarginalChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical gates draw ~10⁵ contacts per model")
	}
	for name, m := range equivModels(t) {
		t.Run(name, func(t *testing.T) {
			total := m.TotalRate()
			duration := 150000 / total // ~150k contacts from each sampler
			rm, err := m.DenseRates()
			if err != nil {
				t.Fatal(err)
			}
			dense, err := contact.NewStream(rm, duration, rand.New(rand.NewPCG(101, 202)))
			if err != nil {
				t.Fatal(err)
			}
			hier, err := NewSource(m, duration, 11)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := NewSharded(m, duration, 13, 0)
			if err != nil {
				t.Fatal(err)
			}

			denseCounts := pairCounts(t, dense, m.Nodes())
			hierCounts := pairCounts(t, hier, m.Nodes())
			shardCounts := pairCounts(t, sharded, m.Nodes())

			sum := func(cs []float64) float64 {
				var s float64
				for _, c := range cs {
					s += c
				}
				return s
			}
			expected := func(draws float64) []float64 {
				exp := make([]float64, trace.NumPairs(m.Nodes()))
				for idx := range exp {
					a, b := trace.PairFromIndex(m.Nodes(), idx)
					exp[idx] = m.RateAt(a, b) / total * draws
				}
				return exp
			}
			for sampler, counts := range map[string][]float64{
				"dense": denseCounts, "hierarchical": hierCounts, "sharded": shardCounts,
			} {
				stat, df, err := stats.ChiSquareGOF(counts, expected(sum(counts)))
				if err != nil {
					t.Fatalf("%s GOF: %v", sampler, err)
				}
				if crit := stats.ChiSquareCritical(0.001, df); stat > crit {
					t.Errorf("%s sampler fails GOF vs analytic marginals: χ² %.1f > crit %.1f (df %d)",
						sampler, stat, crit, df)
				}
			}
			for sampler, counts := range map[string][]float64{
				"hierarchical": hierCounts, "sharded": shardCounts,
			} {
				stat, df, err := stats.ChiSquareTwoSample(counts, denseCounts)
				if err != nil {
					t.Fatalf("%s two-sample: %v", sampler, err)
				}
				if crit := stats.ChiSquareCritical(0.001, df); stat > crit {
					t.Errorf("%s vs dense homogeneity: χ² %.1f > crit %.1f (df %d)",
						sampler, stat, crit, df)
				}
			}
		})
	}
}

// TestInterContactKS runs the KS gates on inter-contact times. Globally,
// every sampler's event gaps must be Exp(TotalRate) — for the sharded
// source this is a genuine test that merging 32 independent Poisson
// sub-streams reassembles the superposed process. Per pair, the gaps of
// a specific pair's contacts must be Exp(RateAt(a,b)) under every
// sampler, which exercises the endpoint draw jointly with the clock.
func TestInterContactKS(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical gates draw ~10⁵ contacts per model")
	}
	m, err := NewCommunity(CommunityConfig{Nodes: 40, Communities: 4, In: 0.6, Out: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	total := m.TotalRate()
	duration := 200000 / total
	rm, err := m.DenseRates()
	if err != nil {
		t.Fatal(err)
	}
	// Pairs under watch: an intra-community pair and a cross pair.
	watch := [][2]int{{0, 1}, {0, m.Nodes() - 1}}

	type gapSet struct {
		global []float64
		pair   [][]float64
	}
	collect := func(src trace.Source) gapSet {
		gs := gapSet{pair: make([][]float64, len(watch))}
		prev := 0.0
		prevPair := make([]float64, len(watch))
		for i := range prevPair {
			prevPair[i] = -1
		}
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			gs.global = append(gs.global, c.T-prev)
			prev = c.T
			for i, w := range watch {
				if (c.A == w[0] && c.B == w[1]) || (c.A == w[1] && c.B == w[0]) {
					if prevPair[i] >= 0 {
						gs.pair[i] = append(gs.pair[i], c.T-prevPair[i])
					}
					prevPair[i] = c.T
				}
			}
		}
		return gs
	}

	dense, err := contact.NewStream(rm, duration, rand.New(rand.NewPCG(55, 66)))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewSource(m, duration, 17)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(m, duration, 19, 0)
	if err != nil {
		t.Fatal(err)
	}
	for sampler, src := range map[string]trace.Source{
		"dense": dense, "hierarchical": hier, "sharded": sharded,
	} {
		gs := collect(src)
		// Subsample the global gaps: KSCritical's finite-n threshold at
		// full n is so tight that float discretization noise can trip it;
		// 20k gaps give plenty of power at α=0.001.
		gaps := gs.global
		if len(gaps) > 20000 {
			stride := len(gaps) / 20000
			sub := make([]float64, 0, 20000)
			for i := 0; i < len(gaps); i += stride {
				sub = append(sub, gaps[i])
			}
			gaps = sub
		}
		d := stats.KSExponential(gaps, total)
		if crit := stats.KSCritical(0.001, len(gaps)); d > crit {
			t.Errorf("%s: global inter-contact KS %g > crit %g (n=%d)", sampler, d, crit, len(gaps))
		}
		for i, w := range watch {
			rate := m.RateAt(w[0], w[1])
			if len(gs.pair[i]) < 50 {
				t.Fatalf("%s: pair %v produced only %d gaps — scenario too thin", sampler, w, len(gs.pair[i]))
			}
			d := stats.KSExponential(gs.pair[i], rate)
			if crit := stats.KSCritical(0.001, len(gs.pair[i])); d > crit {
				t.Errorf("%s: pair %v inter-contact KS %g > crit %g (n=%d)", sampler, w, d, crit, len(gs.pair[i]))
			}
		}
	}
}

// TestSourceStreamContract checks the trace.Source contract mechanics on
// every structured sampler: time-ordered, within duration, valid
// endpoints, and a sorted A < B convention; plus Reopen bit-equality.
func TestSourceStreamContract(t *testing.T) {
	for name, m := range equivModels(t) {
		src, err := NewSource(m, 200, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		re, err := src.Reopen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prev := 0.0
		n := 0
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			n++
			if err := trace.CheckStreamContact(c, prev, m.Nodes(), 200); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if c.A >= c.B {
				t.Fatalf("%s: endpoints not sorted: (%d,%d)", name, c.A, c.B)
			}
			prev = c.T
			rc, ok := re.Next()
			if !ok || rc != c {
				t.Fatalf("%s: reopened stream diverged at contact %d (%v vs %v)", name, n, rc, c)
			}
		}
		if _, ok := re.Next(); ok {
			t.Fatalf("%s: reopened stream longer than original", name)
		}
		if n == 0 {
			t.Fatalf("%s: empty stream", name)
		}
	}
}

// TestGapsAreSorted is a guard on the test harness itself: KSStatistic
// requires no ordering, but KSExponential sorts internally — make sure
// the collected per-pair gaps are all positive, which the exponential
// CDF assumes.
func TestGapsAreSorted(t *testing.T) {
	m, err := NewCommunity(CommunityConfig{Nodes: 20, Communities: 2, In: 0.8, Out: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(m, 500, 23)
	if err != nil {
		t.Fatal(err)
	}
	var ts []float64
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		ts = append(ts, c.T)
	}
	if !sort.Float64sAreSorted(ts) {
		t.Fatal("contact times not sorted")
	}
}
