package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/alloc"
	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/trace"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+3)) }

// smallTrace builds a homogeneous contact trace for fast tests.
func smallTrace(t *testing.T, nodes int, mu, duration float64, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := contact.GenerateHomogeneous(nodes, mu, duration, newRNG(seed))
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return tr
}

func baseConfig(t *testing.T, tr *trace.Trace, pol core.Policy) Config {
	t.Helper()
	return Config{
		Rho:     3,
		Utility: utility.Step{Tau: 10},
		Pop:     demand.Pareto(10, 1, 2),
		Trace:   tr,
		Policy:  pol,
		Seed:    1,
	}
}

func TestValidation(t *testing.T) {
	tr := smallTrace(t, 10, 0.05, 100, 1)
	good := baseConfig(t, tr, core.Static{})
	bads := []func(*Config){
		func(c *Config) { c.Utility = nil },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Trace = nil },
		func(c *Config) { c.Rho = 0 },
		func(c *Config) { c.Pop = demand.Popularity{} },
		func(c *Config) { c.WarmupFrac = 1.5 },
		func(c *Config) { c.Utility = utility.NegLog{} }, // unbounded h(0+)
		func(c *Config) { c.Pop = demand.Pareto(1000, 1, 1) },
	}
	for i, mod := range bads {
		cfg := good
		mod(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestStaticAllocationStaysFixed(t *testing.T) {
	tr := smallTrace(t, 10, 0.05, 500, 2)
	cfg := baseConfig(t, tr, core.Static{Label: "uni"})
	cfg.NoSticky = true
	initial := alloc.Uniform(10, 10, 3)
	cfg.Initial = initial
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range initial {
		if res.FinalCounts[i] != initial[i] {
			t.Errorf("item %d: count changed %d → %d under static policy", i, initial[i], res.FinalCounts[i])
		}
	}
	if res.ReplicasMade != 0 {
		t.Errorf("static run made %d replicas", res.ReplicasMade)
	}
}

func TestGainsAreRecorded(t *testing.T) {
	tr := smallTrace(t, 20, 0.05, 1000, 3)
	cfg := baseConfig(t, tr, core.Static{})
	cfg.NoSticky = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Fulfillments == 0 {
		t.Fatal("no fulfillments in a dense trace")
	}
	if res.TotalGain <= 0 {
		t.Errorf("step-utility total gain %g, want > 0", res.TotalGain)
	}
	if res.AvgUtilityRate <= 0 {
		t.Errorf("avg utility rate %g", res.AvgUtilityRate)
	}
	if res.Meetings != len(tr.Contacts) {
		t.Errorf("meetings %d, want %d", res.Meetings, len(tr.Contacts))
	}
}

// The observed utility rate of a static allocation must match the
// analytic social welfare (Eq. 5) within sampling noise — this ties the
// whole simulator to the theory.
func TestObservedMatchesAnalyticWelfare(t *testing.T) {
	const (
		nodes = 25
		mu    = 0.05
		rho   = 3
		items = 10
	)
	tr := smallTrace(t, nodes, mu, 6000, 4)
	pop := demand.Pareto(items, 1, 2)
	counts := alloc.Sqrt(pop.Rates, nodes, rho)
	cfg := Config{
		Rho: rho, Utility: utility.Step{Tau: 5}, Pop: pop,
		Trace: tr, Policy: core.Static{}, Initial: counts,
		NoSticky: true, Seed: 9,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := welfare.Homogeneous{
		Utility: cfg.Utility, Pop: pop, Mu: mu,
		Servers: nodes, Clients: nodes, PureP2P: true,
	}
	want := h.WelfareCounts(counts)
	got := res.AvgUtilityRate
	if math.Abs(got-want) > 0.08*math.Abs(want) {
		t.Errorf("observed %g vs analytic %g (>8%% off)", got, want)
	}
}

func TestImmediateFulfillment(t *testing.T) {
	// Single node, no contacts: every request for a cached item is
	// immediate; requests for others stay outstanding.
	tr := &trace.Trace{Nodes: 1, Duration: 1000}
	pop := demand.Uniform(2, 1)
	cfg := Config{
		Rho: 1, Utility: utility.Step{Tau: 10}, Pop: pop,
		Trace: tr, Policy: core.Static{},
		Initial:  alloc.Counts{1, 0},
		NoSticky: true, Seed: 5, WarmupFrac: -1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Immediate == 0 {
		t.Error("no immediate fulfillments")
	}
	if res.Immediate != res.Fulfillments {
		t.Errorf("non-immediate fulfillments without any contacts: %d vs %d", res.Fulfillments, res.Immediate)
	}
	if res.Outstanding == 0 {
		t.Error("requests for the uncached item should stay outstanding")
	}
	// Every immediate fulfillment earns exactly h(0+) = 1.
	if math.Abs(res.TotalGain-float64(res.Immediate)) > 1e-9 {
		t.Errorf("gain %g != immediate count %d", res.TotalGain, res.Immediate)
	}
}

func TestStickyReplicasNeverLost(t *testing.T) {
	tr := smallTrace(t, 15, 0.08, 2000, 6)
	items := 15
	q := &core.QCR{
		Reaction:       core.TunedReaction(utility.Step{Tau: 5}, 0.08, 15, 1),
		MandateRouting: true,
		Seed:           3,
	}
	cfg := Config{
		Rho: 3, Utility: utility.Step{Tau: 5}, Pop: demand.Pareto(items, 1, 2),
		Trace: tr, Policy: q, Seed: 11,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, c := range res.FinalCounts {
		if c < 1 {
			t.Errorf("item %d lost all replicas despite sticky pinning", i)
		}
	}
	if res.ReplicasMade == 0 {
		t.Error("QCR made no replicas at all")
	}
}

func TestCapacityInvariant(t *testing.T) {
	tr := smallTrace(t, 12, 0.08, 1500, 7)
	q := &core.QCR{
		Reaction:       core.PathReplication(1),
		MandateRouting: true,
		Seed:           5,
	}
	cfg := Config{
		Rho: 2, Utility: utility.Exponential{Nu: 0.2}, Pop: demand.Pareto(12, 1, 2),
		Trace: tr, Policy: q, Seed: 13,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total := res.FinalCounts.Total(); total > 12*2 {
		t.Errorf("total replicas %d exceed capacity %d", total, 24)
	}
	if err := res.FinalCounts.Validate(12, 2); err != nil {
		t.Errorf("final allocation infeasible: %v", err)
	}
}

func TestBinsSeries(t *testing.T) {
	tr := smallTrace(t, 10, 0.05, 400, 8)
	cfg := baseConfig(t, tr, core.Static{})
	cfg.NoSticky = true
	cfg.BinWidth = 50
	cfg.RecordCounts = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Bins) != 8 {
		t.Fatalf("got %d bins, want 8", len(res.Bins))
	}
	var gain float64
	var fuls int
	for k, b := range res.Bins {
		if b.T0 != float64(k)*50 || b.T1 != float64(k+1)*50 {
			t.Errorf("bin %d spans [%g,%g)", k, b.T0, b.T1)
		}
		gain += b.Gain
		fuls += b.Fulfillments
		if b.Counts == nil {
			t.Errorf("bin %d missing counts snapshot", k)
		}
	}
	if fuls == 0 {
		t.Error("series recorded no fulfillments")
	}
	// Bins cover the whole run (no warmup trim in series).
	if gain < res.TotalGain-1e-9 {
		t.Errorf("binned gain %g below measured %g", gain, res.TotalGain)
	}
}

func TestDeterminism(t *testing.T) {
	tr := smallTrace(t, 12, 0.06, 800, 9)
	mk := func() *Result {
		q := &core.QCR{Reaction: core.PathReplication(1), MandateRouting: true, Seed: 21}
		cfg := Config{
			Rho: 2, Utility: utility.Step{Tau: 8}, Pop: demand.Pareto(10, 1, 2),
			Trace: tr, Policy: q, Seed: 22,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.TotalGain != b.TotalGain || a.Fulfillments != b.Fulfillments || a.ReplicasMade != b.ReplicasMade {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestDemandSwitch(t *testing.T) {
	tr := smallTrace(t, 10, 0.1, 2000, 10)
	newPop := demand.Popularity{Rates: make([]float64, 10)}
	newPop.Rates[9] = 2 // all demand flips to the least popular item
	q := &core.QCR{Reaction: core.PathReplication(1), MandateRouting: true, Seed: 31}
	cfg := Config{
		Rho: 2, Utility: utility.Step{Tau: 5}, Pop: demand.Pareto(10, 1, 2),
		Trace: tr, Policy: q, Seed: 32,
		DemandSwitch: &newPop, DemandSwitchTime: 500,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// After the switch, QCR should have grown item 9 well beyond its
	// single sticky replica.
	if res.FinalCounts[9] < 3 {
		t.Errorf("QCR did not adapt to the demand flip: item 9 has %d replicas", res.FinalCounts[9])
	}
}

// The headline integration test: with the Property-2 reaction function,
// QCR's time-average allocation approaches the optimal allocation, and
// its realized utility approaches the optimal static allocation's.
func TestQCRConvergesTowardOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const (
		nodes = 30
		items = 20
		mu    = 0.05
		rho   = 3
	)
	f := utility.Power{Alpha: 0}
	pop := demand.Pareto(items, 1, 2)
	h := welfare.Homogeneous{Utility: f, Pop: pop, Mu: mu, Servers: nodes, Clients: nodes, PureP2P: true}
	opt, err := h.GreedyOptimal(rho)
	if err != nil {
		t.Fatal(err)
	}

	var qcrGain, optGain float64
	const trials = 3
	for trial := uint64(0); trial < trials; trial++ {
		tr := smallTrace(t, nodes, mu, 8000, 40+trial)
		q := &core.QCR{
			Reaction:       core.TunedReaction(f, mu, nodes, 0.1),
			MandateRouting: true,
			Seed:           trial,
		}
		cfg := Config{
			Rho: rho, Utility: f, Pop: pop, Trace: tr, Policy: q,
			Seed: 100 + trial, WarmupFrac: 0.3,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		qcrGain += res.AvgUtilityRate / trials

		cfgO := Config{
			Rho: rho, Utility: f, Pop: pop, Trace: tr, Policy: core.Static{Label: "opt"},
			Initial: opt, NoSticky: true, Seed: 200 + trial, WarmupFrac: 0.3,
		}
		resO, err := Run(cfgO)
		if err != nil {
			t.Fatal(err)
		}
		optGain += resO.AvgUtilityRate / trials
	}
	// Waiting-cost utilities are negative: "within 25% of OPT" means
	// qcrGain ≥ optGain − 0.25·|optGain| = 1.25·optGain.
	if qcrGain < 1.25*optGain {
		t.Errorf("QCR %g too far from OPT %g", qcrGain, optGain)
	}
	t.Logf("QCR %.4f vs OPT %.4f (loss %.1f%%)", qcrGain, optGain, 100*(qcrGain-optGain)/math.Abs(optGain))
}
