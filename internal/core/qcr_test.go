package core

import (
	"math"
	"testing"

	"impatience/internal/utility"
)

// fakeCache is a minimal core.Cache for protocol-level tests.
type fakeCache struct {
	nodes, items int
	has          map[[2]int]bool
	sticky       map[int]int
	writeOK      bool
	writes       [][2]int
}

func newFakeCache(nodes, items int) *fakeCache {
	return &fakeCache{
		nodes: nodes, items: items,
		has:     make(map[[2]int]bool),
		sticky:  make(map[int]int),
		writeOK: true,
	}
}

func (f *fakeCache) Nodes() int        { return f.nodes }
func (f *fakeCache) Items() int        { return f.items }
func (f *fakeCache) Has(n, i int) bool { return f.has[[2]int{n, i}] }
func (f *fakeCache) StickyNode(item int) int {
	if n, ok := f.sticky[item]; ok {
		return n
	}
	return -1
}
func (f *fakeCache) Count(item int) int {
	var c int
	for n := 0; n < f.nodes; n++ {
		if f.Has(n, item) {
			c++
		}
	}
	return c
}
func (f *fakeCache) Write(n, i int) bool {
	if !f.writeOK || f.Has(n, i) {
		return false
	}
	f.has[[2]int{n, i}] = true
	f.writes = append(f.writes, [2]int{n, i})
	return true
}

func newQCR(routing bool) *QCR {
	q := &QCR{
		Reaction:       PathReplication(1),
		MandateRouting: routing,
		Seed:           7,
	}
	return q
}

func TestStaticPolicyIsInert(t *testing.T) {
	c := newFakeCache(3, 3)
	s := Static{}
	s.Init(c)
	s.OnFulfill(c, 0, 1, 2, 5, 0, 1.0)
	s.OnMeeting(c, 0, 1, 1.0)
	if len(c.writes) != 0 {
		t.Error("static policy wrote to the cache")
	}
	if s.Name() != "static" {
		t.Errorf("Name=%q", s.Name())
	}
	if (Static{Label: "uni"}).Name() != "uni" {
		t.Error("label ignored")
	}
}

func TestTunedReactionMatchesPsi(t *testing.T) {
	f := utility.Step{Tau: 10}
	r := TunedReaction(f, 0.05, 50, 1)
	for _, y := range []int{1, 3, 10, 100} {
		want := utility.Psi(f, 0.05, 50, float64(y))
		if got := r(y); math.Abs(got-want) > 1e-12 {
			t.Errorf("y=%d: got %g, want %g", y, got, want)
		}
	}
	if r(0) != 0 {
		t.Error("ψ(0) must be 0 (immediate fulfillment spawns no mandates)")
	}
	scaled := TunedReaction(f, 0.05, 50, 3)
	if math.Abs(scaled(5)-3*r(5)) > 1e-12 {
		t.Error("scale not applied")
	}
}

func TestReactionBaselines(t *testing.T) {
	pr := PathReplication(2)
	if pr(4) != 8 || pr(0) != 0 {
		t.Errorf("path replication: %g, %g", pr(4), pr(0))
	}
	cr := ConstantReaction(1.5)
	if cr(1) != 1.5 || cr(100) != 1.5 || cr(0) != 0 {
		t.Errorf("constant reaction wrong")
	}
}

func TestOnFulfillCreatesMandatesInExpectation(t *testing.T) {
	c := newFakeCache(2, 1)
	q := newQCR(true)
	q.Reaction = func(y int) float64 { return 2.5 }
	q.Init(c)
	const n = 20000
	for k := 0; k < n; k++ {
		q.OnFulfill(c, 0, 1, 0, 3, 0, 0)
	}
	got := float64(q.TotalMandates()) / n
	if math.Abs(got-2.5) > 0.05 {
		t.Errorf("mean mandates per fulfillment %g, want 2.5 (randomized rounding)", got)
	}
}

func TestOnFulfillIntegerReactionExact(t *testing.T) {
	c := newFakeCache(2, 1)
	q := newQCR(true)
	q.Reaction = func(y int) float64 { return 3 }
	q.Init(c)
	q.OnFulfill(c, 0, 1, 0, 5, 0, 0)
	if q.TotalMandates() != 3 {
		t.Errorf("got %d mandates, want exactly 3", q.TotalMandates())
	}
}

func TestMeetingExecutesOneMandate(t *testing.T) {
	c := newFakeCache(2, 1)
	c.has[[2]int{0, 0}] = true // node 0 holds item 0; node 1 does not
	q := newQCR(true)
	q.Init(c)
	q.addMandates(0, 0, 5, 0)
	q.OnMeeting(c, 0, 1, 1)
	if len(c.writes) != 1 || c.writes[0] != [2]int{1, 0} {
		t.Fatalf("writes=%v, want item 0 copied to node 1", c.writes)
	}
	if q.TotalMandates() != 4 {
		t.Errorf("mandates after execution: %d, want 4", q.TotalMandates())
	}
}

func TestMeetingExecutesTowardHolderlessSide(t *testing.T) {
	// Mandate sits on the node LACKING the copy; execution writes to it.
	c := newFakeCache(2, 1)
	c.has[[2]int{1, 0}] = true
	q := newQCR(true)
	q.Init(c)
	q.addMandates(0, 0, 1, 0)
	q.OnMeeting(c, 0, 1, 1)
	if len(c.writes) != 1 || c.writes[0] != [2]int{0, 0} {
		t.Fatalf("writes=%v, want item copied to node 0", c.writes)
	}
	if q.TotalMandates() != 0 {
		t.Errorf("mandate not consumed: %d", q.TotalMandates())
	}
}

func TestMeetingNoExecutionWithoutCopy(t *testing.T) {
	c := newFakeCache(2, 1) // neither node holds the item
	q := newQCR(true)
	q.Init(c)
	q.addMandates(0, 0, 4, 0)
	q.OnMeeting(c, 0, 1, 1)
	if len(c.writes) != 0 {
		t.Error("replica created out of thin air")
	}
	if q.TotalMandates() != 4 {
		t.Errorf("mandates changed: %d", q.TotalMandates())
	}
	// Routing: split evenly between the two nodes.
	if q.count(0, 0) != 2 || q.count(1, 0) != 2 {
		t.Errorf("split %d/%d, want 2/2", q.count(0, 0), q.count(1, 0))
	}
}

func TestMeetingBothHoldNoRewriting(t *testing.T) {
	c := newFakeCache(2, 1)
	c.has[[2]int{0, 0}] = true
	c.has[[2]int{1, 0}] = true
	q := newQCR(true)
	q.Init(c)
	q.addMandates(0, 0, 4, 0)
	q.OnMeeting(c, 0, 1, 1)
	if len(c.writes) != 0 {
		t.Error("wrote despite both holding")
	}
	if q.TotalMandates() != 4 {
		t.Errorf("mandates consumed without rewriting: %d", q.TotalMandates())
	}
}

func TestMeetingBothHoldWithRewriting(t *testing.T) {
	c := newFakeCache(2, 1)
	c.has[[2]int{0, 0}] = true
	c.has[[2]int{1, 0}] = true
	q := newQCR(true)
	q.Rewriting = true
	q.Init(c)
	q.addMandates(0, 0, 4, 0)
	q.OnMeeting(c, 0, 1, 1)
	if q.TotalMandates() != 3 {
		t.Errorf("rewriting should consume one mandate: %d left", q.TotalMandates())
	}
}

func TestRoutingToSoleHolder(t *testing.T) {
	// Write fails (peer cache pinned) so exactly one node holds the item;
	// all mandates must flow to the holder.
	c := newFakeCache(2, 1)
	c.has[[2]int{0, 0}] = true
	c.writeOK = false
	q := newQCR(true)
	q.Init(c)
	q.addMandates(1, 0, 6, 0)
	q.OnMeeting(c, 0, 1, 1)
	if q.count(0, 0) != 6 || q.count(1, 0) != 0 {
		t.Errorf("mandates %d/%d, want all 6 at the holder", q.count(0, 0), q.count(1, 0))
	}
}

func TestRoutingStickyPreference(t *testing.T) {
	// Both hold the item, node 0 is its sticky node → ceil(2/3) to node 0.
	c := newFakeCache(2, 1)
	c.has[[2]int{0, 0}] = true
	c.has[[2]int{1, 0}] = true
	c.sticky[0] = 0
	q := newQCR(true)
	q.Init(c)
	q.addMandates(1, 0, 6, 0)
	q.OnMeeting(c, 0, 1, 1)
	if q.count(0, 0) != 4 || q.count(1, 0) != 2 {
		t.Errorf("mandates %d/%d, want 4/2 (2/3 to sticky)", q.count(0, 0), q.count(1, 0))
	}
}

func TestNoRoutingKeepsMandatesAtOrigin(t *testing.T) {
	c := newFakeCache(2, 2)
	q := newQCR(false)
	q.Init(c)
	q.addMandates(0, 1, 5, 0)
	q.OnMeeting(c, 0, 1, 1)
	if q.count(0, 1) != 5 || q.count(1, 1) != 0 {
		t.Errorf("no-routing moved mandates: %d/%d", q.count(0, 1), q.count(1, 1))
	}
}

func TestNoRoutingStillExecutes(t *testing.T) {
	c := newFakeCache(2, 1)
	c.has[[2]int{0, 0}] = true
	q := newQCR(false)
	q.Init(c)
	q.addMandates(0, 0, 3, 0)
	q.OnMeeting(c, 0, 1, 1)
	if len(c.writes) != 1 {
		t.Fatalf("no-routing QCR must still execute mandates: writes=%v", c.writes)
	}
	if q.count(0, 0) != 2 {
		t.Errorf("executed mandate not deducted at origin: %d", q.count(0, 0))
	}
}

func TestMandatesForAccounting(t *testing.T) {
	c := newFakeCache(3, 2)
	q := newQCR(true)
	q.Init(c)
	q.addMandates(0, 0, 2, 0)
	q.addMandates(1, 0, 1, 0)
	q.addMandates(2, 1, 4, 0)
	if q.MandatesFor(0) != 3 || q.MandatesFor(1) != 4 {
		t.Errorf("MandatesFor wrong: %d, %d", q.MandatesFor(0), q.MandatesFor(1))
	}
	if q.TotalMandates() != 7 {
		t.Errorf("TotalMandates=%d", q.TotalMandates())
	}
}

func TestNames(t *testing.T) {
	if newQCR(true).Name() != "qcr" {
		t.Error("qcr name")
	}
	if newQCR(false).Name() != "qcr-no-routing" {
		t.Error("no-routing name")
	}
}

func TestOnFulfillIgnoresZeroAndNaN(t *testing.T) {
	c := newFakeCache(2, 1)
	q := newQCR(true)
	q.Reaction = func(y int) float64 { return math.NaN() }
	q.Init(c)
	q.OnFulfill(c, 0, 1, 0, 3, 0, 0)
	if q.TotalMandates() != 0 {
		t.Error("NaN reaction created mandates")
	}
}
