//go:build race

package experiment

// raceScaleDown shrinks the streaming scale demo when the race detector
// is on (it multiplies both runtime and heap). On in -race builds.
const raceScaleDown = true
