package serve

import (
	"math"
	"testing"

	"impatience/internal/utility"
)

func TestTableCacheCanonicalAliasing(t *testing.T) {
	c := NewTableCache(8)
	a, err := c.Get("exp:0.5", 0.01, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("exponential:0.5", 0.01, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("spec aliases exp:0.5 / exponential:0.5 built two tables")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	// A different operating point is a different table.
	d, err := c.Get("exp:0.5", 0.02, 40)
	if err != nil {
		t.Fatal(err)
	}
	if d == a || c.Len() != 2 {
		t.Errorf("distinct µ shared a table (len=%d)", c.Len())
	}
}

func TestTablesMatchDirectTransforms(t *testing.T) {
	const mu, servers = 0.01, 25
	c := NewTableCache(4)
	tb, err := c.Get("step:10", mu, servers)
	if err != nil {
		t.Fatal(err)
	}
	f := utility.Step{Tau: 10}
	for y := 1; y <= servers; y++ {
		if got, want := tb.Psi(y), utility.Psi(f, mu, servers, float64(y)); got != want {
			t.Fatalf("ψ(%d) = %g, want %g", y, got, want)
		}
		if got, want := tb.Phi(y), f.Phi(mu, float64(y)); got != want {
			t.Fatalf("ϕ(%d) = %g, want %g", y, got, want)
		}
	}
	if !math.IsNaN(tb.Psi(0)) || !math.IsNaN(tb.Psi(servers+1)) || !math.IsNaN(tb.Phi(0)) {
		t.Error("out-of-range table lookups must be NaN")
	}
}

func TestTableCacheRejectsInvalid(t *testing.T) {
	c := NewTableCache(4)
	for name, call := range map[string]func() error{
		"unknown-family": func() error { _, err := c.Get("hyperbolic:2", 0.01, 10); return err },
		"malformed":      func() error { _, err := c.Get("step:", 0.01, 10); return err },
		"zero-mu":        func() error { _, err := c.Get("step:10", 0, 10); return err },
		"inf-mu":         func() error { _, err := c.Get("step:10", math.Inf(1), 10); return err },
		"no-servers":     func() error { _, err := c.Get("step:10", 0.01, 0); return err },
	} {
		if call() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if c.Len() != 0 {
		t.Errorf("cache mutated on error: %d entries", c.Len())
	}
}

func TestTableCacheBounded(t *testing.T) {
	c := NewTableCache(3)
	specs := []string{"step:1", "step:2", "step:3", "step:4", "step:5"}
	for _, s := range specs {
		if _, err := c.Get(s, 0.01, 10); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 3 {
		t.Errorf("cache grew to %d entries, bound is 3", c.Len())
	}
}
