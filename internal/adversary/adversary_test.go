package adversary

import (
	"math"
	"testing"

	"impatience/internal/core"
	"impatience/internal/demand"
)

func TestConfigValidate(t *testing.T) {
	pop := demand.Pareto(5, 1, 2)
	cases := []struct {
		name string
		cfg  *Config
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Config{}, true},
		{"typical", &Config{DishonestFrac: 0.2, Mult: 25, FreeRiderFrac: 0.1}, true},
		{"schedule", &Config{Schedule: demand.Schedule{{T: 5, Pop: pop}}}, true},
		{"negative-dishonest", &Config{DishonestFrac: -0.1}, false},
		{"dishonest-above-one", &Config{DishonestFrac: 1.5}, false},
		{"nan-dishonest", &Config{DishonestFrac: math.NaN()}, false},
		{"negative-freerider", &Config{FreeRiderFrac: -0.1}, false},
		{"freerider-above-one", &Config{FreeRiderFrac: 2}, false},
		{"nan-freerider", &Config{FreeRiderFrac: math.NaN()}, false},
		{"fracs-sum-above-one", &Config{DishonestFrac: 0.6, FreeRiderFrac: 0.6}, false},
		{"negative-mult", &Config{Mult: -2}, false},
		{"nan-mult", &Config{Mult: math.NaN()}, false},
		{"inf-mult", &Config{Mult: math.Inf(1)}, false},
		{"unsorted-schedule", &Config{Schedule: demand.Schedule{
			{T: 10, Pop: pop}, {T: 5, Pop: pop},
		}}, false},
		{"wrong-items-schedule", &Config{Schedule: demand.Schedule{
			{T: 5, Pop: demand.Pareto(3, 1, 2)},
		}}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(5)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected, got nil", tc.name)
		}
	}
}

func TestEnabled(t *testing.T) {
	pop := demand.Pareto(5, 1, 2)
	cases := []struct {
		name string
		cfg  *Config
		want bool
	}{
		{"nil", nil, false},
		{"zero", &Config{}, false},
		{"dishonest-without-mult", &Config{DishonestFrac: 0.5}, false},
		{"dishonest-mult-one", &Config{DishonestFrac: 0.5, Mult: 1}, false},
		{"mult-without-dishonest", &Config{Mult: 25}, false},
		{"dishonest", &Config{DishonestFrac: 0.5, Mult: 25}, true},
		{"deflation", &Config{DishonestFrac: 0.5, Mult: 0.5}, true},
		{"freeriders", &Config{FreeRiderFrac: 0.1}, true},
		{"schedule", &Config{Schedule: demand.Schedule{{T: 5, Pop: pop}}}, true},
	}
	for _, tc := range cases {
		if got := tc.cfg.Enabled(); got != tc.want {
			t.Errorf("%s: Enabled = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestNewDisabledReturnsNil(t *testing.T) {
	in, err := New(nil, 10, 5)
	if err != nil || in != nil {
		t.Fatalf("New(nil) = %v, %v; want nil, nil", in, err)
	}
	in, err = New(&Config{}, 10, 5)
	if err != nil || in != nil {
		t.Fatalf("New(zero) = %v, %v; want nil, nil", in, err)
	}
	if _, err = New(&Config{Mult: -1, DishonestFrac: 0.5}, 10, 5); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRolesDeterministicAndDisjoint(t *testing.T) {
	cfg := &Config{DishonestFrac: 0.2, Mult: 25, FreeRiderFrac: 0.3, Seed: 42}
	const nodes = 50
	a, err := New(cfg, nodes, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, nodes, 5)
	if err != nil {
		t.Fatal(err)
	}
	var dis, fr int
	for n := 0; n < nodes; n++ {
		if a.Dishonest(n) != b.Dishonest(n) || a.FreeRider(n) != b.FreeRider(n) {
			t.Fatalf("role assignment not deterministic at node %d", n)
		}
		if a.Dishonest(n) && a.FreeRider(n) {
			t.Fatalf("node %d is both dishonest and free-riding", n)
		}
		if a.Dishonest(n) {
			dis++
		}
		if a.FreeRider(n) {
			fr++
		}
	}
	if dis != 10 || fr != 15 {
		t.Fatalf("roles = %d dishonest, %d free-riders; want 10, 15", dis, fr)
	}
	if d, f := a.Roles(); d != dis || f != fr {
		t.Fatalf("Roles() = %d, %d; want %d, %d", d, f, dis, fr)
	}
	// A different seed picks a different subset (overwhelmingly likely).
	cfg2 := *cfg
	cfg2.Seed = 43
	c, err := New(&cfg2, nodes, 5)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for n := 0; n < nodes; n++ {
		if a.Dishonest(n) != c.Dishonest(n) || a.FreeRider(n) != c.FreeRider(n) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds picked identical role sets")
	}
}

func TestMultOneAssignsNoDishonest(t *testing.T) {
	// Mult 1 is honest reporting: the dishonest fraction is ignored and
	// those slots are not silently converted to free-riders.
	in, err := New(&Config{DishonestFrac: 0.5, Mult: 1, FreeRiderFrac: 0.2, Seed: 7}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d, f := in.Roles(); d != 0 || f != 2 {
		t.Fatalf("roles = %d dishonest, %d free-riders; want 0, 2", d, f)
	}
}

func TestInflate(t *testing.T) {
	in, err := New(&Config{DishonestFrac: 1, Mult: 2.5, Seed: 1}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ q, want int }{
		{0, 0},
		{-3, -3}, // non-positive counters pass through
		{10, 25},
		{3, 7}, // floor of 7.5
	}
	for _, tc := range cases {
		if got := in.Inflate(tc.q); got != tc.want {
			t.Errorf("Inflate(%d) = %d, want %d", tc.q, got, tc.want)
		}
	}
	// Saturation: no multiplier can push a counter past MaxQueryCount.
	huge, err := New(&Config{DishonestFrac: 1, Mult: 1e12, Seed: 1}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := huge.Inflate(core.MaxQueryCount); got != core.MaxQueryCount {
		t.Errorf("Inflate(MaxQueryCount) = %d, want saturation at %d", got, core.MaxQueryCount)
	}
	if got := huge.Inflate(7); got != core.MaxQueryCount {
		t.Errorf("Inflate(7)·1e12 = %d, want saturation at %d", got, core.MaxQueryCount)
	}
}
