package experiment

import (
	"fmt"

	"impatience/internal/alloc"
	"impatience/internal/parallel"
	"impatience/internal/plot"
	"impatience/internal/rates"
	"impatience/internal/stats"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// HybridFigure3 regenerates the Figure-3 time series at structured-model
// scale on the hybrid engine: QCR's expected utility U(x(t)) converging
// to the homogeneous optimum, the observed per-bin utility, and the
// replica trajectories of the five most requested items — population
// sizes the full event path cannot reach interactively. The replica
// snapshots come from rounding the fluid state, so the trajectories are
// the mean-field x(t) itself rather than one sample path of it.
//
// Returned tables: expected utility; observed utility per bin; top-5
// replica counts; hybrid provenance (fluid fraction and demotions per
// trial, so a fallback can never hide inside a smooth-looking curve).
func HybridFigure3(sc Scenario, m *rates.Model) ([]*plot.Table, error) {
	if m.Nodes() != sc.Nodes {
		return nil, fmt.Errorf("experiment: model has %d nodes, scenario %d", m.Nodes(), sc.Nodes)
	}
	sc.Hybrid.Enabled = true
	f := utility.Power{Alpha: 0}
	pop := sc.Pop()
	mu := m.MeanPairRate()
	h := welfare.Homogeneous{
		Utility: f, Pop: pop, Mu: mu,
		Servers: sc.Nodes, Clients: sc.Nodes, PureP2P: true,
	}
	opt, err := h.GreedyOptimal(sc.Rho)
	if err != nil {
		return nil, err
	}
	uOpt := h.WelfareCounts(opt)
	schemes := []string{SchemeQCR, SchemeUNI}

	type trialSeries struct {
		times, exp, obs []float64
		tops            [5][]float64
		fluid           float64
		demotions       int
	}
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([]*trialSeries, error) {
		results, err := sc.runHybridTrial(schemes, f, m, mu, uint64(trial), seed, true)
		if err != nil {
			return nil, err
		}
		series := make([]*trialSeries, len(results))
		for k, res := range results {
			ts := &trialSeries{
				times: make([]float64, len(res.Bins)),
				exp:   make([]float64, len(res.Bins)),
				obs:   make([]float64, len(res.Bins)),
			}
			for r := range ts.tops {
				ts.tops[r] = make([]float64, len(res.Bins))
			}
			for i, b := range res.Bins {
				ts.times[i] = b.T0
				if b.Counts != nil {
					ts.exp[i] = h.WelfareCounts(b.Counts)
					for r := 0; r < 5 && r < len(b.Counts); r++ {
						ts.tops[r][i] = float64(b.Counts[r])
					}
				}
				ts.obs[i] = b.Gain / (b.T1 - b.T0)
			}
			if t := res.Hybrid; t != nil {
				ts.fluid = t.FluidFraction
				ts.demotions = t.Demotions
			}
			series[k] = ts
		}
		return series, nil
	})
	if err != nil {
		return nil, err
	}

	var times []float64
	collect := func(k int, pick func(*trialSeries) []float64) [][]float64 {
		var out [][]float64
		for _, trial := range outs {
			if times == nil {
				times = trial[k].times
			}
			out = append(out, pick(trial[k]))
		}
		return out
	}
	mean := func(trials [][]float64) []float64 {
		s, err := stats.MergeTrials(times, trials)
		if err != nil {
			return nil
		}
		return s.Mean
	}

	qcrExp := collect(0, func(ts *trialSeries) []float64 { return ts.exp })
	expT := &plot.Table{
		Title:  fmt.Sprintf("Figure 3 at scale (N=%d, hybrid): expected utility U(x(t))", sc.Nodes),
		XLabel: "time (min)",
	}
	expT.X = times
	expT.AddColumn("QCR", mean(qcrExp))
	expT.AddColumn("OPT", constant(len(times), uOpt))
	expT.AddColumn("UNI", constant(len(times), h.WelfareCounts(alloc.Uniform(sc.Items, sc.Nodes, sc.Rho))))

	obsT := &plot.Table{
		Title:  fmt.Sprintf("Figure 3 at scale (N=%d, hybrid): observed utility", sc.Nodes),
		XLabel: "time (min)",
	}
	obsT.X = times
	obsT.AddColumn("QCR", mean(collect(0, func(ts *trialSeries) []float64 { return ts.obs })))
	obsT.AddColumn("UNI", mean(collect(1, func(ts *trialSeries) []float64 { return ts.obs })))

	repT := &plot.Table{
		Title:  fmt.Sprintf("Figure 3 at scale (N=%d, hybrid): replicas of top-5 items", sc.Nodes),
		XLabel: "time (min)",
	}
	repT.X = times
	for r := 0; r < 5; r++ {
		repT.AddColumn(fmt.Sprintf("msg %d (target %d)", r+1, opt[r]),
			mean(collect(0, func(ts *trialSeries) []float64 { return ts.tops[r][:] })))
	}

	provT := &plot.Table{Title: "Hybrid provenance per trial", XLabel: "trial"}
	provT.X = make([]float64, len(outs))
	fluid := make([]float64, len(outs))
	demo := make([]float64, len(outs))
	for i, trial := range outs {
		provT.X[i] = float64(i)
		// The QCR run is the demanding one; UNI shares its fluid split.
		fluid[i] = trial[0].fluid
		demo[i] = float64(trial[0].demotions + trial[1].demotions)
	}
	provT.AddColumn("fluid_fraction", fluid)
	provT.AddColumn("demotions", demo)

	return []*plot.Table{expT, obsT, repT, provT}, nil
}
