package experiment

import (
	"fmt"

	"impatience/internal/alloc"
	"impatience/internal/parallel"
	"impatience/internal/plot"
	"impatience/internal/stats"
	"impatience/internal/synth"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// Figure3 regenerates the mandate-routing comparison (Figure 3): under
// homogeneous contacts and the waiting-cost utility power(α=0), QCR with
// mandate routing stays near the optimal utility while QCR without it
// drifts away; the replica counts of the five most requested items
// fluctuate around their targets with routing and diverge without.
//
// Returned tables: expected utility U(x(t)); observed utility per bin;
// top-5 replica counts with routing; top-5 replica counts without;
// pending-mandate totals.
func Figure3(sc Scenario) ([]*plot.Table, error) {
	f := utility.Power{Alpha: 0}
	pop := sc.Pop()
	h := welfare.Homogeneous{
		Utility: f, Pop: pop, Mu: sc.Mu,
		Servers: sc.Nodes, Clients: sc.Nodes, PureP2P: true,
	}
	opt, err := h.GreedyOptimal(sc.Rho)
	if err != nil {
		return nil, err
	}
	uOpt := h.WelfareCounts(opt)
	gen := sc.HomogeneousSources()
	schemes := []string{SchemeQCR, SchemeQCRWOM}

	type seriesSet struct {
		expected [][]float64
		observed [][]float64
		mandates [][]float64
		top5     [][][]float64 // [itemRank][trial][bin]
	}
	type trialSeries struct {
		times, exp, obs, man []float64
		tops                 [5][]float64
	}
	// Both variants run on one shared pass of each trial's contact
	// stream (sim.RunBatch); per-scheme results are bit-identical to the
	// former one-scheme-at-a-time collection.
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([]*trialSeries, error) {
		src, err := gen(seed)
		if err != nil {
			return nil, err
		}
		results, err := sc.RunSchemesBatch(schemes, f, src, sc.Mu, uint64(trial), true, nil)
		if err != nil {
			return nil, err
		}
		series := make([]*trialSeries, len(results))
		for k, res := range results {
			ts := &trialSeries{
				times: make([]float64, len(res.Bins)),
				exp:   make([]float64, len(res.Bins)),
				obs:   make([]float64, len(res.Bins)),
				man:   make([]float64, len(res.Bins)),
			}
			for r := range ts.tops {
				ts.tops[r] = make([]float64, len(res.Bins))
			}
			for i, b := range res.Bins {
				ts.times[i] = b.T0
				if b.Counts != nil {
					ts.exp[i] = h.WelfareCounts(b.Counts)
					for r := 0; r < 5 && r < len(b.Counts); r++ {
						ts.tops[r][i] = float64(b.Counts[r])
					}
				}
				ts.obs[i] = b.Gain / (b.T1 - b.T0)
				ts.man[i] = float64(b.Mandates)
			}
			series[k] = ts
		}
		return series, nil
	})
	if err != nil {
		return nil, err
	}
	var times []float64
	sets := make([]*seriesSet, len(schemes))
	for k := range schemes {
		set := &seriesSet{top5: make([][][]float64, 5)}
		for _, trial := range outs {
			ts := trial[k]
			if times == nil {
				times = ts.times
			}
			set.expected = append(set.expected, ts.exp)
			set.observed = append(set.observed, ts.obs)
			set.mandates = append(set.mandates, ts.man)
			for r := 0; r < 5; r++ {
				set.top5[r] = append(set.top5[r], ts.tops[r])
			}
		}
		sets[k] = set
	}
	qcr, wom := sets[0], sets[1]

	mean := func(trials [][]float64) []float64 {
		s, err := stats.MergeTrials(times, trials)
		if err != nil {
			return nil
		}
		return s.Mean
	}

	expT := &plot.Table{Title: "Figure 3a: expected utility U(x(t)) (power α=0)", XLabel: "time (min)"}
	expT.X = times
	expT.AddColumn("QCR", mean(qcr.expected))
	expT.AddColumn("QCRWOM", mean(wom.expected))
	expT.AddColumn("OPT", constant(len(times), uOpt))
	expT.AddColumn("UNI", constant(len(times), h.WelfareCounts(alloc.Uniform(sc.Items, sc.Nodes, sc.Rho))))
	expT.AddColumn("DOM", constant(len(times), h.WelfareCounts(alloc.Dom(pop.Rates, sc.Nodes, sc.Rho))))

	obsT := &plot.Table{Title: "Figure 3b: observed utility (power α=0)", XLabel: "time (min)"}
	obsT.X = times
	obsT.AddColumn("QCR", mean(qcr.observed))
	obsT.AddColumn("QCRWOM", mean(wom.observed))

	repQ := &plot.Table{Title: "Figure 3c: replicas of top-5 items (mandate routing)", XLabel: "time (min)"}
	repQ.X = times
	repW := &plot.Table{Title: "Figure 3d: replicas of top-5 items (no mandate routing)", XLabel: "time (min)"}
	repW.X = times
	for r := 0; r < 5; r++ {
		name := fmt.Sprintf("msg %d (target %d)", r+1, opt[r])
		repQ.AddColumn(name, mean(qcr.top5[r]))
		repW.AddColumn(name, mean(wom.top5[r]))
	}

	manT := &plot.Table{Title: "Figure 3e: pending mandates", XLabel: "time (min)"}
	manT.X = times
	manT.AddColumn("QCR", mean(qcr.mandates))
	manT.AddColumn("QCRWOM", mean(wom.mandates))

	return []*plot.Table{expT, obsT, repQ, repW, manT}, nil
}

func constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Sweep runs RunComparison across a parameter sweep, building a
// loss-vs-parameter table (one column per scheme) — the shape of Figures
// 4, 5b/5c and 6.
func (sc Scenario) Sweep(title, xlabel string, params []float64, mkUtility func(p float64) utility.Function, gen SourceGen, schemes []string) (*plot.Table, error) {
	table := &plot.Table{Title: title, XLabel: xlabel}
	table.X = append([]float64(nil), params...)
	cols := make(map[string][]float64, len(schemes))
	for _, p := range params {
		cmp, err := sc.RunComparison(mkUtility(p), gen, schemes)
		if err != nil {
			return nil, fmt.Errorf("%s at %s=%g: %w", title, xlabel, p, err)
		}
		for _, s := range schemes {
			cols[s] = append(cols[s], cmp.Loss[s].Mean)
		}
	}
	for _, s := range schemes {
		if s == SchemeOPT {
			continue // identically zero
		}
		if err := table.AddColumn(s, cols[s]); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// Figure4Power regenerates the left panel of Figure 4: normalized loss vs
// α for the power utility under homogeneous contacts.
func Figure4Power(sc Scenario, alphas []float64) (*plot.Table, error) {
	if alphas == nil {
		alphas = []float64{-2, -1.5, -1, -0.5, 0, 0.5, 0.9}
	}
	schemes := append([]string{SchemeQCR}, AllCompetitors...)
	return sc.Sweep("Figure 4 (left): loss vs α, power utility, homogeneous",
		"alpha", alphas,
		func(a float64) utility.Function { return utility.Power{Alpha: a} },
		sc.HomogeneousSources(), schemes)
}

// Figure4Step regenerates the right panel of Figure 4: normalized loss vs
// τ for the step utility under homogeneous contacts.
func Figure4Step(sc Scenario, taus []float64) (*plot.Table, error) {
	if taus == nil {
		taus = logspace(1, 1000, 7)
	}
	schemes := append([]string{SchemeQCR}, AllCompetitors...)
	return sc.Sweep("Figure 4 (right): loss vs τ, step utility, homogeneous",
		"tau", taus,
		func(tau float64) utility.Function { return utility.Step{Tau: tau} },
		sc.HomogeneousSources(), schemes)
}

// Figure5TimeSeries regenerates Figure 5a: hourly-averaged observed
// utility over the conference trace with step impatience (τ = 60 min,
// the "τ=1 hour" setting of the paper). All schemes run on the same
// traces; the diurnal cycle shows as utility collapsing at night.
func Figure5TimeSeries(sc Scenario, conf synth.ConferenceConfig, tau float64) (*plot.Table, error) {
	if tau <= 0 {
		tau = 60
	}
	f := utility.Step{Tau: tau}
	gen := ConferenceTraces(conf).Sourced()
	sc.Duration = float64(conf.Days) * 1440

	schemes := append([]string{SchemeQCR}, AllCompetitors...)
	table := &plot.Table{
		Title:  fmt.Sprintf("Figure 5a: observed utility over time, conference trace (step τ=%g min)", tau),
		XLabel: "time (min)",
	}
	// One shared pass per trial: the trace is generated once and every
	// scheme runs on it in lockstep, instead of once per scheme.
	type trialOut struct {
		times []float64
		obs   [][]float64 // indexed like schemes
	}
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) (trialOut, error) {
		src, err := gen(seed)
		if err != nil {
			return trialOut{}, err
		}
		results, err := sc.RunSchemesBatch(schemes, f, src, 0, uint64(trial), true, nil)
		if err != nil {
			return trialOut{}, err
		}
		out := trialOut{obs: make([][]float64, len(results))}
		for k, res := range results {
			if out.times == nil {
				out.times = make([]float64, len(res.Bins))
				for i, b := range res.Bins {
					out.times[i] = b.T0
				}
			}
			out.obs[k] = make([]float64, len(res.Bins))
			for i, b := range res.Bins {
				out.obs[k][i] = b.Gain / (b.T1 - b.T0)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var times []float64
	for k, scheme := range schemes {
		var trials [][]float64
		for _, out := range outs {
			if times == nil {
				times = out.times
				table.X = times
			}
			trials = append(trials, out.obs[k])
		}
		s, err := stats.MergeTrials(times, trials)
		if err != nil {
			return nil, err
		}
		if err := table.AddColumn(scheme, s.Mean); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// Figure5Step regenerates Figure 5b (actual conference trace) or 5c
// (memoryless synthesized counterpart): loss vs τ for the step utility.
func Figure5Step(sc Scenario, conf synth.ConferenceConfig, taus []float64, memoryless bool) (*plot.Table, error) {
	if taus == nil {
		taus = logspace(10, 2000, 6)
	}
	gen := ConferenceTraces(conf)
	label := "actual"
	if memoryless {
		gen = MemorylessOf(gen)
		label = "synthesized memoryless"
	}
	sc.Duration = float64(conf.Days) * 1440
	schemes := append([]string{SchemeQCR}, AllCompetitors...)
	return sc.Sweep(
		fmt.Sprintf("Figure 5: loss vs τ, conference trace (%s)", label),
		"tau", taus,
		func(tau float64) utility.Function { return utility.Step{Tau: tau} },
		gen.Sourced(), schemes)
}

// Figure6 regenerates the three vehicular panels: loss vs α (power), vs τ
// (step) and vs ν (exponential) on the Cabspotting-like taxi trace.
func Figure6(sc Scenario, veh synth.VehicularConfig, panel string, params []float64) (*plot.Table, error) {
	gen := VehicularTraces(veh).Sourced()
	sc.Duration = veh.DurationMin
	schemes := append([]string{SchemeQCR}, AllCompetitors...)
	switch panel {
	case "power":
		if params == nil {
			params = []float64{-2, -1.5, -1, -0.5, 0, 0.5, 0.9}
		}
		return sc.Sweep("Figure 6a: loss vs α, power utility, vehicular trace",
			"alpha", params,
			func(a float64) utility.Function { return utility.Power{Alpha: a} }, gen, schemes)
	case "step":
		if params == nil {
			params = logspace(5, 1000, 6)
		}
		return sc.Sweep("Figure 6b: loss vs τ, step utility, vehicular trace",
			"tau", params,
			func(tau float64) utility.Function { return utility.Step{Tau: tau} }, gen, schemes)
	case "exp":
		if params == nil {
			params = logspace(1e-4, 10, 6)
		}
		return sc.Sweep("Figure 6c: loss vs ν, exponential utility, vehicular trace",
			"nu", params,
			func(nu float64) utility.Function { return utility.Exponential{Nu: nu} }, gen, schemes)
	default:
		return nil, fmt.Errorf("experiment: unknown Figure 6 panel %q (want power, step or exp)", panel)
	}
}
