package sim

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"impatience/internal/core"
	"impatience/internal/faults"
)

// faultyConfig builds a run with every fault class active and a hardened
// QCR policy. Policies are stateful, so each call constructs fresh ones.
func faultyConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	tr := smallTrace(t, 20, 0.05, 600, 11)
	cfg := baseConfig(t, tr, &core.QCR{
		Reaction:       core.PathReplication(0.5),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5,
		MandateTTL:     80,
		MaxAttempts:    4,
		Seed:           seed * 31,
	})
	cfg.Seed = seed
	cfg.BinWidth = 60
	cfg.RecordCounts = true
	cfg.Faults = &faults.Config{
		ChurnRate:     0.002,
		MeanDowntime:  30,
		PLoss:         0.2,
		PDrop:         0.1,
		MassCrashTime: 300,
		MassCrashFrac: 0.4,
		MassDowntime:  40,
		Seed:          seed ^ 0xbad,
	}
	return cfg
}

// TestDeterminismWithFaults is the satellite requirement: two runs with
// the same Seed — fault injection enabled — produce byte-identical
// Results.
func TestDeterminismWithFaults(t *testing.T) {
	encode := func() []byte {
		res, err := Run(faultyConfig(t, 5))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			t.Fatalf("gob: %v", err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two identically-seeded faulty runs produced different Results")
	}
}

// TestFaultsNilAndZeroConfigAgree checks the strict no-op contract: a nil
// Faults field and a zero (all classes disabled) faults.Config take the
// exact same code paths and yield identical results.
func TestFaultsNilAndZeroConfigAgree(t *testing.T) {
	play := func(fc *faults.Config) *Result {
		tr := smallTrace(t, 15, 0.05, 500, 4)
		cfg := baseConfig(t, tr, &core.QCR{
			Reaction:       core.PathReplication(0.5),
			MandateRouting: true,
			MaxMandates:    5,
			Seed:           9,
		})
		cfg.Faults = fc
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a := play(nil)
	b := play(&faults.Config{})
	if a.Faults != nil || b.Faults != nil {
		t.Fatal("disabled fault injection produced a fault tally")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nil vs zero fault config diverged:\n%+v\n%+v", a, b)
	}
}

// TestChurnConservation runs a churny simulation and checks the fault
// tally plus the mandate conservation law
//
//	created = pending + executed + expired + abandoned + dropped + crashed
//
// so no mandate is ever double-counted or leaked, even across crashes.
func TestChurnConservation(t *testing.T) {
	cfg := faultyConfig(t, 21)
	pol := cfg.Policy.(*core.QCR)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ft := res.Faults
	if ft == nil {
		t.Fatal("fault tally missing")
	}
	if ft.Crashes == 0 || ft.Rejoins == 0 {
		t.Errorf("churn did not fire: %d crashes, %d rejoins", ft.Crashes, ft.Rejoins)
	}
	if ft.SkippedContacts == 0 {
		t.Error("no contacts skipped despite down nodes")
	}
	if ft.TruncatedMeetings == 0 {
		t.Error("no truncated meetings despite p_loss = 0.2")
	}
	if ft.ReplicasLost == 0 {
		t.Error("crashes wiped no replicas")
	}
	if ft.StickyLost > 0 && ft.StickyReseeded == 0 {
		t.Error("sticky replicas were lost but never re-seeded")
	}
	if ft.MandatesDropped == 0 {
		t.Error("no mandates dropped despite p_drop = 0.1")
	}
	dropped, expired, abandoned := pol.FaultCounters()
	if ft.MandatesDropped != dropped || ft.MandatesExpired != expired || ft.MandatesAbandoned != abandoned {
		t.Errorf("tally (%d,%d,%d) disagrees with policy counters (%d,%d,%d)",
			ft.MandatesDropped, ft.MandatesExpired, ft.MandatesAbandoned, dropped, expired, abandoned)
	}
	accounted := pol.TotalMandates() + pol.MandatesExecuted() + expired + abandoned + dropped + ft.MandatesCrashed
	if accounted != pol.MandatesCreated() {
		t.Errorf("mandate conservation violated: accounted %d, created %d", accounted, pol.MandatesCreated())
	}
}

// TestCrashWipesAndRejoinRestores spot-checks the churn mechanics via a
// single scheduled mass crash: replicas drop at the crash and the sticky
// re-seeding path re-pins wiped sticky items on later fulfillments.
func TestMassCrashReplicaDrop(t *testing.T) {
	tr := smallTrace(t, 20, 0.05, 600, 8)
	cfg := baseConfig(t, tr, &core.QCR{
		Reaction:       core.PathReplication(0.5),
		MandateRouting: true,
		MaxMandates:    5,
		MandateTTL:     80,
		Seed:           3,
	})
	cfg.BinWidth = 30
	cfg.RecordCounts = true
	cfg.Faults = &faults.Config{MassCrashTime: 300, MassCrashFrac: 0.5, MassDowntime: 60, Seed: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Faults.Crashes != 10 || res.Faults.Rejoins != 10 {
		t.Fatalf("mass crash applied %d crashes / %d rejoins, want 10 / 10", res.Faults.Crashes, res.Faults.Rejoins)
	}
	// A bin's Counts snapshot is taken when the bin closes, so the bin
	// straddling the crash already shows post-crash state; compare the
	// last bin closing strictly before the crash, the post-crash minimum,
	// and the final bin.
	var before, minAfter, last int
	for _, b := range res.Bins {
		if b.Counts == nil {
			continue
		}
		total := 0
		for _, n := range b.Counts {
			total += n
		}
		if b.T1 <= 300-cfg.BinWidth {
			before = total
		}
		if b.T0 >= 300-cfg.BinWidth && (minAfter == 0 || total < minAfter) {
			minAfter = total
		}
		last = total
	}
	if before == 0 || minAfter >= before {
		t.Errorf("replica count did not drop across the mass crash: %d → %d", before, minAfter)
	}
	if last <= minAfter {
		t.Errorf("QCR did not regrow replicas after the crash: %d at trough, %d at end", minAfter, last)
	}
}
