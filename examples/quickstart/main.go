// Quickstart: the smallest end-to-end use of the impatience library.
//
// We model a population of 30 phones sharing a 20-episode catalog over
// opportunistic Bluetooth contacts. Users lose interest exponentially
// (10% per minute of waiting). The program:
//
//  1. computes the optimal cache allocation for that impatience,
//  2. simulates Query Counting Replication tuned to it, and
//  3. compares QCR's realized utility against the optimum and against
//     the uniform allocation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"impatience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes    = 30
		items    = 20
		rho      = 3    // cache slots per phone
		mu       = 0.05 // pairwise meetings per minute
		duration = 6000 // minutes simulated
	)
	u := impatience.Exponential{Nu: 0.1}
	pop := impatience.ParetoPopularity(items, 1, 2)

	// Theory: the optimal allocation and its social welfare.
	hom := impatience.Homogeneous{
		Utility: u, Pop: pop, Mu: mu,
		Servers: nodes, Clients: nodes, PureP2P: true,
	}
	opt, err := hom.GreedyOptimal(rho)
	if err != nil {
		return err
	}
	fmt.Printf("optimal allocation (replicas per item): %v\n", opt)
	fmt.Printf("optimal welfare: %.4f gain/min\n\n", hom.WelfareCounts(opt))

	// Practice: simulate QCR against the uniform baseline on one trace.
	rng := rand.New(rand.NewPCG(42, 43))
	tr, err := impatience.GenerateHomogeneousTrace(nodes, mu, duration, rng)
	if err != nil {
		return err
	}

	qcr := &impatience.QCR{
		Reaction:       impatience.TunedReaction(u, mu, nodes, 0.1),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5,
		Seed:           7,
	}
	resQCR, err := impatience.Simulate(impatience.SimConfig{
		Rho: rho, Utility: u, Pop: pop, Trace: tr, Policy: qcr, Seed: 8,
	})
	if err != nil {
		return err
	}

	resUNI, err := impatience.Simulate(impatience.SimConfig{
		Rho: rho, Utility: u, Pop: pop, Trace: tr,
		Policy:   impatience.StaticPolicy{Label: "uni"},
		Initial:  impatience.UniformAllocation(items, nodes, rho),
		NoSticky: true, Seed: 9,
	})
	if err != nil {
		return err
	}

	fmt.Printf("QCR (local knowledge only): %.4f gain/min\n", resQCR.AvgUtilityRate)
	fmt.Printf("UNI (fixed uniform cache):  %.4f gain/min\n", resUNI.AvgUtilityRate)
	fmt.Printf("\nQCR made %d replicas over %d meetings and ended with allocation %v\n",
		resQCR.ReplicasMade, resQCR.Meetings, resQCR.FinalCounts)
	return nil
}
