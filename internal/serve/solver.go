package serve

import (
	"fmt"
	"math"

	"impatience/internal/alloc"
	"impatience/internal/demand"
	"impatience/internal/numeric"
	"impatience/internal/utility"
)

// SolveStats counts how the solver reached each allocation: warm solves
// that were certified, cold from-scratch solves, and warm attempts that
// failed certification and fell back to cold.
type SolveStats struct {
	Warm     uint64 `json:"warm"`
	Cold     uint64 `json:"cold"`
	Fallback uint64 `json:"fallback"`
}

// Solver wraps the water-filling stack for serving: each Solve re-solves
// the relaxed welfare optimum (Property 1 balance d_i·ϕ(x_i) = λ) for the
// current demand estimate, warm-starting from the previous allocation and
// dual level when one exists. A warm result is certified — budget, box,
// and balance re-checked — before it is trusted; anything suspect falls
// back to the cold numeric.WaterFill. Not goroutine-safe; Server
// serializes access.
type Solver struct {
	f       utility.Function
	mu      float64
	servers int
	budget  float64
	warm    *numeric.WarmState
	stats   SolveStats
}

// NewSolver builds a solver for a homogeneous system: per-item caps |S|,
// budget ρ·|S|, derivative ϕ(µ, ·) of the given delay-utility.
func NewSolver(f utility.Function, mu float64, servers, rho int) (*Solver, error) {
	switch {
	case f == nil:
		return nil, fmt.Errorf("serve: nil utility")
	case !(mu > 0):
		return nil, fmt.Errorf("serve: contact rate µ=%g, want > 0", mu)
	case servers <= 0 || rho <= 0:
		return nil, fmt.Errorf("serve: servers=%d rho=%d, want > 0", servers, rho)
	}
	return &Solver{
		f:       f,
		mu:      mu,
		servers: servers,
		budget:  float64(alloc.Capacity(servers, rho)),
	}, nil
}

// Stats returns the solve counters.
func (s *Solver) Stats() SolveStats { return s.stats }

func (s *Solver) problem(pop demand.Popularity) numeric.WaterFillProblem {
	caps := make([]float64, pop.Items())
	var effCap float64
	for i := range caps {
		caps[i] = float64(s.servers)
		if pop.Rates[i] > 0 {
			effCap += caps[i]
		}
	}
	// When demand is so sparse that every demanded item fits fully
	// replicated (early in a daemon's life, or a catalog mostly cold), the
	// reachable capacity is below ρ·|S|: cap the budget there — demanded
	// items saturate at |S| replicas and the rest of the capacity idles,
	// exactly what GreedyOptimal's spill does minus the inert zero-demand
	// placements.
	budget := s.budget
	if budget > effCap {
		budget = effCap
	}
	return numeric.WaterFillProblem{
		Weights: pop.Rates,
		Caps:    caps,
		Budget:  budget,
		Deriv:   func(x float64) float64 { return s.f.Phi(s.mu, x) },
	}
}

// certTol bounds the re-checked Property-1 balance and box violations a
// warm solve may carry before the solver discards it for a cold one.
const certTol = 1e-6

// certified re-checks a warm solution independently of the solver that
// produced it: box constraints, budget, and the balance condition
// w_i·ϕ(x_i) = λ on interior coordinates.
func (s *Solver) certified(p numeric.WaterFillProblem, x []float64, lambda float64) bool {
	if !(lambda > 0) || math.IsInf(lambda, 1) {
		return false
	}
	var sum float64
	for i, v := range x {
		if math.IsNaN(v) || v < -certTol || v > p.Caps[i]+certTol {
			return false
		}
		sum += v
	}
	if math.Abs(sum-p.Budget) > certTol*math.Max(1, p.Budget) {
		return false
	}
	for i, v := range x {
		if p.Weights[i] <= 0 {
			continue
		}
		eps := certTol * math.Max(1, p.Caps[i])
		if v <= eps || v >= p.Caps[i]-eps {
			continue
		}
		if rel := math.Abs(p.Weights[i]*p.Deriv(v)-lambda) / lambda; rel > certTol {
			return false
		}
	}
	return true
}

// Solve computes the allocation for the given demand estimate. It returns
// the allocation, the dual level λ (0 when every demanded item is
// saturated), and whether the warm path produced the result. The solver
// retains the result as the warm-start state for the next call.
func (s *Solver) Solve(pop demand.Popularity) ([]float64, float64, bool, error) {
	p := s.problem(pop)
	if s.warm != nil {
		x, lambda, err := numeric.WaterFillWarm(p, s.warm)
		if err == nil && s.certified(p, x, lambda) {
			s.stats.Warm++
			s.warm = &numeric.WarmState{Lambda: lambda, X: x}
			return x, lambda, true, nil
		}
		s.stats.Fallback++
	}
	x, err := numeric.WaterFill(p)
	if err != nil {
		return nil, 0, false, err
	}
	s.stats.Cold++
	lambda, lerr := numeric.RecoverLambda(p, x)
	if lerr != nil {
		// Every coordinate clamped: no interior dual information. The
		// allocation is still valid; there is just nothing to warm-start
		// from next time.
		s.warm = nil
		return x, 0, false, nil
	}
	s.warm = &numeric.WarmState{Lambda: lambda, X: x}
	return x, lambda, false, nil
}

// SetWarmState seeds the warm-start state, used when restoring a
// snapshot. A nil state clears it.
func (s *Solver) SetWarmState(w *numeric.WarmState) { s.warm = w }
