// Command agesim runs a single opportunistic-caching simulation and
// prints the realized utility, allocation and protocol statistics.
//
// Usage examples:
//
//	agesim -utility step:10 -scheme qcr -nodes 50 -items 50 -rho 5 -duration 5000
//	agesim -utility power:0 -scheme prop -trace conference
//	agesim -utility exp:0.1 -scheme opt -trace file -trace-file contacts.txt
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	"impatience/internal/demand"
	"impatience/internal/experiment"
	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

func main() {
	var (
		utilitySpec = flag.String("utility", "step:10", "delay-utility spec: step:τ, exp:ν, power:α, neglog")
		scheme      = flag.String("scheme", "qcr", "replication scheme: qcr, qcrwom, opt, uni, sqrt, prop, dom")
		nodes       = flag.Int("nodes", 50, "number of nodes (pure P2P population)")
		items       = flag.Int("items", 50, "catalog size")
		rho         = flag.Int("rho", 5, "cache slots per node")
		mu          = flag.Float64("mu", 0.05, "pairwise contact rate (homogeneous trace)")
		omega       = flag.Float64("omega", 1, "Pareto popularity exponent")
		demandRate  = flag.Float64("demand", 2, "aggregate request rate per minute")
		duration    = flag.Float64("duration", 5000, "simulated minutes (homogeneous trace)")
		traceKind   = flag.String("trace", "homogeneous", "contact source: homogeneous, conference, vehicular, file")
		traceFile   = flag.String("trace-file", "", "trace file path when -trace file")
		seed        = flag.Uint64("seed", 1, "random seed")
		qcrScale    = flag.Float64("qcr-scale", 0.1, "reaction-function scale")
		warmup      = flag.Float64("warmup", 0.3, "fraction of the run excluded from averages")
		showAlloc   = flag.Bool("show-alloc", false, "print the final per-item replica counts")
	)
	flag.Parse()

	if err := run(*utilitySpec, *scheme, *nodes, *items, *rho, *mu, *omega, *demandRate,
		*duration, *traceKind, *traceFile, *seed, *qcrScale, *warmup, *showAlloc); err != nil {
		fmt.Fprintln(os.Stderr, "agesim:", err)
		os.Exit(1)
	}
}

func run(utilitySpec, scheme string, nodes, items, rho int, mu, omega, demandRate,
	duration float64, traceKind, traceFile string, seed uint64, qcrScale, warmup float64, showAlloc bool) error {

	u, err := utility.Parse(utilitySpec)
	if err != nil {
		return err
	}

	sc := experiment.Scenario{
		Nodes: nodes, Items: items, Rho: rho, Mu: mu, Omega: omega,
		DemandRate: demandRate, Duration: duration, Trials: 1, Seed: seed,
		QCRScale: qcrScale, WarmupFrac: warmup,
	}

	var tr *trace.Trace
	rng := rand.New(rand.NewPCG(seed, seed^0xa9e51))
	switch traceKind {
	case "homogeneous":
		gen := sc.HomogeneousTraces()
		tr, err = gen(seed)
	case "conference":
		cfg := synth.DefaultConference()
		cfg.Nodes = nodes
		tr, err = synth.Conference(cfg, rng)
	case "vehicular":
		cfg := synth.DefaultVehicular()
		cfg.Cabs = nodes
		tr, err = synth.Vehicular(cfg, rng)
	case "file":
		if traceFile == "" {
			return fmt.Errorf("-trace file requires -trace-file")
		}
		tr, err = trace.Load(traceFile)
		if err == nil && tr.Nodes != nodes {
			fmt.Printf("note: trace has %d nodes; overriding -nodes\n", tr.Nodes)
			sc.Nodes = tr.Nodes
			nodes = tr.Nodes
		}
	default:
		return fmt.Errorf("unknown trace kind %q", traceKind)
	}
	if err != nil {
		return err
	}
	sc.Duration = tr.Duration

	rates := trace.EmpiricalRates(tr)
	muEff := rates.Mean()
	if muEff <= 0 {
		return fmt.Errorf("trace has no contacts")
	}

	schemeName, err := canonicalScheme(scheme)
	if err != nil {
		return err
	}
	res, err := sc.RunScheme(schemeName, u, tr, rates, muEff, 0, false)
	if err != nil {
		return err
	}

	fmt.Printf("scheme          %s\n", schemeName)
	fmt.Printf("utility         %s\n", u.Name())
	fmt.Printf("trace           %s: %d nodes, %.0f min, %d contacts (mean pair rate %.5f/min)\n",
		traceKind, tr.Nodes, tr.Duration, len(tr.Contacts), muEff)
	fmt.Printf("population      pure P2P, ρ=%d, %d items, Pareto ω=%g, %.3g req/min\n", rho, items, omega, demandRate)
	fmt.Printf("avg utility     %.6g (gain per minute, after %.0f min warmup)\n", res.AvgUtilityRate, res.MeasureStart)
	fmt.Printf("fulfillments    %d (%d immediate), %d still outstanding\n", res.Fulfillments, res.Immediate, res.Outstanding)
	fmt.Printf("replicas made   %d over %d meetings\n", res.ReplicasMade, res.Meetings)

	// Analytic reference under the memoryless homogeneous approximation.
	pop := demand.Pareto(items, omega, demandRate)
	hom := welfare.Homogeneous{
		Utility: u, Pop: pop, Mu: muEff, Servers: nodes, Clients: nodes, PureP2P: true,
	}
	if opt, err := hom.GreedyOptimal(rho); err == nil {
		fmt.Printf("analytic U_opt  %.6g (homogeneous memoryless approximation)\n", hom.WelfareCounts(opt))
	}
	if showAlloc {
		fmt.Printf("final counts    %v\n", res.FinalCounts)
	}
	return nil
}

func canonicalScheme(s string) (string, error) {
	switch strings.ToLower(s) {
	case "qcr":
		return experiment.SchemeQCR, nil
	case "qcrwom", "qcr-no-routing":
		return experiment.SchemeQCRWOM, nil
	case "opt":
		return experiment.SchemeOPT, nil
	case "uni":
		return experiment.SchemeUNI, nil
	case "sqrt":
		return experiment.SchemeSQRT, nil
	case "prop":
		return experiment.SchemePROP, nil
	case "dom":
		return experiment.SchemeDOM, nil
	default:
		return "", fmt.Errorf("unknown scheme %q", s)
	}
}
