package alloc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	c := Uniform(50, 50, 5) // budget 250, 5 each
	for i, v := range c {
		if v != 5 {
			t.Errorf("item %d: %d replicas, want 5", i, v)
		}
	}
	// Remainder case: 7 items, budget 10 → 3 items with 2, 4 with 1.
	c = Uniform(7, 5, 2)
	if c.Total() != 10 {
		t.Errorf("total %d, want 10", c.Total())
	}
	if c[0] != 2 || c[1] != 2 || c[2] != 2 || c[3] != 1 {
		t.Errorf("remainder distribution wrong: %v", c)
	}
}

func TestUniformCapped(t *testing.T) {
	// 2 items, 10 servers, rho 10 → budget 100, but cap is 10 per item.
	c := Uniform(2, 10, 10)
	for i, v := range c {
		if v != 10 {
			t.Errorf("item %d: %d, want cap 10", i, v)
		}
	}
}

func TestWeightedProportions(t *testing.T) {
	c := Weighted([]float64{4, 2, 1, 1}, 100, 2) // budget 200
	if c.Total() != 200 {
		t.Fatalf("total %d, want 200", c.Total())
	}
	if c[0] != 100 {
		t.Errorf("dominant item got %d, want exactly 100 (= 200·4/8)", c[0])
	}
	if c[1] != 50 || c[2] != 25 || c[3] != 25 {
		t.Errorf("allocation %v, want [100 50 25 25]", c)
	}
}

func TestWeightedCapSpills(t *testing.T) {
	// One overwhelming weight must cap at the server count and spill the
	// rest to the other items.
	c := Weighted([]float64{1000, 1, 1}, 10, 2) // budget 20, cap 10
	if c[0] != 10 {
		t.Errorf("capped item got %d, want 10", c[0])
	}
	if c.Total() != 20 {
		t.Errorf("total %d, want 20", c.Total())
	}
	if c[1]+c[2] != 10 {
		t.Errorf("spill %v", c)
	}
}

func TestWeightedZeroWeightsFallsBackToUniform(t *testing.T) {
	c := Weighted([]float64{0, 0, 0}, 3, 1)
	if c.Total() != 3 {
		t.Errorf("total %d, want 3", c.Total())
	}
}

func TestWeightedSpillToZeroWeightItems(t *testing.T) {
	// Positive-weight items saturate; leftovers go to zero-weight items.
	c := Weighted([]float64{1, 0, 0}, 4, 3) // budget 12, cap 4
	if c[0] != 4 {
		t.Errorf("c[0]=%d, want 4", c[0])
	}
	if c.Total() != 12 {
		t.Errorf("total %d, want 12", c.Total())
	}
}

func TestSqrtProp(t *testing.T) {
	d := []float64{16, 4, 1, 1}
	s := Sqrt(d, 100, 1) // weights 4,2,1,1 → budget 100
	if s[0] != 50 || s[1] != 25 {
		t.Errorf("sqrt %v, want [50 25 ...]", s)
	}
	// Exact share of item 0 would be 220·16/22 = 160 > cap 110: it caps
	// and the freed budget is re-apportioned 4:1:1 over the rest.
	p := Prop(d, 110, 2)
	if p[0] != 110 {
		t.Errorf("prop head %d, want cap 110: %v", p[0], p)
	}
	if p.Total() != 220 {
		t.Errorf("prop total %d, want 220: %v", p.Total(), p)
	}
	if p[1] <= p[2] || p[2] != p[3] {
		t.Errorf("prop tail ordering wrong: %v", p)
	}
}

func TestDom(t *testing.T) {
	d := []float64{5, 1, 9, 3}
	c := Dom(d, 7, 2)
	if c[2] != 7 || c[0] != 7 {
		t.Errorf("DOM should fill top-2 items (2 and 0): %v", c)
	}
	if c[1] != 0 || c[3] != 0 {
		t.Errorf("DOM gave replicas to non-top items: %v", c)
	}
	if err := c.Validate(7, 2); err != nil {
		t.Errorf("DOM infeasible: %v", err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Counts{3, 2}).Validate(2, 2); err == nil {
		t.Error("per-item cap violation accepted")
	}
	if err := (Counts{2, 2, 1}).Validate(2, 2); err == nil {
		t.Error("capacity violation accepted")
	}
	if err := (Counts{-1}).Validate(2, 2); err == nil {
		t.Error("negative count accepted")
	}
	if err := (Counts{2, 2}).Validate(2, 2); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
}

func TestPlaceBasic(t *testing.T) {
	c := Counts{3, 2, 1}
	p, err := Place(c, 3, 2)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	got := p.Counts()
	for i := range c {
		if got[i] != c[i] {
			t.Errorf("item %d placed %d, want %d", i, got[i], c[i])
		}
	}
	for m := 0; m < 3; m++ {
		if p.Load(m) > 2 {
			t.Errorf("server %d overloaded: %d", m, p.Load(m))
		}
	}
	// No duplicate copies per server by construction of Placement.Set.
}

func TestPlaceTightFeasible(t *testing.T) {
	// The adversarial case: counts exactly fill capacity with mixed sizes.
	c := Counts{2, 2, 2}
	p, err := Place(c, 3, 2)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	for m := 0; m < 3; m++ {
		if p.Load(m) != 2 {
			t.Errorf("server %d load %d, want 2", m, p.Load(m))
		}
	}
}

func TestPlaceRejectsInfeasible(t *testing.T) {
	if _, err := Place(Counts{4}, 3, 2); err == nil {
		t.Error("count above server cap accepted")
	}
	if _, err := Place(Counts{3, 3, 3}, 3, 2); err == nil {
		t.Error("budget overflow accepted")
	}
}

func TestPlacementSetErrors(t *testing.T) {
	p := NewPlacement(2, 2, 1)
	if err := p.Set(0, 0, true); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := p.Set(0, 0, true); err == nil {
		t.Error("double placement accepted")
	}
	if err := p.Set(1, 0, true); err == nil {
		t.Error("over-capacity placement accepted")
	}
	if err := p.Set(0, 0, false); err != nil {
		t.Fatalf("removal failed: %v", err)
	}
	if err := p.Set(0, 0, false); err == nil {
		t.Error("double removal accepted")
	}
}

// Property: any feasible random integer allocation can be placed, and the
// placement reproduces its counts exactly with no server over capacity.
func TestPlaceFeasibleProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		servers := 2 + rng.IntN(10)
		rho := 1 + rng.IntN(5)
		items := 1 + rng.IntN(20)
		budget := servers * rho
		c := make(Counts, items)
		// Fill the budget greedily with random feasible increments.
		for budget > 0 {
			i := rng.IntN(items)
			if c[i] < servers {
				c[i]++
				budget--
			} else {
				// Find any non-full item; if none, stop.
				found := false
				for j := range c {
					if c[j] < servers {
						c[j]++
						budget--
						found = true
						break
					}
				}
				if !found {
					break
				}
			}
		}
		p, err := Place(c, servers, rho)
		if err != nil {
			return false
		}
		got := p.Counts()
		for i := range c {
			if got[i] != c[i] {
				return false
			}
		}
		for m := 0; m < servers; m++ {
			if p.Load(m) > rho {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: all heuristic allocations are feasible and exhaust the budget
// when the catalog is large enough.
func TestHeuristicsFeasibleProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		servers := 2 + rng.IntN(20)
		rho := 1 + rng.IntN(6)
		items := rho + rng.IntN(50) // items ≥ rho so DOM is feasible
		d := make([]float64, items)
		for i := range d {
			d[i] = rng.Float64()*10 + 0.01
		}
		budget := servers * rho
		for _, c := range []Counts{
			Uniform(items, servers, rho),
			Sqrt(d, servers, rho),
			Prop(d, servers, rho),
			Dom(d, servers, rho),
		} {
			if err := c.Validate(servers, rho); err != nil {
				return false
			}
			if items*servers >= budget && c.Total() != budget {
				return false
			}
			if _, err := Place(c, servers, rho); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
