package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// ObserveRequest is the wire form of one observation window posted to
// /v1/observe: the window length in seconds and a sparse map from item
// index (decimal string, JSON object keys cannot be numbers) to request
// count within the window.
type ObserveRequest struct {
	WindowSec float64            `json:"window_sec"`
	Counts    map[string]float64 `json:"counts"`
}

// ParseObserve decodes and fully validates an observation window against
// a catalog of items, returning the window length and a dense count
// vector. It never mutates shared state, so handlers can reject bad input
// before touching the estimator: malformed JSON, non-positive or
// non-finite windows, item indices outside [0, items), and negative or
// non-finite counts are all errors.
func ParseObserve(data []byte, items int) (float64, []float64, error) {
	var req ObserveRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return 0, nil, fmt.Errorf("serve: malformed observe body: %v", err)
	}
	if !(req.WindowSec > 0) || math.IsInf(req.WindowSec, 1) {
		return 0, nil, fmt.Errorf("serve: window_sec=%g, want finite > 0", req.WindowSec)
	}
	if len(req.Counts) > items {
		return 0, nil, fmt.Errorf("serve: %d distinct items in window exceeds catalog size %d", len(req.Counts), items)
	}
	counts := make([]float64, items)
	for key, c := range req.Counts {
		i, err := strconv.Atoi(key)
		if err != nil {
			return 0, nil, fmt.Errorf("serve: item key %q is not an integer index", key)
		}
		if i < 0 || i >= items {
			return 0, nil, fmt.Errorf("serve: item %d outside catalog [0, %d)", i, items)
		}
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return 0, nil, fmt.Errorf("serve: item %d count %g, want finite ≥ 0", i, c)
		}
		counts[i] = c
	}
	return req.WindowSec, counts, nil
}
