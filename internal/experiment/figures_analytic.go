package experiment

import (
	"fmt"
	"math"
	"strings"

	"impatience/internal/plot"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// Figure1 regenerates the delay-utility illustration (Figure 1): three
// panels of h(t) for the advertising-revenue, time-critical and
// waiting-cost families, on t ∈ [0, 5].
func Figure1() []*plot.Table {
	ts := linspace(0.02, 5, 250)
	panelA := &plot.Table{Title: "Figure 1a: advertising revenue", XLabel: "t"}
	panelA.X = ts
	addCurve(panelA, utility.Step{Tau: 1}, "step τ=1")
	addCurve(panelA, utility.Exponential{Nu: 0.1}, "exp ν=0.1")
	addCurve(panelA, utility.Exponential{Nu: 1}, "exp ν=1")

	panelB := &plot.Table{Title: "Figure 1b: time-critical information", XLabel: "t"}
	panelB.X = ts
	addCurve(panelB, utility.Power{Alpha: 2}, "power α=2")
	addCurve(panelB, utility.Power{Alpha: 1.5}, "power α=1.5")
	addCurve(panelB, utility.NegLog{}, "neglog (α=1)")

	panelC := &plot.Table{Title: "Figure 1c: waiting cost", XLabel: "t"}
	panelC.X = ts
	addCurve(panelC, utility.Power{Alpha: 0.5}, "power α=0.5")
	addCurve(panelC, utility.Power{Alpha: 0}, "power α=0")
	addCurve(panelC, utility.Power{Alpha: -1}, "power α=-1")

	return []*plot.Table{panelA, panelB, panelC}
}

func addCurve(t *plot.Table, f utility.Function, name string) {
	y := make([]float64, len(t.X))
	for i, x := range t.X {
		y[i] = f.H(x)
	}
	t.AddColumn(name, y)
}

// Figure2 regenerates the optimal-allocation coefficient curve (Figure
// 2): the exponent 1/(2−α) of x̃_i ∝ d_i^{1/(2−α)}, both from the closed
// form and re-measured by fitting the water-filled relaxed optimum of a
// concrete system — demonstrating that the solver actually produces the
// predicted power law.
func Figure2(sc Scenario) (*plot.Table, error) {
	alphas := linspace(-2, 1.75, 31)
	table := &plot.Table{Title: "Figure 2: optimal allocation exponent vs α", XLabel: "alpha"}
	table.X = alphas
	closed := make([]float64, len(alphas))
	fitted := make([]float64, len(alphas))
	pop := sc.Pop()
	for k, a := range alphas {
		if a == 1 {
			a += 1e-9
		}
		p := utility.Power{Alpha: a}
		closed[k] = p.OptimalExponent()
		// Fit exponent from the relaxed optimum: use plenty of servers so
		// caps do not bind and the power law is clean.
		h := welfare.Homogeneous{
			Utility: p, Pop: pop, Mu: sc.Mu,
			Servers: 100 * sc.Nodes, Clients: 100 * sc.Nodes,
		}
		x, err := h.RelaxedOptimal(1)
		if err != nil {
			return nil, fmt.Errorf("figure2 α=%g: %w", a, err)
		}
		fitted[k] = fitExponent(pop.Rates, x)
	}
	table.AddColumn("1/(2-alpha)", closed)
	table.AddColumn("fitted from water-filling", fitted)
	return table, nil
}

// fitExponent least-squares fits log x = e·log d + c over interior points.
func fitExponent(d, x []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for i := range d {
		if d[i] <= 0 || x[i] <= 1e-9 {
			continue
		}
		lx, ly := math.Log(d[i]), math.Log(x[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Table1 renders the closed forms of Table 1 with numerically verified
// sample values: for each family it prints ϕ and ψ at reference points
// from both the closed form and quadrature, demonstrating agreement.
func Table1(mu float64, servers int) string {
	type row struct {
		f     utility.Function
		label string
	}
	rows := []row{
		{utility.Step{Tau: 10}, "Step 1{t≤τ}, τ=10"},
		{utility.Exponential{Nu: 0.1}, "Exponential e^{-νt}, ν=0.1"},
		{utility.Power{Alpha: 1.5}, "Inverse power, α=1.5"},
		{utility.Power{Alpha: 0.5}, "Negative power, α=0.5"},
		{utility.NegLog{}, "Negative log"},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 — delay-utility transforms (µ=%g, |S|=%d)\n", mu, servers)
	fmt.Fprintf(&sb, "%-28s %12s %12s %12s %12s %12s\n",
		"family", "ϕ(5)", "ϕ(5) quad", "ψ(10)", "ψ(10) alg", "E[h]@µ·5")
	for _, r := range rows {
		phiC := r.f.Phi(mu, 5)
		phiN, err := utility.NumericPhi(r.f, mu, 5)
		if err != nil {
			phiN = math.NaN()
		}
		psi := utility.Psi(r.f, mu, float64(servers), 10)
		// Algebraic identity ψ(y) = (S/y)·ϕ(S/y).
		psiAlg := float64(servers) / 10 * r.f.Phi(mu, float64(servers)/10)
		fmt.Fprintf(&sb, "%-28s %12.6g %12.6g %12.6g %12.6g %12.6g\n",
			r.label, phiC, phiN, psi, psiAlg, r.f.ExpectedGain(mu*5))
	}
	return sb.String()
}

// linspace returns n evenly spaced points on [a, b].
func linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	return out
}

// logspace returns n log-spaced points on [a, b], a,b > 0.
func logspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	la, lb := math.Log(a), math.Log(b)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(la + (lb-la)*float64(i)/float64(n-1))
	}
	return out
}
