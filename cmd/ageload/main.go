// Command ageload drives an aged daemon with a synthetic request
// firehose: Pareto popularity over the catalog, optionally churned by the
// flash-crowd rotation of the robustness experiments (synth.FlashCrowd).
// Requests are aggregated client-side into observation windows — the
// firehose is represented by its per-window counts, which is how any
// high-volume deployment would feed the daemon — and allocation queries
// are interleaved at a configured rate with their latency recorded.
//
// At the end of the run ageload prints a JSON report (synthetic req/s
// offered, observe windows posted, re-solves triggered, allocation-query
// p50/p99 latency) and exits non-zero if the daemon served no allocation
// queries or the p99 latency exceeds -max-p99. CI's serve-smoke job uses
// exactly that gate.
//
// Usage:
//
//	ageload -addr http://localhost:8642 -rate 100000 -duration 10 \
//	        -window 0.5 -flash-period 2 -flash-stride 40 -max-p99 50ms
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"impatience/internal/demand"
	"impatience/internal/serve"
	"impatience/internal/stats"
	"impatience/internal/synth"
)

type report struct {
	OfferedReqPerSec float64 `json:"offered_req_per_sec"`
	FoldedRequests   float64 `json:"folded_requests"`
	Windows          int     `json:"windows"`
	Shifts           int     `json:"shifts"`
	Resolves         uint64  `json:"resolves"`
	WarmSolves       uint64  `json:"warm_solves"`
	ColdSolves       uint64  `json:"cold_solves"`
	Fallbacks        uint64  `json:"fallbacks"`
	Queries          int     `json:"queries"`
	QueryP50Ms       float64 `json:"query_p50_ms"`
	QueryP99Ms       float64 `json:"query_p99_ms"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	WallSec          float64 `json:"wall_sec"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8642", "aged base URL")
		items       = flag.Int("items", 2000, "catalog size (must match the daemon)")
		omega       = flag.Float64("omega", 1, "Pareto popularity exponent")
		rate        = flag.Float64("rate", 100000, "synthetic aggregate request rate, req/s")
		duration    = flag.Float64("duration", 10, "run length, seconds of synthetic time")
		window      = flag.Float64("window", 0.5, "observation window length, seconds")
		flashPeriod = flag.Float64("flash-period", 0, "flash-crowd rotation period, seconds (0 = stationary demand)")
		flashStride = flag.Int("flash-stride", 0, "flash-crowd rotation stride, items per period")
		queries     = flag.Int("queries", 4, "allocation queries interleaved per window")
		maxP99      = flag.Duration("max-p99", 0, "fail if allocation-query p99 exceeds this (0 = no gate)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()

	if err := run(*addr, *items, *omega, *rate, *duration, *window,
		*flashPeriod, *flashStride, *queries, *maxP99, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "ageload:", err)
		os.Exit(1)
	}
}

func run(addr string, items int, omega, rate, duration, window, flashPeriod float64,
	flashStride, queriesPerWindow int, maxP99, timeout time.Duration) error {
	if items <= 0 || !(rate > 0) || !(duration > 0) || !(window > 0) || window > duration {
		return fmt.Errorf("bad load shape: items=%d rate=%g duration=%g window=%g", items, rate, duration, window)
	}
	base := demand.Pareto(items, omega, rate)
	var sched demand.Schedule
	if flashPeriod > 0 && flashStride != 0 {
		var err error
		sched, err = synth.FlashCrowd(base, flashPeriod, duration, flashStride)
		if err != nil {
			return err
		}
	}

	client := &http.Client{Timeout: timeout}
	cur := base
	shiftIdx := 0
	windows := int(duration / window)
	var rep report
	var latencies []float64
	start := time.Now()
	for k := 0; k < windows; k++ {
		t := float64(k) * window
		for shiftIdx < len(sched) && sched[shiftIdx].T <= t {
			cur = sched[shiftIdx].Pop
			shiftIdx++
		}
		body, folded := observeBody(cur, window)
		if err := postObserve(client, addr, body); err != nil {
			return fmt.Errorf("window %d: %w", k, err)
		}
		rep.FoldedRequests += folded
		for q := 0; q < queriesPerWindow; q++ {
			ms, err := timedAllocationQuery(client, addr)
			if err != nil {
				return fmt.Errorf("window %d query %d: %w", k, q, err)
			}
			latencies = append(latencies, ms)
		}
	}
	rep.WallSec = time.Since(start).Seconds()
	rep.Windows = windows
	rep.Shifts = shiftIdx
	rep.OfferedReqPerSec = rep.FoldedRequests / duration
	rep.Queries = len(latencies)
	if len(latencies) > 0 {
		p := stats.Percentiles(latencies, 0.50, 0.99)
		rep.QueryP50Ms, rep.QueryP99Ms = p[0], p[1]
		rep.QueriesPerSec = float64(len(latencies)) / rep.WallSec
	}

	var st serve.StatsResponse
	if err := getJSON(client, addr+"/v1/stats", &st); err != nil {
		return err
	}
	rep.Resolves = st.Resolves
	rep.WarmSolves = st.Solves.Warm
	rep.ColdSolves = st.Solves.Cold
	rep.Fallbacks = st.Solves.Fallback

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	// Gates: the daemon must actually have served allocations and solved
	// at least once, and the query tail must be under the ceiling.
	if rep.Queries == 0 || rep.QueriesPerSec <= 0 {
		return fmt.Errorf("gate: no allocation queries served")
	}
	if rep.Resolves == 0 {
		return fmt.Errorf("gate: the daemon never re-solved the allocation")
	}
	if maxP99 > 0 && rep.QueryP99Ms > float64(maxP99.Milliseconds()) {
		return fmt.Errorf("gate: allocation-query p99 %.2fms exceeds ceiling %v", rep.QueryP99Ms, maxP99)
	}
	return nil
}

// observeBody renders one observation window: expected counts
// rate_i·window for every item with demand, as the sparse JSON map
// /v1/observe takes. Returns the body and the total count it represents.
func observeBody(pop demand.Popularity, window float64) ([]byte, float64) {
	var buf bytes.Buffer
	buf.WriteString(`{"window_sec":`)
	buf.WriteString(strconv.FormatFloat(window, 'g', -1, 64))
	buf.WriteString(`,"counts":{`)
	var total float64
	first := true
	for i, r := range pop.Rates {
		if r <= 0 {
			continue
		}
		c := r * window
		total += c
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteByte('"')
		buf.WriteString(strconv.Itoa(i))
		buf.WriteString(`":`)
		buf.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	buf.WriteString("}}")
	return buf.Bytes(), total
}

func postObserve(client *http.Client, addr string, body []byte) error {
	resp, err := client.Post(addr+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("observe: HTTP %d: %s", resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func timedAllocationQuery(client *http.Client, addr string) (float64, error) {
	t0 := time.Now()
	resp, err := client.Get(addr + "/v1/allocation")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("allocation: HTTP %d", resp.StatusCode)
	}
	return float64(time.Since(t0).Microseconds()) / 1000, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
