package demand

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Scheduled popularity churn generalizes the single DemandSwitch of the
// dynamic-demand extension to a whole timeline of popularity changes —
// the "flash crowd" workloads of the robustness experiments, where the
// head of the Zipf catalog rotates on a fixed period and a reactive
// replication scheme must chase it. A Schedule is a pure description;
// the simulator applies each shift through Process.SetPopularity exactly
// when the first request at or after its time is drawn.

// Shift is one scheduled popularity change: at time T the demand process
// switches to Pop.
type Shift struct {
	T   float64
	Pop Popularity
}

// Schedule is a list of popularity shifts in strictly ascending time
// order. The zero value (no shifts) is valid and means stationary demand.
type Schedule []Shift

// Validate checks the schedule against a catalog size: times must be
// finite, non-negative and strictly ascending, and every shift must carry
// a valid popularity over exactly items entries. Construction-time
// validation is deliberate — an unsorted schedule would silently skip
// shifts at sim time.
func (s Schedule) Validate(items int) error {
	prev := math.Inf(-1)
	for k, sh := range s {
		if math.IsNaN(sh.T) || math.IsInf(sh.T, 0) || sh.T < 0 {
			return fmt.Errorf("demand: shift %d has invalid time %g", k, sh.T)
		}
		if sh.T <= prev {
			return fmt.Errorf("demand: shift %d at t=%g not after t=%g (schedule must be strictly ascending)", k, sh.T, prev)
		}
		prev = sh.T
		if sh.Pop.Items() != items {
			return fmt.Errorf("demand: shift %d has %d items, catalog has %d", k, sh.Pop.Items(), items)
		}
		if err := sh.Pop.Validate(); err != nil {
			return fmt.Errorf("demand: shift %d: %w", k, err)
		}
	}
	return nil
}

// ParseSchedule reads a popularity-churn schedule in a line-oriented text
// format, in the spirit of faults.ParseTimeline. Each line transforms the
// current popularity (starting from base) and schedules the result:
//
//	# comments and blank lines are ignored
//	<t> rotate <k>       rotate item ranks by k positions (flash crowd)
//	<t> swap <i> <j>     exchange the rates of items i and j
//	<t> zipf <omega>     reset to Pareto(omega), same aggregate rate
//	<t> uniform          reset to uniform, same aggregate rate
//
// Operations are cumulative: a rotate followed by a swap schedules the
// swapped rotation. Times must be strictly ascending; malformed input
// returns an error, never a panic, and never a partial schedule.
func ParseSchedule(r io.Reader, base Popularity) (Schedule, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	items := base.Items()
	if items == 0 {
		return nil, fmt.Errorf("demand: empty base catalog")
	}
	cur := base.Clone()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out Schedule
	lineNo := 0
	prevT := math.Inf(-1)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("demand: line %d: want \"<t> <op> [args]\", got %q", lineNo, line)
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return nil, fmt.Errorf("demand: line %d: bad time %q", lineNo, fields[0])
		}
		if t <= prevT {
			return nil, fmt.Errorf("demand: line %d: t=%g not after t=%g (schedule must be strictly ascending)", lineNo, t, prevT)
		}
		switch op, args := fields[1], fields[2:]; op {
		case "rotate":
			if len(args) != 1 {
				return nil, fmt.Errorf("demand: line %d: rotate wants one argument", lineNo)
			}
			k, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fmt.Errorf("demand: line %d: bad rotation %q", lineNo, args[0])
			}
			cur = rotated(cur, k)
		case "swap":
			if len(args) != 2 {
				return nil, fmt.Errorf("demand: line %d: swap wants two arguments", lineNo)
			}
			i, err1 := strconv.Atoi(args[0])
			j, err2 := strconv.Atoi(args[1])
			if err1 != nil || err2 != nil || i < 0 || j < 0 || i >= items || j >= items {
				return nil, fmt.Errorf("demand: line %d: swap %q %q outside catalog [0,%d)", lineNo, args[0], args[1], items)
			}
			cur = cur.Clone()
			cur.Rates[i], cur.Rates[j] = cur.Rates[j], cur.Rates[i]
		case "zipf":
			if len(args) != 1 {
				return nil, fmt.Errorf("demand: line %d: zipf wants one argument", lineNo)
			}
			omega, err := strconv.ParseFloat(args[0], 64)
			if err != nil || math.IsNaN(omega) || math.IsInf(omega, 0) {
				return nil, fmt.Errorf("demand: line %d: bad zipf exponent %q", lineNo, args[0])
			}
			cur = Pareto(items, omega, base.Total())
		case "uniform":
			if len(args) != 0 {
				return nil, fmt.Errorf("demand: line %d: uniform takes no arguments", lineNo)
			}
			cur = Uniform(items, base.Total())
		default:
			return nil, fmt.Errorf("demand: line %d: unknown operation %q", lineNo, op)
		}
		if err := cur.Validate(); err != nil {
			return nil, fmt.Errorf("demand: line %d: %w", lineNo, err)
		}
		prevT = t
		out = append(out, Shift{T: t, Pop: cur.Clone()})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// rotated returns a copy of pop with item i's rate moved to item
// (i+k) mod items — the flash-crowd primitive: the whole rank order
// shifts, so a formerly cold item inherits the head of the Zipf curve.
func rotated(pop Popularity, k int) Popularity {
	n := pop.Items()
	out := Popularity{Rates: make([]float64, n)}
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	for i, d := range pop.Rates {
		out.Rates[(i+k)%n] = d
	}
	return out
}
