package numeric

import (
	"errors"
	"math"
	"sort"
)

// Warm-started water-filling. WaterFill bisects the dual level λ from a
// bracket derived only from the problem's extreme marginal values, and
// inverts every coordinate's derivative from the cold guess Cap_i/2 — robust,
// but expensive when the same problem is re-solved over and over with
// slightly drifted weights, which is exactly the serving workload of
// cmd/aged. WaterFillWarm re-solves from the previous solution instead:
//
//   - the λ search starts from a tight bracket around the previous dual
//     level and closes it with a secant iteration (superlinear) instead of
//     pure bisection from orders-of-magnitude-wide bounds;
//   - each coordinate's inversion starts from its previous allocation and
//     uses a log-space secant, which is exact in one step for power-law
//     derivatives and needs a handful of evaluations otherwise;
//   - the λ-independent clamp probes Deriv(Cap_i) and Deriv(tiny) are
//     computed once per solve instead of once per fill.
//
// The warm path reproduces WaterFill's clamp decisions and its slack/budget
// certification exactly; only the root-finding trajectory differs, so the
// two solvers agree on the allocation to solver tolerance (the property
// suite pins 1e-9). Any bracketing or convergence trouble is reported as an
// error so callers can fall back to the cold solver — warm starting is an
// optimization, never a source of silently different answers.

// WarmState carries the reusable part of a previous water-filling solution:
// the dual level λ (the common interior marginal value of Property 1) and
// the allocation it certified.
type WarmState struct {
	Lambda float64   // previous dual level, > 0
	X      []float64 // previous allocation, len == len(Weights)
}

// ErrWarmStart is returned when the warm solve cannot bracket or converge
// on the dual level from the supplied state; callers should re-solve cold.
var ErrWarmStart = errors.New("numeric: warm start failed to converge on the dual level")

// warmMaxFills bounds the number of Σ x_i(λ) evaluations a warm solve may
// spend before declaring the hint useless; the cold solver spends several
// times this, so giving up early keeps the fallback cheap.
const warmMaxFills = 120

// WaterFillWarm solves the same problem as WaterFill, warm-started from a
// previous solution, and returns the allocation together with the final
// dual level (for the next warm start). The warm state must have a positive
// finite Lambda and an allocation of matching length; anything else, or any
// convergence failure, returns ErrWarmStart (or the underlying inversion
// error) and the caller should fall back to WaterFill.
func WaterFillWarm(p WaterFillProblem, warm *WarmState) ([]float64, float64, error) {
	n := len(p.Weights)
	if n == 0 || len(p.Caps) != n || p.Budget < 0 || (p.Deriv == nil && p.DerivFor == nil) {
		return nil, 0, ErrInfeasible
	}
	var effCap float64
	for i, c := range p.Caps {
		if c < 0 || p.Weights[i] < 0 {
			return nil, 0, ErrInfeasible
		}
		if p.Weights[i] > 0 {
			effCap += c
		}
	}
	if p.Budget > effCap*(1+1e-9) {
		return nil, 0, ErrInfeasible
	}
	x := make([]float64, n)
	if p.Budget == 0 {
		return x, 0, nil
	}
	if p.Budget >= effCap {
		for i := range x {
			if p.Weights[i] > 0 {
				x[i] = p.Caps[i]
			}
		}
		return x, 0, nil
	}
	if warm == nil || len(warm.X) != n || !(warm.Lambda > 0) || math.IsInf(warm.Lambda, 0) {
		return nil, 0, ErrWarmStart
	}

	w := newWarmFiller(p, warm.X)
	var fillErr error
	fill := func(lambda float64) float64 {
		return w.fill(lambda, x, &fillErr)
	}

	// Bracket λ around the hint: fill is non-increasing in λ, so walk the
	// violated side outward geometrically. Small drifts bracket in one or
	// two probes; a hint that needs more than the fill budget is useless
	// and the caller should solve cold.
	lo, hi := warm.Lambda, warm.Lambda // fill(lo) ≥ Budget ≥ fill(hi) once bracketed
	flo := fill(lo)
	fhi := flo
	for k := 0; flo < p.Budget; k++ {
		if k >= 60 || lo == 0 {
			return nil, 0, ErrWarmStart
		}
		hi, fhi = lo, flo
		lo /= 4
		flo = fill(lo)
	}
	for k := 0; fhi > p.Budget; k++ {
		if k >= 60 || math.IsInf(hi, 1) {
			return nil, 0, ErrWarmStart
		}
		lo, flo = hi, fhi
		hi *= 4
		fhi = fill(hi)
	}
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return nil, 0, ErrNaN
	}

	// Close the bracket in log space with a secant iteration safeguarded by
	// bisection: the secant step is taken from the two most recent iterates
	// and projected into the bracket; a degenerate or out-of-bracket step
	// falls back to the midpoint. Two consecutive machine-precision steps
	// mean λ has converged (F is strictly monotone in the bracket).
	ulo, uhi := math.Log(lo), math.Log(hi)
	u0, f0 := ulo, flo-p.Budget
	u1, f1 := uhi, fhi-p.Budget
	stall := 0
	for it := 0; it < warmMaxFills; it++ {
		width := uhi - ulo
		if mid := ulo + width/2; mid <= ulo || mid >= uhi {
			break // bracket collapsed to machine precision
		}
		var u float64
		if denom := f1 - f0; denom != 0 && !math.IsInf(denom, 0) && !math.IsNaN(denom) {
			u = u1 - f1*(u1-u0)/denom
		} else {
			u = ulo + width/2
		}
		// Keep the step strictly interior so the bracket always shrinks.
		if frac := width / 64; u < ulo+frac || u > uhi-frac {
			u = ulo + width/2
		}
		fu := fill(math.Exp(u)) - p.Budget
		if math.IsNaN(fu) {
			return nil, 0, ErrNaN
		}
		if fu >= 0 {
			ulo = u
		} else {
			uhi = u
		}
		step := math.Abs(u - u1)
		u0, f0 = u1, f1
		u1, f1 = u, fu
		if step <= 1e-15*math.Max(1, math.Abs(u)) {
			if stall++; stall >= 2 {
				break
			}
		} else {
			stall = 0
		}
	}
	lambda := math.Exp(uhi)
	total := fill(lambda)
	if fillErr != nil {
		return nil, 0, fillErr
	}
	if err := p.settle(x, total); err != nil {
		return nil, 0, err
	}
	return x, lambda, nil
}

// RecoverLambda reconstructs the dual level certified by an allocation (for
// warm-starting after a cold WaterFill, which does not report it): the
// Property-1 balance condition makes w_i·Deriv(x_i) equal across interior
// coordinates, so the median over them is a robust estimate. Allocations
// with no interior coordinate (every item clamped to 0 or its cap) carry no
// dual information and return ErrWarmStart.
func RecoverLambda(p WaterFillProblem, x []float64) (float64, error) {
	n := len(p.Weights)
	if len(x) != n || len(p.Caps) != n {
		return 0, ErrWarmStart
	}
	var vals []float64
	for i, v := range x {
		if p.Weights[i] <= 0 {
			continue
		}
		eps := 1e-9 * math.Max(1, p.Caps[i])
		if v <= eps || v >= p.Caps[i]-eps {
			continue
		}
		m := p.Weights[i] * p.derivFor(i)(v)
		if m > 0 && !math.IsInf(m, 0) && !math.IsNaN(m) {
			vals = append(vals, m)
		}
	}
	if len(vals) == 0 {
		return 0, ErrWarmStart
	}
	sort.Float64s(vals)
	return vals[len(vals)/2], nil
}

// warmFiller evaluates Σ x_i(λ) re-using per-coordinate state across fills:
// the λ-independent clamp probes are computed once, and each interior
// inversion starts from the coordinate's most recent allocation.
type warmFiller struct {
	p     WaterFillProblem
	dCap  []float64 // Deriv_i(Cap_i)
	dTiny []float64 // Deriv_i(tiny)
	guess []float64 // latest interior solution per coordinate
}

func newWarmFiller(p WaterFillProblem, prev []float64) *warmFiller {
	n := len(p.Weights)
	w := &warmFiller{
		p:     p,
		dCap:  make([]float64, n),
		dTiny: make([]float64, n),
		guess: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		if p.Weights[i] == 0 || p.Caps[i] == 0 {
			continue
		}
		deriv := p.derivFor(i)
		w.dCap[i] = deriv(p.Caps[i])
		w.dTiny[i] = deriv(tiny)
		g := prev[i]
		if !(g > 0) || g >= p.Caps[i] || math.IsNaN(g) {
			g = p.Caps[i] / 2 // clamped or invalid before: cold guess
		}
		w.guess[i] = g
	}
	return w
}

// fill mirrors WaterFillProblem.fillAt's clamp logic exactly; only the
// interior inversion differs (warm secant instead of cold bracketing).
func (w *warmFiller) fill(lambda float64, x []float64, fillErr *error) float64 {
	p := w.p
	var total float64
	for i := range x {
		wt := p.Weights[i]
		if wt == 0 || p.Caps[i] == 0 {
			x[i] = 0
			continue
		}
		target := lambda / wt
		if w.dCap[i] >= target {
			x[i] = p.Caps[i]
		} else if d0 := w.dTiny[i]; d0 <= target && !math.IsInf(d0, 1) {
			x[i] = 0
		} else {
			deriv := p.derivFor(i)
			v, err := invertWarm(deriv, target, w.guess[i], p.Caps[i])
			if err != nil {
				// The secant lost the root: re-solve this coordinate with
				// the unconditionally robust cold inversion before giving
				// up on the whole solve.
				v, err = InvertDecreasing(deriv, target, p.Caps[i]/2)
				if err != nil {
					if *fillErr == nil {
						*fillErr = err
					}
					v = 0
				}
			}
			if v < 0 {
				v = 0
			}
			if v > p.Caps[i] {
				v = p.Caps[i]
			}
			x[i] = v
			if v > 0 && v < p.Caps[i] {
				w.guess[i] = v
			}
		}
		total += x[i]
	}
	return total
}

// invertWarm solves deriv(v) = target for a strictly decreasing positive
// deriv, starting from a guess close to the root. It works on
// s(u) = ln deriv(e^u) − ln target, which a secant solves exactly in one
// step for power-law derivatives and superlinearly otherwise; the bracket
// established during expansion safeguards every step. Any NaN, failed
// bracket, or slow convergence is an error — the caller re-inverts cold.
func invertWarm(deriv func(float64) float64, target, guess, cap float64) (float64, error) {
	if !(target > 0) {
		return 0, ErrNaN
	}
	lnT := math.Log(target)
	s := func(u float64) float64 {
		d := deriv(math.Exp(u))
		if !(d > 0) {
			return math.NaN()
		}
		return math.Log(d) - lnT
	}
	u0 := math.Log(math.Min(math.Max(guess, tiny), cap))
	s0 := s(u0)
	if math.IsNaN(s0) {
		return 0, ErrNaN
	}
	if s0 == 0 {
		return math.Exp(u0), nil
	}
	// Bracket by doubling steps in the downhill direction (s decreases in
	// u, so s > 0 means the root lies above).
	h := 0.125
	if s0 < 0 {
		h = -h
	}
	u1, s1 := u0, s0
	for k := 0; ; k++ {
		if k >= 64 {
			return 0, ErrNoBracket
		}
		u := u1 + h
		su := s(u)
		if math.IsNaN(su) {
			return 0, ErrNaN
		}
		u0, s0 = u1, s1
		u1, s1 = u, su
		if su == 0 {
			return math.Exp(u), nil
		}
		if (s0 > 0) != (s1 > 0) {
			break
		}
		h *= 2
	}
	// Bracket endpoints ordered as [ulo (s>0), uhi (s<0)].
	ulo, uhi := u0, u1
	if s0 < 0 {
		ulo, uhi = u1, u0
	}
	prev := u1
	for it := 0; it < 60; it++ {
		var u float64
		if denom := s1 - s0; denom != 0 && !math.IsInf(denom, 0) {
			u = u1 - s1*(u1-u0)/denom
		} else {
			u = ulo + (uhi-ulo)/2
		}
		if (u-ulo)*(u-uhi) >= 0 { // outside the bracket
			u = ulo + (uhi-ulo)/2
		}
		if math.Abs(u-prev) <= 1e-14*math.Max(1, math.Abs(u)) {
			return math.Exp(u), nil
		}
		su := s(u)
		if math.IsNaN(su) {
			return 0, ErrNaN
		}
		if su == 0 {
			return math.Exp(u), nil
		}
		if su > 0 {
			ulo = u
		} else {
			uhi = u
		}
		u0, s0 = u1, s1
		u1, s1 = u, su
		prev = u
		if mid := ulo + (uhi-ulo)/2; mid <= ulo || mid >= uhi {
			return math.Exp(mid), nil
		}
	}
	return 0, ErrNoConverge
}
