package rates

import (
	"fmt"
	"math"
	"math/rand/v2"

	"impatience/internal/mobility"
)

// CommunityConfig parameterizes the community/block model: Nodes split
// as evenly as possible across Communities (the first Nodes mod
// Communities communities get one extra member), intra-community pairs
// meeting at rate In and cross-community pairs at rate Out.
type CommunityConfig struct {
	Nodes       int
	Communities int
	In          float64 // intra-community pair rate
	Out         float64 // inter-community pair rate
}

// NewCommunity builds the community/block model.
func NewCommunity(cfg CommunityConfig) (*Model, error) {
	if cfg.Communities <= 0 || cfg.Nodes < cfg.Communities {
		return nil, fmt.Errorf("%w: %d nodes across %d communities", ErrModel, cfg.Nodes, cfg.Communities)
	}
	sizes := make([]int, cfg.Communities)
	base, extra := cfg.Nodes/cfg.Communities, cfg.Nodes%cfg.Communities
	for c := range sizes {
		sizes[c] = base
		if c < extra {
			sizes[c]++
		}
	}
	block := make([][]float64, cfg.Communities)
	for c := range block {
		block[c] = make([]float64, cfg.Communities)
		for d := range block[c] {
			if c == d {
				block[c][d] = cfg.In
			} else {
				block[c][d] = cfg.Out
			}
		}
	}
	return New(sizes, block, nil)
}

// HubSpokeConfig parameterizes the hub-spoke model: Hubs relay nodes
// (community 0) and Nodes−Hubs spokes (community 1), with hub-hub pairs
// at HubHub, hub-spoke pairs at HubSpoke, and spoke-spoke pairs at
// SpokeSpoke (typically near zero — spokes communicate through hubs).
type HubSpokeConfig struct {
	Nodes      int
	Hubs       int
	HubHub     float64
	HubSpoke   float64
	SpokeSpoke float64
}

// NewHubSpoke builds the hub-spoke model.
func NewHubSpoke(cfg HubSpokeConfig) (*Model, error) {
	if cfg.Hubs <= 0 || cfg.Nodes <= cfg.Hubs {
		return nil, fmt.Errorf("%w: %d hubs in %d nodes", ErrModel, cfg.Hubs, cfg.Nodes)
	}
	block := [][]float64{
		{cfg.HubHub, cfg.HubSpoke},
		{cfg.HubSpoke, cfg.SpokeSpoke},
	}
	return New([]int{cfg.Hubs, cfg.Nodes - cfg.Hubs}, block, nil)
}

// DistanceConfig parameterizes the distance-kernel model: nodes get home
// positions from a random-waypoint fleet placement over a Width×Height
// area (internal/mobility), the area is partitioned into CellsX×CellsY
// grid cells, and two cells meet at rate Mu0·exp(−d/Lambda) where d is
// the distance between cell centers — so co-located nodes meet at Mu0
// and the rate decays with the exponential kernel the Cabspotting
// extraction exhibits. Cells left empty by the placement are dropped, so
// the realized community count is at most CellsX·CellsY.
type DistanceConfig struct {
	Nodes  int
	CellsX int
	CellsY int
	Width  float64 // meters
	Height float64 // meters
	Mu0    float64 // pair rate at distance zero
	Lambda float64 // kernel decay length, meters
	Seed   uint64  // home-position placement seed
}

// NewDistanceKernel builds the distance-kernel model. Placement is a
// deterministic function of the seed.
func NewDistanceKernel(cfg DistanceConfig) (*Model, error) {
	switch {
	case cfg.Nodes < 2:
		return nil, fmt.Errorf("%w: %d nodes", ErrModel, cfg.Nodes)
	case cfg.CellsX <= 0 || cfg.CellsY <= 0:
		return nil, fmt.Errorf("%w: %dx%d grid", ErrModel, cfg.CellsX, cfg.CellsY)
	case cfg.Mu0 <= 0 || math.IsNaN(cfg.Mu0) || math.IsInf(cfg.Mu0, 0):
		return nil, fmt.Errorf("%w: mu0 %g", ErrModel, cfg.Mu0)
	case cfg.Lambda <= 0 || math.IsNaN(cfg.Lambda) || math.IsInf(cfg.Lambda, 0):
		return nil, fmt.Errorf("%w: lambda %g", ErrModel, cfg.Lambda)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xd15ce11))
	fleet, err := mobility.NewRWP(mobility.RWPConfig{
		Nodes:    cfg.Nodes,
		Width:    cfg.Width,
		Height:   cfg.Height,
		MinSpeed: 1,
		MaxSpeed: 1,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrModel, err)
	}

	// Assign each node's home position to a grid cell, then compact away
	// empty cells (NewAssigned requires every community populated).
	cw, ch := cfg.Width/float64(cfg.CellsX), cfg.Height/float64(cfg.CellsY)
	cell := make([]int, cfg.Nodes)
	counts := make([]int, cfg.CellsX*cfg.CellsY)
	for i := 0; i < cfg.Nodes; i++ {
		p := fleet.Position(i)
		cx, cy := int(p.X/cw), int(p.Y/ch)
		if cx >= cfg.CellsX {
			cx = cfg.CellsX - 1
		}
		if cy >= cfg.CellsY {
			cy = cfg.CellsY - 1
		}
		cell[i] = cy*cfg.CellsX + cx
		counts[cell[i]]++
	}
	remap := make([]int32, len(counts))
	centers := make([]mobility.Point, 0, len(counts))
	nc := int32(0)
	for c, n := range counts {
		if n == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = nc
		nc++
		centers = append(centers, mobility.Point{
			X: (float64(c%cfg.CellsX) + 0.5) * cw,
			Y: (float64(c/cfg.CellsX) + 0.5) * ch,
		})
	}
	comm := make([]int32, cfg.Nodes)
	for i, c := range cell {
		comm[i] = remap[c]
	}
	block := make([][]float64, nc)
	for c := range block {
		block[c] = make([]float64, nc)
		for d := range block[c] {
			block[c][d] = cfg.Mu0 * math.Exp(-centers[c].Dist(centers[d])/cfg.Lambda)
		}
	}
	return NewAssigned(comm, block, nil)
}
