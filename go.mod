module impatience

go 1.24
