package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestChiSquareCritical pins the Wilson–Hilferty approximation against
// tabulated χ² quantiles. The suite only ever uses df ≥ 5, where the
// approximation is well under 1%; the df=1 row documents the looser
// small-df behavior.
func TestChiSquareCritical(t *testing.T) {
	cases := []struct {
		alpha float64
		df    int
		want  float64
		tol   float64 // relative
	}{
		{0.05, 1, 3.841, 0.06},
		{0.05, 5, 11.070, 0.01},
		{0.05, 10, 18.307, 0.005},
		{0.01, 10, 23.209, 0.005},
		{0.05, 100, 124.342, 0.002},
		{0.001, 200, 267.541, 0.005},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.alpha, c.df)
		if rel := math.Abs(got-c.want) / c.want; rel > c.tol {
			t.Errorf("ChiSquareCritical(%g, %d) = %g, want %g (rel err %g > %g)",
				c.alpha, c.df, got, c.want, rel, c.tol)
		}
	}
	for _, bad := range []struct {
		alpha float64
		df    int
	}{{0, 5}, {1, 5}, {-0.1, 5}, {0.05, 0}, {0.05, -3}} {
		if got := ChiSquareCritical(bad.alpha, bad.df); !math.IsNaN(got) {
			t.Errorf("ChiSquareCritical(%g, %d) = %g, want NaN", bad.alpha, bad.df, got)
		}
	}
}

// TestChiSquareGOFNull draws multinomial samples from a known
// distribution and checks the GOF statistic stays under the 0.1%
// critical value; a deliberately wrong expectation must blow past it.
func TestChiSquareGOFNull(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	const bins, draws = 40, 200000
	probs := make([]float64, bins)
	var tot float64
	for i := range probs {
		probs[i] = 0.2 + rng.Float64()
		tot += probs[i]
	}
	obs := make([]float64, bins)
	for d := 0; d < draws; d++ {
		u := rng.Float64() * tot
		for i := range probs {
			u -= probs[i]
			if u <= 0 {
				obs[i]++
				break
			}
		}
	}
	exp := make([]float64, bins)
	for i := range exp {
		exp[i] = probs[i] / tot * draws
	}
	stat, df, err := ChiSquareGOF(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if df != bins-1 {
		t.Fatalf("df = %d, want %d", df, bins-1)
	}
	if crit := ChiSquareCritical(0.001, df); stat > crit {
		t.Fatalf("null sample rejected: stat %g > crit %g", stat, crit)
	}
	// Shift a quarter of the mass: must reject decisively.
	for i := 0; i < bins/2; i++ {
		exp[i] *= 1.5
		exp[i+bins/2] *= 0.5
	}
	stat, df, err = ChiSquareGOF(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(0.001, df); stat < 10*crit {
		t.Fatalf("misfit not detected: stat %g vs crit %g", stat, crit)
	}
}

// TestChiSquareGOFErrors covers the degenerate inputs.
func TestChiSquareGOFErrors(t *testing.T) {
	if _, _, err := ChiSquareGOF([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareGOF([]float64{1, 0}, []float64{0, 1}); err == nil {
		t.Error("observation in zero-expectation bin accepted")
	}
	if _, _, err := ChiSquareGOF([]float64{5}, []float64{5}); err == nil {
		t.Error("single bin accepted")
	}
	// Zero-zero bins are skipped, not fatal.
	if _, df, err := ChiSquareGOF([]float64{3, 0, 4}, []float64{3, 0, 4}); err != nil || df != 1 {
		t.Errorf("zero-zero bin: df=%d err=%v, want df=1 err=nil", df, err)
	}
}

// TestChiSquareTwoSampleNull: two samples from one distribution pass,
// samples from different distributions fail, degenerate inputs error.
func TestChiSquareTwoSampleNull(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 21))
	const bins = 30
	draw := func(n int, probs []float64) []float64 {
		var tot float64
		for _, p := range probs {
			tot += p
		}
		out := make([]float64, len(probs))
		for d := 0; d < n; d++ {
			u := rng.Float64() * tot
			for i, p := range probs {
				u -= p
				if u <= 0 {
					out[i]++
					break
				}
			}
		}
		return out
	}
	probs := make([]float64, bins)
	for i := range probs {
		probs[i] = 0.3 + rng.Float64()
	}
	a, b := draw(100000, probs), draw(60000, probs)
	stat, df, err := ChiSquareTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(0.001, df); stat > crit {
		t.Fatalf("homogeneous samples rejected: stat %g > crit %g", stat, crit)
	}
	skew := make([]float64, bins)
	copy(skew, probs)
	for i := 0; i < bins/2; i++ {
		skew[i] *= 2
	}
	stat, df, err = ChiSquareTwoSample(a, draw(60000, skew))
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(0.001, df); stat < 10*crit {
		t.Fatalf("heterogeneous samples not detected: stat %g vs crit %g", stat, crit)
	}

	if _, _, err := ChiSquareTwoSample([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareTwoSample([]float64{-1, 2}, []float64{1, 2}); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, err := ChiSquareTwoSample([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("empty sample accepted")
	}
}
