// Package rates provides structured heterogeneous contact-rate models —
// community/block, hub-spoke, and a distance-kernel model over the
// random-waypoint fleet of internal/mobility — whose contact processes
// are sampled hierarchically: one small alias table over community-pair
// blocks plus one alias table per community over its members, so setup
// is O(N + C²) and each contact costs O(1) draws. This replaces the
// dense O(N²) pair alias table of internal/contact in the large-N
// regime: at a million nodes the dense table alone would be ~6 TB, while
// the hierarchical state stays near 40 bytes per node.
//
// The two-level decomposition is exact, not approximate: the pair rate
// of the block model is rate(a,b) = block[c_a][c_b]·w_a·w_b, so drawing
// a block pair with probability proportional to its aggregate rate and
// then drawing members weight-proportionally within each community
// reproduces the normalized flat pair distribution identically (the
// equivalence suite pins this to 1e-12, and statistically against the
// dense sampler of internal/contact at small N).
package rates

import (
	"errors"
	"fmt"
	"math"

	"impatience/internal/numeric"
	"impatience/internal/trace"
)

// ErrModel is wrapped by every construction-time validation failure:
// negative or non-finite rates, non-square or non-symmetric blocks,
// empty communities, zero-weight communities, or a zero total rate.
var ErrModel = errors.New("rates: invalid model")

// Model is a validated structured rate model: a partition of the node
// set into C communities, a symmetric C×C block-rate matrix, and
// optional per-node weights. The pair contact rate is
//
//	rate(a,b) = block[comm(a)][comm(b)] · w(a) · w(b),  a ≠ b,
//
// with w ≡ 1 when no weights are given. All derived quantities the
// samplers need — per-community weight sums, block aggregate rates, the
// positive-rate block-pair list — are precomputed at construction in
// O(N + C²).
type Model struct {
	nodes   int
	comm    []int32   // node → community
	members [][]int32 // community → member node ids, ascending
	weight  []float64 // per-node weight; nil means uniform 1

	block  [][]float64 // C×C symmetric block rates
	commW  []float64   // Σ_{i∈c} w_i
	commSq []float64   // Σ_{i∈c} w_i²

	// Block pairs (c ≤ d) with positive aggregate rate, in row-major
	// order. pairW[k] is the total contact rate of all node pairs in
	// block pair k; total is Σ pairW.
	pairC [][2]int32
	pairW []float64
	total float64
}

// New builds a block model whose communities are consecutive node
// ranges: community c holds sizes[c] nodes starting where community c−1
// ended. block must be a symmetric len(sizes)×len(sizes) matrix of
// non-negative finite rates; weights is either nil (uniform) or one
// non-negative finite weight per node.
func New(sizes []int, block [][]float64, weights []float64) (*Model, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("%w: no communities", ErrModel)
	}
	nodes := 0
	for c, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("%w: community %d is empty (size %d)", ErrModel, c, s)
		}
		nodes += s
	}
	comm := make([]int32, nodes)
	off := 0
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			comm[off+i] = int32(c)
		}
		off += s
	}
	return NewAssigned(comm, block, weights)
}

// NewAssigned builds a block model from an explicit node → community
// assignment (the distance-kernel constructor needs arbitrary
// membership; New is the consecutive-range convenience over it). Every
// community in [0, len(block)) must be non-empty.
func NewAssigned(comm []int32, block [][]float64, weights []float64) (*Model, error) {
	nodes := len(comm)
	if nodes < 2 {
		return nil, fmt.Errorf("%w: %d nodes", ErrModel, nodes)
	}
	nc := len(block)
	if nc == 0 {
		return nil, fmt.Errorf("%w: no communities", ErrModel)
	}
	for c, row := range block {
		if len(row) != nc {
			return nil, fmt.Errorf("%w: block row %d has %d entries, want %d (non-square)", ErrModel, c, len(row), nc)
		}
		for d, r := range row {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				return nil, fmt.Errorf("%w: block rate [%d][%d] = %g", ErrModel, c, d, r)
			}
			if d < c && block[d][c] != r {
				return nil, fmt.Errorf("%w: block not symmetric at [%d][%d] (%g vs %g)", ErrModel, c, d, r, block[d][c])
			}
		}
	}
	if weights != nil && len(weights) != nodes {
		return nil, fmt.Errorf("%w: %d weights for %d nodes", ErrModel, len(weights), nodes)
	}
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("%w: node %d has weight %g", ErrModel, i, w)
		}
	}

	m := &Model{
		nodes:  nodes,
		comm:   comm,
		weight: weights,
		block:  block,
		commW:  make([]float64, nc),
		commSq: make([]float64, nc),
	}
	counts := make([]int, nc)
	for i, c := range comm {
		if c < 0 || int(c) >= nc {
			return nil, fmt.Errorf("%w: node %d assigned to community %d of %d", ErrModel, i, c, nc)
		}
		counts[c]++
		w := m.nodeWeight(i)
		m.commW[c] += w
		m.commSq[c] += w * w
	}
	m.members = make([][]int32, nc)
	for c, n := range counts {
		if n == 0 {
			return nil, fmt.Errorf("%w: community %d is empty", ErrModel, c)
		}
		m.members[c] = make([]int32, 0, n)
	}
	for i, c := range comm {
		m.members[c] = append(m.members[c], int32(i))
	}
	for c := 0; c < nc; c++ {
		if m.commW[c] <= 0 {
			return nil, fmt.Errorf("%w: community %d has zero total weight", ErrModel, c)
		}
	}

	// Aggregate rate per block pair: for c < d every cross pair exists,
	// Σ_{a∈c, b∈d} B·w_a·w_b = B·CW_c·CW_d; within a community the a≠b
	// unordered pairs sum to B·(CW_c² − CSq_c)/2, which is zero exactly
	// when the community has fewer than two positive-weight members (so
	// such blocks drop out and the member-rejection loop below never
	// runs on them).
	for c := 0; c < nc; c++ {
		for d := c; d < nc; d++ {
			b := block[c][d]
			if b <= 0 {
				continue
			}
			var agg float64
			if c == d {
				agg = b * (m.commW[c]*m.commW[c] - m.commSq[c]) / 2
			} else {
				agg = b * m.commW[c] * m.commW[d]
			}
			if agg <= 0 {
				continue
			}
			m.pairC = append(m.pairC, [2]int32{int32(c), int32(d)})
			m.pairW = append(m.pairW, agg)
			m.total += agg
		}
	}
	if m.total <= 0 {
		return nil, fmt.Errorf("%w: total contact rate is zero", ErrModel)
	}
	// Entry-wise finite rates can still overflow in the aggregates
	// (B·CW_c·CW_d multiplies three finite numbers): an infinite total is
	// unsamplable, so reject it here rather than at clock time.
	if math.IsInf(m.total, 0) {
		return nil, fmt.Errorf("%w: total contact rate overflows float64", ErrModel)
	}
	return m, nil
}

// nodeWeight returns w(i), treating a nil weight vector as uniform 1.
func (m *Model) nodeWeight(i int) float64 {
	if m.weight == nil {
		return 1
	}
	return m.weight[i]
}

// Nodes returns the population size.
func (m *Model) Nodes() int { return m.nodes }

// Communities returns the number of communities C.
func (m *Model) Communities() int { return len(m.block) }

// Community returns the community of node i.
func (m *Model) Community(i int) int { return int(m.comm[i]) }

// TotalRate returns the summed contact rate over all node pairs.
func (m *Model) TotalRate() float64 { return m.total }

// MeanPairRate returns the average per-pair contact rate, the µ the
// mean-field formulas consume: TotalRate / C(N,2). The scale pipeline
// uses it in place of the O(N²) empirical rate pass.
func (m *Model) MeanPairRate() float64 {
	return m.total / float64(trace.NumPairs(m.nodes))
}

// CommunitySize returns the number of nodes in community c.
func (m *Model) CommunitySize(c int) int { return len(m.members[c]) }

// Member returns the j-th node id of community c (ascending order).
func (m *Model) Member(c, j int) int { return int(m.members[c][j]) }

// BlockRate returns β_cd, the pairwise contact rate between one node of
// community c and one node of community d (before per-node weights).
func (m *Model) BlockRate(c, d int) float64 { return m.block[c][d] }

// UniformWeights reports whether every node carries the same weight, in
// which case members of one community are exchangeable — the property
// the hybrid mean-field engine needs to treat a community as one fluid
// sub-population.
func (m *Model) UniformWeights() bool {
	if m.weight == nil {
		return true
	}
	w0 := m.weight[0]
	for _, w := range m.weight[1:] {
		if w != w0 {
			return false
		}
	}
	return true
}

// RateAt returns the model contact rate of the unordered pair {a, b}
// (zero when a == b).
func (m *Model) RateAt(a, b int) float64 {
	if a == b {
		return 0
	}
	return m.block[m.comm[a]][m.comm[b]] * m.nodeWeight(a) * m.nodeWeight(b)
}

// DenseRates materializes the model as a flat rate matrix. This is the
// bridge to the dense samplers and the equivalence suite — it costs
// O(N²) memory by definition, so it refuses populations past the regime
// the dense path itself supports.
func (m *Model) DenseRates() (*trace.RateMatrix, error) {
	const maxDense = 20000
	if m.nodes > maxDense {
		return nil, fmt.Errorf("rates: DenseRates at N=%d would materialize O(N²) state (limit %d)", m.nodes, maxDense)
	}
	rm := trace.NewRateMatrix(m.nodes)
	for a := 0; a < m.nodes; a++ {
		for b := a + 1; b < m.nodes; b++ {
			if r := m.RateAt(a, b); r > 0 {
				rm.Set(a, b, r)
			}
		}
	}
	return rm, nil
}

// memberAliases builds the per-community member alias tables (weight-
// proportional within each community). Total size is O(N).
func (m *Model) memberAliases() ([]*numeric.Alias, error) {
	out := make([]*numeric.Alias, len(m.members))
	for c, mem := range m.members {
		w := make([]float64, len(mem))
		for i, n := range mem {
			w[i] = m.nodeWeight(int(n))
		}
		a, err := numeric.NewAlias(w)
		if err != nil {
			return nil, fmt.Errorf("rates: community %d member table: %w", c, err)
		}
		out[c] = a
	}
	return out, nil
}
