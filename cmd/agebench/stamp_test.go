package main

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestAllReportsEmbedProvenance is the regression gate for the common
// stamping helper: every top-level BENCH report struct in this package
// (recognized by its `json:"benchmark"` discriminator field) must embed
// the shared provenance struct, so no emitter can quietly ship an
// artifact without git_commit and the runtime stamp. The check parses the
// package source, so a future BENCH writer added without provenance fails
// here even if no test constructs it.
func TestAllReportsEmbedProvenance(t *testing.T) {
	fset := token.NewFileSet()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	reports := 0
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			isReport := false
			embedsProvenance := false
			for _, field := range st.Fields.List {
				if field.Tag != nil && strings.Contains(field.Tag.Value, `json:"benchmark"`) {
					isReport = true
				}
				// An embedded provenance field has no names and ident type.
				if len(field.Names) == 0 {
					if id, ok := field.Type.(*ast.Ident); ok && id.Name == "provenance" {
						embedsProvenance = true
					}
				}
			}
			if isReport {
				reports++
				if !embedsProvenance {
					t.Errorf("%s: report struct %s does not embed provenance — every BENCH artifact must carry the common stamp", file, ts.Name.Name)
				}
			}
			return true
		})
	}
	// All eight emitters: trials, contacts, batch, adversary, scale,
	// hybrid, serve, kernel. A count below that means a report struct
	// lost its `json:"benchmark"` discriminator and escaped this gate.
	if reports < 8 {
		t.Fatalf("found %d report structs, want ≥ 8 — did a BENCH writer lose its benchmark field?", reports)
	}
}

// TestReportsEmbedProvenanceReflect double-checks the known report types
// at compile time (the AST test above catches future ones): each must
// marshal a git_commit field produced by the shared stamp helper.
func TestReportsEmbedProvenanceReflect(t *testing.T) {
	p := stamp(true)
	if p.GitCommit == "" {
		t.Fatal("stamp produced an empty git_commit")
	}
	if !p.Short {
		t.Fatal("stamp dropped the short flag")
	}
	for name, report := range map[string]any{
		"trials":    benchReport{provenance: p},
		"contacts":  contactsReport{provenance: p},
		"batch":     batchReport{provenance: p},
		"adversary": adversaryReport{provenance: p},
		"scale":     scaleReport{provenance: p},
		"hybrid":    hybridReport{provenance: p},
		"serve":     serveReport{provenance: p},
		"kernel":    kernelReport{provenance: p},
	} {
		v := reflect.ValueOf(report)
		f := v.FieldByName("provenance")
		if !f.IsValid() {
			t.Errorf("%s: no embedded provenance", name)
			continue
		}
		data, err := json.Marshal(report)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, key := range []string{"git_commit", "unix_time", "go_version", "gomaxprocs", "num_cpu"} {
			if _, ok := decoded[key]; !ok {
				t.Errorf("%s: marshaled artifact lacks %q", name, key)
			}
		}
		if decoded["git_commit"] != p.GitCommit {
			t.Errorf("%s: git_commit %v, want %v", name, decoded["git_commit"], p.GitCommit)
		}
	}
}
