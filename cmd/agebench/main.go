// Command agebench measures the parallel trial engine and the contact
// pipeline, recording both as machine-readable regression artifacts.
//
// The trial-engine benchmark runs the scheme-comparison pipeline (trace
// generation, QCR/OPT/UNI simulation, trial-order aggregation) at a
// ladder of worker counts via testing.Benchmark and writes
// BENCH_trials.json with ns/op, allocs/op and the speedup relative to
// the serial (1-worker) run.
//
// The contact-pipeline benchmark compares materialized trace generation
// (searchCDF pair sampling) with the streaming alias-method generator at
// N ∈ {100, 1000, 5000}, runs the fused N = 5000 scale demo through the
// simulator, and writes BENCH_contacts.json with ns/contact,
// bytes/contact and the demo's peak heap versus the materialized floor.
// CI uploads both files so regressions — in throughput, scaling, or
// memory — are visible across commits.
//
// Determinism note: every worker count computes bit-identical results
// (see internal/parallel), so the ladder measures scheduling overhead
// and parallel speedup only, never different work.
//
// Usage:
//
//	agebench                 # full-scale measurement
//	agebench -short          # reduced scale for CI smoke runs
//	agebench -out bench.json # choose the output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"impatience/internal/experiment"
	"impatience/internal/utility"
)

// workerLadder is the set of pool sizes measured, smallest first; the
// first entry must be 1 because it is the speedup baseline.
var workerLadder = []int{1, 2, 4, 8}

type benchResult struct {
	Workers         int     `json:"workers"`
	Iterations      int     `json:"iterations"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

type benchReport struct {
	Benchmark  string        `json:"benchmark"`
	UnixTime   int64         `json:"unix_time"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Short      bool          `json:"short"`
	Trials     int           `json:"trials"`
	Nodes      int           `json:"nodes"`
	Items      int           `json:"items"`
	Duration   float64       `json:"duration_min"`
	Results    []benchResult `json:"results"`
}

func main() {
	short := flag.Bool("short", false, "reduced scale (CI smoke run)")
	out := flag.String("out", "BENCH_trials.json", "output path for the trial-engine JSON report")
	contactsOut := flag.String("contacts-out", "BENCH_contacts.json", "output path for the contact-pipeline JSON report (empty = skip)")
	trialsOnly := flag.Bool("trials-only", false, "run only the trial-engine benchmark")
	contactsOnly := flag.Bool("contacts-only", false, "run only the contact-pipeline benchmark")
	flag.Parse()

	if !*contactsOnly {
		if err := run(*short, *out); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
	if !*trialsOnly && *contactsOut != "" {
		if err := runContacts(*short, *contactsOut); err != nil {
			fmt.Fprintln(os.Stderr, "agebench:", err)
			os.Exit(1)
		}
	}
}

// scenario returns the measured workload: the paper's population shape
// with few trials and a shortened run, mirroring the repo's
// BenchmarkTrialEngine*Workers benchmarks.
func scenario(short bool) experiment.Scenario {
	sc := experiment.Default()
	sc.Trials = 8
	sc.Duration = 1000
	if short {
		sc.Trials = 4
		sc.Duration = 400
	}
	return sc
}

func run(short bool, out string) error {
	sc := scenario(short)
	schemes := []string{experiment.SchemeQCR, experiment.SchemeOPT, experiment.SchemeUNI}
	report := benchReport{
		Benchmark:  "TrialEngine/RunComparison",
		UnixTime:   time.Now().Unix(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      short,
		Trials:     sc.Trials,
		Nodes:      sc.Nodes,
		Items:      sc.Items,
		Duration:   sc.Duration,
	}

	var serialNs int64
	for _, workers := range workerLadder {
		workers := workers
		scw := sc
		scw.Workers = workers
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scw.RunComparison(utility.Step{Tau: 10}, scw.HomogeneousTraces(), schemes); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return benchErr
		}
		if r.N == 0 {
			return fmt.Errorf("benchmark at %d workers did not run", workers)
		}
		ns := r.NsPerOp()
		if workers == 1 {
			serialNs = ns
		}
		res := benchResult{
			Workers:     workers,
			Iterations:  r.N,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if serialNs > 0 && ns > 0 {
			res.SpeedupVsSerial = float64(serialNs) / float64(ns)
		}
		report.Results = append(report.Results, res)
		fmt.Printf("workers=%d  %12d ns/op  %10d allocs/op  speedup %.2fx\n",
			workers, ns, res.AllocsPerOp, res.SpeedupVsSerial)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
