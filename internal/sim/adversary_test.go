package sim

import (
	"bytes"
	"encoding/gob"
	"testing"

	"impatience/internal/adversary"
	"impatience/internal/core"
	"impatience/internal/demand"
)

// adversarialConfig builds a run with every misbehavior class active.
// Policies are stateful, so each call constructs fresh ones.
func adversarialConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	tr := smallTrace(t, 20, 0.05, 600, 11)
	cfg := baseConfig(t, tr, &core.QCR{
		Reaction:       core.PathReplication(0.5),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5,
		Seed:           seed * 31,
	})
	cfg.Seed = seed
	pop := cfg.Pop
	cfg.Adversary = &adversary.Config{
		DishonestFrac: 0.2,
		Mult:          25,
		FreeRiderFrac: 0.2,
		Schedule: demand.Schedule{
			{T: 200, Pop: demand.Uniform(pop.Items(), pop.Total())},
			{T: 400, Pop: pop},
		},
		Seed: seed ^ 0xadbad,
	}
	return cfg
}

// TestAdversaryNilAndZeroConfigAgree checks the strict no-op contract: a
// nil Adversary field and a zero (all classes disabled) config take the
// same code paths and yield identical results, with no tally attached.
func TestAdversaryNilAndZeroConfigAgree(t *testing.T) {
	play := func(ac *adversary.Config) *Result {
		tr := smallTrace(t, 15, 0.05, 500, 4)
		cfg := baseConfig(t, tr, &core.QCR{
			Reaction:       core.PathReplication(0.5),
			MandateRouting: true,
			Seed:           9,
		})
		cfg.Adversary = ac
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a := play(nil)
	b := play(&adversary.Config{Seed: 123}) // enabled-off despite the seed
	if a.Adversary != nil || b.Adversary != nil {
		t.Fatal("disabled adversary layer attached a tally")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("nil and zero adversary configs diverged")
	}
}

// TestDeterminismWithAdversaries: two runs with the same Seed — all
// misbehavior classes enabled — produce byte-identical Results.
func TestDeterminismWithAdversaries(t *testing.T) {
	encode := func() []byte {
		res, err := Run(adversarialConfig(t, 5))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			t.Fatalf("gob: %v", err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two identically-seeded adversarial runs produced different Results")
	}
}

// TestAdversaryTallyPopulated: an adversarial run reports its roles and
// every misbehavior class it injected.
func TestAdversaryTallyPopulated(t *testing.T) {
	res, err := Run(adversarialConfig(t, 7))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ta := res.Adversary
	if ta == nil {
		t.Fatal("no adversary tally on an adversarial run")
	}
	if ta.DishonestNodes != 4 || ta.FreeRiders != 4 {
		t.Errorf("roles = %d dishonest, %d free-riders; want 4, 4", ta.DishonestNodes, ta.FreeRiders)
	}
	if ta.InflatedReports == 0 {
		t.Error("no inflated reports despite dishonest nodes")
	}
	if ta.RefusedServes == 0 {
		t.Error("no refused serves despite free-riders")
	}
	if ta.SuppressedReactions == 0 {
		t.Error("no suppressed reactions despite free-riders")
	}
	if ta.DemandShifts != 2 {
		t.Errorf("demand shifts = %d, want 2", ta.DemandShifts)
	}
}

// TestFreeRidersNeverServeOrStore: with the whole population free-riding,
// no meeting fulfillment, policy write, or replication reaction happens —
// only immediate local hits on the initial allocation remain.
func TestFreeRidersNeverServeOrStore(t *testing.T) {
	tr := smallTrace(t, 15, 0.05, 500, 4)
	cfg := baseConfig(t, tr, &core.QCR{
		Reaction:       core.PathReplication(1),
		MandateRouting: true,
		Seed:           9,
	})
	cfg.Adversary = &adversary.Config{FreeRiderFrac: 1, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Fulfillments != res.Immediate {
		t.Errorf("%d fulfillments vs %d immediate: a free-rider served content",
			res.Fulfillments, res.Immediate)
	}
	if res.ReplicasMade != 0 {
		t.Errorf("ReplicasMade = %d, want 0 (every write refused)", res.ReplicasMade)
	}
	ta := res.Adversary
	if ta == nil || ta.FreeRiders != 15 {
		t.Fatalf("tally = %+v, want 15 free-riders", ta)
	}
	if ta.RefusedServes == 0 {
		t.Error("no refused serves recorded")
	}
}

// TestDishonestInflationAmplifiesReplication: counter inflation makes
// vanilla QCR mint measurably more replicas than the honest run — the
// attack the hardened reaction exists to blunt.
func TestDishonestInflationAmplifiesReplication(t *testing.T) {
	play := func(ac *adversary.Config) *Result {
		tr := smallTrace(t, 20, 0.05, 600, 11)
		cfg := baseConfig(t, tr, &core.QCR{
			Reaction:       core.PathReplication(0.5),
			MandateRouting: true,
			StrictSource:   true,
			MaxMandates:    5,
			Seed:           17,
		})
		cfg.Seed = 6
		cfg.Adversary = ac
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	honest := play(nil)
	attacked := play(&adversary.Config{DishonestFrac: 0.3, Mult: 50, Seed: 21})
	if attacked.ReplicasMade <= honest.ReplicasMade {
		t.Errorf("inflation did not amplify replication: %d attacked vs %d honest",
			attacked.ReplicasMade, honest.ReplicasMade)
	}
	if attacked.Adversary.InflatedReports == 0 {
		t.Error("no inflated reports recorded")
	}
}

// TestHardenedQCRTamesInflation: the same attack against the hardened
// reaction mints far fewer replicas, and the interventions land in the
// run's tally.
func TestHardenedQCRTamesInflation(t *testing.T) {
	play := func(h *core.Hardening) *Result {
		tr := smallTrace(t, 20, 0.05, 600, 11)
		cfg := baseConfig(t, tr, &core.QCR{
			Reaction:       core.PathReplication(0.5),
			MandateRouting: true,
			StrictSource:   true,
			MaxMandates:    5,
			Seed:           17,
			Hardening:      h,
		})
		cfg.Seed = 6
		cfg.Adversary = &adversary.Config{DishonestFrac: 0.3, Mult: 50, Seed: 21}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	vanilla := play(nil)
	hardened := play(&core.Hardening{CounterCap: 60, SmoothAlpha: 0.25, ReplicaClamp: 15})
	if hardened.ReplicasMade >= vanilla.ReplicasMade {
		t.Errorf("hardening did not reduce attack replication: %d hardened vs %d vanilla",
			hardened.ReplicasMade, vanilla.ReplicasMade)
	}
	if hardened.Adversary.CountersCapped == 0 {
		t.Error("no capped counters recorded under a ×50 attack")
	}
}

// TestRunBatchMatchesSequentialWithAdversaries: the misbehavior layer —
// counter inflation, free-riders, and the popularity-churn schedule —
// behaves bit-identically under the lockstep batch executor and the
// sequential path.
func TestRunBatchMatchesSequentialWithAdversaries(t *testing.T) {
	tr := smallTrace(t, 20, 0.05, 600, 11)
	mk := func() Config {
		cfg := adversarialConfig(t, 13)
		cfg.Trace = nil // the batch executor supplies the shared stream
		return cfg
	}
	seqCfg := mk()
	seqCfg.Trace = tr
	seq, err := Run(seqCfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	batch, err := RunBatch([]Config{mk()}, tr.Source())
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if seq.Digest() != batch[0].Digest() {
		t.Fatal("adversarial batch run diverged from the sequential path")
	}
	if batch[0].Adversary == nil || batch[0].Adversary.DemandShifts != 2 {
		t.Fatalf("batch tally = %+v, want 2 demand shifts", batch[0].Adversary)
	}
}
