package stats

// Statistical inference for the conformance harness (internal/oracle):
// one-sample t-intervals on trial means, Welch two-sample intervals, and
// Kolmogorov-Smirnov goodness-of-fit against the exponential meeting
// model. Everything here is closed-form or classic rational
// approximation — no external dependencies — and accurate far beyond the
// needs of pass/fail gates at the α levels the oracle uses (≥ 1e-4).

import (
	"fmt"
	"math"
	"sort"
)

// NormalQuantile returns Φ⁻¹(p), the standard normal quantile, using
// Acklam's rational approximation (relative error < 1.15e-9 over (0,1)).
// It returns ±Inf at p = 0, 1 and NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	return x
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom, via the Cornish-Fisher expansion around the normal
// quantile (Abramowitz & Stegun 26.7.5). For the df ≥ 2 and the central
// p used by confidence intervals the error is well under 1e-3, which is
// negligible against the oracle's safety margins.
func TQuantile(p, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if p <= 0 || p >= 1 {
		return NormalQuantile(p) // ±Inf / NaN, same shape as the normal
	}
	// Exact closed forms where the expansion is weakest.
	if df == 1 {
		return math.Tan(math.Pi * (p - 0.5))
	}
	if df == 2 {
		a := 4 * p * (1 - p)
		return (2*p - 1) * math.Sqrt(2/a)
	}
	z := NormalQuantile(p)
	if math.IsInf(z, 0) || math.IsNaN(z) {
		return z
	}
	z2 := z * z
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Center    float64 // point estimate (mean or mean difference)
	Halfwidth float64 // half the interval width; Lo = Center-Halfwidth
	Conf      float64 // confidence level, e.g. 0.99
	DF        float64 // t degrees of freedom used
}

// Lo and Hi are the interval bounds.
func (iv Interval) Lo() float64 { return iv.Center - iv.Halfwidth }
func (iv Interval) Hi() float64 { return iv.Center + iv.Halfwidth }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	return v >= iv.Lo() && v <= iv.Hi()
}

// String renders the interval compactly.
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%)", iv.Center, iv.Halfwidth, 100*iv.Conf)
}

// MeanCI computes the one-sample t confidence interval on the mean of xs
// at the given confidence level (e.g. 0.99). It needs at least two
// observations; with fewer it returns an infinite-halfwidth interval, so
// callers treating "inside the interval" as a pass never pass on starved
// data by accident — they fail the shrinkage gate instead.
func MeanCI(xs []float64, conf float64) Interval {
	s := Summarize(xs)
	iv := Interval{Center: s.Mean, Conf: conf, Halfwidth: math.Inf(1), DF: float64(s.N - 1)}
	if s.N < 2 {
		return iv
	}
	t := TQuantile(0.5+conf/2, iv.DF)
	iv.Halfwidth = t * s.Stddev / math.Sqrt(float64(s.N))
	return iv
}

// WelchCI computes the Welch two-sample t confidence interval on
// mean(a) − mean(b) at the given confidence level, with the
// Welch–Satterthwaite degrees of freedom. Like MeanCI it returns an
// infinite halfwidth when either sample has fewer than two observations.
func WelchCI(a, b []float64, conf float64) Interval {
	sa, sb := Summarize(a), Summarize(b)
	iv := Interval{Center: sa.Mean - sb.Mean, Conf: conf, Halfwidth: math.Inf(1), DF: 1}
	if sa.N < 2 || sb.N < 2 {
		return iv
	}
	va := sa.Stddev * sa.Stddev / float64(sa.N)
	vb := sb.Stddev * sb.Stddev / float64(sb.N)
	se2 := va + vb
	if se2 == 0 {
		iv.Halfwidth = 0
		iv.DF = float64(sa.N + sb.N - 2)
		return iv
	}
	iv.DF = se2 * se2 / (va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	iv.Halfwidth = TQuantile(0.5+conf/2, iv.DF) * math.Sqrt(se2)
	return iv
}

// KSStatistic returns the one-sample Kolmogorov-Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| of the samples against the continuous CDF
// F. It returns NaN for empty input.
func KSStatistic(samples []float64, cdf func(float64) float64) float64 {
	n := len(samples)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if hi := float64(i+1)/float64(n) - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/float64(n); lo > d {
			d = lo
		}
	}
	return d
}

// KSExponential is KSStatistic against the Exp(rate) CDF — the paper's
// memoryless meeting model, under which the fulfillment delay of an item
// held by x servers is Exp(µx).
func KSExponential(samples []float64, rate float64) float64 {
	return KSStatistic(samples, func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		return -math.Expm1(-rate * t)
	})
}

// KSCritical returns the critical value for the one-sample KS statistic
// at significance level alpha and sample size n, using the asymptotic
// Kolmogorov quantile c(α) = sqrt(−ln(α/2)/2) with Stephens' finite-n
// correction: D_crit = c(α)/(√n + 0.12 + 0.11/√n). A fully specified
// (simple) null hypothesis is assumed — exactly the oracle's situation,
// where the exponential rate comes from the theory, not the sample.
func KSCritical(alpha float64, n int) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	sn := math.Sqrt(float64(n))
	return c / (sn + 0.12 + 0.11/sn)
}
