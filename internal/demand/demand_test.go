package demand

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)) }

func TestParetoShape(t *testing.T) {
	p := Pareto(50, 1, 10)
	if p.Items() != 50 {
		t.Fatalf("items=%d, want 50", p.Items())
	}
	if math.Abs(p.Total()-10) > 1e-9 {
		t.Errorf("total=%g, want 10", p.Total())
	}
	// d_i ∝ 1/(i+1): ratios must match exactly.
	if r := p.Rates[0] / p.Rates[1]; math.Abs(r-2) > 1e-9 {
		t.Errorf("d_0/d_1=%g, want 2", r)
	}
	if r := p.Rates[0] / p.Rates[9]; math.Abs(r-10) > 1e-9 {
		t.Errorf("d_0/d_9=%g, want 10", r)
	}
	for i := 1; i < p.Items(); i++ {
		if p.Rates[i] > p.Rates[i-1] {
			t.Fatalf("rates not non-increasing at %d", i)
		}
	}
}

func TestParetoOmegaZeroIsUniform(t *testing.T) {
	p := Pareto(10, 0, 5)
	for i, d := range p.Rates {
		if math.Abs(d-0.5) > 1e-12 {
			t.Errorf("rate[%d]=%g, want 0.5", i, d)
		}
	}
}

func TestUniformAndGeometric(t *testing.T) {
	u := Uniform(4, 8)
	for _, d := range u.Rates {
		if math.Abs(d-2) > 1e-12 {
			t.Errorf("uniform rate %g, want 2", d)
		}
	}
	g := Geometric(3, 0.5, 7)
	if math.Abs(g.Rates[0]/g.Rates[1]-2) > 1e-9 || math.Abs(g.Rates[1]/g.Rates[2]-2) > 1e-9 {
		t.Errorf("geometric ratios wrong: %v", g.Rates)
	}
	if math.Abs(g.Total()-7) > 1e-9 {
		t.Errorf("geometric total %g, want 7", g.Total())
	}
}

func TestNormalizedZeroTotal(t *testing.T) {
	p := Popularity{Rates: []float64{0, 0}}
	out := p.Normalized(5)
	if out.Total() != 0 {
		t.Errorf("normalizing zero demand should stay zero, got %v", out.Rates)
	}
}

func TestValidate(t *testing.T) {
	if err := (Popularity{Rates: []float64{1, -1}}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Popularity{Rates: []float64{math.NaN()}}).Validate(); err == nil {
		t.Error("NaN rate accepted")
	}
	if err := (Popularity{Rates: []float64{1, 2}}).Validate(); err != nil {
		t.Errorf("valid rates rejected: %v", err)
	}
}

func TestUniformProfile(t *testing.T) {
	p := UniformProfile(3, 4)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := range p.P {
		for n := range p.P[i] {
			if math.Abs(p.P[i][n]-0.25) > 1e-12 {
				t.Errorf("π[%d][%d]=%g, want 0.25", i, n, p.P[i][n])
			}
		}
	}
}

func TestProfileValidateRejectsBadRows(t *testing.T) {
	bad := Profile{P: [][]float64{{0.5, 0.4}}} // sums to 0.9
	if err := bad.Validate(); err == nil {
		t.Error("row not summing to 1 accepted")
	}
	bad = Profile{P: [][]float64{{1.5, -0.5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range probabilities accepted")
	}
}

func TestProcessInterArrivalTimes(t *testing.T) {
	pop := Uniform(5, 2) // aggregate rate 2
	proc, err := NewProcess(pop, UniformProfile(5, 10), newRNG(1))
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	const n = 20000
	var last, sum float64
	for k := 0; k < n; k++ {
		r, ok := proc.Next()
		if !ok {
			t.Fatal("process stopped unexpectedly")
		}
		if r.T <= last {
			t.Fatalf("time not strictly increasing: %g after %g", r.T, last)
		}
		sum += r.T - last
		last = r.T
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean inter-arrival %g, want 0.5 (rate 2)", mean)
	}
}

func TestProcessItemFrequencies(t *testing.T) {
	pop := Pareto(10, 1, 1)
	proc, err := NewProcess(pop, UniformProfile(10, 5), newRNG(7))
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	counts := make([]float64, 10)
	const n = 100000
	for k := 0; k < n; k++ {
		r, _ := proc.Next()
		if r.Item < 0 || r.Item >= 10 || r.Node < 0 || r.Node >= 5 {
			t.Fatalf("out-of-range request %+v", r)
		}
		counts[r.Item]++
	}
	for i := range counts {
		want := pop.Rates[i] / pop.Total()
		got := counts[i] / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("item %d frequency %g, want %g", i, got, want)
		}
	}
}

func TestProcessZeroDemand(t *testing.T) {
	proc, err := NewProcess(Popularity{Rates: []float64{0, 0}}, UniformProfile(2, 2), newRNG(3))
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	if _, ok := proc.Next(); ok {
		t.Error("zero-demand process produced an event")
	}
}

func TestProcessRejectsMismatchedProfile(t *testing.T) {
	if _, err := NewProcess(Uniform(3, 1), UniformProfile(2, 2), newRNG(1)); err == nil {
		t.Error("mismatched profile accepted")
	}
}

func TestSetPopularityMidRun(t *testing.T) {
	proc, err := NewProcess(Pareto(4, 1, 1), UniformProfile(4, 2), newRNG(11))
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	r1, _ := proc.Next()
	// Flip all demand to item 3.
	if err := proc.SetPopularity(Popularity{Rates: []float64{0, 0, 0, 5}}); err != nil {
		t.Fatalf("SetPopularity: %v", err)
	}
	for k := 0; k < 100; k++ {
		r, ok := proc.Next()
		if !ok {
			t.Fatal("process stopped")
		}
		if r.T <= r1.T {
			t.Fatal("clock went backwards after popularity change")
		}
		if r.Item != 3 {
			t.Fatalf("got item %d after flip, want 3", r.Item)
		}
	}
	if err := proc.SetPopularity(Uniform(7, 1)); err == nil {
		t.Error("popularity with wrong catalog size accepted")
	}
}

// Property: sampled node frequencies follow a skewed profile row.
func TestProcessProfileProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		profile := Profile{P: [][]float64{{0.7, 0.2, 0.1}}}
		proc, err := NewProcess(Popularity{Rates: []float64{1}}, profile, newRNG(seed))
		if err != nil {
			return false
		}
		counts := make([]float64, 3)
		const n = 30000
		for k := 0; k < n; k++ {
			r, _ := proc.Next()
			counts[r.Node]++
		}
		return math.Abs(counts[0]/n-0.7) < 0.02 &&
			math.Abs(counts[1]/n-0.2) < 0.02 &&
			math.Abs(counts[2]/n-0.1) < 0.02
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Pareto(5, 1, 1)
	c := p.Clone()
	c.Rates[0] = 99
	if p.Rates[0] == 99 {
		t.Error("Clone shares backing storage")
	}
}
