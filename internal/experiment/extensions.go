package experiment

import (
	"fmt"
	"math"
	"math/rand/v2"

	"impatience/internal/adaptive"
	"impatience/internal/core"
	"impatience/internal/parallel"
	"impatience/internal/plot"
	"impatience/internal/sim"
	"impatience/internal/stats"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// OverheadComparison (X6) tallies the communication cost of each scheme:
// metadata summaries, content transfers (fulfillments + replication) and
// mandate-routing traffic. The fixed allocations look free here, but they
// presuppose a perfect out-of-band control channel to install and
// maintain the allocation — exactly what opportunistic networks lack
// (Section 5's motivation).
func OverheadComparison(sc Scenario, f utility.Function) (*plot.Table, error) {
	gen := sc.HomogeneousSources()
	schemes := []string{SchemeQCR, SchemeOPT, SchemePROP}
	type agg struct{ meta, content, mandates, fulfilled []float64 }
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([][4]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return nil, err
		}
		results, err := sc.RunSchemesBatch(schemes, f, src, sc.Mu, uint64(trial), false, nil)
		if err != nil {
			return nil, err
		}
		rows := make([][4]float64, len(schemes))
		for si, res := range results {
			rows[si] = [4]float64{
				float64(res.Overhead.MetadataMsgs),
				float64(res.Overhead.ContentTransfers),
				float64(res.Overhead.MandateTransfers),
				float64(res.Fulfillments),
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	per := make(map[string]*agg, len(schemes))
	for _, s := range schemes {
		per[s] = &agg{}
	}
	for _, rows := range outs {
		for si, s := range schemes {
			a := per[s]
			a.meta = append(a.meta, rows[si][0])
			a.content = append(a.content, rows[si][1])
			a.mandates = append(a.mandates, rows[si][2])
			a.fulfilled = append(a.fulfilled, rows[si][3])
		}
	}
	table := &plot.Table{
		Title:  "Extension X6: protocol overhead per scheme (mean per run)",
		XLabel: "scheme (0=QCR 1=OPT 2=PROP)",
	}
	for i := range schemes {
		table.X = append(table.X, float64(i))
	}
	cols := []struct {
		name string
		get  func(*agg) []float64
	}{
		{"metadata msgs", func(a *agg) []float64 { return a.meta }},
		{"content transfers", func(a *agg) []float64 { return a.content }},
		{"mandate transfers", func(a *agg) []float64 { return a.mandates }},
		{"fulfillments", func(a *agg) []float64 { return a.fulfilled }},
	}
	for _, c := range cols {
		y := make([]float64, len(schemes))
		for i, s := range schemes {
			y[i] = stats.Summarize(c.get(per[s])).Mean
		}
		if err := table.AddColumn(c.name, y); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// MixedCatalog (X7) exercises per-item delay-utilities (Section 3.2): a
// catalog where even items are deadline content (step) and odd items are
// waiting-cost content (negative power). It compares per-item-tuned QCR
// against a mis-tuned QCR that assumes the whole catalog is deadline
// content, and against the mixed OPT.
func MixedCatalog(sc Scenario) (*plot.Table, error) {
	us := make([]utility.Function, sc.Items)
	for i := range us {
		if i%2 == 0 {
			us[i] = utility.Step{Tau: 10}
		} else {
			us[i] = utility.Power{Alpha: 0}
		}
	}
	pop := sc.Pop()
	hom := welfare.Homogeneous{
		Utilities: us, Pop: pop, Mu: sc.Mu,
		Servers: sc.Nodes, Clients: sc.Nodes, PureP2P: true,
	}
	opt, err := hom.GreedyOptimal(sc.Rho)
	if err != nil {
		return nil, err
	}
	gen := sc.HomogeneousSources()
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([3]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return [3]float64{}, err
		}
		base := sim.Config{
			Rho: sc.Rho, Utilities: us, Pop: pop,
			Seed: sc.Seed*1_000_003 + uint64(trial)*101, WarmupFrac: sc.WarmupFrac,
		}
		// Per-item tuned QCR.
		cfgT := base
		cfgT.Policy = &core.QCR{
			PerItemReaction: core.TunedReactions(us, nil, sc.Mu, sc.Nodes, sc.QCRScale),
			MandateRouting:  true,
			StrictSource:    true,
			MaxMandates:     5,
			Seed:            sc.Seed*7919 + uint64(trial),
		}
		// Mis-tuned QCR: believes everything is step content.
		cfgM := base
		cfgM.Policy = &core.QCR{
			Reaction:       core.TunedReaction(utility.Step{Tau: 10}, sc.Mu, sc.Nodes, sc.QCRScale),
			MandateRouting: true,
			StrictSource:   true,
			MaxMandates:    5,
			Seed:           sc.Seed*7919 + uint64(trial),
		}
		// Mixed OPT.
		cfgO := base
		cfgO.Policy = core.Static{Label: "opt"}
		cfgO.Initial = opt
		cfgO.NoSticky = true
		// No static scheme needs empirical rates here, so the three
		// variants run on a single pass of the contact stream.
		results, err := sim.RunBatch([]sim.Config{cfgT, cfgM, cfgO}, src)
		if err != nil {
			return [3]float64{}, err
		}
		return [3]float64{results[0].AvgUtilityRate, results[1].AvgUtilityRate, results[2].AvgUtilityRate}, nil
	})
	if err != nil {
		return nil, err
	}
	var uTuned, uMis, uOpt []float64
	for _, v := range outs {
		uTuned = append(uTuned, v[0])
		uMis = append(uMis, v[1])
		uOpt = append(uOpt, v[2])
	}
	table := &plot.Table{
		Title:  "Extension X7: mixed catalog (step + waiting-cost items)",
		XLabel: "trial",
	}
	for i := range uTuned {
		table.X = append(table.X, float64(i))
	}
	table.AddColumn("QCR per-item tuned", uTuned)
	table.AddColumn("QCR mis-tuned (all step)", uMis)
	table.AddColumn("OPT (mixed greedy)", uOpt)
	return table, nil
}

// AdaptiveImpatience (X9) exercises the Section-7 open problem: QCR that
// learns the population's exponential decay rate ν from per-fulfillment
// consumption feedback instead of knowing it, compared with the
// oracle-tuned QCR and OPT. Output: per-trial utilities plus the final ν̂.
func AdaptiveImpatience(sc Scenario, nu float64) (*plot.Table, error) {
	truth := utility.Exponential{Nu: nu}
	pop := sc.Pop()
	gen := sc.HomogeneousSources()
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([4]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return [4]float64{}, err
		}
		// OPT and the oracle QCR share one lockstep pass; the adaptive
		// policy runs on its own reopened pass of the same contacts (its
		// feedback closure is stateful, so it cannot join the batch
		// without changing RNG consumption order).
		ro, err := asReopenable(src)
		if err != nil {
			return [4]float64{}, err
		}
		adaptivePass, err := ro.Reopen()
		if err != nil {
			return [4]float64{}, err
		}
		results, err := sc.RunSchemesBatch([]string{SchemeOPT, SchemeQCR}, truth, ro, sc.Mu, uint64(trial), false, nil)
		if err != nil {
			return [4]float64{}, err
		}
		resO, resQ := results[0], results[1]
		feedbackRNG := rand.New(rand.NewPCG(sc.Seed^0xfeedbac, uint64(trial)))
		pol := &adaptive.Policy{
			Feedback: func(item int, age float64) bool {
				return feedbackRNG.Float64() < truth.H(age)
			},
			Mu: sc.Mu, Servers: sc.Nodes, Scale: sc.QCRScale,
			Inner: &core.QCR{
				MandateRouting: true, StrictSource: true, MaxMandates: 5,
				Seed: sc.Seed*7919 + uint64(trial),
			},
		}
		resA, err := sim.Run(sim.Config{
			Rho: sc.Rho, Utility: truth, Pop: pop, Contacts: adaptivePass, Policy: pol,
			Seed: sc.Seed*1_000_003 + uint64(trial)*101, WarmupFrac: sc.WarmupFrac,
		})
		if err != nil {
			return [4]float64{}, err
		}
		nuHat := math.NaN()
		if hat, ok := pol.LastEstimate(); ok {
			nuHat = hat
		}
		return [4]float64{resA.AvgUtilityRate, resQ.AvgUtilityRate, resO.AvgUtilityRate, nuHat}, nil
	})
	if err != nil {
		return nil, err
	}
	var uAdaptive, uOracle, uOpt, nuHats []float64
	for _, v := range outs {
		uAdaptive = append(uAdaptive, v[0])
		uOracle = append(uOracle, v[1])
		uOpt = append(uOpt, v[2])
		nuHats = append(nuHats, v[3])
	}
	table := &plot.Table{
		Title:  fmt.Sprintf("Extension X9: adaptive impatience estimation (true ν=%g)", nu),
		XLabel: "trial",
	}
	for i := range uAdaptive {
		table.X = append(table.X, float64(i))
	}
	table.AddColumn("QCR adaptive (learned ν)", uAdaptive)
	table.AddColumn("QCR oracle (known ν)", uOracle)
	table.AddColumn("OPT", uOpt)
	table.AddColumn("estimated ν", nuHats)
	return table, nil
}

// DedicatedKiosks (X8) runs the dedicated-node case end to end with the
// negative-log utility — infeasible in pure P2P — and reports QCR's loss
// against the proportional optimum.
func DedicatedKiosks(sc Scenario, servers int) (*plot.Table, error) {
	if servers <= 0 || servers >= sc.Nodes {
		return nil, fmt.Errorf("experiment: %d servers out of %d nodes", servers, sc.Nodes)
	}
	u := utility.NegLog{}
	// Keep the catalog at half the kiosk capacity: with items == capacity
	// every feasible allocation collapses to one copy each and there is
	// nothing to optimize.
	if cap := servers * sc.Rho; sc.Items > cap/2 {
		sc.Items = cap / 2
	}
	pop := sc.Pop()
	hom := welfare.Homogeneous{
		Utility: u, Pop: pop, Mu: sc.Mu,
		Servers: servers, Clients: sc.Nodes - servers,
	}
	opt, err := hom.GreedyOptimal(sc.Rho)
	if err != nil {
		return nil, err
	}
	gen := sc.HomogeneousSources()
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([2]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return [2]float64{}, err
		}
		base := sim.Config{
			Rho: sc.Rho, Utility: u, Pop: pop,
			ServerCount: servers,
			Seed:        sc.Seed*1_000_003 + uint64(trial)*101, WarmupFrac: sc.WarmupFrac,
		}
		cfgQ := base
		cfgQ.Policy = &core.QCR{
			Reaction:       core.TunedReaction(u, sc.Mu, servers, sc.QCRScale*2),
			MandateRouting: true,
			StrictSource:   true,
			MaxMandates:    5,
			Seed:           sc.Seed*7919 + uint64(trial),
		}
		cfgO := base
		cfgO.Policy = core.Static{Label: "opt"}
		cfgO.Initial = opt
		cfgO.NoSticky = true
		results, err := sim.RunBatch([]sim.Config{cfgQ, cfgO}, src)
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{results[0].AvgUtilityRate, results[1].AvgUtilityRate}, nil
	})
	if err != nil {
		return nil, err
	}
	var uQCR, uOpt []float64
	for _, v := range outs {
		uQCR = append(uQCR, v[0])
		uOpt = append(uOpt, v[1])
	}
	table := &plot.Table{
		Title:  fmt.Sprintf("Extension X8: dedicated kiosks (neglog, %d servers / %d clients)", servers, sc.Nodes-servers),
		XLabel: "trial",
	}
	for i := range uQCR {
		table.X = append(table.X, float64(i))
	}
	table.AddColumn("QCR", uQCR)
	table.AddColumn("OPT (proportional)", uOpt)
	return table, nil
}
