package contact

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/trace"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed*2654435761)) }

func TestGenerateHomogeneousRates(t *testing.T) {
	const (
		nodes    = 20
		mu       = 0.05
		duration = 2000.0
	)
	tr, err := GenerateHomogeneous(nodes, mu, duration, newRNG(1))
	if err != nil {
		t.Fatalf("GenerateHomogeneous: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	want := float64(trace.NumPairs(nodes)) * mu * duration
	got := float64(len(tr.Contacts))
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Errorf("contact count %g, want ≈%g", got, want)
	}
	// Per-pair empirical rates should recover µ.
	rm := trace.EmpiricalRates(tr)
	if m := rm.Mean(); math.Abs(m-mu) > 0.003 {
		t.Errorf("mean empirical rate %g, want %g", m, mu)
	}
}

func TestGenerateHeterogeneousRates(t *testing.T) {
	rm := trace.NewRateMatrix(4)
	rm.Set(0, 1, 0.2)
	rm.Set(2, 3, 0.05)
	// Pairs (0,2),(0,3),(1,2),(1,3) never meet.
	tr, err := Generate(rm, 5000, newRNG(2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	emp := trace.EmpiricalRates(tr)
	if got := emp.At(0, 1); math.Abs(got-0.2) > 0.02 {
		t.Errorf("µ(0,1)=%g, want 0.2", got)
	}
	if got := emp.At(2, 3); math.Abs(got-0.05) > 0.01 {
		t.Errorf("µ(2,3)=%g, want 0.05", got)
	}
	if got := emp.At(0, 2); got != 0 {
		t.Errorf("µ(0,2)=%g, want exactly 0", got)
	}
}

func TestGenerateZeroRates(t *testing.T) {
	tr, err := Generate(trace.NewRateMatrix(5), 100, newRNG(3))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(tr.Contacts) != 0 {
		t.Errorf("zero-rate matrix produced %d contacts", len(tr.Contacts))
	}
}

// TestGenerateRejectsInvalidRates: matrices mixing negative (or NaN)
// entries with positive ones used to slip through — Generate only checked
// the total, so a non-monotonic CDF could silently mis-assign contacts.
// Every generator must refuse them up front, and a genuinely all-zero
// matrix must return the documented zero-contact trace.
func TestGenerateRejectsInvalidRates(t *testing.T) {
	bad := trace.NewRateMatrix(4)
	bad.Set(0, 1, 0.5)
	bad.Set(1, 2, -0.5) // total still positive
	bad.Set(2, 3, 0)
	if _, err := Generate(bad, 100, newRNG(8)); err == nil {
		t.Error("Generate accepted a negative rate")
	}
	if _, err := GenerateDiscrete(bad, 100, 1, newRNG(8)); err == nil {
		t.Error("GenerateDiscrete accepted a negative rate")
	}
	if _, err := NewStream(bad, 100, newRNG(8)); err == nil {
		t.Error("NewStream accepted a negative rate")
	}
	if _, err := NewDiscreteStream(bad, 100, 1, newRNG(8)); err == nil {
		t.Error("NewDiscreteStream accepted a negative rate")
	}

	nan := trace.NewRateMatrix(3)
	nan.Set(0, 1, math.NaN())
	if _, err := Generate(nan, 100, newRNG(8)); err == nil {
		t.Error("Generate accepted a NaN rate")
	}

	// Zero-total with zero entries only: the documented empty trace.
	zero := trace.NewRateMatrix(4)
	tr, err := GenerateDiscrete(zero, 100, 1, newRNG(8))
	if err != nil {
		t.Fatalf("GenerateDiscrete on zero matrix: %v", err)
	}
	if len(tr.Contacts) != 0 {
		t.Errorf("zero matrix produced %d discrete contacts", len(tr.Contacts))
	}
}

func TestGenerateRejectsBadDuration(t *testing.T) {
	if _, err := Generate(trace.UniformRates(3, 1), 0, newRNG(4)); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := GenerateDiscrete(trace.UniformRates(3, 1), 100, 0, newRNG(4)); err == nil {
		t.Error("zero delta accepted")
	}
}

func TestGenerateInterContactExponential(t *testing.T) {
	// For a single pair at rate µ, inter-contact gaps are Exp(µ): the CV
	// must be ≈ 1 and the mean ≈ 1/µ.
	rm := trace.NewRateMatrix(2)
	rm.Set(0, 1, 0.1)
	tr, err := Generate(rm, 200000, newRNG(5))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	gaps := trace.InterContactTimes(tr)
	if len(gaps) < 1000 {
		t.Fatalf("too few gaps: %d", len(gaps))
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if math.Abs(mean-10) > 0.5 {
		t.Errorf("mean gap %g, want 10", mean)
	}
	if cv := trace.CoefficientOfVariation(gaps); math.Abs(cv-1) > 0.1 {
		t.Errorf("CV %g, want ≈1 (memoryless)", cv)
	}
}

func TestGenerateDiscreteRates(t *testing.T) {
	const (
		nodes    = 10
		mu       = 0.04
		delta    = 0.5
		duration = 4000.0
	)
	tr, err := GenerateDiscrete(trace.UniformRates(nodes, mu), duration, delta, newRNG(6))
	if err != nil {
		t.Fatalf("GenerateDiscrete: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	want := float64(trace.NumPairs(nodes)) * mu * duration
	got := float64(len(tr.Contacts))
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Errorf("contact count %g, want ≈%g", got, want)
	}
	// All timestamps must sit on slot boundaries.
	for _, c := range tr.Contacts {
		k := c.T / delta
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("contact at %g not on a slot boundary", c.T)
		}
	}
}

func TestGenerateDiscreteCapsProbability(t *testing.T) {
	// µ·δ > 1 must clamp, not panic or produce multiple contacts per slot.
	tr, err := GenerateDiscrete(trace.UniformRates(2, 5), 10, 1, newRNG(7))
	if err != nil {
		t.Fatalf("GenerateDiscrete: %v", err)
	}
	if len(tr.Contacts) != 10 {
		t.Errorf("got %d contacts, want one per slot (10)", len(tr.Contacts))
	}
}

func TestGenerateDeterministicWithSeed(t *testing.T) {
	a, _ := GenerateHomogeneous(5, 0.1, 500, newRNG(42))
	b, _ := GenerateHomogeneous(5, 0.1, 500, newRNG(42))
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}
