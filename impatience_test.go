package impatience_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience"
)

// TestEndToEnd exercises the public facade exactly the way README's
// quickstart does: theory → optimal allocation → QCR simulation.
func TestEndToEnd(t *testing.T) {
	const (
		nodes = 20
		items = 12
		mu    = 0.05
		rho   = 3
	)
	u := impatience.Exponential{Nu: 0.1}
	pop := impatience.ParetoPopularity(items, 1, 2)
	hom := impatience.Homogeneous{
		Utility: u, Pop: pop, Mu: mu, Servers: nodes, Clients: nodes, PureP2P: true,
	}
	opt, err := hom.GreedyOptimal(rho)
	if err != nil {
		t.Fatalf("GreedyOptimal: %v", err)
	}
	uOpt := hom.WelfareCounts(opt)
	if uOpt <= 0 {
		t.Fatalf("optimal welfare %g", uOpt)
	}

	rng := rand.New(rand.NewPCG(1, 2))
	tr, err := impatience.GenerateHomogeneousTrace(nodes, mu, 4000, rng)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	qcr := &impatience.QCR{
		Reaction:       impatience.TunedReaction(u, mu, nodes, 0.1),
		MandateRouting: true,
		Seed:           3,
	}
	res, err := impatience.Simulate(impatience.SimConfig{
		Rho: rho, Utility: u, Pop: pop, Trace: tr, Policy: qcr, Seed: 4,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.AvgUtilityRate <= 0 {
		t.Fatalf("QCR utility %g", res.AvgUtilityRate)
	}
	if res.AvgUtilityRate < 0.5*uOpt {
		t.Errorf("QCR %g below half of optimum %g", res.AvgUtilityRate, uOpt)
	}
}

func TestFacadeUtilities(t *testing.T) {
	u, err := impatience.ParseUtility("step:5")
	if err != nil {
		t.Fatalf("ParseUtility: %v", err)
	}
	if got := u.H(4); got != 1 {
		t.Errorf("h(4)=%g", got)
	}
	if v := impatience.Psi(u, 0.05, 50, 10); v <= 0 {
		t.Errorf("ψ=%g", v)
	}
}

func TestFacadeAllocations(t *testing.T) {
	d := impatience.ParetoPopularity(10, 1, 1).Rates
	for _, c := range []impatience.AllocationCounts{
		impatience.UniformAllocation(10, 20, 2),
		impatience.SqrtAllocation(d, 20, 2),
		impatience.PropAllocation(d, 20, 2),
		impatience.DomAllocation(d, 20, 2),
	} {
		if err := c.Validate(20, 2); err != nil {
			t.Errorf("facade allocation infeasible: %v", err)
		}
		if _, err := impatience.PlaceAllocation(c, 20, 2); err != nil {
			t.Errorf("placement failed: %v", err)
		}
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	tr, err := impatience.GenerateHomogeneousTrace(8, 0.1, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.txt"
	if err := impatience.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := impatience.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Contacts) != len(tr.Contacts) {
		t.Error("round trip lost contacts")
	}
	if m := impatience.EmpiricalRates(back).Mean(); math.Abs(m-0.1) > 0.05 {
		t.Errorf("rate recovery %g", m)
	}
}

func TestFacadeSynthGenerators(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	conf := impatience.DefaultConference()
	conf.Nodes = 10
	conf.Days = 1
	tr, err := impatience.ConferenceTrace(conf, rng)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := impatience.MemorylessTrace(tr, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Nodes != tr.Nodes {
		t.Error("memoryless node mismatch")
	}
	veh := impatience.DefaultVehicular()
	veh.Cabs = 10
	veh.DurationMin = 120
	if _, err := impatience.VehicularTrace(veh, rng); err != nil {
		t.Fatal(err)
	}
}
