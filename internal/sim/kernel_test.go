package sim

import (
	"testing"

	"impatience/internal/adversary"
	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/rates"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// TestKernelReferenceEquivalence is the correctness anchor of the
// devirtualized contact kernel: Config.ReferenceKernel replays the
// pre-optimization path (Next-per-contact streaming, interface utility
// dispatch, hooks always invoked), so for every policy, utility family
// and contact path the fast kernel's Result digest must be bit-identical
// to the reference run's. Each sub-test builds both configs from the
// same inputs and compares digests.
func TestKernelReferenceEquivalence(t *testing.T) {
	policies := []struct {
		name string
		pol  func() core.Policy
	}{
		{"static", func() core.Policy { return core.Static{Label: "uni"} }},
		{"qcr", func() core.Policy {
			return &core.QCR{
				Reaction:       core.TunedReaction(utility.Step{Tau: 10}, 0.05, 12, 1),
				MandateRouting: true,
				StrictSource:   true,
				Seed:           7,
			}
		}},
	}
	utilities := []struct {
		name string
		mod  func(*Config)
	}{
		{"step", func(c *Config) { c.Utility = utility.Step{Tau: 10} }},
		{"exp", func(c *Config) { c.Utility = utility.Exponential{Nu: 0.2} }},
		// Power (α > 1) and NegLog have unbounded h(0⁺), so they require
		// the dedicated-node case; mixing all four families per item also
		// exercises the per-item kernel table.
		{"mixed", func(c *Config) {
			c.ServerCount = 4 // 4·ρ slots ≥ the 10-item catalog
			fams := []utility.Function{
				utility.Step{Tau: 10}, utility.Exponential{Nu: 0.2},
				utility.Power{Alpha: 2}, utility.NegLog{},
			}
			items := c.Pop.Items()
			c.Utilities = make([]utility.Function, items)
			for i := range c.Utilities {
				c.Utilities[i] = fams[i%len(fams)]
			}
		}},
	}
	tr := smallTrace(t, 12, 0.05, 800, 9)
	paths := []struct {
		name string
		run  func(t *testing.T, cfg Config) *Result
	}{
		{"materialized", func(t *testing.T, cfg Config) *Result {
			cfg.Trace = tr
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			return res
		}},
		{"streaming", func(t *testing.T, cfg Config) *Result {
			// A fresh stream per run: its RNG state mutates as it drains.
			src, err := contact.NewHomogeneousStream(12, 0.05, 800, newRNG(9))
			if err != nil {
				t.Fatalf("NewHomogeneousStream: %v", err)
			}
			cfg.Trace, cfg.Contacts = nil, src
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			return res
		}},
		{"batch", func(t *testing.T, cfg Config) *Result {
			src, err := contact.NewReplayStream(trace.UniformRates(12, 0.05), 800, 9, 12)
			if err != nil {
				t.Fatalf("NewReplayStream: %v", err)
			}
			cfg.Trace, cfg.Contacts = nil, nil
			res, err := RunBatch([]Config{cfg}, src)
			if err != nil {
				t.Fatalf("RunBatch: %v", err)
			}
			return res[0]
		}},
	}
	for _, pc := range policies {
		for _, uc := range utilities {
			for _, path := range paths {
				t.Run(pc.name+"/"+uc.name+"/"+path.name, func(t *testing.T) {
					mk := func(reference bool) Config {
						cfg := baseConfig(t, nil, pc.pol())
						cfg.BinWidth = 80
						cfg.RecordCounts = true
						uc.mod(&cfg)
						cfg.ReferenceKernel = reference
						return cfg
					}
					ref := path.run(t, mk(true))
					fast := path.run(t, mk(false))
					if ref.Digest() != fast.Digest() {
						t.Errorf("fast kernel digest %#x != reference %#x", fast.Digest(), ref.Digest())
					}
				})
			}
		}
	}
}

// TestKernelReferenceEquivalenceAdversary pins the non-passive side of
// the dispatch elision: with every misbehavior class active the hooks
// and role lookups must still run (passivity is off), and the fast
// kernel must remain bit-identical to the reference path.
func TestKernelReferenceEquivalenceAdversary(t *testing.T) {
	run := func(reference bool) *Result {
		cfg := adversarialConfig(t, 3)
		cfg.ReferenceKernel = reference
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	ref, fast := run(true), run(false)
	if ref.Digest() != fast.Digest() {
		t.Errorf("fast kernel digest %#x != reference %#x under adversary", fast.Digest(), ref.Digest())
	}
	if ref.Adversary == nil || fast.Adversary == nil {
		t.Fatalf("adversary tally missing: ref=%v fast=%v", ref.Adversary, fast.Adversary)
	}
	if *ref.Adversary != *fast.Adversary {
		t.Errorf("adversary tallies diverge: %+v vs %+v", *fast.Adversary, *ref.Adversary)
	}
}

// TestKernelFreeRiderEquivalence targets the immediate-fulfillment
// elision specifically: with FreeRiderFrac = 1 every local hit takes the
// suppressed-reaction branch, which the passive fast path must never
// skip (passivity requires no adversary).
func TestKernelFreeRiderEquivalence(t *testing.T) {
	run := func(reference bool) *Result {
		tr := smallTrace(t, 15, 0.05, 500, 4)
		cfg := baseConfig(t, tr, core.Static{Label: "uni"})
		cfg.Adversary = &adversary.Config{FreeRiderFrac: 1, Seed: 3}
		cfg.ReferenceKernel = reference
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	ref, fast := run(true), run(false)
	if ref.Digest() != fast.Digest() {
		t.Errorf("fast kernel digest %#x != reference %#x with free-riders", fast.Digest(), ref.Digest())
	}
}

// TestBatchedStreamZeroAllocSteadyState pins the streaming-batched hot
// path: once warm, filling the reusable contact buffer from a live
// generator and stepping every contact performs no steady-state heap
// allocation. Each measured call processes one full batch, so the bound
// is per 4096 contacts.
func TestBatchedStreamZeroAllocSteadyState(t *testing.T) {
	const (
		nodes    = 8
		items    = 6
		duration = 1e12
	)
	src, err := contact.NewHomogeneousStream(nodes, 0.05, duration, newRNG(5))
	if err != nil {
		t.Fatalf("NewHomogeneousStream: %v", err)
	}
	cfg := Config{
		Rho:        3,
		Utility:    utility.Step{Tau: 10},
		Pop:        demand.Pareto(items, 1, 2),
		Contacts:   src,
		Policy:     core.Static{Label: "uni"},
		Seed:       5,
		WarmupFrac: -1,
	}
	r, err := newRunner(&cfg)
	if err != nil {
		t.Fatalf("newRunner: %v", err)
	}
	buf := make([]trace.Contact, contactBatchSize)
	batchOne := func() {
		n := trace.FillBatch(src, buf)
		if n == 0 {
			t.Fatal("stream exhausted mid-test")
		}
		for i := range buf[:n] {
			if err := r.step(buf[i]); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
	}
	for i := 0; i < 20; i++ {
		batchOne() // warm every request queue to steady-state capacity
	}
	// Tolerates a rare one-off queue growth; anything systematic (even one
	// allocation per contact would read as ≥ 4096) fails loudly.
	if avg := testing.AllocsPerRun(50, batchOne); avg > 0.5 {
		t.Errorf("batched stream steady state allocates %.2f objects/batch, want 0", avg)
	}
}

// TestShardedSourceZeroAllocSteadyState pins the structured-rates bulk
// path: draining a community model through ShardedSource.NextBatch and
// stepping the contacts is allocation-free once warm — the merge heap,
// group samplers and runner all reuse their state.
func TestShardedSourceZeroAllocSteadyState(t *testing.T) {
	const (
		nodes    = 64
		items    = 6
		duration = 1e12
	)
	m, err := rates.NewCommunity(rates.CommunityConfig{
		Nodes: nodes, Communities: 4, In: 0.1, Out: 0.01,
	})
	if err != nil {
		t.Fatalf("NewCommunity: %v", err)
	}
	src, err := rates.NewSharded(m, duration, 11, 0)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	cfg := Config{
		Rho:        3,
		Utility:    utility.Step{Tau: 10},
		Pop:        demand.Pareto(items, 1, 2),
		Contacts:   src,
		Policy:     core.Static{Label: "uni"},
		Seed:       5,
		WarmupFrac: -1,
	}
	r, err := newRunner(&cfg)
	if err != nil {
		t.Fatalf("newRunner: %v", err)
	}
	buf := make([]trace.Contact, contactBatchSize)
	batchOne := func() {
		n := trace.FillBatch(src, buf)
		if n == 0 {
			t.Fatal("sharded source exhausted mid-test")
		}
		for i := range buf[:n] {
			if err := r.step(buf[i]); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
	}
	for i := 0; i < 20; i++ {
		batchOne()
	}
	if avg := testing.AllocsPerRun(50, batchOne); avg > 0.5 {
		t.Errorf("sharded bulk steady state allocates %.2f objects/batch, want 0", avg)
	}
}
