//go:build !race

package experiment

// raceScaleDown shrinks the streaming scale demo when the race detector
// is on (it multiplies both runtime and heap). Off in normal builds: the
// demo runs at its full N = 5000.
const raceScaleDown = false
