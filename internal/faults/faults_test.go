package faults

import (
	"math"
	"testing"
)

func TestDisabledConfigs(t *testing.T) {
	for i, c := range []*Config{nil, {}, {Seed: 7}, {MassCrashTime: 100}, {MassCrashFrac: 0.5}} {
		if c.Enabled() {
			t.Errorf("config %d reports enabled", i)
		}
		in, err := New(c)
		if err != nil {
			t.Errorf("config %d: New: %v", i, err)
		}
		if in != nil {
			t.Errorf("config %d: New returned a live injector for a disabled config", i)
		}
	}
}

func TestValidateRejectsBadRanges(t *testing.T) {
	bads := []Config{
		{ChurnRate: -1},
		{ChurnRate: math.NaN()},
		{ChurnRate: math.Inf(1)},
		{MeanDowntime: -1},
		{PLoss: -0.1},
		{PLoss: 1.1},
		{PLoss: math.NaN()},
		{PDrop: 2},
		{MassCrashFrac: 1.5},
		{MassCrashTime: -5},
		{MassDowntime: -1},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := New(&c); err == nil {
			t.Errorf("bad config %d accepted by New: %+v", i, c)
		}
	}
}

func TestDowntimeDefault(t *testing.T) {
	in, err := New(&Config{ChurnRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Config().MeanDowntime; got != 100 {
		t.Errorf("defaulted MeanDowntime = %g, want 1/ChurnRate = 100", got)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	cfg := Config{ChurnRate: 0.01, MeanDowntime: 20, MassCrashTime: 500, MassCrashFrac: 0.3, Seed: 42}
	a, _ := New(&cfg)
	b, _ := New(&cfg)
	ta := a.Timeline(20, 1000)
	tb := b.Timeline(20, 1000)
	if len(ta) == 0 {
		t.Fatal("empty timeline")
	}
	if len(ta) != len(tb) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

func TestTimelineSortedAndBounded(t *testing.T) {
	in, _ := New(&Config{ChurnRate: 0.02, MeanDowntime: 10, Seed: 3})
	evs := in.Timeline(15, 800)
	last := -1.0
	for i, e := range evs {
		if e.T < last {
			t.Fatalf("event %d out of order: %g after %g", i, e.T, last)
		}
		last = e.T
		if e.T >= 800 {
			t.Fatalf("event %d at t=%g beyond duration", i, e.T)
		}
		if e.Node < 0 || e.Node >= 15 {
			t.Fatalf("event %d for node %d", i, e.Node)
		}
	}
	// Per node, crashes and rejoins must alternate starting with a crash.
	state := make(map[int]bool) // true = down
	for _, e := range evs {
		if state[e.Node] == e.Down {
			t.Fatalf("node %d: consecutive %v events", e.Node, e.Down)
		}
		state[e.Node] = e.Down
	}
}

func TestMassCrashSubset(t *testing.T) {
	in, _ := New(&Config{MassCrashTime: 300, MassCrashFrac: 0.4, MassDowntime: 50, Seed: 9})
	evs := in.Timeline(20, 1000)
	var crashes, rejoins int
	seen := make(map[int]bool)
	for _, e := range evs {
		if e.T == 300 && e.Down {
			crashes++
			if seen[e.Node] {
				t.Fatalf("node %d crashed twice at the mass event", e.Node)
			}
			seen[e.Node] = true
		}
		if e.T == 350 && !e.Down {
			rejoins++
		}
	}
	if crashes != 8 { // round(0.4 · 20)
		t.Errorf("mass crash hit %d nodes, want 8", crashes)
	}
	if rejoins != 8 {
		t.Errorf("%d rejoins at t=350, want 8", rejoins)
	}
}

func TestMeetingAndMandateDraws(t *testing.T) {
	certain, _ := New(&Config{PLoss: 1, PDrop: 1})
	if !certain.TruncateMeeting() || !certain.DropMandate() {
		t.Error("probability-1 faults did not fire")
	}
	// PLoss 0 must not consume RNG state: two injectors differing only in
	// whether TruncateMeeting was polled draw identical drop sequences.
	cfg := Config{PDrop: 0.5, Seed: 11}
	a, _ := New(&cfg)
	b, _ := New(&cfg)
	for i := 0; i < 50; i++ {
		a.TruncateMeeting() // PLoss 0: early return, no draw
		if a.DropMandate() != b.DropMandate() {
			t.Fatalf("draw %d diverged after zero-probability polls", i)
		}
	}
}
