// Package faults is the fault-injection layer of the simulator. The
// paper's evaluation (Section 6.1) assumes an idealized opportunistic
// network: every meeting lasts long enough for the full protocol
// exchange, nodes never crash, and replication mandates are never lost.
// Real DTNs violate all three. This package models those violations so
// the hardened QCR protocol can be evaluated under them:
//
//  1. Node churn — a node crashes (losing its entire cache, including
//     sticky replicas and pending mandates) and later rejoins empty.
//     Up and down lifetimes are exponential with configurable rates.
//  2. Truncated meetings — a meeting's content-transfer phase fails
//     independently with probability PLoss: the metadata exchange (cache
//     summaries, query counters, mandate routing) completes, but item
//     payloads are lost, modeling contacts too short for full exchange.
//  3. Mandate loss — each mandate handed from one node to another by
//     mandate routing is dropped in flight with probability PDrop.
//
// A Config is a pure description; an Injector is the per-run instance
// holding its own deterministic RNG stream, so that a run with fault
// injection disabled draws exactly the same random numbers from the
// simulator's and policy's streams as a run built before this package
// existed (the layer is a strict no-op when off).
package faults

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Config parameterizes fault injection for one run. The zero value
// disables every fault class.
type Config struct {
	// ChurnRate is each up node's crash intensity (crashes per node per
	// unit time; exponential up-lifetimes). 0 disables churn.
	ChurnRate float64
	// MeanDowntime is the expected downtime after a crash (exponential).
	// When churn is enabled and MeanDowntime is 0, a default of 1/ChurnRate
	// (down as long as up, on average) is used.
	MeanDowntime float64
	// PLoss is the probability that a meeting's content-transfer phase
	// fails (metadata still exchanged, payloads lost).
	PLoss float64
	// PDrop is the probability that a mandate is lost in flight when
	// mandate routing hands it to the other node at a meeting.
	PDrop float64

	// MassCrashTime, when positive, schedules a correlated failure: at
	// that time a fraction MassCrashFrac of all nodes crash together and
	// rejoin after MassDowntime (MeanDowntime's default applies when 0,
	// falling back to a tenth of the mass-crash time). This is the
	// "mass failure" of the degradation experiments: an adaptive scheme
	// re-converges afterwards, a static allocation cannot.
	MassCrashTime float64
	MassCrashFrac float64
	MassDowntime  float64

	// Script is a deterministic event timeline merged into the generated
	// one — typically loaded with ParseTimeline from a scripted outage
	// file. Events beyond the run's duration or node count are ignored.
	Script []Event

	// Seed drives the injector's private RNG stream. Two injectors built
	// from identical configs produce identical fault sequences.
	Seed uint64
}

// Enabled reports whether any fault class is active.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.ChurnRate > 0 || c.PLoss > 0 || c.PDrop > 0 ||
		(c.MassCrashTime > 0 && c.MassCrashFrac > 0) || len(c.Script) > 0
}

// Validate checks the configuration's ranges.
func (c *Config) Validate() error {
	switch {
	case c == nil:
		return nil
	case c.ChurnRate < 0 || math.IsNaN(c.ChurnRate) || math.IsInf(c.ChurnRate, 0):
		return fmt.Errorf("faults: churn rate %g", c.ChurnRate)
	case c.MeanDowntime < 0 || math.IsNaN(c.MeanDowntime):
		return fmt.Errorf("faults: mean downtime %g", c.MeanDowntime)
	case c.PLoss < 0 || c.PLoss > 1 || math.IsNaN(c.PLoss):
		return fmt.Errorf("faults: p_loss %g outside [0,1]", c.PLoss)
	case c.PDrop < 0 || c.PDrop > 1 || math.IsNaN(c.PDrop):
		return fmt.Errorf("faults: p_drop %g outside [0,1]", c.PDrop)
	case c.MassCrashFrac < 0 || c.MassCrashFrac > 1 || math.IsNaN(c.MassCrashFrac):
		return fmt.Errorf("faults: mass-crash fraction %g outside [0,1]", c.MassCrashFrac)
	case c.MassCrashTime < 0 || math.IsNaN(c.MassCrashTime):
		return fmt.Errorf("faults: mass-crash time %g", c.MassCrashTime)
	case c.MassDowntime < 0 || math.IsNaN(c.MassDowntime):
		return fmt.Errorf("faults: mass downtime %g", c.MassDowntime)
	}
	for k, ev := range c.Script {
		if ev.T < 0 || math.IsNaN(ev.T) || math.IsInf(ev.T, 0) || ev.Node < 0 {
			return fmt.Errorf("faults: script event %d: t=%g node=%d", k, ev.T, ev.Node)
		}
	}
	return nil
}

// Event is one node state transition in the fault timeline.
type Event struct {
	T    float64
	Node int
	// Down is true for a crash, false for a rejoin. Events are idempotent
	// for the consumer: a crash of an already-down node (its individual
	// churn clock fired while it was mass-crashed, or vice versa) and a
	// rejoin of an up node are ignored.
	Down bool
}

// Tally counts the faults injected into one run and the hardening
// machinery's reactions to them. It lands in the simulator's Result.
type Tally struct {
	// Injected faults.
	Crashes           int // node crash events applied
	Rejoins           int // node rejoin events applied
	TruncatedMeetings int // meetings whose content-transfer phase failed
	SkippedContacts   int // trace contacts involving a down node
	DroppedArrivals   int // requests arriving at a down node (lost)
	ReplicasLost      int // cache entries wiped by crashes
	StickyLost        int // sticky (pinned) replicas among them
	RequestsLost      int // open requests wiped by crashes
	MandatesCrashed   int // pending mandates wiped by crashes

	// Hardening reactions (filled from the policy where applicable).
	MandatesDropped   int // mandates lost in flight at handoff (PDrop)
	MandatesExpired   int // mandates discarded by TTL expiry
	MandatesAbandoned int // mandates discarded after exhausting retries
	StickyReseeded    int // sticky replicas re-pinned after a holder crash
}

// Injector is the per-run fault source. All randomness comes from its
// private stream, seeded by the config, so fault injection never
// perturbs the simulator's or the policy's RNG streams.
type Injector struct {
	cfg Config
	rng *rand.Rand
}

// New builds an injector for one run. Returns nil when the config
// disables every fault class, which callers use as the "off" signal.
func New(cfg *Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	c := *cfg
	if c.ChurnRate > 0 && c.MeanDowntime == 0 {
		c.MeanDowntime = 1 / c.ChurnRate
	}
	return &Injector{
		cfg: c,
		rng: rand.New(rand.NewPCG(c.Seed^0xfa017ed, c.Seed*2654435761+0x9e3779b9)),
	}, nil
}

// Config returns the effective (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Timeline precomputes the churn events for a population over one run:
// per-node alternating exponential up/down lifetimes, plus the optional
// correlated mass crash. The result is sorted by time (ties broken by
// node id, crashes before rejoins) and is deterministic in the seed.
func (in *Injector) Timeline(nodes int, duration float64) []Event {
	var evs []Event
	if in.cfg.ChurnRate > 0 {
		for n := 0; n < nodes; n++ {
			t := in.rng.ExpFloat64() / in.cfg.ChurnRate
			for t < duration {
				evs = append(evs, Event{T: t, Node: n, Down: true})
				t += in.rng.ExpFloat64() * in.cfg.MeanDowntime
				if t >= duration {
					break
				}
				evs = append(evs, Event{T: t, Node: n, Down: false})
				t += in.rng.ExpFloat64() / in.cfg.ChurnRate
			}
		}
	}
	if in.cfg.MassCrashTime > 0 && in.cfg.MassCrashFrac > 0 && in.cfg.MassCrashTime < duration {
		down := in.cfg.MassDowntime
		if down == 0 {
			down = in.cfg.MeanDowntime
		}
		if down == 0 {
			down = in.cfg.MassCrashTime / 10
		}
		k := int(math.Round(in.cfg.MassCrashFrac * float64(nodes)))
		if k > nodes {
			k = nodes
		}
		// Crash a uniformly random subset of k nodes (partial Fisher-Yates
		// over the node ids).
		ids := make([]int, nodes)
		for i := range ids {
			ids[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + in.rng.IntN(nodes-i)
			ids[i], ids[j] = ids[j], ids[i]
			evs = append(evs, Event{T: in.cfg.MassCrashTime, Node: ids[i], Down: true})
			if up := in.cfg.MassCrashTime + down; up < duration {
				evs = append(evs, Event{T: up, Node: ids[i], Down: false})
			}
		}
	}
	for _, ev := range in.cfg.Script {
		if ev.Node < nodes && ev.T < duration {
			evs = append(evs, ev)
		}
	}
	sortEvents(evs)
	return evs
}

// TruncateMeeting draws whether the next meeting's content-transfer
// phase fails. Called once per meeting between two up nodes.
func (in *Injector) TruncateMeeting() bool {
	if in.cfg.PLoss <= 0 {
		return false
	}
	return in.rng.Float64() < in.cfg.PLoss
}

// DropMandate draws whether one mandate handoff loses the mandate in
// flight. It implements the core package's Disruptor interface.
func (in *Injector) DropMandate() bool {
	if in.cfg.PDrop <= 0 {
		return false
	}
	return in.rng.Float64() < in.cfg.PDrop
}
