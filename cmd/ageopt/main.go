// Command ageopt computes optimal and heuristic cache allocations and
// their social welfare, printing the analytic side of the paper: Table 1,
// the allocation table for a given utility, and the Property-1 balance
// check.
//
// Usage examples:
//
//	ageopt -table1
//	ageopt -utility power:0 -nodes 50 -items 20 -rho 5
//	ageopt -utility step:10 -relaxed
package main

import (
	"flag"
	"fmt"
	"os"

	"impatience/internal/alloc"
	"impatience/internal/demand"
	"impatience/internal/experiment"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

func main() {
	var (
		table1      = flag.Bool("table1", false, "print Table 1 (closed forms with numeric verification)")
		utilitySpec = flag.String("utility", "step:10", "delay-utility spec")
		nodes       = flag.Int("nodes", 50, "number of nodes")
		items       = flag.Int("items", 20, "catalog size")
		rho         = flag.Int("rho", 5, "cache slots per node")
		mu          = flag.Float64("mu", 0.05, "pairwise contact rate")
		omega       = flag.Float64("omega", 1, "Pareto popularity exponent")
		demandRate  = flag.Float64("demand", 2, "aggregate request rate")
		pureP2P     = flag.Bool("pure", true, "pure P2P population (vs dedicated servers)")
		relaxed     = flag.Bool("relaxed", false, "also print the relaxed (real-valued) optimum and balance check")
	)
	flag.Parse()

	if *table1 {
		fmt.Print(experiment.Table1(*mu, *nodes))
		return
	}
	if err := run(*utilitySpec, *nodes, *items, *rho, *mu, *omega, *demandRate, *pureP2P, *relaxed); err != nil {
		fmt.Fprintln(os.Stderr, "ageopt:", err)
		os.Exit(1)
	}
}

func run(utilitySpec string, nodes, items, rho int, mu, omega, demandRate float64, pureP2P, relaxed bool) error {
	u, err := utility.Parse(utilitySpec)
	if err != nil {
		return err
	}
	pop := demand.Pareto(items, omega, demandRate)
	h := welfare.Homogeneous{
		Utility: u, Pop: pop, Mu: mu, Servers: nodes, Clients: nodes, PureP2P: pureP2P,
	}
	opt, err := h.GreedyOptimal(rho)
	if err != nil {
		return err
	}

	allocs := []struct {
		name string
		c    alloc.Counts
	}{
		{"OPT (greedy)", opt},
		{"UNI", alloc.Uniform(items, nodes, rho)},
		{"SQRT", alloc.Sqrt(pop.Rates, nodes, rho)},
		{"PROP", alloc.Prop(pop.Rates, nodes, rho)},
		{"DOM", alloc.Dom(pop.Rates, nodes, rho)},
	}
	fmt.Printf("utility %s, µ=%g, %d nodes, %d items, ρ=%d, ω=%g, pure P2P=%v\n\n",
		u.Name(), mu, nodes, items, rho, omega, pureP2P)
	fmt.Printf("%-14s %14s %10s  %s\n", "allocation", "welfare U(x)", "loss vs OPT", "x_i (first 12 items)")
	uOpt := h.WelfareCounts(opt)
	for _, a := range allocs {
		uA := h.WelfareCounts(a.c)
		loss := "0%"
		if a.name != "OPT (greedy)" && uOpt != 0 {
			loss = fmt.Sprintf("%.2f%%", 100*(uA-uOpt)/abs(uOpt))
		}
		head := a.c
		if len(head) > 12 {
			head = head[:12]
		}
		fmt.Printf("%-14s %14.6g %10s  %v\n", a.name, uA, loss, head)
	}

	if relaxed {
		x, err := h.RelaxedOptimal(rho)
		if err != nil {
			return err
		}
		fmt.Printf("\nrelaxed optimum (water-filling, Σx=%d):\n", alloc.Capacity(nodes, rho))
		fmt.Printf("%-6s %10s %14s %16s\n", "item", "d_i", "x̃_i", "d_i·ϕ(x̃_i)")
		for i := 0; i < items && i < 12; i++ {
			fmt.Printf("%-6d %10.5g %14.5g %16.6g\n", i, pop.Rates[i], x[i], pop.Rates[i]*u.Phi(mu, x[i]))
		}
		fmt.Println("(interior d_i·ϕ(x̃_i) values are equal — the Property 1 balance condition)")
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
