package synth

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/trace"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xdeadbeef)) }

func TestConferenceValid(t *testing.T) {
	tr, err := Conference(DefaultConference(), newRNG(1))
	if err != nil {
		t.Fatalf("Conference: %v", err)
	}
	if tr.Nodes != 50 || tr.Duration != 3*1440 {
		t.Errorf("header %d nodes / %g min", tr.Nodes, tr.Duration)
	}
	if len(tr.Contacts) < 1000 {
		t.Errorf("suspiciously few contacts: %d", len(tr.Contacts))
	}
}

func TestConferenceDiurnalCycle(t *testing.T) {
	cfg := DefaultConference()
	tr, err := Conference(cfg, newRNG(2))
	if err != nil {
		t.Fatalf("Conference: %v", err)
	}
	var day, night int
	for _, c := range tr.Contacts {
		tod := math.Mod(c.T, 1440)
		if tod >= cfg.DayStart && tod < cfg.DayEnd {
			day++
		} else {
			night++
		}
	}
	// Daytime is 12 of 24 hours but carries ~96% of the activity.
	if day < 5*night {
		t.Errorf("day/night contact split %d/%d lacks diurnal structure", day, night)
	}
	if night == 0 {
		t.Error("no night contacts at all; night factor not applied")
	}
}

func TestConferenceHeterogeneity(t *testing.T) {
	tr, err := Conference(DefaultConference(), newRNG(3))
	if err != nil {
		t.Fatalf("Conference: %v", err)
	}
	counts := trace.ContactCounts(tr)
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 3*min+10 {
		t.Errorf("node coverage too homogeneous: min=%d max=%d", min, max)
	}
}

func TestConferenceBursty(t *testing.T) {
	// Inter-contact CV must exceed 1 (heavier than exponential).
	tr, err := Conference(DefaultConference(), newRNG(4))
	if err != nil {
		t.Fatalf("Conference: %v", err)
	}
	cv := trace.CoefficientOfVariation(trace.InterContactTimes(tr))
	if !(cv > 1.15) {
		t.Errorf("inter-contact CV %g, want > 1.15 (bursty)", cv)
	}
}

func TestConferenceHomogeneousSociability(t *testing.T) {
	cfg := DefaultConference()
	cfg.Sociability = 0
	cfg.Nodes = 10
	cfg.Days = 1
	tr, err := Conference(cfg, newRNG(5))
	if err != nil {
		t.Fatalf("Conference: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConferenceConfigValidation(t *testing.T) {
	mods := []func(*ConferenceConfig){
		func(c *ConferenceConfig) { c.Nodes = 1 },
		func(c *ConferenceConfig) { c.Days = 0 },
		func(c *ConferenceConfig) { c.DayEnd = c.DayStart },
		func(c *ConferenceConfig) { c.DayEnd = 2000 },
		func(c *ConferenceConfig) { c.NightFactor = 0 },
		func(c *ConferenceConfig) { c.NightFactor = 1.5 },
		func(c *ConferenceConfig) { c.MeanRate = 0 },
		func(c *ConferenceConfig) { c.Sociability = -1 },
		func(c *ConferenceConfig) { c.ParetoShape = 1 },
	}
	for i, mod := range mods {
		cfg := DefaultConference()
		mod(&cfg)
		if _, err := Conference(cfg, newRNG(1)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDiurnalCumulativeInverse(t *testing.T) {
	d := NewDiurnal(480, 1200, 0.1, 2*1440)
	// Λ is nondecreasing; invert is a right inverse on the range.
	prev := -1.0
	for tt := 0.0; tt <= 2*1440; tt += 37 {
		c := d.Cumulative(tt)
		if c < prev-1e-9 {
			t.Fatalf("cumulative not monotone at t=%g", tt)
		}
		prev = c
		back := d.Invert(c)
		if math.Abs(d.Cumulative(back)-c) > 1e-6 {
			t.Fatalf("invert not a right inverse at t=%g: Λ(Λ⁻¹(%g))=%g", tt, c, d.Cumulative(back))
		}
	}
	// Daytime activity accumulates 1 per minute, night 0.1 per minute.
	gotDay := d.Cumulative(1200) - d.Cumulative(480)
	if math.Abs(gotDay-720) > 1e-6 {
		t.Errorf("daytime cumulative %g, want 720", gotDay)
	}
	gotNight := d.Cumulative(480) - d.Cumulative(0)
	if math.Abs(gotNight-48) > 1e-6 {
		t.Errorf("night cumulative %g, want 48", gotNight)
	}
}

func TestVehicularValid(t *testing.T) {
	cfg := DefaultVehicular()
	cfg.Cabs = 20 // keep the unit test fast
	cfg.DurationMin = 360
	tr, err := Vehicular(cfg, newRNG(6))
	if err != nil {
		t.Fatalf("Vehicular: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("no vehicular contacts; parameters unreasonable")
	}
}

func TestMemorylessPreservesRates(t *testing.T) {
	cfg := DefaultConference()
	cfg.Nodes = 15
	cfg.Days = 2
	orig, err := Conference(cfg, newRNG(7))
	if err != nil {
		t.Fatalf("Conference: %v", err)
	}
	syn, err := Memoryless(orig, newRNG(8))
	if err != nil {
		t.Fatalf("Memoryless: %v", err)
	}
	if syn.Duration != orig.Duration || syn.Nodes != orig.Nodes {
		t.Fatalf("header mismatch")
	}
	ro, rs := trace.EmpiricalRates(orig), trace.EmpiricalRates(syn)
	// Aggregate rate conserved within Poisson noise.
	if to, ts := ro.TotalRate(), rs.TotalRate(); math.Abs(to-ts)/to > 0.1 {
		t.Errorf("total rate %g vs %g", to, ts)
	}
	// Correlation between per-pair rates should be high.
	a, b := ro.Rates(), rs.Rates()
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if corr := cov / math.Sqrt(va*vb); corr < 0.9 {
		t.Errorf("pairwise rate correlation %g, want ≥ 0.9", corr)
	}
}

func TestMemorylessDestroysBurstiness(t *testing.T) {
	orig, err := Conference(DefaultConference(), newRNG(9))
	if err != nil {
		t.Fatalf("Conference: %v", err)
	}
	syn, err := Memoryless(orig, newRNG(10))
	if err != nil {
		t.Fatalf("Memoryless: %v", err)
	}
	cvOrig := trace.CoefficientOfVariation(trace.InterContactTimes(orig))
	cvSyn := trace.CoefficientOfVariation(trace.InterContactTimes(syn))
	if !(cvSyn < cvOrig) {
		t.Errorf("memoryless CV %g not below original %g", cvSyn, cvOrig)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cfg := DefaultConference()
	cfg.Nodes = 10
	cfg.Days = 1
	a, _ := Conference(cfg, newRNG(11))
	b, _ := Conference(cfg, newRNG(11))
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("nondeterministic conference generator")
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}
