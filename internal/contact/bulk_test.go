package contact

import (
	"math/rand/v2"
	"testing"

	"impatience/internal/trace"
)

// randomMatrix draws a rate matrix with a random sparsity pattern —
// including occasional zero rows — so the property sweep covers skewed
// CDFs and alias tables, not just the uniform case.
func randomMatrix(rng *rand.Rand, nodes int) *trace.RateMatrix {
	rm := trace.NewRateMatrix(nodes)
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			if rng.Float64() < 0.3 {
				continue // leave the pair at rate 0
			}
			rm.Set(a, b, 0.01+rng.Float64())
		}
	}
	return rm
}

// drainNext fully drains src through the scalar Next path.
func drainNext(src trace.Source) []trace.Contact {
	var out []trace.Contact
	for {
		c, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}

// drainBulk drains src through NextBatch with the given buffer size,
// interleaving a scalar Next every few batches (mix > 0) to pin the
// contract that the two entry points share one cursor and one RNG.
func drainBulk(src trace.Source, batch, mix int) []trace.Contact {
	var out []trace.Contact
	buf := make([]trace.Contact, batch)
	for i := 0; ; i++ {
		if mix > 0 && i%mix == mix-1 {
			c, ok := src.Next()
			if !ok {
				return out
			}
			out = append(out, c)
			continue
		}
		n := trace.FillBatch(src, buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// TestNextBatchMatchesNextProperty is the bulk-seam property test: for
// 200+ random configurations of every streaming generator, draining via
// NextBatch (with random batch sizes, optionally interleaved with
// scalar Next calls) must yield the exact contact sequence that
// repeated Next yields from an identically seeded twin. The seam
// buffers, never reorders: same RNG draws, same contacts, bit for bit.
func TestNextBatchMatchesNextProperty(t *testing.T) {
	meta := rand.New(rand.NewPCG(0xb41c, 0x5eed))
	kinds := []struct {
		name  string
		build func(rm *trace.RateMatrix, duration float64, seed uint64) (trace.Source, error)
	}{
		{"stream", func(rm *trace.RateMatrix, duration float64, seed uint64) (trace.Source, error) {
			return NewStream(rm, duration, rand.New(rand.NewPCG(seed, seed+3)))
		}},
		{"discrete", func(rm *trace.RateMatrix, duration float64, seed uint64) (trace.Source, error) {
			return NewDiscreteStream(rm, duration, 0.5, rand.New(rand.NewPCG(seed, seed+3)))
		}},
		{"replay", func(rm *trace.RateMatrix, duration float64, seed uint64) (trace.Source, error) {
			return NewReplayStream(rm, duration, seed, seed+12)
		}},
	}
	const trials = 80 // × 3 generators = 240 random configs
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				nodes := 2 + meta.IntN(12)
				duration := 5 + meta.Float64()*100
				seed := meta.Uint64()
				batch := 1 + meta.IntN(600)
				mix := meta.IntN(4) // 0: pure bulk; else interleave Next
				rm := randomMatrix(meta, nodes)

				ref, err := k.build(rm, duration, seed)
				if err != nil {
					t.Fatalf("trial %d: build ref: %v", trial, err)
				}
				bulk, err := k.build(rm, duration, seed)
				if err != nil {
					t.Fatalf("trial %d: build bulk: %v", trial, err)
				}
				want := drainNext(ref)
				got := drainBulk(bulk, batch, mix)
				if len(got) != len(want) {
					t.Fatalf("trial %d (nodes=%d batch=%d mix=%d): %d contacts via bulk, %d via Next",
						trial, nodes, batch, mix, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d (nodes=%d batch=%d mix=%d): contact %d = %+v via bulk, %+v via Next",
							trial, nodes, batch, mix, i, got[i], want[i])
					}
				}
				// Both drains must agree the stream is exhausted.
				if c, ok := bulk.Next(); ok {
					t.Fatalf("trial %d: bulk source yielded %+v after exhaustion", trial, c)
				}
			}
		})
	}
}

// TestNextBatchEmptyBuffer pins the degenerate contract: an empty buffer
// fills zero contacts and must not disturb the stream.
func TestNextBatchEmptyBuffer(t *testing.T) {
	s, err := NewHomogeneousStream(6, 0.2, 50, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if n := s.NextBatch(nil); n != 0 {
		t.Fatalf("NextBatch(nil) = %d, want 0", n)
	}
	first, ok := s.Next()
	if !ok {
		t.Fatal("stream empty after no-op NextBatch")
	}
	twin, err := NewHomogeneousStream(6, 0.2, 50, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := twin.Next()
	if first != want {
		t.Fatalf("first contact after empty NextBatch = %+v, want %+v", first, want)
	}
}
