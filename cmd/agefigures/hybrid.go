package main

import (
	"impatience/internal/experiment"
	"impatience/internal/plot"
	"impatience/internal/rates"
)

// hybridFigure builds the Figure-3-at-scale family (id "xh"): QCR's
// utility and replica trajectories on the hybrid mean-field engine over
// a community model at population sizes the full event path cannot
// regenerate interactively. Quick mode shrinks the population, not the
// physics — the per-pair rates keep the same per-node meeting budget.
func hybridFigure(sc experiment.Scenario, quick bool) ([]*plot.Table, error) {
	n, comms := 10_000, 8
	trials := 5
	if quick {
		n, comms = 2_000, 4
		trials = 2
	}
	per := n / comms
	// ~2.45 meetings per node-minute, 70% of them intra-community: the
	// scale convention of cmd/agebench's structured ladder.
	const perNodeRate = 2.45
	m, err := rates.NewCommunity(rates.CommunityConfig{
		Nodes: n, Communities: comms,
		In:  0.7 * perNodeRate / float64(per-1),
		Out: 0.3 * perNodeRate / float64(n-per),
	})
	if err != nil {
		return nil, err
	}
	sc.Nodes = n
	sc.Items = 32
	sc.Rho = 3
	sc.DemandRate = 0.04 * float64(n)
	sc.Duration = 2000
	if sc.Trials > trials {
		sc.Trials = trials
	}
	sc.Mu = m.MeanPairRate()
	return experiment.HybridFigure3(sc, m)
}
