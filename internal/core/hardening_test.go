package core

import "testing"

// Tests for the fault-hardening machinery: mandate TTL expiry, bounded
// retry of failed content transfers, crash cleanup, and in-flight drops.
// The conservation law under faults is
//
//	created = pending + executed + expired + abandoned + dropped + crashed.

func conserved(t *testing.T, q *QCR, crashed int) {
	t.Helper()
	dropped, expired, abandoned := q.FaultCounters()
	got := q.TotalMandates() + q.MandatesExecuted() + expired + abandoned + dropped + crashed
	if got != q.MandatesCreated() {
		t.Errorf("conservation: pending+executed+expired+abandoned+dropped+crashed = %d, created = %d",
			got, q.MandatesCreated())
	}
}

func TestMandateTTLExpires(t *testing.T) {
	q := newQCR(false)
	q.MandateTTL = 10
	c := newFakeCache(2, 5)
	q.Init(c)
	q.addMandates(0, 3, 2, 0) // born at t=0, nobody holds item 3

	q.OnMeeting(c, 0, 1, 20) // age 20 > TTL 10
	if got := q.TotalMandates(); got != 0 {
		t.Fatalf("pending after expiry = %d, want 0", got)
	}
	if _, expired, _ := q.FaultCounters(); expired != 2 {
		t.Errorf("expired = %d, want 2", expired)
	}
	conserved(t, q, 0)
}

func TestMandateTTLKeepsFresh(t *testing.T) {
	q := newQCR(false)
	q.MandateTTL = 10
	c := newFakeCache(2, 5)
	q.Init(c)
	q.addMandates(0, 3, 2, 15) // born at t=15

	q.OnMeeting(c, 0, 1, 20) // age 5 < TTL 10
	if got := q.count(0, 3); got != 2 {
		t.Fatalf("pending fresh mandates = %d, want 2", got)
	}
	if _, expired, _ := q.FaultCounters(); expired != 0 {
		t.Errorf("expired = %d, want 0", expired)
	}
	conserved(t, q, 0)
}

func TestBoundedRetryAbandons(t *testing.T) {
	q := newQCR(false)
	q.MaxAttempts = 2
	c := newFakeCache(2, 5)
	c.has[[2]int{0, 3}] = true // node 0 holds item 3
	c.writeOK = false          // every content transfer fails (truncated meetings)
	q.Init(c)
	q.addMandates(0, 3, 1, 0)

	q.OnMeeting(c, 0, 1, 1) // attempt 1 fails, mandate retained
	if got := q.count(0, 3); got != 1 {
		t.Fatalf("pending after first failure = %d, want 1 (retry)", got)
	}
	q.OnMeeting(c, 0, 1, 2) // attempt 2 fails, budget exhausted
	if got := q.TotalMandates(); got != 0 {
		t.Fatalf("pending after exhausting retries = %d, want 0", got)
	}
	if _, _, abandoned := q.FaultCounters(); abandoned != 1 {
		t.Errorf("abandoned = %d, want 1", abandoned)
	}
	conserved(t, q, 0)
}

func TestUnboundedRetryKeepsMandate(t *testing.T) {
	q := newQCR(false) // MaxAttempts 0: retry forever (pre-hardening behavior)
	c := newFakeCache(2, 5)
	c.has[[2]int{0, 3}] = true
	c.writeOK = false
	q.Init(c)
	q.addMandates(0, 3, 1, 0)

	for k := 0; k < 10; k++ {
		q.OnMeeting(c, 0, 1, float64(k))
	}
	if got := q.count(0, 3); got != 1 {
		t.Fatalf("pending = %d, want 1 (unbounded retry never abandons)", got)
	}
	conserved(t, q, 0)
}

func TestOnCrashClearsMandates(t *testing.T) {
	q := newQCR(true)
	c := newFakeCache(3, 5)
	q.Init(c)
	q.addMandates(0, 1, 3, 0)
	q.addMandates(0, 2, 2, 0)
	q.addMandates(1, 2, 4, 0)

	if got := q.OnCrash(0); got != 5 {
		t.Fatalf("OnCrash(0) = %d, want 5", got)
	}
	if got := q.TotalMandates(); got != 4 {
		t.Fatalf("pending after crash = %d, want 4 (node 1 untouched)", got)
	}
	conserved(t, q, 5)
}

// alwaysDrop is a Disruptor losing every mandate handoff.
type alwaysDrop struct{}

func (alwaysDrop) DropMandate() bool { return true }

func TestDropInFlight(t *testing.T) {
	q := newQCR(true)
	q.StrictSource = true
	c := newFakeCache(2, 5)
	c.has[[2]int{1, 3}] = true // node 1 is item 3's sole holder
	q.Init(c)
	q.SetDisruptor(alwaysDrop{})
	q.addMandates(0, 3, 2, 0)

	// Routing sends both mandates toward the sole holder; each is lost in
	// flight.
	q.OnMeeting(c, 0, 1, 1)
	if got := q.TotalMandates(); got != 0 {
		t.Fatalf("pending = %d, want 0 (all dropped)", got)
	}
	dropped, _, _ := q.FaultCounters()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if moved := q.MandatesMoved(); moved != 0 {
		t.Errorf("moved = %d, want 0 (a dropped mandate never arrives)", moved)
	}
	conserved(t, q, 0)
}

// TestStarvationAfterHolderCrash is the satellite scenario: the only
// holder of an item crashes, leaving mandates for it circulating among
// the survivors with no way to execute. With a TTL they expire at a later
// meeting; without one they circulate forever.
func TestStarvationAfterHolderCrash(t *testing.T) {
	build := func(ttl float64) (*QCR, *fakeCache) {
		q := newQCR(true)
		q.StrictSource = true
		q.MandateTTL = ttl
		c := newFakeCache(3, 5)
		c.has[[2]int{2, 4}] = true // node 2 is item 4's only holder
		q.Init(c)
		q.addMandates(0, 4, 2, 0)
		q.addMandates(1, 4, 1, 0)
		return q, c
	}
	crash := func(q *QCR, c *fakeCache, node int) int {
		delete(c.has, [2]int{node, 4}) // the simulator wipes the cache...
		return q.OnCrash(node)         // ...and notifies the policy
	}

	// Hardened: TTL 50. The holder crashes at t=5; survivor meetings keep
	// routing the now-unexecutable mandates until expiry clears them.
	q, c := build(50)
	crashed := crash(q, c, 2)
	if crashed != 0 {
		t.Fatalf("holder had %d pending mandates, want 0", crashed)
	}
	for k := 1; k <= 10; k++ {
		q.OnMeeting(c, 0, 1, 5+float64(k)*10) // t = 15 … 105
	}
	if got := q.TotalMandates(); got != 0 {
		t.Fatalf("hardened QCR: %d mandates still circulating, want 0", got)
	}
	_, expired, _ := q.FaultCounters()
	if expired != 3 {
		t.Errorf("expired = %d, want 3", expired)
	}
	conserved(t, q, crashed)

	// Unhardened contrast: TTL 0 leaves them circulating forever.
	q0, c0 := build(0)
	crash(q0, c0, 2)
	for k := 1; k <= 10; k++ {
		q0.OnMeeting(c0, 0, 1, 5+float64(k)*10)
	}
	if got := q0.TotalMandates(); got != 3 {
		t.Fatalf("unhardened QCR: pending = %d, want 3 (starved mandates never clear)", got)
	}
	conserved(t, q0, 0)
}
