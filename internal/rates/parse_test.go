package rates

import (
	"errors"
	"math"
	"testing"
)

// TestParseRates covers the spec grammar: every valid spec builds the
// model it names, every malformed spec wraps ErrSpec, and every
// syntactically fine but semantically invalid spec wraps ErrModel.
func TestParseRates(t *testing.T) {
	valid := []struct {
		spec        string
		nodes       int
		communities int
	}{
		{"community:n=100", 100, 8},
		{"community:n=100,c=5,in=0.7,out=0.02", 100, 5},
		{"hubspoke:n=60", 60, 2},
		{"hubspoke:n=60,hubs=4,hh=0.9,hs=0.2,ss=0", 60, 2},
		{"distance:n=50,cells=2x2,w=1000,h=1000,seed=3", 50, 0}, // realized C ≤ 4 depends on placement
		{"distance:n=50", 50, 0},
	}
	for _, v := range valid {
		m, err := ParseRates(v.spec)
		if err != nil {
			t.Errorf("%q: %v", v.spec, err)
			continue
		}
		if m.Nodes() != v.nodes {
			t.Errorf("%q: %d nodes, want %d", v.spec, m.Nodes(), v.nodes)
		}
		if v.communities > 0 && m.Communities() != v.communities {
			t.Errorf("%q: %d communities, want %d", v.spec, m.Communities(), v.communities)
		}
	}

	specErrs := []string{
		"",                        // no kind
		"community",               // no colon
		"erdos:n=100",             // unknown kind
		"community:n",             // clause without =
		"community:n=100,",        // empty trailing clause
		"community:n=100,n=200",   // duplicate key
		"community:c=5",           // missing n
		"community:n=ten",         // malformed int
		"community:n=100,in=x",    // malformed float
		"community:n=100,hubs=2",  // key of another kind
		"distance:n=50,cells=4",   // malformed grid
		"distance:n=50,cells=4xq", // malformed grid dim
		"distance:n=50,seed=-1",   // seed not uint
	}
	for _, s := range specErrs {
		_, err := ParseRates(s)
		if err == nil {
			t.Errorf("%q: accepted", s)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%q: error %v does not wrap ErrSpec", s, err)
		}
	}

	modelErrs := []string{
		"community:n=2,c=5",            // nodes < communities
		"community:n=100,in=-1",        // negative rate
		"community:n=100,in=0,out=0",   // zero total
		"hubspoke:n=10,hubs=10",        // no spokes
		"hubspoke:n=10,hubs=0",         // no hubs
		"distance:n=1",                 // one node
		"distance:n=50,mu0=0",          // zero kernel
		"distance:n=50,lambda=-5",      // negative decay
		"distance:n=50,cells=0x4",      // empty grid
		"community:n=100,in=NaN",       // NaN parses as float, model rejects
		"community:n=100,out=Inf,in=1", // infinite rate
	}
	for _, s := range modelErrs {
		_, err := ParseRates(s)
		if err == nil {
			t.Errorf("%q: accepted", s)
			continue
		}
		if !errors.Is(err, ErrModel) {
			t.Errorf("%q: error %v does not wrap ErrModel", s, err)
		}
	}
}

// FuzzParseRates fuzzes the CLI-facing spec parser: no input may panic,
// and any accepted spec must yield a usable model (≥ 2 nodes, positive
// finite total rate, and a sane community partition).
func FuzzParseRates(f *testing.F) {
	for _, s := range DefaultSpecs() {
		f.Add(s)
	}
	f.Add("community:n=100,c=5,in=0.7,out=0.02")
	f.Add("hubspoke:n=60,hubs=4,hh=0.9,hs=0.2,ss=0")
	f.Add("distance:n=50,cells=2x3,mu0=0.5,lambda=100,w=1000,h=1000,seed=3")
	f.Add("community:n=1e9")
	f.Add("community:n=100,c=-1")
	f.Add(":::")
	f.Add("community:n=2,c=1,in=1e308,out=1e308")
	f.Fuzz(func(t *testing.T, spec string) {
		// Huge populations are valid specs but allocate O(N); keep the
		// fuzzer away from multi-GB model construction.
		if len(spec) > 256 {
			return
		}
		m, err := ParseRates(spec)
		if err != nil {
			if !errors.Is(err, ErrSpec) && !errors.Is(err, ErrModel) {
				t.Fatalf("%q: error %v wraps neither ErrSpec nor ErrModel", spec, err)
			}
			return
		}
		if m.Nodes() < 2 {
			t.Fatalf("%q: model with %d nodes", spec, m.Nodes())
		}
		tot := m.TotalRate()
		if !(tot > 0) || math.IsInf(tot, 0) || math.IsNaN(tot) {
			t.Fatalf("%q: total rate %g", spec, tot)
		}
		if c := m.Communities(); c < 1 || c > m.Nodes() {
			t.Fatalf("%q: %d communities for %d nodes", spec, c, m.Nodes())
		}
	})
}
