package utility

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// allFamilies returns one representative per family with the given knobs,
// for table-driven cross-family tests.
func allFamilies() []Function {
	return []Function{
		Step{Tau: 1},
		Step{Tau: 25},
		Exponential{Nu: 0.1},
		Exponential{Nu: 2},
		Power{Alpha: 1.5}, // inverse power (time-critical)
		Power{Alpha: 0.5}, // negative power (waiting cost)
		Power{Alpha: 0},
		Power{Alpha: -1},
		NegLog{},
	}
}

func TestHMonotoneNonIncreasing(t *testing.T) {
	ts := []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 100, 1000}
	for _, f := range allFamilies() {
		prev := math.Inf(1)
		for _, x := range ts {
			v := f.H(x)
			if v > prev+1e-12 {
				t.Errorf("%s: h not non-increasing at t=%g: %g > %g", f.Name(), x, v, prev)
			}
			prev = v
		}
	}
}

func TestDensityNonNegative(t *testing.T) {
	for _, f := range allFamilies() {
		for _, x := range []float64{0.01, 0.1, 1, 10, 100} {
			if c := f.Density(x); c < 0 {
				t.Errorf("%s: density negative at t=%g: %g", f.Name(), x, c)
			}
		}
		for _, a := range f.Atoms() {
			if a.Mass <= 0 || a.T <= 0 {
				t.Errorf("%s: invalid atom %+v", f.Name(), a)
			}
		}
	}
}

// The closed-form expected gains must match the Lemma-1 quadrature
// reference h(0+) - ∫ e^{-λt} c(t) dt for every family with finite h(0+),
// and direct E[h(Y)] quadrature for the unbounded ones.
func TestExpectedGainClosedFormVsNumeric(t *testing.T) {
	rates := []float64{0.05, 0.25, 1, 4, 20}
	for _, f := range allFamilies() {
		for _, r := range rates {
			want := f.ExpectedGain(r)
			if math.IsInf(f.H0(), 1) {
				// Unbounded h(0+): integrate E[h(Y)] = ∫ h(t)·λe^{-λt} dt directly.
				got, err := directExpectedGain(f, r)
				if err != nil {
					t.Fatalf("%s rate=%g: %v", f.Name(), r, err)
				}
				if !almostEqual(got, want, 1e-5) {
					t.Errorf("%s rate=%g: direct=%g closed=%g", f.Name(), r, got, want)
				}
				continue
			}
			got, err := NumericExpectedGain(f, r)
			if err != nil {
				t.Fatalf("%s rate=%g: %v", f.Name(), r, err)
			}
			if !almostEqual(got, want, 1e-6) {
				t.Errorf("%s rate=%g: numeric=%g closed=%g", f.Name(), r, got, want)
			}
		}
	}
}

// directExpectedGain integrates h against the Exp(rate) density, splitting
// at 1/rate to tame integrable singularities of h at 0.
func directExpectedGain(f Function, rate float64) (float64, error) {
	pdf := func(t float64) float64 { return f.H(t) * rate * math.Exp(-rate*t) }
	// The families with h(0+)=∞ (power 1<α<2, neglog) have integrable
	// singularities; substitute t = u^k with k chosen to flatten them.
	split := 1 / rate
	var head float64
	{
		// t = split·u^4 concentrates nodes near 0.
		k := 4.0
		g := func(u float64) float64 {
			tt := split * math.Pow(u, k)
			if tt == 0 {
				return 0
			}
			return pdf(tt) * split * k * math.Pow(u, k-1)
		}
		v, err := integrate01(g)
		if err != nil {
			return 0, err
		}
		head = v
	}
	tail, err := integrateToInf(pdf, split)
	if err != nil {
		return 0, err
	}
	return head + tail, nil
}

func TestExpectedGainMonotoneInRate(t *testing.T) {
	// More replicas (higher rate) can only help: E[h(Y)] non-decreasing in λ.
	rates := []float64{0.01, 0.1, 0.5, 1, 2, 10, 50}
	for _, f := range allFamilies() {
		prev := math.Inf(-1)
		for _, r := range rates {
			v := f.ExpectedGain(r)
			if v < prev-1e-12 {
				t.Errorf("%s: ExpectedGain decreasing at rate=%g: %g < %g", f.Name(), r, v, prev)
			}
			prev = v
		}
	}
}

func TestExpectedGainZeroRate(t *testing.T) {
	tests := []struct {
		f    Function
		want float64
	}{
		{Step{Tau: 5}, 0},
		{Exponential{Nu: 1}, 0},
		{Power{Alpha: 1.5}, 0},
		{Power{Alpha: 0}, math.Inf(-1)},
		{Power{Alpha: -2}, math.Inf(-1)},
		{NegLog{}, math.Inf(-1)},
	}
	for _, tt := range tests {
		if got := tt.f.ExpectedGain(0); got != tt.want {
			t.Errorf("%s: ExpectedGain(0)=%g, want %g", tt.f.Name(), got, tt.want)
		}
	}
}

// Phi closed forms vs the quadrature reference.
func TestPhiClosedFormVsNumeric(t *testing.T) {
	mus := []float64{0.05, 1}
	xs := []float64{0.5, 1, 3, 10, 40}
	for _, f := range allFamilies() {
		for _, mu := range mus {
			for _, x := range xs {
				want := f.Phi(mu, x)
				got, err := NumericPhi(f, mu, x)
				if err != nil {
					t.Fatalf("%s µ=%g x=%g: %v", f.Name(), mu, x, err)
				}
				if !almostEqual(got, want, 1e-5) {
					t.Errorf("%s µ=%g x=%g: numeric=%g closed=%g", f.Name(), mu, x, got, want)
				}
			}
		}
	}
}

func TestPhiPositiveDecreasing(t *testing.T) {
	xs := []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}
	for _, f := range allFamilies() {
		prev := math.Inf(1)
		for _, x := range xs {
			v := f.Phi(0.05, x)
			if v <= 0 {
				t.Errorf("%s: ϕ(%g)=%g not positive", f.Name(), x, v)
			}
			if v > prev+1e-15 {
				t.Errorf("%s: ϕ not decreasing at x=%g", f.Name(), x)
			}
			prev = v
		}
	}
}

// Phi is the derivative of the expected gain with respect to the replica
// count: ϕ(x) = d/dx E[h(Exp(µx))]. This ties Property 1 to the welfare
// function and validates both closed forms at once.
func TestPhiIsWelfareDerivative(t *testing.T) {
	const mu = 0.05
	for _, f := range allFamilies() {
		for _, x := range []float64{1, 3, 10, 30} {
			eps := 1e-5 * x
			num := (f.ExpectedGain(mu*(x+eps)) - f.ExpectedGain(mu*(x-eps))) / (2 * eps)
			want := f.Phi(mu, x)
			if !almostEqual(num, want, 1e-4) {
				t.Errorf("%s x=%g: dU/dx=%g, ϕ=%g", f.Name(), x, num, want)
			}
		}
	}
}

// Table 1's ψ closed forms, written out verbatim here, must equal the
// generic ψ(y) = (S/y)·ϕ(S/y).
func TestPsiMatchesTable1(t *testing.T) {
	const (
		mu = 0.05
		S  = 50.0
	)
	ys := []float64{0.5, 1, 2, 5, 10, 40, 200}
	t.Run("step", func(t *testing.T) {
		f := Step{Tau: 10}
		for _, y := range ys {
			want := (mu * f.Tau * S / y) * math.Exp(-mu*f.Tau*S/y)
			if got := Psi(f, mu, S, y); !almostEqual(got, want, 1e-10) {
				t.Errorf("y=%g: ψ=%g, table=%g", y, got, want)
			}
		}
	})
	t.Run("exponential", func(t *testing.T) {
		f := Exponential{Nu: 0.3}
		for _, y := range ys {
			a := mu * S / f.Nu
			want := 1 / (y/a + 2 + a/y)
			if got := Psi(f, mu, S, y); !almostEqual(got, want, 1e-10) {
				t.Errorf("y=%g: ψ=%g, table=%g", y, got, want)
			}
		}
	})
	t.Run("power", func(t *testing.T) {
		for _, alpha := range []float64{1.5, 0.5, 0, -1} {
			f := Power{Alpha: alpha}
			for _, y := range ys {
				want := math.Pow(y, 1-alpha) * math.Pow(mu, alpha-1) * math.Pow(S, alpha-1) * math.Gamma(2-alpha)
				if got := Psi(f, mu, S, y); !almostEqual(got, want, 1e-10) {
					t.Errorf("α=%g y=%g: ψ=%g, table=%g", alpha, y, got, want)
				}
			}
		}
	})
	t.Run("neglog", func(t *testing.T) {
		for _, y := range ys {
			if got := Psi(NegLog{}, mu, S, y); !almostEqual(got, 1, 1e-12) {
				t.Errorf("y=%g: ψ=%g, want constant 1", y, got)
			}
		}
	})
}

func TestPsiEdgeCases(t *testing.T) {
	f := Step{Tau: 1}
	if v := Psi(f, 0.05, 50, 0); v != 0 {
		t.Errorf("ψ(0)=%g, want 0", v)
	}
	if v := Psi(f, 0.05, 0, 5); v != 0 {
		t.Errorf("ψ with no servers = %g, want 0", v)
	}
}

func TestSupportsPureP2P(t *testing.T) {
	tests := []struct {
		f    Function
		want bool
	}{
		{Step{Tau: 1}, true},
		{Exponential{Nu: 1}, true},
		{Power{Alpha: 0}, true},
		{Power{Alpha: -2}, true},
		{Power{Alpha: 1.5}, false},
		{NegLog{}, false},
	}
	for _, tt := range tests {
		if got := SupportsPureP2P(tt.f); got != tt.want {
			t.Errorf("%s: SupportsPureP2P=%v, want %v", tt.f.Name(), got, tt.want)
		}
	}
}

func TestPowerValidate(t *testing.T) {
	for _, alpha := range []float64{2, 2.5, 1} {
		if err := (Power{Alpha: alpha}).Validate(); err == nil {
			t.Errorf("α=%g: expected validation error", alpha)
		}
	}
	for _, alpha := range []float64{1.99, 1.5, 0.5, 0, -5} {
		if err := (Power{Alpha: alpha}).Validate(); err != nil {
			t.Errorf("α=%g: unexpected error %v", alpha, err)
		}
	}
}

// Property: for random parameters, ψ(y)·y/S == ϕ(S/y) exactly (Property 2
// is a pure algebraic identity in this package).
func TestPsiPhiIdentityProperty(t *testing.T) {
	prop := func(tauRaw, muRaw, yRaw float64) bool {
		tau := 0.1 + math.Abs(math.Mod(tauRaw, 50))
		mu := 0.001 + math.Abs(math.Mod(muRaw, 1))
		y := 0.1 + math.Abs(math.Mod(yRaw, 100))
		const S = 50.0
		f := Step{Tau: tau}
		return almostEqual(Psi(f, mu, S, y)*y/S, f.Phi(mu, S/y), 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: expected gain lies between the t→∞ limit and h(0+).
func TestExpectedGainBoundsProperty(t *testing.T) {
	prop := func(rateRaw float64, pick uint8) bool {
		rate := 0.001 + math.Abs(math.Mod(rateRaw, 50))
		fams := allFamilies()
		f := fams[int(pick)%len(fams)]
		v := f.ExpectedGain(rate)
		if math.IsNaN(v) {
			return false
		}
		return v <= f.H0()+1e-12 && v >= f.ExpectedGain(0)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGenericMatchesExponential(t *testing.T) {
	nu := 0.4
	g := Generic{
		Label:    "generic-exp",
		HFunc:    func(t float64) float64 { return math.Exp(-nu * t) },
		CDensity: func(t float64) float64 { return nu * math.Exp(-nu*t) },
		H0Value:  1,
	}
	ref := Exponential{Nu: nu}
	for _, r := range []float64{0.1, 1, 5} {
		if !almostEqual(g.ExpectedGain(r), ref.ExpectedGain(r), 1e-6) {
			t.Errorf("rate %g: generic=%g exact=%g", r, g.ExpectedGain(r), ref.ExpectedGain(r))
		}
	}
	for _, x := range []float64{1, 5, 20} {
		if !almostEqual(g.Phi(0.05, x), ref.Phi(0.05, x), 1e-6) {
			t.Errorf("x=%g: generic ϕ=%g exact=%g", x, g.Phi(0.05, x), ref.Phi(0.05, x))
		}
	}
}

func TestGenericFiniteDifferenceDensity(t *testing.T) {
	// Without an explicit density the finite-difference fallback should
	// still reproduce the exponential family to a few digits.
	nu := 0.7
	g := Generic{
		Label:   "generic-fd",
		HFunc:   func(t float64) float64 { return math.Exp(-nu * t) },
		H0Value: 1,
	}
	ref := Exponential{Nu: nu}
	if !almostEqual(g.ExpectedGain(1), ref.ExpectedGain(1), 1e-4) {
		t.Errorf("generic FD=%g exact=%g", g.ExpectedGain(1), ref.ExpectedGain(1))
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		spec    string
		want    string
		wantErr bool
	}{
		{"step:10", "step(τ=10)", false},
		{"exp:0.5", "exp(ν=0.5)", false},
		{"exponential:2", "exp(ν=2)", false},
		{"power:-1", "power(α=-1)", false},
		{"power:1.5", "power(α=1.5)", false},
		{"neglog", "neglog", false},
		{"log", "neglog", false},
		{"step", "", true},
		{"step:-1", "", true},
		{"exp:0", "", true},
		{"power:2", "", true},
		{"power:1", "", true},
		{"power:xyz", "", true},
		{"bogus:1", "", true},
	}
	for _, tt := range tests {
		f, err := Parse(tt.spec)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): expected error, got %v", tt.spec, f.Name())
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.spec, err)
			continue
		}
		if f.Name() != tt.want {
			t.Errorf("Parse(%q) = %s, want %s", tt.spec, f.Name(), tt.want)
		}
	}
}

func TestOptimalExponentFigure2(t *testing.T) {
	// Figure 2's three landmark points: α→1 gives proportional (exponent 1),
	// α=0 gives square root (1/2), α→2 gives full skew (exponent → ∞).
	if got := (Power{Alpha: 0}).OptimalExponent(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("α=0: exponent %g, want 1/2", got)
	}
	if got := (Power{Alpha: 1}).OptimalExponent(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("α=1: exponent %g, want 1", got)
	}
	if got := (Power{Alpha: 1.9}).OptimalExponent(); got < 9 {
		t.Errorf("α=1.9: exponent %g, want ≥ 9", got)
	}
	if got := (Power{Alpha: -2}).OptimalExponent(); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("α=-2: exponent %g, want 1/4", got)
	}
}
