// Package impatience is a from-scratch Go implementation of the system
// described in "The Age of Impatience: Optimal Replication Schemes for
// Opportunistic Networks" (Reich & Chaintreau, CoNEXT 2009): peer-to-peer
// content dissemination over opportunistic contacts, where the cache
// allocation across mobile devices is driven toward the social-welfare
// optimum implied by the users' impatience (their delay-utility).
//
// The package is a facade over the implementation in internal/: it
// re-exports the delay-utility families and their Table-1 transforms, the
// social-welfare evaluators and optimal-allocation solvers, the Query
// Counting Replication protocol with mandate routing, the discrete-event
// simulator, contact-trace types, and the synthetic trace generators the
// evaluation uses in place of the (non-redistributable) Infocom'06 and
// Cabspotting data sets.
//
// # Quick start
//
// Build a population that loses interest exponentially, compute its
// optimal cache allocation, and simulate QCR converging to it:
//
//	u := impatience.Exponential{Nu: 0.1}
//	pop := impatience.ParetoPopularity(50, 1, 2) // 50 items, ω=1, 2 req/min
//	hom := impatience.Homogeneous{
//		Utility: u, Pop: pop, Mu: 0.05, Servers: 50, Clients: 50, PureP2P: true,
//	}
//	opt, _ := hom.GreedyOptimal(5) // optimal counts for ρ=5
//
//	tr, _ := impatience.GenerateHomogeneousTrace(50, 0.05, 5000, rng)
//	qcr := &impatience.QCR{
//		Reaction:       impatience.TunedReaction(u, 0.05, 50, 0.1),
//		MandateRouting: true,
//	}
//	res, _ := impatience.Simulate(impatience.SimConfig{
//		Rho: 5, Utility: u, Pop: pop, Trace: tr, Policy: qcr,
//	})
//	fmt.Println(res.AvgUtilityRate, hom.WelfareCounts(opt))
//
// See examples/ for complete programs and DESIGN.md for the mapping from
// the paper's sections to packages.
package impatience

import (
	"math/rand/v2"

	"impatience/internal/adaptive"
	"impatience/internal/alloc"
	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/meanfield"
	"impatience/internal/sim"
	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// Delay-utility functions (Section 3.2, Table 1).
type (
	// UtilityFunction is a delay-utility h(t) with its derived transforms.
	UtilityFunction = utility.Function
	// Step is h(t) = 1{t ≤ τ}.
	Step = utility.Step
	// Exponential is h(t) = e^{−νt}.
	Exponential = utility.Exponential
	// Power is h(t) = t^{1−α}/(α−1) for α < 2, α ≠ 1.
	Power = utility.Power
	// NegLog is h(t) = −ln t.
	NegLog = utility.NegLog
	// GenericUtility adapts an arbitrary non-increasing h with numeric
	// transforms.
	GenericUtility = utility.Generic
)

// ParseUtility builds a utility from a spec string such as "step:10",
// "exp:0.5", "power:-1" or "neglog".
func ParseUtility(spec string) (UtilityFunction, error) { return utility.Parse(spec) }

// Psi is the Property-2 reaction function ψ(y) = (S/y)·ϕ(S/y).
func Psi(f UtilityFunction, mu, servers, y float64) float64 { return utility.Psi(f, mu, servers, y) }

// Demand modelling (Section 3.3).
type (
	// Popularity holds per-item demand rates d_i.
	Popularity = demand.Popularity
	// Profile is the per-node demand split π_{i,n}.
	Profile = demand.Profile
)

// ParetoPopularity is the paper's default demand: d_i ∝ (i+1)^{−ω}.
func ParetoPopularity(items int, omega, total float64) Popularity {
	return demand.Pareto(items, omega, total)
}

// UniformPopularity gives every item the same demand.
func UniformPopularity(items int, total float64) Popularity { return demand.Uniform(items, total) }

// Contact traces and processes (Section 3.4).
type (
	// Trace is a time-ordered contact trace.
	Trace = trace.Trace
	// Contact is one meeting.
	Contact = trace.Contact
	// RateMatrix holds pairwise contact intensities µ_{m,n}.
	RateMatrix = trace.RateMatrix
)

// LoadTrace reads a trace file; SaveTrace writes one.
func LoadTrace(path string) (*Trace, error)          { return trace.Load(path) }
func SaveTrace(path string, tr *Trace) error         { return trace.Save(path, tr) }
func EmpiricalRates(tr *Trace) *RateMatrix           { return trace.EmpiricalRates(tr) }
func UniformRates(nodes int, mu float64) *RateMatrix { return trace.UniformRates(nodes, mu) }

// GenerateHomogeneousTrace draws memoryless homogeneous contacts.
func GenerateHomogeneousTrace(nodes int, mu, duration float64, rng *rand.Rand) (*Trace, error) {
	return contact.GenerateHomogeneous(nodes, mu, duration, rng)
}

// GenerateTrace draws memoryless contacts from an arbitrary rate matrix.
func GenerateTrace(rm *RateMatrix, duration float64, rng *rand.Rand) (*Trace, error) {
	return contact.Generate(rm, duration, rng)
}

// Synthetic data sets standing in for the paper's measured traces.
type (
	// ConferenceConfig parameterizes the Infocom'06-like generator.
	ConferenceConfig = synth.ConferenceConfig
	// VehicularConfig parameterizes the Cabspotting-like generator.
	VehicularConfig = synth.VehicularConfig
)

// DefaultConference mirrors the paper's Infocom'06 subset scale.
func DefaultConference() ConferenceConfig { return synth.DefaultConference() }

// DefaultVehicular mirrors the paper's Cabspotting subset scale.
func DefaultVehicular() VehicularConfig { return synth.DefaultVehicular() }

// ConferenceTrace generates a conference trace.
func ConferenceTrace(cfg ConferenceConfig, rng *rand.Rand) (*Trace, error) {
	return synth.Conference(cfg, rng)
}

// VehicularTrace generates a taxi trace.
func VehicularTrace(cfg VehicularConfig, rng *rand.Rand) (*Trace, error) {
	return synth.Vehicular(cfg, rng)
}

// MemorylessTrace rebuilds tr with identical pairwise rates but Poisson
// contact times (Figure 5c's synthesized counterpart).
func MemorylessTrace(tr *Trace, rng *rand.Rand) (*Trace, error) {
	return synth.Memoryless(tr, rng)
}

// Allocations (Section 4) and welfare.
type (
	// AllocationCounts is an integer per-item replica-count allocation.
	AllocationCounts = alloc.Counts
	// Placement assigns items to concrete servers.
	Placement = alloc.Placement
	// Homogeneous evaluates and optimizes welfare under uniform contact
	// rates (Theorem 2, Property 1).
	Homogeneous = welfare.Homogeneous
	// Hetero evaluates and optimizes welfare under arbitrary pairwise
	// rates (Lemma 1, Theorem 1).
	Hetero = welfare.Hetero
)

// Fixed heuristic allocations of Section 6.1.
func UniformAllocation(items, servers, rho int) AllocationCounts {
	return alloc.Uniform(items, servers, rho)
}
func SqrtAllocation(d []float64, servers, rho int) AllocationCounts {
	return alloc.Sqrt(d, servers, rho)
}
func PropAllocation(d []float64, servers, rho int) AllocationCounts {
	return alloc.Prop(d, servers, rho)
}
func DomAllocation(d []float64, servers, rho int) AllocationCounts { return alloc.Dom(d, servers, rho) }

// PlaceAllocation spreads an integer allocation across concrete caches.
func PlaceAllocation(c AllocationCounts, servers, rho int) (*Placement, error) {
	return alloc.Place(c, servers, rho)
}

// The QCR protocol (Section 5) and the simulator (Section 6).
type (
	// ReplicationPolicy is the simulator's replication hook.
	ReplicationPolicy = core.Policy
	// QCR is Query Counting Replication with mandate routing.
	QCR = core.QCR
	// StaticPolicy never replicates (fixed-allocation competitors).
	StaticPolicy = core.Static
	// ReactionFunc maps query counts to replica budgets.
	ReactionFunc = core.ReactionFunc
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// SimResult summarizes a run.
	SimResult = sim.Result
	// SimBin is one time-series bucket.
	SimBin = sim.Bin
)

// TunedReaction builds the Property-2 reaction for f under rate mu with
// |S| = servers; scale trades convergence speed against equilibrium
// variance (0.1 is a good default at the paper's scale).
func TunedReaction(f UtilityFunction, mu float64, servers int, scale float64) ReactionFunc {
	return core.TunedReaction(f, mu, servers, scale)
}

// PathReplication is ψ(y) = scale·y (square-root equilibrium).
func PathReplication(scale float64) ReactionFunc { return core.PathReplication(scale) }

// ConstantReaction is ψ(y) = c (proportional equilibrium).
func ConstantReaction(c float64) ReactionFunc { return core.ConstantReaction(c) }

// Simulate runs the discrete-event simulation.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// MeanField is the Eq.-7 fluid model of QCR's replica dynamics.
type MeanField = meanfield.System

// AdaptiveQCR learns the population's impatience from consumption
// feedback and re-tunes the reaction function online — the Section 7
// open problem. See internal/adaptive for the estimator details.
type AdaptiveQCR = adaptive.Policy

// TunedReactions builds a per-item reaction function for catalogs whose
// items follow different delay-utilities (Section 3.2).
func TunedReactions(fs []UtilityFunction, fallback UtilityFunction, mu float64, servers int, scale float64) func(item, queries int) float64 {
	return core.TunedReactions(fs, fallback, mu, servers, scale)
}
