// Package alloc defines cache allocations — how many replicas of each
// content item the global distributed cache holds, and on which servers —
// together with the fixed heuristic allocations the paper benchmarks
// against (UNI, SQRT, PROP, DOM) and the machinery to place an integer
// allocation onto concrete per-server caches.
package alloc

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Counts is an integer allocation: Counts[i] replicas of item i across
// the server population, ignoring which server holds what. Under
// homogeneous contacts the social welfare depends on the allocation only
// through Counts (Theorem 2).
type Counts []int

// Total returns the number of replicas Σ_i x_i.
func (c Counts) Total() int {
	var sum int
	for _, v := range c {
		sum += v
	}
	return sum
}

// Validate checks 0 ≤ x_i ≤ servers and Σ x_i ≤ servers·rho.
func (c Counts) Validate(servers, rho int) error {
	total := 0
	for i, v := range c {
		if v < 0 || v > servers {
			return fmt.Errorf("alloc: item %d has %d replicas (servers=%d)", i, v, servers)
		}
		total += v
	}
	if total > servers*rho {
		return fmt.Errorf("alloc: %d replicas exceed capacity %d", total, servers*rho)
	}
	return nil
}

// Capacity is the total number of cache slots servers·rho.
func Capacity(servers, rho int) int { return servers * rho }

// Uniform builds the UNI heuristic: the global cache divided evenly
// between all items (the remainder, if any, goes to the lowest-indexed
// items, one extra slot each), each item capped at the server count.
func Uniform(items, servers, rho int) Counts {
	budget := Capacity(servers, rho)
	c := make(Counts, items)
	if items == 0 {
		return c
	}
	base := budget / items
	rem := budget % items
	for i := range c {
		v := base
		if i < rem {
			v++
		}
		if v > servers {
			v = servers
		}
		c[i] = v
	}
	return c
}

// Weighted apportions the budget proportionally to non-negative weights
// using largest-remainder rounding with a per-item cap of servers. Any
// budget that cannot be placed because every positive-weight item is at
// its cap spills to zero-weight items (uniformly), and is dropped only if
// the whole catalog is saturated.
func Weighted(weights []float64, servers, rho int) Counts {
	items := len(weights)
	budget := Capacity(servers, rho)
	c := make(Counts, items)
	if items == 0 || budget == 0 {
		return c
	}
	var wsum float64
	for _, w := range weights {
		if w > 0 {
			wsum += w
		}
	}
	if wsum == 0 {
		return Uniform(items, servers, rho)
	}
	// Iteratively apportion among uncapped items; items that hit the cap
	// release their excess to the rest.
	remaining := budget
	active := make([]int, 0, items)
	for i, w := range weights {
		if w > 0 {
			active = append(active, i)
		}
	}
	for remaining > 0 && len(active) > 0 {
		var aw float64
		for _, i := range active {
			aw += weights[i]
		}
		type share struct {
			item int
			base int
			frac float64
		}
		shares := make([]share, 0, len(active))
		allocated := 0
		for _, i := range active {
			exact := float64(remaining) * weights[i] / aw
			b := int(math.Floor(exact))
			if c[i]+b > servers {
				b = servers - c[i]
			}
			shares = append(shares, share{item: i, base: b, frac: exact - math.Floor(exact)})
			allocated += b
		}
		// Largest remainders get the leftover units (respecting caps).
		sort.SliceStable(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
		left := remaining - allocated
		for k := range shares {
			if left == 0 {
				break
			}
			i := shares[k].item
			if c[i]+shares[k].base < servers {
				shares[k].base++
				left--
			}
		}
		progress := false
		for _, s := range shares {
			if s.base > 0 {
				progress = true
			}
			c[s.item] += s.base
			remaining -= s.base
		}
		// Drop saturated items from the active set.
		next := active[:0]
		for _, i := range active {
			if c[i] < servers {
				next = append(next, i)
			}
		}
		active = next
		if !progress && left == remaining {
			break
		}
	}
	// Spill leftover budget to zero-weight items, round-robin.
	for remaining > 0 {
		placed := false
		for i := range c {
			if remaining == 0 {
				break
			}
			if c[i] < servers {
				c[i]++
				remaining--
				placed = true
			}
		}
		if !placed {
			break
		}
	}
	return c
}

// Sqrt builds the SQRT heuristic: replicas proportional to √d_i, the
// classical path-replication equilibrium of Cohen & Shenker.
func Sqrt(demand []float64, servers, rho int) Counts {
	w := make([]float64, len(demand))
	for i, d := range demand {
		w[i] = math.Sqrt(d)
	}
	return Weighted(w, servers, rho)
}

// Prop builds the PROP heuristic: replicas proportional to demand, the
// equilibrium of passive one-copy-per-fulfillment replication.
func Prop(demand []float64, servers, rho int) Counts {
	return Weighted(append([]float64(nil), demand...), servers, rho)
}

// Dom builds the DOM heuristic: every server caches the ρ most demanded
// items, so the top ρ items have servers replicas each and everything
// else has none. Ties are broken toward the lower item index.
func Dom(demand []float64, servers, rho int) Counts {
	items := len(demand)
	c := make(Counts, items)
	idx := make([]int, items)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return demand[idx[a]] > demand[idx[b]] })
	for k := 0; k < rho && k < items; k++ {
		c[idx[k]] = servers
	}
	return c
}

// RoundCounts converts a real-valued allocation (e.g. the water-filled
// relaxed optimum) into a feasible integer allocation with the same
// budget, using largest-remainder rounding with the server cap.
func RoundCounts(x []float64, servers, rho int) Counts {
	return Weighted(append([]float64(nil), x...), servers, rho)
}

// ---------------------------------------------------------------------------
// Placement: assigning an integer allocation to concrete server caches.

// Placement records which servers hold which items: a bitmap plus
// per-server load. It is the x_{i,m} matrix of the paper.
type Placement struct {
	Items   int
	Servers int
	Rho     int
	has     []bool // [item*Servers + server]
	load    []int  // items cached per server
}

// NewPlacement creates an empty placement.
func NewPlacement(items, servers, rho int) *Placement {
	return &Placement{
		Items:   items,
		Servers: servers,
		Rho:     rho,
		has:     make([]bool, items*servers),
		load:    make([]int, servers),
	}
}

// Has reports whether server m caches item i.
func (p *Placement) Has(i, m int) bool { return p.has[i*p.Servers+m] }

// Load returns the number of items cached by server m.
func (p *Placement) Load(m int) int { return p.load[m] }

// Set places (or removes) item i on server m. Placing on a full server or
// double-placing is an error, keeping calling code honest.
func (p *Placement) Set(i, m int, present bool) error {
	idx := i*p.Servers + m
	if p.has[idx] == present {
		return fmt.Errorf("alloc: item %d on server %d already %v", i, m, present)
	}
	if present {
		if p.load[m] >= p.Rho {
			return fmt.Errorf("alloc: server %d full (ρ=%d)", m, p.Rho)
		}
		p.load[m]++
	} else {
		p.load[m]--
	}
	p.has[idx] = present
	return nil
}

// Counts returns the per-item replica counts of the placement.
func (p *Placement) Counts() Counts {
	c := make(Counts, p.Items)
	for i := 0; i < p.Items; i++ {
		row := p.has[i*p.Servers : (i+1)*p.Servers]
		for _, h := range row {
			if h {
				c[i]++
			}
		}
	}
	return c
}

// serverHeap orders servers by ascending load for balanced placement.
type serverHeap struct {
	ids  []int
	load []int
}

func (h serverHeap) Len() int { return len(h.ids) }
func (h serverHeap) Less(a, b int) bool {
	if h.load[h.ids[a]] != h.load[h.ids[b]] {
		return h.load[h.ids[a]] < h.load[h.ids[b]]
	}
	return h.ids[a] < h.ids[b]
}
func (h serverHeap) Swap(a, b int) { h.ids[a], h.ids[b] = h.ids[b], h.ids[a] }
func (h *serverHeap) Push(x any)   { h.ids = append(h.ids, x.(int)) }
func (h *serverHeap) Pop() any {
	old := h.ids
	n := len(old)
	v := old[n-1]
	h.ids = old[:n-1]
	return v
}

// Place distributes an integer allocation onto concrete caches: each
// item's x_i replicas go to the x_i least-loaded distinct servers. This
// always succeeds when the allocation is feasible (x_i ≤ servers and
// Σ x_i ≤ servers·ρ): processing items by decreasing count and spreading
// across least-loaded servers never strands capacity.
func Place(c Counts, servers, rho int) (*Placement, error) {
	if err := c.Validate(servers, rho); err != nil {
		return nil, err
	}
	p := NewPlacement(len(c), servers, rho)
	order := make([]int, len(c))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return c[order[a]] > c[order[b]] })
	for _, i := range order {
		need := c[i]
		if need == 0 {
			continue
		}
		h := &serverHeap{load: p.load}
		for m := 0; m < servers; m++ {
			if p.load[m] < rho {
				h.ids = append(h.ids, m)
			}
		}
		if len(h.ids) < need {
			return nil, fmt.Errorf("alloc: cannot place %d replicas of item %d (only %d servers with room)", need, i, len(h.ids))
		}
		heap.Init(h)
		for k := 0; k < need; k++ {
			m := heap.Pop(h).(int)
			if err := p.Set(i, m, true); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}
