package rates

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"impatience/internal/trace"
)

// contactDigest is an FNV-1a hash of a full contact sequence — the
// bit-exactness instrument of the sharding suite (times hashed at full
// float64 precision).
func contactDigest(src trace.Source) (uint64, int) {
	h := fnv.New64a()
	var buf [8]byte
	n := 0
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.T))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(c.A)<<32|uint64(c.B))
		h.Write(buf[:])
		n++
	}
	return h.Sum64(), n
}

// shardedModels returns one model per structured kind, sized so the
// digest runs stay fast.
func shardedModels(t *testing.T) map[string]*Model {
	t.Helper()
	community, err := NewCommunity(CommunityConfig{Nodes: 80, Communities: 5, In: 0.4, Out: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHubSpoke(HubSpokeConfig{Nodes: 80, Hubs: 8, HubHub: 0.3, HubSpoke: 0.1, SpokeSpoke: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := NewDistanceKernel(DistanceConfig{
		Nodes: 80, CellsX: 4, CellsY: 4, Width: 4000, Height: 4000, Mu0: 0.25, Lambda: 900, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Model{"community": community, "hubspoke": hub, "distance": dist}
}

// TestShardCountInvariance is the core determinism claim: the contact
// sequence of a ShardedSource is bit-identical whether drained serially
// or partitioned into any number of shards and re-merged by (T, A, B).
// Shard counts cover {1, 2, 4, NumCPU} plus a deliberately awkward 3.
func TestShardCountInvariance(t *testing.T) {
	for name, m := range shardedModels(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := NewSharded(m, 400, 97, 0)
			if err != nil {
				t.Fatal(err)
			}
			refDigest, refN := contactDigest(serial)
			if refN == 0 {
				t.Fatal("empty reference stream")
			}
			shardCounts := []int{1, 2, 3, 4, runtime.NumCPU()}
			for _, k := range shardCounts {
				src, err := NewSharded(m, 400, 97, 0)
				if err != nil {
					t.Fatal(err)
				}
				parts, ok := src.Partition(k)
				if !ok {
					t.Fatalf("shards=%d: Partition refused on a fresh source", k)
				}
				if len(parts) < 1 || len(parts) > k {
					t.Fatalf("shards=%d: got %d parts", k, len(parts))
				}
				// Each partition must itself be time-ordered; their merge
				// must reproduce the serial sequence exactly.
				d, n := contactDigest(newMerged(m.Nodes(), 400, parts))
				if n != refN || d != refDigest {
					t.Errorf("shards=%d: digest %016x (n=%d), serial %016x (n=%d)", k, d, n, refDigest, refN)
				}
				// The partitioned-away receiver is drained.
				if _, ok := src.Next(); ok {
					t.Errorf("shards=%d: receiver still streams after Partition", k)
				}
			}
		})
	}
}

// TestPartitionSemantics pins the Partitionable contract edges: a
// started source refuses to split, max below 1 refuses, Reopen restores
// partitionability, and partitions are individually ordered.
func TestPartitionSemantics(t *testing.T) {
	m, err := NewCommunity(CommunityConfig{Nodes: 30, Communities: 3, In: 0.5, Out: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSharded(m, 100, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Partition(0); ok {
		t.Error("Partition(0) accepted")
	}
	if _, err := src.Next(); err != true {
		t.Fatal("source unexpectedly empty")
	}
	if _, ok := src.Partition(2); ok {
		t.Error("Partition accepted on a started source")
	}
	re, err := src.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	parts, ok := re.(trace.Partitionable).Partition(4)
	if !ok {
		t.Fatal("reopened source refused to partition")
	}
	for i, p := range parts {
		prev := math.Inf(-1)
		for {
			c, ok := p.Next()
			if !ok {
				break
			}
			if c.T < prev {
				t.Fatalf("partition %d out of order: %g after %g", i, c.T, prev)
			}
			prev = c.T
		}
	}
	// A partition wider than the group count collapses to one source per
	// group.
	re2, _ := src.Reopen()
	parts2, ok := re2.(trace.Partitionable).Partition(10_000)
	if !ok {
		t.Fatal("wide partition refused")
	}
	if len(parts2) != re2.(*ShardedSource).Groups() {
		t.Fatalf("wide partition gave %d parts, want %d (one per group)", len(parts2), re2.(*ShardedSource).Groups())
	}
}

// TestShardedGoldenDigests pins the structured-rate contact streams
// bit-for-bit: any change to the samplers' RNG consumption, merge order,
// group assignment, or alias construction shows up here before it can
// silently invalidate cross-version comparisons. Regenerate by running
// with -run TestShardedGoldenDigests -v and copying the logged values —
// and bump the experiment-layer goldens alongside.
func TestShardedGoldenDigests(t *testing.T) {
	golden := map[string]struct {
		digest uint64
		n      int
	}{
		"community": {0xbca2e455c405797c, 79255},
		"hubspoke":  {0x923e32ae202bde6c, 18363},
		"distance":  {0xfc1bf7b566ad221e, 37320},
	}
	for name, m := range shardedModels(t) {
		src, err := NewSharded(m, 250, 1234, 0)
		if err != nil {
			t.Fatal(err)
		}
		d, n := contactDigest(src)
		t.Logf("%s: digest 0x%016x n %d", name, d, n)
		if g := golden[name]; g.digest != d || g.n != n {
			t.Errorf("%s: digest 0x%016x (n=%d), golden 0x%016x (n=%d)", name, d, n, g.digest, g.n)
		}
	}
}

// TestGroupCountChangesStream documents that the group count — unlike
// the shard count — is part of the stream's identity: different group
// counts give different (equally valid) sequences, which is why
// DefaultGroups must stay fixed across comparison runs.
func TestGroupCountChangesStream(t *testing.T) {
	m, err := NewCommunity(CommunityConfig{Nodes: 40, Communities: 4, In: 0.5, Out: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSharded(m, 200, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSharded(m, 200, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := contactDigest(a)
	db, _ := contactDigest(b)
	if da == db {
		t.Error("streams with different group counts collide — group count not feeding the sub-seeds?")
	}
}
