// Kiosks: the dedicated-node case (C ∩ S = ∅) of the paper — a small set
// of infrastructure caches (kiosks, throwboxes, buses) serves a larger
// population of requesters, as in KioskNet-style rural connectivity.
//
// Because requesters hold no cache, a request can never be fulfilled
// immediately, which admits the delay-utilities with unbounded reward at
// zero delay: here the negative-logarithm h(t) = −ln t (time-critical
// information). Its optimal allocation is exactly proportional to demand
// and its Property-2 reaction function is constant — the classical
// "one replica per fulfillment" passive replication becomes optimal.
//
// Run with: go run ./examples/kiosks
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"impatience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kiosks:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		kiosks   = 10 // cache-carrying nodes
		people   = 40 // client-only requesters
		items    = 15
		rho      = 3
		mu       = 0.04
		duration = 10000
	)
	nodes := kiosks + people
	u := impatience.NegLog{}
	pop := impatience.ParetoPopularity(items, 1, 2)

	// Theory: the dedicated-node optimum is proportional to demand.
	hom := impatience.Homogeneous{
		Utility: u, Pop: pop, Mu: mu, Servers: kiosks, Clients: people,
	}
	opt, err := hom.GreedyOptimal(rho)
	if err != nil {
		return err
	}
	relaxed, err := hom.RelaxedOptimal(rho)
	if err != nil {
		return err
	}
	fmt.Println("negative-log impatience: optimal kiosk allocation is proportional to demand")
	fmt.Printf("%-6s %10s %12s %14s\n", "item", "demand", "x* (relaxed)", "x* (integer)")
	for i := 0; i < 6; i++ {
		fmt.Printf("%-6d %10.4f %12.2f %14d\n", i, pop.Rates[i], relaxed[i], opt[i])
	}

	// Practice: QCR with the constant reaction ψ ≡ const reaches it.
	tr, err := impatience.GenerateHomogeneousTrace(nodes, mu, duration,
		rand.New(rand.NewPCG(3, 33)))
	if err != nil {
		return err
	}
	qcr := &impatience.QCR{
		Reaction:       impatience.TunedReaction(u, mu, kiosks, 0.2),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5,
		Seed:           4,
	}
	res, err := impatience.Simulate(impatience.SimConfig{
		Rho: rho, Utility: u, Pop: pop, Trace: tr, Policy: qcr,
		ServerCount: kiosks, Seed: 5,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nafter %d minutes of QCR (clients route mandates to kiosks):\n", duration)
	fmt.Printf("final kiosk allocation: %v\n", res.FinalCounts)
	fmt.Printf("target (integer optimum): %v\n", opt)
	fmt.Printf("realized utility: %.4f vs analytic optimum %.4f gain/min\n",
		res.AvgUtilityRate, hom.WelfareCounts(opt))
	return nil
}
