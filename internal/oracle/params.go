package oracle

import (
	"impatience/internal/experiment"
	"impatience/internal/parallel"
)

// params are the mode-dependent knobs of the suite. The ladder keeps the
// mean-field scaling µ_N = µ̄/N with aggregate demand proportional to N:
// per-item replica shares x_i/N converge, per-request delay distributions
// are N-invariant, and the statistical noise of the welfare estimate
// shrinks like 1/√N — which is exactly what the convergence gates assert.
type params struct {
	// Static welfare ladder (sim ↔ closed form).
	ladderN    []int
	trials     int
	items      int
	rho        int
	muBar      float64 // µ̄ = µ·N, constant along the ladder
	reqPerNode float64 // aggregate demand rate = reqPerNode·N
	duration   float64
	warmup     float64
	tau        float64 // step deadline of the ladder utility

	// Per-item and KS gates (top rung of the ladder).
	topItems int // items gated by the per-item welfare check
	minKSn   int // minimum delay samples for a KS-tested item

	// QCR replica-balance ladder (sim ↔ mean field).
	qcrN        []int
	qcrItems    int
	qcrTrials   int
	qcrDuration float64

	// Analytic differentials.
	anaNodes int // population for the meanfield/sandwich systems
	anaItems int
}

// quickParams is the CI suite: a 4×-spaced N ladder small enough to
// finish in ~1-2 minutes on one core while keeping every gate
// statistically powered (the negative control must fail).
func quickParams() params {
	return params{
		ladderN:     []int{40, 160, 640},
		trials:      10,
		items:       32,
		rho:         4,
		muBar:       2.5,
		reqPerNode:  0.05,
		duration:    400,
		warmup:      0.3,
		tau:         2,
		topItems:    8,
		minKSn:      200,
		qcrN:        []int{32, 64, 128},
		qcrItems:    24,
		qcrTrials:   6,
		qcrDuration: 2000,
		anaNodes:    50,
		anaItems:    40,
	}
}

// fullParams is the nightly suite: the paper-scale ladder up to N=1000
// with more trials per rung.
func fullParams() params {
	p := quickParams()
	p.ladderN = []int{50, 200, 1000}
	p.trials = 15
	p.qcrN = []int{48, 144, 432}
	p.qcrTrials = 8
	p.qcrDuration = 4000
	return p
}

// scenario builds the experiment.Scenario for one ladder rung: the
// mean-field scaling applied to n nodes.
func (p params) scenario(n int, cfg Config) experiment.Scenario {
	sc := experiment.Default()
	sc.Nodes = n
	sc.Items = p.items
	sc.Rho = p.rho
	sc.Mu = p.muBar / float64(n)
	sc.Omega = 1
	sc.DemandRate = p.reqPerNode * float64(n)
	sc.Duration = p.duration
	sc.Trials = p.trials
	sc.Seed = rungSeed(cfg.Seed, n)
	sc.Workers = cfg.Workers
	sc.WarmupFrac = p.warmup
	return sc
}

// qcrScenario is scenario with the QCR rung's catalog and horizon (QCR
// needs a longer run to mix through its replication dynamics).
func (p params) qcrScenario(n int, cfg Config) experiment.Scenario {
	sc := p.scenario(n, cfg)
	sc.Items = p.qcrItems
	sc.Trials = p.qcrTrials
	sc.Duration = p.qcrDuration
	sc.Seed = rungSeed(cfg.Seed^0x9c9, n)
	return sc
}

// rungSeed derives a well-separated base seed for one ladder rung.
func rungSeed(base uint64, n int) uint64 {
	return parallel.SplitMix64(base ^ (uint64(n) << 20))
}
