// Package plot renders experiment data as CSV files (for external
// plotting) and quick ASCII line charts (for terminal inspection of the
// regenerated paper figures).
package plot

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Table is columnar data with a header, one column per named series.
type Table struct {
	Title   string
	XLabel  string
	X       []float64
	Columns []Column
}

// Column is one named data series.
type Column struct {
	Name string
	Y    []float64
}

// AddColumn appends a series; the length must match X.
func (t *Table) AddColumn(name string, y []float64) error {
	if len(y) != len(t.X) {
		return fmt.Errorf("plot: column %q has %d points, x has %d", name, len(y), len(t.X))
	}
	t.Columns = append(t.Columns, Column{Name: name, Y: append([]float64(nil), y...)})
	return nil
}

// WriteCSV emits the table as CSV with the x column first.
func (t *Table) WriteCSV(w io.Writer) error {
	head := make([]string, 0, len(t.Columns)+1)
	head = append(head, csvEscape(t.XLabel))
	for _, c := range t.Columns {
		head = append(head, csvEscape(c.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, ",")); err != nil {
		return err
	}
	for i := range t.X {
		row := make([]string, 0, len(t.Columns)+1)
		row = append(row, formatFloat(t.X[i]))
		for _, c := range t.Columns {
			row = append(row, formatFloat(c.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SaveCSV writes the table to a file, creating parent directories.
func (t *Table) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%g", v)
}

// markers used to distinguish series in ASCII charts.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// ASCII renders the table as a simple scatter/line chart of the given
// terminal size. NaN points are skipped. Intended for eyeballing shapes,
// not precision.
func (t *Table) ASCII(width, height int) string {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	var xmin, xmax = math.Inf(1), math.Inf(-1)
	var ymin, ymax = math.Inf(1), math.Inf(-1)
	for i, x := range t.X {
		for _, c := range t.Columns {
			if math.IsNaN(c.Y[i]) || math.IsInf(c.Y[i], 0) {
				continue
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if c.Y[i] < ymin {
				ymin = c.Y[i]
			}
			if c.Y[i] > ymax {
				ymax = c.Y[i]
			}
		}
	}
	if math.IsInf(xmin, 1) {
		return t.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range t.Columns {
		mark := markers[ci%len(markers)]
		for i, x := range t.X {
			y := c.Y[i]
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = mark
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	fmt.Fprintf(&sb, "%10.3g ┤\n", ymax)
	for _, row := range grid {
		fmt.Fprintf(&sb, "%10s │%s\n", "", row)
	}
	fmt.Fprintf(&sb, "%10.3g ┤%s\n", ymin, strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%10s  %-12.4g%*s%12.4g\n", t.XLabel, xmin, width-24, "", xmax)
	var legend []string
	for ci, c := range t.Columns {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[ci%len(markers)], c.Name))
	}
	fmt.Fprintf(&sb, "  legend: %s\n", strings.Join(legend, "  "))
	return sb.String()
}
