package contact

import (
	"math"
	"sort"
	"testing"

	"impatience/internal/trace"
)

// heteroRates builds a deterministic heterogeneous matrix with zero rates
// mixed in, shared by the equivalence tests.
func heteroRates(nodes int) *trace.RateMatrix {
	rm := trace.NewRateMatrix(nodes)
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			switch (a + b) % 3 {
			case 0:
				rm.Set(a, b, 0) // every third pair never meets
			case 1:
				rm.Set(a, b, 0.02*float64(a+1))
			default:
				rm.Set(a, b, 0.005*float64(b))
			}
		}
	}
	return rm
}

// TestStreamMatchesGenerateFrequencies is the statistical-equivalence
// certificate for the alias sampler: the legacy searchCDF path and the
// streaming alias path draw pair assignments from the same distribution.
// A two-sample chi-square over per-pair contact counts checks this
// directly; the threshold is the 99.9% critical value for the cell count
// so the fixed-seed test sits far from its rejection boundary.
func TestStreamMatchesGenerateFrequencies(t *testing.T) {
	const nodes, duration = 10, 10000.0
	rm := heteroRates(nodes)

	legacy, err := Generate(rm, duration, newRNG(21))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	src, err := NewStream(rm, duration, newRNG(22))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	streamed, err := trace.Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}

	pairs := trace.NumPairs(nodes)
	x := make([]float64, pairs) // legacy counts
	y := make([]float64, pairs) // alias counts
	for _, c := range legacy.Contacts {
		x[trace.PairIndex(nodes, c.A, c.B)]++
	}
	for _, c := range streamed.Contacts {
		y[trace.PairIndex(nodes, c.A, c.B)]++
	}
	var sumX, sumY float64
	for i := range x {
		sumX += x[i]
		sumY += y[i]
	}
	if sumX < 10000 || sumY < 10000 {
		t.Fatalf("too few contacts for the test: %g legacy, %g streamed", sumX, sumY)
	}
	k1, k2 := math.Sqrt(sumY/sumX), math.Sqrt(sumX/sumY)
	var chi2 float64
	cells := 0
	for i := range x {
		if rm.Rates()[i] == 0 {
			if x[i] != 0 || y[i] != 0 {
				t.Fatalf("zero-rate pair %d met (%g legacy, %g streamed)", i, x[i], y[i])
			}
			continue
		}
		if x[i]+y[i] == 0 {
			continue
		}
		d := k1*x[i] - k2*y[i]
		chi2 += d * d / (x[i] + y[i])
		cells++
	}
	// 99.9% chi-square critical value for df = cells-1 (≤ 29 here) is
	// 58.3; use a round bound above it.
	if chi2 > 60 {
		t.Errorf("two-sample chi-square %.2f over %d cells: alias and searchCDF pair frequencies differ", chi2, cells)
	}
}

// ksExponential returns the Kolmogorov-Smirnov statistic of gaps against
// the Exp(mu) distribution, scaled by sqrt(n).
func ksExponential(gaps []float64, mu float64) float64 {
	sorted := append([]float64(nil), gaps...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, g := range sorted {
		f := 1 - math.Exp(-mu*g)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d * math.Sqrt(n)
}

// TestStreamInterContactExponential checks the other half of equivalence:
// inter-contact gaps on both paths are Exp(µ) per the KS test at the
// 99.9% level (critical value 1.95).
func TestStreamInterContactExponential(t *testing.T) {
	const mu, duration = 0.1, 100000.0
	rm := trace.NewRateMatrix(2)
	rm.Set(0, 1, mu)

	legacy, err := Generate(rm, duration, newRNG(23))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	src, err := NewStream(rm, duration, newRNG(24))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	streamed, err := trace.Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{{"searchCDF", legacy}, {"alias", streamed}} {
		gaps := trace.InterContactTimes(tc.tr)
		if len(gaps) < 5000 {
			t.Fatalf("%s: only %d gaps", tc.name, len(gaps))
		}
		if ks := ksExponential(gaps, mu); ks > 1.95 {
			t.Errorf("%s: KS statistic %.3f exceeds 99.9%% critical value 1.95", tc.name, ks)
		}
	}
}

// TestStreamEmpiricalRates pins per-pair rate recovery on the streaming
// path, including exact zeros for zero-rate pairs.
func TestStreamEmpiricalRates(t *testing.T) {
	rm := trace.NewRateMatrix(4)
	rm.Set(0, 1, 0.2)
	rm.Set(2, 3, 0.05)
	src, err := NewStream(rm, 5000, newRNG(25))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	tr, err := trace.Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	emp := trace.EmpiricalRates(tr)
	if got := emp.At(0, 1); math.Abs(got-0.2) > 0.02 {
		t.Errorf("µ(0,1)=%g, want 0.2", got)
	}
	if got := emp.At(2, 3); math.Abs(got-0.05) > 0.01 {
		t.Errorf("µ(2,3)=%g, want 0.05", got)
	}
	if got := emp.At(0, 2); got != 0 {
		t.Errorf("µ(0,2)=%g, want exactly 0", got)
	}
}

// TestStreamDeterministicWithSeed: a stream is a pure function of
// (matrix, duration, seed).
func TestStreamDeterministicWithSeed(t *testing.T) {
	build := func() *trace.Trace {
		src, err := NewHomogeneousStream(8, 0.05, 800, newRNG(42))
		if err != nil {
			t.Fatalf("NewHomogeneousStream: %v", err)
		}
		tr, err := trace.Collect(src)
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		return tr
	}
	a, b := build(), build()
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}

// TestDiscreteStreamBitIdentical: the discrete stream consumes randomness
// in GenerateDiscrete's exact order, so same seed → same contacts.
func TestDiscreteStreamBitIdentical(t *testing.T) {
	rm := heteroRates(6)
	want, err := GenerateDiscrete(rm, 500, 0.5, newRNG(31))
	if err != nil {
		t.Fatalf("GenerateDiscrete: %v", err)
	}
	src, err := NewDiscreteStream(rm, 500, 0.5, newRNG(31))
	if err != nil {
		t.Fatalf("NewDiscreteStream: %v", err)
	}
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got.Contacts) != len(want.Contacts) {
		t.Fatalf("stream %d contacts, materialized %d", len(got.Contacts), len(want.Contacts))
	}
	for i := range want.Contacts {
		if got.Contacts[i] != want.Contacts[i] {
			t.Fatalf("contact %d: stream %+v != materialized %+v", i, got.Contacts[i], want.Contacts[i])
		}
	}
}

// TestStreamZeroRate: the empty process, streamed.
func TestStreamZeroRate(t *testing.T) {
	src, err := NewStream(trace.NewRateMatrix(5), 100, newRNG(33))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	if _, ok := src.Next(); ok {
		t.Error("zero-rate stream produced a contact")
	}
	dsrc, err := NewDiscreteStream(trace.NewRateMatrix(5), 100, 1, newRNG(33))
	if err != nil {
		t.Fatalf("NewDiscreteStream: %v", err)
	}
	if _, ok := dsrc.Next(); ok {
		t.Error("zero-rate discrete stream produced a contact")
	}
}

// BenchmarkSearchCDFSample / BenchmarkStreamNext compare the two pair
// samplers at N=1000 (≈ 500k pairs): binary search over the CDF vs one
// alias draw. cmd/agebench measures the same end to end and records it
// in BENCH_contacts.json.
func BenchmarkSearchCDFSample(b *testing.B) {
	const nodes = 1000
	rm := trace.UniformRates(nodes, 0.05)
	rates := rm.Rates()
	cum := make([]float64, len(rates))
	run, total := 0.0, rm.TotalRate()
	for i, r := range rates {
		run += r
		cum[i] = run / total
	}
	cum[len(cum)-1] = 1
	rng := newRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += searchCDF(cum, rng.Float64())
	}
	_ = sink
}

func BenchmarkStreamNext(b *testing.B) {
	const nodes = 1000
	// Duration far beyond what b.N can drain, so Next never exhausts.
	src, err := NewHomogeneousStream(nodes, 0.05, 1e18, newRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}
