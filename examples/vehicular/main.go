// Vehicular: time-critical information dissemination among taxis on a
// synthetic Cabspotting-like trace (random-waypoint cabs in a 10 km grid,
// contacts within 200 m — see internal/mobility).
//
// Cabs share road-condition reports whose value decays exponentially;
// the experiment sweeps the decay rate ν from patient (ν → 0) to
// hyper-impatient (ν large) and shows how the best allocation shifts
// from spread-out toward popularity-dominated — the Figure 6c effect.
//
// Run with: go run ./examples/vehicular
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"impatience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vehicular:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		items = 30
		rho   = 4
	)
	cfg := impatience.DefaultVehicular()
	cfg.DurationMin = 720 // half a day keeps the example fast
	tr, err := impatience.VehicularTrace(cfg, rand.New(rand.NewPCG(5, 55)))
	if err != nil {
		return err
	}
	rates := impatience.EmpiricalRates(tr)
	fmt.Printf("vehicular trace: %d cabs, %.0f h, %d encounters, mean pair rate %.5f/min\n\n",
		tr.Nodes, tr.Duration/60, len(tr.Contacts), rates.Mean())

	pop := impatience.ParetoPopularity(items, 1, 2)
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "ν (1/min)", "QCR", "UNI", "PROP", "DOM")
	for _, nu := range []float64{0.001, 0.01, 0.1, 1} {
		u := impatience.Exponential{Nu: nu}
		row := []float64{}
		for _, scheme := range []string{"qcr", "uni", "prop", "dom"} {
			var policy impatience.ReplicationPolicy
			var initial impatience.AllocationCounts
			switch scheme {
			case "qcr":
				policy = &impatience.QCR{
					Reaction:       impatience.TunedReaction(u, rates.Mean(), tr.Nodes, 0.1),
					MandateRouting: true,
					StrictSource:   true,
					MaxMandates:    5, Seed: 21,
				}
			case "uni":
				policy, initial = impatience.StaticPolicy{Label: scheme}, impatience.UniformAllocation(items, tr.Nodes, rho)
			case "prop":
				policy, initial = impatience.StaticPolicy{Label: scheme}, impatience.PropAllocation(pop.Rates, tr.Nodes, rho)
			case "dom":
				policy, initial = impatience.StaticPolicy{Label: scheme}, impatience.DomAllocation(pop.Rates, tr.Nodes, rho)
			}
			sc := impatience.SimConfig{
				Rho: rho, Utility: u, Pop: pop, Trace: tr, Policy: policy, Seed: 31,
			}
			if initial != nil {
				sc.Initial = initial
				sc.NoSticky = true
			}
			res, err := impatience.Simulate(sc)
			if err != nil {
				return err
			}
			row = append(row, res.AvgUtilityRate)
		}
		fmt.Printf("%-10g %12.4f %12.4f %12.4f %12.4f\n", nu, row[0], row[1], row[2], row[3])
	}
	fmt.Println("\nAs ν grows (users more impatient) the popularity-dominated cache gains ground,")
	fmt.Println("while QCR re-tunes itself automatically — no control channel needed.")
	return nil
}
