package experiment

import (
	"math/rand/v2"

	"impatience/internal/contact"
	"impatience/internal/trace"
)

// contactGen is a seam for the homogeneous trace generator (kept separate
// so tests can exercise Scenario wiring without pulling in the full
// contact package surface).
func contactGen(nodes int, mu, duration float64, rng *rand.Rand) (*trace.Trace, error) {
	return contact.GenerateHomogeneous(nodes, mu, duration, rng)
}

// contactSource is the streaming counterpart of contactGen: contacts are
// drawn lazily (O(N²) rate state, no contact list) for fusion with the
// simulator.
func contactSource(nodes int, mu, duration float64, rng *rand.Rand) (trace.Source, error) {
	return contact.NewHomogeneousStream(nodes, mu, duration, rng)
}

// contactReplay is the replayable streaming twin of contactGen: same
// RNG draws as the materialized generator, so the contact sequence is
// bit-identical to contactGen with rand.NewPCG(seed1, seed2), and the
// source reopens for multi-pass trials (rates, then the batch sim).
func contactReplay(nodes int, mu, duration float64, seed1, seed2 uint64) (trace.Source, error) {
	return contact.NewHomogeneousReplayStream(nodes, mu, duration, seed1, seed2)
}
