package serve

import (
	"math"
	"testing"

	"impatience/internal/demand"
	"impatience/internal/numeric"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// TestSolverMatchesRelaxedOptimal pins the solver wrapper to the same
// answer as the offline welfare.RelaxedOptimal path for the paper's
// default scenario.
func TestSolverMatchesRelaxedOptimal(t *testing.T) {
	f := utility.Step{Tau: 10}
	pop := demand.Pareto(100, 1, 60)
	const servers, rho, mu = 40, 10, 0.01

	s, err := NewSolver(f, mu, servers, rho)
	if err != nil {
		t.Fatal(err)
	}
	x, lambda, warm, err := s.Solve(pop)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Error("first solve reported warm")
	}
	if !(lambda > 0) {
		t.Errorf("λ=%g, want > 0", lambda)
	}
	h := welfare.Homogeneous{Utility: f, Pop: pop, Mu: mu, Servers: servers, Clients: 1000}
	want, err := h.RelaxedOptimal(rho)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("coordinate %d: solver %g vs welfare.RelaxedOptimal %g", i, x[i], want[i])
		}
	}
}

// TestSolverWarmPathEngagesAndAgrees drifts demand across several solves:
// after the cold seed every solve should take the warm path, and each must
// agree with an independent cold solve to the property-test tolerance.
func TestSolverWarmPathEngagesAndAgrees(t *testing.T) {
	f := utility.Exponential{Nu: 0.5}
	const servers, rho, mu = 30, 8, 0.02
	s, err := NewSolver(f, mu, servers, rho)
	if err != nil {
		t.Fatal(err)
	}
	pop := demand.Pareto(200, 1, 100)
	if _, _, _, err := s.Solve(pop); err != nil {
		t.Fatal(err)
	}
	for hop := 1; hop <= 5; hop++ {
		for i := range pop.Rates {
			pop.Rates[i] *= 1 + 0.05*math.Sin(float64(i*hop))
		}
		x, _, warm, err := s.Solve(pop)
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if !warm {
			t.Errorf("hop %d took the cold path", hop)
		}
		cold, _, _, err := mustCold(f, mu, servers, rho, pop)
		if err != nil {
			t.Fatalf("hop %d cold reference: %v", hop, err)
		}
		for i := range x {
			if d := math.Abs(x[i] - cold[i]); d > 1e-9 {
				t.Fatalf("hop %d coordinate %d: warm %g vs cold %g (Δ=%g)", hop, i, x[i], cold[i], d)
			}
		}
	}
	st := s.Stats()
	if st.Cold != 1 || st.Warm != 5 || st.Fallback != 0 {
		t.Errorf("stats %+v, want cold=1 warm=5 fallback=0", st)
	}
}

// mustCold solves from scratch through a fresh Solver (no warm state).
func mustCold(f utility.Function, mu float64, servers, rho int, pop demand.Popularity) ([]float64, float64, bool, error) {
	s, err := NewSolver(f, mu, servers, rho)
	if err != nil {
		return nil, 0, false, err
	}
	return s.Solve(pop)
}

// TestSolverFallbackOnPoisonedWarmState seeds the solver with a warm
// state that cannot bracket the new dual level and checks it falls back
// to the cold path instead of failing or returning garbage.
func TestSolverFallbackOnPoisonedWarmState(t *testing.T) {
	f := utility.Step{Tau: 10}
	const servers, rho, mu = 20, 5, 0.01
	s, err := NewSolver(f, mu, servers, rho)
	if err != nil {
		t.Fatal(err)
	}
	pop := demand.Pareto(50, 1, 60)
	// A dual level absurdly far from any bracket the expansion reaches.
	s.SetWarmState(&numeric.WarmState{Lambda: 1e290, X: make([]float64, 50)})
	x, lambda, warm, err := s.Solve(pop)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Error("poisoned warm state reported a warm solve")
	}
	if s.Stats().Fallback != 1 || s.Stats().Cold != 1 {
		t.Errorf("stats %+v, want fallback=1 cold=1", s.Stats())
	}
	cold, _, _, err := mustCold(f, mu, servers, rho, pop)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != cold[i] {
			t.Fatalf("coordinate %d: fallback %g vs cold %g", i, x[i], cold[i])
		}
	}
	if !(lambda > 0) {
		t.Errorf("λ=%g after fallback, want > 0", lambda)
	}
}

// TestSolverAllDemandSaturated pins the λ=0 regime: a budget large enough
// to cap every demanded item leaves no interior coordinate, so there is
// no dual level to warm-start from and the next solve is cold again.
func TestSolverAllDemandSaturated(t *testing.T) {
	f := utility.Step{Tau: 10}
	s, err := NewSolver(f, 0.01, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	// 10 items, caps 10 each, budget 90: with only 2 demanded items the
	// effective capacity (20) is below the budget... that would be
	// infeasible, so demand 9 items of 10 → effCap 90 = budget.
	pop := demand.Popularity{Rates: make([]float64, 10)}
	for i := 0; i < 9; i++ {
		pop.Rates[i] = float64(i + 1)
	}
	x, lambda, warm, err := s.Solve(pop)
	if err != nil {
		t.Fatal(err)
	}
	if warm || lambda != 0 {
		t.Errorf("saturated solve: warm=%v λ=%g, want cold λ=0", warm, lambda)
	}
	for i := 0; i < 9; i++ {
		if x[i] != 10 {
			t.Errorf("demanded item %d got %g, want cap 10", i, x[i])
		}
	}
	if x[9] != 0 {
		t.Errorf("undemanded item got %g, want 0", x[9])
	}
	if _, _, warm, err = s.Solve(pop); err != nil || warm {
		t.Errorf("second saturated solve: warm=%v err=%v, want cold nil", warm, err)
	}
}
