package experiment

import (
	"testing"

	"impatience/internal/alloc"
	"impatience/internal/parallel"
	"impatience/internal/utility"
)

// TestRunStaticStream exercises the oracle's simulation hook directly:
// deterministic in (trial, seed), observer-only instrumentation, and the
// scenario's closed-form system agreeing with the config it simulates.
func TestRunStaticStream(t *testing.T) {
	sc := Default()
	sc.Nodes = 16
	sc.Items = 8
	sc.Rho = 2
	sc.Duration = 300
	u := utility.Step{Tau: 5}
	initial := alloc.Uniform(sc.Items, sc.Nodes, sc.Rho)
	seed := parallel.TrialSeed(sc.Seed, 0)

	plain, err := sc.RunStaticStream(u, initial, 0, seed, false)
	if err != nil {
		t.Fatalf("RunStaticStream: %v", err)
	}
	if plain.ItemDelays != nil {
		t.Error("instrumentation populated without recordDelays")
	}
	rec, err := sc.RunStaticStream(u, initial, 0, seed, true)
	if err != nil {
		t.Fatalf("RunStaticStream (recording): %v", err)
	}
	if rec.Digest() != plain.Digest() {
		t.Errorf("recordDelays changed the digest: %#x != %#x", rec.Digest(), plain.Digest())
	}
	if len(rec.ItemDelays) != sc.Items || len(rec.ItemGains) != sc.Items {
		t.Fatalf("instrumentation sized %d/%d, want %d", len(rec.ItemDelays), len(rec.ItemGains), sc.Items)
	}
	total := 0
	for _, f := range rec.ItemFulfillments {
		total += f
	}
	if total != rec.Fulfillments {
		t.Errorf("Σ ItemFulfillments = %d, Fulfillments = %d", total, rec.Fulfillments)
	}

	// Different trial index → different simulator streams, same contacts.
	other, err := sc.RunStaticStream(u, initial, 1, seed, false)
	if err != nil {
		t.Fatalf("RunStaticStream (trial 1): %v", err)
	}
	if other.Digest() == plain.Digest() {
		t.Error("distinct trials produced identical digests")
	}
}

// TestScenarioHomogeneous pins the analytic hook: the closed-form system
// must mirror the scenario exactly (pure P2P, same µ, |S| = |C| = nodes,
// scenario popularity), so oracle and simulator can never drift apart.
func TestScenarioHomogeneous(t *testing.T) {
	sc := Default()
	u := utility.Step{Tau: 5}
	h := sc.Homogeneous(u)
	if !h.PureP2P {
		t.Error("scenario system is not pure P2P")
	}
	if h.Servers != sc.Nodes || h.Clients != sc.Nodes {
		t.Errorf("servers/clients = %d/%d, want %d", h.Servers, h.Clients, sc.Nodes)
	}
	if h.Mu != sc.Mu {
		t.Errorf("µ = %g, want %g", h.Mu, sc.Mu)
	}
	want := sc.Pop()
	if len(h.Pop.Rates) != len(want.Rates) {
		t.Fatalf("popularity has %d items, want %d", len(h.Pop.Rates), len(want.Rates))
	}
	for i := range want.Rates {
		if h.Pop.Rates[i] != want.Rates[i] {
			t.Fatalf("popularity rate %d = %g, want %g", i, h.Pop.Rates[i], want.Rates[i])
		}
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
