package demand

import (
	"strings"
	"testing"
)

// FuzzParseSchedule holds the churn-schedule parser to the same contract
// as faults.ParseTimeline: arbitrary input yields a valid schedule or an
// error — no panics, no partial results — and every accepted schedule
// passes Validate against the base catalog.
func FuzzParseSchedule(f *testing.F) {
	f.Add("# flash crowd\n10 rotate 1\n20 rotate 1\n")
	f.Add("")
	f.Add("5 swap 0 3\n10 zipf 0.5\n15 uniform\n")
	f.Add("1e9 rotate -7\n")
	f.Add("nan rotate 1\n")
	f.Add("10 rotate\n")
	f.Add("10 swap 0 99\n")
	f.Add("-5 uniform\n")
	f.Add("10 zipf inf\n")
	f.Add("3 rotate 1\n2 rotate 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		base := Pareto(4, 1, 2)
		s, err := ParseSchedule(strings.NewReader(input), base)
		if err != nil {
			return
		}
		if err := s.Validate(base.Items()); err != nil {
			t.Fatalf("accepted schedule fails Validate: %v\ninput: %q", err, input)
		}
	})
}
