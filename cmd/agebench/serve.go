package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"time"

	"impatience/internal/demand"
	"impatience/internal/numeric"
	"impatience/internal/serve"
	"impatience/internal/stats"
	"impatience/internal/utility"
)

// The serve benchmark measures the aged serving stack twice over:
//
//   - the solver ladder times a cold numeric.WaterFill against the
//     warm-started numeric.WaterFillWarm re-solve after an EWMA-scale
//     demand drift, at catalog sizes up to 3000, hard-checking that warm
//     and cold agree within serveEqualTol on every coordinate; and
//   - the serving section boots the full serve.Server behind a real
//     loopback HTTP listener, replays a flash-crowd firehose as batched
//     observation windows, and records the sustained synthetic request
//     rate, solve counters, and allocation-query p50/p99 latency.
//
// Gates (hard errors, so CI fails loudly rather than uploading a bad
// artifact): warm speedup ≥ serveMinSpeedup at every catalog ≥ 1000,
// allocation equality within serveEqualTol everywhere, and sustained
// synthetic load ≥ serveMinReqPerSec.
const (
	serveEqualTol     = 1e-9
	serveMinSpeedup   = 5.0
	serveMinReqPerSec = 100_000.0
)

type serveSolverRung struct {
	Items       int     `json:"items"`
	Resolves    int     `json:"resolves"`
	ColdNsPerOp int64   `json:"cold_ns_per_solve"`
	WarmNsPerOp int64   `json:"warm_ns_per_solve"`
	Speedup     float64 `json:"warm_speedup"`
	MaxAbsDelta float64 `json:"max_abs_delta_vs_cold"`
}

type serveServingSection struct {
	Items              int     `json:"items"`
	Servers            int     `json:"servers"`
	Rho                int     `json:"rho"`
	Windows            int     `json:"windows"`
	SyntheticDuration  float64 `json:"synthetic_duration_sec"`
	OfferedReqPerSec   float64 `json:"offered_req_per_sec"`
	SustainedReqPerSec float64 `json:"sustained_req_per_sec"`
	Resolves           uint64  `json:"resolves"`
	WarmSolves         uint64  `json:"warm_solves"`
	ColdSolves         uint64  `json:"cold_solves"`
	Fallbacks          uint64  `json:"fallbacks"`
	Queries            int     `json:"queries"`
	QueryP50Ms         float64 `json:"query_p50_ms"`
	QueryP99Ms         float64 `json:"query_p99_ms"`
	AllocationsPerSec  float64 `json:"allocations_per_sec"`
	WallSec            float64 `json:"wall_sec"`
}

type serveReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	scenarioParams
	SingleCore  bool                `json:"single_core"`
	EqualTol    float64             `json:"equal_tol"`
	MinSpeedup  float64             `json:"min_speedup_gate"`
	MinReqRate  float64             `json:"min_req_per_sec_gate"`
	SolverRungs []serveSolverRung   `json:"solver_rungs"`
	Serving     serveServingSection `json:"serving"`
}

// serveSolverLadder times cold vs warm re-solves at one catalog size. The
// drift between re-solves is the gentle multiplicative kind the EWMA
// estimator produces between windows — the regime the warm path serves.
func serveSolverLadder(items, resolves int) (serveSolverRung, error) {
	rung := serveSolverRung{Items: items, Resolves: resolves}
	const servers, rho, mu = 100, 10, 0.05
	f := utility.Step{Tau: 10}
	pop := demand.Pareto(items, 1, 1000)
	caps := make([]float64, items)
	for i := range caps {
		caps[i] = servers
	}
	p := numeric.WaterFillProblem{
		Weights: append([]float64(nil), pop.Rates...),
		Caps:    caps,
		Budget:  float64(servers * rho),
		Deriv:   func(x float64) float64 { return f.Phi(mu, x) },
	}

	x, err := numeric.WaterFill(p)
	if err != nil {
		return rung, err
	}
	lambda, err := numeric.RecoverLambda(p, x)
	if err != nil {
		return rung, err
	}
	warm := &numeric.WarmState{Lambda: lambda, X: x}

	var coldTotal, warmTotal time.Duration
	for k := 1; k <= resolves; k++ {
		for i := range p.Weights {
			p.Weights[i] *= 1 + 0.02*math.Sin(float64((i+1)*k))
		}
		t0 := time.Now()
		xw, lw, err := numeric.WaterFillWarm(p, warm)
		warmTotal += time.Since(t0)
		if err != nil {
			return rung, fmt.Errorf("warm re-solve %d at %d items: %w", k, items, err)
		}
		t1 := time.Now()
		xc, err := numeric.WaterFill(p)
		coldTotal += time.Since(t1)
		if err != nil {
			return rung, fmt.Errorf("cold re-solve %d at %d items: %w", k, items, err)
		}
		for i := range xw {
			if d := math.Abs(xw[i] - xc[i]); d > rung.MaxAbsDelta {
				rung.MaxAbsDelta = d
			}
		}
		warm = &numeric.WarmState{Lambda: lw, X: xw}
	}
	rung.ColdNsPerOp = coldTotal.Nanoseconds() / int64(resolves)
	rung.WarmNsPerOp = warmTotal.Nanoseconds() / int64(resolves)
	if rung.WarmNsPerOp > 0 {
		rung.Speedup = float64(rung.ColdNsPerOp) / float64(rung.WarmNsPerOp)
	}
	return rung, nil
}

// serveObserveBody renders an observation window as the sparse JSON map
// /v1/observe takes (counts = rate·window).
func serveObserveBody(pop demand.Popularity, window float64) ([]byte, float64) {
	var buf bytes.Buffer
	buf.WriteString(`{"window_sec":`)
	buf.WriteString(strconv.FormatFloat(window, 'g', -1, 64))
	buf.WriteString(`,"counts":{`)
	var total float64
	first := true
	for i, r := range pop.Rates {
		if r <= 0 {
			continue
		}
		c := r * window
		total += c
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteByte('"')
		buf.WriteString(strconv.Itoa(i))
		buf.WriteString(`":`)
		buf.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	buf.WriteString("}}")
	return buf.Bytes(), total
}

// runServeServing boots the full server on a loopback listener and
// replays a flash-crowd firehose against it.
func runServeServing(short bool) (serveServingSection, error) {
	sec := serveServingSection{Items: 1000, Servers: 100, Rho: 10}
	synthDuration, window := 20.0, 0.5
	if short {
		synthDuration = 8.0
	}
	rate := 150_000.0 // offered synthetic req/s, above the 100k gate

	srv, err := serve.New(serve.Config{
		Items:    sec.Items,
		Servers:  sec.Servers,
		Rho:      sec.Rho,
		Mu:       0.05,
		Utility:  "step:10",
		HalfLife: 10,
		Drift:    0.01,
	})
	if err != nil {
		return sec, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	base := demand.Pareto(sec.Items, 1, rate)
	windows := int(synthDuration / window)
	var folded float64
	var latencies []float64
	start := time.Now()
	for k := 0; k < windows; k++ {
		// Flash-crowd churn: rotate the rank order every 4 windows so the
		// drift trigger and the warm path both do real work.
		pop := base
		if shift := (k / 4) * 37; shift > 0 {
			pop = demand.Popularity{Rates: make([]float64, sec.Items)}
			for i, r := range base.Rates {
				pop.Rates[(i+shift)%sec.Items] = r
			}
		}
		body, c := serveObserveBody(pop, window)
		resp, err := client.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			return sec, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return sec, fmt.Errorf("observe window %d: HTTP %d", k, resp.StatusCode)
		}
		folded += c
		for q := 0; q < 4; q++ {
			t0 := time.Now()
			qr, err := client.Get(ts.URL + "/v1/allocation")
			if err != nil {
				return sec, err
			}
			qr.Body.Close()
			if qr.StatusCode != http.StatusOK {
				return sec, fmt.Errorf("allocation query: HTTP %d", qr.StatusCode)
			}
			latencies = append(latencies, float64(time.Since(t0).Microseconds())/1000)
		}
	}
	sec.WallSec = time.Since(start).Seconds()
	sec.Windows = windows
	sec.SyntheticDuration = synthDuration
	sec.OfferedReqPerSec = folded / synthDuration
	// Sustained = synthetic requests actually folded per wall-clock second:
	// the honest measure of how fast the daemon drains the firehose.
	sec.SustainedReqPerSec = folded / sec.WallSec
	sec.Queries = len(latencies)
	p := stats.Percentiles(latencies, 0.50, 0.99)
	sec.QueryP50Ms, sec.QueryP99Ms = p[0], p[1]
	sec.AllocationsPerSec = float64(len(latencies)) / sec.WallSec

	st, err := srvStats(srv)
	if err != nil {
		return sec, err
	}
	sec.Resolves = st.Resolves
	sec.WarmSolves = st.Solves.Warm
	sec.ColdSolves = st.Solves.Cold
	sec.Fallbacks = st.Solves.Fallback
	return sec, nil
}

// srvStats reads the server's counters through the public stats endpoint
// shape without another HTTP round trip.
func srvStats(s *serve.Server) (serve.StatsResponse, error) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	s.Handler().ServeHTTP(rec, req)
	var st serve.StatsResponse
	err := json.Unmarshal(rec.Body.Bytes(), &st)
	return st, err
}

func runServe(short bool, out string) error {
	report := serveReport{
		Benchmark:  "Serve/WarmWaterFillAndDaemon",
		provenance: stamp(short),
		SingleCore: runtime.GOMAXPROCS(0) == 1,
		EqualTol:   serveEqualTol,
		MinSpeedup: serveMinSpeedup,
		MinReqRate: serveMinReqPerSec,
		scenarioParams: scenarioParams{
			Items:   1000,
			Nodes:   100,
			Rho:     10,
			Mu:      0.05,
			Schemes: []string{"warm-waterfill", "cold-waterfill"},
		},
	}

	ladder := []int{100, 300, 1000, 3000}
	resolves := 12
	if short {
		ladder = []int{300, 1000}
		resolves = 6
	}
	for _, items := range ladder {
		rung, err := serveSolverLadder(items, resolves)
		if err != nil {
			return err
		}
		report.SolverRungs = append(report.SolverRungs, rung)
		fmt.Printf("serve solver items=%-5d cold %9d ns  warm %9d ns  speedup %5.1fx  maxΔ %.2g\n",
			items, rung.ColdNsPerOp, rung.WarmNsPerOp, rung.Speedup, rung.MaxAbsDelta)
		if rung.MaxAbsDelta > serveEqualTol {
			return fmt.Errorf("serve gate: warm vs cold disagree by %g at %d items (tol %g)",
				rung.MaxAbsDelta, items, serveEqualTol)
		}
		if items >= 1000 && rung.Speedup < serveMinSpeedup {
			return fmt.Errorf("serve gate: warm speedup %.2fx at %d items below %.1fx",
				rung.Speedup, items, serveMinSpeedup)
		}
	}

	serving, err := runServeServing(short)
	if err != nil {
		return err
	}
	report.Serving = serving
	fmt.Printf("serve daemon items=%d windows=%d offered %.0f req/s sustained %.0f req/s  warm/cold/fallback %d/%d/%d  p50 %.3fms p99 %.3fms\n",
		serving.Items, serving.Windows, serving.OfferedReqPerSec, serving.SustainedReqPerSec,
		serving.WarmSolves, serving.ColdSolves, serving.Fallbacks, serving.QueryP50Ms, serving.QueryP99Ms)
	if serving.SustainedReqPerSec < serveMinReqPerSec {
		return fmt.Errorf("serve gate: sustained %.0f req/s below %.0f",
			serving.SustainedReqPerSec, serveMinReqPerSec)
	}
	if serving.Resolves == 0 || serving.WarmSolves == 0 {
		return fmt.Errorf("serve gate: daemon solved %d times (%d warm); the warm path never engaged",
			serving.Resolves, serving.WarmSolves)
	}

	return writeJSON(out, report)
}
