package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"impatience/internal/adversary"
	"impatience/internal/alloc"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/faults"
	"impatience/internal/rates"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// hybridModel is the shared two-community test model.
func hybridModel(t *testing.T, n int) *rates.Model {
	t.Helper()
	m, err := rates.New([]int{n / 2, n / 2}, [][]float64{{0.02, 0.004}, {0.004, 0.03}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func hybridStaticConfig(n int) Config {
	pop := demand.Pareto(24, 1, 0.04*float64(n))
	return Config{
		Rho:      3,
		Utility:  utility.Step{Tau: 10},
		Pop:      pop,
		Policy:   core.Static{Label: "UNI"},
		NoSticky: true,
		Seed:     11,
	}
}

func hybridQCRConfig(t *testing.T, n int, mu float64) (Config, float64) {
	t.Helper()
	pop := demand.Pareto(24, 1, 0.04*float64(n))
	u := utility.Step{Tau: 10}
	h := welfare.Homogeneous{Utility: u, Pop: pop, Mu: mu, Servers: n, Clients: n}
	scale, err := h.ReactionScale(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Rho: 3, Utility: u, Pop: pop,
		Policy: &core.QCR{
			Reaction:       core.TunedReaction(u, mu, n, scale),
			MandateRouting: true, StrictSource: true, MaxMandates: n / 10,
			Seed: 17,
		},
		Seed: 11,
	}, scale
}

func TestHybridDeterminism(t *testing.T) {
	m := hybridModel(t, 200)
	run := func(contactSeed uint64) *Result {
		cfg, scale := hybridQCRConfig(t, 200, m.MeanPairRate())
		r, err := RunHybrid(cfg, m, 800, HybridOptions{ContactSeed: contactSeed, ReactionScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(5), run(5)
	if a.Digest() != b.Digest() {
		t.Errorf("same seeds, digests %#x vs %#x", a.Digest(), b.Digest())
	}
	if c := run(6); c.Digest() == a.Digest() {
		t.Error("different contact seed, same digest")
	}
	if a.Hybrid == nil || a.Hybrid.FellBack {
		t.Fatalf("expected fluid run, tally %+v", a.Hybrid)
	}
	if a.Hybrid.FluidNodes+a.Hybrid.BoundaryNodes != 200 {
		t.Errorf("tally splits %d+%d nodes, want 200", a.Hybrid.FluidNodes, a.Hybrid.BoundaryNodes)
	}
}

func TestHybridRejectsBadConfig(t *testing.T) {
	m := hybridModel(t, 200)
	base := hybridStaticConfig(200)
	cases := []struct {
		name string
		mut  func(*Config) (mo *rates.Model, dur float64)
	}{
		{"nil-model", func(c *Config) (*rates.Model, float64) { return nil, 100 }},
		{"zero-duration", func(c *Config) (*rates.Model, float64) { return m, 0 }},
		{"nan-duration", func(c *Config) (*rates.Model, float64) { return m, math.NaN() }},
		{"contacts-set", func(c *Config) (*rates.Model, float64) {
			src, _ := rates.NewSharded(m, 10, 1, 0)
			c.Contacts = src
			return m, 100
		}},
		{"nil-policy", func(c *Config) (*rates.Model, float64) { c.Policy = nil; return m, 100 }},
		{"nil-utility", func(c *Config) (*rates.Model, float64) { c.Utility = nil; return m, 100 }},
		{"empty-pop", func(c *Config) (*rates.Model, float64) { c.Pop = demand.Popularity{}; return m, 100 }},
		{"zero-rho", func(c *Config) (*rates.Model, float64) { c.Rho = 0; return m, 100 }},
		{"warmup-1", func(c *Config) (*rates.Model, float64) { c.WarmupFrac = 1; return m, 100 }},
		{"short-initial", func(c *Config) (*rates.Model, float64) { c.Initial = alloc.Counts{1}; return m, 100 }},
		{"p2p-unbounded-h0", func(c *Config) (*rates.Model, float64) {
			c.Utility = utility.NegLog{}
			return m, 100
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			mo, dur := tc.mut(&cfg)
			if _, err := RunHybrid(cfg, mo, dur, HybridOptions{}); err == nil {
				t.Fatal("invalid hybrid config accepted")
			}
		})
	}
}

// TestHybridFallbackReasons pins the configurations the fluid cannot
// represent: each must fall back to the full event path with a tally
// naming the reason, not error out.
func TestHybridFallbackReasons(t *testing.T) {
	m := hybridModel(t, 60)
	weighted := func() *rates.Model {
		w := make([]float64, 60)
		for i := range w {
			w[i] = 1 + float64(i%3)
		}
		wm, err := rates.New([]int{30, 30}, [][]float64{{0.02, 0.004}, {0.004, 0.03}}, w)
		if err != nil {
			t.Fatal(err)
		}
		return wm
	}
	cases := []struct {
		name   string
		mut    func(*Config) *rates.Model
		reason string
	}{
		{"faults", func(c *Config) *rates.Model {
			c.Faults = &faults.Config{ChurnRate: 0.01, MeanDowntime: 5, Seed: 3}
			return m
		}, "fault"},
		{"adversary", func(c *Config) *rates.Model {
			c.Adversary = &adversary.Config{DishonestFrac: 0.2, Mult: 4, Seed: 3}
			return m
		}, "adversary"},
		{"dedicated-servers", func(c *Config) *rates.Model { c.ServerCount = 10; return m }, "dedicated"},
		{"per-item-utilities", func(c *Config) *rates.Model {
			c.Utilities = make([]utility.Function, c.Pop.Items())
			return m
		}, "per-item"},
		{"record-delays", func(c *Config) *rates.Model { c.RecordDelays = true; return m }, "instrumentation"},
		{"weighted-nodes", func(c *Config) *rates.Model { return weighted() }, "weights"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := hybridStaticConfig(60)
			mo := tc.mut(&cfg)
			r, err := RunHybrid(cfg, mo, 200, HybridOptions{ContactSeed: 9})
			if err != nil {
				t.Fatal(err)
			}
			tally := r.Hybrid
			if tally == nil || !tally.FellBack {
				t.Fatalf("expected fallback, tally %+v", tally)
			}
			if !strings.Contains(tally.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", tally.Reason, tc.reason)
			}
			if tally.FluidFraction != 0 {
				t.Errorf("fluid fraction %g after fallback", tally.FluidFraction)
			}
		})
	}
}

// TestHybridFallbackMatchesFullRun: a fallback result must be exactly
// the full event simulation over the model's sharded source with the
// hybrid contact seed — same welfare, same counts.
func TestHybridFallbackMatchesFullRun(t *testing.T) {
	m := hybridModel(t, 60)
	cfg := hybridStaticConfig(60)
	cfg.RecordDelays = true // forces fallback without touching dynamics
	hyRes, err := RunHybrid(cfg, m, 300, HybridOptions{ContactSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	src, err := rates.NewSharded(m, 300, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.Contacts = src
	refRes, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if hyRes.AvgUtilityRate != refRes.AvgUtilityRate || hyRes.Fulfillments != refRes.Fulfillments {
		t.Errorf("fallback diverged from direct run: U %g vs %g, fulfillments %d vs %d",
			hyRes.AvgUtilityRate, refRes.AvgUtilityRate, hyRes.Fulfillments, refRes.Fulfillments)
	}
	// The tally is the only difference: gating it on nil keeps plain
	// runs digest-identical, so the fallback digest must differ only
	// through the tally.
	tally := hyRes.Hybrid
	hyRes.Hybrid = nil
	if hyRes.Digest() != refRes.Digest() {
		t.Errorf("fallback result digests %#x, direct run %#x", hyRes.Digest(), refRes.Digest())
	}
	hyRes.Hybrid = tally
}

// TestHybridStaticTracksFullSim: the fluid welfare estimate of a static
// allocation must land within 1.5% of the full event simulation.
func TestHybridStaticTracksFullSim(t *testing.T) {
	n := 300
	m := hybridModel(t, n)
	var full, hyb float64
	for trial := uint64(0); trial < 3; trial++ {
		cfg := hybridStaticConfig(n)
		cfg.Seed = 11 + trial
		src, err := rates.NewSharded(m, 1500, 100+trial, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref := cfg
		ref.Contacts = src
		r, err := Run(ref)
		if err != nil {
			t.Fatal(err)
		}
		full += r.AvgUtilityRate / 3
		h, err := RunHybrid(cfg, m, 1500, HybridOptions{ContactSeed: 100 + trial})
		if err != nil {
			t.Fatal(err)
		}
		if h.Hybrid.FellBack {
			t.Fatalf("unexpected fallback: %s", h.Hybrid.Reason)
		}
		hyb += h.AvgUtilityRate / 3
	}
	if rel := math.Abs(hyb-full) / full; rel > 0.015 {
		t.Errorf("hybrid %g vs full %g: relative error %.3f", hyb, full, rel)
	}
}

// TestHybridDemotionTrigger forces the error controller to fall back:
// a head-concentrated static allocation, a popularity reversal after
// warmup, and demand feedback disabled, so the fluid prediction goes
// stale and the probes' realized gains collapse.
func TestHybridDemotionTrigger(t *testing.T) {
	n := 200
	m, err := rates.New([]int{100, 100}, [][]float64{{0.01, 0.002}, {0.002, 0.01}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pop := demand.Pareto(32, 1, 0.1*float64(n))
	rev := demand.Popularity{Rates: make([]float64, 32)}
	for i, d := range pop.Rates {
		rev.Rates[31-i] = d
	}
	cfg := Config{
		Rho: 1, Utility: utility.Step{Tau: 2}, Pop: pop,
		Policy: core.Static{Label: "DOM"}, Initial: alloc.Dom(pop.Rates, n, 1),
		NoSticky: true, Seed: 11,
		DemandSwitch: &rev, DemandSwitchTime: 1200,
	}
	r, err := RunHybrid(cfg, m, 3000, HybridOptions{
		ContactSeed: 7, FeedbackAlpha: -1, BoundaryPerComm: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	tally := r.Hybrid
	if !tally.FellBack || tally.Demotions != 1 {
		t.Fatalf("controller did not demote: %+v", tally)
	}
	if tally.Violations < 2 {
		t.Errorf("%d violations recorded, want ≥ breach", tally.Violations)
	}
	if !strings.Contains(tally.Reason, "exceeds tolerance") {
		t.Errorf("demotion reason %q", tally.Reason)
	}
	// Control: the same run without the switch must stay on the fluid.
	cfg.DemandSwitch = nil
	ok, err := RunHybrid(cfg, m, 3000, HybridOptions{
		ContactSeed: 7, FeedbackAlpha: -1, BoundaryPerComm: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Hybrid.FellBack {
		t.Errorf("control run demoted: %+v", ok.Hybrid)
	}
}

// TestHybridBins: the time-series path must produce contiguous bins
// whose replica snapshots respect the cache budget.
func TestHybridBins(t *testing.T) {
	n := 200
	m := hybridModel(t, n)
	cfg := hybridStaticConfig(n)
	cfg.BinWidth = 100
	cfg.RecordCounts = true
	r, err := RunHybrid(cfg, m, 1000, HybridOptions{ContactSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bins) != 10 {
		t.Fatalf("%d bins for duration 1000 at width 100", len(r.Bins))
	}
	budget := n * cfg.Rho
	for bi, b := range r.Bins {
		if b.T1 <= b.T0 {
			t.Errorf("bin %d: [%g, %g]", bi, b.T0, b.T1)
		}
		var total int
		for _, c := range b.Counts {
			total += c
		}
		if d := math.Abs(float64(total - budget)); d > float64(budget)/100 {
			t.Errorf("bin %d: %d replicas vs budget %d", bi, total, budget)
		}
	}
	var fromBins int
	for _, b := range r.Bins {
		fromBins += b.Fulfillments
	}
	if fromBins < r.Fulfillments {
		t.Errorf("bins carry %d fulfillments, post-warmup total %d", fromBins, r.Fulfillments)
	}
}

// TestHybridTallyGatesDigest pins the nil-gating: attaching a tally
// changes the digest, leaving it nil does not.
func TestHybridTallyGatesDigest(t *testing.T) {
	r := Result{Duration: 10, TotalGain: 3, Fulfillments: 7}
	base := r.Digest()
	r.Hybrid = &HybridTally{FluidNodes: 1}
	if r.Digest() == base {
		t.Error("hybrid tally did not change the digest")
	}
	r.Hybrid = nil
	if r.Digest() != base {
		t.Error("nil tally digest drifted")
	}
}

func TestHybridErrIdentity(t *testing.T) {
	if _, err := RunHybrid(hybridStaticConfig(10), nil, 10, HybridOptions{}); !errors.Is(err, ErrHybrid) {
		t.Errorf("error %v does not wrap ErrHybrid", err)
	}
}
