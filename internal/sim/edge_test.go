package sim

import (
	"math"
	"testing"

	"impatience/internal/alloc"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// recordingPolicy captures the policy callbacks for inspection.
type recordingPolicy struct {
	fulfills []fulfillEvent
	meetings int
}

type fulfillEvent struct {
	node, peer, item, queries int
	age, t                    float64
}

func (r *recordingPolicy) Name() string    { return "recording" }
func (r *recordingPolicy) Init(core.Cache) {}
func (r *recordingPolicy) OnFulfill(_ core.Cache, node, peer, item, queries int, age, now float64) {
	r.fulfills = append(r.fulfills, fulfillEvent{node, peer, item, queries, age, now})
}
func (r *recordingPolicy) OnMeeting(_ core.Cache, a, b int, now float64) { r.meetings++ }

// TestQueryCounterSemantics pins down the counter definition: it counts
// every meeting since the request was created, including the fulfilling
// one.
func TestQueryCounterSemantics(t *testing.T) {
	// Node 0 requests item 0. It then meets node 1 (no copy) twice and
	// node 2 (has the copy) once: counter must be 3.
	tr := &trace.Trace{
		Nodes:    3,
		Duration: 100,
		Contacts: []trace.Contact{
			{T: 10, A: 0, B: 1},
			{T: 20, A: 0, B: 1},
			{T: 30, A: 0, B: 2},
		},
	}
	rec := &recordingPolicy{}
	pop := demand.Popularity{Rates: []float64{1000, 0}} // request arrives ~immediately
	profile := demand.Profile{P: [][]float64{{1, 0, 0}, {1, 0, 0}}}
	cfg := Config{
		Rho:        1,
		Utility:    utility.Step{Tau: 50},
		Pop:        pop,
		Profile:    profile,
		Trace:      tr,
		Policy:     rec,
		Initial:    alloc.Counts{1, 0}, // single copy of item 0...
		NoSticky:   true,
		Seed:       1,
		WarmupFrac: -1,
	}
	// Place the only copy on node 2 by hand.
	p := alloc.NewPlacement(2, 3, 1)
	p.Set(0, 2, true)
	cfg.Initial = nil
	cfg.InitialPlacement = p
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Fulfillments == 0 {
		t.Fatal("request not fulfilled")
	}
	// The first request arrives before t=10 with overwhelming probability
	// (rate 1000/min); it is fulfilled at t=30 with counter 3.
	first := rec.fulfills[0]
	if first.item != 0 || first.node != 0 || first.peer != 2 {
		t.Fatalf("unexpected fulfill event %+v", first)
	}
	if first.queries != 3 {
		t.Errorf("query counter %d, want 3 (two misses + the hit)", first.queries)
	}
	if first.t != 30 {
		t.Errorf("fulfilled at %g, want 30", first.t)
	}
}

// TestGainUsesRequestAge verifies h is evaluated at the request age, not
// at absolute time.
func TestGainUsesRequestAge(t *testing.T) {
	tr := &trace.Trace{
		Nodes:    2,
		Duration: 2000,
		Contacts: []trace.Contact{{T: 1500, A: 0, B: 1}},
	}
	pop := demand.Popularity{Rates: []float64{0.01}}
	profile := demand.Profile{P: [][]float64{{1, 0}}}
	cfg := Config{
		Rho: 1, Utility: utility.Power{Alpha: 0} /* h(t) = -t */, Pop: pop,
		Profile: profile, Trace: tr, Policy: core.Static{},
		NoSticky: true, Seed: 3, WarmupFrac: -1,
	}
	p := alloc.NewPlacement(1, 2, 1)
	p.Set(0, 1, true)
	cfg.InitialPlacement = p
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Fulfillments == 0 {
		t.Skip("no request arrived before the single contact")
	}
	// Every fulfilled request is at most 1500 minutes old; the recorded
	// gain per fulfillment must be in (-1500, 0].
	per := res.TotalGain / float64(res.Fulfillments)
	if per > 0 || per < -1500 {
		t.Errorf("mean gain per fulfillment %g outside (-1500, 0]", per)
	}
}

// TestWriteFailsWhenAllSlotsSticky: a node whose cache is fully pinned
// cannot receive replicas.
func TestWriteFailsWhenAllSlotsSticky(t *testing.T) {
	// 2 nodes, ρ=1, 2 items: sticky item 0 → node 0, sticky item 1 →
	// node 1. Every slot is sticky, so QCR can never write anything.
	tr := &trace.Trace{
		Nodes:    2,
		Duration: 500,
		Contacts: []trace.Contact{{T: 1, A: 0, B: 1}, {T: 2, A: 0, B: 1}},
	}
	q := &core.QCR{Reaction: core.PathReplication(5), MandateRouting: true, Seed: 1}
	cfg := Config{
		Rho: 1, Utility: utility.Step{Tau: 100}, Pop: demand.Uniform(2, 5),
		Trace: tr, Policy: q, Seed: 2, WarmupFrac: -1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ReplicasMade != 0 {
		t.Errorf("made %d replicas with fully pinned caches", res.ReplicasMade)
	}
	if res.FinalCounts[0] != 1 || res.FinalCounts[1] != 1 {
		t.Errorf("final counts %v, want [1 1]", res.FinalCounts)
	}
}

// TestStickyPlacementExceedingCapacity: more items than sticky capacity
// must be rejected up front.
func TestStickyPlacementExceedingCapacity(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Duration: 10}
	cfg := Config{
		Rho: 1, Utility: utility.Step{Tau: 1}, Pop: demand.Uniform(3, 1),
		Trace: tr, Policy: core.Static{}, Seed: 1,
	}
	if _, err := Run(cfg); err == nil {
		t.Error("3 sticky items on 2 single-slot nodes accepted")
	}
}

// TestInitialPlacementValidation covers the placement/sticky interaction.
func TestInitialPlacementValidation(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Duration: 10}
	p := alloc.NewPlacement(1, 2, 1)
	p.Set(0, 0, true)
	cfg := Config{
		Rho: 1, Utility: utility.Step{Tau: 1}, Pop: demand.Uniform(1, 1),
		Trace: tr, Policy: core.Static{}, Seed: 1,
		InitialPlacement: p, // NoSticky not set → must fail
	}
	if _, err := Run(cfg); err == nil {
		t.Error("InitialPlacement without NoSticky accepted")
	}
	cfg.NoSticky = true
	if _, err := Run(cfg); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
	// Shape mismatch.
	bad := alloc.NewPlacement(2, 2, 1)
	cfg.InitialPlacement = bad
	cfg.Pop = demand.Uniform(1, 1)
	if _, err := Run(cfg); err == nil {
		t.Error("placement with wrong item count accepted")
	}
}

// TestMultipleOutstandingRequestsSameItem: both fulfill at one meeting
// with their own ages and counters.
func TestMultipleOutstandingRequestsSameItem(t *testing.T) {
	tr := &trace.Trace{
		Nodes:    2,
		Duration: 4000,
		Contacts: []trace.Contact{{T: 3900, A: 0, B: 1}},
	}
	rec := &recordingPolicy{}
	pop := demand.Popularity{Rates: []float64{0.01}} // ~39 requests before the contact
	profile := demand.Profile{P: [][]float64{{1, 0}}}
	p := alloc.NewPlacement(1, 2, 1)
	p.Set(0, 1, true)
	cfg := Config{
		Rho: 1, Utility: utility.Step{Tau: 10000}, Pop: pop, Profile: profile,
		Trace: tr, Policy: rec, NoSticky: true, InitialPlacement: p,
		Seed: 9, WarmupFrac: -1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Fulfillments < 2 {
		t.Skipf("only %d requests arrived", res.Fulfillments)
	}
	if len(rec.fulfills) != res.Fulfillments {
		t.Errorf("policy saw %d fulfills, result says %d", len(rec.fulfills), res.Fulfillments)
	}
	for _, f := range rec.fulfills {
		if f.queries != 1 {
			t.Errorf("queries=%d, want 1 (single meeting)", f.queries)
		}
		if f.t != 3900 {
			t.Errorf("fulfill at %g, want 3900", f.t)
		}
	}
	// TotalGain = number of fulfillments (step gain 1 each).
	if math.Abs(res.TotalGain-float64(res.Fulfillments)) > 1e-9 {
		t.Errorf("gain %g for %d step fulfillments", res.TotalGain, res.Fulfillments)
	}
}

// TestWarmupExcludesEarlyGains: gains before the warmup boundary are in
// the bins but not the measured totals.
func TestWarmupExcludesEarlyGains(t *testing.T) {
	tr := &trace.Trace{
		Nodes:    2,
		Duration: 1000,
		Contacts: []trace.Contact{{T: 100, A: 0, B: 1}, {T: 900, A: 0, B: 1}},
	}
	pop := demand.Popularity{Rates: []float64{0.05}}
	profile := demand.Profile{P: [][]float64{{1, 0}}}
	p := alloc.NewPlacement(1, 2, 1)
	p.Set(0, 1, true)
	mk := func(warmup float64) *Result {
		res, err := Run(Config{
			Rho: 1, Utility: utility.Step{Tau: 1e6}, Pop: pop, Profile: profile,
			Trace: tr, Policy: core.Static{}, NoSticky: true, InitialPlacement: p,
			Seed: 4, WarmupFrac: warmup,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	all := mk(-1)
	half := mk(0.5)
	if half.TotalGain >= all.TotalGain {
		t.Errorf("warmup did not exclude early gains: %g vs %g", half.TotalGain, all.TotalGain)
	}
	if half.MeasureStart != 500 {
		t.Errorf("measure start %g", half.MeasureStart)
	}
}
