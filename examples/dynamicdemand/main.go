// Dynamic demand: QCR adapting to a popularity flip (the Section 7
// claim that reactive replication "naturally adapts to dynamic demand").
//
// Halfway through the run the catalog's popularity ranking is inverted —
// yesterday's blockbusters become niche and vice versa. A fixed OPT
// allocation computed for the old demand collapses; QCR re-converges on
// its own.
//
// Run with: go run ./examples/dynamicdemand
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"impatience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamicdemand:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes    = 40
		items    = 30
		rho      = 2 // tight caches make the allocation matter
		mu       = 0.02
		duration = 12000.0
	)
	u := impatience.Step{Tau: 8}
	oldPop := impatience.ParetoPopularity(items, 1.5, 2)
	newPop := impatience.Popularity{Rates: make([]float64, items)}
	for i, d := range oldPop.Rates {
		newPop.Rates[items-1-i] = d
	}

	tr, err := impatience.GenerateHomogeneousTrace(nodes, mu, duration,
		rand.New(rand.NewPCG(10, 20)))
	if err != nil {
		return err
	}

	play := func(policy impatience.ReplicationPolicy, initial impatience.AllocationCounts) (*impatience.SimResult, error) {
		cfg := impatience.SimConfig{
			Rho: rho, Utility: u, Pop: oldPop, Trace: tr, Policy: policy, Seed: 30,
			BinWidth: duration / 30, RecordCounts: true,
			DemandSwitch: &newPop, DemandSwitchTime: duration / 2,
			WarmupFrac: -1, // measure everything; we inspect the series
		}
		if initial != nil {
			cfg.Initial = initial
			cfg.NoSticky = true
		}
		return impatience.Simulate(cfg)
	}

	homOld := impatience.Homogeneous{Utility: u, Pop: oldPop, Mu: mu, Servers: nodes, Clients: nodes, PureP2P: true}
	optOld, err := homOld.GreedyOptimal(rho)
	if err != nil {
		return err
	}
	staleOPT, err := play(impatience.StaticPolicy{Label: "stale-opt"}, optOld)
	if err != nil {
		return err
	}
	qcr, err := play(&impatience.QCR{
		Reaction:       impatience.TunedReaction(u, mu, nodes, 0.15),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5, Seed: 40,
	}, nil)
	if err != nil {
		return err
	}

	fmt.Printf("popularity ranking flips at t=%.0f min\n\n", duration/2)
	fmt.Printf("%-12s %18s %18s\n", "time (min)", "stale OPT (gain/min)", "QCR (gain/min)")
	for k := range qcr.Bins {
		if k%3 != 0 {
			continue
		}
		b := qcr.Bins[k]
		so := staleOPT.Bins[k]
		marker := ""
		if b.T0 <= duration/2 && b.T1 > duration/2 {
			marker = "  ← demand flips"
		}
		fmt.Printf("%-12.0f %18.3f %18.3f%s\n",
			b.T0, so.Gain/(so.T1-so.T0), b.Gain/(b.T1-b.T0), marker)
	}
	fmt.Println("\nThe stale optimal allocation never recovers; QCR's query counters notice the")
	fmt.Println("new demand and rebuild the cache within a few hundred minutes.")
	return nil
}
