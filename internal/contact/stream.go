// Streaming counterparts of the materialized generators: the same
// contact models, drawn lazily one contact per Next call, so the peak
// memory of the contact process is the O(N²) rate state instead of the
// O(N²·µ·T) contact list. The continuous-time stream additionally
// replaces the per-contact binary search over the pair CDF (O(log N²)
// with cache-hostile access) by a Walker/Vose alias draw (O(1), two
// array reads) — see internal/numeric.
//
// Determinism: a stream is a pure function of (rate matrix, duration,
// RNG seed), so streaming runs are reproducible exactly like
// materialized ones. The RNG *stream* of NewStream differs from
// Generate's (one uniform per contact instead of a CDF probe), which is
// why Generate keeps its legacy sampling loop: the repository's golden
// digests pin the materialized path bit-for-bit. NewDiscreteStream, by
// contrast, consumes randomness in exactly Generate­Discrete's order and
// yields bit-identical contacts for the same seed.
package contact

import (
	"fmt"
	"math"
	"math/rand/v2"

	"impatience/internal/numeric"
	"impatience/internal/trace"
)

// validRates checks a rate matrix entry-wise (negative, NaN and infinite
// intensities are modelling errors, not samplable weights) and returns
// the total rate. The materialized generators used to trust the matrix
// and could silently mis-sample from a non-monotonic CDF; now every
// generator shares this gate.
func validRates(rm *trace.RateMatrix) (float64, error) {
	var total float64
	for i, r := range rm.Rates() {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			a, b := trace.PairFromIndex(rm.Nodes, i)
			return 0, fmt.Errorf("contact: pair (%d,%d) has invalid rate %g", a, b, r)
		}
		total += r
	}
	return total, nil
}

// Stream draws the continuous-time contact process lazily: the
// superposition of all pairwise Poisson processes, with each event
// assigned to a pair by one alias-method draw. State is the alias table
// over pair intensities — ~12 bytes per pair — regardless of duration.
type Stream struct {
	nodes    int
	duration float64
	total    float64
	alias    *numeric.Alias
	rng      *rand.Rand
	t        float64
	done     bool
}

// NewStream builds a streaming continuous-time generator over the rate
// matrix. A zero-total matrix is valid and yields the empty contact
// process; negative, NaN or infinite rates are rejected.
func NewStream(rm *trace.RateMatrix, duration float64, rng *rand.Rand) (*Stream, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("contact: duration %g not positive", duration)
	}
	total, err := validRates(rm)
	if err != nil {
		return nil, err
	}
	s := &Stream{nodes: rm.Nodes, duration: duration, total: total, rng: rng}
	if total <= 0 {
		s.done = true // empty process: Next immediately reports exhaustion
		return s, nil
	}
	if s.alias, err = numeric.NewAlias(rm.Rates()); err != nil {
		return nil, err
	}
	return s, nil
}

// NewHomogeneousStream streams the homogeneous setting (every pair at
// rate mu), the streaming counterpart of GenerateHomogeneous.
func NewHomogeneousStream(nodes int, mu, duration float64, rng *rand.Rand) (*Stream, error) {
	return NewStream(trace.UniformRates(nodes, mu), duration, rng)
}

// Nodes implements trace.Source.
func (s *Stream) Nodes() int { return s.nodes }

// Duration implements trace.Source.
func (s *Stream) Duration() float64 { return s.duration }

// Next implements trace.Source: one exponential step of the superposed
// process plus one alias draw for the pair. Zero allocations.
func (s *Stream) Next() (trace.Contact, bool) {
	if s.done {
		return trace.Contact{}, false
	}
	s.t += s.rng.ExpFloat64() / s.total
	if s.t > s.duration {
		s.done = true
		return trace.Contact{}, false
	}
	a, b := trace.PairFromIndex(s.nodes, s.alias.Sample(s.rng))
	return trace.Contact{T: s.t, A: a, B: b}, true
}

// NextBatch implements trace.BulkSource: the same exponential steps and
// alias draws as Next, in the same order, written straight into the
// caller's buffer. One call amortizes the per-contact interface dispatch
// and the receiver's field loads over the whole batch.
func (s *Stream) NextBatch(buf []trace.Contact) int {
	if s.done {
		return 0
	}
	n := 0
	t, total, duration := s.t, s.total, s.duration
	for n < len(buf) {
		t += s.rng.ExpFloat64() / total
		if t > duration {
			s.done = true
			break
		}
		a, b := trace.PairFromIndex(s.nodes, s.alias.Sample(s.rng))
		buf[n] = trace.Contact{T: t, A: a, B: b}
		n++
	}
	s.t = t
	return n
}

// DiscreteStream draws the discrete-time model lazily: slots of length
// delta, each positive-probability pair meeting independently per slot.
// It consumes randomness in exactly GenerateDiscrete's order (one
// uniform per positive-probability pair per slot, in pair-index order),
// so for the same RNG seed the streamed contacts are bit-identical to
// the materialized trace — only never held in memory at once.
type DiscreteStream struct {
	nodes    int
	duration float64
	delta    float64
	// Positive-probability pairs, compressed: probs[i] applies to dense
	// pair index idxs[i].
	idxs  []int32
	probs []float64
	rng   *rand.Rand
	slot  int // current slot number (1-based; 0 = not started)
	slots int
	cur   int // next compressed pair to examine within the slot
	done  bool
}

// NewDiscreteStream builds a streaming discrete-time generator. As with
// NewStream, an all-zero matrix yields the empty process and invalid
// rates are rejected.
func NewDiscreteStream(rm *trace.RateMatrix, duration, delta float64, rng *rand.Rand) (*DiscreteStream, error) {
	if duration <= 0 || delta <= 0 {
		return nil, fmt.Errorf("contact: invalid duration %g / delta %g", duration, delta)
	}
	if _, err := validRates(rm); err != nil {
		return nil, err
	}
	s := &DiscreteStream{nodes: rm.Nodes, duration: duration, delta: delta, rng: rng, slots: int(duration / delta)}
	for i, r := range rm.Rates() {
		p := r * delta
		if p > 1 {
			p = 1
		}
		if p > 0 {
			s.idxs = append(s.idxs, int32(i))
			s.probs = append(s.probs, p)
		}
	}
	if len(s.idxs) == 0 || s.slots == 0 {
		s.done = true
	} else {
		s.slot = 1
	}
	return s, nil
}

// Nodes implements trace.Source.
func (s *DiscreteStream) Nodes() int { return s.nodes }

// Duration implements trace.Source.
func (s *DiscreteStream) Duration() float64 { return s.duration }

// Next implements trace.Source.
func (s *DiscreteStream) Next() (trace.Contact, bool) {
	if s.done {
		return trace.Contact{}, false
	}
	for {
		t := float64(s.slot) * s.delta
		if t > s.duration {
			s.done = true
			return trace.Contact{}, false
		}
		for s.cur < len(s.idxs) {
			i := s.cur
			s.cur++
			if s.rng.Float64() < s.probs[i] {
				a, b := trace.PairFromIndex(s.nodes, int(s.idxs[i]))
				return trace.Contact{T: t, A: a, B: b}, true
			}
		}
		s.cur = 0
		s.slot++
		if s.slot > s.slots {
			s.done = true
			return trace.Contact{}, false
		}
	}
}

// NextBatch implements trace.BulkSource by repeated concrete Next calls:
// the uniform draws happen in exactly GenerateDiscrete's order, and the
// only cost removed is the per-contact interface dispatch — which is the
// point of the bulk seam.
func (s *DiscreteStream) NextBatch(buf []trace.Contact) int {
	n := 0
	for n < len(buf) {
		c, ok := s.Next()
		if !ok {
			break
		}
		buf[n] = c
		n++
	}
	return n
}
