package utility

import "impatience/internal/numeric"

// Thin wrappers so the test file reads cleanly. Best effort: depth
// exhaustion near integrable singularities is tolerated, since the tests
// compare at ~1e-5 tolerance anyway.

func integrate01(f func(float64) float64) (float64, error) {
	v, err := numeric.Integrate(f, 0, 1, 1e-12)
	if err == numeric.ErrMaxDepth {
		err = nil
	}
	return v, err
}

func integrateToInf(f func(float64) float64, a float64) (float64, error) {
	v, err := numeric.IntegrateToInf(f, a, 1e-12)
	if err == numeric.ErrMaxDepth {
		err = nil
	}
	return v, err
}
