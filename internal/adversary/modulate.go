package adversary

import (
	"fmt"

	"impatience/internal/synth"
	"impatience/internal/trace"
)

// Contact-rate nonstationarity: a day/night activity profile is imposed
// on any streamed contact source by deterministic time change. Treating
// the base stream's clock as operational time, each contact at t maps to
// Λ⁻¹(t·Λ(D)/D), where Λ is the profile's cumulative activity and D the
// duration — contacts compress into daytime and stretch across nights
// while the node count, the duration, the number of contacts, and hence
// the empirical pairwise rates all stay exactly those of the base
// stream. A memoryless base source thereby becomes the piecewise
// nonstationary Poisson process the diurnal robustness experiments need,
// without materializing anything.

// Modulated is a contact source time-changed through a diurnal profile.
type Modulated struct {
	base  trace.Source
	prof  *synth.Diurnal
	scale float64
}

// Modulate wraps base with the profile's time change. The returned
// source is reopenable iff base is (reopening re-derives the same
// modulated sequence), and propagates base's mid-stream errors.
func Modulate(base trace.Source, prof *synth.Diurnal) (trace.Source, error) {
	d := base.Duration()
	if !(d > 0) {
		return nil, fmt.Errorf("adversary: modulating source with duration %g", d)
	}
	total := prof.Cumulative(d)
	if !(total > 0) {
		return nil, fmt.Errorf("adversary: diurnal profile has zero activity over [0,%g]", d)
	}
	m := &Modulated{base: base, prof: prof, scale: total / d}
	if _, ok := base.(trace.Reopenable); ok {
		return &reopenableModulated{Modulated: m}, nil
	}
	return m, nil
}

// DayNight is the common case of Modulate: activity 1 inside the
// [dayStart, dayEnd) minute-of-day window and nightFactor outside it.
func DayNight(base trace.Source, dayStart, dayEnd, nightFactor float64) (trace.Source, error) {
	if dayStart < 0 || dayEnd <= dayStart || dayEnd > 1440 {
		return nil, fmt.Errorf("adversary: day window [%g,%g)", dayStart, dayEnd)
	}
	if nightFactor <= 0 || nightFactor > 1 {
		return nil, fmt.Errorf("adversary: night factor %g outside (0,1]", nightFactor)
	}
	return Modulate(base, synth.NewDiurnal(dayStart, dayEnd, nightFactor, base.Duration()))
}

// Nodes implements trace.Source.
func (m *Modulated) Nodes() int { return m.base.Nodes() }

// Duration implements trace.Source.
func (m *Modulated) Duration() float64 { return m.base.Duration() }

// Next implements trace.Source: the base contact with its time pushed
// through the inverse time change (monotone, so order is preserved).
func (m *Modulated) Next() (trace.Contact, bool) {
	c, ok := m.base.Next()
	if !ok {
		return c, false
	}
	c.T = m.prof.Invert(c.T * m.scale)
	return c, true
}

// Err implements trace.ErrSource, propagating the base stream's error.
func (m *Modulated) Err() error {
	if es, ok := m.base.(trace.ErrSource); ok {
		return es.Err()
	}
	return nil
}

// reopenableModulated adds Reopen when the base source supports it.
type reopenableModulated struct{ *Modulated }

// Reopen implements trace.Reopenable: a rewound base stream re-modulated
// by the same profile streams the identical contact sequence.
func (m *reopenableModulated) Reopen() (trace.Source, error) {
	s, err := m.base.(trace.Reopenable).Reopen()
	if err != nil {
		return nil, err
	}
	return Modulate(s, m.prof)
}
