package utility

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DeltaC is the discrete-time differential delay-utility of Section 3.5:
// Δc(kδ) = h(kδ) − h((k+1)δ), the utility lost by waiting one more slot.
// It is non-negative for any valid (non-increasing) h.
func DeltaC(f Function, k int, delta float64) float64 {
	t := float64(k) * delta
	return f.H(t) - f.H(t+delta)
}

// DiscreteExpectedGain evaluates Lemma 1's discrete-time series
//
//	E[h(Y)] = h(δ) − Σ_{k≥1} q^k · Δc(kδ)
//
// where q is the per-slot probability that none of the caching servers is
// met (so the fulfillment delay is Y = Kδ with K geometric). q = 1 means
// the request is never fulfilled and the t → ∞ limit of h is returned.
// The series is summed until the geometric envelope q^k·|Δc| is negligible
// relative to the accumulated value.
func DiscreteExpectedGain(f Function, q, delta float64) float64 {
	if delta <= 0 {
		return math.NaN()
	}
	if q >= 1 {
		return f.ExpectedGain(0)
	}
	if q <= 0 {
		return f.H(delta)
	}
	sum := 0.0
	qk := 1.0
	const maxTerms = 50_000_000
	for k := 1; k <= maxTerms; k++ {
		qk *= q
		dc := DeltaC(f, k, delta)
		sum += qk * dc
		// Terminate once the remaining tail is provably tiny: Δc terms are
		// bounded by the local slope which, for all families here, is
		// non-increasing beyond its mode; a conservative geometric bound on
		// the tail is qk/(1-q) times the current term magnitude.
		if qk < 1e-16 && qk/(1-q)*math.Max(dc, 1) < 1e-12*(math.Abs(sum)+1) {
			break
		}
	}
	return f.H(delta) - sum
}

// StepDiscreteExpectedGain is the closed-form discrete-time gain for the
// step utility: the request earns 1 iff it is fulfilled within the first
// ⌊τ/δ⌋ slots, so E[h(Y)] = 1 − q^{⌊τ/δ⌋}. Used to cross-check
// DiscreteExpectedGain.
func StepDiscreteExpectedGain(s Step, q, delta float64) float64 {
	k := math.Floor(s.Tau / delta)
	if k <= 0 {
		return 0
	}
	return 1 - math.Pow(q, k)
}

// Parse builds a Function from a compact spec string, used by the CLI
// tools and experiment configs:
//
//	"step:10"     → Step{Tau: 10}
//	"exp:0.5"     → Exponential{Nu: 0.5}
//	"power:-1"    → Power{Alpha: -1}
//	"neglog"      → NegLog{}
func Parse(spec string) (Function, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	var param float64
	if hasArg {
		var err error
		param, err = strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("utility: bad parameter in spec %q: %v", spec, err)
		}
	}
	switch name {
	case "step":
		if !hasArg || param <= 0 {
			return nil, fmt.Errorf("utility: step requires τ > 0 (got %q)", spec)
		}
		return Step{Tau: param}, nil
	case "exp", "exponential":
		if !hasArg || param <= 0 {
			return nil, fmt.Errorf("utility: exponential requires ν > 0 (got %q)", spec)
		}
		return Exponential{Nu: param}, nil
	case "power":
		if !hasArg {
			return nil, fmt.Errorf("utility: power requires α (got %q)", spec)
		}
		p := Power{Alpha: param}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	case "neglog", "log":
		return NegLog{}, nil
	default:
		return nil, fmt.Errorf("utility: unknown family %q (want step, exp, power or neglog)", name)
	}
}
