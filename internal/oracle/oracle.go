// Package oracle is the theory-vs-simulation conformance harness: it
// cross-validates the repository's three layers — the closed-form
// welfare of Table 1/Eqs. 2–5 (internal/welfare, internal/utility), the
// mean-field ODE of Section 5.2 (internal/meanfield) and the
// discrete-event simulator (internal/sim) — with statistical rigor.
//
// Golden digests pin that behavior has not changed; the oracle pins that
// behavior is right. Its checks fall in three groups:
//
//   - Analytic oracles: simulated welfare and per-item delay-utilities
//     against the closed forms, at a ladder of population sizes N. The
//     tolerances are confidence intervals computed from the trials —
//     they shrink as N grows (demand scales with N, pairwise contact
//     rate as µ̄/N), so the gate demonstrates mean-field convergence
//     rather than hiding behind a fixed fudge factor. Delay samples are
//     KS-tested against the exponential meeting model.
//   - Differential checks: streaming vs materialized contact paths
//     (digest equality), QCR steady-state replica counts vs the relaxed
//     optimum of Property 1, the mean-field fixed point vs water-filling
//     on the balance condition, and the greedy/relaxed welfare sandwich
//     U(⌊x̃⌋) ≤ U(greedy) ≤ U(x̃).
//   - A negative control: Config.BreakAllocation simulates the uniform
//     allocation while asserting the optimal allocation's closed form;
//     the harness must fail, proving the gates have statistical power.
//
// cmd/ageverify runs the suite (-quick for CI, -full for nightly),
// writes VERIFY.json and exits nonzero on any violation.
package oracle

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"
)

// Config parameterizes a conformance run.
type Config struct {
	// Full switches from the CI-sized quick suite (~1–2 min on one core)
	// to the nightly ladder (N up to 1000, more trials).
	Full bool
	// Seed is the base seed; every check derives its trial seeds from it
	// via parallel.TrialSeed and records them in the report.
	Seed uint64
	// Workers bounds the trial worker pool (≤ 0 = GOMAXPROCS). Results
	// are worker-count invariant.
	Workers int
	// BreakAllocation is the negative control: the welfare ladder
	// simulates the uniform allocation while asserting the optimal
	// allocation's closed form. A healthy harness must FAIL.
	BreakAllocation bool
	// Hardened runs the QCR replica-balance check with the
	// adversary-hardened reaction (experiment.SchemeQCRH) instead of the
	// vanilla one. Under zero adversaries the hardening must not disturb
	// the Property-1 fixed point, so the same balance and welfare gates
	// apply unchanged.
	Hardened bool
	// Hybrid appends the hybrid-vs-sim ladder: the mean-field fast path
	// (sim.RunHybrid) must land inside the full simulation's confidence
	// interval at every ladder rung without falling back.
	Hybrid bool
	// Progress, if non-nil, receives one line per completed check.
	Progress func(string)
}

// CheckResult is the outcome of one conformance check.
type CheckResult struct {
	Name string `json:"name"`
	Pass bool   `json:"pass"`
	// Effect is the check's headline effect size, normalized so that
	// values ≤ 1 pass and the magnitude says how close to the gate the
	// measurement landed (e.g. |mean−U|/tolerance, D/D_crit).
	Effect float64 `json:"effect"`
	// Seed reproduces the check: rerun with this base seed and the same
	// mode (quick/full) to regenerate identical trials.
	Seed       uint64   `json:"seed"`
	Details    []string `json:"details"`
	ElapsedSec float64  `json:"elapsed_sec"`
}

// Report is the structured outcome of a full conformance run; ageverify
// serializes it to VERIFY.json.
type Report struct {
	Mode       string        `json:"mode"` // "quick" or "full"
	Seed       uint64        `json:"seed"`
	Broken     bool          `json:"broken,omitempty"`   // negative-control mode
	Hardened   bool          `json:"hardened,omitempty"` // QCR check ran with the hardened reaction
	Hybrid     bool          `json:"hybrid,omitempty"`   // hybrid-vs-sim ladder included
	Pass       bool          `json:"pass"`
	Checks     []CheckResult `json:"checks"`
	ElapsedSec float64       `json:"elapsed_sec"`
}

// Summary renders a one-line-per-check text table.
func (r *Report) Summary() string {
	var b strings.Builder
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-28s %s  effect=%.3f  %5.1fs  seed=%d\n", c.Name, status, c.Effect, c.ElapsedSec, c.Seed)
		for _, d := range c.Details {
			fmt.Fprintf(&b, "    %s\n", d)
		}
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "conformance %s (%s mode, %.1fs)\n", verdict, r.Mode, r.ElapsedSec)
	return b.String()
}

// WriteJSON writes the report to path (indented, trailing newline).
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// check is one named conformance check.
type check struct {
	name string
	run  func() CheckResult
}

// session is one conformance run in flight: the configuration, the mode
// parameters and the lazily shared welfare-ladder data (the per-item and
// KS checks reuse the top rung's instrumented trials instead of paying
// for them twice).
type session struct {
	cfg    Config
	p      params
	ladder *ladderData // computed on first use; err recorded inside
}

// checks lists the suite in execution order: cheap analytic differentials
// first (they fail fast on gross breakage), then the simulation ladders.
func (s *session) checks() []check {
	cs := []check{
		{"meanfield-fixed-point", s.checkMeanFieldFixedPoint},
		{"greedy-relaxed-sandwich", s.checkGreedyRelaxedSandwich},
		{"stream-vs-materialized", s.checkStreamVsMaterialized},
		{"welfare-ladder", s.checkWelfareLadder},
		{"per-item-welfare", s.checkPerItemWelfare},
		{"delay-distribution-ks", s.checkDelayKS},
		{"qcr-replica-balance", s.checkQCRBalance},
	}
	if s.cfg.Hybrid {
		cs = append(cs, check{"hybrid-vs-sim-ladder", s.checkHybridLadder})
	}
	return cs
}

// Check runs the full conformance suite and returns the structured
// report. It never returns a non-nil error for a conformance violation —
// those are reported per check (and flip Report.Pass); infrastructure
// failures (a simulation that errors out) are reported the same way so a
// partial run still yields a usable VERIFY.json.
func Check(cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := quickParams()
	mode := "quick"
	if cfg.Full {
		p = fullParams()
		mode = "full"
	}
	s := &session{cfg: cfg, p: p}
	rep := &Report{Mode: mode, Seed: cfg.Seed, Broken: cfg.BreakAllocation, Hardened: cfg.Hardened, Hybrid: cfg.Hybrid, Pass: true}
	start := time.Now()
	for _, c := range s.checks() {
		t0 := time.Now()
		res := c.run()
		res.Name = c.name
		res.ElapsedSec = time.Since(t0).Seconds()
		if res.Seed == 0 {
			res.Seed = cfg.Seed
		}
		rep.Checks = append(rep.Checks, res)
		if !res.Pass {
			rep.Pass = false
		}
		if cfg.Progress != nil {
			status := "PASS"
			if !res.Pass {
				status = "FAIL"
			}
			cfg.Progress(fmt.Sprintf("%-28s %s (%.1fs)", c.name, status, res.ElapsedSec))
		}
	}
	rep.ElapsedSec = time.Since(start).Seconds()
	return rep, nil
}

// infraFail marks a check failed on an infrastructure error (simulation
// or solver failure, not a conformance violation).
func infraFail(res CheckResult, err error) CheckResult {
	res.Pass = false
	res.Details = append(res.Details, "ERROR "+err.Error())
	res.Effect = math.Inf(1)
	return res
}

// fail builds a failing assertion line; pass builds a passing one. Both
// keep the check code readable at the call site.
func assertLine(ok bool, format string, args ...any) (bool, string) {
	prefix := "ok   "
	if !ok {
		prefix = "FAIL "
	}
	return ok, prefix + fmt.Sprintf(format, args...)
}

// maxf is a small helper: the running maximum of effect sizes.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
