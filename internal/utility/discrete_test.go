package utility

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeltaCNonNegative(t *testing.T) {
	for _, f := range allFamilies() {
		for k := 1; k < 50; k++ {
			if dc := DeltaC(f, k, 0.5); dc < -1e-12 {
				t.Errorf("%s: Δc(%d·0.5)=%g negative", f.Name(), k, dc)
			}
		}
	}
}

func TestDiscreteExpectedGainStepClosedForm(t *testing.T) {
	s := Step{Tau: 7}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		for _, delta := range []float64{0.25, 1, 2} {
			got := DiscreteExpectedGain(s, q, delta)
			want := StepDiscreteExpectedGain(s, q, delta)
			if !almostEqual(got, want, 1e-10) {
				t.Errorf("q=%g δ=%g: series=%g closed=%g", q, delta, got, want)
			}
		}
	}
}

func TestDiscreteExpectedGainEdges(t *testing.T) {
	s := Step{Tau: 5}
	if got := DiscreteExpectedGain(s, 1, 0.5); got != 0 {
		t.Errorf("q=1 (never fulfilled): got %g, want 0", got)
	}
	if got := DiscreteExpectedGain(s, 0, 0.5); got != 1 {
		t.Errorf("q=0 (fulfilled first slot): got %g, want h(δ)=1", got)
	}
	if got := DiscreteExpectedGain(s, 0.5, 0); !math.IsNaN(got) {
		t.Errorf("δ=0: got %g, want NaN", got)
	}
}

// Section 3.4: as δ → 0 with q = 1 - rate·δ, the discrete model approaches
// the continuous model. Verify for the exponential and step families.
func TestDiscreteConvergesToContinuous(t *testing.T) {
	rate := 0.8
	fams := []Function{Exponential{Nu: 0.5}, Step{Tau: 3}, Power{Alpha: 0}}
	for _, f := range fams {
		want := f.ExpectedGain(rate)
		var prevErr float64 = math.Inf(1)
		for _, delta := range []float64{0.2, 0.05, 0.01} {
			q := 1 - rate*delta
			got := DiscreteExpectedGain(f, q, delta)
			e := math.Abs(got - want)
			if e > prevErr*1.2+1e-10 {
				t.Errorf("%s: error did not shrink as δ→0: δ=%g err=%g prev=%g", f.Name(), delta, e, prevErr)
			}
			prevErr = e
		}
		if prevErr > 0.02*math.Max(1, math.Abs(want)) {
			t.Errorf("%s: residual discrete-vs-continuous gap %g too large (want≈%g)", f.Name(), prevErr, want)
		}
	}
}

// Property: the discrete gain is monotone decreasing in q (more chance of
// missing the servers each slot can only hurt).
func TestDiscreteGainMonotoneInQ(t *testing.T) {
	prop := func(tauRaw float64, pick uint8) bool {
		fams := []Function{Step{Tau: 0.5 + math.Abs(math.Mod(tauRaw, 20))}, Exponential{Nu: 0.3}, Power{Alpha: 0.5}}
		f := fams[int(pick)%len(fams)]
		prev := math.Inf(1)
		for _, q := range []float64{0.05, 0.3, 0.6, 0.9, 0.99} {
			v := DiscreteExpectedGain(f, q, 0.5)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
