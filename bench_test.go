// Benchmarks regenerating every table and figure of the paper's
// evaluation, at reduced scale so `go test -bench=. -benchmem` finishes
// in minutes. Each benchmark logs the rows/series it produced; the full-
// scale versions live behind cmd/agefigures. The experiment index mapping
// benchmarks to paper artifacts is in DESIGN.md §5 and EXPERIMENTS.md.
package impatience_test

import (
	"fmt"
	"strings"
	"testing"

	"impatience/internal/experiment"
	"impatience/internal/plot"
	"impatience/internal/synth"
	"impatience/internal/utility"
)

// benchScenario is the reduced-scale evaluation scenario used by all
// simulation benchmarks: same population shape as the paper (50 nodes,
// 50 items, ρ=5), fewer trials and shorter runs.
func benchScenario() experiment.Scenario {
	sc := experiment.Default()
	sc.Trials = 3
	sc.Duration = 2000
	return sc
}

func benchConference() synth.ConferenceConfig {
	cfg := synth.DefaultConference()
	cfg.Days = 1
	return cfg
}

func benchVehicular() synth.VehicularConfig {
	cfg := synth.DefaultVehicular()
	cfg.DurationMin = 480
	return cfg
}

// logTable emits a table's summary rows into the benchmark log.
func logTable(b *testing.B, t *plot.Table) {
	b.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-14s", t.Title, t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %14s", c.Name)
	}
	sb.WriteByte('\n')
	for i := range t.X {
		fmt.Fprintf(&sb, "%-14.5g", t.X[i])
		for _, c := range t.Columns {
			fmt.Fprintf(&sb, " %14.5g", c.Y[i])
		}
		sb.WriteByte('\n')
	}
	b.Log(sb.String())
}

// logTableTail logs only the last row (for long time series).
func logTableTail(b *testing.B, t *plot.Table) {
	b.Helper()
	if len(t.X) == 0 {
		return
	}
	i := len(t.X) - 1
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (final row)\n%s=%.5g:", t.Title, t.XLabel, t.X[i])
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %s=%.5g", c.Name, c.Y[i])
	}
	b.Log(sb.String())
}

// BenchmarkTable1ClosedForms regenerates Table 1 (delay-utility families
// with their ϕ and ψ transforms, numerically cross-checked).
func BenchmarkTable1ClosedForms(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiment.Table1(0.05, 50)
	}
	b.Log("\n" + out)
}

// BenchmarkFigure1Utilities regenerates the three delay-utility panels.
func BenchmarkFigure1Utilities(b *testing.B) {
	var tables []*plot.Table
	for i := 0; i < b.N; i++ {
		tables = experiment.Figure1()
	}
	for _, t := range tables {
		logTableTail(b, t)
	}
}

// BenchmarkFigure2Exponent regenerates the optimal-allocation exponent
// curve, fitted from the water-filled relaxed optimum.
func BenchmarkFigure2Exponent(b *testing.B) {
	sc := benchScenario()
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure2(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkFigure3MandateRouting regenerates the mandate-routing
// comparison (expected/observed utility and replica dynamics).
func BenchmarkFigure3MandateRouting(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var tables []*plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiment.Figure3(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, t := range tables {
		logTableTail(b, t)
	}
}

// BenchmarkFigure4Power regenerates Figure 4 (left): loss vs α.
func BenchmarkFigure4Power(b *testing.B) {
	sc := benchScenario()
	alphas := []float64{-2, -1, 0, 0.5}
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure4Power(sc, alphas)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkFigure4Step regenerates Figure 4 (right): loss vs τ.
func BenchmarkFigure4Step(b *testing.B) {
	sc := benchScenario()
	taus := []float64{3, 10, 100, 1000}
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure4Step(sc, taus)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkFigure5TimeSeries regenerates Figure 5a: utility over time on
// the conference trace.
func BenchmarkFigure5TimeSeries(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure5TimeSeries(sc, benchConference(), 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTableTail(b, t)
}

// BenchmarkFigure5StepActual regenerates Figure 5b: loss vs τ on the
// actual (bursty, diurnal) conference trace.
func BenchmarkFigure5StepActual(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	taus := []float64{30, 120, 600}
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure5Step(sc, benchConference(), taus, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkFigure5StepSynthesized regenerates Figure 5c: loss vs τ on the
// memoryless counterpart of the conference trace.
func BenchmarkFigure5StepSynthesized(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	taus := []float64{30, 120, 600}
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure5Step(sc, benchConference(), taus, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkFigure6Power regenerates Figure 6a: loss vs α on the vehicular
// trace.
func BenchmarkFigure6Power(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure6(sc, benchVehicular(), "power", []float64{-1, 0, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkFigure6Step regenerates Figure 6b: loss vs τ on the vehicular
// trace.
func BenchmarkFigure6Step(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure6(sc, benchVehicular(), "step", []float64{30, 120, 600})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkFigure6Exponential regenerates Figure 6c: loss vs ν on the
// vehicular trace.
func BenchmarkFigure6Exponential(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.Figure6(sc, benchVehicular(), "exp", []float64{0.001, 0.01, 0.1})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkAblationCacheSize sweeps ρ (X1a).
func BenchmarkAblationCacheSize(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.AblationCacheSize(sc, []int{2, 5, 10}, utility.Step{Tau: 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkAblationPopularity sweeps ω (X1b).
func BenchmarkAblationPopularity(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.AblationPopularity(sc, []float64{0.5, 1, 2}, utility.Step{Tau: 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkAblationRewriting compares the two QCR replica-accounting
// variants (X2).
func BenchmarkAblationRewriting(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.AblationRewriting(sc, utility.Power{Alpha: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkMeanFieldConvergence integrates the Eq. 7 fluid dynamics (X3).
func BenchmarkMeanFieldConvergence(b *testing.B) {
	sc := benchScenario()
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.MeanFieldConvergence(sc, utility.Power{Alpha: 0}, 5000, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTableTail(b, t)
}

// BenchmarkDynamicDemand flips demand mid-run (X4).
func BenchmarkDynamicDemand(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.DynamicDemand(sc, utility.Step{Tau: 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTableTail(b, t)
}

// BenchmarkDiscreteVsContinuous quantifies the δ → 0 agreement (X5).
func BenchmarkDiscreteVsContinuous(b *testing.B) {
	sc := benchScenario()
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.DiscreteVsContinuous(sc, utility.Exponential{Nu: 0.2}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkOverheadComparison tallies protocol traffic per scheme (X6).
func BenchmarkOverheadComparison(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.OverheadComparison(sc, utility.Power{Alpha: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkMixedCatalog exercises per-item delay-utilities (X7).
func BenchmarkMixedCatalog(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.MixedCatalog(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkDedicatedKiosks runs the dedicated-node case with the neglog
// utility (X8).
func BenchmarkDedicatedKiosks(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.DedicatedKiosks(sc, sc.Nodes/5)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// BenchmarkAdaptiveImpatience learns ν from consumption feedback (X9).
func BenchmarkAdaptiveImpatience(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.AdaptiveImpatience(sc, 0.1)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// benchTrialEngine measures the parallel trial engine end to end: the
// scheme-comparison pipeline (trace generation, QCR/OPT/UNI simulation,
// aggregation) over 8 trials at a fixed worker count. The worker-count
// variants below share this body, so their ns/op ratio is the engine's
// speedup; cmd/agebench runs the same measurement and records it in
// BENCH_trials.json.
func benchTrialEngine(b *testing.B, workers int) {
	sc := benchScenario()
	sc.Trials = 8
	sc.Duration = 1000
	sc.Workers = workers
	schemes := []string{experiment.SchemeQCR, experiment.SchemeOPT, experiment.SchemeUNI}
	b.ReportAllocs()
	b.ResetTimer()
	var cmp *experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = sc.RunComparison(utility.Step{Tau: 10}, sc.HomogeneousSources(), schemes)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range cmp.Schemes {
		b.Logf("%s: utility %.5g", s, cmp.Utility[s].Mean)
	}
}

func BenchmarkTrialEngine1Workers(b *testing.B) { benchTrialEngine(b, 1) }
func BenchmarkTrialEngine4Workers(b *testing.B) { benchTrialEngine(b, 4) }
func BenchmarkTrialEngine8Workers(b *testing.B) { benchTrialEngine(b, 8) }

// BenchmarkBatchVsSequential pits the two trial executors against each
// other on the identical comparison workload: the sequential path
// materializes each trial's trace and simulates the schemes one at a
// time over it; the batch path steps every scheme in lockstep over a
// single shared contact stream (two streaming passes, no contact list).
// The -benchmem bytes/op gap is the materialized trace the batch path
// never builds. Outputs are bit-identical — TestBatchMatchesSequentialDigests
// in internal/experiment pins that — so this measures cost, not different
// work. cmd/agebench runs the same ladder across worker counts and
// records it in BENCH_batch.json.
func BenchmarkBatchVsSequential(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 8
	sc.Duration = 1000
	sc.Workers = 1
	schemes := []string{experiment.SchemeQCR, experiment.SchemeOPT, experiment.SchemeUNI}
	u := utility.Step{Tau: 10}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sc.RunComparisonSequential(u, sc.HomogeneousTraces(), schemes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sc.RunComparison(u, sc.HomogeneousSources(), schemes); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamingVsMaterialized compares the two contact paths end to
// end on the same QCR workload: generate-then-simulate over a
// materialized trace versus the fused streaming pipeline (contacts drawn
// lazily inside sim.Run). The -benchmem bytes/op gap is the contact
// list the streaming path never builds; cmd/agebench records the same
// comparison per-contact in BENCH_contacts.json.
func BenchmarkStreamingVsMaterialized(b *testing.B) {
	sc := experiment.Default()
	sc.Nodes = 300
	sc.Mu = 0.01
	sc.Duration = 1500
	u := utility.Step{Tau: 60}
	b.Run("materialized", func(b *testing.B) {
		gen := sc.HomogeneousTraces()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := gen(sc.Seed)
			if err != nil {
				b.Fatal(err)
			}
			// nil rates: QCR tunes from µ alone, no static competitor here.
			if _, err := sc.RunScheme(experiment.SchemeQCR, u, tr, nil, sc.Mu, 0, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sc.StreamingScale(u, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReactionComparison pits tuned ψ against path replication and
// constant reactions.
func BenchmarkReactionComparison(b *testing.B) {
	sc := benchScenario()
	sc.Trials = 2
	var t *plot.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiment.ReactionComparison(sc, utility.Power{Alpha: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}
