// Package mobility simulates 2-D node movement and extracts proximity
// contacts from it, providing the vehicular substrate of the evaluation:
// the paper's Cabspotting experiment declares two taxis "in contact
// whenever they are less than 200 m apart"; we reproduce that extraction
// rule over a random-waypoint fleet moving in a large area.
package mobility

import (
	"fmt"
	"math"
	"math/rand/v2"

	"impatience/internal/trace"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// RWPConfig parameterizes a random-waypoint fleet. Speeds are in meters
// per minute and pauses in minutes, matching the simulator's time unit.
type RWPConfig struct {
	Nodes    int
	Width    float64 // area width in meters
	Height   float64 // area height in meters
	MinSpeed float64 // > 0, m/min
	MaxSpeed float64 // ≥ MinSpeed, m/min
	MaxPause float64 // ≥ 0, minutes; pause drawn uniformly in [0, MaxPause]
}

// Validate reports configuration errors.
func (c RWPConfig) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("mobility: %d nodes", c.Nodes)
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("mobility: area %gx%g", c.Width, c.Height)
	case c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed:
		return fmt.Errorf("mobility: speed range [%g,%g]", c.MinSpeed, c.MaxSpeed)
	case c.MaxPause < 0:
		return fmt.Errorf("mobility: negative pause %g", c.MaxPause)
	}
	return nil
}

// rwpNode is one node's kinematic state.
type rwpNode struct {
	pos        Point
	dest       Point
	speed      float64 // m/min toward dest; 0 while paused
	pauseUntil float64
}

// RWP is a running random-waypoint simulation. Positions evolve in
// continuous time; Advance moves the clock forward.
type RWP struct {
	cfg   RWPConfig
	rng   *rand.Rand
	nodes []rwpNode
	now   float64
}

// NewRWP creates a fleet with uniformly random initial positions and
// freshly drawn waypoints.
func NewRWP(cfg RWPConfig, rng *rand.Rand) (*RWP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &RWP{cfg: cfg, rng: rng, nodes: make([]rwpNode, cfg.Nodes)}
	for i := range r.nodes {
		r.nodes[i].pos = r.randomPoint()
		r.retarget(&r.nodes[i])
	}
	return r, nil
}

func (r *RWP) randomPoint() Point {
	return Point{X: r.rng.Float64() * r.cfg.Width, Y: r.rng.Float64() * r.cfg.Height}
}

// retarget gives a node a new waypoint and speed.
func (r *RWP) retarget(n *rwpNode) {
	n.dest = r.randomPoint()
	n.speed = r.cfg.MinSpeed + r.rng.Float64()*(r.cfg.MaxSpeed-r.cfg.MinSpeed)
	n.pauseUntil = 0
}

// Now returns the simulation clock in minutes.
func (r *RWP) Now() float64 { return r.now }

// Position returns node i's current position.
func (r *RWP) Position(i int) Point { return r.nodes[i].pos }

// Advance moves the simulation forward by dt minutes, handling waypoint
// arrivals and pauses within the step (a node may complete several short
// legs inside one dt).
func (r *RWP) Advance(dt float64) {
	target := r.now + dt
	for i := range r.nodes {
		r.advanceNode(&r.nodes[i], r.now, target)
	}
	r.now = target
}

func (r *RWP) advanceNode(n *rwpNode, from, to float64) {
	t := from
	for t < to {
		if n.pauseUntil > t {
			// Paused: burn pause time.
			end := math.Min(n.pauseUntil, to)
			t = end
			if t >= to {
				return
			}
			r.retarget(n)
			continue
		}
		d := n.pos.Dist(n.dest)
		if n.speed <= 0 {
			r.retarget(n)
			continue
		}
		eta := d / n.speed
		if t+eta > to {
			// Partial leg.
			frac := (to - t) * n.speed / d
			n.pos.X += (n.dest.X - n.pos.X) * frac
			n.pos.Y += (n.dest.Y - n.pos.Y) * frac
			return
		}
		// Arrive, then pause.
		n.pos = n.dest
		t += eta
		n.pauseUntil = t + r.rng.Float64()*r.cfg.MaxPause
		if n.pauseUntil <= t {
			r.retarget(n)
		}
	}
}

// ExtractContacts runs the fleet for duration minutes, sampling positions
// every sampleInterval, and returns a contact trace with one event per
// encounter start: a pair that transitions from out-of-range to within
// radius meters emits a contact at the sample time. Pairs that remain in
// range produce no further events until they separate and re-approach,
// matching the instantaneous-meeting model of the simulator (a single
// protocol exchange per encounter).
func ExtractContacts(r *RWP, duration, sampleInterval, radius float64) (*trace.Trace, error) {
	if duration <= 0 || sampleInterval <= 0 || radius <= 0 {
		return nil, fmt.Errorf("mobility: invalid extraction params duration=%g interval=%g radius=%g", duration, sampleInterval, radius)
	}
	n := r.cfg.Nodes
	inRange := make([]bool, trace.NumPairs(n))
	tr := &trace.Trace{Nodes: n, Duration: duration}
	start := r.now
	// Initialize the in-range state so pairs that begin adjacent do not
	// fire a spurious event at t=0⁺ ... they do meet, which is fine: count
	// the initial adjacency as a first contact at the first sample.
	for t := sampleInterval; t <= duration+1e-9; t += sampleInterval {
		r.Advance(start + t - r.now)
		for a := 0; a < n; a++ {
			pa := r.nodes[a].pos
			for b := a + 1; b < n; b++ {
				idx := trace.PairIndex(n, a, b)
				close := pa.Dist(r.nodes[b].pos) <= radius
				if close && !inRange[idx] {
					ct := t
					if ct > duration {
						ct = duration
					}
					tr.Contacts = append(tr.Contacts, trace.Contact{T: ct, A: a, B: b})
				}
				inRange[idx] = close
			}
		}
	}
	return tr, nil
}
