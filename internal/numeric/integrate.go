// Package numeric provides the numerical substrate used throughout the
// impatience library: quadrature on finite and semi-infinite intervals,
// root finding, a water-filling solver for separable concave resource
// allocation, and a Runge–Kutta ODE integrator.
//
// Everything here is deterministic and allocation-light; the routines are
// tuned for the integrands that arise from delay-utility transforms
// (smooth, decaying exponentials times slowly varying factors), not as a
// general scientific library.
package numeric

import (
	"errors"
	"math"
)

// DefaultTol is the default absolute tolerance used by the adaptive
// quadrature routines when the caller passes tol <= 0.
const DefaultTol = 1e-10

// maxDepth bounds the recursion of adaptive Simpson integration and
// maxEvals bounds the total number of integrand evaluations per call, so
// that pathological integrands (divergent, wildly oscillatory) terminate
// in bounded time with ErrMaxDepth instead of hanging.
const (
	maxDepth = 50
	maxEvals = 2_000_000
)

// ErrMaxDepth is reported (wrapped) when adaptive refinement hits its
// recursion limit before reaching the requested tolerance.
var ErrMaxDepth = errors.New("numeric: adaptive integration reached maximum depth")

// simpson returns the Simpson's-rule estimate of the integral of f on
// [a, b] given precomputed endpoint and midpoint values.
func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// adaptiveSimpson recursively refines the Simpson estimate until the
// standard error bound |S_left + S_right - S_whole| <= 15 tol holds.
// evals tracks the shared evaluation budget across the whole call tree.
func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int, evals *int) (float64, error) {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm := f(lm)
	frm := f(rm)
	*evals += 2
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*tol || depth >= maxDepth || *evals >= maxEvals {
		var err error
		if math.Abs(delta) > 15*tol {
			err = ErrMaxDepth
		}
		return left + right + delta/15, err
	}
	l, errL := adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth+1, evals)
	r, errR := adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth+1, evals)
	if errL != nil {
		return l + r, errL
	}
	return l + r, errR
}

// Integrate computes ∫_a^b f(t) dt with adaptive Simpson quadrature to
// absolute tolerance tol (DefaultTol if tol <= 0). The endpoints may be
// given in either order; the usual sign convention applies.
func Integrate(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	evals := 0
	v, err := adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 0, &evals)
	return sign * v, err
}

// IntegrateToInf computes ∫_a^∞ f(t) dt for an integrand that decays to
// zero, assuming its characteristic decay scale is of order 1. It is
// IntegrateToInfScale with scale 1.
func IntegrateToInf(f func(float64) float64, a, tol float64) (float64, error) {
	return IntegrateToInfScale(f, a, 1, tol)
}

// IntegrateToInfScale computes ∫_a^∞ f(t) dt for an integrand that decays
// to zero over a characteristic scale (e.g. 1/λ for e^{-λt} factors). It
// maps [a, ∞) onto (0, 1] with t = a + scale·u/(1-u) and integrates the
// transformed integrand adaptively. Supplying the right scale keeps the
// quadrature nodes where the integrand mass actually is; a wrong scale
// degrades accuracy gracefully (more subdivision) rather than failing.
func IntegrateToInfScale(f func(float64) float64, a, scale, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if scale <= 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		scale = 1
	}
	g := func(u float64) float64 {
		if u >= 1 {
			return 0
		}
		den := 1 - u
		t := a + scale*u/den
		v := f(t) * scale / (den * den)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return Integrate(g, 0, 1, tol)
}

// IntegrateSingular computes ∫_0^∞ w(t) dt for an integrand with a
// possible integrable singularity at t = 0 (e.g. the power-family
// densities t^{-α}) and decay over a characteristic scale at infinity
// (e.g. 1/λ for an e^{-λt} factor). The head [0, scale] is integrated
// under the substitution t = scale·u⁴, which flattens singularities up to
// t^{-0.97}; the tail uses the scaled rational transform of
// IntegrateToInfScale. Non-finite integrand values (possible exactly at
// the singular endpoint) are treated as 0, which does not affect the
// value of an integrable singularity.
func IntegrateSingular(w func(float64) float64, scale, tol float64) (float64, error) {
	if scale <= 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		scale = 1
	}
	guard := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	head, errH := Integrate(func(u float64) float64 {
		t := scale * u * u * u * u
		return guard(w(t) * scale * 4 * u * u * u)
	}, 0, 1, tol)
	tail, errT := IntegrateToInfScale(func(t float64) float64 { return guard(w(t)) }, scale, scale, tol)
	if errH != nil {
		return head + tail, errH
	}
	return head + tail, errT
}

// glN is the order of the Gauss–Laguerre rule; nodes and weights are
// computed once at package init by Newton iteration on the Laguerre
// polynomial L_n, the standard construction (cf. Numerical Recipes
// "gaulag" with α = 0).
const glN = 48

var glNodes, glWeights = laguerreRule(glN)

// laguerreRule returns the abscissae and weights of the n-point
// Gauss–Laguerre quadrature rule for weight function e^{-s} on [0, ∞).
func laguerreRule(n int) ([]float64, []float64) {
	x := make([]float64, n)
	w := make([]float64, n)
	fn := float64(n)
	var z float64
	for i := 0; i < n; i++ {
		// Initial guess for the i-th root.
		switch i {
		case 0:
			z = 3.0 / (1 + 2.4*fn)
		case 1:
			z += 15.0 / (1 + 2.5*fn)
		default:
			ai := float64(i - 1)
			z += (1 + 2.55*ai) / (1.9 * ai) * (z - x[i-2])
		}
		// Newton iteration on L_n(z) using the three-term recurrence.
		var pp float64
		for it := 0; it < 200; it++ {
			p1, p2 := 1.0, 0.0
			for j := 1; j <= n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((float64(2*j-1)-z)*p2 - float64(j-1)*p3) / float64(j)
			}
			pp = fn * (p1 - p2) / z // L_n'(z) = n (L_n(z) - L_{n-1}(z)) / z
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) <= 1e-15*z {
				break
			}
		}
		x[i] = z
		// Recompute L_{n-1}(z) at the converged root for the weight.
		p1, p2 := 1.0, 0.0
		for j := 1; j <= n; j++ {
			p3 := p2
			p2 = p1
			p1 = ((float64(2*j-1)-z)*p2 - float64(j-1)*p3) / float64(j)
		}
		pp = fn * (p1 - p2) / z
		w[i] = -1 / (pp * fn * p2)
	}
	return x, w
}

// GaussLaguerre computes ∫_0^∞ e^{-λ t} g(t) dt for λ > 0 using the
// precomputed Gauss–Laguerre rule after the substitution s = λ t. It is
// exact for g polynomial of degree ≤ 2·glN−1 and very accurate for the
// smooth integrands arising from delay-utility transforms. For integrands
// with kinks or atoms use Integrate/IntegrateToInf instead.
func GaussLaguerre(g func(float64) float64, lambda float64) float64 {
	if lambda <= 0 {
		return math.NaN()
	}
	var sum float64
	for k := 0; k < glN; k++ {
		sum += glWeights[k] * g(glNodes[k]/lambda)
	}
	return sum / lambda
}
