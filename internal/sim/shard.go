package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"impatience/internal/trace"
)

// shardChunk is one broadcast unit of the sharded driver: a freshly
// allocated, validated, time-ordered contact block plus the global
// ordinal of its first contact. Chunks are written once by the producer
// and only read by the workers, so sharing them is race-free.
type shardChunk struct {
	base     int64
	contacts []trace.Contact
}

// shardChunkSize balances broadcast overhead (one channel send per
// worker per chunk) against pipeline latency and chunk memory.
const shardChunkSize = 4096

// shardError carries a failure plus its deterministic priority: the
// global contact ordinal it occurred at, and a class that replays the
// serial executor's intra-contact order — stream validation (class −1)
// precedes every runner step of that contact, runner steps happen in
// config order (class = config index), and finish errors (ordinal
// MaxInt64) come after all steps, again in config order.
type shardError struct {
	ord   int64
	class int
	err   error
}

func (e shardError) before(o shardError) bool {
	if e.ord != o.ord {
		return e.ord < o.ord
	}
	return e.class < o.class
}

// RunBatchSharded is RunBatch partitioned across a worker set: the
// shared contact stream is produced (and, for trace.Partitionable
// sources such as the structured rate models, generated in parallel
// sub-streams and re-merged in (T, A, B) order) on a producer pipeline,
// broadcast in chunks, and each worker steps the runners it owns —
// config i belongs to worker i mod W. Because every runner's state and
// RNG streams are private and each consumes the identical validated
// contact sequence, Results[i] is bit-identical to RunBatch's — and
// therefore to Run(cfgs[i]) — at every shard count; shards ≤ 1 is
// exactly RunBatch. Errors are selected by (contact ordinal, config
// index), reproducing the serial executor's first-failure semantics
// regardless of worker scheduling.
func RunBatchSharded(cfgs []Config, contacts trace.Source, shards int) ([]*Result, error) {
	if shards <= 1 {
		return RunBatch(cfgs, contacts)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: empty batch")
	}
	if contacts == nil {
		return nil, fmt.Errorf("sim: nil contact source")
	}
	nodes, duration := contacts.Nodes(), contacts.Duration()
	runners := make([]*runner, len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i] // private copy, as Run takes cfg by value
		if err := validateBatch(&cfg, nodes, duration); err != nil {
			return nil, fmt.Errorf("sim: batch config %d: %w", i, err)
		}
		r, err := buildRunner(&cfg, nodes, duration)
		if err != nil {
			return nil, fmt.Errorf("sim: batch config %d: %w", i, err)
		}
		r.checked = true // the producer validates each contact once
		runners[i] = r
	}

	workers := shards
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	var stop atomic.Bool
	feeds := make([]chan shardChunk, workers)
	for w := range feeds {
		feeds[w] = make(chan shardChunk, 4)
	}

	// Producer: generate → validate → chunk → broadcast. Runs on the
	// caller's goroutine? No — it must overlap with the workers, so it
	// gets its own; the caller just joins everyone at the end.
	var prodErr *shardError
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		defer func() {
			for _, f := range feeds {
				close(f)
			}
		}()
		stream := newShardStream(contacts, shards)
		defer stream.stop()
		prevT := 0.0
		var ord int64
		for prodErr == nil {
			// The source bulk-fills the broadcast chunk in place — no
			// per-contact staging copy. Each chunk is freshly allocated
			// because the workers hold references to broadcast chunks.
			chunk := make([]trace.Contact, shardChunkSize)
			n := stream.fill(chunk)
			if n == 0 {
				break
			}
			valid := 0
			for k := range chunk[:n] {
				if err := trace.CheckStreamContact(chunk[k], prevT, nodes, duration); err != nil {
					prodErr = &shardError{ord: ord + int64(valid), class: -1, err: err}
					break
				}
				prevT = chunk[k].T
				valid++
			}
			// Broadcast the valid prefix even when validation failed
			// mid-chunk: the serial executor steps every contact before the
			// failing one, and the deterministic error selection needs the
			// workers to have seen exactly that prefix.
			if valid > 0 {
				ck := shardChunk{base: ord, contacts: chunk[:valid]}
				for _, f := range feeds {
					f <- ck
				}
				ord += int64(valid)
				if stop.Load() {
					return
				}
			}
		}
		if prodErr == nil {
			if err := stream.err(); err != nil {
				prodErr = &shardError{ord: ord, class: -1, err: err}
			}
		}
	}()

	// Workers: step owned runners over every broadcast contact; on a
	// step error, record it, raise the stop flag, and keep draining the
	// feed so the producer never blocks. Finish errors rank after all
	// step errors (ordinal MaxInt64), matching the serial executor,
	// which only finishes once the whole stream has been stepped.
	results := make([]*Result, len(cfgs))
	workerErrs := make([]*shardError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var fail *shardError
			for ck := range feeds[w] {
				if fail != nil {
					continue // drain
				}
				for j, c := range ck.contacts {
					for idx := w; idx < len(runners); idx += workers {
						if err := runners[idx].step(c); err != nil {
							fail = &shardError{ord: ck.base + int64(j), class: idx, err: err}
							stop.Store(true)
							break
						}
					}
					if fail != nil {
						break
					}
				}
			}
			if fail == nil {
				for idx := w; idx < len(runners); idx += workers {
					res, err := runners[idx].finish()
					if err != nil {
						fail = &shardError{ord: math.MaxInt64, class: idx, err: fmt.Errorf("sim: batch config %d: %w", idx, err)}
						break
					}
					results[idx] = res
				}
			}
			workerErrs[w] = fail
		}(w)
	}
	prodWG.Wait()
	wg.Wait()

	best := prodErr
	for _, we := range workerErrs {
		if we != nil && (best == nil || we.before(*best)) {
			best = we
		}
	}
	if best != nil {
		return nil, best.err
	}
	return results, nil
}

// shardStream adapts the contact source for the producer: when the
// source is trace.Partitionable, generation itself fans out — each
// sub-stream is drained on its own goroutine into a buffered chunk
// channel, and the producer re-merges the chunk heads in (T, A, B)
// order, which by the Partitionable contract reconstructs the canonical
// sequence bit-for-bit. Otherwise next just forwards the source.
type shardStream struct {
	src   trace.Source
	parts []*shardPart
	done  chan struct{}
}

type shardPart struct {
	ch  chan []trace.Contact
	cur []trace.Contact
	i   int
}

// head returns the part's current front contact; ok is false once the
// part is exhausted.
func (p *shardPart) head() (trace.Contact, bool) {
	for p.i >= len(p.cur) {
		cur, ok := <-p.ch
		if !ok {
			return trace.Contact{}, false
		}
		p.cur, p.i = cur, 0
	}
	return p.cur[p.i], true
}

func newShardStream(src trace.Source, shards int) *shardStream {
	s := &shardStream{src: src}
	p, ok := src.(trace.Partitionable)
	if !ok {
		return s
	}
	subs, ok := p.Partition(shards)
	if !ok || len(subs) == 0 {
		return s
	}
	s.done = make(chan struct{})
	s.parts = make([]*shardPart, len(subs))
	for i, sub := range subs {
		part := &shardPart{ch: make(chan []trace.Contact, 2)}
		s.parts[i] = part
		go func(sub trace.Source) {
			defer close(part.ch)
			buf := make([]trace.Contact, 0, shardChunkSize)
			for {
				c, ok := sub.Next()
				if !ok {
					break
				}
				buf = append(buf, c)
				if len(buf) == shardChunkSize {
					select {
					case part.ch <- buf:
					case <-s.done:
						return
					}
					buf = make([]trace.Contact, 0, shardChunkSize)
				}
			}
			if len(buf) > 0 {
				select {
				case part.ch <- buf:
				case <-s.done:
				}
			}
		}(sub)
	}
	return s
}

// next returns the globally next contact: the minimum head across parts
// under (T, A, B) order — the partition sub-streams are few (≤ shard
// count), so a linear scan beats heap bookkeeping.
func (s *shardStream) next() (trace.Contact, bool) {
	if s.parts == nil {
		return s.src.Next()
	}
	bestI := -1
	var bestC trace.Contact
	for i, p := range s.parts {
		c, ok := p.head()
		if !ok {
			continue
		}
		if bestI < 0 || shardContactLess(c, bestC) {
			bestI, bestC = i, c
		}
	}
	if bestI < 0 {
		return trace.Contact{}, false
	}
	s.parts[bestI].i++
	return bestC, true
}

// fill bulk-fills buf with the globally next contacts. The
// non-partitioned path goes through the trace.BulkSource seam (one
// interface call per chunk instead of per contact); the partitioned
// path loops the concrete linear-scan merge, which carries no dispatch
// to elide. Either way the sequence is exactly what repeated next()
// would yield.
func (s *shardStream) fill(buf []trace.Contact) int {
	if s.parts == nil {
		return trace.FillBatch(s.src, buf)
	}
	n := 0
	for n < len(buf) {
		c, ok := s.next()
		if !ok {
			break
		}
		buf[n] = c
		n++
	}
	return n
}

// err surfaces a mid-stream source failure (only possible on the
// non-partitioned path; partitioned sub-streams come from synthetic
// generators, which cannot fail underway).
func (s *shardStream) err() error {
	if s.parts != nil {
		return nil
	}
	if es, ok := s.src.(trace.ErrSource); ok {
		return es.Err()
	}
	return nil
}

// stop releases the part goroutines on early abort.
func (s *shardStream) stop() {
	if s.done != nil {
		close(s.done)
	}
}

// shardContactLess is the canonical (T, A, B) merge order shared with
// the structured rate sources: contacts that compare equal are
// identical values, so the merged sequence is partition-invariant.
func shardContactLess(x, y trace.Contact) bool {
	if x.T != y.T {
		return x.T < y.T
	}
	if x.A != y.A {
		return x.A < y.A
	}
	return x.B < y.B
}
