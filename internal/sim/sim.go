// Package sim is the discrete-event simulator of the paper's evaluation
// (Section 6): given a contact trace (measured or synthetic), a demand
// process, a delay-utility function and a replication policy, it plays
// out request arrivals and node meetings, fulfills requests when a
// requester meets a holder, records the realized delay-utility gains, and
// lets the policy replicate cache content.
//
// The model follows Section 6.1: the population is pure P2P (every node
// is both client and server), meetings are instantaneous but long enough
// for the full protocol exchange, cache replacement is uniformly random
// over non-sticky slots, each item has one sticky replica that cannot be
// evicted, and rewriting is disabled unless the policy enables it.
//
// Those Section-6.1 idealizations can be selectively removed through the
// fault-injection layer (Config.Faults, package internal/faults): nodes
// crash and rejoin empty, meetings lose their content-transfer phase,
// and routed mandates drop in flight. With fault injection disabled the
// simulator is byte-identical to the idealized model for the same seed —
// the fault layer draws from its own RNG stream and every fault code
// path is gated on it being enabled.
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"

	"impatience/internal/adversary"
	"impatience/internal/alloc"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/faults"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// Config parameterizes one simulation run.
type Config struct {
	Rho     int              // cache slots per node
	Utility utility.Function // the population's impatience
	// Utilities optionally gives each item its own delay-utility
	// (Section 3.2); nil entries fall back to Utility.
	Utilities []utility.Function
	Pop       demand.Popularity
	Profile   demand.Profile // optional; uniform if zero value
	// Trace drives meetings and the run duration (the materialized path).
	// Exactly one of Trace and Contacts must be set; a Trace is
	// equivalent to Contacts: tr.Source() and is kept as the fast path
	// the golden digest tests pin bit-for-bit.
	Trace *trace.Trace
	// Contacts streams the meetings instead of materializing them:
	// generation fuses with simulation, so a huge-duration run holds the
	// source's O(N²) rate state rather than the O(N²·µ·T) contact list.
	// Streaming sources must honor the trace.Source contract
	// (time-ordered, in-range contacts); every streamed contact is
	// re-checked cheaply as it is consumed, and sources implementing
	// trace.ErrSource have their terminal error propagated.
	Contacts trace.Source
	Policy   core.Policy // replication policy (core.Static for fixed allocations)

	// Initial is the starting allocation (counts per item). nil means the
	// UNI allocation. For static policies this is the allocation under
	// test and stays fixed for the whole run.
	Initial alloc.Counts
	// InitialPlacement, if non-nil, pins the exact item-to-node placement
	// (server index = node id) instead of deriving one from Initial. It
	// is how the heterogeneous OPT competitor keeps the node assignment
	// its submodular greedy chose. Requires NoSticky.
	InitialPlacement *alloc.Placement
	// Sticky pins one replica of every item at node (item mod N), making
	// the item unlosable (Section 6.1). It is forced off for static
	// policies (their caches never change) and on for QCR-style policies
	// unless explicitly disabled with NoSticky.
	NoSticky bool

	Seed uint64

	// ReferenceKernel disables the devirtualized contact kernel and runs
	// the pre-batching reference hot path instead: contacts are consumed
	// one Source.Next interface call at a time, every delay-utility is
	// evaluated through the utility.Function interface, and the policy
	// hooks are always invoked — even when they are provable no-ops. The
	// two kernels are bit-identical by construction (the fast paths
	// compute the same float expressions in the same order and only elide
	// calls to guaranteed no-ops), which the kernel benchmark's in-run
	// digest-equality gate and the sim digest tests pin. It exists for
	// that before/after measurement and for equivalence tests; production
	// callers leave it false.
	ReferenceKernel bool

	// WarmupFrac is the fraction of the run excluded from the average
	// utility (the allocation needs time to converge). 0 means the
	// default of 0.2; pass a negative value for no warmup at all.
	WarmupFrac float64
	// BinWidth enables time series: realized gain, fulfillments and
	// (optionally) replica-count snapshots per bin of this width. 0
	// disables series collection.
	BinWidth float64
	// RecordCounts additionally snapshots the full per-item replica
	// counts at every bin boundary (needed for Figure 3c/3d).
	RecordCounts bool
	// RecordDelays collects per-item conformance instrumentation after
	// warmup: the fulfillment-delay samples (ItemDelays, one slice per
	// item, 0 for immediate local fulfillments), the per-item realized
	// gain (ItemGains) and fulfillment counts (ItemFulfillments). The
	// theory-vs-simulation oracle (internal/oracle) KS-tests the delay
	// samples against the exponential meeting model and checks the
	// per-item gain rates against the closed-form welfare terms. The new
	// Result fields are deliberately excluded from Result.Digest, so
	// enabling them cannot move any golden.
	RecordDelays bool

	// DemandSwitch, if non-nil, replaces the popularity at time
	// DemandSwitchTime (the dynamic-demand extension).
	DemandSwitch     *demand.Popularity
	DemandSwitchTime float64

	// Faults enables fault injection: node churn (crash/rejoin with the
	// whole cache and pending mandates lost), truncated meetings (the
	// content-transfer phase fails with probability PLoss), and in-flight
	// mandate drops at routing handoffs (PDrop). nil — or a config whose
	// Enabled() is false — is a strict no-op: the run is byte-identical
	// to one without the fault layer. When the run uses sticky replicas,
	// the hardening re-pins an item's sticky copy at the next node that
	// serves (or locally fulfills) it after the original holder crashed.
	Faults *faults.Config

	// Adversary enables the misbehavior-and-drift layer: dishonest nodes
	// inflating reported query counters, free-riders that consume content
	// but never serve or carry mandates, and scheduled popularity churn
	// (flash crowds). nil — or a config whose Enabled() is false — is a
	// strict no-op: the run is byte-identical to one without the layer.
	// It composes with Faults: both draw from private RNG streams and can
	// be active together, in Run and RunBatch alike.
	Adversary *adversary.Config

	// ServerCount switches the population to the paper's dedicated-node
	// case (C ∩ S = ∅): nodes [0, ServerCount) are cache-only servers
	// (kiosks, throwboxes, buses) and the remaining nodes are client-only
	// requesters with no cache. 0 (the default) is the pure-P2P case
	// where every node is both. Dedicated mode admits utilities with
	// unbounded h(0⁺) (inverse power, neglog) since immediate local
	// fulfillment cannot occur.
	ServerCount int
}

// Bin is one time-series bucket.
type Bin struct {
	T0, T1       float64
	Gain         float64 // Σ h(age) over fulfillments in the bin
	Fulfillments int
	Mandates     int          // pending mandates at T1 (policies that expose them)
	Counts       alloc.Counts // replica snapshot at T1 when RecordCounts
}

// Result summarizes a run.
type Result struct {
	Duration     float64
	MeasureStart float64 // warmup boundary
	// TotalGain is Σ h(age) over fulfillments after warmup;
	// AvgUtilityRate is TotalGain divided by the measured span — directly
	// comparable to the analytic welfare U(x), which is a gain rate.
	TotalGain      float64
	AvgUtilityRate float64
	Fulfillments   int // fulfillments after warmup
	Immediate      int // immediate (local-cache) fulfillments after warmup
	Meetings       int
	ReplicasMade   int // successful cache writes by the policy
	FinalCounts    alloc.Counts
	Outstanding    int // unfulfilled requests at the end
	// OutstandingCost is the accrued waiting cost Σ min(0, h(age)) of the
	// requests still open at the horizon, plus the same charge for
	// requests wiped by node crashes (already included in TotalGain).
	OutstandingCost float64
	Bins            []Bin
	// ItemDelays, ItemGains and ItemFulfillments are the per-item
	// conformance instrumentation collected after warmup when
	// Config.RecordDelays is set (nil otherwise): fulfillment-delay
	// samples (0 for immediate local fulfillments), summed realized gain
	// and fulfillment counts, indexed by item. They are NOT part of
	// Result.Digest — the digest-stability regression test pins that
	// enabling them leaves every golden digest untouched.
	ItemDelays       [][]float64
	ItemGains        []float64
	ItemFulfillments []int
	Overhead         Overhead
	// Faults tallies injected faults and hardening reactions; nil when
	// fault injection is disabled.
	Faults *faults.Tally
	// Adversary tallies injected misbehavior and the hardened reaction's
	// interventions; nil when the adversary layer is disabled.
	Adversary *adversary.Tally
	// Hybrid tallies the hybrid-fidelity engine's accounting (fluid
	// fraction, controller windows, demotions); nil for every run that
	// did not go through RunHybrid, so plain runs digest identically to
	// builds without the engine.
	Hybrid *HybridTally
}

// Overhead tallies the communication cost of a run, in protocol units
// rather than bytes (content items dwarf everything else; mandates are a
// few bytes).
type Overhead struct {
	// MetadataMsgs counts cache/request summaries: two per meeting.
	MetadataMsgs int
	// ContentTransfers counts item payloads sent over the air:
	// non-immediate fulfillments plus replicas created by the policy.
	ContentTransfers int
	// MandateTransfers counts mandates moved between nodes by routing
	// (policies exposing MandatesMoved; zero otherwise).
	MandateTransfers int
}

// state is the live simulation state; it implements core.Cache.
type state struct {
	cfg     *Config
	items   int
	nodes   int
	servers int // nodes [0, servers) have caches; == nodes in pure P2P
	rho     int
	rng     *rand.Rand
	// ufns caches each item's resolved delay-utility: one slice read on
	// the warm paths instead of re-resolving the Utilities override
	// against the default every time. Built once at setup; the resolution
	// rule itself lives in resolveUtility.
	ufns []utility.Function
	// uks is the monomorphic fast path over ufns: each item's utility
	// resolved to a flat family-tagged kernel (see kernel.go), so the
	// per-fulfillment h(age) and h(0⁺) evaluations in fulfillSide,
	// handleArrival, crash and the horizon accounting are a tag switch
	// instead of an interface call. Under Config.ReferenceKernel every
	// kernel is the generic arm, i.e. exactly the old interface path.
	uks     []utilKernel
	slots   [][]int32 // per node: item id per slot, -1 when empty
	stickyS [][]bool  // per node: slot pinned?
	has     []bool    // node*items + item
	used    []int     // per node: occupied slots (occupancy counter)
	counts  []int     // replicas per item
	stickyN []int     // per item: node holding the pinned replica, -1
	writes  int

	// Outstanding requests, laid out for the meeting hot path: the open
	// requests for (node, item) live at reqs[node*items+item], and
	// reqItems[node] is the sorted list of items with at least one open
	// request there. The list is maintained incrementally on arrival,
	// fulfillment and crash, so a meeting iterates it directly instead of
	// rebuilding (and sorting) a key set from a map — the profiler's
	// dominant cost before this layout.
	reqs     [][]request
	reqItems [][]int32

	// Fault-injection state; inj is nil when the layer is off, and every
	// fault code path below is gated on it.
	inj       *faults.Injector
	tally     faults.Tally
	down      []bool // per node: currently crashed?
	truncated bool   // current meeting lost its content-transfer phase

	// Adversary state; adv is nil when the layer is off, and every
	// misbehavior code path below is gated on it.
	adv    *adversary.Injector
	atally adversary.Tally
}

type request struct {
	t0      float64
	queries int
}

// Nodes implements core.Cache.
func (s *state) Nodes() int { return s.nodes }

// Items implements core.Cache.
func (s *state) Items() int { return s.items }

// Has implements core.Cache.
func (s *state) Has(node, item int) bool { return s.has[node*s.items+item] }

// StickyNode implements core.Cache.
func (s *state) StickyNode(item int) int { return s.stickyN[item] }

// Count implements core.Cache: replicas of item across all caches, from
// the counter maintained by place/Write/crash (O(1)).
func (s *state) Count(item int) int { return s.counts[item] }

// Write implements core.Cache: random replacement over non-sticky slots.
// During a truncated meeting the content payload cannot cross, so every
// write fails and the driving mandate stays pending for a later retry.
// A free-riding node refuses to donate cache space to the protocol, so
// policy writes onto it fail too.
func (s *state) Write(node, item int) bool {
	if s.truncated {
		return false
	}
	if s.adv != nil && s.adv.FreeRider(node) {
		s.atally.RefusedWrites++
		return false
	}
	if s.Has(node, item) {
		return false
	}
	// Reservoir-sample a uniformly random non-sticky slot.
	chosen := -1
	seen := 0
	for k := range s.slots[node] {
		if s.stickyS[node][k] {
			continue
		}
		seen++
		if s.rng.IntN(seen) == 0 {
			chosen = k
		}
	}
	if chosen < 0 {
		return false
	}
	if old := s.slots[node][chosen]; old >= 0 {
		s.has[node*s.items+int(old)] = false
		s.counts[old]--
	} else {
		s.used[node]++
	}
	s.slots[node][chosen] = int32(item)
	s.has[node*s.items+item] = true
	s.counts[item]++
	s.writes++
	return true
}

// place puts item into a specific empty slot during initialization.
func (s *state) place(node, item int, sticky bool) error {
	if s.Has(node, item) {
		return fmt.Errorf("sim: node %d already holds item %d", node, item)
	}
	for k := range s.slots[node] {
		if s.slots[node][k] < 0 {
			s.slots[node][k] = int32(item)
			s.stickyS[node][k] = sticky
			s.has[node*s.items+item] = true
			s.used[node]++
			s.counts[item]++
			if sticky {
				s.stickyN[item] = node
			}
			return nil
		}
	}
	return fmt.Errorf("sim: node %d has no free slot for item %d", node, item)
}

// utilityFor returns item i's delay-utility from the per-item cache.
func (s *state) utilityFor(i int) utility.Function { return s.ufns[i] }

// resolveUtility is the resolution rule behind the utilityFor cache:
// the per-item override when present, the population default otherwise.
// Kept as a standalone function so the cache-vs-resolve micro-benchmark
// can measure exactly what the hot path stopped paying.
func resolveUtility(cfg *Config, i int) utility.Function {
	if i < len(cfg.Utilities) && cfg.Utilities[i] != nil {
		return cfg.Utilities[i]
	}
	return cfg.Utility
}

// freeSlots counts empty slots at a node, from the occupancy counter
// maintained by place/Write/crash (O(1), no slot-row walk).
func (s *state) freeSlots(node int) int {
	return len(s.slots[node]) - s.used[node]
}

// addRequest registers one open request for (node, item), keeping the
// node's sorted outstanding-item list in step.
func (s *state) addRequest(node, item int, t float64) {
	idx := node*s.items + item
	if len(s.reqs[idx]) == 0 {
		s.reqItems[node] = insertSorted(s.reqItems[node], int32(item))
		if s.reqs[idx] == nil {
			// First request ever for (node, item): start with room for a
			// small queue so arrival churn appends into retained storage
			// instead of growing 1→2→4. Fulfillment and crash truncate to
			// length 0 but keep the capacity, which is what makes the
			// fused per-contact path allocation-free in steady state (see
			// the AllocsPerRun regression test).
			s.reqs[idx] = make([]request, 0, 4)
		}
	}
	s.reqs[idx] = append(s.reqs[idx], request{t0: t})
}

// insertSorted inserts v into an ascending list, keeping it sorted.
// No-op if already present (callers guard, but stay safe).
func insertSorted(list []int32, v int32) []int32 {
	i, found := slices.BinarySearch(list, v)
	if found {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	return list
}

// reseed re-pins item's sticky replica at a node currently holding it —
// the hardening that keeps items from going extinct once their original
// sticky holder crashed. Called on the first fulfillment of the item
// after the loss.
func (s *state) reseed(node, item int) {
	for k, it := range s.slots[node] {
		if int(it) == item {
			s.stickyS[node][k] = true
			s.stickyN[item] = node
			s.tally.StickyReseeded++
			return
		}
	}
}

// crash wipes a node: its whole cache (sticky replicas included), its
// open requests, and — via core.CrashAware — any pending mandates the
// policy parked there. The accrued waiting cost of the wiped requests is
// charged exactly like the horizon accounting for outstanding requests.
func (s *state) crash(n int, t float64, res *Result) {
	s.down[n] = true
	s.tally.Crashes++
	for k := range s.slots[n] {
		it := s.slots[n][k]
		if it < 0 {
			continue
		}
		s.has[n*s.items+int(it)] = false
		s.counts[it]--
		s.tally.ReplicasLost++
		if s.stickyS[n][k] {
			s.stickyS[n][k] = false
			s.stickyN[it] = -1
			s.tally.StickyLost++
		}
		s.slots[n][k] = -1
	}
	s.used[n] = 0
	// Sorted item order (the outstanding-item list is kept sorted): the
	// float summation order — and hence the Result — stays reproducible.
	for _, it := range s.reqItems[n] {
		item := int(it)
		idx := n*s.items + item
		uk := &s.uks[item]
		for _, rq := range s.reqs[idx] {
			s.tally.RequestsLost++
			age := t - rq.t0
			if age <= 0 {
				age = 1e-9
			}
			if h := uk.H(age); h < 0 && rq.t0 >= res.MeasureStart {
				res.TotalGain += h
				res.OutstandingCost += h
			}
		}
		s.reqs[idx] = s.reqs[idx][:0]
	}
	s.reqItems[n] = s.reqItems[n][:0]
	if ca, ok := s.cfg.Policy.(core.CrashAware); ok {
		s.tally.MandatesCrashed += ca.OnCrash(n)
	}
}

// applyFault processes one churn event. Events are idempotent: a crash
// of an already-down node or a rejoin of an up node is ignored (the
// per-node churn clock and the mass-crash overlay can overlap).
func (s *state) applyFault(ev faults.Event, res *Result) {
	if ev.Down {
		if !s.down[ev.Node] {
			s.crash(ev.Node, ev.T, res)
		}
	} else if s.down[ev.Node] {
		s.down[ev.Node] = false
		s.tally.Rejoins++
	}
}

// runner is one simulation in flight: the live caches plus every loop
// variable of the event loop, factored out of Run so the per-contact hot
// path (step) is a plain method — the allocation regression tests drive
// it contact by contact, and both the materialized and the streaming
// contact paths share it verbatim.
type runner struct {
	cfg *Config
	s   *state
	res *Result
	mat *trace.Trace // materialized path; nil when streaming Contacts

	proc     *demand.Process
	next     demand.Request
	ok       bool
	switched bool

	// Popularity-churn schedule (adversary layer); applied through the
	// demand process like DemandSwitch, one cursor step per shift.
	shifts demand.Schedule
	si     int

	fevents []faults.Event
	fi      int

	bins   []Bin
	binIdx int

	mc          mandateCounter
	hasMandates bool

	totalFulfilled, totalImmediate int // whole-run counts for overhead

	nodes    int
	duration float64
	prevT    float64 // last consumed contact time (streaming sanity check)
	// checked marks the contact feed as already contract-validated —
	// either a materialized trace (validated up front) or the batch
	// executor's shared stream (checked once per contact by the driver,
	// not once per runner) — so step skips the per-contact re-check.
	checked bool
	// passive elides the policy hooks: set when the policy declares both
	// its hooks no-ops (core.IsPassive), the adversary layer is off (its
	// tallies piggyback on the hook call sites), and the reference kernel
	// is not forced. Eliding a call to a guaranteed no-op is invisible to
	// every Result field — the fast/reference digest tests pin it.
	passive bool
	// hasBins gates the per-contact flushTo call: with no time series the
	// call is a guaranteed no-op (flushTo returns immediately when
	// BinWidth ≤ 0), but it is not inlinable, so the fast path skips it
	// entirely. Reference mode keeps the call to replay the old shape.
	hasBins bool
}

// contactBatchSize is the reusable buffer the batched kernel streams
// contacts through: large enough to amortize the per-batch interface
// call and the source's per-call state loads to nothing, small enough
// (96 KiB) to stay cache- and memory-friendly. It matches the sharded
// executor's chunk size.
const contactBatchSize = 4096

// Run executes the simulation: set-up, one step per contact in time
// order, then the horizon accounting. The two contact paths are
// behavior-identical — a materialized trace is simply the pre-validated
// fast path, which the golden digest tests pin bit-for-bit.
func Run(cfg Config) (*Result, error) {
	r, err := newRunner(&cfg)
	if err != nil {
		return nil, err
	}
	if r.mat != nil {
		for _, c := range r.mat.Contacts {
			if err := r.step(c); err != nil {
				return nil, err
			}
		}
	} else if err := r.drain(cfg.Contacts); err != nil {
		return nil, err
	}
	return r.finish()
}

// drain consumes a streaming contact source to exhaustion: batches of
// contactBatchSize through the trace.BulkSource seam on the fast path
// (buffering only — the source draws the identical contact sequence, so
// digests are unchanged), one Next interface call per contact under
// Config.ReferenceKernel. A terminal source error is propagated either
// way.
func (r *runner) drain(src trace.Source) error {
	if r.cfg.ReferenceKernel {
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			if err := r.step(c); err != nil {
				return err
			}
		}
	} else {
		buf := make([]trace.Contact, contactBatchSize)
		for {
			n := trace.FillBatch(src, buf)
			if n == 0 {
				break
			}
			for i := range buf[:n] {
				if err := r.step(buf[i]); err != nil {
					return err
				}
			}
		}
	}
	if es, ok := src.(trace.ErrSource); ok {
		if err := es.Err(); err != nil {
			return err
		}
	}
	return nil
}

// newRunner validates the configuration and builds the initial caches,
// demand process, fault timeline and time-series bookkeeping.
func newRunner(cfg *Config) (*runner, error) {
	nodes, duration, err := validate(cfg)
	if err != nil {
		return nil, err
	}
	return buildRunner(cfg, nodes, duration)
}

// buildRunner constructs the runner for an already-validated config and
// resolved (nodes, duration). It is shared by the single-run entry point
// (newRunner) and the batch executor, whose runners all take their
// dimensions from the one shared contact source.
func buildRunner(cfg *Config, nodes int, duration float64) (*runner, error) {
	items := cfg.Pop.Items()
	servers := nodes
	if cfg.ServerCount > 0 {
		servers = cfg.ServerCount
	}
	s := &state{
		cfg:      cfg,
		items:    items,
		nodes:    nodes,
		servers:  servers,
		rho:      cfg.Rho,
		rng:      rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5eed0fca11)),
		slots:    make([][]int32, nodes),
		stickyS:  make([][]bool, nodes),
		has:      make([]bool, nodes*items),
		used:     make([]int, nodes),
		counts:   make([]int, items),
		stickyN:  make([]int, items),
		reqs:     make([][]request, nodes*items),
		reqItems: make([][]int32, nodes),
	}
	for n := 0; n < nodes; n++ {
		slots := cfg.Rho
		if n >= servers {
			slots = 0 // dedicated clients carry no cache
		}
		s.slots[n] = make([]int32, slots)
		for k := range s.slots[n] {
			s.slots[n][k] = -1
		}
		s.stickyS[n] = make([]bool, slots)
	}
	for i := range s.stickyN {
		s.stickyN[i] = -1
	}
	s.ufns = make([]utility.Function, items)
	s.uks = make([]utilKernel, items)
	for i := range s.ufns {
		s.ufns[i] = resolveUtility(cfg, i)
		s.uks[i] = kernelFor(s.ufns[i], cfg.ReferenceKernel)
	}
	if err := s.initCaches(); err != nil {
		return nil, err
	}

	profile := cfg.Profile
	if len(profile.P) == 0 {
		if cfg.ServerCount > 0 {
			// Demand arises only at the client nodes [servers, nodes).
			profile = demand.Profile{P: make([][]float64, items)}
			clients := nodes - servers
			for i := range profile.P {
				row := make([]float64, nodes)
				for n := servers; n < nodes; n++ {
					row[n] = 1 / float64(clients)
				}
				profile.P[i] = row
			}
		} else {
			profile = demand.UniformProfile(items, nodes)
		}
	} else if cfg.ServerCount > 0 {
		for i, row := range profile.P {
			for n := 0; n < servers && n < len(row); n++ {
				if row[n] > 0 {
					return nil, fmt.Errorf("sim: profile gives demand to dedicated server %d (item %d)", n, i)
				}
			}
		}
	}
	proc, err := demand.NewProcess(cfg.Pop, profile, rand.New(rand.NewPCG(cfg.Seed^0xdeadcafe, cfg.Seed+77)))
	if err != nil {
		return nil, err
	}

	// Fault injection: a nil injector keeps every fault path dormant.
	s.inj, err = faults.New(cfg.Faults)
	if err != nil {
		return nil, err
	}
	var fevents []faults.Event
	if s.inj != nil {
		s.down = make([]bool, nodes)
		fevents = s.inj.Timeline(nodes, duration)
		if fa, ok := cfg.Policy.(core.FaultAware); ok {
			fa.SetDisruptor(s.inj)
		}
	}

	// Adversary layer: a nil injector keeps every misbehavior path
	// dormant; role assignment spends its private RNG stream entirely at
	// construction, so the layer never perturbs the other streams.
	s.adv, err = adversary.New(cfg.Adversary, nodes, items)
	if err != nil {
		return nil, err
	}
	var shifts demand.Schedule
	if s.adv != nil {
		shifts = s.adv.Schedule()
		s.atally.DishonestNodes, s.atally.FreeRiders = s.adv.Roles()
		if aa, ok := cfg.Policy.(core.AdversaryAware); ok {
			aa.SetMisbehavior(s.adv)
		}
	}

	cfg.Policy.Init(s)

	res := &Result{
		Duration:     duration,
		MeasureStart: cfg.WarmupFrac * duration,
		FinalCounts:  make(alloc.Counts, items),
	}
	if cfg.RecordDelays {
		res.ItemDelays = make([][]float64, items)
		res.ItemGains = make([]float64, items)
		res.ItemFulfillments = make([]int, items)
		// Size each item's delay buffer for its expected post-warmup
		// sample count (one sample per fulfillment, at most one per
		// request): mean demand over the measured span plus a 4σ Poisson
		// margin. In steady state record then appends into retained
		// storage instead of regrowing 1→2→4→…, which is what the
		// AllocsPerRun regression test pins; the cap keeps pathological
		// durations from turning the margin into a giant up-front arena.
		span := duration - res.MeasureStart
		for i := range res.ItemDelays {
			mean := cfg.Pop.Rates[i] * span
			capHint := int(mean+4*math.Sqrt(mean)) + 8
			if capHint > 1<<16 {
				capHint = 1 << 16
			}
			res.ItemDelays[i] = make([]float64, 0, capHint)
		}
	}
	r := &runner{
		cfg:      cfg,
		s:        s,
		res:      res,
		mat:      cfg.Trace,
		checked:  cfg.Trace != nil,
		proc:     proc,
		switched: cfg.DemandSwitch == nil,
		shifts:   shifts,
		fevents:  fevents,
		binIdx:   -1,
		nodes:    nodes,
		duration: duration,
	}
	if cfg.BinWidth > 0 {
		// The whole time series is appended bin by bin (flushTo); its
		// final length is known up front, so reserve it once and keep the
		// batch steady state allocation-free.
		r.bins = make([]Bin, 0, int(duration/cfg.BinWidth)+2)
	}
	r.mc, r.hasMandates = cfg.Policy.(mandateCounter)
	r.passive = core.IsPassive(cfg.Policy) && s.adv == nil && !cfg.ReferenceKernel
	r.hasBins = cfg.BinWidth > 0 || cfg.ReferenceKernel
	r.next, r.ok = proc.Next()
	return r, nil
}

// flushTo advances the time-series bins up to time t.
func (r *runner) flushTo(t float64) {
	cfg := r.cfg
	if cfg.BinWidth <= 0 {
		return
	}
	for target := int(t / cfg.BinWidth); r.binIdx < target; {
		if r.binIdx >= 0 && r.binIdx < len(r.bins) {
			// Finalize the closing bin with snapshots. The snapshot copies
			// straight from the live counters — one allocation per bin, not
			// two through an intermediate conversion.
			if cfg.RecordCounts {
				c := make(alloc.Counts, len(r.s.counts))
				copy(c, r.s.counts)
				r.bins[r.binIdx].Counts = c
			}
			if r.hasMandates {
				r.bins[r.binIdx].Mandates = r.mc.TotalMandates()
			}
		}
		r.binIdx++
		r.bins = append(r.bins, Bin{T0: float64(r.binIdx) * cfg.BinWidth, T1: float64(r.binIdx+1) * cfg.BinWidth})
	}
}

// record books one fulfillment of item with the given delay (0 for an
// immediate local fulfillment).
func (r *runner) record(t, gain float64, item int, delay float64, immediate bool) {
	r.totalFulfilled++
	if immediate {
		r.totalImmediate++
	}
	if r.cfg.BinWidth > 0 {
		r.flushTo(t)
		r.bins[r.binIdx].Gain += gain
		r.bins[r.binIdx].Fulfillments++
	}
	if t >= r.res.MeasureStart {
		r.res.TotalGain += gain
		r.res.Fulfillments++
		if immediate {
			r.res.Immediate++
		}
		if r.cfg.RecordDelays {
			r.res.ItemDelays[item] = append(r.res.ItemDelays[item], delay)
			r.res.ItemGains[item] += gain
			r.res.ItemFulfillments[item]++
		}
	}
}

// handleArrival processes one demand-process request.
func (r *runner) handleArrival(rq demand.Request) {
	s := r.s
	if s.inj != nil && s.down[rq.Node] {
		// The device is off: the request is never issued.
		s.tally.DroppedArrivals++
		return
	}
	if s.Has(rq.Node, rq.Item) {
		// Pure P2P immediate fulfillment from the local cache.
		r.record(rq.T, s.uks[rq.Item].H0(), rq.Item, 0, true)
		if s.inj != nil && !r.cfg.NoSticky && s.stickyN[rq.Item] < 0 {
			s.reseed(rq.Node, rq.Item)
		}
		if r.passive {
			// Static policy, no adversary: OnFulfill is a no-op, skip the
			// virtual call (and the role lookup it would precede).
			return
		}
		if s.adv != nil && s.adv.FreeRider(rq.Node) {
			// A free-rider consumes without running the protocol.
			s.atally.SuppressedReactions++
			return
		}
		r.cfg.Policy.OnFulfill(s, rq.Node, rq.Node, rq.Item, 0, 0, rq.T)
		return
	}
	s.addRequest(rq.Node, rq.Item, rq.T)
}

// fulfillSide advances node n's requests given it met peer: every
// outstanding request queries the peer (counter++); requests for items
// the peer holds are all fulfilled. The node's outstanding-item list
// is already sorted (kept so incrementally), so this iterates it in
// place — in the same deterministic item order as before — without
// the per-meeting key collection and sort the profiler flagged.
func (r *runner) fulfillSide(n, peer int, t float64) {
	s := r.s
	list := s.reqItems[n]
	if len(list) == 0 {
		return
	}
	base := n * s.items
	// Misbehavior roles for this side of the meeting, resolved once.
	var peerRefuses, nFreeRides, nDishonest bool
	if s.adv != nil {
		peerRefuses = s.adv.FreeRider(peer)
		nFreeRides = s.adv.FreeRider(n)
		nDishonest = s.adv.Dishonest(n)
	}
	for i := 0; i < len(list); {
		item := int(list[i])
		pending := s.reqs[base+item]
		// A truncated meeting completes the metadata exchange (the
		// query counters advance) but loses the item payload: the
		// request stays open and retries at the next meeting with a
		// holder. A free-riding peer denies holding the item outright:
		// the request stays open and the counter advances, exactly as
		// if the peer's cache missed.
		if s.Has(peer, item) && !s.truncated && !peerRefuses {
			uk := &s.uks[item]
			if r.passive {
				// Static policy, no adversary: the role switch is dead and
				// OnFulfill is a no-op — record the fulfillments without
				// the per-request virtual call.
				for _, rq := range pending {
					age := t - rq.t0
					r.record(t, uk.H(age), item, age, false)
				}
			} else {
				for _, rq := range pending {
					q := rq.queries + 1
					age := t - rq.t0
					r.record(t, uk.H(age), item, age, false)
					switch {
					case nFreeRides:
						// A free-rider consumes without running the protocol.
						s.atally.SuppressedReactions++
						continue
					case nDishonest:
						if inflated := s.adv.Inflate(q); inflated != q {
							q = inflated
							s.atally.InflatedReports++
						}
					}
					r.cfg.Policy.OnFulfill(s, n, peer, item, q, age, t)
				}
			}
			if s.inj != nil && !s.cfg.NoSticky && s.stickyN[item] < 0 {
				s.reseed(peer, item)
			}
			s.reqs[base+item] = pending[:0]
			copy(list[i:], list[i+1:])
			list = list[:len(list)-1]
		} else {
			if peerRefuses && s.Has(peer, item) && !s.truncated {
				s.atally.RefusedServes++
			}
			for k := range pending {
				if pending[k].queries < core.MaxQueryCount {
					pending[k].queries++
				}
			}
			i++
		}
	}
	s.reqItems[n] = list
}

// advanceTo interleaves request arrivals and churn events in time
// order up to the given horizon (the next contact, or the end of the
// trace). With fault injection off there are no churn events and this
// reduces exactly to the original arrival drain.
func (r *runner) advanceTo(horizon float64) error {
	for {
		if r.fi < len(r.fevents) && r.fevents[r.fi].T <= horizon &&
			(!r.ok || r.next.T > r.fevents[r.fi].T) {
			r.s.applyFault(r.fevents[r.fi], r.res)
			r.fi++
			continue
		}
		if r.ok && r.next.T <= horizon {
			if !r.switched && r.next.T >= r.cfg.DemandSwitchTime {
				if err := r.proc.SetPopularity(*r.cfg.DemandSwitch); err != nil {
					return err
				}
				r.switched = true
			}
			for r.si < len(r.shifts) && r.next.T >= r.shifts[r.si].T {
				if err := r.proc.SetPopularity(r.shifts[r.si].Pop); err != nil {
					return err
				}
				r.s.atally.DemandShifts++
				r.si++
			}
			r.handleArrival(r.next)
			r.next, r.ok = r.proc.Next()
			continue
		}
		return nil
	}
}

// step consumes one contact: the fused per-contact hot path shared by the
// materialized and streaming paths. In steady state (no new (node, item)
// request queues, no time series) it performs zero heap allocations —
// pinned by the AllocsPerRun regression test.
func (r *runner) step(c trace.Contact) error {
	if !r.checked {
		// Streamed contacts cannot be validated up front; check each one
		// as it is consumed (comparisons only, nothing allocated).
		if err := trace.CheckStreamContact(c, r.prevT, r.nodes, r.duration); err != nil {
			return err
		}
		r.prevT = c.T
	}
	// Inline advanceTo's first-iteration test: when no churn event and no
	// arrival is due before this contact — the common case at realistic
	// demand — the (non-inlinable) call is skipped outright. The guard is
	// exactly the loop's own exit condition, so behavior is identical;
	// reference mode keeps the unconditional call of the old shape.
	if r.cfg.ReferenceKernel ||
		(r.fi < len(r.fevents) && r.fevents[r.fi].T <= c.T) || (r.ok && r.next.T <= c.T) {
		if err := r.advanceTo(c.T); err != nil {
			return err
		}
	}
	if r.hasBins {
		r.flushTo(c.T)
	}
	s := r.s
	if s.inj != nil && (s.down[c.A] || s.down[c.B]) {
		// A crashed node cannot meet anyone; the contact is lost.
		s.tally.SkippedContacts++
		return nil
	}
	r.res.Meetings++
	if s.inj != nil && s.inj.TruncateMeeting() {
		s.truncated = true
		s.tally.TruncatedMeetings++
	}
	if r.cfg.ReferenceKernel {
		// Reference mode replays the pre-devirtualized call shape exactly:
		// unconditional fulfillSide calls and the virtual OnMeeting hook.
		r.fulfillSide(c.A, c.B, c.T)
		r.fulfillSide(c.B, c.A, c.T)
		r.cfg.Policy.OnMeeting(s, c.A, c.B, c.T)
	} else {
		// A side with no outstanding requests has nothing to fulfill;
		// skipping the call also skips its adversary role lookups. With a
		// passive policy OnMeeting is a no-op and the virtual call is
		// elided. Both cuts are behavior-identical: fulfillSide on an empty
		// list returns before any mutation, and passivity is only set when
		// no adversary tallies can mutate at hook call sites.
		if len(s.reqItems[c.A]) != 0 {
			r.fulfillSide(c.A, c.B, c.T)
		}
		if len(s.reqItems[c.B]) != 0 {
			r.fulfillSide(c.B, c.A, c.T)
		}
		if !r.passive {
			r.cfg.Policy.OnMeeting(s, c.A, c.B, c.T)
		}
	}
	s.truncated = false
	return nil
}

// finish drains the tail of the run and assembles the Result.
func (r *runner) finish() (*Result, error) {
	cfg, s, res := r.cfg, r.s, r.res
	// Drain arrivals (they can no longer be fulfilled but belong to
	// Outstanding) and churn events up to the end of the trace.
	if err := r.advanceTo(r.duration); err != nil {
		return nil, err
	}
	r.flushTo(r.duration)
	// Finalize the last open bin and drop any bin starting at or past the
	// end of the trace.
	if cfg.BinWidth > 0 && r.binIdx >= 0 && r.binIdx < len(r.bins) {
		if cfg.RecordCounts {
			c := make(alloc.Counts, len(s.counts))
			copy(c, s.counts)
			r.bins[r.binIdx].Counts = c
		}
		if r.hasMandates {
			r.bins[r.binIdx].Mandates = r.mc.TotalMandates()
		}
		for len(r.bins) > 0 && r.bins[len(r.bins)-1].T0 >= r.duration {
			r.bins = r.bins[:len(r.bins)-1]
		}
	}

	// alloc.Counts is []int, so the live counters copy over directly — no
	// temporary conversion slice.
	copy(res.FinalCounts, s.counts)
	// Requests still outstanding at the horizon have already suffered
	// their waiting cost even though no fulfillment event recorded it:
	// charge min(0, h(age)) per open request. Without this, starving an
	// item entirely (e.g. DOM under a waiting-cost utility) would look
	// free. Reward-type utilities (h ≥ 0) are unaffected — their gain is
	// only earned on actual fulfillment.
	end := r.duration
	for n := 0; n < s.nodes; n++ {
		// Node then sorted item order: the float summation order is fixed,
		// so the Result digest is reproducible run to run.
		for _, it := range s.reqItems[n] {
			item := int(it)
			uk := &s.uks[item]
			for _, rq := range s.reqs[n*s.items+item] {
				res.Outstanding++
				age := end - rq.t0
				if age <= 0 {
					age = 1e-9
				}
				if h := uk.H(age); h < 0 && rq.t0 >= res.MeasureStart {
					res.TotalGain += h
					res.OutstandingCost += h
				}
			}
		}
	}
	span := r.duration - res.MeasureStart
	if span > 0 {
		res.AvgUtilityRate = res.TotalGain / span
	}
	res.ReplicasMade = s.writes
	res.Bins = r.bins
	res.Overhead = Overhead{
		MetadataMsgs:     2 * res.Meetings,
		ContentTransfers: r.totalFulfilled - r.totalImmediate + s.writes,
	}
	if mm, ok := cfg.Policy.(interface{ MandatesMoved() int }); ok {
		res.Overhead.MandateTransfers = mm.MandatesMoved()
	}
	if s.inj != nil {
		if fc, ok := cfg.Policy.(interface{ FaultCounters() (int, int, int) }); ok {
			s.tally.MandatesDropped, s.tally.MandatesExpired, s.tally.MandatesAbandoned = fc.FaultCounters()
		}
		t := s.tally
		res.Faults = &t
	}
	if s.adv != nil {
		if hc, ok := cfg.Policy.(interface{ HardeningCounters() (int, int) }); ok {
			s.atally.CountersCapped, s.atally.ReactionsClamped = hc.HardeningCounters()
		}
		t := s.atally
		res.Adversary = &t
	}
	return res, nil
}

// mandateCounter is implemented by policies that track pending mandates.
type mandateCounter interface{ TotalMandates() int }

// validate checks the configuration and resolves the population size and
// run duration from whichever contact input (Trace or Contacts) is set.
func validate(cfg *Config) (nodes int, duration float64, err error) {
	switch {
	case cfg.Trace == nil && cfg.Contacts == nil:
		return 0, 0, fmt.Errorf("sim: nil trace (set Trace or Contacts)")
	case cfg.Trace != nil && cfg.Contacts != nil:
		return 0, 0, fmt.Errorf("sim: both Trace and Contacts set; pick one")
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.Validate(); err != nil {
			return 0, 0, err
		}
		nodes, duration = cfg.Trace.Nodes, cfg.Trace.Duration
	} else {
		// A stream cannot be validated up front; its dimensions can.
		// Contacts themselves are checked one at a time as consumed.
		nodes, duration = cfg.Contacts.Nodes(), cfg.Contacts.Duration()
		if err := checkSourceDims(nodes, duration); err != nil {
			return 0, 0, err
		}
	}
	return nodes, duration, validateShared(cfg, nodes, duration)
}

// checkSourceDims sanity-checks the dimensions reported by an
// unvalidated contact stream. (A materialized Trace skips this: its own
// Validate governs, and it legitimately allows single-node traces.)
func checkSourceDims(nodes int, duration float64) error {
	if nodes < 2 {
		return fmt.Errorf("sim: contact source has %d nodes, need ≥ 2", nodes)
	}
	if !(duration > 0) { // catches NaN too
		return fmt.Errorf("sim: contact source duration %g", duration)
	}
	return nil
}

// validateBatch checks one batch config against the shared contact
// source's dimensions. Batch configs must leave both contact inputs
// unset: the executor owns the one stream every runner consumes.
func validateBatch(cfg *Config, nodes int, duration float64) error {
	if cfg.Trace != nil || cfg.Contacts != nil {
		return fmt.Errorf("sim: batch config must leave Trace and Contacts unset (the shared source drives every runner)")
	}
	if err := checkSourceDims(nodes, duration); err != nil {
		return err
	}
	return validateShared(cfg, nodes, duration)
}

// validateShared holds every configuration check that does not depend on
// which contact input supplies the dimensions, shared by the single-run
// and batch entry points. It also normalizes cfg.WarmupFrac in place.
func validateShared(cfg *Config, nodes int, duration float64) error {
	switch {
	case cfg.Utility == nil && len(cfg.Utilities) == 0:
		return fmt.Errorf("sim: nil utility")
	case cfg.Policy == nil:
		return fmt.Errorf("sim: nil policy")
	case cfg.Rho <= 0:
		return fmt.Errorf("sim: ρ=%d", cfg.Rho)
	case cfg.Pop.Items() == 0:
		return fmt.Errorf("sim: empty catalog")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	if err := cfg.Adversary.Validate(cfg.Pop.Items()); err != nil {
		return err
	}
	if cfg.ServerCount < 0 || cfg.ServerCount >= nodes {
		if cfg.ServerCount != 0 {
			return fmt.Errorf("sim: ServerCount %d must be in (0, %d)", cfg.ServerCount, nodes)
		}
	}
	if len(cfg.Utilities) > 0 && len(cfg.Utilities) != cfg.Pop.Items() {
		return fmt.Errorf("sim: %d per-item utilities for %d items", len(cfg.Utilities), cfg.Pop.Items())
	}
	if cfg.ServerCount == 0 {
		if cfg.Utility != nil && !utility.SupportsPureP2P(cfg.Utility) {
			return fmt.Errorf("sim: %s has unbounded h(0+); use the dedicated-node case (ServerCount > 0)", cfg.Utility.Name())
		}
		for i, f := range cfg.Utilities {
			if f != nil && !utility.SupportsPureP2P(f) {
				return fmt.Errorf("sim: item %d utility %s has unbounded h(0+); use the dedicated-node case", i, f.Name())
			}
		}
	}
	switch {
	case cfg.WarmupFrac == 0:
		cfg.WarmupFrac = 0.2
	case cfg.WarmupFrac < 0:
		cfg.WarmupFrac = 0
	case cfg.WarmupFrac >= 1:
		return fmt.Errorf("sim: warmup fraction %g", cfg.WarmupFrac)
	}
	effServers := nodes
	if cfg.ServerCount > 0 {
		effServers = cfg.ServerCount
	}
	if !cfg.NoSticky && cfg.Pop.Items() > effServers*cfg.Rho {
		return fmt.Errorf("sim: %d items exceed global capacity %d; sticky replicas impossible", cfg.Pop.Items(), effServers*cfg.Rho)
	}
	if cfg.DemandSwitch != nil && cfg.DemandSwitch.Items() != cfg.Pop.Items() {
		return fmt.Errorf("sim: demand switch catalog %d != %d", cfg.DemandSwitch.Items(), cfg.Pop.Items())
	}
	if cfg.InitialPlacement != nil {
		p := cfg.InitialPlacement
		if !cfg.NoSticky {
			return fmt.Errorf("sim: InitialPlacement requires NoSticky")
		}
		if p.Items != cfg.Pop.Items() || p.Servers != effServers || p.Rho > cfg.Rho {
			return fmt.Errorf("sim: placement shape %dx%d/ρ%d incompatible with %dx%d/ρ%d",
				p.Items, p.Servers, p.Rho, cfg.Pop.Items(), effServers, cfg.Rho)
		}
	}
	return nil
}

// initCaches lays out the initial allocation: sticky replicas first (one
// per item unless disabled), then the remaining copies of the desired
// initial allocation spread across the least-loaded nodes lacking the
// item.
func (s *state) initCaches() error {
	cfg := s.cfg
	if cfg.InitialPlacement != nil {
		p := cfg.InitialPlacement
		for i := 0; i < p.Items; i++ {
			for m := 0; m < p.Servers; m++ {
				if p.Has(i, m) {
					if err := s.place(m, i, false); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	want := cfg.Initial
	if want == nil {
		want = alloc.Uniform(s.items, s.servers, s.rho)
	}
	if len(want) != s.items {
		return fmt.Errorf("sim: initial allocation covers %d items, catalog has %d", len(want), s.items)
	}
	if err := want.Validate(s.servers, s.rho); err != nil {
		return err
	}
	if !cfg.NoSticky {
		for i := 0; i < s.items; i++ {
			node := i % s.servers
			if s.freeSlots(node) == 0 {
				return fmt.Errorf("sim: node %d cannot hold sticky replica of item %d (ρ too small)", node, i)
			}
			if s.Has(node, i) {
				continue
			}
			if err := s.place(node, i, true); err != nil {
				return err
			}
		}
	}
	// Remaining copies: decreasing need, least-loaded servers without the
	// item. The greedy is "lowest-index server among those with the most
	// free slots, excluding holders"; scanning all servers per copy made
	// this O(copies·N) — at million-node scale with want[i] ≈ N·ρ/items,
	// effectively O(N²·ρ). The counting-sort traversal below picks the
	// identical server sequence in O(items·N + copies): within one item,
	// a placement only decrements the free count of a server that
	// thereby becomes a holder (excluded from that item's later picks),
	// so the remaining candidates' order is static for the whole item —
	// walk the free-count buckets from fullest to 1, ascending index,
	// skipping holders. Between items, demote each used server one
	// bucket, preserving ascending index order by subsequence merge.
	return spreadInitial(s.items, s.servers, s.rho, want,
		s.freeSlots,
		func(i int) int { return s.counts[i] },
		func(n, i int) bool { return s.Has(n, i) },
		func(n, i int) error { return s.place(n, i, false) })
}

// spreadInitial is the initial-allocation greedy shared by the event
// engine (state.initCaches) and the hybrid engine, which replays it
// against per-community accumulators so the fluid starts from the exact
// allocation the full simulation would place. The callbacks abstract
// the cache state: freeSlots, count and has describe it (after any
// sticky seeding), place commits one copy. The node sequence is a pure
// function of (items, servers, rho, want, sticky layout), so both
// replayers see identical placements.
func spreadInitial(items, servers, rho int, want alloc.Counts, freeSlots func(int) int, count func(int) int, has func(n, i int) bool, place func(n, i int) error) error {
	order := make([]int, items)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return want[order[a]] > want[order[b]] })
	buckets := make([][]int32, rho+1)
	for n := 0; n < servers; n++ {
		f := freeSlots(n)
		buckets[f] = append(buckets[f], int32(n)) // ascending by construction
	}
	var taken []int // positions taken from the current bucket
	for _, i := range order {
		need := want[i] - count(i)
		for f := rho; f >= 1 && need > 0; f-- {
			b := buckets[f]
			taken = taken[:0]
			for pos := 0; pos < len(b) && need > 0; pos++ {
				n := int(b[pos])
				if has(n, i) {
					continue
				}
				if err := place(n, i); err != nil {
					return err
				}
				need--
				taken = append(taken, pos)
			}
			if len(taken) == 0 {
				continue
			}
			// Demote the used servers to bucket f−1. Both the survivors
			// and the taken values are ascending subsequences of b, so
			// one sweep rebuilds the bucket and one merge re-sorts the
			// destination.
			moved := make([]int32, 0, len(taken))
			kept := b[:0]
			ti := 0
			for pos, n := range b {
				if ti < len(taken) && pos == taken[ti] {
					moved = append(moved, n)
					ti++
				} else {
					kept = append(kept, n)
				}
			}
			buckets[f] = kept
			buckets[f-1] = mergeAscending(buckets[f-1], moved)
		}
		// need may still be positive: no server without the item has a
		// free slot, so the remainder of this item is dropped — exactly
		// the per-copy greedy's bail-out.
	}
	return nil
}

// mergeAscending merges two ascending int32 slices into a fresh
// ascending slice (the initCaches bucket demotion).
func mergeAscending(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
