// Command agesim runs a single opportunistic-caching simulation and
// prints the realized utility, allocation and protocol statistics.
//
// Usage examples:
//
//	agesim -utility step:10 -scheme qcr -nodes 50 -items 50 -rho 5 -duration 5000
//	agesim -utility power:0 -scheme prop -trace conference
//	agesim -utility exp:0.1 -scheme opt -trace file -trace-file contacts.txt
//	agesim -scheme qcr -churn 0.001 -ploss 0.2 -pdrop 0.05 -mandate-ttl 80
//	agesim -scheme qcrh -dishonest-frac 0.2 -mult 25 -freerider-frac 0.1
//	agesim -scheme qcr -flash-crowd 500 -night-factor 0.1
//	agesim -scheme qcr -rates community:n=1000000,c=32,in=0.01,out=1e-6 -duration 1 -shards 4
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	"impatience/internal/adversary"
	"impatience/internal/demand"
	"impatience/internal/experiment"
	"impatience/internal/faults"
	"impatience/internal/parallel"
	"impatience/internal/prof"
	"impatience/internal/rates"
	"impatience/internal/stats"
	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// options collects every agesim flag.
type options struct {
	utilitySpec string
	scheme      string
	nodes       int
	items       int
	rho         int
	mu          float64
	omega       float64
	demandRate  float64
	duration    float64
	traceKind   string
	traceFile   string
	seed        uint64
	trials      int
	workers     int
	qcrScale    float64
	warmup      float64
	showAlloc   bool
	stream      bool
	ratesSpec   string
	shards      int
	hybrid      bool
	cpuProfile  string
	memProfile  string

	// Fault injection (internal/faults) and QCR hardening.
	churn       float64
	churnDown   float64
	ploss       float64
	pdrop       float64
	massCrash   float64
	massFrac    float64
	massDown    float64
	mandateTTL  float64
	retries     int
	faultScript string

	// Adversarial workload (internal/adversary) and nonstationarity.
	dishonestFrac float64
	mult          float64
	freeRiderFrac float64
	churnSchedule string
	flashCrowd    float64
	nightFactor   float64
	dayStart      float64
	dayEnd        float64
}

func main() {
	var o options
	flag.StringVar(&o.utilitySpec, "utility", "step:10", "delay-utility spec: step:τ, exp:ν, power:α, neglog")
	flag.StringVar(&o.scheme, "scheme", "qcr", "replication scheme: qcr, qcrh, qcrwom, opt, uni, sqrt, prop, dom")
	flag.IntVar(&o.nodes, "nodes", 50, "number of nodes (pure P2P population)")
	flag.IntVar(&o.items, "items", 50, "catalog size")
	flag.IntVar(&o.rho, "rho", 5, "cache slots per node")
	flag.Float64Var(&o.mu, "mu", 0.05, "pairwise contact rate (homogeneous trace)")
	flag.Float64Var(&o.omega, "omega", 1, "Pareto popularity exponent")
	flag.Float64Var(&o.demandRate, "demand", 2, "aggregate request rate per minute")
	flag.Float64Var(&o.duration, "duration", 5000, "simulated minutes (homogeneous trace)")
	flag.StringVar(&o.traceKind, "trace", "homogeneous", "contact source: homogeneous, conference, vehicular, file")
	flag.StringVar(&o.traceFile, "trace-file", "", "trace file path when -trace file")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.trials, "trials", 1, "independent trials to run and aggregate")
	flag.IntVar(&o.workers, "workers", 0, "trial worker pool size (0 = GOMAXPROCS); results are identical for any value")
	flag.Float64Var(&o.qcrScale, "qcr-scale", 0.1, "reaction-function scale")
	flag.Float64Var(&o.warmup, "warmup", 0.3, "fraction of the run excluded from averages")
	flag.BoolVar(&o.showAlloc, "show-alloc", false, "print the final per-item replica counts")
	flag.BoolVar(&o.stream, "stream", false, "fuse contact generation with the simulation (homogeneous QCR only): contacts are drawn lazily, never materialized")
	flag.StringVar(&o.ratesSpec, "rates", "", "structured rate model spec (community:n=...,c=...,in=...,out=... | hubspoke:... | distance:...); overrides -trace and -nodes, O(N + C²) state")
	flag.IntVar(&o.shards, "shards", 0, "partition the lockstep batch across this many workers (with -rates); results are bit-identical for any value")
	flag.BoolVar(&o.hybrid, "hybrid", false, "run the mean-field hybrid engine (with -rates): fluid communities plus an event-simulated probe boundary, demoting to full simulation when the error controller trips")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file (go tool pprof agesim <file>)")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Float64Var(&o.churn, "churn", 0, "node crash rate (crashes per node-minute; 0 = off)")
	flag.Float64Var(&o.churnDown, "churn-down", 0, "mean downtime after a crash (minutes; 0 = 1/churn)")
	flag.Float64Var(&o.ploss, "ploss", 0, "probability a meeting's content-transfer phase fails")
	flag.Float64Var(&o.pdrop, "pdrop", 0, "probability a routed mandate is lost in flight")
	flag.Float64Var(&o.massCrash, "mass-crash", 0, "time of a correlated mass crash (minutes; 0 = off)")
	flag.Float64Var(&o.massFrac, "mass-frac", 0.5, "fraction of nodes hit by the mass crash")
	flag.Float64Var(&o.massDown, "mass-down", 0, "downtime after the mass crash (minutes)")
	flag.Float64Var(&o.mandateTTL, "mandate-ttl", 0, "mandate time-to-live (minutes; 0 = auto when faults are on)")
	flag.IntVar(&o.retries, "retries", 5, "content-transfer attempts per mandate before abandoning (0 = unbounded)")
	flag.StringVar(&o.faultScript, "fault-script", "", "file with a scripted fault timeline (\"<t> <node> down|up\" lines)")
	flag.Float64Var(&o.dishonestFrac, "dishonest-frac", 0, "fraction of nodes inflating their query counters (0 = off)")
	flag.Float64Var(&o.mult, "mult", 25, "counter multiplier applied by dishonest nodes (the MULT knob)")
	flag.Float64Var(&o.freeRiderFrac, "freerider-frac", 0, "fraction of nodes that consume but never serve, store, or carry mandates")
	flag.StringVar(&o.churnSchedule, "churn-schedule", "", "file with a popularity-churn schedule (\"<t> rotate|swap|zipf|uniform ...\" lines)")
	flag.Float64Var(&o.flashCrowd, "flash-crowd", 0, "rotate the popularity ranking by one every this many minutes (0 = off)")
	flag.Float64Var(&o.nightFactor, "night-factor", 1, "night contact-activity factor in (0,1]; < 1 imposes a day/night profile by time change")
	flag.Float64Var(&o.dayStart, "day-start", 480, "day window start (minute of day) for -night-factor")
	flag.Float64Var(&o.dayEnd, "day-end", 1200, "day window end (minute of day) for -night-factor")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "agesim:", err)
		os.Exit(1)
	}
}

// faultPlan translates the fault and adversary flags into an
// experiment.FaultPlan, or nil when every fault and misbehavior class is
// off (the simulator is then bit-identical to a build without either
// layer).
func (o options) faultPlan() (*experiment.FaultPlan, error) {
	fc := &faults.Config{
		ChurnRate:     o.churn,
		MeanDowntime:  o.churnDown,
		PLoss:         o.ploss,
		PDrop:         o.pdrop,
		MassCrashTime: o.massCrash,
		MassCrashFrac: o.massFrac,
		Seed:          o.seed ^ 0xfa17,
	}
	if o.massCrash > 0 {
		fc.MassDowntime = o.massDown
	}
	if o.faultScript != "" {
		f, err := os.Open(o.faultScript)
		if err != nil {
			return nil, err
		}
		evs, err := faults.ParseTimeline(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		fc.Script = evs
	}
	ac, err := o.adversaryConfig()
	if err != nil {
		return nil, err
	}
	if !fc.Enabled() && o.mandateTTL == 0 {
		if ac == nil {
			return nil, nil
		}
		// Adversaries without faults: no mandate hardening, so the run
		// matches the experiment layer's adversary sweeps exactly.
		return &experiment.FaultPlan{Adversary: ac}, nil
	}
	ttl := o.mandateTTL
	if ttl == 0 {
		ttl = 4 / o.mu
	}
	if !fc.Enabled() {
		fc = nil
	}
	return &experiment.FaultPlan{Faults: fc, Adversary: ac, MandateTTL: ttl, MaxAttempts: o.retries}, nil
}

// adversaryConfig translates the misbehavior flags into an
// adversary.Config, or nil when every class is off.
func (o options) adversaryConfig() (*adversary.Config, error) {
	ac := &adversary.Config{
		DishonestFrac: o.dishonestFrac,
		Mult:          o.mult,
		FreeRiderFrac: o.freeRiderFrac,
		Seed:          o.seed ^ 0xadbad,
	}
	if o.churnSchedule != "" && o.flashCrowd > 0 {
		return nil, fmt.Errorf("-churn-schedule and -flash-crowd are mutually exclusive")
	}
	pop := demand.Pareto(o.items, o.omega, o.demandRate)
	switch {
	case o.churnSchedule != "":
		f, err := os.Open(o.churnSchedule)
		if err != nil {
			return nil, err
		}
		s, err := demand.ParseSchedule(f, pop)
		f.Close()
		if err != nil {
			return nil, err
		}
		ac.Schedule = s
	case o.flashCrowd > 0:
		s, err := synth.FlashCrowd(pop, o.flashCrowd, o.duration, 1)
		if err != nil {
			return nil, err
		}
		ac.Schedule = s
	}
	if !ac.Enabled() {
		return nil, nil
	}
	return ac, nil
}

// modulated imposes the day/night activity profile on a materialized
// trace by streaming it through adversary.Modulate and re-collecting the
// time-changed contacts. The identity profile (-night-factor 1) returns
// the trace untouched.
func (o options) modulated(tr *trace.Trace) (*trace.Trace, error) {
	if o.nightFactor == 1 {
		return tr, nil
	}
	src, err := adversary.DayNight(tr.Source(), o.dayStart, o.dayEnd, o.nightFactor)
	if err != nil {
		return nil, err
	}
	out := &trace.Trace{Nodes: tr.Nodes, Duration: tr.Duration}
	out.Contacts = make([]trace.Contact, 0, len(tr.Contacts))
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		out.Contacts = append(out.Contacts, c)
	}
	if es, ok := src.(trace.ErrSource); ok {
		if err := es.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func run(o options) error {
	u, err := utility.Parse(o.utilitySpec)
	if err != nil {
		return err
	}
	stop, err := prof.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "agesim: profile:", err)
		}
	}()

	sc := experiment.Scenario{
		Nodes: o.nodes, Items: o.items, Rho: o.rho, Mu: o.mu, Omega: o.omega,
		DemandRate: o.demandRate, Duration: o.duration, Trials: o.trials, Seed: o.seed,
		Workers: o.workers, QCRScale: o.qcrScale, WarmupFrac: o.warmup,
	}
	if o.ratesSpec != "" {
		return runStructured(o, u, sc)
	}
	if o.hybrid {
		return fmt.Errorf("-hybrid requires -rates (the fluid limit needs a structured rate model)")
	}
	if o.stream {
		return runStream(o, u, sc)
	}
	if o.trials > 1 {
		return runTrials(o, u, sc)
	}

	var tr *trace.Trace
	rng := rand.New(rand.NewPCG(o.seed, o.seed^0xa9e51))
	switch o.traceKind {
	case "homogeneous":
		gen := sc.HomogeneousTraces()
		tr, err = gen(o.seed)
	case "conference":
		cfg := synth.DefaultConference()
		cfg.Nodes = o.nodes
		tr, err = synth.Conference(cfg, rng)
	case "vehicular":
		cfg := synth.DefaultVehicular()
		cfg.Cabs = o.nodes
		tr, err = synth.Vehicular(cfg, rng)
	case "file":
		if o.traceFile == "" {
			return fmt.Errorf("-trace file requires -trace-file")
		}
		tr, err = trace.Load(o.traceFile)
		if err == nil && tr.Nodes != o.nodes {
			fmt.Printf("note: trace has %d nodes; overriding -nodes\n", tr.Nodes)
			sc.Nodes = tr.Nodes
			o.nodes = tr.Nodes
		}
	default:
		return fmt.Errorf("unknown trace kind %q", o.traceKind)
	}
	if err != nil {
		return err
	}
	if tr, err = o.modulated(tr); err != nil {
		return err
	}
	sc.Duration = tr.Duration

	rates := trace.EmpiricalRates(tr)
	muEff := rates.Mean()
	if muEff <= 0 {
		return fmt.Errorf("trace has no contacts")
	}

	schemeName, err := canonicalScheme(o.scheme)
	if err != nil {
		return err
	}
	plan, err := o.faultPlan()
	if err != nil {
		return err
	}
	res, err := sc.RunSchemeFaults(schemeName, u, tr, rates, muEff, 0, false, plan)
	if err != nil {
		return err
	}

	fmt.Printf("scheme          %s\n", schemeName)
	fmt.Printf("utility         %s\n", u.Name())
	fmt.Printf("trace           %s: %d nodes, %.0f min, %d contacts (mean pair rate %.5f/min)\n",
		o.traceKind, tr.Nodes, tr.Duration, len(tr.Contacts), muEff)
	fmt.Printf("population      pure P2P, ρ=%d, %d items, Pareto ω=%g, %.3g req/min\n", o.rho, o.items, o.omega, o.demandRate)
	fmt.Printf("avg utility     %.6g (gain per minute, after %.0f min warmup)\n", res.AvgUtilityRate, res.MeasureStart)
	fmt.Printf("fulfillments    %d (%d immediate), %d still outstanding\n", res.Fulfillments, res.Immediate, res.Outstanding)
	fmt.Printf("replicas made   %d over %d meetings\n", res.ReplicasMade, res.Meetings)
	if t := res.Faults; t != nil {
		fmt.Printf("faults          %d crashes / %d rejoins, %d contacts skipped, %d meetings truncated, %d arrivals dropped\n",
			t.Crashes, t.Rejoins, t.SkippedContacts, t.TruncatedMeetings, t.DroppedArrivals)
		fmt.Printf("fault losses    %d replicas wiped (%d sticky), %d open requests, %d pending mandates\n",
			t.ReplicasLost, t.StickyLost, t.RequestsLost, t.MandatesCrashed)
		fmt.Printf("hardening       %d mandates dropped in flight, %d expired, %d abandoned, %d sticky re-seeded\n",
			t.MandatesDropped, t.MandatesExpired, t.MandatesAbandoned, t.StickyReseeded)
	}
	if t := res.Adversary; t != nil {
		fmt.Printf("adversary       %d dishonest / %d free-riders; %d reports inflated, %d serves refused, %d writes refused, %d reactions suppressed, %d demand shifts\n",
			t.DishonestNodes, t.FreeRiders, t.InflatedReports, t.RefusedServes, t.RefusedWrites, t.SuppressedReactions, t.DemandShifts)
		if t.CountersCapped > 0 || t.ReactionsClamped > 0 {
			fmt.Printf("defense         %d counters capped, %d reactions clamped by the hardened reaction\n",
				t.CountersCapped, t.ReactionsClamped)
		}
	}

	// Analytic reference under the memoryless homogeneous approximation.
	pop := demand.Pareto(o.items, o.omega, o.demandRate)
	hom := welfare.Homogeneous{
		Utility: u, Pop: pop, Mu: muEff, Servers: o.nodes, Clients: o.nodes, PureP2P: true,
	}
	if opt, err := hom.GreedyOptimal(o.rho); err == nil {
		fmt.Printf("analytic U_opt  %.6g (homogeneous memoryless approximation)\n", hom.WelfareCounts(opt))
	}
	if o.showAlloc {
		fmt.Printf("final counts    %v\n", res.FinalCounts)
	}
	return nil
}

// runStructured is the -rates path: contacts come from a structured
// heterogeneous rate model (community, hub-spoke, or distance-kernel)
// through the group-decomposed sampler, and the simulation runs on the
// sharded lockstep executor. Nothing O(N²) is ever built — no empirical
// rate matrix (the ψ plug-in rate is the model's mean pair rate), no
// materialized trace — which is what admits N ≥ 10⁶. OPT is therefore
// unavailable here, and the fault/adversary layers are not yet wired
// through this path.
func runStructured(o options, u utility.Function, sc experiment.Scenario) error {
	if o.stream {
		return fmt.Errorf("-rates and -stream are mutually exclusive (-rates already streams)")
	}
	if o.traceKind != "homogeneous" || o.traceFile != "" {
		return fmt.Errorf("-rates replaces -trace (got -trace %q)", o.traceKind)
	}
	if plan, err := o.faultPlan(); err != nil {
		return err
	} else if plan != nil {
		return fmt.Errorf("fault and adversary flags are not supported with -rates yet")
	}
	scheme, err := canonicalScheme(o.scheme)
	if err != nil {
		return err
	}
	m, err := rates.ParseRates(o.ratesSpec)
	if err != nil {
		return err
	}
	if m.Nodes() != o.nodes && o.nodes != 50 {
		fmt.Printf("note: rate model has %d nodes; overriding -nodes\n", m.Nodes())
	}
	sc.Nodes = m.Nodes()
	sc.Shards = o.shards
	sc.Hybrid.Enabled = o.hybrid

	if o.trials > 1 {
		cmp, err := sc.RunStructuredComparison(u, m, []string{scheme})
		if err != nil {
			return err
		}
		sum := cmp.Utility[scheme]
		engine := fmt.Sprintf("structured rates, %d shards", o.shards)
		if o.hybrid {
			engine = "structured rates, hybrid mean-field engine"
		}
		fmt.Printf("scheme          %s (%s)\n", scheme, engine)
		fmt.Printf("utility         %s\n", u.Name())
		fmt.Printf("rate model      %s: %d nodes, %d communities, mean pair rate %.3g/min\n",
			o.ratesSpec, m.Nodes(), m.Communities(), m.MeanPairRate())
		fmt.Printf("trials          %d over %d workers\n", sc.Trials, parallel.Workers(sc.Workers))
		fmt.Printf("avg utility     %.6g (mean across trials; p5 %.6g, p95 %.6g)\n", sum.Mean, sum.P5, sum.P95)
		return nil
	}

	rep, err := sc.StructuredScale(u, m, []string{scheme}, 0)
	if err != nil {
		return err
	}
	engine := "structured rates, sharded lockstep"
	if rep.Hybrid {
		engine = "structured rates, hybrid mean-field engine"
	}
	fmt.Printf("scheme          %s (%s)\n", scheme, engine)
	fmt.Printf("utility         %s\n", u.Name())
	fmt.Printf("rate model      %s: %d nodes, %d communities, mean pair rate %.3g/min\n",
		o.ratesSpec, rep.Nodes, rep.Communities, rep.MeanPairRate)
	fmt.Printf("contacts        %d streamed over %.0f min, %d shards, %d rate groups\n",
		rep.Contacts, rep.Duration, rep.Shards, rates.DefaultGroups)
	fmt.Printf("avg utility     %.6g (gain per minute)\n", rep.AvgUtility[0])
	fmt.Printf("fulfillments    %d\n", rep.Fulfillments)
	fmt.Printf("peak heap       %.1f MB (O(N + C²) state; a dense rate matrix alone would be %.1f MB)\n",
		float64(rep.PeakHeapBytes)/1e6, 8*float64(rep.Nodes)*float64(rep.Nodes)/1e6)
	if rep.Hybrid {
		fmt.Printf("hybrid          %.1f%% of the population on the fluid, %d demotions to full simulation\n",
			100*rep.FluidFraction, rep.Demotions)
	}
	fmt.Printf("digest family   %#016x (bit-identical at every -shards value)\n", rep.DigestFamily)
	return nil
}

// runStream is the -stream path: contact generation fuses with the
// simulation through the trace.Source seam, so the contact list is never
// materialized and the run's heap stays at the generator's O(N²) rate
// state. This is how production-scale populations (N in the thousands)
// run on a laptop — see cmd/agebench's scale section for the numbers.
func runStream(o options, u utility.Function, sc experiment.Scenario) error {
	if o.traceKind != "homogeneous" {
		return fmt.Errorf("-stream supports only -trace homogeneous (got %q)", o.traceKind)
	}
	if s, err := canonicalScheme(o.scheme); err != nil || s != experiment.SchemeQCR {
		return fmt.Errorf("-stream supports only -scheme qcr (got %q)", o.scheme)
	}
	if o.trials > 1 {
		return fmt.Errorf("-stream runs a single trial (got -trials %d)", o.trials)
	}
	rep, err := sc.StreamingScale(u, 0)
	if err != nil {
		return err
	}
	fmt.Printf("scheme          %s (fused streaming pipeline)\n", experiment.SchemeQCR)
	fmt.Printf("utility         %s\n", u.Name())
	fmt.Printf("contacts        %d streamed over %d nodes, %.0f min (µ=%g/min)\n",
		rep.Contacts, rep.Nodes, rep.Duration, o.mu)
	fmt.Printf("avg utility     %.6g (gain per minute)\n", rep.AvgUtilityRate)
	fmt.Printf("fulfillments    %d over %d meetings\n", rep.Fulfillments, rep.Meetings)
	fmt.Printf("peak heap       %.1f MB streamed vs %.1f MB materialized contact list alone\n",
		float64(rep.PeakHeapBytes)/1e6, float64(rep.MaterializedBytes)/1e6)
	return nil
}

// traceGen builds the per-trial trace generator for -trials > 1. A trace
// file is loaded once and shared; the synthetic kinds draw a fresh trace
// per trial from the engine-provided seed. The day/night profile, when
// on, is imposed on every trial's trace.
func (o options) traceGen(sc experiment.Scenario) (experiment.TraceGen, int, error) {
	gen, nodes, err := o.baseTraceGen(sc)
	if err != nil || o.nightFactor == 1 {
		return gen, nodes, err
	}
	return func(seed uint64) (*trace.Trace, error) {
		tr, err := gen(seed)
		if err != nil {
			return nil, err
		}
		return o.modulated(tr)
	}, nodes, nil
}

func (o options) baseTraceGen(sc experiment.Scenario) (experiment.TraceGen, int, error) {
	switch o.traceKind {
	case "homogeneous":
		return sc.HomogeneousTraces(), o.nodes, nil
	case "conference":
		cfg := synth.DefaultConference()
		cfg.Nodes = o.nodes
		return experiment.ConferenceTraces(cfg), o.nodes, nil
	case "vehicular":
		cfg := synth.DefaultVehicular()
		cfg.Cabs = o.nodes
		return experiment.VehicularTraces(cfg), o.nodes, nil
	case "file":
		if o.traceFile == "" {
			return nil, 0, fmt.Errorf("-trace file requires -trace-file")
		}
		tr, err := trace.Load(o.traceFile)
		if err != nil {
			return nil, 0, err
		}
		return func(uint64) (*trace.Trace, error) { return tr, nil }, tr.Nodes, nil
	default:
		return nil, 0, fmt.Errorf("unknown trace kind %q", o.traceKind)
	}
}

// runTrials is the -trials N path: run the scheme over N independent
// trials on the parallel trial engine and report aggregate statistics.
func runTrials(o options, u utility.Function, sc experiment.Scenario) error {
	schemeName, err := canonicalScheme(o.scheme)
	if err != nil {
		return err
	}
	gen, nodes, err := o.traceGen(sc)
	if err != nil {
		return err
	}
	sc.Nodes = nodes
	plan, err := o.faultPlan()
	if err != nil {
		return err
	}
	type out struct {
		util        float64
		fulfilled   int
		outstanding int
	}
	results, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) (out, error) {
		tr, err := gen(seed)
		if err != nil {
			return out{}, err
		}
		s := sc
		s.Duration = tr.Duration
		rates := trace.EmpiricalRates(tr)
		mu := rates.Mean()
		if mu <= 0 {
			return out{}, fmt.Errorf("trace has no contacts")
		}
		res, err := s.RunSchemeFaults(schemeName, u, tr, rates, mu, uint64(trial), false, plan)
		if err != nil {
			return out{}, err
		}
		return out{util: res.AvgUtilityRate, fulfilled: res.Fulfillments, outstanding: res.Outstanding}, nil
	})
	if err != nil {
		return err
	}
	utils := make([]float64, len(results))
	var fulfilled, outstanding int
	for i, r := range results {
		utils[i] = r.util
		fulfilled += r.fulfilled
		outstanding += r.outstanding
	}
	sum := stats.Summarize(utils)
	fmt.Printf("scheme          %s\n", schemeName)
	fmt.Printf("utility         %s\n", u.Name())
	fmt.Printf("trials          %d over %d workers\n", sc.Trials, parallel.Workers(sc.Workers))
	fmt.Printf("avg utility     %.6g (mean across trials; p5 %.6g, p95 %.6g)\n", sum.Mean, sum.P5, sum.P95)
	fmt.Printf("fulfillments    %.1f per trial, %.1f still outstanding\n",
		float64(fulfilled)/float64(len(results)), float64(outstanding)/float64(len(results)))
	return nil
}

func canonicalScheme(s string) (string, error) {
	switch strings.ToLower(s) {
	case "qcr":
		return experiment.SchemeQCR, nil
	case "qcrh", "qcr-hardened":
		return experiment.SchemeQCRH, nil
	case "qcrwom", "qcr-no-routing":
		return experiment.SchemeQCRWOM, nil
	case "opt":
		return experiment.SchemeOPT, nil
	case "uni":
		return experiment.SchemeUNI, nil
	case "sqrt":
		return experiment.SchemeSQRT, nil
	case "prop":
		return experiment.SchemePROP, nil
	case "dom":
		return experiment.SchemeDOM, nil
	default:
		return "", fmt.Errorf("unknown scheme %q", s)
	}
}
