package numeric

import (
	"math"
	"math/rand/v2"
	"testing"
)

// warmTol is the allocation-agreement bound the serving layer relies on:
// a warm re-solve must land within 1e-9 of the from-scratch solution on
// every coordinate (ISSUE 9 acceptance criterion).
const warmTol = 1e-9

// randomWarmProblem draws a water-filling instance from the serving
// regime: Pareto-ish weights over a catalog, per-item caps equal to the
// server count, a power- or exponential-family derivative, and a budget
// strictly inside (0, Σcaps) so the solve is non-degenerate.
func randomWarmProblem(rng *rand.Rand) WaterFillProblem {
	n := 2 + rng.IntN(40)
	servers := 5 + rng.IntN(200)
	weights := make([]float64, n)
	omega := 0.2 + 1.6*rng.Float64()
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -omega) * (0.5 + rng.Float64())
	}
	// A few zero-weight items exercise the unreachable-capacity logic.
	if n > 4 && rng.IntN(3) == 0 {
		weights[rng.IntN(n)] = 0
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = float64(servers)
	}
	var deriv func(x float64) float64
	mu := 0.01 + 0.2*rng.Float64()
	switch rng.IntN(3) {
	case 0: // power family: Phi ∝ x^{α−2}
		alpha := -1.5 + 2.4*rng.Float64() // α ∈ (−1.5, 0.9)
		deriv = func(x float64) float64 {
			return math.Pow(mu, alpha-1) * math.Gamma(2-alpha) * math.Pow(x, alpha-2)
		}
	case 1: // step family: Phi = µτ e^{−µτx}
		tau := 1 + 30*rng.Float64()
		deriv = func(x float64) float64 { return mu * tau * math.Exp(-mu*tau*x) }
	default: // exponential family: Phi = µν/(µx+ν)²
		nu := 0.05 + rng.Float64()
		deriv = func(x float64) float64 {
			d := mu*x + nu
			return mu * nu / (d * d)
		}
	}
	var effCap float64
	for i := range caps {
		if weights[i] > 0 {
			effCap += caps[i]
		}
	}
	budget := effCap * (0.05 + 0.9*rng.Float64())
	return WaterFillProblem{Weights: weights, Caps: caps, Budget: budget, Deriv: deriv}
}

// drift perturbs the weights the way the demand estimator does between
// re-solves: small multiplicative noise, occasionally a hard popularity
// jump (rank rotation or a single item seizing most of the demand).
func drift(rng *rand.Rand, w []float64) []float64 {
	out := append([]float64(nil), w...)
	switch rng.IntN(4) {
	case 0: // flash crowd: rotate ranks
		k := 1 + rng.IntN(len(out))
		rot := make([]float64, len(out))
		for i, v := range out {
			rot[(i+k)%len(out)] = v
		}
		out = rot
	case 1: // one item seizes the head
		i := rng.IntN(len(out))
		out[i] = out[i]*10 + 1
	default: // gentle EWMA-scale drift
		for i := range out {
			out[i] *= 1 + 0.1*(rng.Float64()-0.5)
		}
	}
	return out
}

// checkAgainstCold solves p both ways and asserts the warm solution matches
// the cold one coordinate-wise within warmTol, re-checking the budget, the
// box constraints, and the Property-1 balance condition on the warm result.
func checkAgainstCold(t *testing.T, p WaterFillProblem, warm *WarmState) *WarmState {
	t.Helper()
	cold, err := WaterFill(p)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	xw, lambda, err := WaterFillWarm(p, warm)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	var sum float64
	for i := range xw {
		if d := math.Abs(xw[i] - cold[i]); d > warmTol {
			t.Fatalf("coordinate %d: warm %.15g vs cold %.15g (Δ=%.3g > %g)", i, xw[i], cold[i], d, warmTol)
		}
		if xw[i] < -warmTol || xw[i] > p.Caps[i]+warmTol {
			t.Fatalf("coordinate %d: x=%g outside box [0,%g]", i, xw[i], p.Caps[i])
		}
		sum += xw[i]
	}
	if math.Abs(sum-p.Budget) > 1e-6*math.Max(1, p.Budget) {
		t.Fatalf("budget: Σx=%g want %g", sum, p.Budget)
	}
	// Property-1 balance: interior coordinates share the dual level.
	for i := range xw {
		if p.Weights[i] <= 0 {
			continue
		}
		eps := 1e-6 * math.Max(1, p.Caps[i])
		if xw[i] <= eps || xw[i] >= p.Caps[i]-eps {
			continue
		}
		m := p.Weights[i] * p.Deriv(xw[i])
		if rel := math.Abs(m-lambda) / lambda; rel > 1e-6 {
			t.Fatalf("balance: coordinate %d has w·ϕ=%g vs λ=%g (rel %g)", i, m, lambda, rel)
		}
	}
	return &WarmState{Lambda: lambda, X: xw}
}

// TestWaterFillWarmMatchesColdProperty re-solves ≥500 random configurations
// warm and cold, including chains of simulated demand jumps where each warm
// solve starts from the previous drifted solution.
func TestWaterFillWarmMatchesColdProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xa9ed, 7))
	cases := 0
	for trial := 0; trial < 180; trial++ {
		p := randomWarmProblem(rng)
		cold, err := WaterFill(p)
		if err != nil {
			t.Fatalf("trial %d cold seed solve: %v", trial, err)
		}
		lambda, err := RecoverLambda(p, cold)
		if err != nil {
			// All coordinates clamped: no dual information, nothing to warm.
			continue
		}
		state := &WarmState{Lambda: lambda, X: cold}
		// Chain of drifts: every warm solve starts from the previous state,
		// exactly like the serving loop.
		for hop := 0; hop < 3; hop++ {
			p.Weights = drift(rng, p.Weights)
			state = checkAgainstCold(t, p, state)
			cases++
		}
	}
	if cases < 500 {
		t.Fatalf("property suite exercised only %d warm solves, want ≥ 500", cases)
	}
}

// TestWaterFillWarmDegenerateSingleItem pins the all-demand-on-one-item
// case: the solver must park the whole budget on the demanded item (up to
// its cap) and agree with the cold path.
func TestWaterFillWarmDegenerateSingleItem(t *testing.T) {
	n := 12
	weights := make([]float64, n)
	weights[3] = 2.5
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 50
	}
	deriv := func(x float64) float64 { return 0.05 * 10 * math.Exp(-0.05*10*x) }
	p := WaterFillProblem{Weights: weights, Caps: caps, Budget: 30, Deriv: deriv}
	cold, err := WaterFill(p)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if math.Abs(cold[3]-30) > warmTol {
		t.Fatalf("cold parked %g on the demanded item, want 30", cold[3])
	}
	lambda, err := RecoverLambda(p, cold)
	if err != nil {
		t.Fatalf("recover λ: %v", err)
	}
	state := &WarmState{Lambda: lambda, X: cold}
	// Drift the single demanded item's weight and re-solve warm: the
	// allocation is pinned by the budget, not the weight, so it must not
	// move — and must still match cold exactly.
	p.Weights[3] = 7
	checkAgainstCold(t, p, state)

	// Then move all demand to a different item: the warm start's guess is
	// maximally wrong (previous allocation concentrated elsewhere).
	p.Weights[3] = 0
	p.Weights[9] = 1.25
	checkAgainstCold(t, p, state)
}

// TestWaterFillWarmRejectsUselessState documents the fallback contract:
// nil, mismatched, or non-positive warm states are ErrWarmStart, never a
// silently-cold solve with a wrong dual level attached.
func TestWaterFillWarmRejectsUselessState(t *testing.T) {
	p := WaterFillProblem{
		Weights: []float64{1, 2},
		Caps:    []float64{10, 10},
		Budget:  5,
		Deriv:   func(x float64) float64 { return 1 / (x * x) },
	}
	for name, warm := range map[string]*WarmState{
		"nil":         nil,
		"short":       {Lambda: 1, X: []float64{1}},
		"zero-lambda": {Lambda: 0, X: []float64{1, 1}},
		"nan-lambda":  {Lambda: math.NaN(), X: []float64{1, 1}},
		"inf-lambda":  {Lambda: math.Inf(1), X: []float64{1, 1}},
		"neg-lambda":  {Lambda: -2, X: []float64{1, 1}},
	} {
		if _, _, err := WaterFillWarm(p, warm); err != ErrWarmStart {
			t.Errorf("%s: err=%v, want ErrWarmStart", name, err)
		}
	}
}

// TestWaterFillSubnormalDualRegression pins the bisection fix the warm/cold
// property suite uncovered: a steep step-family transform pushes the dual
// level λ* below ~1e-154, where the old √(lo·hi) midpoint under- or
// subnormal-flowed and stopped the bisection with the bracket wide open.
// The slack pass then silently repaired a multi-unit budget gap, so the
// result satisfied Σx = Budget while violating the Property-1 balance
// condition by whole replicas.
func TestWaterFillSubnormalDualRegression(t *testing.T) {
	const (
		n      = 31
		cap    = 122.0
		muTau  = 6.0 // µτ steep enough that λ* = w·µτ·e^{−µτx} is subnormal²
		budget = 2650.0
	)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -0.8)
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = cap
	}
	deriv := func(x float64) float64 { return muTau * math.Exp(-muTau*x) }
	p := WaterFillProblem{Weights: weights, Caps: caps, Budget: budget, Deriv: deriv}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	lambda, err := RecoverLambda(p, x)
	if err != nil {
		t.Fatalf("recover λ: %v", err)
	}
	if lambda > 1e-154 {
		t.Fatalf("λ=%g: the instance no longer exercises the subnormal regime", lambda)
	}
	for i, v := range x {
		eps := 1e-6 * cap
		if v <= eps || v >= cap-eps || weights[i] == 0 {
			continue
		}
		m := weights[i] * deriv(v)
		if rel := math.Abs(m-lambda) / lambda; rel > 1e-6 {
			t.Errorf("balance violated at coordinate %d: w·ϕ=%g vs λ=%g (rel %g)", i, m, lambda, rel)
		}
	}
}

// TestRecoverLambdaMatchesInteriorMarginal checks the dual recovered from a
// cold solution reproduces w_i·ϕ(x_i) on interior coordinates.
func TestRecoverLambdaMatchesInteriorMarginal(t *testing.T) {
	deriv := func(x float64) float64 { return math.Pow(x, -1.5) }
	p := WaterFillProblem{
		Weights: []float64{3, 2, 1, 0.5},
		Caps:    []float64{40, 40, 40, 40},
		Budget:  40,
		Deriv:   deriv,
	}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	lambda, err := RecoverLambda(p, x)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i := range x {
		if x[i] <= 1e-6 || x[i] >= p.Caps[i]-1e-6 {
			continue
		}
		m := p.Weights[i] * deriv(x[i])
		if rel := math.Abs(m-lambda) / lambda; rel > 1e-6 {
			t.Errorf("coordinate %d: w·ϕ=%g vs recovered λ=%g", i, m, lambda)
		}
	}
	if _, err := RecoverLambda(p, []float64{0, 0, 0, 0}); err != ErrWarmStart {
		t.Errorf("all-clamped allocation: err=%v, want ErrWarmStart", err)
	}
}
