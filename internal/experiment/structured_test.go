package experiment

import (
	"strings"
	"testing"

	"impatience/internal/rates"
	"impatience/internal/utility"
)

// structuredTiny pairs a small community model with a matching scenario.
func structuredTiny(t *testing.T) (Scenario, *rates.Model) {
	t.Helper()
	sc := Default()
	sc.Nodes = 40
	sc.Items = 10
	sc.Rho = 2
	sc.Duration = 800
	sc.Trials = 2
	m, err := rates.NewCommunity(rates.CommunityConfig{
		Nodes: 40, Communities: 4, In: 0.3, Out: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc, m
}

// TestStructuredScaleShardInvariance: the experiment-level shard knob
// must not change a single bit of the outcome — the report's digest
// family is identical at shards 1, 2, and 4, and the stream and utility
// measurements agree too.
func TestStructuredScaleShardInvariance(t *testing.T) {
	schemes := []string{SchemeQCR, SchemeUNI, SchemePROP}
	var base *StructuredReport
	for _, shards := range []int{1, 2, 4} {
		sc, m := structuredTiny(t)
		sc.Shards = shards
		rep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, schemes, 0)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.Contacts == 0 {
			t.Fatalf("shards=%d: empty stream", shards)
		}
		if base == nil {
			base = rep
			continue
		}
		if rep.DigestFamily != base.DigestFamily {
			t.Errorf("shards=%d: digest family %#x != %#x at shards=1",
				shards, rep.DigestFamily, base.DigestFamily)
		}
		if rep.Contacts != base.Contacts {
			t.Errorf("shards=%d: %d contacts != %d", shards, rep.Contacts, base.Contacts)
		}
		for k := range rep.AvgUtility {
			if rep.AvgUtility[k] != base.AvgUtility[k] {
				t.Errorf("shards=%d scheme %s: utility %g != %g",
					shards, schemes[k], rep.AvgUtility[k], base.AvgUtility[k])
			}
		}
	}
}

// TestStructuredScaleReport sanity-checks the metered fields.
func TestStructuredScaleReport(t *testing.T) {
	sc, m := structuredTiny(t)
	sc.Shards = 2
	rep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, []string{SchemeQCR, SchemeUNI}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 40 || rep.Communities != 4 || rep.Shards != 2 {
		t.Errorf("provenance fields wrong: %+v", rep)
	}
	if rep.MeanPairRate != m.MeanPairRate() {
		t.Errorf("mean pair rate %g != model's %g", rep.MeanPairRate, m.MeanPairRate())
	}
	if rep.PeakHeapBytes == 0 {
		t.Error("peak heap not sampled")
	}
	if rep.Fulfillments <= 0 {
		t.Error("no fulfillments recorded")
	}
	for k, v := range rep.AvgUtility {
		if v <= 0 {
			t.Errorf("scheme %s utility %g", rep.Schemes[k], v)
		}
	}
}

// TestStructuredComparison: the trial engine runs over the structured
// source generator and aggregates like any other comparison.
func TestStructuredComparison(t *testing.T) {
	sc, m := structuredTiny(t)
	sc.Shards = 2
	schemes := []string{SchemeQCR, SchemeUNI}
	cmp, err := sc.RunStructuredComparison(utility.Step{Tau: 10}, m, schemes)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemes {
		if cmp.Utility[s].N != sc.Trials {
			t.Errorf("%s trials %d, want %d", s, cmp.Utility[s].N, sc.Trials)
		}
		if cmp.Utility[s].Mean <= 0 {
			t.Errorf("%s mean utility %g", s, cmp.Utility[s].Mean)
		}
	}
}

// TestStructuredRejectsOPT: both entry points refuse OPT (it needs the
// dense rate matrix the structured path exists to avoid) and a
// node-count mismatch between model and scenario.
func TestStructuredRejectsOPT(t *testing.T) {
	sc, m := structuredTiny(t)
	if _, err := sc.StructuredScale(utility.Step{Tau: 10}, m, []string{SchemeOPT}, 0); err == nil ||
		!strings.Contains(err.Error(), "rate matrix") {
		t.Errorf("StructuredScale OPT: %v", err)
	}
	if _, err := sc.RunStructuredComparison(utility.Step{Tau: 10}, m, []string{SchemeQCR, SchemeOPT}); err == nil {
		t.Error("RunStructuredComparison accepted OPT")
	}
	if _, err := sc.StructuredScale(utility.Step{Tau: 10}, m, nil, 0); err == nil {
		t.Error("empty scheme set accepted")
	}
	sc.Nodes = 39
	if _, err := sc.StructuredScale(utility.Step{Tau: 10}, m, []string{SchemeQCR}, 0); err == nil {
		t.Error("node mismatch accepted")
	}
}
