package sim

import (
	"testing"

	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/faults"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// batchSchemes builds the per-scheme configs for one trial: a static
// allocation, a live QCR, and a fault-ridden hardened QCR (churn, lossy
// meetings with truncated transfers, mandate drops) with the full
// recording surface (delays, bins, counts) enabled. Policies are
// stateful, so every call constructs fresh ones. Trace/Contacts are left
// unset — the batch executor supplies the shared stream; the sequential
// comparison sets them per call.
func batchSchemes(t *testing.T) []Config {
	t.Helper()
	static := baseConfig(t, nil, core.Static{Label: "uni"})
	static.Seed = 21
	static.RecordDelays = true

	qcr := baseConfig(t, nil, &core.QCR{
		Reaction:       core.TunedReaction(utility.Step{Tau: 10}, 0.05, 14, 1),
		MandateRouting: true,
		StrictSource:   true,
		Seed:           7,
	})
	qcr.Seed = 22
	qcr.BinWidth = 80

	faulty := baseConfig(t, nil, &core.QCR{
		Reaction:       core.PathReplication(0.5),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5,
		MandateTTL:     80,
		MaxAttempts:    4,
		Seed:           93,
	})
	faulty.Seed = 23
	faulty.BinWidth = 80
	faulty.RecordCounts = true
	faulty.RecordDelays = true
	faulty.Faults = &faults.Config{
		ChurnRate:     0.002,
		MeanDowntime:  30,
		PLoss:         0.2, // truncated meetings
		PDrop:         0.1,
		MassCrashTime: 300,
		MassCrashFrac: 0.4,
		MassDowntime:  40,
		Seed:          23 ^ 0xbad,
	}
	return []Config{static, qcr, faulty}
}

// TestRunBatchMatchesSequential is the batch executor's correctness
// anchor: M runners stepped in lockstep over one shared stream must be
// bit-identical — same Digest — to M sequential Runs each replaying the
// materialized trace on its own. Covers static, QCR, and a fault
// timeline with truncated meetings; run under -race in CI.
func TestRunBatchMatchesSequential(t *testing.T) {
	tr := smallTrace(t, 14, 0.05, 700, 13)

	want := make([]uint64, len(batchSchemes(t)))
	for i, cfg := range batchSchemes(t) {
		cfg.Trace = tr
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("sequential Run %d: %v", i, err)
		}
		want[i] = res.Digest()
	}

	got, err := RunBatch(batchSchemes(t), tr.Source())
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, res := range got {
		if res.Digest() != want[i] {
			t.Errorf("scheme %d: batch digest %#x != sequential %#x", i, res.Digest(), want[i])
		}
	}

	// Streaming-source equivalence: the same batch over a reopened view
	// of the same contacts reproduces itself.
	src := tr.Source()
	re, err := src.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	again, err := RunBatch(batchSchemes(t), re)
	if err != nil {
		t.Fatalf("RunBatch (reopened): %v", err)
	}
	for i, res := range again {
		if res.Digest() != want[i] {
			t.Errorf("scheme %d: reopened batch digest %#x != sequential %#x", i, res.Digest(), want[i])
		}
	}
}

// TestRunBatchValidation: malformed batches fail up front with the
// offending config identified, and contract violations in the shared
// stream abort the whole batch.
func TestRunBatchValidation(t *testing.T) {
	tr := smallTrace(t, 14, 0.05, 200, 3)

	if _, err := RunBatch(nil, tr.Source()); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := RunBatch(batchSchemes(t), nil); err == nil {
		t.Error("nil source accepted")
	}

	withTrace := batchSchemes(t)
	withTrace[1].Trace = tr
	if _, err := RunBatch(withTrace, tr.Source()); err == nil {
		t.Error("batch config with Trace set accepted")
	}

	withStream := batchSchemes(t)
	withStream[0].Contacts = tr.Source()
	if _, err := RunBatch(withStream, tr.Source()); err == nil {
		t.Error("batch config with Contacts set accepted")
	}

	tiny := (&trace.Trace{Nodes: 1, Duration: 100}).Source()
	if _, err := RunBatch(batchSchemes(t), tiny); err == nil {
		t.Error("1-node source accepted")
	}

	disordered := (&trace.Trace{Nodes: 14, Duration: 100, Contacts: []trace.Contact{
		{T: 50, A: 0, B: 1}, {T: 10, A: 1, B: 2},
	}}).Source()
	if _, err := RunBatch(batchSchemes(t), disordered); err == nil {
		t.Error("out-of-order shared stream accepted")
	}
}

// TestBatchStepZeroAllocSteadyState extends the zero-allocation
// discipline to the batch executor: once warmed up, stepping every
// runner of a batch through one shared contact allocates nothing — the
// per-scheme bins, delay buffers and runner scratch are all preallocated
// or retained.
func TestBatchStepZeroAllocSteadyState(t *testing.T) {
	const (
		nodes    = 8
		items    = 6
		duration = 1e12
		dt       = 0.01
	)
	mk := func(pol core.Policy, seed uint64) Config {
		return Config{
			Rho:          3,
			Utility:      utility.Step{Tau: 10},
			Pop:          demand.Pareto(items, 1, 2),
			Policy:       pol,
			Seed:         seed,
			WarmupFrac:   -1,
			RecordDelays: true, // satellite: preallocated delay buffers stay flat
			BinWidth:     duration / 64,
		}
	}
	cfgs := []Config{mk(core.Static{Label: "uni"}, 5), mk(core.Static{Label: "sqrt"}, 6)}
	runners := make([]*runner, len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i]
		if err := validateBatch(&cfg, nodes, duration); err != nil {
			t.Fatalf("validateBatch: %v", err)
		}
		r, err := buildRunner(&cfg, nodes, duration)
		if err != nil {
			t.Fatalf("buildRunner: %v", err)
		}
		r.checked = true
		runners[i] = r
	}
	var pairs []trace.Contact
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			pairs = append(pairs, trace.Contact{A: a, B: b})
		}
	}
	now, pi := 0.0, 0
	stepOne := func() {
		c := pairs[pi]
		pi = (pi + 1) % len(pairs)
		now += dt
		c.T = now
		for _, r := range runners {
			if err := r.step(c); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
	}
	for i := 0; i < 50000; i++ {
		stepOne()
	}
	if avg := testing.AllocsPerRun(20000, stepOne); avg > 0.01 {
		t.Errorf("batch steady-state step allocates %.4f objects/contact, want 0", avg)
	}
}

// utilitySink defeats dead-code elimination in BenchmarkUtilityFor.
var utilitySink utility.Function

// BenchmarkUtilityFor quantifies the satellite's cached per-item utility
// table: the hot path's s.utilityFor(i) is one slice load, versus the
// per-fulfillment resolveUtility fallback chain it replaced.
func BenchmarkUtilityFor(b *testing.B) {
	const items = 64
	utils := make([]utility.Function, items)
	for i := range utils {
		if i%2 == 0 {
			utils[i] = utility.Step{Tau: float64(i + 1)}
		}
	}
	cfg := Config{
		Rho:       3,
		Utility:   utility.Step{Tau: 10},
		Utilities: utils,
		Pop:       demand.Uniform(items, 1),
		Trace:     &trace.Trace{Nodes: 8, Duration: 100},
		Policy:    core.Static{Label: "uni"},
		NoSticky:  true,
		Seed:      1,
	}
	r, err := newRunner(&cfg)
	if err != nil {
		b.Fatalf("newRunner: %v", err)
	}
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			utilitySink = r.s.utilityFor(i % items)
		}
	})
	b.Run("resolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			utilitySink = resolveUtility(&cfg, i%items)
		}
	})
}
