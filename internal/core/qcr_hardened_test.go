package core

import (
	"math"
	"testing"
)

// Tests for the adversary-hardened reaction (Hardening) and the
// free-rider-aware mandate routing.

func TestHardeningValidate(t *testing.T) {
	cases := []struct {
		name string
		h    *Hardening
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Hardening{}, true},
		{"full", &Hardening{CounterCap: 30, SmoothAlpha: 0.25, ReplicaClamp: 12}, true},
		{"alpha-one", &Hardening{SmoothAlpha: 1}, true},
		{"negative-cap", &Hardening{CounterCap: -1}, false},
		{"negative-alpha", &Hardening{SmoothAlpha: -0.1}, false},
		{"alpha-above-one", &Hardening{SmoothAlpha: 1.5}, false},
		{"nan-alpha", &Hardening{SmoothAlpha: math.NaN()}, false},
		{"negative-clamp", &Hardening{ReplicaClamp: -3}, false},
	}
	for _, tc := range cases {
		err := tc.h.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected, got nil", tc.name)
		}
	}
}

// TestCounterCapSaturatesForgedReports: a ×1000 forged counter fed
// through a capped linear reaction mints at most CounterCap mandates,
// and the intervention is tallied.
func TestCounterCapSaturatesForgedReports(t *testing.T) {
	c := newFakeCache(10, 3)
	q := &QCR{
		Reaction:       PathReplication(1),
		MandateRouting: true,
		Seed:           3,
		Hardening:      &Hardening{CounterCap: 5},
	}
	q.Init(c)
	q.OnFulfill(c, 0, 1, 0, 5000, 1, 1)
	if got := q.MandatesCreated(); got != 5 {
		t.Fatalf("created %d mandates from a capped counter, want 5", got)
	}
	capped, _ := q.HardeningCounters()
	if capped != 1 {
		t.Fatalf("capped tally %d, want 1", capped)
	}
	// An honest report below the cap passes through untouched.
	q.OnFulfill(c, 0, 1, 1, 3, 1, 2)
	if got := q.MandatesCreated(); got != 8 {
		t.Fatalf("created %d mandates total, want 8", got)
	}
	if capped, _ = q.HardeningCounters(); capped != 1 {
		t.Fatalf("honest report was capped (tally %d)", capped)
	}
}

// TestEWMARateLimitsReactionInput: the reaction input is min(y, ŷ) — an
// upward excursion earns only an α-fraction of its rise above the running
// mean, a report at or below the mean passes through untouched, and each
// item keeps its own history.
func TestEWMARateLimitsReactionInput(t *testing.T) {
	c := newFakeCache(10, 3)
	q := &QCR{
		Reaction:       PathReplication(1),
		MandateRouting: true,
		Seed:           3,
		Hardening:      &Hardening{SmoothAlpha: 0.5},
	}
	q.Init(c)
	q.OnFulfill(c, 0, 1, 0, 4, 1, 1) // first report seeds the EWMA: ŷ = 4
	if got := q.MandatesCreated(); got != 4 {
		t.Fatalf("first report minted %d, want 4", got)
	}
	q.OnFulfill(c, 0, 1, 0, 100, 1, 2) // ŷ = 0.5·100 + 0.5·4 = 52; input min(100,52)
	if got := q.MandatesCreated(); got != 4+52 {
		t.Fatalf("second report minted %d total, want 56", got)
	}
	q.OnFulfill(c, 0, 1, 0, 2, 1, 3) // below ŷ: passes through untouched
	if got := q.MandatesCreated(); got != 56+2 {
		t.Fatalf("below-mean report minted %d total, want 58", got)
	}
	q.OnFulfill(c, 0, 1, 1, 10, 1, 4) // fresh item, fresh history
	if got := q.MandatesCreated(); got != 58+10 {
		t.Fatalf("fresh item minted %d total, want 68", got)
	}
}

// TestReplicaClampBoundsSupply: minting stops at the per-item supply
// bound (replicas present plus mandates pending), and withheld mandates
// are tallied.
func TestReplicaClampBoundsSupply(t *testing.T) {
	c := newFakeCache(10, 3)
	c.has[[2]int{4, 0}] = true // two replicas of item 0 already exist
	c.has[[2]int{5, 0}] = true
	q := &QCR{
		Reaction:       PathReplication(1),
		MandateRouting: true,
		Seed:           3,
		Hardening:      &Hardening{ReplicaClamp: 3},
	}
	q.Init(c)
	q.OnFulfill(c, 0, 1, 0, 10, 1, 1) // room = 3 - 2 - 0 = 1
	if got := q.MandatesCreated(); got != 1 {
		t.Fatalf("minted %d mandates with 1 slot of headroom, want 1", got)
	}
	if _, clamped := q.HardeningCounters(); clamped != 9 {
		t.Fatalf("clamped tally %d, want 9", clamped)
	}
	// The pending mandate now fills the last slot: further minting is
	// fully suppressed.
	q.OnFulfill(c, 0, 1, 0, 10, 1, 2)
	if got := q.MandatesCreated(); got != 1 {
		t.Fatalf("minted %d mandates at the clamp, want still 1", got)
	}
	if _, clamped := q.HardeningCounters(); clamped != 19 {
		t.Fatalf("clamped tally %d, want 19", clamped)
	}
}

// TestHardenedReactionOverflowRegression: the most extreme forged counter
// representable — MaxQueryCount, where the simulator's saturating
// increment and the adversary's Inflate both stop — flows through the
// hardened reaction without overflow and mints within the supply clamp.
func TestHardenedReactionOverflowRegression(t *testing.T) {
	c := newFakeCache(10, 3)
	q := &QCR{
		Reaction:       PathReplication(1),
		MandateRouting: true,
		MaxMandates:    5,
		Seed:           3,
		Hardening:      &Hardening{CounterCap: 30, SmoothAlpha: 0.25, ReplicaClamp: 8},
	}
	q.Init(c)
	for i := 0; i < 50; i++ {
		q.OnFulfill(c, 0, 1, 0, MaxQueryCount, 1, float64(i))
	}
	if got := q.MandatesCreated(); got < 0 || got > 8 {
		t.Fatalf("minted %d mandates from saturated counters, want within clamp 8", got)
	}
	if capped, _ := q.HardeningCounters(); capped != 50 {
		t.Fatalf("capped tally %d, want 50", capped)
	}
	// The unhardened reaction also survives the saturated counter: the
	// per-fulfillment cap bounds the burst and nothing overflows.
	q0 := &QCR{Reaction: PathReplication(1), MandateRouting: true, MaxMandates: 5, Seed: 3}
	q0.Init(c)
	q0.OnFulfill(c, 0, 1, 0, MaxQueryCount, 1, 1)
	if got := q0.MandatesCreated(); got != 5 {
		t.Fatalf("vanilla minted %d from a saturated counter, want MaxMandates 5", got)
	}
}

// TestHardeningZeroKnobsMatchesVanilla: a non-nil Hardening with every
// knob off mints exactly what the vanilla path mints.
func TestHardeningZeroKnobsMatchesVanilla(t *testing.T) {
	mint := func(h *Hardening) int {
		c := newFakeCache(10, 3)
		q := &QCR{Reaction: PathReplication(1), MandateRouting: true, Seed: 9, Hardening: h}
		q.Init(c)
		for i := 1; i <= 20; i++ {
			q.OnFulfill(c, 0, 1, i%3, i, 1, float64(i))
		}
		return q.MandatesCreated()
	}
	if a, b := mint(nil), mint(&Hardening{}); a != b {
		t.Fatalf("zero-knob hardening minted %d, vanilla %d", b, a)
	}
}

// fakeMisbehavior marks a fixed node set as free-riding.
type fakeMisbehavior map[int]bool

func (f fakeMisbehavior) FreeRider(node int) bool { return f[node] }

// TestRoutingAvoidsFreeRiders: mandates never cross onto a node that
// refuses to carry them, even when routing would send them there.
func TestRoutingAvoidsFreeRiders(t *testing.T) {
	c := newFakeCache(4, 2)
	c.has[[2]int{1, 0}] = true // node 1 is the sole holder of item 0
	q := &QCR{
		Reaction:       PathReplication(1),
		MandateRouting: true,
		StrictSource:   true,
		Seed:           5,
	}
	q.Init(c)
	q.SetMisbehavior(fakeMisbehavior{1: true})
	q.addMandates(0, 0, 3, 0)
	q.OnMeeting(c, 0, 1, 1)
	// Routing wants all three at the holder, but the holder free-rides:
	// everything stays at node 0.
	if got := q.count(0, 0); got != 3 {
		t.Fatalf("node 0 keeps %d mandates, want 3", got)
	}
	if got := q.count(1, 0); got != 0 {
		t.Fatalf("free-rider carries %d mandates, want 0", got)
	}

	// A free-riding origin hands everything to an honest peer.
	q2 := &QCR{Reaction: PathReplication(1), MandateRouting: true, Seed: 5}
	q2.Init(c)
	q2.SetMisbehavior(fakeMisbehavior{0: true})
	q2.addMandates(0, 1, 3, 0)
	q2.OnMeeting(c, 0, 2, 1)
	if got := q2.count(2, 1); got != 3 {
		t.Fatalf("honest peer carries %d mandates, want 3", got)
	}

	// Two free-riders meeting leave the piles untouched.
	q3 := &QCR{Reaction: PathReplication(1), MandateRouting: true, Seed: 5}
	q3.Init(c)
	q3.SetMisbehavior(fakeMisbehavior{0: true, 2: true})
	q3.addMandates(0, 1, 2, 0)
	q3.OnMeeting(c, 0, 2, 1)
	if got := q3.count(0, 1); got != 2 {
		t.Fatalf("free-rider meeting moved mandates: node 0 has %d, want 2", got)
	}
}
