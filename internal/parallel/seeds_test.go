package parallel

import (
	"fmt"
	"math/bits"
	"testing"
)

// TestTrialSeedsPairwiseDistinct is the seed-collision property test: over
// 1000 trials and a spread of base seeds, every derived trial seed must be
// distinct — a collision would silently correlate two "independent" trials
// of every experiment. (Bases that differ by an exact multiple of the
// SplitMix64 increment alias each other's trial streams by construction;
// scenario seeds are small integers, nowhere near that regime.)
func TestTrialSeedsPairwiseDistinct(t *testing.T) {
	const trials = 1000
	bases := []uint64{0, 1, 2, 3, 7, 42, 1 << 32, ^uint64(0)}
	seen := make(map[uint64]string, trials*len(bases))
	for _, base := range bases {
		for trial := 0; trial < trials; trial++ {
			s := TrialSeed(base, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: base=%d trial=%d reproduces %s (seed %#x)", base, trial, prev, s)
			}
			seen[s] = fmt.Sprintf("base=%d trial=%d", base, trial)
		}
	}
}

// TestTrialSeedsWellMixed guards the quality, not just distinctness, of
// the derivation: consecutive trial seeds should differ in roughly half
// their bits (SplitMix64 avalanche). A regression to, say, sequential
// seeds would pass distinctness but fail here.
func TestTrialSeedsWellMixed(t *testing.T) {
	const trials = 1000
	var totalDist int
	for trial := 0; trial < trials-1; trial++ {
		a, b := TrialSeed(1, trial), TrialSeed(1, trial+1)
		totalDist += bits.OnesCount64(a ^ b)
	}
	avg := float64(totalDist) / float64(trials-1)
	if avg < 24 || avg > 40 {
		t.Errorf("mean Hamming distance of consecutive trial seeds = %.1f, want ≈32", avg)
	}
}

// TestRunTrialsWorkerCountInvariant is the scheduling-independence
// property over 1000 trials: the per-trial outputs (a function of trial
// index and seed alone) must be identical for every worker count, and
// each trial must observe exactly the TrialSeed-derived seed.
func TestRunTrialsWorkerCountInvariant(t *testing.T) {
	const trials = 1000
	const base = 0xfeed
	run := func(workers int) []uint64 {
		out, err := RunTrials(trials, workers, base, func(trial int, seed uint64) (uint64, error) {
			if want := TrialSeed(base, trial); seed != want {
				t.Errorf("workers=%d trial %d: seed %#x, want %#x", workers, trial, seed, want)
			}
			// A value that depends on both inputs, so any reordering or
			// seed mixup shows up as a mismatch.
			return SplitMix64(seed ^ uint64(trial)*golden), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 3, 8, 0} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d trial %d: %#x != single-worker %#x", w, i, got[i], ref[i])
			}
		}
	}
}
