package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	// Reference values from standard normal tables.
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.575829303548901},
		{0.9995, 3.290526731491926},
		{0.025, -1.959963984540054},
		{0.001, -3.090232306167813},
	}
	for _, tc := range cases {
		if got := NormalQuantile(tc.p); math.Abs(got-tc.want) > 1e-7 {
			t.Errorf("NormalQuantile(%g) = %.9f, want %.9f", tc.p, got, tc.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile endpoints not ±Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile outside [0,1] not NaN")
	}
}

func TestTQuantile(t *testing.T) {
	// Reference values from t tables (two-sided 95% → p = 0.975).
	cases := []struct {
		p, df, want, tol float64
	}{
		{0.975, 2, 4.302653, 2e-2},
		{0.975, 5, 2.570582, 2e-3},
		{0.975, 10, 2.228139, 5e-4},
		{0.975, 30, 2.042272, 1e-4},
		{0.995, 10, 3.169273, 5e-3},
		{0.995, 20, 2.845340, 5e-4},
	}
	for _, tc := range cases {
		if got := TQuantile(tc.p, tc.df); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("TQuantile(%g, %g) = %.6f, want %.6f ± %g", tc.p, tc.df, got, tc.want, tc.tol)
		}
	}
	if got := TQuantile(0.5, 7); got != 0 {
		t.Errorf("TQuantile median = %g, want 0", got)
	}
	if !math.IsNaN(TQuantile(0.9, 0)) {
		t.Error("TQuantile with df=0 not NaN")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{4.9, 5.1, 5.0, 4.8, 5.2}
	iv := MeanCI(xs, 0.95)
	if math.Abs(iv.Center-5.0) > 1e-12 {
		t.Errorf("center %g, want 5", iv.Center)
	}
	// s = sqrt(0.025), halfwidth = t_{0.975,4}·s/√5 ≈ 2.7764·0.1581/2.2361.
	want := 2.776445 * math.Sqrt(0.025) / math.Sqrt(5)
	if math.Abs(iv.Halfwidth-want) > 1e-2*want {
		t.Errorf("halfwidth %g, want ≈ %g", iv.Halfwidth, want)
	}
	if !iv.Contains(5.0) || iv.Contains(6.0) {
		t.Error("Contains misbehaves")
	}
	if got := MeanCI([]float64{1}, 0.95); !math.IsInf(got.Halfwidth, 1) {
		t.Error("single observation should give infinite halfwidth")
	}
}

func TestWelchCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	a := make([]float64, 200)
	b := make([]float64, 150)
	for i := range a {
		a[i] = 3 + rng.NormFloat64()
	}
	for i := range b {
		b[i] = 1 + 2*rng.NormFloat64()
	}
	iv := WelchCI(a, b, 0.99)
	if !iv.Contains(2) {
		t.Errorf("true difference 2 outside %v", iv)
	}
	if iv.Contains(0) {
		t.Errorf("zero difference inside %v despite a 2σ-scale gap", iv)
	}
	if iv.DF < 150 || iv.DF > 350 {
		t.Errorf("Welch df %g implausible for n=200/150", iv.DF)
	}
	// Identical degenerate samples: zero-width interval, no NaN.
	c := []float64{2, 2, 2}
	iv = WelchCI(c, c, 0.95)
	if iv.Halfwidth != 0 || iv.Center != 0 {
		t.Errorf("degenerate Welch interval %v", iv)
	}
}

// TestWelchCICoverage checks empirical coverage: across repeated draws of
// two same-mean samples, the 95% interval should contain 0 close to 95%
// of the time.
func TestWelchCICoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	const reps = 2000
	hits := 0
	a := make([]float64, 20)
	b := make([]float64, 25)
	for r := 0; r < reps; r++ {
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = 3 * rng.NormFloat64()
		}
		if WelchCI(a, b, 0.95).Contains(0) {
			hits++
		}
	}
	cov := float64(hits) / reps
	if cov < 0.93 || cov > 0.97 {
		t.Errorf("empirical coverage %.3f, want ≈ 0.95", cov)
	}
}

func TestKSExponential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	const n = 4000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / 0.7
	}
	d := KSExponential(xs, 0.7)
	if crit := KSCritical(0.001, n); d > crit {
		t.Errorf("KS %.4f exceeds critical %.4f for true Exp(0.7) samples", d, crit)
	}
	// Wrong rate by 2×: must be detected overwhelmingly.
	if d := KSExponential(xs, 1.4); d < KSCritical(0.001, n) {
		t.Errorf("KS %.4f fails to reject rate misspecified by 2×", d)
	}
}

func TestKSStatisticUniform(t *testing.T) {
	// Deterministic check: perfectly spaced uniform samples have D = 1/(2n)
	// against U(0,1) when placed at bin midpoints.
	n := 100
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / float64(n)
	}
	d := KSStatistic(xs, func(x float64) float64 { return x })
	if math.Abs(d-1/(2*float64(n))) > 1e-12 {
		t.Errorf("midpoint uniform D = %g, want %g", d, 1/(2*float64(n)))
	}
	if !math.IsNaN(KSStatistic(nil, func(x float64) float64 { return x })) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSCritical(t *testing.T) {
	// The asymptotic 99.9% Kolmogorov quantile is ≈ 1.9495; the existing
	// contact-stream tests use 1.95/√n, so KSCritical must agree closely.
	got := KSCritical(0.001, 10000)
	want := 1.9495 / math.Sqrt(10000)
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("KSCritical(0.001, 1e4) = %g, want ≈ %g", got, want)
	}
	if !math.IsNaN(KSCritical(0, 10)) || !math.IsNaN(KSCritical(0.5, 0)) {
		t.Error("invalid arguments should give NaN")
	}
}
