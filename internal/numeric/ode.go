package numeric

// Derivs computes dx/dt into dst given the current time and state. dst and
// x always have the same length and dst is zeroed by the caller.
type Derivs func(t float64, x, dst []float64)

// RK4 integrates dx/dt = f(t, x) from t0 to t1 with the classical
// fourth-order Runge–Kutta method using n equal steps, starting from x0.
// It returns the final state (a fresh slice; x0 is not modified).
func RK4(f Derivs, x0 []float64, t0, t1 float64, n int) []float64 {
	if n <= 0 {
		n = 1
	}
	d := len(x0)
	x := append([]float64(nil), x0...)
	k1 := make([]float64, d)
	k2 := make([]float64, d)
	k3 := make([]float64, d)
	k4 := make([]float64, d)
	tmp := make([]float64, d)
	h := (t1 - t0) / float64(n)
	t := t0
	for step := 0; step < n; step++ {
		f(t, x, k1)
		for i := range tmp {
			tmp[i] = x[i] + h/2*k1[i]
		}
		f(t+h/2, tmp, k2)
		for i := range tmp {
			tmp[i] = x[i] + h/2*k2[i]
		}
		f(t+h/2, tmp, k3)
		for i := range tmp {
			tmp[i] = x[i] + h*k3[i]
		}
		f(t+h, tmp, k4)
		for i := range x {
			x[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += h
	}
	return x
}

// RK4Until integrates like RK4 but checks the supplied predicate after
// every step and stops early when it returns true. It returns the final
// state and the time reached. The predicate sees the live state slice and
// must not retain or modify it.
func RK4Until(f Derivs, x0 []float64, t0, tMax, h float64, done func(t float64, x []float64) bool) ([]float64, float64) {
	if h <= 0 {
		h = (tMax - t0) / 1000
	}
	x := append([]float64(nil), x0...)
	t := t0
	for t < tMax {
		step := h
		if t+step > tMax {
			step = tMax - t
		}
		x = RK4(f, x, t, t+step, 1)
		t += step
		if done != nil && done(t, x) {
			break
		}
	}
	return x, t
}
