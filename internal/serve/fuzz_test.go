package serve

import (
	"math"
	"testing"

	"impatience/internal/utility"
)

// FuzzServeRequest fuzzes the observe-request decoder: arbitrary bytes
// must either be rejected or produce a fully validated window — finite
// positive length, dense counts of the catalog size, every entry finite
// and non-negative. A panic or an invalid accepted window is a bug.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"window_sec":1,"counts":{"0":10,"3":2}}`), 8)
	f.Add([]byte(`{"window_sec":0.5,"counts":{}}`), 1)
	f.Add([]byte(`{"window_sec":-1,"counts":{"0":1}}`), 4)
	f.Add([]byte(`{"window_sec":1,"counts":{"7":1}}`), 4)
	f.Add([]byte(`{"window_sec":1,"counts":{"-2":3}}`), 4)
	f.Add([]byte(`{"window_sec":1e308,"counts":{"0":1e308}}`), 2)
	f.Add([]byte(`not json`), 4)
	f.Fuzz(func(t *testing.T, data []byte, items int) {
		if items <= 0 || items > 1<<12 {
			return
		}
		window, counts, err := ParseObserve(data, items)
		if err != nil {
			if counts != nil {
				t.Fatalf("rejected input returned counts %v", counts)
			}
			return
		}
		if !(window > 0) || math.IsInf(window, 1) || math.IsNaN(window) {
			t.Fatalf("accepted window %g", window)
		}
		if len(counts) != items {
			t.Fatalf("accepted counts of length %d for %d items", len(counts), items)
		}
		for i, c := range counts {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("accepted count[%d]=%g", i, c)
			}
		}
		// Accepted windows must be foldable: the estimator re-validates and
		// must agree with the decoder about what is clean input.
		e, err := NewEstimator(items, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Fold(counts, window); err != nil {
			t.Fatalf("decoder accepted a window the estimator rejects: %v", err)
		}
	})
}

// FuzzUtilitySpec fuzzes the ϕ/ψ table cache keying: any spec the parser
// accepts must produce a table whose canonical name round-trips — asking
// again by canonical name must hit the same cached entry, never build a
// second table for the same utility.
func FuzzUtilitySpec(f *testing.F) {
	f.Add("step:10", 0.01)
	f.Add("exp:0.5", 0.02)
	f.Add("exponential:0.5", 0.02)
	f.Add("power:-1", 0.05)
	f.Add("power:1.5", 0.05)
	f.Add("neglog", 0.01)
	f.Add("log", 0.01)
	f.Add("step:-3", 0.01)
	f.Add("step:1e309", 0.01)
	f.Add("", 0.01)
	f.Fuzz(func(t *testing.T, spec string, mu float64) {
		if !(mu > 0) || mu > 1e6 {
			return
		}
		const servers = 12
		c := NewTableCache(64)
		a, err := c.Get(spec, mu, servers)
		if err != nil {
			if c.Len() != 0 {
				t.Fatalf("cache mutated by rejected spec %q", spec)
			}
			return
		}
		fn, err := utility.Parse(spec)
		if err != nil {
			t.Fatalf("cache accepted spec %q the parser rejects: %v", spec, err)
		}
		if a.Utility != fn.Name() {
			t.Fatalf("table for %q keyed as %q, canonical name is %q", spec, a.Utility, fn.Name())
		}
		// The canonical name itself is not necessarily a parseable spec, but
		// re-asking with the original spec must hit the same entry.
		b, err := c.Get(spec, mu, servers)
		if err != nil {
			t.Fatalf("second lookup of %q failed: %v", spec, err)
		}
		if a != b {
			t.Fatalf("spec %q built two tables for one canonical key", spec)
		}
		if c.Len() != 1 {
			t.Fatalf("cache holds %d entries after one spec", c.Len())
		}
	})
}
