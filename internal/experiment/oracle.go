package experiment

// Hooks used by the theory-vs-simulation conformance harness
// (internal/oracle). They live here so the oracle drives exactly the
// same scenario plumbing as the figure pipelines: scenario-derived
// popularity, the trial-seed discipline of internal/parallel, and the
// streaming contact pipeline.

import (
	"math/rand/v2"

	"impatience/internal/alloc"
	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/rates"
	"impatience/internal/sim"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// RunStaticStream simulates a fixed allocation for one trial on a fused
// homogeneous contact stream (generation and simulation in one pass,
// nothing materialized). seed drives the contact stream and must come
// from parallel.TrialSeed so trials are scheduling-independent; the
// simulator's own streams are seeded exactly like RunScheme's. With
// recordDelays the result carries the per-item delay samples and gains
// the oracle checks against the closed-form welfare terms.
func (sc Scenario) RunStaticStream(u utility.Function, initial alloc.Counts, trial int, seed uint64, recordDelays bool) (*sim.Result, error) {
	src, err := contact.NewHomogeneousStream(sc.Nodes, sc.Mu, sc.Duration, rand.New(rand.NewPCG(seed, seed^0xabcdef)))
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Rho:          sc.Rho,
		Utility:      u,
		Pop:          sc.Pop(),
		Contacts:     src,
		Policy:       core.Static{Label: "oracle"},
		Initial:      initial,
		NoSticky:     true,
		Seed:         sc.Seed*1_000_003 + uint64(trial)*101,
		WarmupFrac:   sc.WarmupFrac,
		RecordDelays: recordDelays,
	}
	return sim.Run(cfg)
}

// RunStaticHybrid is RunStaticStream's mean-field twin: the same static
// allocation, popularity, warmup and simulator seed discipline, but the
// population evolves on the hybrid engine over a single-community rate
// model matching the homogeneous µ. The oracle's hybrid ladder compares
// its welfare against the full-sim trial CI of RunStaticStream.
func (sc Scenario) RunStaticHybrid(u utility.Function, initial alloc.Counts, m *rates.Model, trial int, seed uint64) (*sim.Result, error) {
	cfg := sim.Config{
		Rho:        sc.Rho,
		Utility:    u,
		Pop:        sc.Pop(),
		Policy:     core.Static{Label: "oracle"},
		Initial:    initial,
		NoSticky:   true,
		Seed:       sc.Seed*1_000_003 + uint64(trial)*101,
		WarmupFrac: sc.WarmupFrac,
	}
	hy := sc.Hybrid
	hy.ContactSeed = seed
	return sim.RunHybrid(cfg, m, sc.Duration, hy)
}

// Homogeneous returns the scenario's closed-form welfare system (pure
// P2P, Section 4): the analytic side of the oracle's sim↔theory gates.
// It is the same construction qcrPolicy uses to tune the reaction scale,
// exported so oracle and scenario can never drift apart on µ, |S| or the
// popularity law.
func (sc Scenario) Homogeneous(u utility.Function) welfare.Homogeneous {
	return welfare.Homogeneous{
		Utility: u,
		Pop:     sc.Pop(),
		Mu:      sc.Mu,
		Servers: sc.Nodes,
		Clients: sc.Nodes,
		PureP2P: true,
	}
}
