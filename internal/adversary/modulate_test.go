package adversary

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/contact"
	"impatience/internal/synth"
	"impatience/internal/trace"
)

func testTrace(t *testing.T, nodes int, mu, duration float64, seed uint64) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed*2654435761))
	tr, err := contact.GenerateHomogeneous(nodes, mu, duration, rng)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return tr
}

func drain(t *testing.T, s trace.Source) []trace.Contact {
	t.Helper()
	var out []trace.Contact
	for {
		c, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	if es, ok := s.(trace.ErrSource); ok && es.Err() != nil {
		t.Fatalf("stream error: %v", es.Err())
	}
	return out
}

// TestModulatePreservesTraceInvariants: the time change keeps the node
// set, duration, contact count, pair structure and time ordering of the
// base stream while concentrating contacts into the day window.
func TestModulatePreservesTraceInvariants(t *testing.T) {
	const duration = 4 * 1440 // four days
	tr := testTrace(t, 20, 0.002, duration, 9)
	base := drain(t, tr.Source())

	mod, err := DayNight(tr.Source(), 480, 1200, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Nodes() != 20 || mod.Duration() != duration {
		t.Fatalf("Nodes/Duration = %d/%g, want 20/%g", mod.Nodes(), mod.Duration(), float64(duration))
	}
	got := drain(t, mod)
	if len(got) != len(base) {
		t.Fatalf("contact count %d, want %d", len(got), len(base))
	}
	prev := math.Inf(-1)
	day := 0
	for i, c := range got {
		if c.A != base[i].A || c.B != base[i].B {
			t.Fatalf("contact %d pair (%d,%d), want (%d,%d)", i, c.A, c.B, base[i].A, base[i].B)
		}
		if c.T < prev {
			t.Fatalf("contact %d out of order: %g after %g", i, c.T, prev)
		}
		if c.T < 0 || c.T > duration {
			t.Fatalf("contact %d time %g outside [0,%g]", i, c.T, float64(duration))
		}
		prev = c.T
		if m := math.Mod(c.T, 1440); m >= 480 && m < 1200 {
			day++
		}
	}
	// The day window covers half the clock but carries activity 1 against
	// 0.1 at night: expect ~91% of contacts in daytime.
	if frac := float64(day) / float64(len(got)); frac < 0.8 {
		t.Errorf("daytime contact fraction %.2f, want > 0.8", frac)
	}
}

// TestModulateReopenReplays: a reopened modulated source streams the
// identical sequence — the property the batch harness depends on.
func TestModulateReopenReplays(t *testing.T) {
	tr := testTrace(t, 15, 0.003, 2*1440, 5)
	mod, err := DayNight(tr.Source(), 480, 1200, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ro, ok := mod.(trace.Reopenable)
	if !ok {
		t.Fatal("modulated slice source is not reopenable")
	}
	first := drain(t, mod)
	again, err := ro.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	second := drain(t, again)
	if len(first) != len(second) {
		t.Fatalf("replay length %d, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverges at contact %d: %v vs %v", i, second[i], first[i])
		}
	}
}

// TestModulateFlatProfileIsIdentity: a profile with no night discount is
// the identity time change.
func TestModulateFlatProfileIsIdentity(t *testing.T) {
	tr := testTrace(t, 10, 0.005, 1440, 3)
	base := drain(t, tr.Source())
	mod, err := Modulate(tr.Source(), synth.NewDiurnal(0, 1440, 1, 1440))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, mod)
	for i := range base {
		if math.Abs(got[i].T-base[i].T) > 1e-9 {
			t.Fatalf("flat profile moved contact %d: %g vs %g", i, got[i].T, base[i].T)
		}
	}
}

func TestDayNightValidation(t *testing.T) {
	tr := testTrace(t, 10, 0.005, 1440, 3)
	bad := []struct {
		name              string
		start, end, night float64
	}{
		{"negative-start", -10, 1200, 0.5},
		{"end-before-start", 1200, 480, 0.5},
		{"end-past-midnight", 480, 1500, 0.5},
		{"zero-night", 480, 1200, 0},
		{"night-above-one", 480, 1200, 1.5},
	}
	for _, tc := range bad {
		if _, err := DayNight(tr.Source(), tc.start, tc.end, tc.night); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A zero-duration base is rejected at wrap time.
	empty := &trace.Trace{Nodes: 5, Duration: 0}
	if _, err := DayNight(empty.Source(), 480, 1200, 0.5); err == nil {
		t.Error("zero-duration base accepted")
	}
}
