package numeric

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func aliasRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed*0x9e3779b9)) }

// TestAliasMatchesWeights draws heavily from several weight shapes and
// chi-square-tests the empirical frequencies against the weights. The
// 99.9% critical values are generous so the fixed-seed test is far from
// its rejection boundary.
func TestAliasMatchesWeights(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		crit    float64 // chi-square 99.9% critical value for df = k-1 (positive-weight columns)
	}{
		{"uniform", []float64{1, 1, 1, 1}, 16.27},
		{"skewed", []float64{10, 1, 0.1, 0.01}, 16.27},
		{"with-zeros", []float64{0, 3, 0, 1, 0, 2}, 16.27},
		{"single", []float64{0, 0, 5}, 10.83},
		{"pareto-ish", []float64{1, 0.5, 1.0 / 3, 0.25, 0.2, 1.0 / 6, 1.0 / 7, 0.125}, 24.32},
	}
	const draws = 200000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewAlias(tc.weights)
			if err != nil {
				t.Fatalf("NewAlias: %v", err)
			}
			rng := aliasRNG(11)
			counts := make([]int, len(tc.weights))
			for i := 0; i < draws; i++ {
				counts[a.Sample(rng)]++
			}
			var total float64
			for _, w := range tc.weights {
				total += w
			}
			var chi2 float64
			for i, w := range tc.weights {
				exp := w / total * draws
				if exp == 0 {
					if counts[i] != 0 {
						t.Fatalf("zero-weight column %d sampled %d times", i, counts[i])
					}
					continue
				}
				d := float64(counts[i]) - exp
				chi2 += d * d / exp
			}
			if chi2 > tc.crit {
				t.Errorf("chi-square %.2f exceeds 99.9%% critical value %.2f (counts %v)", chi2, tc.crit, counts)
			}
		})
	}
}

// TestAliasRejectsBadWeights pins the error conventions: NaN entries
// surface ErrNaN, negative/infinite entries and degenerate totals surface
// ErrBadWeights — never a silently corrupt table.
func TestAliasRejectsBadWeights(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		want    error
	}{
		{"empty", nil, ErrBadWeights},
		{"all-zero", []float64{0, 0, 0}, ErrBadWeights},
		{"negative", []float64{1, -0.5, 2}, ErrBadWeights},
		{"inf", []float64{1, math.Inf(1)}, ErrBadWeights},
		{"nan", []float64{1, math.NaN(), 2}, ErrNaN},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewAlias(tc.weights)
			if err == nil {
				t.Fatalf("NewAlias accepted %v", tc.weights)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v does not wrap %v", err, tc.want)
			}
			if a != nil {
				t.Errorf("non-nil table returned with error")
			}
		})
	}
}

// TestAliasPropertyRandomWeights fuzzes construction over random weight
// vectors (with zeros mixed in) and checks the table is well-formed: every
// prob in [0,1], every alias a valid positive-weight column, and
// zero-weight columns unreachable.
func TestAliasPropertyRandomWeights(t *testing.T) {
	rng := aliasRNG(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(40)
		w := make([]float64, n)
		positive := false
		for i := range w {
			if rng.Float64() < 0.3 {
				w[i] = 0
			} else {
				w[i] = rng.ExpFloat64()
				positive = true
			}
		}
		if !positive {
			w[rng.IntN(n)] = 1
		}
		a, err := NewAlias(w)
		if err != nil {
			t.Fatalf("trial %d: NewAlias(%v): %v", trial, w, err)
		}
		for i := range a.prob {
			if a.prob[i] < 0 || a.prob[i] > 1 || math.IsNaN(a.prob[i]) {
				t.Fatalf("trial %d: prob[%d]=%g out of [0,1]", trial, i, a.prob[i])
			}
			al := int(a.alias[i])
			if al < 0 || al >= n {
				t.Fatalf("trial %d: alias[%d]=%d out of range", trial, i, al)
			}
			// A column reachable via alias must have positive weight.
			if a.prob[i] < 1 && w[al] == 0 {
				t.Fatalf("trial %d: alias[%d] points at zero-weight column %d", trial, i, al)
			}
		}
		for i := 0; i < 2000; i++ {
			if k := a.Sample(rng); w[k] == 0 {
				t.Fatalf("trial %d: sampled zero-weight column %d", trial, k)
			}
		}
	}
}

func BenchmarkAliasSample(b *testing.B) {
	w := make([]float64, 1<<19) // ~ node pairs at N=1k
	rng := aliasRNG(3)
	for i := range w {
		w[i] = rng.ExpFloat64()
	}
	a, err := NewAlias(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Sample(rng)
	}
	_ = sink
}

// TestAliasProbabilities checks that the realized distribution read back
// from the table matches the normalized weights to float accuracy — the
// guarantee the hierarchical samplers' 1e-12 equivalence suite builds on.
func TestAliasProbabilities(t *testing.T) {
	rng := aliasRNG(11)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(64)
		w := make([]float64, n)
		var total float64
		for i := range w {
			if rng.Float64() < 0.25 {
				w[i] = 0 // exercise zero-weight columns
			} else {
				w[i] = rng.ExpFloat64()
			}
			total += w[i]
		}
		if total == 0 {
			w[0] = 1
			total = 1
		}
		a, err := NewAlias(w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p := a.Probabilities()
		var sum float64
		for i := range p {
			sum += p[i]
			if want := w[i] / total; math.Abs(p[i]-want) > 1e-12 {
				t.Fatalf("trial %d: P[%d] = %g, want %g (Δ=%g)", trial, i, p[i], want, p[i]-want)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("trial %d: probabilities sum to %g", trial, sum)
		}
	}
}
