package trace

import (
	"errors"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Nodes:    4,
		Duration: 100,
		Contacts: []Contact{
			{T: 1, A: 0, B: 1},
			{T: 5, A: 2, B: 3},
			{T: 5, A: 0, B: 2},
			{T: 99, A: 1, B: 3},
		},
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	src := tr.Source()
	if src.Nodes() != tr.Nodes || src.Duration() != tr.Duration {
		t.Fatalf("dims %d/%g, want %d/%g", src.Nodes(), src.Duration(), tr.Nodes, tr.Duration)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got.Contacts) != len(tr.Contacts) {
		t.Fatalf("%d contacts, want %d", len(got.Contacts), len(tr.Contacts))
	}
	for i := range got.Contacts {
		if got.Contacts[i] != tr.Contacts[i] {
			t.Fatalf("contact %d = %+v, want %+v", i, got.Contacts[i], tr.Contacts[i])
		}
	}
	// A drained source stays drained.
	if _, ok := src.Next(); ok {
		t.Error("drained source yielded a contact")
	}
}

func TestPairFromIndexRoundTrip(t *testing.T) {
	for _, nodes := range []int{2, 3, 5, 17, 50, 257, 1000} {
		idx := 0
		for a := 0; a < nodes; a++ {
			for b := a + 1; b < nodes; b++ {
				if got := PairIndex(nodes, a, b); got != idx {
					t.Fatalf("n=%d: PairIndex(%d,%d)=%d, want %d", nodes, a, b, got, idx)
				}
				ga, gb := PairFromIndex(nodes, idx)
				if ga != a || gb != b {
					t.Fatalf("n=%d: PairFromIndex(%d)=(%d,%d), want (%d,%d)", nodes, idx, ga, gb, a, b)
				}
				idx++
			}
		}
	}
}

// TestPairFromIndexLargeN spot-checks the float inversion where the
// quadratic is large enough for rounding to matter.
func TestPairFromIndexLargeN(t *testing.T) {
	const nodes = 200000
	for _, idx := range []int{0, 1, nodes - 2, nodes - 1, NumPairs(nodes) / 2, NumPairs(nodes) - 2, NumPairs(nodes) - 1} {
		a, b := PairFromIndex(nodes, idx)
		if a < 0 || b >= nodes || a >= b {
			t.Fatalf("PairFromIndex(%d) = (%d,%d) invalid", idx, a, b)
		}
		if got := PairIndex(nodes, a, b); got != idx {
			t.Fatalf("round trip of idx %d via (%d,%d) gave %d", idx, a, b, got)
		}
	}
}

func TestStreamReaderMatchesRead(t *testing.T) {
	var sb strings.Builder
	tr := sampleTrace()
	if err := Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	viaRead, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sr, err := NewStreamReader(strings.NewReader(text))
	if err != nil {
		t.Fatalf("NewStreamReader: %v", err)
	}
	viaStream, err := Collect(sr)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(viaRead.Contacts) != len(viaStream.Contacts) {
		t.Fatalf("stream %d contacts, read %d", len(viaStream.Contacts), len(viaRead.Contacts))
	}
	for i := range viaRead.Contacts {
		if viaRead.Contacts[i] != viaStream.Contacts[i] {
			t.Fatalf("contact %d: stream %+v != read %+v", i, viaStream.Contacts[i], viaRead.Contacts[i])
		}
	}
}

func TestStreamReaderErrors(t *testing.T) {
	cases := []struct {
		name   string
		text   string
		header bool // error expected at construction
	}{
		{"contact-before-header", "1 0 1\nnodes 3\nduration 10\n", true},
		{"no-header", "# empty\n", true},
		{"bad-node-count", "nodes x\nduration 10\n", true},
		{"out-of-order", "nodes 3\nduration 10\n5 0 1\n2 1 2\n", false},
		{"bad-endpoint", "nodes 3\nduration 10\n1 0 7\n", false},
		{"self-contact", "nodes 3\nduration 10\n1 2 2\n", false},
		{"past-duration", "nodes 3\nduration 10\n11 0 1\n", false},
		{"garbage-line", "nodes 3\nduration 10\n1 0 1\nwhat even\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sr, err := NewStreamReader(strings.NewReader(tc.text))
			if tc.header {
				if err == nil {
					t.Fatal("header error not reported")
				}
				return
			}
			if err != nil {
				t.Fatalf("NewStreamReader: %v", err)
			}
			for {
				if _, ok := sr.Next(); !ok {
					break
				}
			}
			if sr.Err() == nil {
				t.Error("mid-stream error not reported by Err")
			}
		})
	}
}

func TestOpenStreamFile(t *testing.T) {
	path := t.TempDir() + "/trace.txt"
	tr := sampleTrace()
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenStream(path)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	got, err := Collect(sr)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got.Contacts) != len(tr.Contacts) {
		t.Fatalf("%d contacts, want %d", len(got.Contacts), len(tr.Contacts))
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := OpenStream(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCollectPropagatesStreamError(t *testing.T) {
	sr, err := NewStreamReader(strings.NewReader("nodes 3\nduration 10\n5 0 1\n2 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(sr); !errors.Is(err, ErrInvalid) {
		t.Errorf("Collect error %v, want ErrInvalid", err)
	}
}

// TestSliceSourceReopen: a drained slice adapter reopens into a fresh
// view over the same trace.
func TestSliceSourceReopen(t *testing.T) {
	tr := sampleTrace()
	src := tr.Source()
	if _, err := Collect(src); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	re, err := src.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	got, err := Collect(re)
	if err != nil {
		t.Fatalf("Collect reopened: %v", err)
	}
	if len(got.Contacts) != len(tr.Contacts) {
		t.Fatalf("reopened source yields %d contacts, want %d", len(got.Contacts), len(tr.Contacts))
	}
}

// TestEmpiricalRatesFrom: the streaming estimator must be bit-identical
// to EmpiricalRates over the same contacts, and must reject contract
// violations instead of mis-indexing.
func TestEmpiricalRatesFrom(t *testing.T) {
	tr := sampleTrace()
	want := EmpiricalRates(tr)
	got, err := EmpiricalRatesFrom(tr.Source())
	if err != nil {
		t.Fatalf("EmpiricalRatesFrom: %v", err)
	}
	for i, w := range want.Rates() {
		if got.Rates()[i] != w {
			t.Fatalf("pair %d: rate %g != %g (streaming estimator drifted)", i, got.Rates()[i], w)
		}
	}

	bad := &Trace{Nodes: 4, Duration: 100, Contacts: []Contact{{T: 10, A: 0, B: 9}}}
	if _, err := EmpiricalRatesFrom(bad.Source()); !errors.Is(err, ErrInvalid) {
		t.Errorf("out-of-range contact: error %v, want ErrInvalid", err)
	}
	disordered := &Trace{Nodes: 4, Duration: 100, Contacts: []Contact{
		{T: 50, A: 0, B: 1}, {T: 10, A: 1, B: 2},
	}}
	if _, err := EmpiricalRatesFrom(disordered.Source()); !errors.Is(err, ErrInvalid) {
		t.Errorf("disordered stream: error %v, want ErrInvalid", err)
	}

	empty := &Trace{Nodes: 3, Duration: 0}
	rm, err := EmpiricalRatesFrom(empty.Source())
	if err != nil {
		t.Fatalf("zero-duration source: %v", err)
	}
	if rm.TotalRate() != 0 {
		t.Errorf("zero-duration source gives total rate %g, want 0", rm.TotalRate())
	}
}

// TestEmpiricalRatesFromPropagatesStreamError mirrors the Collect test:
// a mid-stream parse error must surface, not truncate silently.
func TestEmpiricalRatesFromPropagatesStreamError(t *testing.T) {
	sr, err := NewStreamReader(strings.NewReader("nodes 3\nduration 10\n5 0 1\n2 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmpiricalRatesFrom(sr); !errors.Is(err, ErrInvalid) {
		t.Errorf("EmpiricalRatesFrom error %v, want ErrInvalid", err)
	}
}
