package oracle

// The hybrid ladder: the mean-field fast path (sim.RunHybrid) against
// the full event simulation on the same welfare ladder the static checks
// run. The gate is relative, not absolute — at every rung the hybrid
// trial-mean welfare must land inside the full-sim confidence interval
// (plus the ladder's usual bias floor), and no rung may silently fall
// back to the event path. A fidelity regression in the fluid coupling,
// the probe accounting, or the initial-placement replay moves the hybrid
// mean out of the CI and fails the check.

import (
	"fmt"
	"math"

	"impatience/internal/alloc"
	"impatience/internal/parallel"
	"impatience/internal/rates"
)

// checkHybridLadder runs the hybrid engine at every ladder rung and
// gates it against the full-sim CI recorded by getLadder.
func (s *session) checkHybridLadder() CheckResult {
	res := CheckResult{Pass: true, Seed: s.cfg.Seed}
	ld := s.getLadder()
	if ld.err != nil {
		return infraFail(res, ld.err)
	}
	for k, n := range s.p.ladderN {
		sc := s.p.scenario(n, s.cfg)
		hom := sc.Homogeneous(ld.u)
		opt, err := hom.GreedyOptimal(sc.Rho)
		if err != nil {
			return infraFail(res, fmt.Errorf("rung N=%d: greedy optimal: %w", n, err))
		}
		if s.cfg.BreakAllocation {
			// Keep the simulated allocation aligned with the ladder's so
			// the hybrid-vs-sim gate stays meaningful even while the
			// negative control breaks the sim-vs-theory gates.
			opt = alloc.Uniform(sc.Items, sc.Nodes, sc.Rho)
		}
		// A single community whose block rate is the homogeneous µ is the
		// same contact law the ladder's fused stream draws from.
		m, err := rates.New([]int{n}, [][]float64{{sc.Mu}}, nil)
		if err != nil {
			return infraFail(res, fmt.Errorf("rung N=%d: model: %w", n, err))
		}
		type out struct {
			rate     float64
			fellBack bool
			reason   string
		}
		outs, err := parallel.RunTrials(sc.Trials, s.cfg.Workers, sc.Seed, func(trial int, seed uint64) (out, error) {
			r, err := sc.RunStaticHybrid(ld.u, opt, m, trial, seed)
			if err != nil {
				return out{}, err
			}
			return out{rate: r.AvgUtilityRate, fellBack: r.Hybrid.FellBack, reason: r.Hybrid.Reason}, nil
		})
		if err != nil {
			return infraFail(res, fmt.Errorf("rung N=%d: %w", n, err))
		}
		var mean float64
		for _, o := range outs {
			if o.fellBack {
				return infraFail(res, fmt.Errorf("rung N=%d fell back to event simulation: %s", n, o.reason))
			}
			mean += o.rate / float64(len(outs))
		}
		full := ld.rungs[k]
		tol := ladderCISlack*full.iv.Halfwidth + ladderAbsFloor*math.Abs(full.U)
		dev := math.Abs(mean - full.iv.Center)
		ok, line := assertLine(dev <= tol,
			"N=%-4d hybrid %.5f vs full sim %.5f (CI ±%.5f): |Δ|=%.5f ≤ tol %.5f",
			n, mean, full.iv.Center, full.iv.Halfwidth, dev, tol)
		res.Details = append(res.Details, line)
		res.Pass = res.Pass && ok
		res.Effect = maxf(res.Effect, dev/tol)
	}
	return res
}
