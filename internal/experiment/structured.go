package experiment

import (
	"fmt"

	"impatience/internal/parallel"
	"impatience/internal/rates"
	"impatience/internal/sim"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// This file is the structured-rates scale pipeline: trials driven by the
// hierarchical rate models of internal/rates instead of a dense rate
// matrix. Two things distinguish it from the homogeneous/empirical
// paths: the per-trial O(N²) empirical-rate pass is skipped entirely
// (the ψ plug-in rate comes from the model's MeanPairRate, and OPT —
// the only scheme that consumes a rate matrix — is rejected), and the
// contact source is the group-decomposed sampler, so generation itself
// partitions across shards. Peak state is O(N + C²) end to end, which
// is what admits the N = 10⁶ rung of the scale ladder.

// StructuredSources adapts a structured rate model to the SourceGen
// seam: each trial streams the model's contact process through the
// group-decomposed (Partitionable) sampler with the trial's seed.
func (sc Scenario) StructuredSources(m *rates.Model) SourceGen {
	return func(seed uint64) (trace.Source, error) {
		return rates.NewSharded(m, sc.Duration, seed, 0)
	}
}

// checkStructuredSchemes rejects scheme sets the rate-matrix-free path
// cannot serve.
func checkStructuredSchemes(schemes []string) error {
	if len(schemes) == 0 {
		return fmt.Errorf("experiment: empty scheme set")
	}
	for _, s := range schemes {
		if s == SchemeOPT {
			return fmt.Errorf("experiment: %s needs the O(N²) rate matrix; the structured scale path cannot build it", SchemeOPT)
		}
	}
	return nil
}

// hybridOptions resolves the scenario's hybrid knobs for one trial: the
// probe contact streams take the trial seed and the fluid reaction clock
// takes the same burst-normalized scale the QCR policy runs on.
func (sc Scenario) hybridOptions(u utility.Function, mu float64, seed uint64) sim.HybridOptions {
	hy := sc.Hybrid
	hy.ContactSeed = seed
	hy.ReactionScale = sc.reactionScale(u, mu)
	return hy
}

// runHybridTrial plays every scheme of one trial on the hybrid engine —
// the mean-field counterpart of runBatchOn. Each scheme runs the exact
// config the full path would (schemeConfig, seeds included) with the
// contact input left to the engine.
func (sc Scenario) runHybridTrial(schemes []string, u utility.Function, m *rates.Model, mu float64, trial uint64, seed uint64, series bool) ([]*sim.Result, error) {
	hy := sc.hybridOptions(u, mu, seed)
	out := make([]*sim.Result, len(schemes))
	for k, scheme := range schemes {
		cfg, err := sc.schemeConfig(scheme, u, nil, mu, trial, series, nil)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", scheme, err)
		}
		res, err := sim.RunHybrid(cfg, m, sc.Duration, hy)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", scheme, err)
		}
		out[k] = res
	}
	return out, nil
}

// RunStructuredComparison is RunComparison over a structured rate model:
// same trial engine, same aggregation, but no empirical-rate pass — the
// plug-in rate is the model's mean pair rate and each trial's stream is
// consumed exactly once. OPT is rejected (it needs the dense matrix), so
// losses are not normalized against it; Utility summaries carry the
// comparison. With sc.Hybrid.Enabled each trial runs on the mean-field
// engine instead of the event executor.
func (sc Scenario) RunStructuredComparison(u utility.Function, m *rates.Model, schemes []string) (*Comparison, error) {
	if err := checkStructuredSchemes(schemes); err != nil {
		return nil, err
	}
	if m.Nodes() != sc.Nodes {
		return nil, fmt.Errorf("experiment: model has %d nodes, scenario %d", m.Nodes(), sc.Nodes)
	}
	mu := m.MeanPairRate()
	gen := sc.StructuredSources(m)
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) (cmpTrial, error) {
		var results []*sim.Result
		var err error
		if sc.Hybrid.Enabled {
			results, err = sc.runHybridTrial(schemes, u, m, mu, uint64(trial), seed, false)
		} else {
			var src trace.Source
			src, err = gen(seed)
			if err != nil {
				return cmpTrial{}, err
			}
			results, err = sc.runBatchOn(schemes, u, nil, mu, uint64(trial), false, nil, src)
		}
		if err != nil {
			return cmpTrial{}, err
		}
		out := cmpTrial{utility: make([]float64, len(schemes))}
		for k := range schemes {
			out.utility[k] = results[k].AvgUtilityRate
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return aggregateComparison(schemes, false, outs), nil
}

// StructuredReport is one metered structured-rates run: the scale
// ladder's per-cell measurement. DigestFamily folds every scheme's
// result digest into one value — equal families across shard counts is
// the bit-identical-execution check the ladder records.
type StructuredReport struct {
	Nodes        int     `json:"nodes"`
	Communities  int     `json:"communities"`
	Items        int     `json:"items"`
	Rho          int     `json:"rho"`
	Shards       int     `json:"shards"`
	Duration     float64 `json:"duration"`
	MeanPairRate float64 `json:"mean_pair_rate"`
	Contacts     int     `json:"contacts"`
	// PeakHeapBytes is the sampled live heap during the run — the O(N +
	// C²) claim made measurable (contrast contacts·24 or the dense
	// sampler's 12·N²/2).
	PeakHeapBytes uint64    `json:"peak_heap_bytes"`
	DigestFamily  uint64    `json:"digest_family"`
	Schemes       []string  `json:"schemes"`
	AvgUtility    []float64 `json:"avg_utility"`
	Fulfillments  int       `json:"fulfillments"`
	// Hybrid-engine provenance (zero values on the full event path):
	// FluidFraction is the mean fluid node fraction across schemes and
	// Demotions the total mid-run fidelity demotions — both stamped into
	// the benchmark rows so a fast number can never hide a fallback.
	Hybrid        bool    `json:"hybrid,omitempty"`
	FluidFraction float64 `json:"fluid_fraction,omitempty"`
	Demotions     int     `json:"demotions,omitempty"`
}

// StructuredScale runs one trial of the given schemes over the model on
// the sharded executor (sc.Shards) and meters it. The contact stream is
// counted and heap-sampled through the metering wrapper, which costs the
// producer the Partitionable fast path for generation — the sim worker
// fan-out, which dominates, still applies.
func (sc Scenario) StructuredScale(u utility.Function, m *rates.Model, schemes []string, trial uint64) (*StructuredReport, error) {
	if err := checkStructuredSchemes(schemes); err != nil {
		return nil, err
	}
	if m.Nodes() != sc.Nodes {
		return nil, fmt.Errorf("experiment: model has %d nodes, scenario %d", m.Nodes(), sc.Nodes)
	}
	mu := m.MeanPairRate()
	seed := parallel.TrialSeed(sc.Seed, int(trial))
	rep := &StructuredReport{
		Nodes:        m.Nodes(),
		Communities:  m.Communities(),
		Items:        sc.Items,
		Rho:          sc.Rho,
		Shards:       sc.Shards,
		Duration:     sc.Duration,
		MeanPairRate: mu,
		Schemes:      append([]string(nil), schemes...),
	}
	var results []*sim.Result
	if sc.Hybrid.Enabled {
		// The hybrid path has no contact stream to meter: its event work
		// is the probe boundary, counted through each result's Meetings.
		// Heap is sampled once after the run (the fluid state is O(C·I),
		// so there is no mid-run growth worth chasing).
		var err error
		results, err = sc.runHybridTrial(schemes, u, m, mu, trial, seed, false)
		if err != nil {
			return nil, err
		}
		rep.Hybrid = true
		for _, r := range results {
			rep.Contacts += r.Meetings
			if t := r.Hybrid; t != nil {
				rep.FluidFraction += t.FluidFraction / float64(len(results))
				rep.Demotions += t.Demotions
			}
		}
		rep.PeakHeapBytes = sampleHeap()
	} else {
		src, err := sc.StructuredSources(m)(seed)
		if err != nil {
			return nil, err
		}
		metered := newMeteredSource(src)
		cfgs, err := sc.batchConfigs(schemes, u, nil, mu, trial, false, nil)
		if err != nil {
			return nil, err
		}
		results, err = sim.RunBatchSharded(cfgs, metered, sc.Shards)
		if err != nil {
			return nil, err
		}
		metered.sample()
		rep.Contacts = metered.produced
		rep.PeakHeapBytes = metered.peak
	}
	rep.AvgUtility = make([]float64, len(results))
	acc := uint64(0x9e3779b97f4a7c15)
	for k, r := range results {
		rep.AvgUtility[k] = r.AvgUtilityRate
		rep.Fulfillments += r.Fulfillments
		acc = parallel.SplitMix64(acc ^ r.Digest())
	}
	rep.DigestFamily = acc
	return rep, nil
}
