package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Items:    64,
		Servers:  20,
		Rho:      5,
		Mu:       0.01,
		Utility:  "step:10",
		HalfLife: 30,
		Drift:    0.02,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func observedOf(t *testing.T, base string) uint64 {
	t.Helper()
	code, body := get(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.Observed
}

func TestServeObserveThenAllocation(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))

	// Demand on 10 items: reachable capacity 200 exceeds the budget 100,
	// so the solve is interior (λ > 0), not a trivial everything-capped one.
	code, body := post(t, ts.URL+"/v1/observe",
		`{"window_sec":1,"counts":{"0":80,"1":40,"2":20,"3":10,"4":9,"5":8,"6":7,"7":6,"8":5,"9":4}}`)
	if code != http.StatusOK {
		t.Fatalf("observe: HTTP %d: %s", code, body)
	}
	var ob ObserveResponse
	if err := json.Unmarshal(body, &ob); err != nil {
		t.Fatal(err)
	}
	if ob.Folded != 189 || !ob.Resolved {
		t.Fatalf("observe response %+v, want folded=189 resolved=true", ob)
	}

	code, body = get(t, ts.URL+"/v1/allocation")
	if code != http.StatusOK {
		t.Fatalf("allocation: HTTP %d", code)
	}
	var al AllocationResponse
	if err := json.Unmarshal(body, &al); err != nil {
		t.Fatal(err)
	}
	if len(al.Allocation) != 64 {
		t.Fatalf("allocation length %d, want 64", len(al.Allocation))
	}
	var sum float64
	for _, v := range al.Allocation {
		if v < 0 || v > 20 {
			t.Fatalf("allocation entry %g outside box [0, 20]", v)
		}
		sum += v
	}
	if diff := sum - 100; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("allocation sums to %g, want budget 100", sum)
	}
	// Demand is monotone decreasing, so the optimal allocation is too.
	for i := 1; i < 4; i++ {
		if al.Allocation[i] > al.Allocation[i-1]+1e-9 {
			t.Fatalf("allocation not demand-monotone: x[%d]=%g > x[%d]=%g", i, al.Allocation[i], i-1, al.Allocation[i-1])
		}
	}
	if al.Observed != 189 {
		t.Fatalf("observed %d, want 189", al.Observed)
	}
	if !(al.Lambda > 0) {
		t.Fatalf("λ=%g, want > 0 (interior solve)", al.Lambda)
	}
}

func TestServeDriftTriggersWarmResolve(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	// Demand over 12 items so the seed solve is interior (λ > 0) and
	// leaves a warm state behind.
	wide := `{"window_sec":1,"counts":{"0":100,"1":50,"2":25,"3":20,"4":18,"5":15,"6":12,"7":10,"8":9,"9":8,"10":7,"11":6}}`
	post(t, ts.URL+"/v1/observe", wide)
	// Same shape again: below the drift threshold, no re-solve.
	code, body := post(t, ts.URL+"/v1/observe", wide)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	var ob ObserveResponse
	json.Unmarshal(body, &ob)
	if ob.Resolved {
		t.Fatalf("unchanged demand re-solved (drift %g)", ob.Drift)
	}
	// Flash crowd on a cold item: past the threshold, warm re-solve.
	code, body = post(t, ts.URL+"/v1/observe", `{"window_sec":1,"counts":{"40":500}}`)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	json.Unmarshal(body, &ob)
	if !ob.Resolved || !ob.Warm {
		t.Fatalf("flash crowd: %+v, want resolved warm re-solve", ob)
	}
}

// TestServeRejectsBadRequests walks every 4xx path and asserts the
// estimator is not mutated by a rejected request.
func TestServeRejectsBadRequests(t *testing.T) {
	cfg := testConfig(t)
	_, ts := newTestServer(t, cfg)
	post(t, ts.URL+"/v1/observe", `{"window_sec":1,"counts":{"0":10}}`)
	before := observedOf(t, ts.URL)

	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"malformed-json", "POST", "/v1/observe", `{"window_sec":1,`, http.StatusBadRequest},
		{"not-json", "POST", "/v1/observe", `hello`, http.StatusBadRequest},
		{"zero-window", "POST", "/v1/observe", `{"window_sec":0,"counts":{"0":1}}`, http.StatusBadRequest},
		{"neg-window", "POST", "/v1/observe", `{"window_sec":-1,"counts":{"0":1}}`, http.StatusBadRequest},
		{"neg-count", "POST", "/v1/observe", `{"window_sec":1,"counts":{"0":-5}}`, http.StatusBadRequest},
		{"nan-count", "POST", "/v1/observe", `{"window_sec":1,"counts":{"0":"NaN"}}`, http.StatusBadRequest},
		{"bad-index", "POST", "/v1/observe", `{"window_sec":1,"counts":{"x":1}}`, http.StatusBadRequest},
		{"index-overflow", "POST", "/v1/observe", `{"window_sec":1,"counts":{"64":1}}`, http.StatusBadRequest},
		{"neg-index", "POST", "/v1/observe", `{"window_sec":1,"counts":{"-1":1}}`, http.StatusBadRequest},
		{"unknown-utility", "GET", "/v1/psi?utility=hyperbolic:2&y=3", "", http.StatusBadRequest},
		{"malformed-utility", "GET", "/v1/psi?utility=step:&y=3", "", http.StatusBadRequest},
		{"psi-no-y", "GET", "/v1/psi", "", http.StatusBadRequest},
		{"psi-y-zero", "GET", "/v1/psi?y=0", "", http.StatusBadRequest},
		{"psi-y-huge", "GET", "/v1/psi?y=21", "", http.StatusBadRequest},
		{"snapshot-unconfigured", "POST", "/v1/snapshot", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var code int
		var body []byte
		if tc.method == "GET" {
			code, body = get(t, ts.URL+tc.path)
		} else {
			code, body = post(t, ts.URL+tc.path, tc.body)
		}
		if code != tc.wantStatus {
			t.Errorf("%s: HTTP %d, want %d (%s)", tc.name, code, tc.wantStatus, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q lacks an error field", tc.name, body)
		}
	}
	if after := observedOf(t, ts.URL); after != before {
		t.Fatalf("rejected requests mutated the estimator: observed %d → %d", before, after)
	}
}

func TestServeOversizedBodyRejected(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBody = 256
	_, ts := newTestServer(t, cfg)
	big := `{"window_sec":1,"counts":{"0":` + strings.Repeat("1", 500) + `}}`
	code, _ := post(t, ts.URL+"/v1/observe", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want %d", code, http.StatusRequestEntityTooLarge)
	}
}

func TestServeOversizedCatalogRejectedAtBoot(t *testing.T) {
	cfg := testConfig(t)
	cfg.Items = MaxCatalog + 1
	if _, err := New(cfg); err == nil {
		t.Fatal("catalog above MaxCatalog accepted")
	}
}

func TestServePsiMatchesTransform(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	code, body := get(t, ts.URL+"/v1/psi?y=4")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	var pr PsiResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Utility != "step(τ=10)" || pr.Y != 4 {
		t.Fatalf("psi response %+v", pr)
	}
	if !(pr.Psi > 0) || !(pr.Phi > 0) {
		t.Fatalf("ψ=%g ϕ=%g, want > 0", pr.Psi, pr.Phi)
	}
	// Alias specs resolve to the same canonical table.
	_, aliasA := get(t, ts.URL+"/v1/psi?utility=exp:0.5&y=4")
	_, aliasB := get(t, ts.URL+"/v1/psi?utility=exponential:0.5&y=4")
	if !bytes.Equal(aliasA, aliasB) {
		t.Fatalf("alias specs diverge: %s vs %s", aliasA, aliasB)
	}
}

// TestServeConcurrentQueryUpdate hammers the server with concurrent
// observes and queries; run under -race this is the data-race gate for
// the RWMutex discipline.
func TestServeConcurrentQueryUpdate(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	post(t, ts.URL+"/v1/observe", `{"window_sec":1,"counts":{"0":100,"1":50}}`)

	const writers, readers, iters = 4, 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for k := 0; k < iters; k++ {
				body := fmt.Sprintf(`{"window_sec":1,"counts":{"%d":%d,"%d":%d}}`,
					rng.IntN(64), 1+rng.IntN(400), rng.IntN(64), 1+rng.IntN(400))
				resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("observe: HTTP %d", resp.StatusCode)
					return
				}
			}
		}(uint64(w + 1))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				for _, path := range []string{"/v1/allocation", "/v1/stats", "/v1/psi?y=3"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServeSnapshotRestartRestore is the crash-recovery contract: fold
// demand, solve, snapshot, boot a brand-new server from the snapshot, and
// require the bit-identical /v1/allocation body.
func TestServeSnapshotRestartRestore(t *testing.T) {
	cfg := testConfig(t)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "aged.snap")
	s1, ts1 := newTestServer(t, cfg)
	post(t, ts1.URL+"/v1/observe",
		`{"window_sec":1,"counts":{"0":313,"1":177,"2":89,"3":71,"4":55,"5":47,"6":43,"7":41,"8":33,"9":29,"63":3}}`)
	post(t, ts1.URL+"/v1/observe", `{"window_sec":2,"counts":{"0":500,"5":220,"12":90}}`)
	code, body := post(t, ts1.URL+"/v1/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d: %s", code, body)
	}
	_, before := get(t, ts1.URL+"/v1/allocation")
	lambdaBefore := s1.lambda

	// "Restart": a fresh server process restoring from disk.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, after := get(t, ts2.URL+"/v1/allocation")
	if !bytes.Equal(before, after) {
		t.Fatalf("allocation not bit-identical across restart:\n before %s\n after  %s", before, after)
	}
	if s2.lambda != lambdaBefore {
		t.Fatalf("dual level drifted across restart: %g vs %g", s2.lambda, lambdaBefore)
	}
	// The restored warm state must actually warm the next solve.
	code, body = post(t, ts2.URL+"/v1/observe", `{"window_sec":1,"counts":{"30":800}}`)
	if code != http.StatusOK {
		t.Fatalf("post-restore observe: HTTP %d: %s", code, body)
	}
	var ob ObserveResponse
	json.Unmarshal(body, &ob)
	if !ob.Resolved || !ob.Warm {
		t.Fatalf("post-restore solve %+v, want warm re-solve from snapshot state", ob)
	}
}

// TestServeRestoreRejectsMismatchedConfig: state folded under one
// operating point must not seed a daemon solving a different one.
func TestServeRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := testConfig(t)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "aged.snap")
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, cfg.Items)
	counts[0] = 1
	s1.est.Fold(counts, 1)
	if _, err := s1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"items":     func(c *Config) { c.Items = 65 },
		"servers":   func(c *Config) { c.Servers = 21 },
		"rho":       func(c *Config) { c.Rho = 6 },
		"mu":        func(c *Config) { c.Mu = 0.02 },
		"utility":   func(c *Config) { c.Utility = "step:11" },
		"half-life": func(c *Config) { c.HalfLife = 60 },
	} {
		other := cfg
		mutate(&other)
		s2, err := New(other)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Restore(); err == nil {
			t.Errorf("%s mismatch: snapshot accepted", name)
		}
	}
	// The canonical-name match accepts an equivalent alias spec.
	alias := cfg
	alias.Utility = "step:10.0"
	s3, err := New(alias)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Restore(); err != nil {
		t.Errorf("alias spec step:10.0 rejected: %v", err)
	}
}

func TestServeHealthz(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: HTTP %d %q", code, body)
	}
}
