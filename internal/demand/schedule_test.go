package demand

import (
	"math"
	"strings"
	"testing"
)

func TestScheduleValidate(t *testing.T) {
	good := Pareto(4, 1, 2)
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"empty", nil, true},
		{"one", Schedule{{T: 5, Pop: good}}, true},
		{"ascending", Schedule{{T: 1, Pop: good}, {T: 2, Pop: good}}, true},
		{"unsorted", Schedule{{T: 2, Pop: good}, {T: 1, Pop: good}}, false},
		{"duplicate-time", Schedule{{T: 1, Pop: good}, {T: 1, Pop: good}}, false},
		{"negative-time", Schedule{{T: -1, Pop: good}}, false},
		{"nan-time", Schedule{{T: math.NaN(), Pop: good}}, false},
		{"inf-time", Schedule{{T: math.Inf(1), Pop: good}}, false},
		{"wrong-items", Schedule{{T: 1, Pop: Pareto(3, 1, 2)}}, false},
		{"bad-rate", Schedule{{T: 1, Pop: Popularity{Rates: []float64{1, -1, 0, 0}}}}, false},
	}
	for _, tc := range cases {
		err := tc.s.Validate(4)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected, got nil", tc.name)
		}
	}
}

func TestParseScheduleRotateIsCumulative(t *testing.T) {
	base := Popularity{Rates: []float64{4, 3, 2, 1}}
	s, err := ParseSchedule(strings.NewReader("10 rotate 1\n20 rotate 1\n"), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("got %d shifts, want 2", len(s))
	}
	want1 := []float64{1, 4, 3, 2}
	want2 := []float64{2, 1, 4, 3}
	for i := range want1 {
		if s[0].Pop.Rates[i] != want1[i] {
			t.Fatalf("shift 0 rates %v, want %v", s[0].Pop.Rates, want1)
		}
		if s[1].Pop.Rates[i] != want2[i] {
			t.Fatalf("shift 1 rates %v, want %v", s[1].Pop.Rates, want2)
		}
	}
	if err := s.Validate(4); err != nil {
		t.Fatalf("parsed schedule invalid: %v", err)
	}
}

func TestParseScheduleOps(t *testing.T) {
	base := Pareto(5, 1, 2)
	in := `
# flash crowd script
5 swap 0 4
10 zipf 0.5
15 uniform
20 rotate -2
`
	s, err := ParseSchedule(strings.NewReader(in), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 4 {
		t.Fatalf("got %d shifts, want 4", len(s))
	}
	// Every scheduled popularity preserves the aggregate rate.
	for k, sh := range s {
		if d := math.Abs(sh.Pop.Total() - base.Total()); d > 1e-9 {
			t.Errorf("shift %d total %g, want %g", k, sh.Pop.Total(), base.Total())
		}
	}
	if s[0].Pop.Rates[0] != base.Rates[4] || s[0].Pop.Rates[4] != base.Rates[0] {
		t.Errorf("swap not applied: %v", s[0].Pop.Rates)
	}
}

func TestParseScheduleRejectsMalformed(t *testing.T) {
	base := Pareto(4, 1, 2)
	bad := []string{
		"10 rotate 1\n5 rotate 1\n",  // unsorted
		"10 rotate 1\n10 swap 0 1\n", // duplicate time
		"-1 rotate 1\n",
		"NaN rotate 1\n",
		"Inf uniform\n",
		"10 rotate\n",
		"10 rotate x\n",
		"10 swap 0\n",
		"10 swap 0 9\n",
		"10 swap -1 0\n",
		"10 zipf\n",
		"10 zipf NaN\n",
		"10 uniform extra\n",
		"10 explode\n",
		"10\n",
	}
	for _, in := range bad {
		if _, err := ParseSchedule(strings.NewReader(in), base); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestParseScheduleEmptyBase(t *testing.T) {
	if _, err := ParseSchedule(strings.NewReader("1 uniform\n"), Popularity{}); err == nil {
		t.Fatal("empty base catalog accepted")
	}
}
