package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestIntegratePolynomial(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 5, 15},
		{"linear", func(x float64) float64 { return 2 * x }, 0, 4, 16},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 3, 9},
		{"cubic", func(x float64) float64 { return x * x * x }, -1, 1, 0},
		{"reversed", func(x float64) float64 { return 2 * x }, 4, 0, -16},
		{"empty", func(x float64) float64 { return 1e9 }, 2, 2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Integrate(tt.f, tt.a, tt.b, 1e-12)
			if err != nil {
				t.Fatalf("Integrate: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("got %g, want %g", got, tt.want)
			}
		})
	}
}

func TestIntegrateTranscendental(t *testing.T) {
	got, err := Integrate(math.Sin, 0, math.Pi, 1e-12)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if !almostEqual(got, 2, 1e-9) {
		t.Errorf("∫sin over [0,π] = %g, want 2", got)
	}
	got, err = Integrate(math.Exp, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if !almostEqual(got, math.E-1, 1e-9) {
		t.Errorf("∫exp over [0,1] = %g, want e-1", got)
	}
}

func TestIntegrateToInfExponential(t *testing.T) {
	for _, lambda := range []float64{0.01, 0.1, 1, 5, 50} {
		got, err := IntegrateToInf(func(t float64) float64 { return math.Exp(-lambda * t) }, 0, 1e-12)
		if err != nil {
			t.Fatalf("lambda=%g: %v", lambda, err)
		}
		if !almostEqual(got, 1/lambda, 1e-7) {
			t.Errorf("lambda=%g: got %g, want %g", lambda, got, 1/lambda)
		}
	}
}

func TestIntegrateToInfGamma(t *testing.T) {
	// ∫_0^∞ t e^{-t} dt = 1, ∫_0^∞ t^2 e^{-t} dt = 2.
	got, err := IntegrateToInf(func(t float64) float64 { return t * math.Exp(-t) }, 0, 1e-12)
	if err != nil {
		t.Fatalf("IntegrateToInf: %v", err)
	}
	if !almostEqual(got, 1, 1e-8) {
		t.Errorf("Γ(2) integrand: got %g, want 1", got)
	}
	got, err = IntegrateToInf(func(t float64) float64 { return t * t * math.Exp(-t) }, 0, 1e-12)
	if err != nil {
		t.Fatalf("IntegrateToInf: %v", err)
	}
	if !almostEqual(got, 2, 1e-8) {
		t.Errorf("Γ(3) integrand: got %g, want 2", got)
	}
}

func TestIntegrateToInfShifted(t *testing.T) {
	// ∫_a^∞ e^{-t} dt = e^{-a}.
	for _, a := range []float64{0.5, 1, 2, 3} {
		got, err := IntegrateToInf(func(t float64) float64 { return math.Exp(-t) }, a, 1e-12)
		if err != nil {
			t.Fatalf("a=%g: %v", a, err)
		}
		if !almostEqual(got, math.Exp(-a), 1e-8) {
			t.Errorf("a=%g: got %g, want %g", a, got, math.Exp(-a))
		}
	}
}

func TestIntegrateDivergentTerminates(t *testing.T) {
	// A divergent integrand must terminate quickly with ErrMaxDepth rather
	// than hang; the returned value is unspecified.
	_, err := IntegrateToInf(math.Exp, 0, 1e-12)
	if err == nil {
		t.Error("divergent integrand reported success")
	}
}

func TestGaussLaguerreMoments(t *testing.T) {
	// ∫_0^∞ t^k e^{-λt} dt = k!/λ^{k+1}.
	for _, lambda := range []float64{0.1, 1, 3, 10} {
		fact := 1.0
		for k := 0; k <= 6; k++ {
			if k > 0 {
				fact *= float64(k)
			}
			got := GaussLaguerre(func(t float64) float64 { return math.Pow(t, float64(k)) }, lambda)
			want := fact / math.Pow(lambda, float64(k+1))
			if !almostEqual(got, want, 1e-10) {
				t.Errorf("λ=%g k=%d: got %g, want %g", lambda, k, got, want)
			}
		}
	}
}

func TestGaussLaguerreInvalidLambda(t *testing.T) {
	if v := GaussLaguerre(func(t float64) float64 { return 1 }, 0); !math.IsNaN(v) {
		t.Errorf("λ=0: got %g, want NaN", v)
	}
	if v := GaussLaguerre(func(t float64) float64 { return 1 }, -1); !math.IsNaN(v) {
		t.Errorf("λ<0: got %g, want NaN", v)
	}
}

// Property: Gauss–Laguerre and the adaptive transform integrator agree on
// smooth exponentially-decaying integrands.
func TestQuadratureAgreementProperty(t *testing.T) {
	f := func(lambda, a, b float64) bool {
		lambda = 0.05 + math.Abs(math.Mod(lambda, 10))
		a = math.Abs(math.Mod(a, 3))
		b = math.Abs(math.Mod(b, 2))
		g := func(t float64) float64 { return a + b*t + 0.25*t*t }
		v1 := GaussLaguerre(g, lambda)
		v2, err := IntegrateToInfScale(func(t float64) float64 { return math.Exp(-lambda*t) * g(t) }, 0, 1/lambda, 1e-12)
		if err != nil {
			return false
		}
		return almostEqual(v1, v2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntegrateLinearityProperty(t *testing.T) {
	f := func(c1, c2 float64) bool {
		c1 = math.Mod(c1, 100)
		c2 = math.Mod(c2, 100)
		g1 := func(x float64) float64 { return math.Sin(x) }
		g2 := func(x float64) float64 { return x * x }
		lhs, err1 := Integrate(func(x float64) float64 { return c1*g1(x) + c2*g2(x) }, 0, 2, 1e-12)
		i1, err2 := Integrate(g1, 0, 2, 1e-12)
		i2, err3 := Integrate(g2, 0, 2, 1e-12)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return almostEqual(lhs, c1*i1+c2*i2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
