package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("numeric: endpoints do not bracket a root")

// ErrNoConverge is returned when an iterative solver exhausts its iteration
// budget without meeting its tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// ErrNaN is returned when the function under study evaluates to NaN (or
// the bracket itself is NaN) at a probe point, so the sign logic that
// bisection relies on is meaningless. Returning the last iterate there
// would silently hand a garbage root to the allocation solvers.
var ErrNaN = errors.New("numeric: function evaluated to NaN at a probe point")

// Bisect finds x in [a, b] with f(x) = 0 by bisection, assuming f is
// continuous and f(a), f(b) have opposite signs (one may be zero). The
// result is accurate to xtol in the argument. Bisection is slow but
// unconditionally robust, which is what the allocation solvers need: the
// functions they invert (ϕ transforms) can be extremely flat.
func Bisect(f func(float64) float64, a, b, xtol float64) (float64, error) {
	if xtol <= 0 {
		xtol = 1e-12
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0, ErrNaN
	}
	fa, fb := f(a), f(b)
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return 0, ErrNaN
	}
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		if b-a <= xtol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if math.IsNaN(fm) {
			return 0, ErrNaN
		}
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, ErrNoConverge
}

// InvertDecreasing solves f(x) = target for a continuous strictly
// decreasing f on (0, ∞). It brackets the root by geometric expansion from
// x0 (any positive starting guess) and then bisects. If target is above
// f(lo) for lo → 0 or below f(hi) for hi → ∞ beyond the expansion limits,
// the nearest bracket endpoint is returned with ErrNoBracket.
func InvertDecreasing(f func(float64) float64, target, x0 float64) (float64, error) {
	if x0 <= 0 {
		x0 = 1
	}
	if math.IsNaN(target) {
		return 0, ErrNaN
	}
	lo, hi := x0, x0
	flo, fhi := f(lo), f(hi)
	// Expand lo downward until f(lo) >= target. A NaN evaluation must be
	// caught explicitly: every comparison against NaN is false, so it would
	// otherwise pass as a satisfied bracket condition.
	for i := 0; flo < target; i++ {
		if i >= 600 {
			return lo, ErrNoBracket
		}
		lo /= 2
		flo = f(lo)
	}
	if math.IsNaN(flo) {
		return 0, ErrNaN
	}
	// Expand hi upward until f(hi) <= target.
	for i := 0; fhi > target; i++ {
		if i >= 600 {
			return hi, ErrNoBracket
		}
		hi *= 2
		fhi = f(hi)
	}
	if math.IsNaN(fhi) {
		return 0, ErrNaN
	}
	if lo == hi {
		return lo, nil
	}
	// Bisect in log space: the bracket can span hundreds of orders of
	// magnitude (ϕ transforms are power-like), and a root near zero needs
	// relative, not absolute, precision.
	u, err := Bisect(func(u float64) float64 { return f(math.Exp(u)) - target }, math.Log(lo), math.Log(hi), 1e-13)
	return math.Exp(u), err
}
