package experiment

import (
	"fmt"
	"math"

	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/meanfield"
	"impatience/internal/parallel"
	"impatience/internal/plot"
	"impatience/internal/sim"
	"impatience/internal/stats"
	"impatience/internal/trace"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// AblationCacheSize (X1) sweeps the per-node cache size ρ, the knob the
// paper defers to its technical report: loss of QCR and the fixed
// allocations vs OPT as caches grow.
func AblationCacheSize(sc Scenario, rhos []int, f utility.Function) (*plot.Table, error) {
	if rhos == nil {
		rhos = []int{2, 3, 5, 8, 12}
	}
	schemes := append([]string{SchemeQCR}, AllCompetitors...)
	table := &plot.Table{Title: "Ablation X1a: loss vs cache size ρ", XLabel: "rho"}
	for _, r := range rhos {
		table.X = append(table.X, float64(r))
	}
	cols := make(map[string][]float64)
	for _, r := range rhos {
		s := sc
		s.Rho = r
		cmp, err := s.RunComparison(f, s.HomogeneousSources(), schemes)
		if err != nil {
			return nil, fmt.Errorf("ablation ρ=%d: %w", r, err)
		}
		for _, sch := range schemes {
			cols[sch] = append(cols[sch], cmp.Loss[sch].Mean)
		}
	}
	for _, sch := range schemes {
		if sch == SchemeOPT {
			continue
		}
		if err := table.AddColumn(sch, cols[sch]); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// AblationPopularity (X1) sweeps the Pareto exponent ω of the demand
// distribution.
func AblationPopularity(sc Scenario, omegas []float64, f utility.Function) (*plot.Table, error) {
	if omegas == nil {
		omegas = []float64{0.25, 0.5, 1, 1.5, 2}
	}
	schemes := append([]string{SchemeQCR}, AllCompetitors...)
	table := &plot.Table{Title: "Ablation X1b: loss vs popularity skew ω", XLabel: "omega"}
	table.X = append([]float64(nil), omegas...)
	cols := make(map[string][]float64)
	for _, w := range omegas {
		s := sc
		s.Omega = w
		cmp, err := s.RunComparison(f, s.HomogeneousSources(), schemes)
		if err != nil {
			return nil, fmt.Errorf("ablation ω=%g: %w", w, err)
		}
		for _, sch := range schemes {
			cols[sch] = append(cols[sch], cmp.Loss[sch].Mean)
		}
	}
	for _, sch := range schemes {
		if sch == SchemeOPT {
			continue
		}
		if err := table.AddColumn(sch, cols[sch]); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// AblationRewriting (X2) compares QCR with and without replica rewriting
// (Section 5.1's two implementations) against OPT.
func AblationRewriting(sc Scenario, f utility.Function) (*plot.Table, error) {
	gen := sc.HomogeneousSources()
	pop := sc.Pop()
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([2]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return [2]float64{}, err
		}
		ro, err := asReopenable(src)
		if err != nil {
			return [2]float64{}, err
		}
		rates, err := trace.EmpiricalRatesFrom(ro)
		if err != nil {
			return [2]float64{}, err
		}
		cfgOpt, err := sc.schemeConfig(SchemeOPT, f, rates, sc.Mu, uint64(trial), false, nil)
		if err != nil {
			return [2]float64{}, err
		}
		cfgs := []sim.Config{cfgOpt}
		for _, rewriting := range []bool{false, true} {
			q := sc.qcrPolicy(f, sc.Mu, true, sc.Seed*7919+uint64(trial))
			q.Rewriting = rewriting
			cfgs = append(cfgs, sim.Config{
				Rho: sc.Rho, Utility: f, Pop: pop, Policy: q,
				Seed: sc.Seed*1_000_003 + uint64(trial)*101, WarmupFrac: sc.WarmupFrac,
			})
		}
		pass, err := ro.Reopen()
		if err != nil {
			return [2]float64{}, err
		}
		results, err := sim.RunBatch(cfgs, pass)
		if err != nil {
			return [2]float64{}, err
		}
		var loss [2]float64 // [no rewriting, rewriting]
		for k := range loss {
			loss[k] = stats.NormalizedLoss(results[k+1].AvgUtilityRate, results[0].AvgUtilityRate)
		}
		return loss, nil
	})
	if err != nil {
		return nil, err
	}
	var lossNo, lossYes []float64
	for _, l := range outs {
		lossNo = append(lossNo, l[0])
		lossYes = append(lossYes, l[1])
	}
	table := &plot.Table{Title: "Ablation X2: rewriting vs no-rewriting (loss vs OPT, %)", XLabel: "trial"}
	for i := range lossNo {
		table.X = append(table.X, float64(i))
	}
	table.AddColumn("no rewriting", lossNo)
	table.AddColumn("rewriting", lossYes)
	return table, nil
}

// MeanFieldConvergence (X3) integrates the Eq. 7 fluid dynamics from a
// uniform start and reports welfare over time against the relaxed
// optimum, demonstrating Property 2 in the deterministic limit.
func MeanFieldConvergence(sc Scenario, f utility.Function, horizon float64, points int) (*plot.Table, error) {
	if horizon <= 0 {
		horizon = 20000
	}
	if points < 2 {
		points = 40
	}
	sys := meanfield.System{
		Utility: f, Pop: sc.Pop(), Mu: sc.Mu, Servers: sc.Nodes, Rho: sc.Rho,
	}
	h := welfare.Homogeneous{
		Utility: f, Pop: sys.Pop, Mu: sc.Mu, Servers: sc.Nodes, Clients: sc.Nodes,
	}
	opt, err := h.RelaxedOptimal(sc.Rho)
	if err != nil {
		return nil, err
	}
	uOpt := h.Welfare(opt)
	table := &plot.Table{Title: "Ablation X3: mean-field welfare convergence (Eq. 7)", XLabel: "time"}
	x := sys.UniformStart()
	var us, uo []float64
	step := horizon / float64(points)
	for k := 0; k <= points; k++ {
		table.X = append(table.X, float64(k)*step)
		us = append(us, h.Welfare(x))
		uo = append(uo, uOpt)
		if k < points {
			// Keep the integrator step well below the fastest dynamics
			// timescale (~1/(demand·ψ) per item).
			x, err = sys.Run(x, step, math.Min(step/50, 0.25))
			if err != nil {
				return nil, err
			}
		}
	}
	table.AddColumn("U(x(t)) fluid", us)
	table.AddColumn("U(x*) relaxed optimum", uo)
	return table, nil
}

// DynamicDemand (X4) flips the popularity ranking mid-run and tracks how
// the QCR allocation's welfare under the *new* demand recovers — the
// adaptivity claim of Section 7.
func DynamicDemand(sc Scenario, f utility.Function) (*plot.Table, error) {
	pop := sc.Pop()
	flipped := demand.Popularity{Rates: make([]float64, sc.Items)}
	for i, d := range pop.Rates {
		flipped.Rates[sc.Items-1-i] = d
	}
	hNew := welfare.Homogeneous{
		Utility: f, Pop: flipped, Mu: sc.Mu,
		Servers: sc.Nodes, Clients: sc.Nodes, PureP2P: true,
	}
	optNew, err := hNew.GreedyOptimal(sc.Rho)
	if err != nil {
		return nil, err
	}
	uOptNew := hNew.WelfareCounts(optNew)
	gen := sc.HomogeneousSources()
	switchT := sc.Duration / 3
	type trialOut struct{ times, u []float64 }
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) (trialOut, error) {
		src, err := gen(seed)
		if err != nil {
			return trialOut{}, err
		}
		q := sc.qcrPolicy(f, sc.Mu, true, sc.Seed*7919+uint64(trial))
		res, err := sim.Run(sim.Config{
			Rho: sc.Rho, Utility: f, Pop: pop, Contacts: src, Policy: q,
			Seed: sc.Seed*1_000_003 + uint64(trial)*101, WarmupFrac: sc.WarmupFrac,
			BinWidth: sc.Duration / 100, RecordCounts: true,
			DemandSwitch: &flipped, DemandSwitchTime: switchT,
		})
		if err != nil {
			return trialOut{}, err
		}
		out := trialOut{
			times: make([]float64, len(res.Bins)),
			u:     make([]float64, len(res.Bins)),
		}
		for i, b := range res.Bins {
			out.times[i] = b.T0
			if b.Counts != nil {
				out.u[i] = hNew.WelfareCounts(b.Counts)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var times []float64
	var trials [][]float64
	for _, out := range outs {
		if times == nil {
			times = out.times
		}
		trials = append(trials, out.u)
	}
	s, err := stats.MergeTrials(times, trials)
	if err != nil {
		return nil, err
	}
	table := &plot.Table{
		Title:  fmt.Sprintf("Ablation X4: welfare under flipped demand (switch at t=%g)", switchT),
		XLabel: "time (min)",
	}
	table.X = times
	table.AddColumn("QCR U(x(t)) under new demand", s.Mean)
	table.AddColumn("optimal for new demand", constant(len(times), uOptNew))
	return table, nil
}

// DiscreteVsContinuous (X5) quantifies the §3.4 claim that the
// discrete-time model approaches the continuous one as δ → 0, on the
// optimal allocation of a default system.
func DiscreteVsContinuous(sc Scenario, f utility.Function, deltas []float64) (*plot.Table, error) {
	if deltas == nil {
		deltas = []float64{4, 2, 1, 0.5, 0.25, 0.1}
	}
	h := welfare.Homogeneous{
		Utility: f, Pop: sc.Pop(), Mu: sc.Mu,
		Servers: sc.Nodes, Clients: sc.Nodes, PureP2P: true,
	}
	opt, err := h.GreedyOptimal(sc.Rho)
	if err != nil {
		return nil, err
	}
	uc := h.WelfareCounts(opt)
	table := &plot.Table{Title: "Ablation X5: discrete-time welfare vs slot length δ", XLabel: "delta"}
	table.X = append([]float64(nil), deltas...)
	var ud, ucs []float64
	for _, d := range deltas {
		ud = append(ud, h.WelfareDiscrete(opt, d))
		ucs = append(ucs, uc)
	}
	table.AddColumn("discrete U_δ(x*)", ud)
	table.AddColumn("continuous U(x*)", ucs)
	return table, nil
}

// ReactionComparison pits the tuned Property-2 reaction against the
// classical path-replication and constant reactions under the same
// utility — showing why tuning to impatience matters (the paper's core
// message distilled into one run).
func ReactionComparison(sc Scenario, f utility.Function) (*plot.Table, error) {
	gen := sc.HomogeneousSources()
	pop := sc.Pop()
	reactions := []struct {
		name string
		mk   func(seed uint64) *core.QCR
	}{
		{"tuned (Property 2)", func(seed uint64) *core.QCR {
			return sc.qcrPolicy(f, sc.Mu, true, seed)
		}},
		{"path replication ψ(y)=y", func(seed uint64) *core.QCR {
			return &core.QCR{Reaction: core.PathReplication(sc.QCRScale), MandateRouting: true, StrictSource: true, MaxMandates: 5, Seed: seed}
		}},
		{"constant ψ(y)=1", func(seed uint64) *core.QCR {
			return &core.QCR{Reaction: core.ConstantReaction(sc.QCRScale), MandateRouting: true, StrictSource: true, MaxMandates: 5, Seed: seed}
		}},
	}
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return nil, err
		}
		ro, err := asReopenable(src)
		if err != nil {
			return nil, err
		}
		rates, err := trace.EmpiricalRatesFrom(ro)
		if err != nil {
			return nil, err
		}
		cfgOpt, err := sc.schemeConfig(SchemeOPT, f, rates, sc.Mu, uint64(trial), false, nil)
		if err != nil {
			return nil, err
		}
		cfgs := []sim.Config{cfgOpt}
		for _, r := range reactions {
			cfgs = append(cfgs, sim.Config{
				Rho: sc.Rho, Utility: f, Pop: pop,
				Policy: r.mk(sc.Seed*7919 + uint64(trial)),
				Seed:   sc.Seed*1_000_003 + uint64(trial)*101, WarmupFrac: sc.WarmupFrac,
			})
		}
		pass, err := ro.Reopen()
		if err != nil {
			return nil, err
		}
		results, err := sim.RunBatch(cfgs, pass)
		if err != nil {
			return nil, err
		}
		loss := make([]float64, len(reactions))
		for k := range reactions {
			loss[k] = stats.NormalizedLoss(results[k+1].AvgUtilityRate, results[0].AvgUtilityRate)
		}
		return loss, nil
	})
	if err != nil {
		return nil, err
	}
	losses := make([][]float64, len(reactions))
	for _, l := range outs {
		for k := range reactions {
			losses[k] = append(losses[k], l[k])
		}
	}
	table := &plot.Table{Title: "Reaction-function comparison (loss vs OPT, %)", XLabel: "trial"}
	for i := 0; i < sc.Trials; i++ {
		table.X = append(table.X, float64(i))
	}
	for k, r := range reactions {
		if err := table.AddColumn(r.name, losses[k]); err != nil {
			return nil, err
		}
	}
	return table, nil
}
