package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	return (&Trace{
		Nodes:    4,
		Duration: 100,
		Contacts: []Contact{
			{T: 5, A: 1, B: 0},
			{T: 1, A: 2, B: 3},
			{T: 50, A: 0, B: 2},
			{T: 50, A: 3, B: 1},
			{T: 99, A: 0, B: 3},
		},
	}).Normalize()
}

func TestNormalizeOrdersAndOrients(t *testing.T) {
	tr := sample()
	prev := math.Inf(-1)
	for i, c := range tr.Contacts {
		if c.T < prev {
			t.Fatalf("contact %d out of order", i)
		}
		if c.A >= c.B {
			t.Fatalf("contact %d not oriented: (%d,%d)", i, c.A, c.B)
		}
		prev = c.T
	}
	if tr.Contacts[0].T != 1 {
		t.Errorf("first contact at %g, want 1", tr.Contacts[0].T)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Trace)
		ok   bool
	}{
		{"valid", func(tr *Trace) {}, true},
		{"zero nodes", func(tr *Trace) { tr.Nodes = 0 }, false},
		{"bad duration", func(tr *Trace) { tr.Duration = -1 }, false},
		{"out of order", func(tr *Trace) { tr.Contacts[0].T = 1000; tr.Duration = 2000 }, false},
		{"time beyond duration", func(tr *Trace) { tr.Contacts[len(tr.Contacts)-1].T = 101 }, false},
		{"self contact", func(tr *Trace) { tr.Contacts[0].B = tr.Contacts[0].A }, false},
		{"node out of range", func(tr *Trace) { tr.Contacts[0].B = 9 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := sample()
			tt.mut(tr)
			err := tr.Validate()
			if tt.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tt.ok && err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestWindow(t *testing.T) {
	tr := sample()
	w := tr.Window(5, 60)
	if w.Duration != 55 {
		t.Errorf("duration %g, want 55", w.Duration)
	}
	if len(w.Contacts) != 3 {
		t.Fatalf("got %d contacts, want 3", len(w.Contacts))
	}
	if w.Contacts[0].T != 0 {
		t.Errorf("first windowed contact at %g, want 0 (re-based)", w.Contacts[0].T)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("windowed trace invalid: %v", err)
	}
}

func TestFilterNodes(t *testing.T) {
	tr := sample()
	f, err := tr.FilterNodes([]int{3, 0})
	if err != nil {
		t.Fatalf("FilterNodes: %v", err)
	}
	if f.Nodes != 2 {
		t.Errorf("nodes=%d, want 2", f.Nodes)
	}
	// Only the (0,3) contact at t=99 survives; relabeled 3→0, 0→1.
	if len(f.Contacts) != 1 {
		t.Fatalf("got %d contacts, want 1: %v", len(f.Contacts), f.Contacts)
	}
	c := f.Contacts[0]
	if c.T != 99 || c.A != 0 || c.B != 1 {
		t.Errorf("got %+v", c)
	}
	if _, err := tr.FilterNodes([]int{0, 0}); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := tr.FilterNodes([]int{0, 99}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestPairIndexBijective(t *testing.T) {
	const n = 17
	seen := make(map[int]bool)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			idx := PairIndex(n, a, b)
			if idx < 0 || idx >= NumPairs(n) {
				t.Fatalf("PairIndex(%d,%d)=%d out of range", a, b, idx)
			}
			if seen[idx] {
				t.Fatalf("PairIndex(%d,%d)=%d collides", a, b, idx)
			}
			seen[idx] = true
			if idx != PairIndex(n, b, a) {
				t.Fatalf("PairIndex not symmetric for (%d,%d)", a, b)
			}
		}
	}
	if len(seen) != NumPairs(n) {
		t.Errorf("covered %d indices, want %d", len(seen), NumPairs(n))
	}
}

func TestRateMatrix(t *testing.T) {
	rm := NewRateMatrix(3)
	rm.Set(0, 1, 0.5)
	rm.Set(2, 1, 0.25)
	if rm.At(1, 0) != 0.5 || rm.At(1, 2) != 0.25 {
		t.Errorf("symmetric access broken: %g %g", rm.At(1, 0), rm.At(1, 2))
	}
	if rm.At(1, 1) != 0 {
		t.Error("diagonal not zero")
	}
	rm.Set(2, 2, 9) // must be a no-op
	if rm.At(2, 2) != 0 {
		t.Error("diagonal settable")
	}
	if got := rm.TotalRate(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("TotalRate=%g, want 0.75", got)
	}
	if got := rm.Mean(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Mean=%g, want 0.25", got)
	}
}

func TestUniformRates(t *testing.T) {
	rm := UniformRates(5, 0.05)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			want := 0.05
			if a == b {
				want = 0
			}
			if rm.At(a, b) != want {
				t.Errorf("µ(%d,%d)=%g, want %g", a, b, rm.At(a, b), want)
			}
		}
	}
}

func TestEmpiricalRates(t *testing.T) {
	tr := &Trace{
		Nodes:    3,
		Duration: 10,
		Contacts: []Contact{
			{T: 1, A: 0, B: 1}, {T: 2, A: 0, B: 1}, {T: 3, A: 0, B: 1}, {T: 4, A: 0, B: 1},
			{T: 5, A: 1, B: 2},
		},
	}
	rm := EmpiricalRates(tr)
	if got := rm.At(0, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("µ(0,1)=%g, want 0.4", got)
	}
	if got := rm.At(1, 2); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("µ(1,2)=%g, want 0.1", got)
	}
	if got := rm.At(0, 2); got != 0 {
		t.Errorf("µ(0,2)=%g, want 0", got)
	}
}

func TestInterContactTimes(t *testing.T) {
	tr := &Trace{
		Nodes:    3,
		Duration: 100,
		Contacts: []Contact{
			{T: 10, A: 0, B: 1}, {T: 25, A: 1, B: 0}, {T: 45, A: 0, B: 1},
			{T: 50, A: 1, B: 2},
		},
	}
	gaps := InterContactTimes(tr)
	if len(gaps) != 2 {
		t.Fatalf("got %d gaps, want 2: %v", len(gaps), gaps)
	}
	if gaps[0] != 15 || gaps[1] != 20 {
		t.Errorf("gaps=%v, want [15 20]", gaps)
	}
}

func TestTopNodes(t *testing.T) {
	tr := sample()
	counts := ContactCounts(tr)
	top := TopNodes(tr, 2)
	if len(top) != 2 {
		t.Fatalf("got %d nodes", len(top))
	}
	if counts[top[0]] < counts[top[1]] {
		t.Error("not ordered by coverage")
	}
	all := TopNodes(tr, 100)
	if len(all) != tr.Nodes {
		t.Errorf("TopNodes with large k returned %d", len(all))
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{5, 5, 5, 5}); math.Abs(cv) > 1e-12 {
		t.Errorf("constant gaps: cv=%g, want 0", cv)
	}
	if cv := CoefficientOfVariation([]float64{1}); !math.IsNaN(cv) {
		t.Errorf("single gap: cv=%g, want NaN", cv)
	}
}

func TestRoundTripIO(t *testing.T) {
	tr := sample()
	var sb strings.Builder
	if err := Write(&sb, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Nodes != tr.Nodes || got.Duration != tr.Duration || len(got.Contacts) != len(tr.Contacts) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tr)
	}
	for i := range got.Contacts {
		if got.Contacts[i] != tr.Contacts[i] {
			t.Errorf("contact %d: %+v vs %+v", i, got.Contacts[i], tr.Contacts[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"nodes x\nduration 5\n",
		"nodes 2\nduration y\n",
		"nodes 2\nduration 5\n1 2\n",
		"nodes 2\nduration 5\na b c\n",
		"hello world\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted garbage %q", c)
		}
	}
}

func TestReadComments(t *testing.T) {
	src := "# header\n\nnodes 2\n# mid\nduration 10\n3 0 1\n"
	tr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(tr.Contacts) != 1 {
		t.Errorf("got %d contacts", len(tr.Contacts))
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.txt"
	tr := sample()
	if err := Save(path, tr); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Contacts) != len(tr.Contacts) {
		t.Errorf("got %d contacts, want %d", len(got.Contacts), len(tr.Contacts))
	}
}

// Property: empirical rates of a trace built from a known rate matrix sum
// correctly (count conservation: Σ pair counts == len(Contacts)).
func TestEmpiricalRatesConservationProperty(t *testing.T) {
	prop := func(times [12]float64, pairs [12]uint8) bool {
		tr := &Trace{Nodes: 5, Duration: 100}
		for i := range times {
			tt := math.Abs(math.Mod(times[i], 100))
			a := int(pairs[i]) % 5
			b := (a + 1 + int(pairs[i]/5)%4) % 5
			tr.Contacts = append(tr.Contacts, Contact{T: tt, A: a, B: b})
		}
		tr.Normalize()
		if err := tr.Validate(); err != nil {
			return false
		}
		rm := EmpiricalRates(tr)
		return math.Abs(rm.TotalRate()*tr.Duration-float64(len(tr.Contacts))) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := sample()
	cp := tr.Clone()
	cp.Contacts[0].T = 77777
	cp.Contacts[0].A = 0
	if tr.Contacts[0].T == 77777 {
		t.Error("Clone shares contact storage")
	}
}
