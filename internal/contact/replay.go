// ReplayStream: the streaming twin of the legacy materialized generator.
//
// The figure harness's golden digests pin the contact sequence Generate
// draws — ExpFloat64 for the superposed inter-contact gap, then one
// uniform probed through the pair CDF — so the batch executor cannot
// switch those experiments to the alias-sampling Stream (a different RNG
// stream means different contacts and different goldens). ReplayStream
// closes the gap: it consumes randomness in exactly Generate's order and
// therefore yields bit-identical contacts for the same seed, while never
// materializing the contact list. Its state is the pair CDF plus the
// idx → (a, b) tables — O(N²), independent of duration — and it is
// trace.Reopenable, so one trial can be streamed twice (empirical rates,
// then the lockstep simulation) from one value.
package contact

import (
	"fmt"
	"math/rand/v2"

	"impatience/internal/trace"
)

// ReplayStream streams the continuous-time contact process with the
// legacy generator's sampling discipline. It implements trace.Source and
// trace.Reopenable.
type ReplayStream struct {
	nodes        int
	duration     float64
	total        float64
	cum          []float64 // pair CDF, built exactly like Generate's
	pairA, pairB []int32   // dense pair index → endpoints
	seed1, seed2 uint64
	rng          *rand.Rand
	t            float64
	done         bool
}

// NewReplayStream builds a replayable streaming generator over the rate
// matrix, drawing from rand.New(rand.NewPCG(seed1, seed2)). For equal
// (matrix, duration, seeds) its contact sequence is bit-identical to
// Generate's output with the same PCG — the equivalence the batch
// digest tests pin. A zero-total matrix yields the empty process;
// negative, NaN or infinite rates are rejected.
func NewReplayStream(rm *trace.RateMatrix, duration float64, seed1, seed2 uint64) (*ReplayStream, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("contact: duration %g not positive", duration)
	}
	total, err := validRates(rm)
	if err != nil {
		return nil, err
	}
	s := &ReplayStream{nodes: rm.Nodes, duration: duration, total: total, seed1: seed1, seed2: seed2}
	if total <= 0 {
		s.done = true
		return s, nil
	}
	// The CDF accumulation mirrors Generate term for term: float summation
	// order decides the exact bucket boundaries, and a boundary moved by
	// one ulp would re-assign contacts and break bit-identity.
	rates := rm.Rates()
	s.cum = make([]float64, len(rates))
	run := 0.0
	for i, r := range rates {
		run += r
		s.cum[i] = run / total
	}
	s.cum[len(s.cum)-1] = 1
	s.pairA = make([]int32, len(rates))
	s.pairB = make([]int32, len(rates))
	for a := 0; a < rm.Nodes; a++ {
		for b := a + 1; b < rm.Nodes; b++ {
			idx := trace.PairIndex(rm.Nodes, a, b)
			s.pairA[idx], s.pairB[idx] = int32(a), int32(b)
		}
	}
	s.rng = rand.New(rand.NewPCG(seed1, seed2))
	return s, nil
}

// NewHomogeneousReplayStream is NewReplayStream over the homogeneous
// setting (every pair at rate mu) — the streaming twin of
// GenerateHomogeneous.
func NewHomogeneousReplayStream(nodes int, mu, duration float64, seed1, seed2 uint64) (*ReplayStream, error) {
	return NewReplayStream(trace.UniformRates(nodes, mu), duration, seed1, seed2)
}

// Nodes implements trace.Source.
func (s *ReplayStream) Nodes() int { return s.nodes }

// Duration implements trace.Source.
func (s *ReplayStream) Duration() float64 { return s.duration }

// Next implements trace.Source: one exponential gap of the superposed
// process, one CDF probe for the pair — Generate's draws, in Generate's
// order. Zero allocations.
func (s *ReplayStream) Next() (trace.Contact, bool) {
	if s.done {
		return trace.Contact{}, false
	}
	s.t += s.rng.ExpFloat64() / s.total
	if s.t > s.duration {
		s.done = true
		return trace.Contact{}, false
	}
	idx := searchCDF(s.cum, s.rng.Float64())
	return trace.Contact{T: s.t, A: int(s.pairA[idx]), B: int(s.pairB[idx])}, true
}

// NextBatch implements trace.BulkSource: Generate's draws in Generate's
// order, filled into the caller's buffer without the per-contact
// interface dispatch.
func (s *ReplayStream) NextBatch(buf []trace.Contact) int {
	if s.done {
		return 0
	}
	n := 0
	t, total, duration := s.t, s.total, s.duration
	for n < len(buf) {
		t += s.rng.ExpFloat64() / total
		if t > duration {
			s.done = true
			break
		}
		idx := searchCDF(s.cum, s.rng.Float64())
		buf[n] = trace.Contact{T: t, A: int(s.pairA[idx]), B: int(s.pairB[idx])}
		n++
	}
	s.t = t
	return n
}

// Reopen implements trace.Reopenable: the copy re-derives its RNG from
// the recorded seeds and shares the immutable CDF and pair tables, so
// reopening costs one small struct however large the population.
func (s *ReplayStream) Reopen() (trace.Source, error) {
	r := &ReplayStream{
		nodes: s.nodes, duration: s.duration, total: s.total,
		cum: s.cum, pairA: s.pairA, pairB: s.pairB,
		seed1: s.seed1, seed2: s.seed2,
	}
	if s.total <= 0 {
		r.done = true
		return r, nil
	}
	r.rng = rand.New(rand.NewPCG(s.seed1, s.seed2))
	return r, nil
}
