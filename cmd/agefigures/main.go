// Command agefigures regenerates the paper's tables and figures. For each
// requested figure it runs the corresponding experiment (simulations plus
// analytic computations), writes the data as CSV under -out, and prints
// an ASCII rendering for quick inspection.
//
// Usage:
//
//	agefigures                      # everything, full scale (slow)
//	agefigures -fig 4a -fig 4b      # only Figure 4
//	agefigures -quick               # reduced trials/duration smoke run
//	agefigures -list                # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"impatience/internal/experiment"
	"impatience/internal/plot"
	"impatience/internal/prof"
	"impatience/internal/synth"
	"impatience/internal/utility"
)

type figureFlag []string

func (f *figureFlag) String() string     { return strings.Join(*f, ",") }
func (f *figureFlag) Set(v string) error { *f = append(*f, strings.ToLower(v)); return nil }

var figureIndex = []struct {
	id   string
	desc string
}{
	{"t1", "Table 1: delay-utility transforms (closed forms, numerically verified)"},
	{"1", "Figure 1: delay-utility function shapes (3 panels)"},
	{"2", "Figure 2: optimal allocation exponent 1/(2-α)"},
	{"3", "Figure 3: mandate routing on/off (utility + replica dynamics)"},
	{"4a", "Figure 4 left: loss vs α, power utility, homogeneous contacts"},
	{"4b", "Figure 4 right: loss vs τ, step utility, homogeneous contacts"},
	{"5a", "Figure 5a: utility over time, conference trace, step τ=60"},
	{"5b", "Figure 5b: loss vs τ, conference trace (actual)"},
	{"5c", "Figure 5c: loss vs τ, conference trace (memoryless counterpart)"},
	{"6a", "Figure 6a: loss vs α, vehicular trace"},
	{"6b", "Figure 6b: loss vs τ, vehicular trace"},
	{"6c", "Figure 6c: loss vs ν, vehicular trace"},
	{"x1", "Ablation: cache size ρ and popularity ω sweeps"},
	{"x2", "Ablation: rewriting vs no rewriting"},
	{"x3", "Ablation: mean-field (Eq. 7) convergence"},
	{"x4", "Ablation: dynamic demand flip"},
	{"x5", "Ablation: discrete vs continuous time"},
	{"x6", "Extension: protocol overhead per scheme"},
	{"x7", "Extension: mixed catalog with per-item utilities"},
	{"x8", "Extension: dedicated kiosks with neglog utility"},
	{"x9", "Extension: adaptive impatience estimation from feedback"},
	{"xr", "Ablation: reaction-function comparison"},
	{"xd", "Robustness: degradation vs p_loss and churn rate (fault injection)"},
	{"xm", "Robustness: mass-failure recovery, QCR vs static OPT"},
	{"xa", "Robustness: adversarial workloads — dishonest fraction, counter multiplier, free-riders (hardened vs vanilla QCR)"},
	{"xf", "Robustness: flash-crowd popularity churn vs rotation period"},
	{"xn", "Robustness: day/night contact nonstationarity vs night activity factor"},
	{"xh", "Figure 3 at scale: QCR convergence on the hybrid mean-field engine"},
}

func main() {
	var figs figureFlag
	flag.Var(&figs, "fig", "figure id to regenerate (repeatable); default all")
	outDir := flag.String("out", "results", "output directory for CSV files")
	quick := flag.Bool("quick", false, "reduced trials and durations (smoke run)")
	list := flag.Bool("list", false, "list available figure ids")
	ascii := flag.Bool("ascii", true, "print ASCII charts")
	workers := flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); results are identical for any value")
	shards := flag.Int("shards", 0, "partition each trial's lockstep batch across this many workers; results are identical for any value")
	hybrid := flag.Bool("hybrid", false, "regenerate only the hybrid mean-field family (equivalent to -fig xh)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof agefigures <file>)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stop, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agefigures:", err)
		os.Exit(1)
	}
	if *hybrid && len(figs) == 0 {
		figs = figureFlag{"xh"}
	}
	if err := run(figs, *outDir, *quick, *list, *ascii, *workers, *shards); err != nil {
		stop()
		fmt.Fprintln(os.Stderr, "agefigures:", err)
		os.Exit(1)
	}
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, "agefigures: profile:", err)
		os.Exit(1)
	}
}

func run(figs []string, outDir string, quick, list, ascii bool, workers, shards int) error {
	if list {
		for _, f := range figureIndex {
			fmt.Printf("  %-4s %s\n", f.id, f.desc)
		}
		return nil
	}
	if len(figs) == 0 {
		for _, f := range figureIndex {
			figs = append(figs, f.id)
		}
	}
	sc := experiment.Default()
	sc.Workers = workers
	sc.Shards = shards
	conf := synth.DefaultConference()
	veh := synth.DefaultVehicular()
	if quick {
		sc = sc.Scaled(0.2, 0.4)
		conf.Days = 1
		veh.DurationMin = 480
	}
	for _, id := range figs {
		start := time.Now()
		tables, err := runFigure(id, sc, conf, veh, quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for k, tb := range tables {
			name := fmt.Sprintf("fig%s", id)
			if len(tables) > 1 {
				name = fmt.Sprintf("fig%s_%d", id, k)
			}
			path := filepath.Join(outDir, name+".csv")
			if err := tb.SaveCSV(path); err != nil {
				return fmt.Errorf("save %s: %w", path, err)
			}
			if ascii {
				fmt.Println(tb.ASCII(90, 20))
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runFigure(id string, sc experiment.Scenario, conf synth.ConferenceConfig, veh synth.VehicularConfig, quick bool) ([]*plot.Table, error) {
	one := func(t *plot.Table, err error) ([]*plot.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*plot.Table{t}, nil
	}
	switch id {
	case "t1":
		fmt.Print(experiment.Table1(sc.Mu, sc.Nodes))
		return nil, nil
	case "1":
		return experiment.Figure1(), nil
	case "2":
		return one(experiment.Figure2(sc))
	case "3":
		return experiment.Figure3(sc)
	case "xh":
		return hybridFigure(sc, quick)
	case "4a":
		return one(experiment.Figure4Power(sc, nil))
	case "4b":
		return one(experiment.Figure4Step(sc, nil))
	case "5a":
		return one(experiment.Figure5TimeSeries(sc, conf, 60))
	case "5b":
		return one(experiment.Figure5Step(sc, conf, nil, false))
	case "5c":
		return one(experiment.Figure5Step(sc, conf, nil, true))
	case "6a":
		return one(experiment.Figure6(sc, veh, "power", nil))
	case "6b":
		return one(experiment.Figure6(sc, veh, "step", nil))
	case "6c":
		return one(experiment.Figure6(sc, veh, "exp", nil))
	case "x1":
		a, err := experiment.AblationCacheSize(sc, nil, utility.Step{Tau: 10})
		if err != nil {
			return nil, err
		}
		b, err := experiment.AblationPopularity(sc, nil, utility.Step{Tau: 10})
		if err != nil {
			return nil, err
		}
		return []*plot.Table{a, b}, nil
	case "x2":
		return one(experiment.AblationRewriting(sc, utility.Power{Alpha: 0}))
	case "x3":
		return one(experiment.MeanFieldConvergence(sc, utility.Power{Alpha: 0}, 0, 0))
	case "x4":
		return one(experiment.DynamicDemand(sc, utility.Step{Tau: 10}))
	case "x5":
		return one(experiment.DiscreteVsContinuous(sc, utility.Exponential{Nu: 0.2}, nil))
	case "x6":
		return one(experiment.OverheadComparison(sc, utility.Power{Alpha: 0}))
	case "x7":
		return one(experiment.MixedCatalog(sc))
	case "x8":
		return one(experiment.DedicatedKiosks(sc, sc.Nodes/5))
	case "x9":
		return one(experiment.AdaptiveImpatience(sc, 0.1))
	case "xr":
		return one(experiment.ReactionComparison(sc, utility.Power{Alpha: 0}))
	case "xd":
		a, err := experiment.DegradationLoss(sc, utility.Step{Tau: 10}, nil)
		if err != nil {
			return nil, err
		}
		b, err := experiment.DegradationChurn(sc, utility.Step{Tau: 10}, nil)
		if err != nil {
			return nil, err
		}
		return []*plot.Table{a, b}, nil
	case "xm":
		return one(experiment.MassFailureRecovery(sc, utility.Step{Tau: 10}, 0.5))
	case "xa":
		a, err := experiment.RobustnessDishonest(sc, utility.Power{Alpha: 0}, nil, 0)
		if err != nil {
			return nil, err
		}
		b, err := experiment.RobustnessInflation(sc, utility.Power{Alpha: 0}, nil, 0)
		if err != nil {
			return nil, err
		}
		c, err := experiment.RobustnessFreeRiders(sc, utility.Power{Alpha: 0}, nil)
		if err != nil {
			return nil, err
		}
		return []*plot.Table{a, b, c}, nil
	case "xf":
		return one(experiment.RobustnessFlashCrowd(sc, utility.Power{Alpha: 0}, nil))
	case "xn":
		return one(experiment.RobustnessDiurnal(sc, utility.Step{Tau: 10}, nil))
	default:
		return nil, fmt.Errorf("unknown figure %q (use -list)", id)
	}
}
