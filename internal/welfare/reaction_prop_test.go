package welfare

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/demand"
	"impatience/internal/utility"
)

// Property-based coverage for the reaction machinery and the relaxed
// optimum it is tuned against, over 500 random (utility, µ, |S|, ρ, ω)
// configurations:
//
//  1. ϕ is positive and strictly decreasing, so y·ψ(y) = |S|·ϕ(|S|/y)
//     must be nondecreasing in the query counter y for every family
//     (and ψ itself nondecreasing for power utilities, where it has the
//     closed form ψ ∝ y^{1−α});
//  2. RelaxedOptimal conserves the budget (Σ x̃_i = ρ·|S|) and satisfies
//     Property 1: d_i·ϕ(x̃_i) is constant across interior coordinates;
//  3. MeanBurst is finite and positive on (0, |S|], degenerates to ψ(1)
//     at full replication, and ReactionScale normalizes the
//     demand-weighted mean burst at the optimum to exactly kappa.

const reactionCases = 500

type propConfig struct {
	f       utility.Function
	mu      float64
	servers int
	rho     int
	omega   float64
}

func randomConfig(rng *rand.Rand) propConfig {
	var f utility.Function
	switch rng.IntN(3) {
	case 0:
		f = utility.Step{Tau: 1 + 99*rng.Float64()}
	case 1:
		f = utility.Exponential{Nu: 0.01 + 0.99*rng.Float64()}
	default:
		f = utility.Power{Alpha: -2 + 2.9*rng.Float64()} // α ∈ [-2, 0.9)
	}
	return propConfig{
		f:       f,
		mu:      0.01 + 0.19*rng.Float64(),
		servers: 10 + rng.IntN(70),
		rho:     2 + rng.IntN(6),
		omega:   0.5 + rng.Float64(),
	}
}

func (c propConfig) homogeneous(items int) Homogeneous {
	return Homogeneous{
		Utility: c.f,
		Pop:     demand.Pareto(items, c.omega, 2),
		Mu:      c.mu,
		Servers: c.servers,
		Clients: c.servers,
	}
}

func TestPsiTransformMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x91, 0x517))
	for c := 0; c < reactionCases; c++ {
		cfg := randomConfig(rng)
		S := float64(cfg.servers)
		prev := math.Inf(-1)
		prevPsi := math.Inf(-1)
		_, isPower := cfg.f.(utility.Power)
		for y := 1.0; y <= 50; y++ {
			psi := utility.Psi(cfg.f, cfg.mu, S, y)
			if psi < 0 || math.IsNaN(psi) || math.IsInf(psi, 0) {
				t.Fatalf("case %d (%s): ψ(%g)=%g", c, cfg.f.Name(), y, psi)
			}
			// y·ψ(y) = |S|·ϕ(|S|/y); ϕ decreasing ⇒ nondecreasing in y.
			if v := y * psi; v < prev*(1-1e-9) {
				t.Fatalf("case %d (%s): y·ψ(y) decreased at y=%g: %g < %g", c, cfg.f.Name(), y, v, prev)
			} else {
				prev = v
			}
			if isPower && psi < prevPsi*(1-1e-9) {
				t.Fatalf("case %d (%s): ψ decreased at y=%g: %g < %g", c, cfg.f.Name(), y, psi, prevPsi)
			}
			prevPsi = psi
		}
	}
}

func TestRelaxedOptimalBalanceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xba1a, 0x2ce))
	for c := 0; c < reactionCases; c++ {
		cfg := randomConfig(rng)
		items := cfg.rho + 3 + rng.IntN(50) // keep ρ·|S| under the Σ caps = items·|S| ceiling
		h := cfg.homogeneous(items)
		x, err := h.RelaxedOptimal(cfg.rho)
		if err != nil {
			t.Fatalf("case %d (%s): %v", c, cfg.f.Name(), err)
		}
		budget := float64(cfg.rho * cfg.servers)
		var sum float64
		for i, v := range x {
			if v < -1e-9 || v > float64(cfg.servers)*(1+1e-9) {
				t.Fatalf("case %d: x[%d]=%g outside [0, %d]", c, i, v, cfg.servers)
			}
			sum += v
		}
		if math.Abs(sum-budget) > 1e-6*math.Max(1, budget) {
			t.Fatalf("case %d (%s): Σx̃=%g, budget %g", c, cfg.f.Name(), sum, budget)
		}
		// Property 1: d_i·ϕ(x̃_i) equal across interior coordinates. The
		// comparison happens in allocation space: for steep ϕ (large µτ
		// exponential decay) a sub-replica perturbation of x̃_i moves λ by
		// orders of magnitude, so a multiplier-space tolerance would be
		// meaningless. Each coordinate's λ deviation is converted to a
		// replica-count error through the local slope dλ/dx = d_i·ϕ'(x̃_i).
		type marginal struct {
			i      int
			lambda float64
		}
		var interior []marginal
		margin := 1e-6 * float64(cfg.servers)
		logSum := 0.0
		for i, v := range x {
			d := h.Pop.Rates[i]
			if d <= 0 || v <= margin || v >= float64(cfg.servers)-margin {
				continue
			}
			m := marginal{i, d * cfg.f.Phi(cfg.mu, v)}
			interior = append(interior, m)
			logSum += math.Log(m.lambda)
		}
		if len(interior) < 2 {
			continue
		}
		lambdaRef := math.Exp(logSum / float64(len(interior)))
		h2 := 1e-4 * float64(cfg.servers)
		for _, m := range interior {
			d := h.Pop.Rates[m.i]
			slope := d * (cfg.f.Phi(cfg.mu, x[m.i]+h2) - cfg.f.Phi(cfg.mu, x[m.i]-h2)) / (2 * h2)
			if slope == 0 || math.IsNaN(slope) {
				continue
			}
			if xerr := math.Abs((m.lambda - lambdaRef) / slope); xerr > 1e-3*float64(cfg.servers) {
				t.Fatalf("case %d (%s): balance violated at item %d: λ=%g vs ref %g (≈%g replicas off)",
					c, cfg.f.Name(), m.i, m.lambda, lambdaRef, xerr)
			}
		}
	}
}

func TestMeanBurstAndScaleProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xb1257, 0x5ca1e))
	for c := 0; c < reactionCases; c++ {
		cfg := randomConfig(rng)
		S := float64(cfg.servers)

		// Out-of-domain replica counts have no defined burst.
		if !math.IsNaN(MeanBurst(cfg.f, cfg.mu, cfg.servers, 0)) ||
			!math.IsNaN(MeanBurst(cfg.f, cfg.mu, cfg.servers, S+1)) {
			t.Fatalf("case %d: MeanBurst accepted out-of-domain x", c)
		}
		// At full replication every counter reads 1.
		if got, want := MeanBurst(cfg.f, cfg.mu, cfg.servers, S), utility.Psi(cfg.f, cfg.mu, S, 1); got != want {
			t.Fatalf("case %d (%s): burst at x=|S| is %g, want ψ(1)=%g", c, cfg.f.Name(), got, want)
		}
		x := S * (0.05 + 0.9*rng.Float64())
		b := MeanBurst(cfg.f, cfg.mu, cfg.servers, x)
		if !(b > 0) || math.IsInf(b, 0) {
			t.Fatalf("case %d (%s): burst(%g)=%g not finite positive", c, cfg.f.Name(), x, b)
		}

		if c >= 100 {
			continue // the scale property below re-solves the optimum; 100 cases suffice
		}
		items := cfg.rho + 3 + rng.IntN(30)
		h := cfg.homogeneous(items)
		kappa := 0.05 + 0.4*rng.Float64()
		s, err := h.ReactionScale(cfg.rho, kappa)
		if err != nil {
			t.Fatalf("case %d (%s): %v", c, cfg.f.Name(), err)
		}
		if !(s > 0) {
			t.Fatalf("case %d: scale %g", c, s)
		}
		// The scale is the burst normalizer: scaled demand-weighted mean
		// burst at the optimum equals kappa, and the scale is linear in it.
		opt, err := h.RelaxedOptimal(cfg.rho)
		if err != nil {
			t.Fatal(err)
		}
		var num, den float64
		for i, d := range h.Pop.Rates {
			if d <= 0 || opt[i] <= 0 {
				continue
			}
			burst := MeanBurst(cfg.f, cfg.mu, cfg.servers, opt[i])
			if math.IsNaN(burst) || math.IsInf(burst, 0) {
				continue
			}
			num += d * burst
			den += d
		}
		if got := s * num / den; math.Abs(got-kappa) > 1e-9*kappa {
			t.Fatalf("case %d (%s): scaled mean burst %g, want kappa %g", c, cfg.f.Name(), got, kappa)
		}
		s2, err := h.ReactionScale(cfg.rho, 2*kappa)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s2-2*s) > 1e-9*s {
			t.Fatalf("case %d: scale not linear in kappa: %g vs 2·%g", c, s2, s)
		}
	}
}
