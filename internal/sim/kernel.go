// Monomorphic delay-utility kernels: the devirtualized fast path for the
// per-fulfillment h(age) and h(0⁺) evaluations inside the contact loop.
//
// After the structural optimizations (dense request layout, fused
// streaming, lockstep batching), profiles of the fused per-contact kernel
// show the remaining cost is dispatch: one utility.Function interface
// call per fulfillment (and per immediate local hit), plus the virtual
// policy hooks. newRunner therefore resolves each item's delay-utility
// once into a flat utilKernel — the family tag plus its constants — and
// the hot path evaluates h through a tag switch on a struct it already
// has in cache, instead of an itab load and an indirect call per event.
//
// Bit-identity: each fast-path arm computes the *same float expression in
// the same operation order* as the corresponding utility method (the
// expressions are copied verbatim), so results are byte-identical and
// every golden digest family is preserved. Utilities outside the four
// closed-form families — and every item when Config.ReferenceKernel is
// set — keep the interface call via the ukGeneric fallback arm.
package sim

import (
	"math"

	"impatience/internal/utility"
)

// utilKind tags the resolved delay-utility family of one item.
type utilKind uint8

const (
	// ukGeneric evaluates through the utility.Function interface: custom
	// utilities, and every item under Config.ReferenceKernel.
	ukGeneric utilKind = iota
	ukStep             // utility.Step: a is τ
	ukExp              // utility.Exponential: a is ν
	ukPower            // utility.Power: a is α
	ukNegLog           // utility.NegLog
)

// utilKernel is one item's monomorphic delay-utility: family tag, the
// family's constant, the (constant) h(0⁺), and the resolved Function the
// generic arm falls back to.
type utilKernel struct {
	kind utilKind
	a    float64          // family constant (τ, ν or α)
	h0   float64          // h(0⁺); only read on non-generic arms
	fn   utility.Function // resolved function; fallback and provenance
}

// kernelFor resolves f into its fast path. reference forces the generic
// arm, which is how the kernel benchmark measures the pre-devirtualized
// cost of the identical run.
func kernelFor(f utility.Function, reference bool) utilKernel {
	k := utilKernel{kind: ukGeneric, fn: f}
	if reference {
		return k
	}
	switch u := f.(type) {
	case utility.Step:
		k.kind, k.a, k.h0 = ukStep, u.Tau, 1
	case utility.Exponential:
		k.kind, k.a, k.h0 = ukExp, u.Nu, 1
	case utility.Power:
		k.kind, k.a, k.h0 = ukPower, u.Alpha, u.H0()
	case utility.NegLog:
		k.kind, k.h0 = ukNegLog, math.Inf(1)
	}
	return k
}

// H evaluates h(t). Every arm is the verbatim float expression of the
// matching utility method — same operations, same order, bit-identical
// results; the default arm is the interface call the switch replaces.
func (k *utilKernel) H(t float64) float64 {
	switch k.kind {
	case ukStep:
		if t <= k.a {
			return 1
		}
		return 0
	case ukExp:
		return math.Exp(-k.a * t)
	case ukPower:
		return math.Pow(t, 1-k.a) / (k.a - 1)
	case ukNegLog:
		return -math.Log(t)
	}
	return k.fn.H(t)
}

// H0 evaluates h(0⁺), a per-item constant for the closed-form families —
// one float load instead of an interface call on the immediate-fulfillment
// path. The generic arm keeps the call so arbitrary Functions behave
// exactly as before.
func (k *utilKernel) H0() float64 {
	if k.kind == ukGeneric {
		return k.fn.H0()
	}
	return k.h0
}
