// Package stats provides the aggregation used by the evaluation harness:
// multi-trial summaries with the paper's 5th/95th-percentile confidence
// bands, and time-binned series averaging across trials.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses repeated measurements of one scalar quantity.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
	P5, P50, P95 float64
}

// Summarize computes a Summary; it returns a zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.P5 = Percentile(xs, 0.05)
	s.P50 = Percentile(xs, 0.50)
	s.P95 = Percentile(xs, 0.95)
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) with linear interpolation
// between order statistics, matching the paper's 5%/95% trial bands.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns the quantiles at each p in ps with the same linear
// interpolation as Percentile, sorting the sample once. Latency reports
// that need p50 and p99 from the same large sample use this instead of
// two Percentile calls (each of which copies and re-sorts).
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for k, p := range ps {
		switch {
		case p <= 0:
			out[k] = sorted[0]
		case p >= 1:
			out[k] = sorted[len(sorted)-1]
		default:
			pos := p * float64(len(sorted)-1)
			lo := int(math.Floor(pos))
			hi := int(math.Ceil(pos))
			if lo == hi {
				out[k] = sorted[lo]
			} else {
				frac := pos - float64(lo)
				out[k] = sorted[lo]*(1-frac) + sorted[hi]*frac
			}
		}
	}
	return out
}

// String renders a Summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ± %.2g [p5=%.4g p95=%.4g]", s.N, s.Mean, s.Stddev, s.P5, s.P95)
}

// Series is a binned time series: Mean[i] is the average of trial values
// for bin i, with the trial percentile band around it.
type Series struct {
	T       []float64 // bin start times
	Mean    []float64
	P5, P95 []float64
}

// MergeTrials averages per-trial binned series (each trials[k] must have
// equal length). It returns an error on ragged input.
func MergeTrials(t []float64, trials [][]float64) (*Series, error) {
	for k, tr := range trials {
		if len(tr) != len(t) {
			return nil, fmt.Errorf("stats: trial %d has %d bins, want %d", k, len(tr), len(t))
		}
	}
	s := &Series{
		T:    append([]float64(nil), t...),
		Mean: make([]float64, len(t)),
		P5:   make([]float64, len(t)),
		P95:  make([]float64, len(t)),
	}
	col := make([]float64, len(trials))
	for i := range t {
		for k := range trials {
			col[k] = trials[k][i]
		}
		sum := Summarize(col)
		s.Mean[i] = sum.Mean
		s.P5[i] = sum.P5
		s.P95[i] = sum.P95
	}
	return s, nil
}

// NormalizedLoss is the paper's comparison metric for Figures 4–6:
// 100·(U − U_opt)/|U_opt|, in percent; ≤ 0 whenever the scheme does not
// beat OPT. Returns NaN for U_opt = 0.
func NormalizedLoss(u, uOpt float64) float64 {
	if uOpt == 0 {
		return math.NaN()
	}
	return 100 * (u - uOpt) / math.Abs(uOpt)
}
