package faults

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scripted timelines let an experiment (or an operator replaying a real
// outage) dictate exactly when which node goes down and comes back,
// instead of drawing churn from the injector's random stream. The text
// format is line-oriented, in the spirit of the trace format:
//
//	# comments and blank lines are ignored
//	<t> <node> down
//	<t> <node> up
//
// Events may appear in any order; ParseTimeline sorts them with the same
// tie-breaking as Injector.Timeline (time, crashes before rejoins, node
// id). Out-of-order or duplicate events are legal — the consumer treats
// transitions idempotently (see Event).

// ParseTimeline reads a scripted fault timeline in the text format.
// Malformed input returns an error, never a panic, and never a partial
// timeline.
func ParseTimeline(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var evs []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("faults: line %d: want \"<t> <node> down|up\", got %q", lineNo, line)
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return nil, fmt.Errorf("faults: line %d: bad time %q", lineNo, fields[0])
		}
		node, err := strconv.Atoi(fields[1])
		if err != nil || node < 0 {
			return nil, fmt.Errorf("faults: line %d: bad node %q", lineNo, fields[1])
		}
		var down bool
		switch fields[2] {
		case "down":
			down = true
		case "up":
			down = false
		default:
			return nil, fmt.Errorf("faults: line %d: bad state %q (want down or up)", lineNo, fields[2])
		}
		evs = append(evs, Event{T: t, Node: node, Down: down})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sortEvents(evs)
	return evs, nil
}

// WriteTimeline serializes a timeline in the text format ParseTimeline
// reads.
func WriteTimeline(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# impatience fault timeline\n")
	for _, ev := range evs {
		state := "up"
		if ev.Down {
			state = "down"
		}
		fmt.Fprintf(bw, "%g %d %s\n", ev.T, ev.Node, state)
	}
	return bw.Flush()
}

// sortEvents orders a timeline by time, crashes before rejoins at the
// same instant, then node id — the ordering Injector.Timeline guarantees.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].T != evs[b].T {
			return evs[a].T < evs[b].T
		}
		if evs[a].Down != evs[b].Down {
			return evs[a].Down
		}
		return evs[a].Node < evs[b].Node
	})
}
