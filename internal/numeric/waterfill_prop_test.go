package numeric

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Property-based coverage for the water-filling solver: 500 random
// problem instances spanning the derivative families the welfare layer
// actually feeds it (power-law, exponential and rational ϕ transforms),
// with degenerate coordinates (zero weights, zero caps) mixed in. Each
// solution is checked against the contract WaterFill promises:
//
//  1. budget conservation: Σ x_i = Budget (within the certification
//     tolerance the solver itself enforces),
//  2. box constraints: 0 ≤ x_i ≤ Cap_i, and x_i = 0 where w_i = 0,
//  3. Property 1 balance: w_i·Deriv(x_i) equal across all interior
//     coordinates (the optimality condition of Theorem 2).

const propCases = 500

// randomDeriv draws a strictly decreasing positive derivative. The three
// shapes mirror the ϕ transforms of the utility families (power, exp,
// neglog-like rational).
func randomDeriv(rng *rand.Rand) func(x float64) float64 {
	c := math.Exp(rng.Float64()*8 - 4) // scale spans e^-4 .. e^4
	switch rng.IntN(3) {
	case 0:
		b := 0.2 + 2.8*rng.Float64()
		s := rng.Float64() * 0.5
		return func(x float64) float64 { return c / math.Pow(x+s+1e-9, b) }
	case 1:
		a := 0.05 + rng.Float64()
		return func(x float64) float64 { return c * math.Exp(-a*x) }
	default:
		a := 0.1 + 2*rng.Float64()
		return func(x float64) float64 { return c / (1 + a*x) }
	}
}

func randomProblem(rng *rand.Rand) WaterFillProblem {
	n := 1 + rng.IntN(40)
	p := WaterFillProblem{
		Weights: make([]float64, n),
		Caps:    make([]float64, n),
	}
	var capSum float64
	for i := 0; i < n; i++ {
		switch {
		case rng.Float64() < 0.08:
			p.Weights[i] = 0 // zero-demand item
		default:
			p.Weights[i] = math.Exp(rng.Float64()*6 - 3)
		}
		switch {
		case rng.Float64() < 0.05:
			p.Caps[i] = 0 // item excluded from the cache
		default:
			p.Caps[i] = 0.5 + 19.5*rng.Float64()
		}
		capSum += p.Caps[i]
	}
	if rng.Float64() < 0.5 {
		p.Deriv = randomDeriv(rng)
	} else {
		derivs := make([]func(float64) float64, n)
		for i := range derivs {
			derivs[i] = randomDeriv(rng)
		}
		p.DerivFor = func(i int, x float64) float64 { return derivs[i](x) }
	}
	p.Budget = rng.Float64() * capSum * 0.95
	return p
}

func checkSolution(t *testing.T, caseNo int, p WaterFillProblem, x []float64) {
	t.Helper()
	if len(x) != len(p.Weights) {
		t.Fatalf("case %d: %d coordinates, want %d", caseNo, len(x), len(p.Weights))
	}
	var sum float64
	for i, v := range x {
		if math.IsNaN(v) {
			t.Fatalf("case %d: x[%d] is NaN", caseNo, i)
		}
		if v < -1e-9 || v > p.Caps[i]*(1+1e-9)+1e-9 {
			t.Fatalf("case %d: x[%d]=%g outside [0, %g]", caseNo, i, v, p.Caps[i])
		}
		if p.Weights[i] == 0 && v != 0 {
			t.Fatalf("case %d: zero-weight coordinate %d got %g", caseNo, i, v)
		}
		sum += v
	}
	if math.Abs(sum-p.Budget) > 1e-6*math.Max(1, p.Budget) {
		t.Fatalf("case %d: Σx=%g, budget %g (violation %g)", caseNo, sum, p.Budget, sum-p.Budget)
	}

	// Property 1: the weighted marginals of interior coordinates agree.
	lo, hi := math.Inf(1), math.Inf(-1)
	interior := 0
	for i, v := range x {
		if p.Weights[i] == 0 || p.Caps[i] == 0 {
			continue
		}
		margin := 1e-6 * p.Caps[i]
		if v <= margin || v >= p.Caps[i]-margin {
			continue // pinned at a box constraint: marginal may differ
		}
		lambda := p.Weights[i] * p.derivFor(i)(v)
		lo = math.Min(lo, lambda)
		hi = math.Max(hi, lambda)
		interior++
	}
	if interior >= 2 && hi-lo > 1e-3*hi {
		t.Fatalf("case %d: balance condition violated: λ spans [%g, %g] over %d interior coordinates", caseNo, lo, hi, interior)
	}
}

func TestWaterFillProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc0ffee, 0x5eed))
	solved := 0
	for c := 0; c < propCases; c++ {
		p := randomProblem(rng)
		x, err := WaterFill(p)
		if err != nil {
			// The solver may honestly refuse an ill-conditioned instance,
			// but it must never refuse the trivial ones.
			if p.Budget == 0 {
				t.Fatalf("case %d: zero budget refused: %v", c, err)
			}
			continue
		}
		solved++
		checkSolution(t, c, p, x)
	}
	// The generator produces overwhelmingly well-posed problems; if most
	// were refused the property checks above tested nothing.
	if solved < propCases*9/10 {
		t.Fatalf("only %d/%d instances solved; generator or solver degraded", solved, propCases)
	}
}

func TestWaterFillInfeasibleBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for c := 0; c < 50; c++ {
		p := randomProblem(rng)
		var capSum float64
		for _, v := range p.Caps {
			capSum += v
		}
		p.Budget = capSum*1.1 + 1
		if _, err := WaterFill(p); err == nil {
			t.Fatalf("case %d: budget %g over capacity %g accepted", c, p.Budget, capSum)
		}
	}
}

func TestWaterFillSaturatedBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for c := 0; c < 50; c++ {
		p := randomProblem(rng)
		// Saturation means exhausting the capacity that is actually
		// reachable: zero-weight coordinates never hold replicas.
		var effCap float64
		for i, v := range p.Caps {
			if p.Weights[i] > 0 {
				effCap += v
			}
		}
		p.Budget = effCap
		x, err := WaterFill(p)
		if err != nil {
			t.Fatalf("case %d: exact-capacity budget refused: %v", c, err)
		}
		for i, v := range x {
			want := p.Caps[i]
			if p.Weights[i] == 0 {
				want = 0
			}
			if v != want {
				t.Fatalf("case %d: x[%d]=%g, want %g at saturation", c, i, v, want)
			}
		}
	}
}

// Regression: a budget that fits under the total cap sum but exceeds the
// capacity of the positive-weight coordinates used to slip through the
// feasibility check, and the residual-slack pass then pushed a
// coordinate past its cap. Such problems must be refused.
func TestWaterFillInfeasibleEffectiveCapacity(t *testing.T) {
	p := WaterFillProblem{
		Weights: []float64{1, 0, 0},
		Caps:    []float64{5, 10, 10},
		Budget:  7, // < 25 total caps, > 5 reachable capacity
		Deriv:   func(x float64) float64 { return 1 / (1 + x) },
	}
	if x, err := WaterFill(p); err == nil {
		t.Fatalf("budget beyond reachable capacity accepted: %v", x)
	}
}
