// Package prof wires the -cpuprofile/-memprofile flags shared by the
// CLIs onto runtime/pprof. The profiles feed the documented workflow
// (README, "Profiling"): `go tool pprof <binary> cpu.out` against the
// simulator hot path.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes the heap profile to
// memPath (if non-empty). Callers must invoke stop on every exit path —
// typically `defer stop()` right after the error check. Either path may
// be empty; Start with both empty returns a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// Up-to-date allocation stats: the heap profile should show
			// live objects, not garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("write heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			memPath = ""
		}
		return nil
	}, nil
}
