// Package contact generates synthetic contact traces from memoryless
// contact models: the continuous-time model (pairwise Poisson processes
// with intensities µ_{m,n}, Section 3.4) and the discrete-time model
// (independent Bernoulli(µ_{m,n}·δ) meetings per slot). Both models emit
// ordinary trace.Trace values, so the simulator treats synthetic and
// measured mobility identically.
package contact

import (
	"fmt"
	"math/rand/v2"

	"impatience/internal/trace"
)

// Generate draws a continuous-time trace of the given duration from the
// rate matrix: the superposition of all pairwise Poisson processes, which
// is itself Poisson with the total rate, with each event assigned to a
// pair proportionally to its intensity.
func Generate(rm *trace.RateMatrix, duration float64, rng *rand.Rand) (*trace.Trace, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("contact: duration %g not positive", duration)
	}
	// Entry-wise validation, not just a total check: a matrix mixing
	// negative and positive rates can have a positive total while its CDF
	// is non-monotonic, in which case the sampling loop below would
	// silently assign events to the wrong pairs.
	total, err := validRates(rm)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Nodes: rm.Nodes, Duration: duration}
	if total <= 0 {
		// The documented zero-contact trace: no rate, no process.
		return tr, nil
	}
	// Cumulative distribution over pair indices for event assignment.
	rates := rm.Rates()
	cum := make([]float64, len(rates))
	run := 0.0
	for i, r := range rates {
		run += r
		cum[i] = run / total
	}
	cum[len(cum)-1] = 1
	// Precompute the pair (a,b) for each dense pair index.
	pairA := make([]int, len(rates))
	pairB := make([]int, len(rates))
	for a := 0; a < rm.Nodes; a++ {
		for b := a + 1; b < rm.Nodes; b++ {
			idx := trace.PairIndex(rm.Nodes, a, b)
			pairA[idx], pairB[idx] = a, b
		}
	}
	t := 0.0
	for {
		t += rng.ExpFloat64() / total
		if t > duration {
			break
		}
		idx := searchCDF(cum, rng.Float64())
		tr.Contacts = append(tr.Contacts, trace.Contact{T: t, A: pairA[idx], B: pairB[idx]})
	}
	return tr, nil
}

// GenerateHomogeneous draws a continuous-time trace where every pair
// meets at rate mu — the paper's homogeneous contact setting.
func GenerateHomogeneous(nodes int, mu, duration float64, rng *rand.Rand) (*trace.Trace, error) {
	return Generate(trace.UniformRates(nodes, mu), duration, rng)
}

// GenerateDiscrete draws a discrete-time trace: time advances in slots of
// length delta and each pair meets in each slot independently with
// probability µ_{m,n}·δ (capped at 1). Contacts are stamped at the end of
// their slot. This realizes the paper's discrete-time contact model.
func GenerateDiscrete(rm *trace.RateMatrix, duration, delta float64, rng *rand.Rand) (*trace.Trace, error) {
	if duration <= 0 || delta <= 0 {
		return nil, fmt.Errorf("contact: invalid duration %g / delta %g", duration, delta)
	}
	if _, err := validRates(rm); err != nil {
		return nil, err
	}
	tr := &trace.Trace{Nodes: rm.Nodes, Duration: duration}
	rates := rm.Rates()
	probs := make([]float64, len(rates))
	any := false
	for i, r := range rates {
		p := r * delta
		if p > 1 {
			p = 1
		}
		probs[i] = p
		if p > 0 {
			any = true
		}
	}
	if !any {
		return tr, nil
	}
	pairA := make([]int, len(rates))
	pairB := make([]int, len(rates))
	for a := 0; a < rm.Nodes; a++ {
		for b := a + 1; b < rm.Nodes; b++ {
			idx := trace.PairIndex(rm.Nodes, a, b)
			pairA[idx], pairB[idx] = a, b
		}
	}
	slots := int(duration / delta)
	for s := 1; s <= slots; s++ {
		t := float64(s) * delta
		if t > duration {
			break
		}
		for idx, p := range probs {
			if p > 0 && rng.Float64() < p {
				tr.Contacts = append(tr.Contacts, trace.Contact{T: t, A: pairA[idx], B: pairB[idx]})
			}
		}
	}
	return tr, nil
}

// searchCDF returns the smallest index i with cdf[i] >= u.
func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
