package sim

import (
	"runtime"
	"testing"

	"impatience/internal/adversary"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/faults"
	"impatience/internal/parallel"
	"impatience/internal/rates"
	"impatience/internal/trace"
)

// shardScenario builds the structured-rates community scenario the
// sharding suite runs on: a 48-node 4-community model driven through the
// group-decomposed (Partitionable) sampler, and the full config battery
// — static, live QCR, fault-ridden QCR, and an adversarial QCR (churn,
// lossy meetings, dishonest nodes, demand shift) — so the invariance
// claim covers every stateful subsystem at once.
func shardScenario(t *testing.T, seed uint64) ([]Config, *rates.ShardedSource) {
	t.Helper()
	m, err := rates.NewCommunity(rates.CommunityConfig{Nodes: 48, Communities: 4, In: 0.3, Out: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	src, err := rates.NewSharded(m, 500, seed, 0)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := batchSchemes(t)
	adv := baseConfig(t, nil, &core.QCR{
		Reaction:       core.PathReplication(0.5),
		MandateRouting: true,
		StrictSource:   true,
		MaxMandates:    5,
		Seed:           77,
	})
	adv.Seed = 24
	adv.BinWidth = 100
	adv.RecordDelays = true
	adv.Faults = &faults.Config{
		ChurnRate:    0.001,
		MeanDowntime: 25,
		PLoss:        0.1,
		Seed:         24 ^ 0xbad,
	}
	pop := adv.Pop
	adv.Adversary = &adversary.Config{
		DishonestFrac: 0.2,
		Mult:          25,
		FreeRiderFrac: 0.2,
		Schedule: demand.Schedule{
			{T: 150, Pop: demand.Uniform(pop.Items(), pop.Total())},
			{T: 350, Pop: pop},
		},
		Seed: 24 ^ 0xadbad,
	}
	cfgs = append(cfgs, adv)
	return cfgs, src
}

// reopenFresh hands back an unstarted copy of the sharded source.
func reopenFresh(t *testing.T, src *rates.ShardedSource) trace.Source {
	t.Helper()
	re, err := src.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	return re
}

// TestRunBatchShardedInvariance is the executor-level determinism gate:
// result digests must be identical across shard counts {1, 2, 3, 4,
// NumCPU} — shards ≤ 1 being RunBatch itself — on the community scenario
// with faults and adversary enabled. Run under -race in CI, which also
// makes this the concurrency-safety proof of the producer/worker split.
func TestRunBatchShardedInvariance(t *testing.T) {
	cfgs, src := shardScenario(t, 41)
	want, err := RunBatch(cfgs, reopenFresh(t, src))
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for _, shards := range []int{1, 2, 3, 4, runtime.NumCPU()} {
		cfgs, src := shardScenario(t, 41)
		got, err := RunBatchSharded(cfgs, reopenFresh(t, src), shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d results, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i].Digest() != want[i].Digest() {
				t.Errorf("shards=%d scheme %d: digest %#x != serial %#x",
					shards, i, got[i].Digest(), want[i].Digest())
			}
		}
	}
}

// TestRunBatchShardedMatchesSequential anchors the sharded executor to
// the original per-config Run loop: materialize the structured contact
// stream once, replay it through individual sequential Runs, and require
// digest equality with the sharded batch over the streaming source.
func TestRunBatchShardedMatchesSequential(t *testing.T) {
	cfgs, src := shardScenario(t, 43)
	tr, err := trace.Collect(reopenFresh(t, src))
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	want := make([]uint64, len(cfgs))
	seqCfgs, _ := shardScenario(t, 43)
	for i, cfg := range seqCfgs {
		cfg.Trace = tr
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("sequential Run %d: %v", i, err)
		}
		want[i] = res.Digest()
	}
	got, err := RunBatchSharded(cfgs, reopenFresh(t, src), 4)
	if err != nil {
		t.Fatalf("RunBatchSharded: %v", err)
	}
	for i, res := range got {
		if res.Digest() != want[i] {
			t.Errorf("scheme %d: sharded digest %#x != sequential %#x", i, res.Digest(), want[i])
		}
	}
}

// TestRunBatchShardedGolden pins the structured-rate executor path
// bit-for-bit: a fixed scenario's result digests, mixed into one family
// value, must never drift. Regenerate with -run TestRunBatchShardedGolden
// -v when an intentional stream or scoring change lands.
func TestRunBatchShardedGolden(t *testing.T) {
	const golden = uint64(0x5f8bc07aba957725)
	cfgs, src := shardScenario(t, 47)
	results, err := RunBatchSharded(cfgs, reopenFresh(t, src), 2)
	if err != nil {
		t.Fatal(err)
	}
	acc := uint64(0x9e3779b97f4a7c15)
	for _, r := range results {
		acc = parallel.SplitMix64(acc ^ r.Digest())
	}
	t.Logf("digest family: %#016x", acc)
	if acc != golden {
		t.Errorf("digest family %#016x, golden %#016x", acc, golden)
	}
}

// TestRunBatchShardedErrors: the sharded entry point reproduces the
// serial executor's validation failures and its deterministic
// first-error selection on a contract-violating stream.
func TestRunBatchShardedErrors(t *testing.T) {
	cfgs, src := shardScenario(t, 5)
	if _, err := RunBatchSharded(nil, reopenFresh(t, src), 4); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := RunBatchSharded(cfgs, nil, 4); err == nil {
		t.Error("nil source accepted")
	}
	withTrace, src2 := shardScenario(t, 5)
	withTrace[1].Trace = smallTrace(t, 14, 0.05, 200, 3)
	if _, err := RunBatchSharded(withTrace, reopenFresh(t, src2), 4); err == nil {
		t.Error("batch config with Trace set accepted")
	}

	disordered := func() trace.Source {
		return (&trace.Trace{Nodes: 48, Duration: 100, Contacts: []trace.Contact{
			{T: 50, A: 0, B: 1}, {T: 10, A: 1, B: 2},
		}}).Source()
	}
	serialCfgs, _ := shardScenario(t, 5)
	_, serialErr := RunBatch(serialCfgs, disordered())
	if serialErr == nil {
		t.Fatal("serial executor accepted out-of-order stream")
	}
	shardCfgs, _ := shardScenario(t, 5)
	_, shardErr := RunBatchSharded(shardCfgs, disordered(), 4)
	if shardErr == nil {
		t.Fatal("sharded executor accepted out-of-order stream")
	}
	if shardErr.Error() != serialErr.Error() {
		t.Errorf("error mismatch:\n  sharded: %v\n  serial:  %v", shardErr, serialErr)
	}
}
